// Fig. 10 — All four update heuristics across thresholds (paper: the
// windowless SYSTEM and APPLICATION heuristics can only trade accuracy for
// stability and are sensitive to tau — small tau behaves like the raw MP
// filter, large tau rarely updates and error explodes; only around tau=16 do
// they approach the window-based heuristics, which hold both metrics at
// once).
//
// Flags: --nodes (200; --full 269), --hours (2; --full 4), --seed, --window (32).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const nc::Flags flags(argc, argv);
  nc::eval::ReplaySpec spec = ncb::replay_spec(
      flags, {.nodes = 200, .hours = 2.0, .full_nodes = 269, .full_hours = 4.0});
  const int window = static_cast<int>(flags.get_int("window", 32));
  const auto taus =
      flags.get_double_list("taus", {1, 2, 4, 8, 16, 32, 64, 128, 256});
  const auto epss = flags.get_double_list(
      "relative-eps", {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9});

  ncb::print_header("Fig. 10: threshold sensitivity of all four heuristics",
                    "window-based heuristics hold accuracy at every threshold; "
                    "windowless ones trade it away");
  ncb::print_workload(spec);

  nc::eval::TextTable t(
      {"heuristic", "threshold", "median rel err", "instability", "%nodes-upd/s"});
  for (std::size_t i = 0; i < taus.size(); ++i) {
    const double tau = taus[i];
    const auto sys = ncb::run_point(spec, nc::HeuristicConfig::system(tau));
    t.add_row({"system", nc::eval::fmt(tau, 4), nc::eval::fmt(sys.median_error, 3),
               nc::eval::fmt(sys.instability, 4), nc::eval::fmt(sys.pct_updates, 3)});
  }
  for (std::size_t i = 0; i < taus.size(); ++i) {
    const double tau = taus[i];
    const auto app = ncb::run_point(spec, nc::HeuristicConfig::application(tau));
    t.add_row({"application", nc::eval::fmt(tau, 4),
               nc::eval::fmt(app.median_error, 3), nc::eval::fmt(app.instability, 4),
               nc::eval::fmt(app.pct_updates, 3)});
  }
  for (std::size_t i = 0; i < taus.size(); ++i) {
    const auto en = ncb::run_point(spec, nc::HeuristicConfig::energy(taus[i], window));
    t.add_row({"energy", nc::eval::fmt(taus[i], 4), nc::eval::fmt(en.median_error, 3),
               nc::eval::fmt(en.instability, 4), nc::eval::fmt(en.pct_updates, 3)});
  }
  for (std::size_t i = 0; i < epss.size(); ++i) {
    const auto re =
        ncb::run_point(spec, nc::HeuristicConfig::relative(epss[i], window));
    t.add_row({"relative", nc::eval::fmt(epss[i], 3),
               nc::eval::fmt(re.median_error, 3), nc::eval::fmt(re.instability, 4),
               nc::eval::fmt(re.pct_updates, 3)});
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: for system/application, error grows sharply with\n"
               "tau while energy/relative stay flat; at small tau the windowless\n"
               "rows approach raw-MP instability.\n";
  return 0;
}

// Fig. 10 — All four update heuristics across thresholds (paper: the
// windowless SYSTEM and APPLICATION heuristics can only trade accuracy for
// stability and are sensitive to tau — small tau behaves like the raw MP
// filter, large tau rarely updates and error explodes; only around tau=16 do
// they approach the window-based heuristics, which hold both metrics at
// once).
//
// Flags: --scenario (planetlab), --nodes (200; --full 269),
//        --hours (2; --full 4), --seed, --jobs, --window (32),
//        --taus=..., --relative-eps=...
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const nc::Flags flags =
      ncb::parse_flags(argc, argv, {"window", "taus", "relative-eps"});
  nc::eval::ScenarioSpec spec = ncb::scenario_spec(
      flags, {.nodes = 200, .hours = 2.0, .full_nodes = 269, .full_hours = 4.0});
  const int window = static_cast<int>(flags.get_int("window", 32));
  const auto taus =
      flags.get_double_list("taus", {1, 2, 4, 8, 16, 32, 64, 128, 256});
  const auto epss = flags.get_double_list(
      "relative-eps", {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9});
  const auto grid = ncb::grid(flags);

  ncb::print_header("Fig. 10: threshold sensitivity of all four heuristics",
                    "window-based heuristics hold accuracy at every threshold; "
                    "windowless ones trade it away");
  ncb::print_workload(spec);

  // One grid pass over the whole figure: system/application/energy rows per
  // tau, then relative rows per eps.
  std::vector<std::pair<std::string, std::string>> labels;  // (heuristic, threshold)
  std::vector<nc::HeuristicConfig> heuristics;
  for (double tau : taus) {
    labels.emplace_back("system", nc::eval::fmt(tau, 4));
    heuristics.push_back(nc::HeuristicConfig::system(tau));
  }
  for (double tau : taus) {
    labels.emplace_back("application", nc::eval::fmt(tau, 4));
    heuristics.push_back(nc::HeuristicConfig::application(tau));
  }
  for (double tau : taus) {
    labels.emplace_back("energy", nc::eval::fmt(tau, 4));
    heuristics.push_back(nc::HeuristicConfig::energy(tau, window));
  }
  for (double eps : epss) {
    labels.emplace_back("relative", nc::eval::fmt(eps, 3));
    heuristics.push_back(nc::HeuristicConfig::relative(eps, window));
  }
  const auto points = ncb::run_points(spec, heuristics, grid);

  nc::eval::TextTable t(
      {"heuristic", "threshold", "median rel err", "instability", "%nodes-upd/s"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ncb::SweepPoint& p = points[i];
    t.add_row({labels[i].first, labels[i].second, nc::eval::fmt(p.median_error, 3),
               nc::eval::fmt(p.instability, 4), nc::eval::fmt(p.pct_updates, 3)});
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: for system/application, error grows sharply with\n"
               "tau while energy/relative stay flat; at small tau the windowless\n"
               "rows approach raw-MP instability.\n";
  return 0;
}

// Fig. 6 — Confidence building on a low-latency cluster (paper: three
// cluster nodes pinging each other once per second; with a 3 ms margin of
// error the node holds ~100% confidence after start-up, without it
// confidence hovers around 75% because timing jitter dominates the
// sub-millisecond link latency).
//
// Flags: --minutes (10), --margin (3), --seed.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/nc_client.hpp"
#include "latency/trace_generator.hpp"

namespace {

// One 3-node cluster run; returns node 0's confidence sampled every 15 s.
std::vector<double> run_cluster(double margin_ms, bool use_mp, double minutes,
                                std::uint64_t seed) {
  nc::lat::TraceGenConfig cfg;
  cfg.topology.num_nodes = 3;
  cfg.topology.seed = seed;
  cfg.topology.regions = {{"cluster", nc::Vec{0.0, 0.0, 0.0}, 0.15, 1.0}};
  cfg.topology.height_log_mu = -1.5;
  cfg.topology.height_log_sigma = 0.2;
  cfg.topology.height_min_ms = 0.1;
  cfg.topology.height_max_ms = 0.3;
  cfg.link_model.body_sigma = 0.35;      // jitter comparable to the latency
  cfg.link_model.base_spike_prob = 0.05; // ~5% of samples above 1.2 ms
  cfg.link_model.spike_xm_min_ms = 0.5;
  cfg.link_model.spike_xm_max_ms = 1.5;
  cfg.link_model.spike_alpha = 1.5;
  cfg.link_model.loss_prob = 0.0;
  cfg.availability.enabled = false;
  cfg.duration_s = minutes * 60.0;
  cfg.seed = seed;

  nc::NCClientConfig client_cfg;
  client_cfg.vivaldi.dim = 3;
  client_cfg.vivaldi.confidence_margin_ms = margin_ms;
  client_cfg.filter = use_mp ? nc::FilterConfig::moving_percentile(4, 25)
                             : nc::FilterConfig::none();
  client_cfg.heuristic = nc::HeuristicConfig::always();

  std::vector<nc::NCClient> nodes;
  for (nc::NodeId id = 0; id < 3; ++id) nodes.emplace_back(id, client_cfg);

  nc::lat::TraceGenerator gen(cfg);
  std::vector<double> series;
  double next_sample_t = 0.0;
  while (auto rec = gen.next()) {
    while (rec->t_s >= next_sample_t) {
      series.push_back(nodes[0].confidence());
      next_sample_t += 15.0;
    }
    auto& src = nodes[static_cast<std::size_t>(rec->src)];
    auto& dst = nodes[static_cast<std::size_t>(rec->dst)];
    src.observe(rec->dst, dst.system_coordinate(), dst.error_estimate(),
                rec->rtt_ms, rec->t_s);
  }
  return series;
}

}  // namespace

int main(int argc, char** argv) {
  const nc::Flags flags(argc, argv);
  const double minutes = flags.get_double("minutes", 10.0);
  const double margin = flags.get_double("margin", 3.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  ncb::print_header("Fig. 6: confidence building on a 3-node cluster",
                    "with a 3 ms margin confidence holds ~1.0; without it "
                    "~0.75; the MP filter alone does not fix it");
  std::printf("workload: 3 cluster nodes, 1 Hz sampling, %.0f min, margin %.1f ms\n",
              minutes, margin);

  const auto with_margin = run_cluster(margin, false, minutes, seed);
  const auto without = run_cluster(0.0, false, minutes, seed);
  const auto mp_only = run_cluster(0.0, true, minutes, seed);

  nc::eval::TextTable t({"t(min)", "confidence-building", "none", "mp-only"});
  for (std::size_t i = 0; i < with_margin.size(); ++i) {
    t.add_row({nc::eval::fmt(static_cast<double>(i) * 15.0 / 60.0, 3),
               nc::eval::fmt(with_margin[i], 3),
               i < without.size() ? nc::eval::fmt(without[i], 3) : "-",
               i < mp_only.size() ? nc::eval::fmt(mp_only[i], 3) : "-"});
  }
  t.print(std::cout);

  const auto steady = [](const std::vector<double>& s) {
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = s.size() / 2; i < s.size(); ++i) {
      sum += s[i];
      ++n;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
  };
  std::printf("\nsteady-state confidence: building=%.3f none=%.3f mp-only=%.3f\n",
              steady(with_margin), steady(without), steady(mp_only));
  std::cout << "expected shape: 'building' near 1.0, the other two well below.\n";
  return 0;
}

// Fig. 6 — Confidence building on a low-latency cluster (paper: three
// cluster nodes pinging each other once per second; with a 3 ms margin of
// error the node holds ~100% confidence after start-up, without it
// confidence hovers around 75% because timing jitter dominates the
// sub-millisecond link latency).
//
// Flags: --scenario (lan-cluster), --nodes (3), --minutes (10), --margin (3),
//        --seed, --jobs.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/nc_client.hpp"
#include "latency/trace_generator.hpp"

namespace {

// One cluster run; returns node 0's confidence sampled every 15 s.
std::vector<double> run_cluster(const nc::eval::WorkloadSpec& workload,
                                double margin_ms, bool use_mp) {
  nc::NCClientConfig client_cfg;
  client_cfg.vivaldi.dim = 3;
  client_cfg.vivaldi.confidence_margin_ms = margin_ms;
  client_cfg.filter = use_mp ? nc::FilterConfig::moving_percentile(4, 25)
                             : nc::FilterConfig::none();
  client_cfg.heuristic = nc::HeuristicConfig::always();

  std::vector<nc::NCClient> nodes;
  const auto n = static_cast<std::size_t>(workload.num_nodes);
  nodes.reserve(n);
  for (nc::NodeId id = 0; id < workload.num_nodes; ++id)
    nodes.emplace_back(id, client_cfg);

  nc::lat::TraceGenerator gen(nc::eval::resolve_trace_config(workload));
  std::vector<double> series;
  double next_sample_t = 0.0;
  while (auto rec = gen.next()) {
    while (rec->t_s >= next_sample_t) {
      series.push_back(nodes[0].confidence());
      next_sample_t += 15.0;
    }
    auto& src = nodes[static_cast<std::size_t>(rec->src)];
    auto& dst = nodes[static_cast<std::size_t>(rec->dst)];
    src.observe(rec->dst, dst.system_coordinate(), dst.error_estimate(),
                rec->rtt_ms, rec->t_s);
  }
  return series;
}

}  // namespace

int main(int argc, char** argv) {
  const nc::Flags flags = ncb::parse_flags_exact(
      argc, argv, {"scenario", "nodes", "minutes", "margin", "seed", "jobs"});
  const double minutes = flags.get_double("minutes", 10.0);
  const double margin = flags.get_double("margin", 3.0);

  nc::eval::ScenarioSpec spec = ncb::scenario_spec(
      flags, {.nodes = 3, .full_nodes = 3, .scenario = "lan-cluster"});
  spec.workload.duration_s = minutes * 60.0;

  ncb::print_header("Fig. 6: confidence building on a 3-node cluster",
                    "with a 3 ms margin confidence holds ~1.0; without it "
                    "~0.75; the MP filter alone does not fix it");
  std::printf("workload: scenario=%s, %d cluster nodes, 1 Hz sampling, %.0f min, "
              "margin %.1f ms\n",
              spec.scenario.c_str(), spec.workload.num_nodes, minutes, margin);

  // (margin, mp) configurations, one grid task each.
  const struct {
    double margin;
    bool mp;
  } configs[] = {{margin, false}, {0.0, false}, {0.0, true}};
  const auto series = ncb::grid(flags).map(std::size(configs), [&](std::size_t i) {
    return run_cluster(spec.workload, configs[i].margin, configs[i].mp);
  });
  const std::vector<double>& with_margin = series[0];
  const std::vector<double>& without = series[1];
  const std::vector<double>& mp_only = series[2];

  nc::eval::TextTable t({"t(min)", "confidence-building", "none", "mp-only"});
  for (std::size_t i = 0; i < with_margin.size(); ++i) {
    t.add_row({nc::eval::fmt(static_cast<double>(i) * 15.0 / 60.0, 3),
               nc::eval::fmt(with_margin[i], 3),
               i < without.size() ? nc::eval::fmt(without[i], 3) : "-",
               i < mp_only.size() ? nc::eval::fmt(mp_only[i], 3) : "-"});
  }
  t.print(std::cout);

  const auto steady = [](const std::vector<double>& s) {
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = s.size() / 2; i < s.size(); ++i) {
      sum += s[i];
      ++n;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
  };
  std::printf("\nsteady-state confidence: building=%.3f none=%.3f mp-only=%.3f\n",
              steady(with_margin), steady(without), steady(mp_only));
  std::cout << "expected shape: 'building' near 1.0, the other two well below.\n";
  return 0;
}

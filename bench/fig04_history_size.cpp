// Fig. 4 — Prediction error of the Moving-Percentile filter vs history size
// (paper: with p = 25, per-link relative prediction error is minimized by a
// history of about four observations; h = 1 has outliers up to 61, h = 2 up
// to 15; long histories are not much worse but adapt slowly).
//
// For each link, the filter predicts the next observation; the relative
// error |prediction - observation| / observation is accumulated per link,
// and the distribution over links of the per-link 95th-percentile error is
// reported as boxplot rows (one per history size). Each history size is an
// independent grid task (its own trace pass), so --jobs parallelizes rows.
//
// Flags: --scenario (planetlab), --nodes (100; --full 269),
//        --hours (12; --full 72), --seed, --jobs, --percentile (25).
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "core/filters/mp_filter.hpp"
#include "latency/trace_generator.hpp"
#include "stats/boxplot.hpp"
#include "stats/p2_quantile.hpp"

namespace {

constexpr int kHistories[] = {1, 2, 4, 8, 16, 32, 64, 128};

// One trace pass with history h on every link; returns per-link p95 errors.
std::vector<double> run_history(const nc::lat::TraceGenConfig& cfg, int h,
                                double percentile) {
  struct LinkState {
    nc::MovingPercentileFilter filter;
    nc::stats::P2Quantile p95;
    LinkState(int history, double p) : filter(history, p), p95(0.95) {}
  };
  std::unordered_map<std::uint64_t, LinkState> links;
  nc::lat::TraceGenerator gen(cfg);
  while (auto rec = gen.next()) {
    const std::uint64_t key = (static_cast<std::uint64_t>(rec->src) << 32) |
                              static_cast<std::uint64_t>(rec->dst);
    auto [it, inserted] = links.try_emplace(key, h, percentile);
    LinkState& link = it->second;
    const auto prediction = link.filter.estimate();
    if (prediction.has_value())
      link.p95.add(std::fabs(*prediction - rec->rtt_ms) / rec->rtt_ms);
    link.filter.update(rec->rtt_ms);
  }
  std::vector<double> per_link;
  per_link.reserve(links.size());
  for (auto& [key, link] : links)
    if (link.p95.count() >= 16) per_link.push_back(link.p95.value());
  return per_link;
}

}  // namespace

int main(int argc, char** argv) {
  const nc::Flags flags = ncb::parse_flags(argc, argv, {"percentile"});
  nc::eval::ScenarioSpec spec = ncb::scenario_spec(
      flags, {.nodes = 100, .hours = 12.0, .full_nodes = 269, .full_hours = 72.0});
  const double percentile = flags.get_double("percentile", 25.0);
  const nc::lat::TraceGenConfig cfg = nc::eval::resolve_trace_config(spec.workload);

  ncb::print_header("Fig. 4: MP filter prediction error vs history size",
                    "h = 4 predicts best (p = 25); h = 1 suffers huge outliers");
  std::printf("workload: scenario=%s, %d nodes, %.1f h trace, p = %g, seed %llu\n",
              spec.scenario.c_str(), spec.workload.num_nodes,
              spec.workload.duration_s / 3600.0, percentile,
              static_cast<unsigned long long>(cfg.seed));

  const auto rows = ncb::grid(flags).map(std::size(kHistories), [&](std::size_t i) {
    return run_history(cfg, kHistories[i], percentile);
  });

  std::cout << "\nper-link 95th-percentile relative error, boxplot over the\n"
               "directed links with >= 16 predictions at each history size:\n";
  nc::eval::TextTable table({"history", "q1", "median", "q3", "whisker-hi", "max",
                             "outlier-links"});
  for (std::size_t f = 0; f < std::size(kHistories); ++f) {
    if (rows[f].empty()) continue;
    const auto b = nc::stats::boxplot(rows[f]);
    table.add_row({std::to_string(kHistories[f]), nc::eval::fmt(b.q1, 3),
                   nc::eval::fmt(b.median, 3), nc::eval::fmt(b.q3, 3),
                   nc::eval::fmt(b.whisker_hi, 3), nc::eval::fmt(b.max, 3),
                   std::to_string(b.outliers)});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: median/q3 dip around h=4-8; max at h=1 is an\n"
               "order of magnitude above the rest (first-sample outliers).\n";
  return 0;
}

// Fig. 4 — Prediction error of the Moving-Percentile filter vs history size
// (paper: with p = 25, per-link relative prediction error is minimized by a
// history of about four observations; h = 1 has outliers up to 61, h = 2 up
// to 15; long histories are not much worse but adapt slowly).
//
// For each link, the filter predicts the next observation; the relative
// error |prediction - observation| / observation is accumulated per link,
// and the distribution over links of the per-link 95th-percentile error is
// reported as boxplot rows (one per history size).
//
// Flags: --nodes (100; --full 269), --hours (12; --full 72), --seed.
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "core/filters/mp_filter.hpp"
#include "latency/trace_generator.hpp"
#include "stats/boxplot.hpp"
#include "stats/p2_quantile.hpp"

namespace {

constexpr int kHistories[] = {1, 2, 4, 8, 16, 32, 64, 128};
constexpr int kNumHistories = 8;

struct LinkState {
  std::vector<nc::MovingPercentileFilter> filters;
  std::vector<nc::stats::P2Quantile> p95;

  LinkState(double percentile) {
    filters.reserve(kNumHistories);
    p95.reserve(kNumHistories);
    for (int h : kHistories) {
      filters.emplace_back(h, percentile);
      p95.emplace_back(0.95);
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  const nc::Flags flags(argc, argv);
  const bool full = flags.get_bool("full", false);
  const int nodes = static_cast<int>(flags.get_int("nodes", full ? 269 : 100));
  const double hours = flags.get_double("hours", full ? 72.0 : 12.0);
  const double percentile = flags.get_double("percentile", 25.0);

  nc::lat::TraceGenConfig cfg;
  cfg.topology.num_nodes = nodes;
  cfg.duration_s = hours * 3600.0;
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  cfg.topology.seed = cfg.seed;

  ncb::print_header("Fig. 4: MP filter prediction error vs history size",
                    "h = 4 predicts best (p = 25); h = 1 suffers huge outliers");
  std::printf("workload: %d nodes, %.1f h trace, p = %g, seed %llu\n", nodes, hours,
              percentile, static_cast<unsigned long long>(cfg.seed));

  nc::lat::TraceGenerator gen(cfg);
  std::unordered_map<std::uint64_t, LinkState> links;
  while (auto rec = gen.next()) {
    const std::uint64_t key = (static_cast<std::uint64_t>(rec->src) << 32) |
                              static_cast<std::uint64_t>(rec->dst);
    auto [it, inserted] = links.try_emplace(key, percentile);
    LinkState& link = it->second;
    for (int f = 0; f < kNumHistories; ++f) {
      const auto prediction = link.filters[static_cast<std::size_t>(f)].estimate();
      if (prediction.has_value()) {
        const double err = std::fabs(*prediction - rec->rtt_ms) / rec->rtt_ms;
        link.p95[static_cast<std::size_t>(f)].add(err);
      }
      link.filters[static_cast<std::size_t>(f)].update(rec->rtt_ms);
    }
  }

  std::cout << "\nper-link 95th-percentile relative error, boxplot over "
            << links.size() << " directed links:\n";
  nc::eval::TextTable table({"history", "q1", "median", "q3", "whisker-hi", "max",
                             "outlier-links"});
  for (int f = 0; f < kNumHistories; ++f) {
    std::vector<double> per_link;
    per_link.reserve(links.size());
    for (auto& [key, link] : links) {
      if (link.p95[static_cast<std::size_t>(f)].count() >= 16)
        per_link.push_back(link.p95[static_cast<std::size_t>(f)].value());
    }
    if (per_link.empty()) continue;
    const auto b = nc::stats::boxplot(std::move(per_link));
    table.add_row({std::to_string(kHistories[f]), nc::eval::fmt(b.q1, 3),
                   nc::eval::fmt(b.median, 3), nc::eval::fmt(b.q3, 3),
                   nc::eval::fmt(b.whisker_hi, 3), nc::eval::fmt(b.max, 3),
                   std::to_string(b.outliers)});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: median/q3 dip around h=4-8; max at h=1 is an\n"
               "order of magnitude above the rest (first-sample outliers).\n";
  return 0;
}

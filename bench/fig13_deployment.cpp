// Fig. 13 — The live-deployment experiment (paper Sec. VI): four coordinate
// systems run side by side on the same 270 nodes for four hours with 5 s
// round-robin sampling and gossip. With the MP filter only 14% of nodes see
// a 95th-percentile relative error above 1 (62% without); ENERGY falls below
// even the raw filter's minimum instability 91% of the time. Combined:
// median 95th-percentile error -54%, instability -96%.
//
// Our online simulator reproduces the methodology: all four configurations
// share one seed, so they see identical ping schedules, losses and RTT
// streams (the analogue of running on the same hosts at the same time).
//
// Flags: --scenario (planetlab), --nodes (270), --hours (4), --seed (7),
//        --jobs, --interval (5), --shards (worker shards per run on the
//        epoch-sharded kernel; 0/1 = one shard).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const nc::Flags flags = ncb::parse_flags(argc, argv, {"interval"});
  nc::eval::ScenarioSpec base = ncb::scenario_spec(
      flags,
      {.nodes = 270, .full_nodes = 270, .seed = 7, .mode = nc::eval::SimMode::kOnline});
  base.workload.ping_interval_s = flags.get_double("interval", 5.0);

  ncb::print_header("Fig. 13: deployment, 2x2 {MP filter} x {ENERGY}",
                    "median 95th-pct error -54%, instability -96%; 14% vs 62% "
                    "of nodes with 95th-pct error > 1");
  ncb::print_workload(base);

  // 2x2 {MP, none} x {ENERGY, always}: em, rm, en, rn — one grid pass.
  std::vector<nc::eval::ScenarioSpec> specs;
  for (const bool mp : {true, false})
    for (const bool energy : {true, false}) {
      nc::eval::ScenarioSpec spec = base;
      spec.client.filter = mp ? nc::FilterConfig::moving_percentile(4, 25)
                              : nc::FilterConfig::none();
      spec.client.heuristic = energy ? nc::HeuristicConfig::energy(8.0, 32)
                                     : nc::HeuristicConfig::always();
      specs.push_back(std::move(spec));
    }
  auto outs = ncb::grid(flags).run(specs);
  const nc::eval::ScenarioOutput& em = outs[0];  // Energy + MP
  const nc::eval::ScenarioOutput& rm = outs[1];  // Raw MP
  const nc::eval::ScenarioOutput& en = outs[2];  // Energy + No filter
  const nc::eval::ScenarioOutput& rn = outs[3];  // Raw, no filter

  const auto em_err = em.metrics.per_node_p95_error();
  const auto rm_err = rm.metrics.per_node_p95_error();
  const auto en_err = en.metrics.per_node_p95_error();
  const auto rn_err = rn.metrics.per_node_p95_error();
  nc::eval::print_cdf_table(std::cout,
                            "\n95th-percentile relative error (CDF over nodes)",
                            {{"energy+mp", &em_err},
                             {"raw-mp", &rm_err},
                             {"energy+nofilter", &en_err},
                             {"raw-nofilter", &rn_err}});

  const auto em_inst = em.metrics.instability();
  const auto rm_inst = rm.metrics.instability();
  const auto en_inst = en.metrics.instability();
  const auto rn_inst = rn.metrics.instability();
  nc::eval::print_cdf_table(std::cout, "\ninstability, ms/s (CDF over seconds)",
                            {{"energy+mp", &em_inst},
                             {"raw-mp", &rm_inst},
                             {"energy+nofilter", &en_inst},
                             {"raw-nofilter", &rn_inst}});

  std::printf("\nnodes with 95th-pct error > 1: mp=%.0f%%  no-filter=%.0f%%"
              "   (paper: 14%% vs 62%%)\n",
              100.0 * rm_err.fraction_above(1.0),
              100.0 * rn_err.fraction_above(1.0));
  std::printf("energy+mp below raw-mp minimum instability: %.0f%% of seconds"
              "   (paper: 91%%)\n",
              100.0 * em_inst.fraction_at_or_below(rm_inst.min()));
  std::printf("median 95th-pct error: energy+mp=%.3f raw-nofilter=%.3f (%+.0f%%;"
              " paper -54%%)\n",
              em_err.median(), rn_err.median(),
              100.0 * (em_err.median() / rn_err.median() - 1.0));
  std::printf("median instability: energy+mp=%.2f raw-nofilter=%.2f\n",
              em_inst.median(), rn_inst.median());
  std::printf("mean instability:   energy+mp=%.2f raw-nofilter=%.2f (%+.0f%%;"
              " paper -96%%)\n",
              em.metrics.mean_instability_ms_per_s(),
              rn.metrics.mean_instability_ms_per_s(),
              100.0 * (em.metrics.mean_instability_ms_per_s() /
                           rn.metrics.mean_instability_ms_per_s() -
                       1.0));
  return 0;
}

// Ablation — adaptation to a route change (paper Sec. VII-B): de Launois et
// al. stabilize Vivaldi by damping each new measurement's weight toward
// zero, which "prevents the algorithm from adapting to changing network
// conditions". Here every link of one node multiplies in latency mid-run; a
// healthy system re-embeds the node, the damped one cannot. Error is
// measured against the ground-truth oracle before and after the shift.
//
// Flags: --scenario (planetlab), --nodes (80), --hours (1.5), --seed, --jobs,
//        --factor (2).
#include <cstdio>

#include "bench_common.hpp"

namespace {

struct Config {
  const char* name;
  nc::FilterConfig filter;
  nc::HeuristicConfig heuristic;
  double damping;
};

struct Phase {
  double changed_node_err;  // oracle median error of the perturbed node 0
  double median_err;
};

// Measurement window [start, end); same seed => same workload.
nc::eval::ScenarioSpec phase_spec(const nc::eval::ScenarioSpec& base,
                                  const Config& cfg, double start, double end) {
  nc::eval::ScenarioSpec spec = base;
  spec.workload.duration_s = end;
  spec.measurement.measure_start_s = start;
  spec.measurement.collect_oracle = true;
  spec.client.filter = cfg.filter;
  spec.client.heuristic = cfg.heuristic;
  spec.client.vivaldi.delaunois_damping = cfg.damping;
  return spec;
}

Phase to_phase(const nc::eval::ScenarioOutput& out) {
  return {out.metrics.oracle_median_error_of(0),
          out.metrics.oracle_per_node_median_error().median()};
}

}  // namespace

int main(int argc, char** argv) {
  const nc::Flags flags = ncb::parse_flags(argc, argv, {"factor"});
  nc::eval::ScenarioSpec base = ncb::scenario_spec(
      flags, {.nodes = 80, .hours = 1.5, .full_nodes = 269, .full_hours = 4.0});
  const double factor = flags.get_double("factor", 2.0);
  // Clean single-variable experiment: no churn, and node 0 stays up.
  base.workload.availability = nc::lat::AvailabilityConfig{.enabled = false};
  const double change_t = base.workload.duration_s / 2.0;
  for (nc::NodeId j = 1; j < base.workload.num_nodes; ++j)
    base.workload.route_changes.push_back({0, j, factor, change_t});

  ncb::print_header("Ablation: adaptation after a route change",
                    "de Launois damping stabilizes but freezes; the paper's "
                    "MP+ENERGY keeps adapting");
  ncb::print_workload(base);
  std::printf("event: at t=%.2f h every link of node 0 multiplies by %.1fx\n",
              change_t / 3600.0, factor);

  const Config configs[] = {
      {"mp+energy", nc::FilterConfig::moving_percentile(4, 25),
       nc::HeuristicConfig::energy(8.0, 32), 0.0},
      {"mp+raw", nc::FilterConfig::moving_percentile(4, 25),
       nc::HeuristicConfig::always(), 0.0},
      {"mp+raw damped(c=10)", nc::FilterConfig::moving_percentile(4, 25),
       nc::HeuristicConfig::always(), 10.0},
      {"mp+raw damped(c=50)", nc::FilterConfig::moving_percentile(4, 25),
       nc::HeuristicConfig::always(), 50.0},
  };

  // Phase A: the half hour before the change. Phase B: the final stretch
  // after it, giving each system time to re-converge. All (config, phase)
  // points are independent: one grid pass over the 4x2 matrix.
  const double pre_start = change_t - 0.25 * base.workload.duration_s;
  const double post_start = change_t + 0.25 * base.workload.duration_s;

  std::vector<nc::eval::ScenarioSpec> specs;
  for (const Config& cfg : configs) {
    specs.push_back(phase_spec(base, cfg, pre_start, change_t));
    specs.push_back(phase_spec(base, cfg, post_start, base.workload.duration_s));
  }
  const auto outs = ncb::grid(flags).run(specs);

  nc::eval::TextTable t({"config", "node-0 err (before)", "node-0 err (after)",
                         "median err (after)"});
  for (std::size_t i = 0; i < std::size(configs); ++i) {
    const Phase before = to_phase(outs[2 * i]);
    const Phase after = to_phase(outs[2 * i + 1]);
    t.add_row({configs[i].name, nc::eval::fmt(before.changed_node_err, 3),
               nc::eval::fmt(after.changed_node_err, 3),
               nc::eval::fmt(after.median_err, 3)});
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: undamped raw Vivaldi recovers after the change\n"
               "(node-0 error heads back toward its pre-change level); damped rows\n"
               "stay high. ENERGY lands between raw and damped here: while the\n"
               "perturbed node's spring is still violently re-converging, its\n"
               "sparse change points publish mid-flight centroids — the stability/\n"
               "agility trade-off surfacing during a drastic network change.\n";
  return 0;
}

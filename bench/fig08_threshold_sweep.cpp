// Fig. 8 — Instability and median relative error vs update threshold for
// the window-based heuristics, window fixed at 32 (paper: RELATIVE's
// stability rises near-linearly with eps_r and ENERGY's smoothly with tau;
// accuracy holds until tau = 8 (ENERGY) / eps_r = 0.3 (RELATIVE), the
// parameters used for the deployment).
//
// Flags: --scenario (planetlab), --nodes (269), --hours (2; --full 4),
//        --seed, --jobs, --window (32), --energy-taus=..., --relative-eps=...
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const nc::Flags flags =
      ncb::parse_flags(argc, argv, {"window", "energy-taus", "relative-eps"});
  nc::eval::ScenarioSpec spec =
      ncb::scenario_spec(flags, {.hours = 2.0, .full_hours = 4.0});
  const int window = static_cast<int>(flags.get_int("window", 32));
  const auto taus =
      flags.get_double_list("energy-taus", {1, 2, 4, 8, 16, 32, 64, 128, 256});
  const auto epss = flags.get_double_list(
      "relative-eps", {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9});
  const auto grid = ncb::grid(flags);

  ncb::print_header("Fig. 8: threshold sweep for ENERGY and RELATIVE (window 32)",
                    "stability rises with threshold; accuracy knees at "
                    "tau=8 / eps_r=0.3");
  ncb::print_workload(spec);

  std::vector<nc::HeuristicConfig> heuristics;
  for (double tau : taus)
    heuristics.push_back(nc::HeuristicConfig::energy(tau, window));
  for (double eps : epss)
    heuristics.push_back(nc::HeuristicConfig::relative(eps, window));
  const auto points = ncb::run_points(spec, heuristics, grid);

  std::cout << "\nENERGY:\n";
  nc::eval::TextTable et({"tau", "median rel err", "instability", "%nodes-upd/s"});
  for (std::size_t i = 0; i < taus.size(); ++i) {
    const ncb::SweepPoint& p = points[i];
    et.add_row({nc::eval::fmt(taus[i], 4), nc::eval::fmt(p.median_error, 3),
                nc::eval::fmt(p.instability, 4), nc::eval::fmt(p.pct_updates, 3)});
  }
  et.print(std::cout);

  std::cout << "\nRELATIVE:\n";
  nc::eval::TextTable rt({"eps_r", "median rel err", "instability", "%nodes-upd/s"});
  for (std::size_t i = 0; i < epss.size(); ++i) {
    const ncb::SweepPoint& p = points[taus.size() + i];
    rt.add_row({nc::eval::fmt(epss[i], 3), nc::eval::fmt(p.median_error, 3),
                nc::eval::fmt(p.instability, 4), nc::eval::fmt(p.pct_updates, 3)});
  }
  rt.print(std::cout);

  std::cout << "\nexpected shape: instability falls monotonically as the threshold\n"
               "grows; error stays flat through the paper's operating points\n"
               "(tau=8, eps_r=0.3) and degrades beyond them.\n";
  return 0;
}

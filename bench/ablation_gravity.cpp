// Ablation — gravity as drift control (extension; deployed later in Pyxida,
// Ledlie's production implementation). Fig. 7 shows coordinates translating
// steadily: spring forces constrain only pairwise distances, so the whole
// space is free to drift, forcing application-coordinate updates that carry
// no information. A weak gravity well (pull toward the origin of
// (||x||/rho)^2 ms per update) anchors the space.
//
// Flags: --scenario (planetlab), --nodes (100), --hours (3), --seed, --jobs,
//        --rho list.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const nc::Flags flags = ncb::parse_flags(argc, argv, {"rho"});
  nc::eval::ScenarioSpec base = ncb::scenario_spec(
      flags, {.nodes = 100, .hours = 3.0, .full_nodes = 269, .full_hours = 4.0});
  base.client.heuristic = nc::HeuristicConfig::energy(8.0, 32);
  base.measurement.track_interval_s = 600.0;
  const int track_step = std::max(1, base.workload.num_nodes / 8);
  for (nc::NodeId id = 0; id < base.workload.num_nodes; id += track_step)
    base.measurement.tracked_nodes.push_back(id);
  const auto rhos = flags.get_double_list("rho", {0.0, 2000.0, 500.0});

  ncb::print_header("Ablation: gravity (Pyxida-style drift control)",
                    "spring forces fix pairwise distances only; the space "
                    "itself translates (Fig. 7) unless anchored");
  ncb::print_workload(base);

  std::vector<nc::eval::ScenarioSpec> specs(rhos.size(), base);
  for (std::size_t i = 0; i < rhos.size(); ++i)
    specs[i].client.vivaldi.gravity_rho = rhos[i];
  const auto outs = ncb::grid(flags).run(specs);

  nc::eval::TextTable t({"gravity rho", "median rel err", "mean instab",
                         "centroid norm (ms)", "mean node drift (ms)"});
  for (std::size_t i = 0; i < rhos.size(); ++i) {
    const double rho = rhos[i];
    const auto& out = outs[i];

    // Global translation: how far off-origin the cloud of tracked nodes sits
    // at the end of the run. Gravity controls this; it cannot (and should
    // not) stop per-node movement that tracks genuine network change.
    nc::Vec centroid = nc::Vec::zero(specs[i].client.vivaldi.dim);
    double drift_sum = 0.0;
    int n = 0;
    for (nc::NodeId id : base.measurement.tracked_nodes) {
      const auto& d = out.metrics.drift(id);
      if (d.size() < 2) continue;
      centroid += d.back().position;
      drift_sum += d.back().position.distance_to(d.front().position);
      ++n;
    }
    if (n > 0) centroid /= static_cast<double>(n);
    t.add_row({rho == 0.0 ? "off" : nc::eval::fmt(rho, 5),
               nc::eval::fmt(out.metrics.median_relative_error(), 3),
               nc::eval::fmt(out.metrics.mean_instability_ms_per_s(), 4),
               n ? nc::eval::fmt(centroid.norm(), 4) : "-",
               n ? nc::eval::fmt(drift_sum / n, 4) : "-"});
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: the centroid norm (global translation) shrinks as\n"
               "rho tightens while relative error is unchanged; per-node drift is\n"
               "mostly genuine network tracking and barely moves.\n";
  return 0;
}

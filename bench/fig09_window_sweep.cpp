// Fig. 9 — Error, instability and application-update frequency vs window
// size (paper: thresholds fixed at tau=8 / eps_r=0.3; windows of 2^5-2^9
// modestly improve accuracy while steadily increasing stability and cutting
// the fraction of nodes updating per second; at window 128 RELATIVE reaches
// ~7% error, ~5 ms/s instability and ~1% updates/s; they deploy window 32).
//
// Flags: --scenario (planetlab), --nodes (200; --full 269),
//        --hours (2; --full 4), --seed, --jobs, --max-log2 (12),
//        --energy-tau (8), --relative-eps (0.3).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const nc::Flags flags =
      ncb::parse_flags(argc, argv, {"max-log2", "energy-tau", "relative-eps"});
  nc::eval::ScenarioSpec spec = ncb::scenario_spec(
      flags, {.nodes = 200, .hours = 2.0, .full_nodes = 269, .full_hours = 4.0});
  const int max_log2 = static_cast<int>(flags.get_int("max-log2", 12));
  const double tau = flags.get_double("energy-tau", 8.0);
  const double eps = flags.get_double("relative-eps", 0.3);
  const auto grid = ncb::grid(flags);

  ncb::print_header("Fig. 9: window-size sweep for ENERGY and RELATIVE",
                    "large windows (2^5..2^9) improve all three metrics; very "
                    "large windows update too rarely");
  ncb::print_workload(spec);

  for (int which = 0; which < 2; ++which) {
    std::cout << (which == 0 ? "\nENERGY (tau=" + nc::eval::fmt(tau, 3) + "):\n"
                             : "\nRELATIVE (eps_r=" + nc::eval::fmt(eps, 3) + "):\n");
    std::vector<nc::HeuristicConfig> heuristics;
    for (int lg = 2; lg <= max_log2; ++lg) {
      const int window = 1 << lg;
      heuristics.push_back(which == 0 ? nc::HeuristicConfig::energy(tau, window)
                                      : nc::HeuristicConfig::relative(eps, window));
    }
    const auto points = ncb::run_points(spec, heuristics, grid);
    nc::eval::TextTable t({"window", "median rel err", "instability", "%nodes-upd/s"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      const int lg = 2 + static_cast<int>(i);
      const ncb::SweepPoint& p = points[i];
      t.add_row({"2^" + std::to_string(lg) + "=" + std::to_string(1 << lg),
                 nc::eval::fmt(p.median_error, 3), nc::eval::fmt(p.instability, 4),
                 nc::eval::fmt(p.pct_updates, 3)});
    }
    t.print(std::cout);
  }
  std::cout << "\nexpected shape: instability and update rate fall as the window\n"
               "grows; error is flat or slightly improving through mid-size\n"
               "windows and worsens only for the largest (too few updates).\n";
  return 0;
}

// Serving-tier bench: tail latency of the CoordinateService under open-loop
// load, CONCURRENT with the engine advancing the embedding.
//
// ISSUE 8's acceptance bench. The engine runs an online scenario on its own
// thread with snapshot publication on; run_open_loop fires Poisson query
// arrivals (distance / nearest-k / centroid mix) against the publisher from
// `--clients` threads at `--rate` aggregate qps, measuring each query from
// its SCHEDULED arrival (serve/load_generator.hpp — no coordinated
// omission). Each row reports achieved throughput plus p50/p95/p99/p999/max
// microseconds for the BENCH record's "serving" section;
// scripts/bench_diff.py gates p99 and qps across PRs.
//
// ISSUE 10 adds --snapshot-deltas: churn-proportional publication (full base
// every --base-interval publishes, compact deltas between). Each row also
// reports snapshot_publish_bytes_per_epoch — the mean wire bytes one publish
// costs — which bench_diff gates downward; with deltas on it should sit at a
// small fraction of the full-buffer cost on a churny scenario. --selfcheck
// runs a shadow reader that reconstructs the delta stream through a
// SnapshotView during the run and fails the bench loudly if the final
// reconstructed view differs from the published full snapshot in any slot.
//
// The serving path never waits on the shard workers (one snapshot-pointer
// copy per query; O(changed slots) per refresh under deltas), so on a
// multi-core host engine events/s should match the unloaded
// bench_event_core rows; on a 1-core container the two tiers time-slice and
// the tail mostly measures scheduler preemption — compare records from the
// same host class only.
//
// Flags: standard (--scenario picks ONE preset; default runs the planetlab
//        and churn presets back to back), --nodes (269), --hours (0.25),
//        --seed (7), --shards (2), plus
//        --clients (2)        open-loop client threads
//        --rate (5000)        aggregate target qps across clients
//        --load-seconds (5)   wall-clock load length per scenario
//        --k (5)              nearest-k fan-out
//        --snapshot-deltas    publish delta snapshots instead of full buffers
//        --base-interval (16) full-base cadence under --snapshot-deltas
//        --selfcheck          verify delta reconstruction == full snapshot
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/load_generator.hpp"
#include "sim/sharded_sim.hpp"

namespace {

struct Row {
  std::string scenario;
  int nodes = 0;
  int shards = 0;
  bool snapshot_deltas = false;
  nc::serve::LoadConfig load;
  nc::serve::LoadReport report;
  std::uint64_t snapshots = 0;      // versions published by the engine
  double publish_bytes_per_epoch = 0.0;  // mean wire bytes per publish
  std::uint64_t engine_events = 0;  // kernel events processed
  double engine_wall_s = 0.0;       // engine thread, construction to join
};

struct DeltaOptions {
  bool enabled = false;
  int base_interval = 16;
  bool selfcheck = false;
};

Row run_one(const nc::eval::ScenarioSpec& spec,
            const nc::serve::LoadConfig& load, const DeltaOptions& deltas) {
  const int shards = std::max(1, spec.shards);
  nc::sim::OnlineSimConfig oc = nc::eval::resolve_online_config(spec);
  oc.publish_snapshots = true;
  oc.snapshot_deltas = deltas.enabled;
  oc.snapshot_base_interval = deltas.base_interval;

  const auto t0 = std::chrono::steady_clock::now();
  nc::sim::ShardedEngine engine(
      oc, shards,
      nc::lat::Topology::make(nc::eval::resolve_topology_config(spec.workload)),
      spec.workload.link_model.value_or(nc::lat::LinkModelConfig{}),
      spec.workload.availability.value_or(nc::lat::AvailabilityConfig{}),
      nc::eval::resolve_route_changes(spec.workload));

  // The engine advances on its own thread; the open-loop clients query its
  // publisher concurrently. The load runs its full wall-clock length even if
  // the simulation finishes first (late queries then hit the final
  // snapshot), so rows at one rate stay comparable.
  std::exception_ptr engine_error;
  std::thread engine_thread([&] {
    try {
      engine.run();
    } catch (...) {
      engine_error = std::current_exception();
    }
  });

  // Shadow reconstruction check: a reader that follows the delta stream the
  // whole run (so mid-run catch-up paths are exercised, not just the final
  // base copy) and must land exactly on the published end state.
  std::atomic<bool> check_stop{false};
  std::atomic<bool> check_ok{true};
  std::thread checker;
  if (deltas.selfcheck) {
    checker = std::thread([&] {
      nc::est::SnapshotView view(&engine.snapshot_publisher());
      while (!check_stop.load(std::memory_order_acquire)) {
        view.refresh();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      const nc::est::EpochSnapshot* rec = view.refresh();
      const auto full = engine.snapshot_publisher().latest();
      const bool ok = rec != nullptr && full != nullptr &&
                      rec->version == full->version &&
                      rec->nodes == full->nodes;
      if (!ok) check_ok.store(false, std::memory_order_release);
    });
  }

  Row row;
  row.report =
      nc::serve::run_open_loop(engine.snapshot_publisher(), engine.num_nodes(),
                               load);
  engine_thread.join();
  if (checker.joinable()) {
    check_stop.store(true, std::memory_order_release);
    checker.join();
  }
  if (engine_error) std::rethrow_exception(engine_error);
  if (!check_ok.load()) {
    std::fprintf(stderr,
                 "SELFCHECK FAILED: delta-reconstructed view differs from "
                 "the published full snapshot (scenario %s)\n",
                 spec.scenario.c_str());
    std::exit(1);
  }

  const nc::est::SnapshotPublisher& pub = engine.snapshot_publisher();
  row.scenario = spec.scenario;
  row.nodes = engine.num_nodes();
  row.shards = shards;
  row.snapshot_deltas = deltas.enabled;
  row.load = load;
  row.snapshots = pub.published();
  if (pub.published() > 0)
    row.publish_bytes_per_epoch =
        static_cast<double>(pub.published_base_bytes() +
                            pub.published_delta_bytes()) /
        static_cast<double>(pub.published());
  row.engine_events = engine.events_processed();
  row.engine_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return row;
}

void print_row(const Row& r) {
  const nc::serve::LoadReport& rep = r.report;
  std::printf("%12s %6d %6d %7d %9.0f %9.0f %8.1f %8.1f %8.1f %8.1f %8.1f\n",
              r.scenario.c_str(), r.nodes, r.shards, r.load.clients,
              r.load.rate_qps, rep.qps(), rep.latency.p50_us(),
              rep.latency.p95_us(), rep.latency.p99_us(),
              rep.latency.p999_us(),
              static_cast<double>(rep.latency.max_ns()) / 1000.0);
  std::printf(
      "  json: {\"scenario\": \"%s\", \"nodes\": %d, \"shards\": %d, "
      "\"clients\": %d, \"rate_qps\": %.0f, \"duration_s\": %.2f, "
      "\"queries\": %llu, \"answered\": %llu, \"empty\": %llu, "
      "\"qps\": %.0f, \"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f, "
      "\"p999_us\": %.1f, \"max_us\": %.1f, \"snapshot_first\": %llu, "
      "\"snapshot_last\": %llu, \"snapshots\": %llu, "
      "\"snapshot_deltas\": %d, \"snapshot_publish_bytes_per_epoch\": %.1f, "
      "\"engine_events\": %llu, \"engine_wall_s\": %.2f}\n",
      r.scenario.c_str(), r.nodes, r.shards, r.load.clients, r.load.rate_qps,
      rep.elapsed_s, static_cast<unsigned long long>(rep.issued),
      static_cast<unsigned long long>(rep.answered),
      static_cast<unsigned long long>(rep.service.empty_answers), rep.qps(),
      rep.latency.p50_us(), rep.latency.p95_us(), rep.latency.p99_us(),
      rep.latency.p999_us(),
      static_cast<double>(rep.latency.max_ns()) / 1000.0,
      static_cast<unsigned long long>(rep.first_version),
      static_cast<unsigned long long>(rep.last_version),
      static_cast<unsigned long long>(r.snapshots),
      r.snapshot_deltas ? 1 : 0, r.publish_bytes_per_epoch,
      static_cast<unsigned long long>(r.engine_events), r.engine_wall_s);
}

}  // namespace

int main(int argc, char** argv) {
  const nc::Flags flags =
      ncb::parse_flags(argc, argv,
                       {"clients", "rate", "load-seconds", "k",
                        "snapshot-deltas", "base-interval", "selfcheck"});

  nc::serve::LoadConfig load;
  load.clients = static_cast<int>(flags.get_int("clients", 2));
  load.rate_qps = flags.get_double("rate", 5000.0);
  load.duration_s = flags.get_double("load-seconds", 5.0);
  load.k = static_cast<int>(flags.get_int("k", 5));

  DeltaOptions deltas;
  deltas.enabled = flags.get_bool("snapshot-deltas", false);
  deltas.base_interval =
      static_cast<int>(flags.get_int("base-interval", 16));
  deltas.selfcheck = flags.get_bool("selfcheck", false) && deltas.enabled;

  // One preset when --scenario is given, otherwise the default pair: the
  // steady embedding (planetlab) and the one that keeps rewriting itself
  // (churn) — the serving tail must hold in both.
  std::vector<std::string> names;
  const std::string chosen = flags.get_string("scenario", "");
  if (!chosen.empty())
    names.push_back(chosen);
  else
    names = {"planetlab", "churn"};

  ncb::print_header(
      "serving tier: open-loop query latency over published snapshots",
      "the coordinate system as a SERVICE: stable coordinates are only "
      "useful if applications can read them cheaply while the system runs");
  std::printf("\n%12s %6s %6s %7s %9s %9s %8s %8s %8s %8s %8s\n", "scenario",
              "nodes", "shards", "clients", "rate", "qps", "p50us", "p95us",
              "p99us", "p999us", "maxus");

  for (const std::string& name : names) {
    nc::eval::ScenarioSpec spec = ncb::scenario_spec(
        flags,
        {.nodes = 269, .hours = 0.25, .full_nodes = 269, .full_hours = 1.0,
         .seed = 7, .scenario = name.c_str(),
         .mode = nc::eval::SimMode::kOnline, .shards = 2});
    load.seed = spec.workload.seed;
    print_row(run_one(spec, load, deltas));
  }

  std::printf(
      "\nnote: open-loop (no coordinated omission) — latency is measured\n"
      "from each query's scheduled Poisson arrival, so service stalls are\n"
      "charged to the queries they delay. On a 1-core host the engine and\n"
      "the clients time-slice; cross-PR comparison needs same host class.\n");
  return 0;
}

// Fig. 11 — Application-level suppression vs the raw MP filter (paper: with
// their chosen parameters, RELATIVE and ENERGY leave the relative-error CDF
// unchanged while shifting the whole instability distribution into a far
// more stable regime).
//
// Flags: --scenario (planetlab), --nodes (269), --hours (4), --seed, --jobs,
//        --window (32).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const nc::Flags flags = ncb::parse_flags(argc, argv, {"window"});
  nc::eval::ScenarioSpec spec = ncb::scenario_spec(flags);
  const int window = static_cast<int>(flags.get_int("window", 32));

  ncb::print_header("Fig. 11: RELATIVE/ENERGY vs raw MP filter",
                    "error CDFs coincide; instability CDF shifts left by "
                    "orders of magnitude");
  ncb::print_workload(spec);

  std::vector<nc::eval::ScenarioSpec> specs(3, spec);
  specs[0].client.heuristic = nc::HeuristicConfig::always();
  specs[1].client.heuristic = nc::HeuristicConfig::energy(8.0, window);
  specs[2].client.heuristic = nc::HeuristicConfig::relative(0.3, window);
  auto outs = ncb::grid(flags).run(specs);
  const nc::eval::ScenarioOutput& raw = outs[0];
  const nc::eval::ScenarioOutput& energy = outs[1];
  const nc::eval::ScenarioOutput& relative = outs[2];

  const auto raw_err = raw.metrics.per_node_median_error();
  const auto en_err = energy.metrics.per_node_median_error();
  const auto re_err = relative.metrics.per_node_median_error();
  nc::eval::print_cdf_table(std::cout,
                            "\nmedian relative error (CDF over nodes)",
                            {{"energy+mp", &en_err},
                             {"relative+mp", &re_err},
                             {"raw-mp", &raw_err}});

  const auto raw_inst = raw.metrics.instability();
  const auto en_inst = energy.metrics.instability();
  const auto re_inst = relative.metrics.instability();
  nc::eval::print_cdf_table(std::cout, "\ninstability, ms/s (CDF over seconds)",
                            {{"energy+mp", &en_inst},
                             {"relative+mp", &re_inst},
                             {"raw-mp", &raw_inst}});

  std::printf("\nmean instability:   energy=%.2f relative=%.2f raw-mp=%.2f ms/s\n",
              energy.metrics.mean_instability_ms_per_s(),
              relative.metrics.mean_instability_ms_per_s(),
              raw.metrics.mean_instability_ms_per_s());
  std::printf("median error:       energy=%.4f relative=%.4f raw-mp=%.4f\n",
              energy.metrics.median_relative_error(),
              relative.metrics.median_relative_error(),
              raw.metrics.median_relative_error());
  return 0;
}

// Large-scale tier: the 100k-node run, end to end, within a fixed memory
// budget.
//
// ISSUE 7's acceptance bench. The event-core suite scores the kernel at
// bench-tier sizes (256/1k/4k); this tier runs the configurations the
// compact per-client link index (core/nc_client.hpp), the sparse shard
// link store (sim/link_store.hpp) and partitioned trace ingest
// (lat::partition_trace + ShardedEngine::run_partitioned) exist for:
//   * ONLINE runs at n in {10k, 50k, 100k} (1 sim hour by default) — the
//     per-row MemoryBudget breakdown is the point: client bytes must grow
//     ~linearly in n (the old dense per-client index made them quadratic),
//     and link bytes must track touched links, not n^2/W;
//   * a 10k-node REPLAY over a generated trace file, pre-partitioned by
//     owner shard so every worker ingests its own slice (wall time covers
//     partition + run; the one-pass generation is timed separately).
// Each row prints events/sec plus the MemoryBudget components as a JSON
// object for the BENCH_pr7.json record; scripts/bench_diff.py gates both
// events/sec and mem_bytes across PRs.
//
// Flags: --scenario (planetlab), --nodes (0 = the full 10k/50k/100k suite,
//        otherwise one size), --hours (1), --seed (7), --shards (1),
//        --online (1), --replay (1), --selfcheck (0: also run the
//        single-reader replay and require bit-identical metrics),
//        --trace-dir (/tmp: where generated traces and slices go).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "latency/trace.hpp"
#include "latency/trace_generator.hpp"
#include "sim/replay.hpp"
#include "sim/sharded_sim.hpp"

namespace {

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void print_row(const char* engine, int nodes, int shards, double wall,
               std::uint64_t events, double err,
               const nc::sim::MemoryBudget& mem) {
  const double rate = static_cast<double>(events) / wall;
  std::printf("%12s %7d %6d %10.2f %14llu %12.0f %10.4f %10s %10s %10s\n",
              engine, nodes, shards, wall,
              static_cast<unsigned long long>(events), rate, err,
              nc::eval::fmt_bytes(mem.client_bytes).c_str(),
              nc::eval::fmt_bytes(mem.link_bytes).c_str(),
              nc::eval::fmt_bytes(mem.total()).c_str());
  std::printf(
      "  json: {\"engine\": \"%s\", \"nodes\": %d, \"shards\": %d, "
      "\"wall_s\": %.2f, \"events\": %llu, \"events_per_s\": %.0f, "
      "\"median_err\": %.4f, \"mem_clients\": %llu, \"mem_links\": %llu, "
      "\"mem_estimator\": %llu, \"mem_mailbox\": %llu, "
      "\"mem_neighbors\": %llu, \"mem_snapshot_base\": %llu, "
      "\"mem_snapshot_delta\": %llu, \"mem_bytes\": %llu}\n",
      engine, nodes, shards, wall, static_cast<unsigned long long>(events),
      rate, err, static_cast<unsigned long long>(mem.client_bytes),
      static_cast<unsigned long long>(mem.link_bytes),
      static_cast<unsigned long long>(mem.estimator_bytes),
      static_cast<unsigned long long>(mem.mailbox_bytes),
      static_cast<unsigned long long>(mem.neighbor_bytes),
      static_cast<unsigned long long>(mem.snapshot_base_bytes),
      static_cast<unsigned long long>(mem.snapshot_delta_bytes),
      static_cast<unsigned long long>(mem.total()));
}

}  // namespace

int main(int argc, char** argv) {
  const nc::Flags flags = ncb::parse_flags_exact(
      argc, argv, {"scenario", "nodes", "hours", "seed", "shards", "online",
                   "replay", "selfcheck", "trace-dir"});
  nc::eval::ScenarioSpec base = ncb::scenario_spec(
      flags, {.nodes = 0, .hours = 1.0, .full_nodes = 0, .full_hours = 1.0,
              .seed = 7, .mode = nc::eval::SimMode::kOnline, .shards = 1});
  const int shards = std::max(1, base.shards);
  const bool run_online = flags.get_int("online", 1) != 0;
  const bool run_replay = flags.get_int("replay", 1) != 0;
  const bool selfcheck = flags.get_int("selfcheck", 0) != 0;
  const std::string trace_dir = flags.get_string("trace-dir", "/tmp");

  std::vector<int> online_sizes, replay_sizes;
  if (base.workload.num_nodes > 0) {
    online_sizes.push_back(base.workload.num_nodes);
    replay_sizes.push_back(base.workload.num_nodes);
  } else {
    online_sizes = {10000, 50000, 100000};
    replay_sizes = {10000};
  }

  ncb::print_header(
      "large scale: the 100k-node tier (compact indexes, sparse links, "
      "partitioned ingest)",
      "");
  std::printf("scenario=%s, %.2f h, seed %llu, shards %d\n",
              flags.get_string("scenario", "planetlab").c_str(),
              base.workload.duration_s / 3600.0,
              static_cast<unsigned long long>(base.workload.seed), shards);
  std::printf("\n%12s %7s %6s %10s %14s %12s %10s %10s %10s %10s\n", "engine",
              "nodes", "shards", "wall(s)", "events", "events/s", "median-err",
              "mem-cli", "mem-link", "mem-total");

  if (run_online) {
    for (const int n : online_sizes) {
      nc::eval::ScenarioSpec spec = base;
      spec.workload.num_nodes = n;
      spec.shards = shards;
      const auto t0 = std::chrono::steady_clock::now();
      nc::sim::ShardedEngine sim(
          nc::eval::resolve_online_config(spec), shards,
          nc::lat::Topology::make(
              nc::eval::resolve_topology_config(spec.workload)),
          spec.workload.link_model.value_or(nc::lat::LinkModelConfig{}),
          spec.workload.availability.value_or(nc::lat::AvailabilityConfig{}),
          nc::eval::resolve_route_changes(spec.workload));
      sim.run();
      print_row("online-large", n, shards, wall_seconds_since(t0),
                sim.events_processed(), sim.metrics().median_relative_error(),
                sim.memory_budget());
    }
  }

  if (run_replay) {
    for (const int n : replay_sizes) {
      nc::eval::ScenarioSpec rspec = base;
      rspec.mode = nc::eval::SimMode::kReplay;
      rspec.workload.num_nodes = n;
      nc::sim::ReplayConfig rc;
      rc.client = rspec.client;
      rc.duration_s = rspec.workload.duration_s;
      rc.measure_start_s = nc::eval::resolved_measure_start_s(rspec);
      rc.epoch_s = rspec.workload.ping_interval_s;
      rc.shards = shards;

      // One-pass generation to disk, then the one-pass splitter. Both are
      // timed outside the replay row: the row scores INGEST + replay, the
      // workload a recorded real-world trace gives us.
      const std::string prefix =
          trace_dir + "/bench_large_scale_" + std::to_string(n);
      const std::string whole = prefix + ".nctr";
      const auto tgen = std::chrono::steady_clock::now();
      const std::uint64_t written = nc::lat::generate_trace_file(
          nc::eval::resolve_trace_config(rspec.workload), whole);
      std::printf("  trace: %llu records in %.2f s -> %s\n",
                  static_cast<unsigned long long>(written),
                  wall_seconds_since(tgen), whole.c_str());

      const auto t0 = std::chrono::steady_clock::now();
      std::vector<std::string> slice_paths;
      {
        nc::lat::TraceReader whole_reader(whole);
        slice_paths = nc::lat::partition_trace(whole_reader, prefix, n, shards);
      }
      std::vector<std::unique_ptr<nc::lat::TraceReader>> slices;
      std::vector<nc::lat::TraceSource*> sources;
      for (const std::string& p : slice_paths) {
        slices.push_back(std::make_unique<nc::lat::TraceReader>(p));
        sources.push_back(slices.back().get());
      }
      nc::sim::ReplayDriver driver(rc, n);
      driver.run_partitioned(sources);
      print_row("replay-large", n, shards, wall_seconds_since(t0),
                driver.events_processed(),
                driver.metrics().median_relative_error(),
                driver.memory_budget());

      if (selfcheck) {
        // The partitioned ingest must be bit-identical to the single-reader
        // path on the unsplit trace — the run aborts loudly if not.
        nc::lat::TraceReader whole_reader(whole);
        nc::sim::ReplayDriver ref(rc, n);
        ref.run(whole_reader);
        NC_CHECK_MSG(
            ref.metrics().median_relative_error() ==
                    driver.metrics().median_relative_error() &&
                ref.metrics().observation_count() ==
                    driver.metrics().observation_count() &&
                ref.events_processed() == driver.events_processed(),
            "partitioned replay diverged from the single reader "
            "(determinism bug)");
        std::printf("  selfcheck: partitioned == single-reader (err, obs, "
                    "events)\n");
      }
      for (const std::string& p : slice_paths) std::remove(p.c_str());
      std::remove(whole.c_str());
    }
  }

  std::printf(
      "\nnote: client bytes must grow ~linearly in n (compact per-client\n"
      "index; the dense form was quadratic in aggregate), and link bytes\n"
      "track touched links, not n^2/W. Replay rows cover partition + run;\n"
      "trace generation is printed separately. Shard speedup needs real\n"
      "cores.\n");
  return 0;
}

// Ablation — why the original Vivaldi evaluation missed the problem.
//
// The SIGCOMM'04 evaluation drove Vivaldi from a derived latency MATRIX:
// every link returned the same l_ij on every sample. This bench runs raw
// (unfiltered) Vivaldi on exactly that world and then on the realistic
// stream, same topology and seed. On the matrix, raw Vivaldi is accurate
// and almost perfectly stable — nothing to fix. On the stream it falls
// apart, and the paper's MP filter restores it. This is the paper's core
// observation (Sec. I and III) as a single table.
//
// Flags: --scenario (planetlab), --nodes (150), --hours (2), --seed, --jobs.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const nc::Flags flags = ncb::parse_flags(argc, argv);
  nc::eval::ScenarioSpec base = ncb::scenario_spec(
      flags, {.nodes = 150, .hours = 2.0, .full_nodes = 269, .full_hours = 4.0});
  base.client.heuristic = nc::HeuristicConfig::always();

  ncb::print_header("Ablation: static latency matrix vs live sample stream",
                    "the original evaluation (fixed l_ij) shows no instability; "
                    "real streams break raw Vivaldi; the MP filter repairs it");
  ncb::print_workload(base);

  struct Row {
    const char* world;
    const char* filter_name;
    bool noiseless;
    nc::FilterConfig filter;
  };
  const Row rows[] = {
      {"static matrix", "none", true, nc::FilterConfig::none()},
      {"live stream", "none", false, nc::FilterConfig::none()},
      {"live stream", "mp(4,25)", false, nc::FilterConfig::moving_percentile(4, 25)},
  };

  std::vector<nc::eval::ScenarioSpec> specs;
  for (const Row& row : rows) {
    nc::eval::ScenarioSpec spec = base;
    spec.client.filter = row.filter;
    if (row.noiseless) {
      spec.workload.link_model = nc::lat::LinkModelConfig::noiseless();
      spec.workload.availability = nc::lat::AvailabilityConfig{.enabled = false};
    }
    specs.push_back(std::move(spec));
  }
  const auto outs = ncb::grid(flags).run(specs);

  nc::eval::TextTable t({"world", "filter", "median rel err", "mean instab (ms/s)",
                         "instab p99"});
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    const auto& out = outs[i];
    t.add_row({rows[i].world, rows[i].filter_name,
               nc::eval::fmt(out.metrics.median_relative_error(), 3),
               nc::eval::fmt(out.metrics.mean_instability_ms_per_s(), 4),
               nc::eval::fmt(out.metrics.instability().quantile(0.99), 4)});
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: raw Vivaldi on the static matrix is accurate with\n"
               "only residual-tension jitter (the original paper's world gave no\n"
               "reason to filter); the same algorithm on the live stream is several\n"
               "times worse on error and instability with an enormous tail; and\n"
               "MP(4,25) on the live stream recovers essentially the matrix-world\n"
               "behaviour on every column.\n";
  return 0;
}

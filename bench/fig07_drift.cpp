// Fig. 7 — Coordinates drift in consistent directions over hours (paper:
// four nodes from four regions move steadily over a three-hour window —
// they neither rotate about the origin nor oscillate in place, so the
// application coordinate must eventually be updated).
//
// Flags: --scenario (planetlab), --nodes (269), --hours (3), --seed,
//        --interval-min (10). Single run: no --jobs.
#include <cstdio>

#include "bench_common.hpp"
#include "latency/topology.hpp"

int main(int argc, char** argv) {
  const nc::Flags flags = ncb::parse_flags_exact(
      argc, argv, {"scenario", "nodes", "hours", "seed", "full", "interval-min"});
  nc::eval::ScenarioSpec spec =
      ncb::scenario_spec(flags, {.hours = 3.0, .full_hours = 3.0});
  spec.client.heuristic = nc::HeuristicConfig::always();
  spec.measurement.measure_start_s = spec.workload.duration_s / 2.0;
  spec.measurement.track_interval_s = 60.0 * flags.get_double("interval-min", 10.0);
  // Track live nodes: availability churn off so no tracked node is down.
  spec.workload.availability = nc::lat::AvailabilityConfig{.enabled = false};

  // One tracked node per region, like the paper's US-West/US-East/Europe/Asia
  // (scenarios with other region mixes fall back to their first four regions).
  const auto t = nc::lat::Topology::make(
      nc::eval::resolve_trace_config(spec.workload).topology);
  const char* wanted[] = {"us-east", "us-west", "europe", "east-asia"};
  std::vector<std::pair<std::string, nc::NodeId>> tracked;
  for (int r = 0; r < t.region_count(); ++r) {
    for (const char* name : wanted) {
      if (t.region_name(r) == name) {
        const nc::NodeId id = t.first_node_in_region(r);
        if (id != nc::kInvalidNode) {
          tracked.emplace_back(name, id);
          spec.measurement.tracked_nodes.push_back(id);
        }
      }
    }
  }
  if (tracked.empty()) {
    for (int r = 0; r < t.region_count() && tracked.size() < 4; ++r) {
      const nc::NodeId id = t.first_node_in_region(r);
      if (id != nc::kInvalidNode) {
        tracked.emplace_back(t.region_name(r), id);
        spec.measurement.tracked_nodes.push_back(id);
      }
    }
  }

  ncb::print_header("Fig. 7: coordinate drift of four regional nodes",
                    "coordinates move in consistent directions over 3 h; no "
                    "rotation or oscillation");
  ncb::print_workload(spec);

  const auto out = nc::eval::run_scenario(spec);

  for (const auto& [name, id] : tracked) {
    const auto& drift = out.metrics.drift(id);
    std::printf("\nnode %d (%s): trajectory every %.0f min\n", id, name.c_str(),
                spec.measurement.track_interval_s / 60.0);
    nc::eval::TextTable table({"t(h)", "x", "y", "z", "step(ms)"});
    for (std::size_t i = 0; i < drift.size(); ++i) {
      const double step =
          i == 0 ? 0.0 : drift[i].position.distance_to(drift[i - 1].position);
      table.add_row({nc::eval::fmt(drift[i].t / 3600.0, 3),
                     nc::eval::fmt(drift[i].position[0], 4),
                     nc::eval::fmt(drift[i].position[1], 4),
                     nc::eval::fmt(drift[i].position[2], 4),
                     nc::eval::fmt(step, 3)});
    }
    table.print(std::cout);

    // Direction consistency: fraction of consecutive displacement pairs with
    // a positive dot product (1.0 = perfectly steady drift, 0.5 = random).
    int consistent = 0, pairs = 0;
    for (std::size_t i = 2; i < drift.size(); ++i) {
      const nc::Vec d1 = drift[i - 1].position - drift[i - 2].position;
      const nc::Vec d2 = drift[i].position - drift[i - 1].position;
      if (d1.norm() == 0.0 || d2.norm() == 0.0) continue;
      if (d1.dot(d2) > 0.0) ++consistent;
      ++pairs;
    }
    const double total =
        drift.empty() ? 0.0
                      : drift.back().position.distance_to(drift.front().position);
    std::printf("net displacement %.1f ms; direction consistency %d/%d\n", total,
                consistent, pairs);
  }
  std::cout << "\nexpected shape: net displacement well above zero and direction\n"
               "consistency above one half — drift, not oscillation.\n";
  return 0;
}

// Fig. 3 — Histogram and time-scatter of raw latency on ONE representative
// link (paper: measurements vary by two orders of magnitude; long-latency
// pings keep occurring across the whole three-day trace, not in one burst).
//
// Flags: --scenario (planetlab), --days (3), --seed, --src/--dst (default:
// first node of region 0 to first node of region 2 — us-east to europe on
// the planetlab mix, mirroring the paper's sub-200 ms common case).
#include <cinttypes>
#include <cstdio>

#include "bench_common.hpp"
#include "latency/link_model.hpp"
#include "stats/histogram.hpp"
#include "stats/running_stats.hpp"

int main(int argc, char** argv) {
  const nc::Flags flags = ncb::parse_flags_exact(
      argc, argv, {"scenario", "days", "seed", "src", "dst"});
  const double days = flags.get_double("days", 3.0);

  nc::eval::ScenarioSpec spec = ncb::scenario_spec(flags);
  spec.workload.duration_s = days * 24.0 * 3600.0;
  const nc::lat::TraceGenConfig cfg = nc::eval::resolve_trace_config(spec.workload);

  nc::lat::Topology topo = nc::lat::Topology::make(cfg.topology);
  const int far_region = topo.region_count() > 2 ? 2 : topo.region_count() - 1;
  const nc::NodeId src = static_cast<nc::NodeId>(
      flags.get_int("src", topo.first_node_in_region(0)));
  // Single-region scenarios (lan-cluster) would make the far-region default
  // collapse onto src; fall back to src's neighbor.
  nc::NodeId default_dst = topo.first_node_in_region(far_region);
  if (default_dst == src)
    default_dst = static_cast<nc::NodeId>((src + 1) % topo.size());
  const nc::NodeId dst = static_cast<nc::NodeId>(flags.get_int("dst", default_dst));
  if (src == dst) {
    std::fprintf(stderr, "--src and --dst must name two distinct nodes\n");
    return 2;
  }
  nc::lat::LatencyNetwork net(std::move(topo), cfg.link_model,
                              nc::lat::AvailabilityConfig{.enabled = false},
                              cfg.seed);

  ncb::print_header("Fig. 3: one link's raw latency over time",
                    "two orders of magnitude on a single link; spikes spread "
                    "across the whole trace");
  std::printf("scenario %s, link: node %d -> node %d (base %.1f ms), %.1f days at 1 Hz\n",
              spec.scenario.c_str(), src, dst, net.topology().base_rtt_ms(src, dst),
              days);

  nc::stats::Histogram hist(nc::eval::fig3_bucket_edges());
  const double duration = days * 24.0 * 3600.0;

  // Per-6-hour windows: spike counts prove the tail is not one incident.
  const double window_s = 6.0 * 3600.0;
  const int windows = std::max(1, static_cast<int>(duration / window_s));
  std::vector<std::uint64_t> spikes_per_window(static_cast<std::size_t>(windows), 0);
  std::vector<double> max_per_window(static_cast<std::size_t>(windows), 0.0);
  nc::stats::RunningStats all;

  for (double t = 0.0; t < duration; t += 1.0) {
    const auto rtt = net.sample_rtt(src, dst, t);
    if (!rtt.has_value()) continue;
    hist.add(*rtt);
    all.add(*rtt);
    const int w = std::min(windows - 1, static_cast<int>(t / window_s));
    if (*rtt > 1000.0) ++spikes_per_window[static_cast<std::size_t>(w)];
    max_per_window[static_cast<std::size_t>(w)] =
        std::max(max_per_window[static_cast<std::size_t>(w)], *rtt);
  }

  nc::eval::print_histogram(std::cout, "raw ping latency (ms) vs frequency", hist);
  std::printf("\nsamples %" PRIu64 "  mean %.1f ms  min %.1f  max %.0f\n",
              all.count(), all.mean(), all.min(), all.max());

  std::cout << "\nspikes (> 1 s) per 6-hour window — spread over time:\n";
  nc::eval::TextTable t({"window", "hours", "spikes>1s", "max(ms)"});
  for (int w = 0; w < windows; ++w) {
    t.add_row({std::to_string(w),
               nc::eval::fmt(w * 6.0, 3) + "-" + nc::eval::fmt((w + 1) * 6.0, 3),
               std::to_string(spikes_per_window[static_cast<std::size_t>(w)]),
               nc::eval::fmt(max_per_window[static_cast<std::size_t>(w)], 5)});
  }
  t.print(std::cout);
  return 0;
}

// Shared scaffolding for the bench binaries.
//
// Every bench accepts the standard workload flags:
//   --nodes=N     number of nodes
//   --hours=H     simulated duration
//   --seed=S      master seed
//   --full        paper-scale workload (overrides the laptop defaults)
// plus bench-specific flags documented in each binary's header comment.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "common/flags.hpp"
#include "eval/experiment.hpp"
#include "eval/report.hpp"

namespace ncb {

struct WorkloadDefaults {
  int nodes = 269;
  double hours = 4.0;
  int full_nodes = 269;
  double full_hours = 4.0;
};

inline nc::eval::ReplaySpec replay_spec(const nc::Flags& flags,
                                        const WorkloadDefaults& d) {
  nc::eval::ReplaySpec spec;
  const bool full = flags.get_bool("full", false);
  spec.num_nodes = static_cast<int>(
      flags.get_int("nodes", full ? d.full_nodes : d.nodes));
  spec.duration_s =
      3600.0 * flags.get_double("hours", full ? d.full_hours : d.hours);
  spec.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  return spec;
}

inline void print_header(const std::string& title, const std::string& paper_claim) {
  std::cout << "\n==== " << title << " ====\n";
  if (!paper_claim.empty()) std::cout << "paper: " << paper_claim << "\n";
}

inline void print_workload(const nc::eval::ReplaySpec& spec) {
  std::printf("workload: %d nodes, %.2f h replay, seed %llu, measure from %.2f h\n",
              spec.num_nodes, spec.duration_s / 3600.0,
              static_cast<unsigned long long>(spec.seed),
              (spec.measure_start_s >= 0 ? spec.measure_start_s
                                         : spec.duration_s / 2.0) /
                  3600.0);
}

struct SweepPoint {
  double median_error = 0.0;
  double instability = 0.0;
  double pct_updates = 0.0;  // % of nodes changing c_a per second
};

inline SweepPoint run_point(nc::eval::ReplaySpec spec,
                            const nc::HeuristicConfig& heuristic) {
  spec.client.heuristic = heuristic;
  const auto out = nc::eval::run_replay(spec);
  return {out.metrics.median_relative_error(),
          out.metrics.mean_instability_ms_per_s(),  // paper: s = sum(dx)/t
          out.metrics.mean_pct_nodes_updating_per_s()};
}

}  // namespace ncb

// Shared scaffolding for the bench binaries.
//
// Standard workload flags (every bench takes --scenario/--nodes/--seed; most
// take the rest — each binary's header comment lists its exact vocabulary):
//   --scenario=NAME  named workload preset from the scenario registry
//                    (planetlab, intercontinental, churn, flash-crowd,
//                    drift-heavy, lan-cluster)
//   --nodes=N        number of nodes
//   --hours=H        simulated duration (some benches use --days/--minutes)
//   --seed=S         master seed
//   --jobs=N         worker threads for independent experiment points
//   --shards=N       worker shards WITHIN one run (replay and online alike;
//                    0 and 1 both mean one shard — every run goes through
//                    the epoch-sharded kernel)
//   --route-schedule=NAME  named route-change schedule composed into the
//                    workload (none, single-link, regional-shift,
//                    backbone-flap)
//   --backend=NAME   estimator backend preset answering RTT queries
//                    (coordinates, idms, idms-volatile, idms-sticky,
//                    snapshot)
//   --partition-trace  replay mode, shards > 1: split the trace by owner
//                    shard on open and replay one slice per reader
//                    (bit-identical; default ON — pass --partition-trace=0
//                    to funnel every record through shard 0's reader)
//   --rebalance=K    dynamic shard ownership: re-plan the node partition
//                    every K epochs (0 = static block partition, default)
//   --rebalance-moves=M  max nodes migrated per rebalance barrier
//   --full           paper-scale workload (overrides the laptop defaults)
// Unknown flags and bad positional arguments print a usage message and
// exit 2 (malformed VALUES like --nodes=abc still abort via nc::CheckError).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <iostream>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "eval/grid.hpp"
#include "eval/registry.hpp"
#include "eval/report.hpp"
#include "eval/scenario.hpp"

namespace ncb {

/// Parses argv against the standard flags plus `extra`; prints usage and
/// exits 2 on unknown flags or malformed arguments.
inline nc::Flags parse_flags(int argc, const char* const* argv,
                             std::initializer_list<const char*> extra = {}) {
  std::vector<std::string> allowed = {
      "scenario", "nodes",           "hours",     "seed",
      "jobs",     "shards",          "backend",   "route-schedule",
      "full",     "partition-trace", "rebalance", "rebalance-moves"};
  allowed.insert(allowed.end(), extra.begin(), extra.end());
  return nc::Flags::parse_or_exit(argc, argv, allowed);
}

/// For benches whose vocabulary replaces part of the standard set (e.g.
/// --days instead of --hours): validates against exactly `allowed`.
inline nc::Flags parse_flags_exact(int argc, const char* const* argv,
                                   std::initializer_list<const char*> allowed) {
  return nc::Flags::parse_or_exit(
      argc, argv, std::vector<std::string>(allowed.begin(), allowed.end()));
}

struct WorkloadDefaults {
  int nodes = 269;
  double hours = 4.0;
  int full_nodes = 269;
  double full_hours = 4.0;
  std::int64_t seed = 1;
  const char* scenario = "planetlab";
  nc::eval::SimMode mode = nc::eval::SimMode::kReplay;
  int shards = 0;  // worker shards within one run (0 and 1: one shard)
};

/// Builds the bench's base spec: the --scenario registry preset with the
/// standard workload flags applied on top. Unknown scenario names print the
/// registered list and exit 2.
inline nc::eval::ScenarioSpec scenario_spec(const nc::Flags& flags,
                                            const WorkloadDefaults& d = {}) {
  const std::string name = flags.get_string("scenario", d.scenario);
  if (!nc::eval::scenario_exists(name)) {
    std::cerr << "unknown scenario '" << name
              << "' (registered: " << nc::eval::scenario_names_joined() << ")\n";
    std::exit(2);
  }
  nc::eval::ScenarioSpec spec = nc::eval::make_scenario(name);
  spec.mode = d.mode;
  const bool full = flags.get_bool("full", false);
  spec.workload.num_nodes =
      static_cast<int>(flags.get_int("nodes", full ? d.full_nodes : d.nodes));
  spec.workload.duration_s =
      3600.0 * flags.get_double("hours", full ? d.full_hours : d.hours);
  spec.workload.seed =
      static_cast<std::uint64_t>(flags.get_int("seed", d.seed));
  spec.shards = static_cast<int>(flags.get_int("shards", d.shards));
  // Route-change schedules compose into any workload; applied after the
  // node-count/duration overrides so the expansion sees the final values.
  const std::string schedule = flags.get_string("route-schedule", "none");
  if (!nc::eval::route_schedule_exists(schedule)) {
    std::cerr << "unknown route schedule '" << schedule << "' (registered: "
              << nc::eval::route_schedule_names_joined() << ")\n";
    std::exit(2);
  }
  nc::eval::apply_route_schedule(spec, schedule);
  // Estimator backend presets compose the same way (default: coordinates).
  const std::string backend = flags.get_string("backend", "coordinates");
  if (!nc::eval::backend_exists(backend)) {
    std::cerr << "unknown backend '" << backend
              << "' (registered: " << nc::eval::backend_names_joined() << ")\n";
    std::exit(2);
  }
  nc::eval::apply_backend(spec, backend);
  spec.partition_replay = flags.get_bool("partition-trace", true);
  spec.rebalance_interval_epochs =
      static_cast<int>(flags.get_int("rebalance", 0));
  spec.rebalance_max_moves = static_cast<int>(
      flags.get_int("rebalance-moves", spec.rebalance_max_moves));
  return spec;
}

/// The --jobs worker pool (default 1: serial).
inline nc::eval::ExperimentGrid grid(const nc::Flags& flags) {
  return nc::eval::ExperimentGrid(static_cast<int>(flags.get_int("jobs", 1)));
}

inline void print_header(const std::string& title, const std::string& paper_claim) {
  std::cout << "\n==== " << title << " ====\n";
  if (!paper_claim.empty()) std::cout << "paper: " << paper_claim << "\n";
}

inline void print_workload(const nc::eval::ScenarioSpec& spec) {
  std::printf(
      "workload: scenario=%s, %d nodes, %.2f h %s, seed %llu, measure from "
      "%.2f h\n",
      spec.scenario.c_str(), spec.workload.num_nodes,
      spec.workload.duration_s / 3600.0,
      spec.mode == nc::eval::SimMode::kReplay ? "replay" : "online",
      static_cast<unsigned long long>(spec.workload.seed),
      nc::eval::resolved_measure_start_s(spec) / 3600.0);
}

struct SweepPoint {
  double median_error = 0.0;
  double instability = 0.0;
  double pct_updates = 0.0;  // % of nodes changing c_a per second
};

inline SweepPoint sweep_point(const nc::eval::ScenarioOutput& out) {
  return {out.metrics.median_relative_error(),
          out.metrics.mean_instability_ms_per_s(),  // paper: s = sum(dx)/t
          out.metrics.mean_pct_nodes_updating_per_s()};
}

/// One grid pass over `base` with each heuristic in turn; results in the
/// heuristics' order.
inline std::vector<SweepPoint> run_points(
    const nc::eval::ScenarioSpec& base,
    const std::vector<nc::HeuristicConfig>& heuristics,
    const nc::eval::ExperimentGrid& grid) {
  std::vector<nc::eval::ScenarioSpec> specs(heuristics.size(), base);
  for (std::size_t i = 0; i < heuristics.size(); ++i)
    specs[i].client.heuristic = heuristics[i];
  std::vector<SweepPoint> points;
  points.reserve(specs.size());
  for (const auto& out : grid.run(specs)) points.push_back(sweep_point(out));
  return points;
}

}  // namespace ncb

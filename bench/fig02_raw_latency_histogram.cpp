// Fig. 2 — Frequency histogram of raw latency measurements across the whole
// network (paper: 269 PlanetLab nodes over 3 days, 43M samples, 0.4% of
// samples above one second, tail reaching past 3 s on a log-scale axis).
//
// Flags: --scenario (planetlab), --nodes (269), --days (3), --seed.
#include <cinttypes>
#include <cstdio>

#include "bench_common.hpp"
#include "latency/trace_generator.hpp"
#include "stats/histogram.hpp"

int main(int argc, char** argv) {
  const nc::Flags flags = ncb::parse_flags_exact(
      argc, argv, {"scenario", "nodes", "days", "seed", "full"});
  const double days = flags.get_double("days", 3.0);

  nc::eval::ScenarioSpec spec = ncb::scenario_spec(flags);
  spec.workload.duration_s = days * 24.0 * 3600.0;
  const nc::lat::TraceGenConfig cfg = nc::eval::resolve_trace_config(spec.workload);

  ncb::print_header("Fig. 2: raw latency histogram",
                    "43M samples over 3 days; 0.4% above 1 s; heavy tail past 3 s");
  std::printf("workload: scenario=%s, %d nodes, %.1f days of 1 Hz pings, seed %llu\n",
              spec.scenario.c_str(), spec.workload.num_nodes, days,
              static_cast<unsigned long long>(cfg.seed));

  nc::lat::TraceGenerator gen(cfg);
  nc::stats::Histogram hist(nc::eval::fig2_bucket_edges());
  double max_rtt = 0.0;
  while (auto rec = gen.next()) {
    hist.add(static_cast<double>(rec->rtt_ms));
    if (rec->rtt_ms > max_rtt) max_rtt = rec->rtt_ms;
  }

  nc::eval::print_histogram(std::cout, "raw latency (ms) vs frequency", hist);
  std::printf("\nsamples: %" PRIu64 " of %" PRIu64 " attempts (%.1f%% yield)\n",
              hist.total(), gen.attempts(),
              100.0 * static_cast<double>(hist.total()) /
                  static_cast<double>(gen.attempts()));
  std::printf("fraction > 1 s: %.3f%%   (paper: ~0.4%%)\n",
              100.0 * hist.fraction_at_or_above(1000.0));
  std::printf("fraction >= 3 s: %.4f%%\n", 100.0 * hist.fraction_at_or_above(3000.0));
  std::printf("max observed: %.0f ms\n", max_rtt);
  return 0;
}

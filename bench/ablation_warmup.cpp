// Ablation — first-sample pathology (paper Sec. VI): the MP filter emits a
// value from its very first sample, so a link whose FIRST observation is an
// extreme outlier injects it straight into Vivaldi; the paper traced its
// five largest PlanetLab displacements to this case and suggests waiting for
// a second sample. min_samples implements that delay.
//
// Flags: --scenario (planetlab), --nodes (100), --hours (1), --seed, --jobs.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const nc::Flags flags = ncb::parse_flags(argc, argv);
  nc::eval::ScenarioSpec base = ncb::scenario_spec(
      flags, {.nodes = 100, .hours = 1.0, .full_nodes = 269, .full_hours = 4.0});
  base.client.heuristic = nc::HeuristicConfig::always();
  base.measurement.measure_start_s = 0.0;  // include start-up: that is where the damage is

  ncb::print_header("Ablation: filter warm-up delay (min_samples)",
                    "Sec. VI: extreme first samples caused the five largest "
                    "displacements; waiting for a 2nd sample removes them");
  ncb::print_workload(base);

  const int min_samples_values[] = {1, 2, 4};
  std::vector<nc::eval::ScenarioSpec> specs(std::size(min_samples_values), base);
  for (std::size_t i = 0; i < specs.size(); ++i)
    specs[i].client.filter =
        nc::FilterConfig::moving_percentile(4, 25, min_samples_values[i]);
  const auto outs = ncb::grid(flags).run(specs);

  nc::eval::TextTable t({"min_samples", "instability p99 (ms/s)", "instability max",
                         "median rel err", "absorbed samples"});
  for (std::size_t i = 0; i < outs.size(); ++i) {
    const auto& out = outs[i];
    const auto inst = out.metrics.instability();
    t.add_row({std::to_string(min_samples_values[i]),
               nc::eval::fmt(inst.quantile(0.99), 4), nc::eval::fmt(inst.max(), 4),
               nc::eval::fmt(out.metrics.median_relative_error(), 3),
               std::to_string(out.absorbed)});
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: the instability tail (p99/max) shrinks from\n"
               "min_samples 1 -> 2 with no accuracy cost; 4 adds little more\n"
               "(diminishing returns, slower priming on fresh links).\n";
  std::cout << "note: 'absorbed samples' counts observations withheld while\n"
               "filters primed (the cost of the delay).\n";
  return 0;
}

// Event-core kernel suite: events/sec of the epoch-sharded engine across
// deployment sizes, in BOTH simulation modes.
//
// PR 4 rebuilt the hot event-dispatch structures (calendar-queue scheduler,
// merge-based mailboxes, dense link/membership state); PR 5 collapsed every
// run — online and replay — onto that one kernel and slab-allocated
// NCClient's per-link filter state. This bench is the kernel's scorecard.
// For each n in --sizes (default 256, 1k, 4k) it runs the same named
// scenario through
//   * the OnlineSimulator facade (the retired serial engine's entry point,
//     now the shards=1 kernel — kept as a row so bench_diff.py tracks the
//     facade against the historical serial-engine records),
//   * the sharded engine in ONLINE mode at --shards = 1, 2, 4, ... (powers
//     of two up to --max-shards), and
//   * the sharded engine in REPLAY mode over a generated trace at the same
//     shard counts (wall time includes the serial trace generation, which
//     bounds replay scaling per Amdahl),
// reports events/sec, and cross-checks that every shard count produced
// bit-identical metrics (the kernel's core guarantee; the run aborts loudly
// if not). Each row is also printed as a JSON object for BENCH_pr5.json-
// style records; scripts/bench_diff.py compares such records across PRs.
//
// Flags: --scenario (planetlab), --nodes (0 = the full 256/1k/4k suite,
//        otherwise one size), --hours (1), --seed (7), --max-shards (4),
//        --serial (1: include the facade row), --replay (1: include replay
//        rows).
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "latency/trace_generator.hpp"
#include "sim/online_sim.hpp"
#include "sim/replay.hpp"
#include "sim/sharded_sim.hpp"

namespace {

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void print_row(const char* engine, int nodes, int shards, double wall,
               std::uint64_t events, double err,
               const nc::sim::MemoryBudget& mem) {
  const double rate = static_cast<double>(events) / wall;
  std::printf("%8s %6d %7d %10.2f %14llu %12.0f %12.4f %12s\n", engine, nodes,
              shards, wall, static_cast<unsigned long long>(events), rate, err,
              nc::eval::fmt_bytes(mem.total()).c_str());
  std::printf("  json: {\"engine\": \"%s\", \"nodes\": %d, \"shards\": %d, "
              "\"wall_s\": %.2f, \"events\": %llu, \"events_per_s\": %.0f, "
              "\"median_err\": %.4f, \"mem_bytes\": %llu, "
              "\"rebalance_bytes\": %llu, \"neighbor_bytes\": %llu, "
              "\"snapshot_base_bytes\": %llu, \"snapshot_delta_bytes\": "
              "%llu}\n",
              engine, nodes, shards, wall,
              static_cast<unsigned long long>(events), rate, err,
              static_cast<unsigned long long>(mem.total()),
              static_cast<unsigned long long>(mem.rebalance_bytes),
              static_cast<unsigned long long>(mem.neighbor_bytes),
              static_cast<unsigned long long>(mem.snapshot_base_bytes),
              static_cast<unsigned long long>(mem.snapshot_delta_bytes));
}

}  // namespace

int main(int argc, char** argv) {
  const nc::Flags flags = ncb::parse_flags_exact(
      argc, argv, {"scenario", "nodes", "hours", "seed", "max-shards", "serial",
                   "replay", "full"});
  nc::eval::ScenarioSpec base = ncb::scenario_spec(
      flags, {.nodes = 0, .hours = 1.0, .full_nodes = 0, .full_hours = 1.0,
              .seed = 7, .mode = nc::eval::SimMode::kOnline});
  const int max_shards = static_cast<int>(flags.get_int("max-shards", 4));
  const bool run_serial = flags.get_int("serial", 1) != 0;
  const bool run_replay = flags.get_int("replay", 1) != 0;

  std::vector<int> sizes;
  if (base.workload.num_nodes > 0) {
    sizes.push_back(base.workload.num_nodes);
  } else {
    sizes = {256, 1024, 4096};
  }

  ncb::print_header(
      "event core: events/sec of the sharded kernel vs deployment size", "");
  std::printf("scenario=%s, %.2f h, seed %llu, hardware threads: %u\n",
              flags.get_string("scenario", "planetlab").c_str(),
              base.workload.duration_s / 3600.0,
              static_cast<unsigned long long>(base.workload.seed),
              std::thread::hardware_concurrency());
  std::printf("\n%8s %6s %7s %10s %14s %12s %12s %12s\n", "engine", "nodes",
              "shards", "wall(s)", "events", "events/s", "median-err", "mem");

  for (const int n : sizes) {
    nc::eval::ScenarioSpec spec = base;
    spec.workload.num_nodes = n;

    if (run_serial) {
      // The OnlineSimulator facade: the classic constructor shape over the
      // shards=1 kernel. Wall time covers construction + run (dense state
      // trades setup for per-event speed; the trade must show in the
      // number).
      const auto t0 = std::chrono::steady_clock::now();
      nc::lat::LatencyNetwork network(
          nc::lat::Topology::make(
              nc::eval::resolve_topology_config(spec.workload)),
          spec.workload.link_model.value_or(nc::lat::LinkModelConfig{}),
          spec.workload.availability.value_or(nc::lat::AvailabilityConfig{}),
          spec.workload.seed);
      nc::sim::OnlineSimulator sim(nc::eval::resolve_online_config(spec),
                                   network);
      sim.run();
      print_row("serial", n, 0, wall_seconds_since(t0), sim.events_processed(),
                sim.metrics().median_relative_error(), sim.memory_budget());
    }

    double ref_err = 0.0, ref_inst = 0.0;
    std::uint64_t ref_obs = 0;
    for (int w = 1; w <= max_shards; w *= 2) {
      spec.shards = w;
      const auto t0 = std::chrono::steady_clock::now();
      nc::sim::ShardedEngine sim(
          nc::eval::resolve_online_config(spec), w,
          nc::lat::Topology::make(
              nc::eval::resolve_topology_config(spec.workload)),
          spec.workload.link_model.value_or(nc::lat::LinkModelConfig{}),
          spec.workload.availability.value_or(nc::lat::AvailabilityConfig{}),
          nc::eval::resolve_route_changes(spec.workload));
      sim.run();
      const double wall = wall_seconds_since(t0);

      const double err = sim.metrics().median_relative_error();
      const double inst = sim.metrics().mean_instability_ms_per_s();
      if (w == 1) {
        ref_err = err;
        ref_inst = inst;
        ref_obs = sim.metrics().observation_count();
      } else {
        NC_CHECK_MSG(err == ref_err && inst == ref_inst &&
                         sim.metrics().observation_count() == ref_obs,
                     "sharded run diverged from shards=1 (determinism bug)");
      }
      print_row("sharded", n, w, wall, sim.events_processed(), err,
                sim.memory_budget());
    }

    if (run_replay) {
      // Replay mode on the same kernel: the generated trace replaces the
      // timers. The reader is serial (shard 0), so replay's parallel
      // fraction is the per-record stamp/observe work.
      nc::eval::ScenarioSpec rspec = spec;
      rspec.mode = nc::eval::SimMode::kReplay;
      nc::sim::ReplayConfig rc;
      rc.client = rspec.client;
      rc.duration_s = rspec.workload.duration_s;
      rc.measure_start_s = nc::eval::resolved_measure_start_s(rspec);
      rc.epoch_s = rspec.workload.ping_interval_s;
      double rref_err = 0.0;
      std::uint64_t rref_obs = 0;
      for (int w = 1; w <= max_shards; w *= 2) {
        rc.shards = w;
        const auto t0 = std::chrono::steady_clock::now();
        nc::lat::TraceGenerator gen(
            nc::eval::resolve_trace_config(rspec.workload));
        nc::sim::ReplayDriver driver(rc, gen.num_nodes());
        driver.run(gen);
        const double wall = wall_seconds_since(t0);

        const double err = driver.metrics().median_relative_error();
        if (w == 1) {
          rref_err = err;
          rref_obs = driver.metrics().observation_count();
        } else {
          NC_CHECK_MSG(err == rref_err &&
                           driver.metrics().observation_count() == rref_obs,
                       "replay run diverged from shards=1 (determinism bug)");
        }
        print_row("replay", n, w, wall, driver.events_processed(), err,
                  driver.memory_budget());
      }
    }
  }
  std::printf("\nnote: shard speedup needs real cores; on a 1-core host all\n"
              "shard counts serialize. Replay rows include the serial trace\n"
              "generation in wall time. Online and replay rows differ in\n"
              "workload semantics, so compare events/sec within one engine\n"
              "label, not across.\n");
  return 0;
}

// Event-core kernel suite: events/sec of the serial and epoch-sharded
// online engines across deployment sizes.
//
// PR 4 rebuilt the hot event-dispatch structures (calendar-queue scheduler,
// merge-based mailboxes, dense link/membership state); this bench is the
// kernel's scorecard. For each n in --sizes (default 256, 1k, 4k) it runs
// the same named scenario through
//   * the serial OnlineSimulator (immediate-delivery semantics), and
//   * the ShardedOnlineSimulator at --shards = 1, 2, 4, ... (powers of two
//     up to --max-shards),
// reports events/sec, and cross-checks that every shard count produced
// bit-identical metrics (the sharded engine's core guarantee; the run
// aborts loudly if not). Each row is also printed as a JSON object for
// BENCH_pr4.json-style records; scripts/bench_diff.py compares such records
// across PRs.
//
// Flags: --scenario (planetlab), --nodes (0 = the full 256/1k/4k suite,
//        otherwise one size), --hours (1), --seed (7), --max-shards (4),
//        --serial (1: include the serial engine).
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "sim/online_sim.hpp"
#include "sim/sharded_sim.hpp"

namespace {

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void print_row(const char* engine, int nodes, int shards, double wall,
               std::uint64_t events, double err) {
  const double rate = static_cast<double>(events) / wall;
  std::printf("%8s %6d %7d %10.2f %14llu %12.0f %12.4f\n", engine, nodes,
              shards, wall, static_cast<unsigned long long>(events), rate, err);
  std::printf("  json: {\"engine\": \"%s\", \"nodes\": %d, \"shards\": %d, "
              "\"wall_s\": %.2f, \"events\": %llu, \"events_per_s\": %.0f, "
              "\"median_err\": %.4f}\n",
              engine, nodes, shards, wall,
              static_cast<unsigned long long>(events), rate, err);
}

}  // namespace

int main(int argc, char** argv) {
  const nc::Flags flags = ncb::parse_flags_exact(
      argc, argv,
      {"scenario", "nodes", "hours", "seed", "max-shards", "serial", "full"});
  nc::eval::ScenarioSpec base = ncb::scenario_spec(
      flags, {.nodes = 0, .hours = 1.0, .full_nodes = 0, .full_hours = 1.0,
              .seed = 7, .mode = nc::eval::SimMode::kOnline});
  const int max_shards = static_cast<int>(flags.get_int("max-shards", 4));
  const bool run_serial = flags.get_int("serial", 1) != 0;

  std::vector<int> sizes;
  if (base.workload.num_nodes > 0) {
    sizes.push_back(base.workload.num_nodes);
  } else {
    sizes = {256, 1024, 4096};
  }

  ncb::print_header(
      "event core: events/sec of the online engines vs deployment size", "");
  std::printf("scenario=%s, %.2f h online, seed %llu, hardware threads: %u\n",
              flags.get_string("scenario", "planetlab").c_str(),
              base.workload.duration_s / 3600.0,
              static_cast<unsigned long long>(base.workload.seed),
              std::thread::hardware_concurrency());
  std::printf("\n%8s %6s %7s %10s %14s %12s %12s\n", "engine", "nodes",
              "shards", "wall(s)", "events", "events/s", "median-err");

  for (const int n : sizes) {
    nc::eval::ScenarioSpec spec = base;
    spec.workload.num_nodes = n;

    if (run_serial) {
      // The serial engine owns nothing the sharded engine shares at runtime;
      // resolve_* assembles exactly what run_scenario would. Wall time
      // covers construction + run (dense state trades setup for per-event
      // speed; the trade must show in the number).
      const auto t0 = std::chrono::steady_clock::now();
      nc::lat::LatencyNetwork network(
          nc::lat::Topology::make(
              nc::eval::resolve_topology_config(spec.workload)),
          spec.workload.link_model.value_or(nc::lat::LinkModelConfig{}),
          spec.workload.availability.value_or(nc::lat::AvailabilityConfig{}),
          spec.workload.seed);
      nc::sim::OnlineSimulator sim(nc::eval::resolve_online_config(spec),
                                   network);
      sim.run();
      print_row("serial", n, 0, wall_seconds_since(t0), sim.events_processed(),
                sim.metrics().median_relative_error());
    }

    double ref_err = 0.0, ref_inst = 0.0;
    std::uint64_t ref_obs = 0;
    for (int w = 1; w <= max_shards; w *= 2) {
      spec.shards = w;
      const auto t0 = std::chrono::steady_clock::now();
      nc::sim::ShardedOnlineSimulator sim(
          nc::eval::resolve_online_config(spec), w,
          nc::lat::Topology::make(
              nc::eval::resolve_topology_config(spec.workload)),
          spec.workload.link_model.value_or(nc::lat::LinkModelConfig{}),
          spec.workload.availability.value_or(nc::lat::AvailabilityConfig{}),
          nc::eval::resolve_route_changes(spec.workload));
      sim.run();
      const double wall = wall_seconds_since(t0);

      const double err = sim.metrics().median_relative_error();
      const double inst = sim.metrics().mean_instability_ms_per_s();
      if (w == 1) {
        ref_err = err;
        ref_inst = inst;
        ref_obs = sim.metrics().observation_count();
      } else {
        NC_CHECK_MSG(err == ref_err && inst == ref_inst &&
                         sim.metrics().observation_count() == ref_obs,
                     "sharded run diverged from shards=1 (determinism bug)");
      }
      print_row("sharded", n, w, wall, sim.events_processed(), err);
    }
  }
  std::printf("\nnote: shard speedup needs real cores; on a 1-core host all\n"
              "shard counts serialize. The serial and sharded engines differ\n"
              "in declared delivery semantics, so compare events/sec, not\n"
              "metrics, across engines.\n");
  return 0;
}

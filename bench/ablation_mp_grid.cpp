// Ablation — joint (history, percentile) grid for the MP filter, extending
// Fig. 4's p = 25 slice (the paper notes p = 25 beat p = 50 slightly at
// h = 4). Reports the median over links of the per-link 95th-percentile
// prediction error.
//
// Flags: --nodes (60), --hours (6), --seed.
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "core/filters/mp_filter.hpp"
#include "latency/trace_generator.hpp"
#include "stats/p2_quantile.hpp"
#include "stats/percentile.hpp"

int main(int argc, char** argv) {
  const nc::Flags flags(argc, argv);
  const int nodes = static_cast<int>(flags.get_int("nodes", 60));
  const double hours = flags.get_double("hours", 6.0);

  const std::vector<int> histories = {2, 4, 8, 16, 32};
  const std::vector<double> percentiles = {0, 10, 25, 50, 75};

  nc::lat::TraceGenConfig cfg;
  cfg.topology.num_nodes = nodes;
  cfg.duration_s = hours * 3600.0;
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  cfg.topology.seed = cfg.seed;

  ncb::print_header("Ablation: MP filter (history x percentile) grid",
                    "low percentiles of short windows predict best; p=25 "
                    "slightly beats p=50 at h=4");
  std::printf("workload: %d nodes, %.1f h trace; cells are the median over links\n"
              "of per-link 95th-pctile prediction error\n",
              nodes, hours);

  struct LinkState {
    std::vector<nc::MovingPercentileFilter> filters;
    std::vector<nc::stats::P2Quantile> p95;
  };
  const std::size_t cells = histories.size() * percentiles.size();
  std::unordered_map<std::uint64_t, LinkState> links;

  nc::lat::TraceGenerator gen(cfg);
  while (auto rec = gen.next()) {
    const std::uint64_t key = (static_cast<std::uint64_t>(rec->src) << 32) |
                              static_cast<std::uint64_t>(rec->dst);
    auto [it, inserted] = links.try_emplace(key);
    LinkState& link = it->second;
    if (inserted) {
      link.filters.reserve(cells);
      link.p95.assign(cells, nc::stats::P2Quantile(0.95));
      for (int h : histories)
        for (double p : percentiles) link.filters.emplace_back(h, p);
    }
    for (std::size_t c = 0; c < cells; ++c) {
      const auto pred = link.filters[c].estimate();
      if (pred.has_value())
        link.p95[c].add(std::fabs(*pred - rec->rtt_ms) / rec->rtt_ms);
      link.filters[c].update(rec->rtt_ms);
    }
  }

  std::vector<std::string> headers = {"history"};
  for (double p : percentiles) headers.push_back("p=" + nc::eval::fmt(p, 3));
  nc::eval::TextTable table(std::move(headers));
  for (std::size_t hi = 0; hi < histories.size(); ++hi) {
    std::vector<std::string> row = {std::to_string(histories[hi])};
    for (std::size_t pi = 0; pi < percentiles.size(); ++pi) {
      const std::size_t c = hi * percentiles.size() + pi;
      std::vector<double> per_link;
      for (auto& [key, link] : links)
        if (link.p95[c].count() >= 16) per_link.push_back(link.p95[c].value());
      row.push_back(per_link.empty()
                        ? "-"
                        : nc::eval::fmt(nc::stats::median(std::move(per_link)), 3));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: a valley at moderate (h, p) — low percentiles of\n"
               "mid-size windows; p=75 admits tail samples and p=0 of long windows\n"
               "under-predicts. With our tight lognormal body p=25 and p=50 sit\n"
               "within a few percent of each other (the paper's wider PlanetLab\n"
               "bodies favored p=25 more clearly); the asymmetric relative-error\n"
               "loss is why low percentiles stay competitive.\n";
  return 0;
}

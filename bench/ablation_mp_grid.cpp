// Ablation — joint (history, percentile) grid for the MP filter, extending
// Fig. 4's p = 25 slice (the paper notes p = 25 beat p = 50 slightly at
// h = 4). Reports the median over links of the per-link 95th-percentile
// prediction error. Each history row is an independent grid task (its own
// trace pass evaluating all percentile cells), so --jobs parallelizes the
// sweep; the run prints per-row and total wall-clock so the speedup is
// visible.
//
// Flags: --scenario (planetlab), --nodes (60), --hours (6), --seed, --jobs.
#include <chrono>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "core/filters/mp_filter.hpp"
#include "latency/trace_generator.hpp"
#include "stats/p2_quantile.hpp"
#include "stats/percentile.hpp"

namespace {

const std::vector<int> kHistories = {2, 4, 8, 16, 32};
const std::vector<double> kPercentiles = {0, 10, 25, 50, 75};

// One trace pass with history h: a filter per (link, percentile) cell;
// returns the median-over-links p95 prediction error per percentile.
std::vector<double> run_history_row(const nc::lat::TraceGenConfig& cfg, int h) {
  struct LinkState {
    std::vector<nc::MovingPercentileFilter> filters;
    std::vector<nc::stats::P2Quantile> p95;
  };
  std::unordered_map<std::uint64_t, LinkState> links;
  nc::lat::TraceGenerator gen(cfg);
  while (auto rec = gen.next()) {
    const std::uint64_t key = (static_cast<std::uint64_t>(rec->src) << 32) |
                              static_cast<std::uint64_t>(rec->dst);
    auto [it, inserted] = links.try_emplace(key);
    LinkState& link = it->second;
    if (inserted) {
      link.filters.reserve(kPercentiles.size());
      link.p95.assign(kPercentiles.size(), nc::stats::P2Quantile(0.95));
      for (double p : kPercentiles) link.filters.emplace_back(h, p);
    }
    for (std::size_t c = 0; c < kPercentiles.size(); ++c) {
      const auto pred = link.filters[c].estimate();
      if (pred.has_value())
        link.p95[c].add(std::fabs(*pred - rec->rtt_ms) / rec->rtt_ms);
      link.filters[c].update(rec->rtt_ms);
    }
  }
  std::vector<double> row;
  for (std::size_t c = 0; c < kPercentiles.size(); ++c) {
    std::vector<double> per_link;
    for (auto& [key, link] : links)
      if (link.p95[c].count() >= 16) per_link.push_back(link.p95[c].value());
    row.push_back(per_link.empty()
                      ? -1.0
                      : nc::stats::median(std::move(per_link)));
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const nc::Flags flags = ncb::parse_flags(argc, argv);
  nc::eval::ScenarioSpec spec = ncb::scenario_spec(
      flags, {.nodes = 60, .hours = 6.0, .full_nodes = 60, .full_hours = 6.0});
  const nc::lat::TraceGenConfig cfg = nc::eval::resolve_trace_config(spec.workload);
  const auto grid = ncb::grid(flags);

  ncb::print_header("Ablation: MP filter (history x percentile) grid",
                    "low percentiles of short windows predict best; p=25 "
                    "slightly beats p=50 at h=4");
  std::printf("workload: scenario=%s, %d nodes, %.1f h trace, %d jobs; cells are\n"
              "the median over links of per-link 95th-pctile prediction error\n",
              spec.scenario.c_str(), spec.workload.num_nodes,
              spec.workload.duration_s / 3600.0, grid.jobs());

  const auto t0 = std::chrono::steady_clock::now();
  const auto rows = grid.map(kHistories.size(), [&](std::size_t i) {
    return run_history_row(cfg, kHistories[i]);
  });
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::vector<std::string> headers = {"history"};
  for (double p : kPercentiles) headers.push_back("p=" + nc::eval::fmt(p, 3));
  nc::eval::TextTable table(std::move(headers));
  for (std::size_t hi = 0; hi < kHistories.size(); ++hi) {
    std::vector<std::string> row = {std::to_string(kHistories[hi])};
    for (double cell : rows[hi])
      row.push_back(cell < 0.0 ? "-" : nc::eval::fmt(cell, 3));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\nsweep wall-clock: %.2f s (%zu rows, %d jobs)\n", elapsed_s,
              kHistories.size(), grid.jobs());
  std::cout << "\nexpected shape: a valley at moderate (h, p) — low percentiles of\n"
               "mid-size windows; p=75 admits tail samples and p=0 of long windows\n"
               "under-predicts. With our tight lognormal body p=25 and p=50 sit\n"
               "within a few percent of each other (the paper's wider PlanetLab\n"
               "bodies favored p=25 more clearly); the asymmetric relative-error\n"
               "loss is why low percentiles stay competitive.\n";
  return 0;
}

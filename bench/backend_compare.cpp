// Estimator-backend comparison grid: coordinates vs the IDMS delay matrix,
// side by side across scenarios.
//
// The paper's position is that a stabilized coordinate system answers
// latency queries accurately from O(n) state; the IDMS line of work keeps
// the measured delays themselves. This bench runs every registered backend
// preset (eval/registry.hpp: coordinates, idms, idms-volatile, idms-sticky)
// over each scenario and prints one comparison table per scenario — error,
// instability, backend coverage, staleness, estimator memory, feed traffic
// — plus a per-run memory-budget breakdown. Staleness sensitivity reads
// straight off the idms-volatile (60 s horizon) vs idms-sticky (1 h) rows.
//
// Flags: --scenario (empty = the planetlab/churn/drift-heavy trio),
//        --nodes (96), --hours (1), --seed (1), --jobs (1), --shards (0),
//        --full (269 nodes, 4 h).
#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"

using namespace nc;

int main(int argc, char** argv) {
  const Flags flags = ncb::parse_flags_exact(
      argc, argv, {"scenario", "nodes", "hours", "seed", "jobs", "shards",
                   "full"});

  std::vector<std::string> scenarios;
  const std::string chosen = flags.get_string("scenario", "");
  if (!chosen.empty()) {
    if (!eval::scenario_exists(chosen)) {
      std::cerr << "unknown scenario '" << chosen
                << "' (registered: " << eval::scenario_names_joined() << ")\n";
      return 2;
    }
    scenarios = {chosen};
  } else {
    scenarios = {"planetlab", "churn", "drift-heavy"};
  }

  const bool full = flags.get_bool("full", false);
  const int nodes = static_cast<int>(flags.get_int("nodes", full ? 269 : 96));
  const double hours = flags.get_double("hours", full ? 4.0 : 1.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const int shards = static_cast<int>(flags.get_int("shards", 0));
  const eval::ExperimentGrid grid = ncb::grid(flags);
  const std::vector<std::string> backends = eval::backend_names();

  ncb::print_header(
      "estimator backends: accuracy vs state cost, per scenario",
      "stable coordinates answer from O(n) state; a delay matrix answers "
      "covered pairs exactly but pays O(sampled pairs) memory + reports");
  std::printf("%d nodes, %.2f h replay, seed %llu, %zu backends\n", nodes,
              hours, static_cast<unsigned long long>(seed), backends.size());

  for (const std::string& scenario : scenarios) {
    std::vector<eval::ScenarioSpec> specs;
    specs.reserve(backends.size());
    for (const std::string& backend : backends) {
      eval::ScenarioSpec spec = eval::make_scenario(scenario);
      spec.workload.num_nodes = nodes;
      spec.workload.duration_s = 3600.0 * hours;
      spec.workload.seed = seed;
      spec.shards = shards;
      eval::apply_backend(spec, backend);
      specs.push_back(std::move(spec));
    }
    const std::vector<eval::ScenarioOutput> outputs = grid.run(specs);

    std::vector<std::pair<std::string, const eval::ScenarioOutput*>> runs;
    for (std::size_t i = 0; i < outputs.size(); ++i)
      runs.emplace_back(backends[i], &outputs[i]);
    std::cout << '\n';
    eval::print_backend_comparison(std::cout, "scenario " + scenario, runs);
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      std::cout << "  " << scenario << '/' << backends[i] << ' ';
      eval::print_memory_budget(std::cout, outputs[i]);
    }
  }
  std::printf(
      "\nreading the table: coverage is the fraction of queries answered\n"
      "from the backend's own state (the rest fell back or missed); stale\n"
      "is the fraction of live entries past the staleness horizon. The\n"
      "idms-volatile vs idms-sticky rows bracket the staleness sensitivity.\n");
  return 0;
}

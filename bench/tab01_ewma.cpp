// Table I — Exponentially-weighted histories vs the MP filter (paper: the
// MP filter improves error by 42% and instability by 47% over no filter;
// EWMA smoothing makes accuracy WORSE than no filter at every alpha —
// outliers are impulses to discard, not a trend to track).
//
// Flags: --scenario (planetlab), --nodes (269), --hours (4), --seed, --jobs.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const nc::Flags flags = ncb::parse_flags(argc, argv);
  nc::eval::ScenarioSpec base = ncb::scenario_spec(flags);
  base.client.heuristic = nc::HeuristicConfig::always();

  ncb::print_header("Table I: exponentially-weighted histories",
                    "MP: err -42%, instab -47%; EWMA worse than no filter "
                    "(alpha .02/.10/.20 -> err +125%/+1960%/+4650%)");
  ncb::print_workload(base);

  struct Row {
    const char* name;
    nc::FilterConfig filter;
  };
  const Row rows[] = {
      {"MP Filter", nc::FilterConfig::moving_percentile(4, 25)},
      {"No Filter", nc::FilterConfig::none()},
      {"EWMA a=0.02", nc::FilterConfig::ewma(0.02)},
      {"EWMA a=0.10", nc::FilterConfig::ewma(0.10)},
      {"EWMA a=0.20", nc::FilterConfig::ewma(0.20)},
  };

  std::vector<nc::eval::ScenarioSpec> specs(std::size(rows), base);
  for (std::size_t i = 0; i < std::size(rows); ++i)
    specs[i].client.filter = rows[i].filter;
  const auto outs = ncb::grid(flags).run(specs);

  double baseline_err = 0.0;
  double baseline_inst = 0.0;
  std::vector<ncb::SweepPoint> results;
  for (std::size_t i = 0; i < outs.size(); ++i) {
    results.push_back(ncb::sweep_point(outs[i]));
    if (std::string(rows[i].name) == "No Filter") {
      baseline_err = results.back().median_error;
      baseline_inst = results.back().instability;
    }
  }

  nc::eval::TextTable table(
      {"filter", "median rel. error", "vs no-filter", "instability", "vs no-filter"});
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    const auto pct = [](double v, double base) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%+.0f%%", 100.0 * (v / base - 1.0));
      return std::string(buf);
    };
    table.add_row({rows[i].name, nc::eval::fmt(results[i].median_error, 3),
                   pct(results[i].median_error, baseline_err),
                   nc::eval::fmt(results[i].instability, 4),
                   pct(results[i].instability, baseline_inst)});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: MP improves both columns; every EWMA row has\n"
               "worse error than No Filter, degrading as alpha grows.\n";
  return 0;
}

// Fig. 12 — APPLICATION/CENTROID: the windowless APPLICATION trigger
// publishing the centroid of the last 32 system coordinates (paper: more
// stable than plain APPLICATION/SYSTEM, but still a direct accuracy/
// stability trade-off that is sensitive to tau — evidence that the windowed
// heuristics' win comes from change detection deciding WHEN to update, not
// merely from publishing a centroid).
//
// Flags: --scenario (planetlab), --nodes (200; --full 269),
//        --hours (2; --full 4), --seed, --jobs, --window (32), --taus=...
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const nc::Flags flags = ncb::parse_flags(argc, argv, {"window", "taus"});
  nc::eval::ScenarioSpec spec = ncb::scenario_spec(
      flags, {.nodes = 200, .hours = 2.0, .full_nodes = 269, .full_hours = 4.0});
  const int window = static_cast<int>(flags.get_int("window", 32));
  const auto taus =
      flags.get_double_list("taus", {1, 2, 4, 8, 16, 32, 64, 128, 256});
  const auto grid = ncb::grid(flags);

  ncb::print_header("Fig. 12: APPLICATION/CENTROID threshold sweep",
                    "stability only at the expense of accuracy; not robust to "
                    "tau (contrast with Fig. 8)");
  ncb::print_workload(spec);

  // The reference ENERGY point rides the same grid pass as the sweep.
  std::vector<nc::HeuristicConfig> heuristics;
  for (double tau : taus)
    heuristics.push_back(nc::HeuristicConfig::application_centroid(tau, window));
  heuristics.push_back(nc::HeuristicConfig::energy(8.0, window));
  const auto points = ncb::run_points(spec, heuristics, grid);

  nc::eval::TextTable t({"tau", "median rel err", "instability", "%nodes-upd/s"});
  for (std::size_t i = 0; i < taus.size(); ++i) {
    const ncb::SweepPoint& p = points[i];
    t.add_row({nc::eval::fmt(taus[i], 4), nc::eval::fmt(p.median_error, 3),
               nc::eval::fmt(p.instability, 4), nc::eval::fmt(p.pct_updates, 3)});
  }
  t.print(std::cout);

  const ncb::SweepPoint& en = points.back();
  std::printf("\nreference energy(tau=8,k=%d): err=%.3f instability=%.3f\n", window,
              en.median_error, en.instability);
  std::cout << "expected shape: no tau matches energy's (error, instability) pair;\n"
               "low tau is unstable, high tau is inaccurate.\n";
  return 0;
}

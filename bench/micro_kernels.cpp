// Kernel microbenchmarks (google-benchmark): per-observation costs of the
// coordinate pipeline and the supporting data structures. The headline is
// the ENERGY heuristic's incremental energy distance: O(k) per observation
// against the naive O(k^2) recomputation (DESIGN.md ablation).
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "core/filters/mp_filter.hpp"
#include "core/nc_client.hpp"
#include "core/vivaldi.hpp"
#include "latency/trace_generator.hpp"
#include "sim/event_queue.hpp"
#include "sim/shard_mailbox.hpp"
#include "stats/energy.hpp"
#include "stats/p2_quantile.hpp"

namespace {

using namespace nc;

void BM_VecDistance(benchmark::State& state) {
  Rng rng(1);
  const Vec a = rng.unit_vector(3) * 50.0;
  const Vec b = rng.unit_vector(3) * 80.0;
  for (auto _ : state) benchmark::DoNotOptimize(a.distance_to(b));
}
BENCHMARK(BM_VecDistance);

void BM_VivaldiObserve(benchmark::State& state) {
  VivaldiConfig cfg;
  Vivaldi v(cfg, 1);
  Rng rng(2);
  const Coordinate remote{Vec{50.0, 20.0, -10.0}};
  double rtt = 60.0;
  for (auto _ : state) {
    rtt = 40.0 + rng.uniform(0.0, 40.0);
    benchmark::DoNotOptimize(v.observe(remote, 0.3, rtt));
  }
}
BENCHMARK(BM_VivaldiObserve);

void BM_MpFilterUpdate(benchmark::State& state) {
  MovingPercentileFilter f(static_cast<int>(state.range(0)), 25.0);
  Rng rng(3);
  for (auto _ : state) benchmark::DoNotOptimize(f.update(rng.lognormal(4.0, 0.8)));
}
BENCHMARK(BM_MpFilterUpdate)->Arg(4)->Arg(32)->Arg(128);

void BM_P2QuantileAdd(benchmark::State& state) {
  stats::P2Quantile q(0.95);
  Rng rng(4);
  for (auto _ : state) {
    q.add(rng.lognormal(4.0, 0.8));
    benchmark::DoNotOptimize(q.value());
  }
}
BENCHMARK(BM_P2QuantileAdd);

std::vector<Vec> window_of(int k, Rng& rng, double center) {
  std::vector<Vec> w;
  w.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i)
    w.push_back(rng.unit_vector(3) * rng.uniform(0.0, 10.0) +
                Vec{center, 0.0, 0.0});
  return w;
}

// Naive: recompute e(Ws, Wc) from scratch on every slide — O(k^2).
void BM_EnergySlideNaive(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Rng rng(5);
  const auto base = window_of(k, rng, 0.0);
  std::vector<Vec> current = window_of(k, rng, 5.0);
  for (auto _ : state) {
    current.erase(current.begin());
    current.push_back(rng.unit_vector(3) * rng.uniform(0.0, 10.0));
    benchmark::DoNotOptimize(stats::energy_distance(base, current));
  }
}
BENCHMARK(BM_EnergySlideNaive)->Arg(16)->Arg(32)->Arg(64);

// Incremental: maintain the pair sums under push/pop — O(k).
void BM_EnergySlideIncremental(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Rng rng(5);
  const auto base = window_of(k, rng, 0.0);
  stats::IncrementalEnergy inc;
  for (const Vec& v : window_of(k, rng, 5.0)) inc.push_current(v);
  inc.set_base(base);
  for (auto _ : state) {
    inc.push_current(rng.unit_vector(3) * rng.uniform(0.0, 10.0));
    inc.pop_current();
    benchmark::DoNotOptimize(inc.value());
  }
}
BENCHMARK(BM_EnergySlideIncremental)->Arg(16)->Arg(32)->Arg(64)->Arg(256);

// Full per-observation pipeline: filter + Vivaldi + ENERGY heuristic.
void BM_NCClientObserve(benchmark::State& state) {
  NCClientConfig cfg;
  cfg.heuristic = HeuristicConfig::energy(8.0, 32);
  NCClient client(0, cfg);
  Rng rng(6);
  const Coordinate remote{Vec{50.0, 20.0, -10.0}};
  NodeId peer = 1;
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    peer = 1 + (peer + 1) % 64;  // cycle a working set of links
    benchmark::DoNotOptimize(
        client.observe(peer, remote, 0.3, 40.0 + rng.uniform(0.0, 40.0), t));
  }
}
BENCHMARK(BM_NCClientObserve);

void BM_TraceGeneration(benchmark::State& state) {
  lat::TraceGenConfig cfg;
  cfg.topology.num_nodes = 128;
  cfg.duration_s = 1e9;  // effectively unbounded for the benchmark
  cfg.seed = 7;
  lat::TraceGenerator gen(cfg);
  for (auto _ : state) benchmark::DoNotOptimize(gen.next());
}
BENCHMARK(BM_TraceGeneration);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  struct P {
    int x;
  };
  sim::EventQueue<P> q;
  Rng rng(8);
  double t = 0.0;
  for (int i = 0; i < 1024; ++i) q.schedule(rng.uniform(0.0, 100.0), P{i});
  for (auto _ : state) {
    const auto e = q.pop();
    benchmark::DoNotOptimize(e);
    t = e->t;
    q.schedule(t + rng.uniform(0.0, 10.0), P{0});
  }
}
BENCHMARK(BM_EventQueueScheduleAndPop);

// The sharded engine's epoch rhythm on its calendar queue: one bulk batch
// of epoch-clamped deliveries, then drain the epoch while re-arming one
// timer per pop. Reported per processed event.
void BM_ShardEventQueueEpochBatch(benchmark::State& state) {
  const int kTimers = 256;
  const int kBatch = 512;
  sim::ShardEventQueue q;
  Rng rng(9);
  double epoch = 0.0;
  const double interval = 5.0;
  for (int i = 0; i < kTimers; ++i) {
    sim::ShardEvent ev;
    ev.t = rng.uniform(0.0, interval);
    ev.kind = sim::ShardEventKind::kPingTimer;
    ev.a = i;
    q.push(ev);
  }
  std::vector<sim::ShardEvent> batch;
  std::uint64_t processed = 0;
  while (state.KeepRunningBatch(kTimers + kBatch)) {
    batch.clear();
    for (int i = 0; i < kBatch; ++i) {
      sim::ShardEvent ev;
      ev.t = epoch;  // clamped delivery: all at the epoch start
      ev.kind = (i & 1) != 0 ? sim::ShardEventKind::kPong
                             : sim::ShardEventKind::kPing;
      ev.a = static_cast<NodeId>(rng.uniform_int(kTimers));
      ev.b = static_cast<NodeId>(rng.uniform_int(kTimers));
      ev.seq = processed + static_cast<std::uint64_t>(i);
      batch.push_back(ev);
    }
    q.push_batch(batch);
    epoch += interval;
    while (q.has_event_before(epoch)) {
      sim::ShardEvent ev = q.pop();
      ++processed;
      if (ev.kind == sim::ShardEventKind::kPingTimer) {
        ev.t += interval;
        q.push(ev);
      }
      benchmark::DoNotOptimize(ev);
    }
  }
}
BENCHMARK(BM_ShardEventQueueEpochBatch);

}  // namespace

BENCHMARK_MAIN();

// Fig. 5 — Vivaldi with the MP filter vs raw samples (paper: the filter at
// least doubles per-node accuracy and stability, and removes the three-
// orders-of-magnitude instability tail caused by spurious observations; the
// trimmed histogram shows the filter only clips the heavy tail).
//
// Flags: --scenario (planetlab), --nodes (269), --hours (4), --seed, --jobs.
#include <cstdio>
#include <unordered_map>

#include "bench_common.hpp"
#include "core/filters/mp_filter.hpp"
#include "latency/trace_generator.hpp"
#include "stats/histogram.hpp"

int main(int argc, char** argv) {
  const nc::Flags flags = ncb::parse_flags(argc, argv);
  nc::eval::ScenarioSpec spec = ncb::scenario_spec(flags);
  spec.client.heuristic = nc::HeuristicConfig::always();

  ncb::print_header("Fig. 5: accuracy and stability, MP filter vs no filter",
                    "MP(4,25) roughly halves error and per-node movement; "
                    "aggregate instability tail shrinks by ~3 orders of magnitude");
  ncb::print_workload(spec);

  // Both systems on the same workload, one grid pass.
  std::vector<nc::eval::ScenarioSpec> specs(2, spec);
  specs[0].client.filter = nc::FilterConfig::moving_percentile(4, 25);
  specs[1].client.filter = nc::FilterConfig::none();
  auto outs = ncb::grid(flags).run(specs);
  const nc::eval::ScenarioOutput& mp = outs[0];
  const nc::eval::ScenarioOutput& raw = outs[1];

  const auto mp_med = mp.metrics.per_node_median_error();
  const auto raw_med = raw.metrics.per_node_median_error();
  nc::eval::print_cdf_table(std::cout,
                            "\n(a) per-node MEDIAN relative error (CDF over nodes)",
                            {{"mp(4,25)", &mp_med}, {"no-filter", &raw_med}});

  const auto mp_p95 = mp.metrics.per_node_p95_error();
  const auto raw_p95 = raw.metrics.per_node_p95_error();
  nc::eval::print_cdf_table(std::cout,
                            "\n(b) per-node 95th-PCTILE relative error (CDF over nodes)",
                            {{"mp(4,25)", &mp_p95}, {"no-filter", &raw_p95}});

  const auto mp_move = mp.metrics.per_node_p95_movement();
  const auto raw_move = raw.metrics.per_node_p95_movement();
  nc::eval::print_cdf_table(
      std::cout, "\n(c) per-node 95th-pctile coordinate change per second (ms)",
      {{"mp(4,25)", &mp_move}, {"no-filter", &raw_move}});

  const auto mp_inst = mp.metrics.instability();
  const auto raw_inst = raw.metrics.instability();
  nc::eval::print_cdf_table(
      std::cout, "\n(d) aggregate instability, ms/s (CDF over seconds, note the tail)",
      {{"mp(4,25)", &mp_inst}, {"no-filter", &raw_inst}});
  std::printf("\ninstability tail: p99.9 mp=%.1f  raw=%.1f   max: mp=%.1f raw=%.1f\n",
              mp_inst.quantile(0.999), raw_inst.quantile(0.999), mp_inst.max(),
              raw_inst.max());

  // (e) What the filter feeds Vivaldi: per-link MP output vs the raw stream.
  {
    nc::lat::TraceGenConfig cfg = nc::eval::resolve_trace_config(spec.workload);
    nc::lat::TraceGenerator gen(cfg);
    nc::stats::Histogram raw_hist(nc::eval::fig2_bucket_edges());
    nc::stats::Histogram mp_hist(nc::eval::fig2_bucket_edges());
    std::unordered_map<std::uint64_t, nc::MovingPercentileFilter> filters;
    while (auto rec = gen.next()) {
      raw_hist.add(rec->rtt_ms);
      const std::uint64_t key = (static_cast<std::uint64_t>(rec->src) << 32) |
                                static_cast<std::uint64_t>(rec->dst);
      auto [it, ins] =
          filters.try_emplace(key, nc::MovingPercentileFilter(4, 25.0));
      mp_hist.add(*it->second.update(rec->rtt_ms));
    }
    nc::eval::print_histogram(std::cout, "\n(e) raw stream histogram", raw_hist);
    nc::eval::print_histogram(std::cout, "(e) MP(4,25) output histogram", mp_hist);
    std::printf("raw > 1 s: %.3f%%   filtered > 1 s: %.4f%%\n",
                100.0 * raw_hist.fraction_at_or_above(1000.0),
                100.0 * mp_hist.fraction_at_or_above(1000.0));
  }

  // (f) Per-DESTINATION error: a node can predict well as an observer yet be
  // a bad target (stale advertised coordinate); the filter tightens this
  // view too.
  const auto mp_dst = mp.metrics.per_dst_median_error();
  const auto raw_dst = raw.metrics.per_dst_median_error();
  nc::eval::print_cdf_table(
      std::cout, "\n(f) per-destination MEDIAN relative error (CDF over targets)",
      {{"mp(4,25)", &mp_dst}, {"no-filter", &raw_dst}});

  std::printf("\nsummary: median node error  mp=%.4f raw=%.4f (%+.0f%%)\n",
              mp.metrics.median_relative_error(), raw.metrics.median_relative_error(),
              100.0 * (mp.metrics.median_relative_error() /
                           raw.metrics.median_relative_error() -
                       1.0));
  std::printf("         median instability  mp=%.1f raw=%.1f ms/s (%+.0f%%)\n",
              mp.metrics.median_instability_ms_per_s(),
              raw.metrics.median_instability_ms_per_s(),
              100.0 * (mp.metrics.median_instability_ms_per_s() /
                           raw.metrics.median_instability_ms_per_s() -
                       1.0));
  return 0;
}

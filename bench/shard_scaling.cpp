// Shard-scaling kernel: events/sec of ONE online run vs worker shard count.
//
// ExperimentGrid already scales sweeps across runs; this bench measures the
// orthogonal axis the epoch-sharded engine adds — how fast a single big
// deployment replay goes as shards grow. It runs the same scenario at
// --shards = 1, 2, 4, ... (powers of two up to --max-shards), reports
// events/sec and speedup vs shards=1, and cross-checks that every shard
// count produced bit-identical metrics (the engine's core guarantee; the
// run aborts loudly if not).
//
// Flags: --scenario (planetlab), --nodes (1000), --hours (1), --seed (7),
//        --max-shards (4).
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_common.hpp"
#include "sim/sharded_sim.hpp"

int main(int argc, char** argv) {
  const nc::Flags flags =
      ncb::parse_flags_exact(argc, argv, {"scenario", "nodes", "hours", "seed",
                                          "max-shards", "full"});
  nc::eval::ScenarioSpec base = ncb::scenario_spec(
      flags, {.nodes = 1000, .hours = 1.0, .full_nodes = 1000, .full_hours = 1.0,
              .seed = 7, .mode = nc::eval::SimMode::kOnline});
  const int max_shards = static_cast<int>(flags.get_int("max-shards", 4));

  ncb::print_header("shard scaling: events/sec of one online run vs shards",
                    "");
  ncb::print_workload(base);
  std::printf("hardware threads: %u\n",
              std::thread::hardware_concurrency());
  std::printf("\n%8s %12s %14s %12s %10s %12s\n", "shards", "wall(s)",
              "events", "events/s", "speedup", "median-err");

  double base_rate = 0.0;
  double ref_err = 0.0, ref_inst = 0.0;
  std::uint64_t ref_obs = 0;
  for (int w = 1; w <= max_shards; w *= 2) {
    nc::eval::ScenarioSpec spec = base;
    spec.shards = w;

    const auto t0 = std::chrono::steady_clock::now();
    // Drive the simulator directly (not run_scenario) so events_processed()
    // is readable; the resolve_* helpers assemble exactly what run_scenario
    // would, so the measured workload IS the named scenario.
    nc::sim::ShardedOnlineSimulator sim(
        nc::eval::resolve_online_config(spec), w,
        nc::lat::Topology::make(nc::eval::resolve_topology_config(spec.workload)),
        spec.workload.link_model.value_or(nc::lat::LinkModelConfig{}),
        spec.workload.availability.value_or(nc::lat::AvailabilityConfig{}),
        nc::eval::resolve_route_changes(spec.workload));
    sim.run();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    const double err = sim.metrics().median_relative_error();
    const double inst = sim.metrics().mean_instability_ms_per_s();
    const auto events = sim.events_processed();
    const double rate = static_cast<double>(events) / wall;
    if (w == 1) {
      base_rate = rate;
      ref_err = err;
      ref_inst = inst;
      ref_obs = sim.metrics().observation_count();
    } else {
      NC_CHECK_MSG(err == ref_err && inst == ref_inst &&
                       sim.metrics().observation_count() == ref_obs,
                   "sharded run diverged from shards=1 (determinism bug)");
    }
    std::printf("%8d %12.2f %14llu %12.0f %9.2fx %12.4f\n", w, wall,
                static_cast<unsigned long long>(events), rate, rate / base_rate,
                err);
  }
  std::printf("\nnote: speedup needs real cores; on a 1-core host all shard\n"
              "counts serialize and the ratio stays ~1.\n");
  return 0;
}

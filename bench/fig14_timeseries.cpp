// Fig. 14 — Relative error and instability over time in the deployment
// (paper: ten-minute medians/means; after a ~30-minute convergence period
// the MP+ENERGY system is smooth and accurate while the raw system stays
// noisy for the whole four hours).
//
// Flags: --nodes (270), --hours (4), --seed, --interval (5), --bucket-min (10).
#include <cstdio>

#include "bench_common.hpp"

namespace {

nc::eval::OnlineOutput run_config(const nc::Flags& flags, bool mp, bool energy) {
  nc::eval::OnlineSpec spec;
  spec.num_nodes = static_cast<int>(flags.get_int("nodes", 270));
  spec.duration_s = 3600.0 * flags.get_double("hours", 4.0);
  spec.ping_interval_s = flags.get_double("interval", 5.0);
  spec.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  spec.collect_timeseries = true;
  spec.timeseries_bucket_s = 60.0 * flags.get_double("bucket-min", 10.0);
  spec.client.filter =
      mp ? nc::FilterConfig::moving_percentile(4, 25) : nc::FilterConfig::none();
  spec.client.heuristic =
      energy ? nc::HeuristicConfig::energy(8.0, 32) : nc::HeuristicConfig::always();
  return nc::eval::run_online(spec);
}

void print_series(const char* title,
                  const std::vector<std::pair<std::string,
                                              std::vector<nc::stats::SeriesPoint>>>&
                      series) {
  std::cout << "\n" << title << "\n";
  std::vector<std::string> headers = {"t(h)"};
  for (const auto& [name, s] : series) headers.push_back(name);
  nc::eval::TextTable t(std::move(headers));
  const std::size_t n = series.front().second.size();
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::string> row = {
        nc::eval::fmt(series.front().second[i].t / 3600.0, 3)};
    for (const auto& [name, s] : series)
      row.push_back(i < s.size() ? nc::eval::fmt(s[i].value, 3) : "-");
    t.add_row(std::move(row));
  }
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const nc::Flags flags(argc, argv);

  ncb::print_header("Fig. 14: error and instability over time (10-min buckets)",
                    "half-hour convergence, then MP+ENERGY smooth and accurate; "
                    "raw stays noisy");

  const auto em = run_config(flags, true, true);
  const auto rm = run_config(flags, true, false);
  const auto en = run_config(flags, false, true);
  const auto rn = run_config(flags, false, false);

  print_series("95th-percentile relative error per bucket",
               {{"energy+mp", em.metrics.error_timeseries_p95()},
                {"raw-mp", rm.metrics.error_timeseries_p95()},
                {"energy+nofilter", en.metrics.error_timeseries_p95()},
                {"raw-nofilter", rn.metrics.error_timeseries_p95()}});

  print_series("median relative error per bucket",
               {{"energy+mp", em.metrics.error_timeseries_median()},
                {"raw-mp", rm.metrics.error_timeseries_median()},
                {"energy+nofilter", en.metrics.error_timeseries_median()},
                {"raw-nofilter", rn.metrics.error_timeseries_median()}});

  print_series("mean instability per bucket (ms/s)",
               {{"energy+mp", em.metrics.instability_timeseries()},
                {"raw-mp", rm.metrics.instability_timeseries()},
                {"energy+nofilter", en.metrics.instability_timeseries()},
                {"raw-nofilter", rn.metrics.instability_timeseries()}});

  std::cout << "\nexpected shape: all series start high during convergence; after\n"
               "~0.5 h the energy+mp rows sit lowest and flattest.\n";
  return 0;
}

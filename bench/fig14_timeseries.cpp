// Fig. 14 — Relative error and instability over time in the deployment
// (paper: ten-minute medians/means; after a ~30-minute convergence period
// the MP+ENERGY system is smooth and accurate while the raw system stays
// noisy for the whole four hours).
//
// Flags: --scenario (planetlab), --nodes (270), --hours (4), --seed (7),
//        --jobs, --interval (5), --bucket-min (10), --shards (worker shards
//        per run on the epoch-sharded kernel; 0/1 = one shard).
#include <cstdio>

#include "bench_common.hpp"

namespace {

void print_series(const char* title,
                  const std::vector<std::pair<std::string,
                                              std::vector<nc::stats::SeriesPoint>>>&
                      series) {
  std::cout << "\n" << title << "\n";
  std::vector<std::string> headers = {"t(h)"};
  for (const auto& [name, s] : series) headers.push_back(name);
  nc::eval::TextTable t(std::move(headers));
  const std::size_t n = series.front().second.size();
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::string> row = {
        nc::eval::fmt(series.front().second[i].t / 3600.0, 3)};
    for (const auto& [name, s] : series)
      row.push_back(i < s.size() ? nc::eval::fmt(s[i].value, 3) : "-");
    t.add_row(std::move(row));
  }
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const nc::Flags flags =
      ncb::parse_flags(argc, argv, {"interval", "bucket-min"});
  nc::eval::ScenarioSpec base = ncb::scenario_spec(
      flags,
      {.nodes = 270, .full_nodes = 270, .seed = 7, .mode = nc::eval::SimMode::kOnline});
  base.workload.ping_interval_s = flags.get_double("interval", 5.0);
  base.measurement.collect_timeseries = true;
  base.measurement.timeseries_bucket_s = 60.0 * flags.get_double("bucket-min", 10.0);

  ncb::print_header("Fig. 14: error and instability over time (10-min buckets)",
                    "half-hour convergence, then MP+ENERGY smooth and accurate; "
                    "raw stays noisy");
  ncb::print_workload(base);

  std::vector<nc::eval::ScenarioSpec> specs;
  for (const bool mp : {true, false})
    for (const bool energy : {true, false}) {
      nc::eval::ScenarioSpec spec = base;
      spec.client.filter = mp ? nc::FilterConfig::moving_percentile(4, 25)
                              : nc::FilterConfig::none();
      spec.client.heuristic = energy ? nc::HeuristicConfig::energy(8.0, 32)
                                     : nc::HeuristicConfig::always();
      specs.push_back(std::move(spec));
    }
  auto outs = ncb::grid(flags).run(specs);
  const nc::eval::ScenarioOutput& em = outs[0];
  const nc::eval::ScenarioOutput& rm = outs[1];
  const nc::eval::ScenarioOutput& en = outs[2];
  const nc::eval::ScenarioOutput& rn = outs[3];

  print_series("95th-percentile relative error per bucket",
               {{"energy+mp", em.metrics.error_timeseries_p95()},
                {"raw-mp", rm.metrics.error_timeseries_p95()},
                {"energy+nofilter", en.metrics.error_timeseries_p95()},
                {"raw-nofilter", rn.metrics.error_timeseries_p95()}});

  print_series("median relative error per bucket",
               {{"energy+mp", em.metrics.error_timeseries_median()},
                {"raw-mp", rm.metrics.error_timeseries_median()},
                {"energy+nofilter", en.metrics.error_timeseries_median()},
                {"raw-nofilter", rn.metrics.error_timeseries_median()}});

  print_series("mean instability per bucket (ms/s)",
               {{"energy+mp", em.metrics.instability_timeseries()},
                {"raw-mp", rm.metrics.instability_timeseries()},
                {"energy+nofilter", en.metrics.instability_timeseries()},
                {"raw-nofilter", rn.metrics.instability_timeseries()}});

  std::cout << "\nexpected shape: all series start high during convergence; after\n"
               "~0.5 h the energy+mp rows sit lowest and flattest.\n";
  return 0;
}

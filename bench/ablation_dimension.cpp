// Ablation — coordinate dimensionality and height vectors. The paper fixes
// 3-D pure-Euclidean coordinates (their stream-overlay stack expects a
// metric space) but notes the techniques carry over to height vectors.
// This sweep shows what that choice costs and buys on the same workload.
//
// Flags: --scenario (planetlab), --nodes (150), --hours (1.5), --seed, --jobs.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const nc::Flags flags = ncb::parse_flags(argc, argv);
  nc::eval::ScenarioSpec base = ncb::scenario_spec(
      flags, {.nodes = 150, .hours = 1.5, .full_nodes = 269, .full_hours = 4.0});
  base.client.heuristic = nc::HeuristicConfig::energy(8.0, 32);

  ncb::print_header("Ablation: dimensionality and height vectors",
                    "paper uses 3-D Euclidean; 2-D underfits; heights absorb "
                    "access-link latency");
  ncb::print_workload(base);

  std::vector<nc::eval::ScenarioSpec> specs;
  std::vector<std::pair<int, bool>> cells;
  for (int dim : {2, 3, 5}) {
    for (bool height : {false, true}) {
      nc::eval::ScenarioSpec spec = base;
      spec.client.vivaldi.dim = dim;
      spec.client.vivaldi.use_height = height;
      specs.push_back(std::move(spec));
      cells.emplace_back(dim, height);
    }
  }
  const auto outs = ncb::grid(flags).run(specs);

  nc::eval::TextTable t({"dim", "height", "median rel err", "p95 rel err (median node)",
                         "instability"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& out = outs[i];
    t.add_row({std::to_string(cells[i].first), cells[i].second ? "yes" : "no",
               nc::eval::fmt(out.metrics.median_relative_error(), 3),
               nc::eval::fmt(out.metrics.per_node_p95_error().median(), 3),
               nc::eval::fmt(out.metrics.mean_instability_ms_per_s(), 4)});
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: error falls from 2-D to 3-D and little further by\n"
               "5-D; heights help most at low dimension (they absorb the\n"
               "access-link component the plane cannot express).\n";
  return 0;
}

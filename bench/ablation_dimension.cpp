// Ablation — coordinate dimensionality and height vectors. The paper fixes
// 3-D pure-Euclidean coordinates (their stream-overlay stack expects a
// metric space) but notes the techniques carry over to height vectors.
// This sweep shows what that choice costs and buys on the same workload.
//
// Flags: --nodes (150), --hours (1.5), --seed.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const nc::Flags flags(argc, argv);
  nc::eval::ReplaySpec base = ncb::replay_spec(
      flags, {.nodes = 150, .hours = 1.5, .full_nodes = 269, .full_hours = 4.0});
  base.client.heuristic = nc::HeuristicConfig::energy(8.0, 32);

  ncb::print_header("Ablation: dimensionality and height vectors",
                    "paper uses 3-D Euclidean; 2-D underfits; heights absorb "
                    "access-link latency");
  ncb::print_workload(base);

  nc::eval::TextTable t({"dim", "height", "median rel err", "p95 rel err (median node)",
                         "instability"});
  for (int dim : {2, 3, 5}) {
    for (bool height : {false, true}) {
      nc::eval::ReplaySpec spec = base;
      spec.client.vivaldi.dim = dim;
      spec.client.vivaldi.use_height = height;
      const auto out = nc::eval::run_replay(spec);
      t.add_row({std::to_string(dim), height ? "yes" : "no",
                 nc::eval::fmt(out.metrics.median_relative_error(), 3),
                 nc::eval::fmt(out.metrics.per_node_p95_error().median(), 3),
                 nc::eval::fmt(out.metrics.mean_instability_ms_per_s(), 4)});
    }
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: error falls from 2-D to 3-D and little further by\n"
               "5-D; heights help most at low dimension (they absorb the\n"
               "access-link component the plane cannot express).\n";
  return 0;
}

// Ablation — the "well-known test" baseline for window change detection.
//
// Kifer, Ben-David & Gehrke's framework assumes a classical two-sample test;
// those are one-dimensional, which is why the paper introduces RELATIVE and
// ENERGY for coordinate streams. RANKSUM applies the Wilcoxon rank-sum test
// to the obvious 1-D reduction (distance to the frozen start centroid). It
// works — but it is blind to coordinate changes that preserve distance to
// C(W_s), and its p-value threshold is a much less intuitive tuning knob
// than ENERGY's distance-scaled tau.
//
// Flags: --scenario (planetlab), --nodes (150), --hours (2), --seed, --jobs,
//        --window (32).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const nc::Flags flags = ncb::parse_flags(argc, argv, {"window"});
  nc::eval::ScenarioSpec spec = ncb::scenario_spec(
      flags, {.nodes = 150, .hours = 2.0, .full_nodes = 269, .full_hours = 4.0});
  const int window = static_cast<int>(flags.get_int("window", 32));

  ncb::print_header("Ablation: RANKSUM (1-D two-sample test) vs ENERGY/RELATIVE",
                    "classical tests are 1-D — the gap that motivated the "
                    "paper's multivariate heuristics");
  ncb::print_workload(spec);

  std::vector<std::pair<std::string, std::string>> labels;
  std::vector<nc::HeuristicConfig> heuristics;
  for (double alpha : {0.05, 0.01, 0.001}) {
    labels.emplace_back("ranksum", nc::eval::fmt(alpha, 3));
    heuristics.push_back(nc::HeuristicConfig::rank_sum(alpha, window));
  }
  for (double tau : {4.0, 8.0, 16.0}) {
    labels.emplace_back("energy", nc::eval::fmt(tau, 3));
    heuristics.push_back(nc::HeuristicConfig::energy(tau, window));
  }
  for (double eps : {0.2, 0.3, 0.4}) {
    labels.emplace_back("relative", nc::eval::fmt(eps, 3));
    heuristics.push_back(nc::HeuristicConfig::relative(eps, window));
  }
  const auto points = ncb::run_points(spec, heuristics, ncb::grid(flags));

  nc::eval::TextTable t(
      {"heuristic", "param", "median rel err", "mean instab", "%nodes-upd/s"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ncb::SweepPoint& p = points[i];
    t.add_row({labels[i].first, labels[i].second, nc::eval::fmt(p.median_error, 3),
               nc::eval::fmt(p.instability, 4), nc::eval::fmt(p.pct_updates, 3)});
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: ranksum lands in the same accuracy band; its\n"
               "stability/update rate is competitive on this workload (radial\n"
               "drifts dominate), but tests/core/ranksum_heuristic_test.cpp\n"
               "demonstrates the constant-radius blind spot ENERGY does not have.\n";
  return 0;
}

// Rebalance tier: does dynamic ownership keep every worker busy under
// churn?
//
// PR 9's acceptance bench. The epoch-sharded kernel block-partitions node
// ids at construction; under churn and flash-crowd availability the live
// population drifts away from that static split and some workers idle at
// the barriers while others grind. Dynamic ownership (sim/sharded_sim.hpp,
// --rebalance=K) re-plans the partition every K epochs from per-node event
// weights and migrates a bounded batch of nodes per barrier — metrics stay
// bit-identical, only the placement moves.
//
// For each scenario in {churn, flash-crowd} x n in {10k, 20k} this bench
// runs the ONLINE engine twice — static partition vs. rebalancing — under
// an identical staged-rollout skew (the lowest n/4 ids join a third of the
// way in, so the static split is genuinely lopsided, as a real staged
// deployment would be) and reports events/sec plus the per-shard busy-time
// spread (max-min)/mean of CLOCK_THREAD_CPUTIME_ID over delivery +
// processing segments (barrier waits excluded). Each row also prints a
// JSON object for the BENCH record's "rebalance" section;
// scripts/bench_diff.py gates events/sec (higher) and util_spread (lower)
// across PRs.
//
// Flags: --scenario (flash-crowd; selects the ONE preset to run instead of
//        the two-preset suite, and the selfcheck workload), --nodes (0 =
//        the 10k/20k suite, otherwise one size), --hours (0.25), --seed
//        (7), --shards (2), --rebalance (8: decision interval in epochs for
//        the ON rows), --rebalance-moves (64: migration batch bound),
//        --selfcheck (off: skip the grid; run a small built-in workload and
//        require ON==OFF and ON@W==ON@1 metrics bit-for-bit plus
//        migrations > 0, then exit).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/sharded_sim.hpp"

namespace {

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double util_spread(const std::vector<double>& busy) {
  if (busy.size() < 2) return 0.0;
  const double mx = *std::max_element(busy.begin(), busy.end());
  const double mn = *std::min_element(busy.begin(), busy.end());
  const double mean =
      std::accumulate(busy.begin(), busy.end(), 0.0) /
      static_cast<double>(busy.size());
  return mean > 0.0 ? (mx - mn) / mean : 0.0;
}

struct RowResult {
  double wall = 0.0;
  std::uint64_t events = 0;
  double spread = 0.0;
  std::uint64_t migrated = 0;
  double median_err = 0.0;
  std::uint64_t observations = 0;
  std::uint64_t pings_sent = 0;
  nc::sim::MemoryBudget mem;
};

/// One online run of `spec` with the staged-rollout skew applied: the
/// lowest n/4 ids stay down until duration/3. The skew is part of the
/// WORKLOAD (identical for on and off rows); rebalancing only changes which
/// worker owns whom.
RowResult run_row(nc::eval::ScenarioSpec spec, int shards, int interval,
                  int max_moves) {
  spec.shards = shards;
  spec.rebalance_interval_epochs = interval;
  spec.rebalance_max_moves = max_moves;
  nc::lat::AvailabilityConfig av =
      spec.workload.availability.value_or(nc::lat::AvailabilityConfig{});
  av.staged_down_count = spec.workload.num_nodes / 4;
  av.staged_join_s = spec.workload.duration_s / 3.0;
  spec.workload.availability = av;

  const auto t0 = std::chrono::steady_clock::now();
  nc::sim::ShardedEngine sim(
      nc::eval::resolve_online_config(spec), shards,
      nc::lat::Topology::make(nc::eval::resolve_topology_config(spec.workload)),
      spec.workload.link_model.value_or(nc::lat::LinkModelConfig{}), av,
      nc::eval::resolve_route_changes(spec.workload));
  sim.run();
  RowResult r;
  r.wall = wall_seconds_since(t0);
  r.events = sim.events_processed();
  r.spread = util_spread(sim.shard_busy_seconds());
  r.migrated = sim.migrated_nodes();
  r.median_err = sim.metrics().median_relative_error();
  r.observations = sim.metrics().observation_count();
  r.pings_sent = sim.pings_sent();
  r.mem = sim.memory_budget();
  return r;
}

void print_row(const std::string& scenario, int nodes, int shards,
               int rebalance_on, const RowResult& r) {
  const double rate = static_cast<double>(r.events) / r.wall;
  std::printf("%12s %7d %6d %4s %10.2f %14llu %12.0f %11.3f %9llu %10s\n",
              scenario.c_str(), nodes, shards, rebalance_on ? "on" : "off",
              r.wall, static_cast<unsigned long long>(r.events), rate, r.spread,
              static_cast<unsigned long long>(r.migrated),
              nc::eval::fmt_bytes(r.mem.total()).c_str());
  std::printf(
      "  json: {\"scenario\": \"%s\", \"nodes\": %d, \"shards\": %d, "
      "\"rebalance\": %d, \"wall_s\": %.2f, \"events\": %llu, "
      "\"events_per_s\": %.0f, \"util_spread\": %.4f, \"migrated\": %llu, "
      "\"rebalance_bytes\": %llu, \"mem_bytes\": %llu, \"median_err\": "
      "%.4f}\n",
      scenario.c_str(), nodes, shards, rebalance_on, r.wall,
      static_cast<unsigned long long>(r.events), rate, r.spread,
      static_cast<unsigned long long>(r.migrated),
      static_cast<unsigned long long>(r.mem.rebalance_bytes),
      static_cast<unsigned long long>(r.mem.total()), r.median_err);
}

}  // namespace

int main(int argc, char** argv) {
  const nc::Flags flags = ncb::parse_flags_exact(
      argc, argv, {"scenario", "nodes", "hours", "seed", "shards", "rebalance",
                   "rebalance-moves", "selfcheck", "full"});
  const int shards = std::max(2, static_cast<int>(flags.get_int("shards", 2)));
  const int interval = std::max(1, static_cast<int>(flags.get_int("rebalance", 8)));
  const int max_moves =
      std::max(1, static_cast<int>(flags.get_int("rebalance-moves", 64)));

  const auto spec_for = [&](const std::string& scenario, int nodes,
                            double hours) {
    NC_CHECK_MSG(nc::eval::scenario_exists(scenario),
                 "unknown scenario preset");
    nc::eval::ScenarioSpec spec = nc::eval::make_scenario(scenario);
    spec.mode = nc::eval::SimMode::kOnline;
    spec.workload.num_nodes = nodes;
    spec.workload.duration_s = 3600.0 * hours;
    spec.workload.seed =
        static_cast<std::uint64_t>(flags.get_int("seed", 7));
    return spec;
  };

  if (flags.get_bool("selfcheck", false)) {
    // The CI smoke path: a small workload, and the tentpole's contract
    // checked loudly — rebalancing must change placement, never results.
    const std::string scenario = flags.get_string("scenario", "flash-crowd");
    const auto spec = spec_for(scenario, 256, 0.1);
    const RowResult off = run_row(spec, shards, 0, max_moves);
    const RowResult on = run_row(spec, shards, 2, max_moves);
    const RowResult serial = run_row(spec, 1, 2, max_moves);
    NC_CHECK_MSG(on.migrated > 0, "selfcheck workload produced no migrations");
    NC_CHECK_MSG(on.median_err == off.median_err &&
                     on.observations == off.observations &&
                     on.pings_sent == off.pings_sent &&
                     on.events == off.events,
                 "rebalancing changed results at the same shard count "
                 "(determinism bug)");
    NC_CHECK_MSG(on.median_err == serial.median_err &&
                     on.observations == serial.observations &&
                     on.pings_sent == serial.pings_sent &&
                     on.events == serial.events,
                 "rebalanced run diverged from shards=1 (determinism bug)");
    std::printf("selfcheck: scenario=%s shards=%d — on == off == serial "
                "(err, obs, pings, events), %llu nodes migrated\n",
                scenario.c_str(), shards,
                static_cast<unsigned long long>(on.migrated));
    return 0;
  }

  std::vector<std::string> scenarios = {"churn", "flash-crowd"};
  if (flags.has("scenario"))
    scenarios = {flags.get_string("scenario", "flash-crowd")};
  std::vector<int> sizes = {10000, 20000};
  if (flags.get_int("nodes", 0) > 0)
    sizes = {static_cast<int>(flags.get_int("nodes", 0))};
  const double hours = flags.get_double("hours", 0.25);

  ncb::print_header(
      "rebalance: per-shard utilization under churn, static vs dynamic "
      "ownership",
      "");
  std::printf("shards=%d, rebalance every %d epochs (<=%d moves), %.2f h, "
              "staged skew: lowest n/4 ids join at t=duration/3\n",
              shards, interval, max_moves, hours);
  std::printf("\n%12s %7s %6s %4s %10s %14s %12s %11s %9s %10s\n", "scenario",
              "nodes", "shards", "reb", "wall(s)", "events", "events/s",
              "util-spread", "migrated", "mem");

  for (const std::string& scenario : scenarios) {
    for (const int n : sizes) {
      const auto spec = spec_for(scenario, n, hours);
      const RowResult off = run_row(spec, shards, 0, max_moves);
      print_row(scenario, n, shards, 0, off);
      const RowResult on = run_row(spec, shards, interval, max_moves);
      print_row(scenario, n, shards, 1, on);
      NC_CHECK_MSG(on.median_err == off.median_err &&
                       on.observations == off.observations &&
                       on.events == off.events,
                   "rebalancing changed results (determinism bug)");
    }
  }

  std::printf(
      "\nnote: util-spread is (max-min)/mean of per-shard busy CPU time\n"
      "(delivery + processing segments; barrier waits excluded), so it\n"
      "measures work imbalance even on a 1-core host where wall-clock\n"
      "cannot speed up. Rows self-check that rebalancing never changes\n"
      "metrics.\n");
  return 0;
}

// SnapshotPublisher single-threaded semantics and the SnapshotEstimator
// backend (estimate/snapshot_estimator.hpp): direct answers from published
// snapshots, coordinate-cache fallback everywhere else. The concurrent
// publisher tests live in tests/sim/snapshot_test.cpp (the TSan target).
#include "estimate/snapshot_estimator.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/vec.hpp"
#include "estimate/snapshot.hpp"

namespace nc::est {
namespace {

Coordinate at(double x, double y) { return Coordinate(Vec({x, y, 0.0})); }

void publish_two(SnapshotPublisher& pub, const Coordinate& a,
                 const Coordinate& b, double t) {
  EpochSnapshot& snap = pub.staging(2);
  snap.nodes[0] = {a, 0.1, 0.9, 1};
  snap.nodes[1] = {b, 0.2, 0.8, 1};
  pub.publish(t);
}

TEST(SnapshotPublisher, EmptyUntilFirstPublish) {
  SnapshotPublisher pub;
  EXPECT_EQ(pub.latest(), nullptr);
  EXPECT_EQ(pub.published(), 0u);
  EXPECT_EQ(pub.memory_bytes(), 0u);
}

TEST(SnapshotPublisher, PublishesDenseVersionsWithContent) {
  SnapshotPublisher pub;
  publish_two(pub, at(0, 0), at(3, 4), 1.0);
  const auto v1 = pub.latest();
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->version, 1u);
  EXPECT_EQ(v1->t_s, 1.0);
  EXPECT_EQ(v1->num_nodes(), 2);
  EXPECT_EQ(v1->nodes[1].app, at(3, 4));
  EXPECT_TRUE(v1->nodes[0].placed());

  publish_two(pub, at(1, 0), at(3, 4), 2.0);
  const auto v2 = pub.latest();
  ASSERT_NE(v2, nullptr);
  EXPECT_EQ(v2->version, 2u);
  EXPECT_EQ(pub.published(), 2u);
  // The held older snapshot is immutable: the new publish cycle must not
  // have touched it (its buffer cannot be recycled while referenced).
  EXPECT_EQ(v1->version, 1u);
  EXPECT_EQ(v1->nodes[0].app, at(0, 0));
}

TEST(SnapshotPublisher, RecyclesRetiredBuffers) {
  SnapshotPublisher pub;
  // With no reader holding anything, the retired buffer returns to the pool
  // and gets reused: memory stays bounded across many publish cycles.
  publish_two(pub, at(0, 0), at(1, 1), 0.0);
  const std::uint64_t after_one = pub.memory_bytes();
  for (int i = 1; i <= 100; ++i)
    publish_two(pub, at(i, 0), at(0, i), static_cast<double>(i));
  EXPECT_EQ(pub.published(), 101u);
  EXPECT_LE(pub.memory_bytes(), 3 * after_one);
}

TEST(SnapshotPublisher, UnplacedSlotsStayUnplaced) {
  SnapshotPublisher pub;
  EpochSnapshot& snap = pub.staging(3);
  snap.nodes[0] = {at(1, 1), 0.1, 0.9, 1};
  snap.nodes[1] = SnapshotNode{};  // never initialized
  snap.nodes[2] = {at(2, 2), 0.1, 0.9, 0};
  pub.publish(5.0);
  const auto v = pub.latest();
  EXPECT_TRUE(v->nodes[0].placed());
  EXPECT_FALSE(v->nodes[1].placed());
  EXPECT_TRUE(v->nodes[2].placed());
  EXPECT_EQ(v->nodes[2].up, 0);
}

TEST(SnapshotEstimator, AnswersFromSnapshotWhenPlaced) {
  SnapshotPublisher pub;
  SnapshotEstimator est(SnapshotEstimatorConfig{}, &pub, 2);
  // Before any publish: nothing to answer from, and no fallback state yet.
  EXPECT_FALSE(est.estimate_rtt(0, 1, 0.0).has_value());

  publish_two(pub, at(0, 0), at(3, 4), 1.0);
  const std::optional<double> d = est.estimate_rtt(0, 1, 1.0);
  ASSERT_TRUE(d.has_value());
  EXPECT_DOUBLE_EQ(*d, 5.0);  // 3-4-5 triangle

  const EstimatorStats s = est.stats();
  EXPECT_EQ(s.queries, 2u);
  EXPECT_EQ(s.direct_hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.fallback_hits, 0u);
}

TEST(SnapshotEstimator, FallsBackToObservationCache) {
  SnapshotPublisher pub;
  SnapshotEstimator est(SnapshotEstimatorConfig{}, &pub, 4);
  // Nodes 2 and 3 are outside every published snapshot's placed set, but
  // their advertised coordinates arrive on the observation feed.
  EpochSnapshot& snap = pub.staging(4);
  snap.nodes[0] = {at(0, 0), 0.1, 0.9, 1};
  snap.nodes[1] = {at(1, 0), 0.1, 0.9, 1};
  pub.publish(1.0);

  est.on_observation({2, 3, 1.0, 7.5, at(0, 3), at(4, 0)});
  const std::optional<double> d = est.estimate_rtt(2, 3, 1.0);
  ASSERT_TRUE(d.has_value());
  EXPECT_DOUBLE_EQ(*d, 5.0);
  EXPECT_EQ(est.stats().fallback_hits, 1u);
  EXPECT_EQ(est.stats().direct_hits, 0u);
}

TEST(SnapshotEstimator, NullSourceIsPureFallback) {
  SnapshotEstimator est(SnapshotEstimatorConfig{}, nullptr, 2);
  EXPECT_FALSE(est.estimate_rtt(0, 1, 0.0).has_value());
  est.on_observation({0, 1, 1.0, 7.5, at(0, 0), at(6, 8)});
  const std::optional<double> d = est.estimate_rtt(0, 1, 1.0);
  ASSERT_TRUE(d.has_value());
  EXPECT_DOUBLE_EQ(*d, 10.0);
}

}  // namespace
}  // namespace nc::est

#include "estimate/idms_estimator.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace nc::est {
namespace {

LatencyObservation obs(NodeId src, NodeId dst, double t_s, double rtt,
                       const Coordinate& src_app = {},
                       const Coordinate& dst_app = {}) {
  return LatencyObservation{src, dst, t_s, rtt, src_app, dst_app};
}

TEST(IDMSEstimator, FirstSampleFillsTheCell) {
  IDMSEstimator est({}, 4, 0, 4);
  est.on_observation(obs(0, 1, 1.0, 120.0));
  const auto e = est.estimate_rtt(0, 1, 1.0);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(*e, 120.0);
  const EstimatorStats s = est.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.direct_hits, 1u);
}

TEST(IDMSEstimator, RepeatedSamplesSmoothWithEwma) {
  IDMSEstimator est({.max_age_s = 600.0, .alpha = 0.3}, 4, 0, 4);
  est.on_observation(obs(0, 1, 1.0, 100.0));
  est.on_observation(obs(0, 1, 2.0, 50.0));
  // Bit-exact EWMA reference: alpha * newest + (1 - alpha) * cell.
  double cell = 100.0;
  cell = 0.3 * 50.0 + (1.0 - 0.3) * cell;
  EXPECT_EQ(est.estimate_rtt(0, 1, 2.0), cell);
  // A spike moves the cell by alpha only, it does not own it.
  est.on_observation(obs(0, 1, 3.0, 1000.0));
  cell = 0.3 * 1000.0 + (1.0 - 0.3) * cell;
  EXPECT_EQ(est.estimate_rtt(0, 1, 3.0), cell);
  EXPECT_EQ(est.stats().entries, 1u);  // still one cell
}

TEST(IDMSEstimator, MatrixIsDirected) {
  IDMSEstimator est({}, 4, 0, 4);
  est.on_observation(obs(0, 1, 1.0, 100.0));
  est.on_observation(obs(1, 0, 1.0, 200.0));
  EXPECT_EQ(est.estimate_rtt(0, 1, 1.0), 100.0);
  EXPECT_EQ(est.estimate_rtt(1, 0, 1.0), 200.0);
  EXPECT_EQ(est.stats().entries, 2u);
}

TEST(IDMSEstimator, StaleCellFallsBackToCoordinates) {
  IDMSEstimator est({.max_age_s = 10.0}, 4, 0, 4);
  const Coordinate a{Vec{30.0, 0.0}};
  const Coordinate b{Vec{0.0, 40.0}};
  est.on_observation(obs(0, 1, 0.0, 120.0, a, b));
  // Fresh: the measured cell answers.
  EXPECT_EQ(est.estimate_rtt(0, 1, 5.0), 120.0);
  // Past the horizon the point measurement is dead; the embedded coordinate
  // backend (fed the same stream) answers instead.
  const auto e = est.estimate_rtt(0, 1, 100.0);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(*e, a.distance_to(b));
  const EstimatorStats s = est.stats();
  EXPECT_EQ(s.direct_hits, 1u);
  EXPECT_EQ(s.fallback_hits, 1u);
  EXPECT_EQ(s.stale_entries, 1u);
}

TEST(IDMSEstimator, MissesWhenCellAndFallbackBothEmpty) {
  IDMSEstimator est({}, 4, 0, 4);
  // No observation at all: nothing measured, no coordinates advertised.
  EXPECT_EQ(est.estimate_rtt(2, 3, 1.0), std::nullopt);
  const EstimatorStats s = est.stats();
  EXPECT_EQ(s.queries, 1u);
  EXPECT_EQ(s.misses, 1u);
}

TEST(IDMSEstimator, OwnsAShardSlice) {
  // Rows for nodes [2, 4) of a 4-node deployment, as a shard would own.
  IDMSEstimator est({}, 4, 2, 2);
  est.on_observation(obs(2, 0, 1.0, 80.0));
  est.on_observation(obs(3, 1, 1.0, 90.0));
  EXPECT_EQ(est.estimate_rtt(2, 0, 1.0), 80.0);
  EXPECT_EQ(est.estimate_rtt(3, 1, 1.0), 90.0);
  EXPECT_EQ(est.stats().entries, 2u);
}

TEST(IDMSEstimator, RejectsBadConfig) {
  EXPECT_THROW(IDMSEstimator({.max_age_s = 0.0}, 4, 0, 4), CheckError);
  EXPECT_THROW(IDMSEstimator({.max_age_s = 1.0, .alpha = 0.0}, 4, 0, 4),
               CheckError);
  EXPECT_THROW(IDMSEstimator({.max_age_s = 1.0, .alpha = 1.5}, 4, 0, 4),
               CheckError);
  EXPECT_THROW(IDMSEstimator({}, 4, 2, 3), CheckError);  // slice past the end
}

// Shrinking the eager slot limit forces the matrix into paged mode; answers
// must not change, and queries for never-measured pairs must not allocate
// pages (the memory footprint stays flat under a miss storm).
TEST(IDMSEstimator, PagedModeMatchesEagerModeAndQueriesDoNotAllocate) {
  const int n = 512;  // 512 * 512 cells: a few dozen matrix pages
  IDMSEstimatorConfig paged_cfg;
  paged_cfg.eager_slot_limit = 1;  // everything beyond one slot is paged
  IDMSEstimator paged(paged_cfg, n, 0, n);
  IDMSEstimator eager({}, n, 0, n);

  // All observers in the first 8 rows: the measured cells concentrate in
  // one corner of the matrix, the regime paging exists for.
  for (int i = 0; i < 400; ++i) {
    const auto src = static_cast<NodeId>(i % 8);
    const auto dst = static_cast<NodeId>((i * 13 + 9) % n);
    if (src == dst) continue;
    const double rtt = 20.0 + static_cast<double>(i % 50);
    paged.on_observation(obs(src, dst, static_cast<double>(i), rtt));
    eager.on_observation(obs(src, dst, static_cast<double>(i), rtt));
  }
  for (NodeId a = 0; a < 16; ++a)
    for (NodeId b = 0; b < n; ++b)
      ASSERT_EQ(paged.estimate_rtt(a, b, 500.0), eager.estimate_rtt(a, b, 500.0))
          << "pair (" << a << ", " << b << ")";
  EXPECT_EQ(paged.stats().entries, eager.stats().entries);

  // Only the touched corner is resident in paged mode; eager mode paid for
  // the whole matrix upfront.
  EXPECT_LT(paged.stats().memory_bytes, eager.stats().memory_bytes);

  // A miss storm across every row must not materialize pages: queries go
  // through try_at, so the footprint stays flat.
  const std::uint64_t before = paged.stats().memory_bytes;
  for (NodeId a = 0; a < n; ++a)
    (void)paged.estimate_rtt(a, (a + 1) % n, 500.0);
  EXPECT_EQ(paged.stats().memory_bytes, before);
}

}  // namespace
}  // namespace nc::est

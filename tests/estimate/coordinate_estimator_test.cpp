#include "estimate/coordinate_estimator.hpp"

#include <gtest/gtest.h>

#include "core/wire.hpp"

namespace nc::est {
namespace {

LatencyObservation obs(NodeId src, NodeId dst, double t_s, double rtt,
                       const Coordinate& src_app, const Coordinate& dst_app) {
  return LatencyObservation{src, dst, t_s, rtt, src_app, dst_app};
}

TEST(CoordinateEstimator, MissesUntilBothEndpointsSeen) {
  CoordinateEstimator est({}, 4);
  EXPECT_EQ(est.estimate_rtt(0, 1, 0.0), std::nullopt);
  // Only the observer's side of the pair has been advertised.
  est.on_observation(obs(0, 1, 1.0, 50.0, Coordinate{Vec{1.0, 0.0}}, {}));
  EXPECT_EQ(est.estimate_rtt(0, 1, 1.0), std::nullopt);
  const EstimatorStats s = est.stats();
  EXPECT_EQ(s.queries, 2u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.direct_hits, 0u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(CoordinateEstimator, AnswerIsExactlyTheCoordinateDistance) {
  CoordinateEstimator est({}, 4);
  const Coordinate a{Vec{3.0, 4.0}};
  const Coordinate b{Vec{0.0, 0.0}};
  est.on_observation(obs(0, 1, 1.0, 50.0, a, b));
  const auto ab = est.estimate_rtt(0, 1, 1.0);
  ASSERT_TRUE(ab.has_value());
  EXPECT_EQ(*ab, a.distance_to(b));  // bit-exact, not approximate
  // distance_to is bit-symmetric, so the reverse query matches too.
  EXPECT_EQ(est.estimate_rtt(1, 0, 1.0), ab);
}

TEST(CoordinateEstimator, LatestAdvertisementWins) {
  CoordinateEstimator est({}, 4);
  est.on_observation(obs(0, 1, 1.0, 50.0, Coordinate{Vec{0.0, 0.0}},
                         Coordinate{Vec{10.0, 0.0}}));
  // Node 1 re-advertises from elsewhere; the cached entry must move.
  est.on_observation(obs(2, 1, 2.0, 50.0, Coordinate{Vec{0.0, 5.0}},
                         Coordinate{Vec{20.0, 0.0}}));
  EXPECT_EQ(est.estimate_rtt(0, 1, 2.0), 20.0);
  EXPECT_EQ(est.stats().entries, 3u);
}

TEST(CoordinateEstimator, StaleEntriesCountedButStillAnswer) {
  CoordinateEstimator est({.max_age_s = 10.0}, 4);
  est.on_observation(obs(0, 1, 0.0, 50.0, Coordinate{Vec{1.0, 0.0}},
                         Coordinate{Vec{2.0, 0.0}}));
  // Far past the horizon: both entries are stale, but a coordinate keeps
  // answering — the deployment has nothing better.
  const auto e = est.estimate_rtt(0, 1, 100.0);
  ASSERT_TRUE(e.has_value());
  const EstimatorStats s = est.stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.stale_entries, 2u);
  EXPECT_EQ(s.direct_hits, 1u);
}

TEST(CoordinateEstimator, TrafficIsOneWireStatePerAdvertisement) {
  CoordinateEstimator est({}, 4);
  const Coordinate c{Vec{1.0, 2.0}};
  for (int i = 0; i < 5; ++i)
    est.on_observation(obs(0, 1, static_cast<double>(i), 50.0, c, c));
  // One uninitialized advertisement: nothing rode on the reply.
  est.on_observation(obs(0, 1, 6.0, 50.0, c, {}));
  EXPECT_EQ(est.stats().traffic_bytes, 5u * encoded_size(c.dim(), c.has_height()));
}

}  // namespace
}  // namespace nc::est

// Robustness under hostile inputs and protocol-path integration.
//
// A deployed coordinate subsystem ingests whatever the network hands it:
// adversarially-timed spikes, peers with garbage state, decade-long runs.
// These tests fuzz the full pipeline and check the invariants that must
// survive: finite coordinates, bounded error estimates, and a wire codec
// that never lets a malformed peer poison the spring computation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/nc_client.hpp"
#include "core/wire.hpp"

namespace nc {
namespace {

// ----------------------------------------------------------------- fuzz --

class PipelineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PipelineFuzz, InvariantsSurviveHostileObservations) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  NCClientConfig cfg;
  cfg.vivaldi.dim = 3;
  cfg.max_tracked_links = 32;  // force constant eviction
  NCClient client(0, cfg);

  for (int i = 0; i < 4000; ++i) {
    const auto remote = static_cast<NodeId>(1 + rng.uniform_int(100));
    // Remote coordinates anywhere from sane to absurd (but finite — the
    // wire codec guards non-finite input; see below).
    Vec pos(3);
    for (int d = 0; d < 3; ++d) pos[d] = rng.normal(0.0, 1.0) * rng.pareto(1.0, 0.8);
    const Coordinate rcoord{pos};
    const double rerr = rng.uniform(0.0, 1.0);
    // RTTs spanning nine orders of magnitude.
    const double rtt = rng.pareto(1e-3, 0.5);
    const auto out = client.observe(remote, rcoord, rerr, std::min(rtt, 1e6),
                                    static_cast<double>(i));

    ASSERT_TRUE(client.system_coordinate().position().all_finite());
    ASSERT_TRUE(client.application_coordinate().position().all_finite());
    ASSERT_GE(client.error_estimate(), 0.0);
    ASSERT_LE(client.error_estimate(), 1.0);
    ASSERT_GE(out.system_displacement_ms, 0.0);
    ASSERT_LE(client.tracked_link_count(), 32u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz, ::testing::Range(1, 7));

TEST(PipelineFuzz, ExtremeButValidConfigStaysFinite) {
  NCClientConfig cfg;
  cfg.vivaldi.dim = 1;       // degenerate dimension
  cfg.vivaldi.cc = 1.0;      // maximum gain
  cfg.vivaldi.ce = 1.0;
  cfg.vivaldi.use_height = true;
  cfg.filter = FilterConfig::none();
  NCClient client(0, cfg);
  Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    const Coordinate remote{Vec{rng.uniform(-1e4, 1e4)}, rng.uniform(0.0, 100.0)};
    client.observe(1, remote, rng.uniform(0.0, 1.0), rng.uniform(1e-3, 3e4),
                   static_cast<double>(i));
    ASSERT_TRUE(client.system_coordinate().position().all_finite());
    ASSERT_GE(client.system_coordinate().height(), cfg.vivaldi.min_height_ms);
  }
}

// ---------------------------------------------------------- wire + client --

TEST(WireIntegration, ObservationsThroughTheCodecConverge) {
  // Full protocol path: each node serializes its advertised state; the peer
  // decodes and validates before observing. float32 truncation on the wire
  // must not prevent convergence.
  NCClientConfig cfg;
  cfg.vivaldi.dim = 3;
  NCClient a(1, cfg);
  NCClient b(2, cfg);
  for (int i = 0; i < 400; ++i) {
    const double t = static_cast<double>(i);
    const auto from_b = decode_state(
        encode_state(b.system_coordinate(), b.error_estimate()));
    ASSERT_TRUE(from_b.has_value());
    a.observe(2, from_b->coordinate, from_b->error_estimate, 80.0, t);
    const auto from_a = decode_state(
        encode_state(a.system_coordinate(), a.error_estimate()));
    ASSERT_TRUE(from_a.has_value());
    b.observe(1, from_a->coordinate, from_a->error_estimate, 80.0, t);
  }
  EXPECT_NEAR(a.system_coordinate().distance_to(b.system_coordinate()), 80.0, 4.0);
}

TEST(WireIntegration, FuzzedBytesNeverDecodeToInvalidState) {
  Rng rng(88);
  int decoded = 0;
  for (int i = 0; i < 20000; ++i) {
    std::vector<std::uint8_t> bytes(rng.uniform_int(40));
    for (auto& byte : bytes) byte = static_cast<std::uint8_t>(rng.uniform_int(256));
    const auto state = decode_state(bytes);
    if (!state.has_value()) continue;
    ++decoded;
    // Anything that decodes must satisfy every invariant observe() assumes.
    ASSERT_TRUE(state->coordinate.initialized());
    ASSERT_TRUE(state->coordinate.position().all_finite());
    ASSERT_GE(state->coordinate.height(), 0.0);
    ASSERT_GE(state->error_estimate, 0.0);
    ASSERT_LE(state->error_estimate, 1.0);
  }
  // Random bytes occasionally parse (version+flags+dim+floats can align);
  // the point is that whatever parses is safe to feed to Vivaldi.
  EXPECT_LT(decoded, 200);
}

TEST(WireIntegration, RoundTripPreservesDistancesWithinFloat32) {
  Rng rng(89);
  for (int i = 0; i < 200; ++i) {
    Vec p(3);
    for (int d = 0; d < 3; ++d) p[d] = rng.uniform(-500.0, 500.0);
    const Coordinate c{p};
    const auto back = decode_state(encode_state(c, 0.5));
    ASSERT_TRUE(back.has_value());
    ASSERT_NEAR(back->coordinate.distance_to(c), 0.0, 1e-3);
  }
}

}  // namespace
}  // namespace nc

// End-to-end assertions of the paper's qualitative claims, at miniature
// scale so the whole suite stays fast. The bench binaries reproduce the
// full-scale figures; these tests pin the *shape* of every headline result
// so regressions are caught by ctest.
#include <gtest/gtest.h>

#include "eval/scenario.hpp"
#include "sim/replay.hpp"

namespace nc::eval {
namespace {

ScenarioSpec base_spec(std::uint64_t seed = 201) {
  ScenarioSpec s;
  s.workload.num_nodes = 48;
  s.workload.duration_s = 1800.0;
  s.workload.seed = seed;
  s.client.heuristic = HeuristicConfig::always();
  return s;
}

double median_err(const ScenarioSpec& s) {
  return run_scenario(s).metrics.median_relative_error();
}

// --- Sec. IV / Fig. 5: the MP filter improves accuracy AND stability. -----

TEST(PaperProperties, MpFilterBeatsRawOnBothMetrics) {
  ScenarioSpec mp = base_spec();
  mp.client.filter = FilterConfig::moving_percentile(4, 25);
  ScenarioSpec raw = base_spec();
  raw.client.filter = FilterConfig::none();

  const auto mp_out = run_scenario(mp);
  const auto raw_out = run_scenario(raw);

  EXPECT_LT(mp_out.metrics.median_relative_error(),
            raw_out.metrics.median_relative_error() * 0.75);
  EXPECT_LT(mp_out.metrics.median_instability_ms_per_s(),
            raw_out.metrics.median_instability_ms_per_s() * 0.6);
  // Fig. 5 bottom: the filter removes the catastrophic instability tail.
  EXPECT_LT(mp_out.metrics.instability().quantile(0.99),
            raw_out.metrics.instability().quantile(0.99) * 0.5);
}

// --- Sec. IV-B / Table I: EWMA smoothing is WORSE than no filter. ---------

TEST(PaperProperties, EwmaWorseThanNoFilterOnAccuracy) {
  ScenarioSpec raw = base_spec();
  raw.client.filter = FilterConfig::none();
  ScenarioSpec ewma = base_spec();
  ewma.client.filter = FilterConfig::ewma(0.20);

  // Outliers are impulses to discard, not trends to track: the EWMA smears
  // them across subsequent samples and loses even to the raw stream (the
  // paper's Table I shows the same ordering, with larger margins on their
  // uncapped PlanetLab extremes).
  EXPECT_GT(median_err(ewma), median_err(raw));
}

TEST(PaperProperties, LowAlphaEwmaStillLosesToMp) {
  ScenarioSpec mp = base_spec();
  ScenarioSpec ewma = base_spec();
  ewma.client.filter = FilterConfig::ewma(0.02);
  EXPECT_GT(median_err(ewma), median_err(mp) * 1.3);
}

// --- Sec. V / Figs. 8-11: windowed heuristics keep accuracy, add stability.

TEST(PaperProperties, EnergyKeepsAccuracyAndCutsInstability) {
  ScenarioSpec raw_mp = base_spec();
  ScenarioSpec energy = base_spec();
  energy.client.heuristic = HeuristicConfig::energy(8.0, 32);

  const auto a = run_scenario(raw_mp);
  const auto b = run_scenario(energy);

  EXPECT_LT(b.metrics.median_instability_ms_per_s(),
            a.metrics.median_instability_ms_per_s() / 5.0);
  EXPECT_LT(b.metrics.median_relative_error(),
            a.metrics.median_relative_error() * 1.5 + 0.03);
  EXPECT_LT(b.metrics.total_app_updates(), a.metrics.total_app_updates() / 10);
}

TEST(PaperProperties, RelativeKeepsAccuracyAndCutsInstability) {
  ScenarioSpec raw_mp = base_spec();
  ScenarioSpec rel = base_spec();
  rel.client.heuristic = HeuristicConfig::relative(0.3, 32);

  const auto a = run_scenario(raw_mp);
  const auto b = run_scenario(rel);

  EXPECT_LT(b.metrics.median_instability_ms_per_s(),
            a.metrics.median_instability_ms_per_s() / 3.0);
  EXPECT_LT(b.metrics.median_relative_error(),
            a.metrics.median_relative_error() * 1.5 + 0.03);
}

// --- Fig. 8: raising the update threshold monotonically adds stability. ---

TEST(PaperProperties, HigherEnergyThresholdMoreStable) {
  ScenarioSpec lo = base_spec();
  lo.client.heuristic = HeuristicConfig::energy(1.0, 32);
  ScenarioSpec hi = base_spec();
  hi.client.heuristic = HeuristicConfig::energy(64.0, 32);
  const auto out_lo = run_scenario(lo);
  const auto out_hi = run_scenario(hi);
  EXPECT_LE(out_hi.metrics.total_app_updates(), out_lo.metrics.total_app_updates());
  EXPECT_LE(out_hi.metrics.median_instability_ms_per_s(),
            out_lo.metrics.median_instability_ms_per_s() + 1e-9);
}

// --- Fig. 10: windowless heuristics trade accuracy for stability. ---------

TEST(PaperProperties, WindowlessLargeTauLosesAccuracy) {
  ScenarioSpec small_tau = base_spec();
  small_tau.client.heuristic = HeuristicConfig::application(2.0);
  ScenarioSpec large_tau = base_spec();
  large_tau.client.heuristic = HeuristicConfig::application(256.0);

  const auto a = run_scenario(small_tau);
  const auto b = run_scenario(large_tau);
  // A huge tau rarely updates: stable but inaccurate.
  EXPECT_LT(b.metrics.median_instability_ms_per_s(),
            a.metrics.median_instability_ms_per_s());
  EXPECT_GT(b.metrics.median_relative_error(),
            a.metrics.median_relative_error() * 1.5);
}

// --- Sec. VI: warm-up delay absorbs first-sample outliers. -----------------

TEST(PaperProperties, MinSamplesReducesEarlyInstability) {
  // Early in a run, links whose FIRST observation is an extreme outlier
  // distort the space (Sec. VI). Waiting for the second sample removes the
  // worst of it. Measure instability over the whole run including start-up.
  ScenarioSpec eager = base_spec(207);
  eager.measurement.measure_start_s = 0.0;
  eager.client.filter = FilterConfig::moving_percentile(4, 25, 1);
  ScenarioSpec delayed = base_spec(207);
  delayed.measurement.measure_start_s = 0.0;
  delayed.client.filter = FilterConfig::moving_percentile(4, 25, 2);

  const auto a = run_scenario(eager);
  const auto b = run_scenario(delayed);
  EXPECT_LT(b.metrics.instability().quantile(0.99),
            a.metrics.instability().quantile(0.99));
}

// --- Sec. VII-B: de Launois damping cannot adapt to route changes. --------

TEST(PaperProperties, DampingFailsToAdaptAfterRouteChange) {
  // Shift every link of node 0 by 3x halfway through; measure only after.
  const auto with_damping = [](double damping) {
    ScenarioSpec s = base_spec(209);
    s.workload.duration_s = 2400.0;
    s.measurement.measure_start_s = 2000.0;
    s.client.vivaldi.delaunois_damping = damping;
    s.measurement.collect_oracle = true;
    for (NodeId j = 1; j < s.workload.num_nodes; ++j)
      s.workload.route_changes.push_back({0, j, 3.0, 1200.0});
    return run_scenario(s);
  };
  const auto adaptive = with_damping(0.0);
  const auto damped = with_damping(10.0);
  // Ground-truth error of the shifted node: the adaptive system re-embeds
  // node 0; the damped one is frozen near node 0's stale position, so the
  // worst-node oracle error stays high.
  const auto adaptive_cdf = adaptive.metrics.oracle_per_node_median_error();
  const auto damped_cdf = damped.metrics.oracle_per_node_median_error();
  EXPECT_LT(adaptive_cdf.max(), damped_cdf.max());
}

// --- Fig. 6: confidence building on a low-latency cluster. ----------------

TEST(PaperProperties, ConfidenceBuildingHelpsOnCluster) {
  const auto cluster_confidence = [](double margin) {
    ScenarioSpec s;
    s.workload.num_nodes = 3;
    s.workload.duration_s = 600.0;
    s.workload.seed = 211;
    lat::TopologyConfig topo;
    topo.num_nodes = 3;
    topo.regions = {{"cluster", Vec{0.0, 0.0, 0.0}, 0.15, 1.0}};
    topo.height_log_mu = -1.5;  // tiny access heights
    topo.height_log_sigma = 0.2;
    topo.height_min_ms = 0.1;
    topo.height_max_ms = 0.3;
    s.workload.topology = topo;
    lat::LinkModelConfig lm;
    lm.body_sigma = 0.35;          // jitter comparable to the latency itself
    lm.base_spike_prob = 0.05;     // 5% of observations above 1.2 ms
    lm.spike_xm_min_ms = 0.5;
    lm.spike_xm_max_ms = 1.5;
    lm.spike_alpha = 1.5;
    lm.loss_prob = 0.0;
    s.workload.link_model = lm;
    s.workload.availability = lat::AvailabilityConfig{.enabled = false};
    s.client.filter = FilterConfig::none();
    s.client.heuristic = HeuristicConfig::always();
    s.client.vivaldi.confidence_margin_ms = margin;

    // Run manually to read final confidences.
    lat::TraceGenerator gen(resolve_trace_config(s.workload));
    sim::ReplayConfig rc;
    rc.client = s.client;
    rc.duration_s = s.workload.duration_s;
    rc.measure_start_s = 300.0;
    sim::ReplayDriver driver(rc, gen.num_nodes());
    driver.run(gen);
    double sum = 0.0;
    for (NodeId id = 0; id < 3; ++id) sum += driver.client(id).confidence();
    return sum / 3.0;
  };
  const double without = cluster_confidence(0.0);
  const double with_margin = cluster_confidence(3.0);
  EXPECT_GT(with_margin, 0.95);
  EXPECT_LT(without, 0.90);
  EXPECT_GT(with_margin, without + 0.05);
}

// --- Determinism: a full experiment is a pure function of its spec. -------

TEST(PaperProperties, ExperimentsAreDeterministic) {
  ScenarioSpec s = base_spec(213);
  s.workload.num_nodes = 24;
  s.workload.duration_s = 600.0;
  s.client.heuristic = HeuristicConfig::energy(8.0, 32);
  const auto a = run_scenario(s);
  const auto b = run_scenario(s);
  EXPECT_EQ(a.records, b.records);
  EXPECT_EQ(a.metrics.median_relative_error(), b.metrics.median_relative_error());
  EXPECT_EQ(a.metrics.total_app_updates(), b.metrics.total_app_updates());
}

}  // namespace
}  // namespace nc::eval

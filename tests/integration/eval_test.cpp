#include <gtest/gtest.h>

#include <sstream>

#include "eval/report.hpp"
#include "eval/scenario.hpp"

namespace nc::eval {
namespace {

// ----------------------------------------------------------------- report --

TEST(Report, FmtPrecision) {
  EXPECT_EQ(fmt(3.14159, 3), "3.14");
  EXPECT_EQ(fmt(1000.0, 4), "1000");
  EXPECT_EQ(fmt(0.000123, 2), "0.00012");
}

TEST(Report, TextTableAlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "2.5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Report, TextTableRejectsRaggedRows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Report, CdfTablePrintsGrid) {
  stats::Ecdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(static_cast<double>(i));
  std::ostringstream os;
  print_cdf_table(os, "test cdf", {{"col", &cdf}});
  const std::string out = os.str();
  EXPECT_NE(out.find("test cdf"), std::string::npos);
  EXPECT_NE(out.find("50%"), std::string::npos);
  EXPECT_NE(out.find("95%"), std::string::npos);
}

TEST(Report, CdfTableRejectsEmptyCdf) {
  stats::Ecdf empty;
  std::ostringstream os;
  EXPECT_THROW(print_cdf_table(os, "x", {{"col", &empty}}), CheckError);
}

TEST(Report, HistogramPrinting) {
  stats::Histogram h(fig2_bucket_edges());
  h.add(50.0);
  h.add(150.0);
  h.add(5000.0);  // overflow bucket (>= 3000)
  std::ostringstream os;
  print_histogram(os, "latencies", h);
  const std::string out = os.str();
  EXPECT_NE(out.find("0-99"), std::string::npos);
  EXPECT_NE(out.find("1000-1999"), std::string::npos);
  EXPECT_NE(out.find(">=3000"), std::string::npos);
}

TEST(Report, PaperBucketEdges) {
  const auto fig2 = fig2_bucket_edges();
  EXPECT_EQ(fig2.front(), 0.0);
  EXPECT_EQ(fig2.back(), 3000.0);
  EXPECT_EQ(fig2.size(), 13u);  // 0..1000 by 100 (11 edges) + 2000 + 3000
  const auto fig3 = fig3_bucket_edges();
  EXPECT_EQ(fig3.back(), 2200.0);
}

TEST(Report, BoxplotRowContainsAllFields) {
  const auto b = stats::boxplot({1, 2, 3, 4, 100});
  const std::string row = boxplot_row(b);
  EXPECT_NE(row.find("med="), std::string::npos);
  EXPECT_NE(row.find("outliers=1"), std::string::npos);
}

// ------------------------------------------------------------- experiment --

TEST(Experiment, ResolveTraceConfigInheritsWorkloadFields) {
  WorkloadSpec w;
  w.num_nodes = 33;
  w.duration_s = 111.0;
  w.ping_interval_s = 2.0;
  w.seed = 99;
  const auto cfg = resolve_trace_config(w);
  EXPECT_EQ(cfg.topology.num_nodes, 33);
  EXPECT_EQ(cfg.duration_s, 111.0);
  EXPECT_EQ(cfg.ping_interval_s, 2.0);
  EXPECT_EQ(cfg.seed, 99u);
  EXPECT_EQ(cfg.topology.seed, 99u);  // topology seed follows the workload seed
}

TEST(Experiment, ExplicitTopologySeedPreserved) {
  WorkloadSpec w;
  lat::TopologyConfig topo;
  topo.seed = 1234;
  w.topology = topo;
  const auto cfg = resolve_trace_config(w);
  EXPECT_EQ(cfg.topology.seed, 1234u);
}

TEST(Experiment, ReplaySmokeRun) {
  ScenarioSpec s;
  s.workload.num_nodes = 10;
  s.workload.duration_s = 120.0;
  s.workload.seed = 5;
  const auto out = run_scenario(s);
  EXPECT_GT(out.records, 500u);
  EXPECT_GE(out.attempts, out.records);
  EXPECT_GT(out.metrics.observation_count(), 0u);
}

TEST(Experiment, OnlineSmokeRun) {
  ScenarioSpec s;
  s.mode = SimMode::kOnline;
  s.workload.num_nodes = 10;
  s.workload.duration_s = 120.0;
  s.workload.ping_interval_s = 2.0;
  s.workload.seed = 5;
  const auto out = run_scenario(s);
  EXPECT_GT(out.pings_sent, 300u);
  EXPECT_GT(out.metrics.observation_count(), 0u);
}

TEST(Experiment, RouteChangeEventsReachTheNetwork) {
  ScenarioSpec s;
  s.workload.num_nodes = 6;
  s.workload.duration_s = 200.0;
  s.workload.seed = 7;
  s.measurement.collect_oracle = true;
  s.measurement.measure_start_s = 150.0;
  s.workload.route_changes.push_back({0, 1, 5.0, 100.0});
  const auto out = run_scenario(s);
  EXPECT_GT(out.records, 0u);  // ran to completion with the injection
}

}  // namespace
}  // namespace nc::eval

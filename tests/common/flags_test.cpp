#include "common/flags.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace nc {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EmptyHasDefaults) {
  const Flags f = make({});
  EXPECT_EQ(f.get_int("nodes", 42), 42);
  EXPECT_EQ(f.get_double("x", 1.5), 1.5);
  EXPECT_EQ(f.get_string("name", "d"), "d");
  EXPECT_FALSE(f.get_bool("full", false));
  EXPECT_FALSE(f.has("nodes"));
  EXPECT_EQ(f.program(), "prog");
}

TEST(Flags, EqualsForm) {
  const Flags f = make({"--nodes=10", "--rate=0.5", "--name=abc"});
  EXPECT_EQ(f.get_int("nodes", 0), 10);
  EXPECT_EQ(f.get_double("rate", 0.0), 0.5);
  EXPECT_EQ(f.get_string("name", ""), "abc");
}

TEST(Flags, SpaceForm) {
  const Flags f = make({"--nodes", "10", "--name", "abc"});
  EXPECT_EQ(f.get_int("nodes", 0), 10);
  EXPECT_EQ(f.get_string("name", ""), "abc");
}

TEST(Flags, BareSwitchIsTrue) {
  const Flags f = make({"--full"});
  EXPECT_TRUE(f.get_bool("full", false));
  EXPECT_TRUE(f.has("full"));
}

TEST(Flags, ExplicitBooleans) {
  const Flags f = make({"--a=true", "--b=false", "--c=1", "--d=0"});
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_FALSE(f.get_bool("b", true));
  EXPECT_TRUE(f.get_bool("c", false));
  EXPECT_FALSE(f.get_bool("d", true));
}

TEST(Flags, DoubleList) {
  const Flags f = make({"--taus=1,2,4.5,8"});
  const auto xs = f.get_double_list("taus", {});
  ASSERT_EQ(xs.size(), 4u);
  EXPECT_EQ(xs[0], 1.0);
  EXPECT_EQ(xs[3], 8.0);
  const auto dflt = f.get_double_list("other", {9.0});
  ASSERT_EQ(dflt.size(), 1u);
  EXPECT_EQ(dflt[0], 9.0);
}

TEST(Flags, NegativeNumberAsValue) {
  const Flags f = make({"--offset=-3"});
  EXPECT_EQ(f.get_int("offset", 0), -3);
}

TEST(Flags, PositionalArgumentRejected) {
  EXPECT_THROW(make({"positional"}), CheckError);
}

TEST(Flags, MalformedNumbersRejected) {
  const Flags f = make({"--x=abc"});
  EXPECT_THROW((void)f.get_int("x", 0), CheckError);
  EXPECT_THROW((void)f.get_double("x", 0.0), CheckError);
  EXPECT_THROW((void)f.get_bool("x", false), CheckError);
}

TEST(Flags, LastValueWins) {
  const Flags f = make({"--n=1", "--n=2"});
  EXPECT_EQ(f.get_int("n", 0), 2);
}

TEST(Flags, UnknownFlagsListsOnlyUnrecognizedNames) {
  const Flags f = make({"--nodes=10", "--typo=1", "--zz"});
  const auto unknown = f.unknown_flags({"nodes", "hours"});
  ASSERT_EQ(unknown.size(), 2u);
  EXPECT_EQ(unknown[0], "typo");  // sorted
  EXPECT_EQ(unknown[1], "zz");
  EXPECT_TRUE(f.unknown_flags({"nodes", "typo", "zz"}).empty());
}

TEST(Flags, CheckKnownThrowsNamingTheFlag) {
  const Flags f = make({"--nodes=10", "--typo=1"});
  EXPECT_NO_THROW(f.check_known({"nodes", "typo"}));
  try {
    f.check_known({"nodes"});
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("--typo"), std::string::npos);
  }
}

TEST(Flags, UsageListsAllowedFlags) {
  const std::string u = Flags::usage("prog", {"nodes", "hours"});
  EXPECT_NE(u.find("usage: prog"), std::string::npos);
  EXPECT_NE(u.find("--nodes"), std::string::npos);
  EXPECT_NE(u.find("--hours"), std::string::npos);
}

using FlagsDeathTest = ::testing::Test;

TEST(FlagsDeathTest, ParseOrExitRejectsUnknownFlagWithUsage) {
  const char* argv[] = {"prog", "--typo=1"};
  EXPECT_EXIT((void)Flags::parse_or_exit(2, argv, {"nodes"}),
              ::testing::ExitedWithCode(2), "usage: prog");
}

TEST(FlagsDeathTest, ParseOrExitRejectsPositionalWithUsage) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_EXIT((void)Flags::parse_or_exit(2, argv, {"nodes"}),
              ::testing::ExitedWithCode(2), "usage: prog");
}

TEST(FlagsDeathTest, ParseOrExitAcceptsKnownFlags) {
  const char* argv[] = {"prog", "--nodes=12"};
  const Flags f = Flags::parse_or_exit(2, argv, {"nodes"});
  EXPECT_EQ(f.get_int("nodes", 0), 12);
}

}  // namespace
}  // namespace nc

#include "common/vec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace nc {
namespace {

TEST(Vec, DefaultIsEmpty) {
  Vec v;
  EXPECT_EQ(v.dim(), 0);
  EXPECT_TRUE(v.empty());
}

TEST(Vec, ZeroConstruction) {
  const Vec v = Vec::zero(3);
  EXPECT_EQ(v.dim(), 3);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(v[i], 0.0);
}

TEST(Vec, InitializerList) {
  const Vec v{1.0, -2.0, 3.5};
  EXPECT_EQ(v.dim(), 3);
  EXPECT_EQ(v[0], 1.0);
  EXPECT_EQ(v[1], -2.0);
  EXPECT_EQ(v[2], 3.5);
}

TEST(Vec, DimensionOutOfRangeThrows) {
  EXPECT_THROW(Vec(kMaxDim + 1), CheckError);
  EXPECT_THROW(Vec(-1), CheckError);
}

TEST(Vec, MaxDimAccepted) {
  const Vec v(kMaxDim);
  EXPECT_EQ(v.dim(), kMaxDim);
}

TEST(Vec, AdditionSubtraction) {
  const Vec a{1.0, 2.0};
  const Vec b{0.5, -1.0};
  const Vec sum = a + b;
  EXPECT_EQ(sum[0], 1.5);
  EXPECT_EQ(sum[1], 1.0);
  const Vec diff = a - b;
  EXPECT_EQ(diff[0], 0.5);
  EXPECT_EQ(diff[1], 3.0);
}

TEST(Vec, ScalarOps) {
  const Vec a{2.0, -4.0};
  EXPECT_EQ((a * 0.5)[0], 1.0);
  EXPECT_EQ((0.5 * a)[1], -2.0);
  EXPECT_EQ((a / 2.0)[1], -2.0);
  EXPECT_EQ((-a)[0], -2.0);
}

TEST(Vec, DivisionByZeroThrows) {
  Vec a{1.0};
  EXPECT_THROW(a /= 0.0, CheckError);
}

TEST(Vec, MixedDimensionThrows) {
  const Vec a{1.0, 2.0};
  const Vec b{1.0, 2.0, 3.0};
  EXPECT_THROW((void)(a + b), CheckError);
  EXPECT_THROW((void)a.dot(b), CheckError);
  EXPECT_THROW((void)a.distance_to(b), CheckError);
}

TEST(Vec, DotAndNorm) {
  const Vec a{3.0, 4.0};
  EXPECT_EQ(a.dot(a), 25.0);
  EXPECT_EQ(a.norm_squared(), 25.0);
  EXPECT_EQ(a.norm(), 5.0);
}

TEST(Vec, Distance) {
  const Vec a{0.0, 0.0};
  const Vec b{3.0, 4.0};
  EXPECT_EQ(a.distance_to(b), 5.0);
  EXPECT_EQ(b.distance_to(a), 5.0);
  EXPECT_EQ(a.distance_to(a), 0.0);
}

TEST(Vec, Unit) {
  const Vec a{3.0, 4.0};
  const Vec u = a.unit();
  EXPECT_DOUBLE_EQ(u.norm(), 1.0);
  EXPECT_DOUBLE_EQ(u[0], 0.6);
  EXPECT_DOUBLE_EQ(u[1], 0.8);
}

TEST(Vec, UnitOfZeroIsZero) {
  const Vec z = Vec::zero(3);
  EXPECT_EQ(z.unit(), z);
}

TEST(Vec, Equality) {
  EXPECT_EQ((Vec{1.0, 2.0}), (Vec{1.0, 2.0}));
  EXPECT_FALSE((Vec{1.0, 2.0}) == (Vec{1.0, 2.1}));
  EXPECT_FALSE((Vec{1.0, 2.0}) == (Vec{1.0, 2.0, 0.0}));  // dims differ
}

TEST(Vec, AllFinite) {
  Vec a{1.0, 2.0};
  EXPECT_TRUE(a.all_finite());
  a[0] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(a.all_finite());
  a[0] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(a.all_finite());
}

TEST(Vec, StreamOutput) {
  std::ostringstream os;
  os << Vec{1.5, -2.0};
  EXPECT_EQ(os.str(), "(1.5, -2)");
}

TEST(Vec, CompoundAssignment) {
  Vec a{1.0, 1.0};
  a += Vec{1.0, 2.0};
  a -= Vec{0.5, 0.5};
  a *= 2.0;
  EXPECT_EQ(a[0], 3.0);
  EXPECT_EQ(a[1], 5.0);
}

}  // namespace
}  // namespace nc

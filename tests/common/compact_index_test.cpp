#include "common/compact_index.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"

namespace nc {
namespace {

TEST(CompactSlotIndex, EmptyFindAndErase) {
  CompactSlotIndex idx;
  EXPECT_TRUE(idx.empty());
  EXPECT_EQ(idx.capacity(), 0u);
  EXPECT_EQ(idx.memory_bytes(), 0u);
  EXPECT_FALSE(idx.find(0).has_value());
  EXPECT_FALSE(idx.find(12345).has_value());
  EXPECT_FALSE(idx.erase(7));
}

TEST(CompactSlotIndex, InsertFindOverwriteErase) {
  CompactSlotIndex idx;
  idx.insert(3, 10);
  idx.insert(5, 20);
  EXPECT_EQ(idx.size(), 2u);
  ASSERT_TRUE(idx.find(3).has_value());
  EXPECT_EQ(*idx.find(3), 10u);
  EXPECT_EQ(*idx.find(5), 20u);
  EXPECT_FALSE(idx.find(4).has_value());

  idx.insert(3, 99);  // overwrite does not grow the table
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_EQ(*idx.find(3), 99u);

  EXPECT_TRUE(idx.erase(3));
  EXPECT_FALSE(idx.erase(3));
  EXPECT_FALSE(idx.find(3).has_value());
  EXPECT_EQ(*idx.find(5), 20u);
  EXPECT_EQ(idx.size(), 1u);
}

TEST(CompactSlotIndex, SparseHugeKeysCostNothingExtra) {
  // The whole point vs a dense array: key magnitude never shows in memory.
  CompactSlotIndex idx;
  idx.insert(0, 1);
  idx.insert(1u << 30, 2);
  idx.insert(0xFFFFFFFEu, 3);  // largest legal key
  EXPECT_EQ(*idx.find(0), 1u);
  EXPECT_EQ(*idx.find(1u << 30), 2u);
  EXPECT_EQ(*idx.find(0xFFFFFFFEu), 3u);
  EXPECT_LE(idx.memory_bytes(), 16u * sizeof(std::uint64_t));
}

TEST(CompactSlotIndex, GrowthRehashesEveryEntry) {
  CompactSlotIndex idx;
  for (std::uint32_t k = 0; k < 1000; ++k) idx.insert(k * 7 + 1, k);
  EXPECT_EQ(idx.size(), 1000u);
  for (std::uint32_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(idx.find(k * 7 + 1).has_value()) << k;
    EXPECT_EQ(*idx.find(k * 7 + 1), k);
  }
  // Power-of-two capacity at <= 70% load.
  EXPECT_GE(idx.capacity() * 7, idx.size() * 10);
}

TEST(CompactSlotIndex, BackwardShiftPreservesCollidingChains) {
  // Keys engineered to share probe chains: consecutive ids hash far apart
  // under the multiplicative hash, so force collisions by volume instead —
  // fill half the table, then erase every other key and verify the rest.
  CompactSlotIndex idx;
  for (std::uint32_t k = 0; k < 512; ++k) idx.insert(k, k + 1);
  for (std::uint32_t k = 0; k < 512; k += 2) EXPECT_TRUE(idx.erase(k));
  for (std::uint32_t k = 0; k < 512; ++k) {
    if (k % 2 == 0) {
      EXPECT_FALSE(idx.find(k).has_value()) << k;
    } else {
      ASSERT_TRUE(idx.find(k).has_value()) << k;
      EXPECT_EQ(*idx.find(k), k + 1);
    }
  }
}

TEST(CompactSlotIndex, RandomizedAgainstUnorderedMapReference) {
  CompactSlotIndex idx;
  std::unordered_map<std::uint32_t, std::uint32_t> ref;
  Rng rng(0xC0FFEE);
  for (int step = 0; step < 200000; ++step) {
    const auto key = static_cast<std::uint32_t>(rng.next_u64() % 4096);
    const auto op = rng.next_u64() % 3;
    if (op == 0) {
      const auto value = static_cast<std::uint32_t>(rng.next_u64());
      idx.insert(key, value);
      ref[key] = value;
    } else if (op == 1) {
      EXPECT_EQ(idx.erase(key), ref.erase(key) > 0) << "step " << step;
    } else {
      const auto got = idx.find(key);
      const auto it = ref.find(key);
      ASSERT_EQ(got.has_value(), it != ref.end()) << "step " << step;
      if (got.has_value()) {
        EXPECT_EQ(*got, it->second) << "step " << step;
      }
    }
    ASSERT_EQ(idx.size(), ref.size()) << "step " << step;
  }
}

TEST(CompactSlotIndex, ChurnNeverGrowsPastTheLiveBound) {
  // The eviction pattern NCClient drives: bounded live set, unbounded key
  // stream. Capacity must settle at O(bound), independent of total churn.
  CompactSlotIndex idx;
  std::vector<std::uint32_t> live;
  constexpr std::uint32_t kBound = 64;
  for (std::uint32_t k = 0; k < 100000; ++k) {
    if (live.size() >= kBound) {
      // Evict the oldest (FIFO), like the clock hand unhooks a victim.
      EXPECT_TRUE(idx.erase(live.front()));
      live.erase(live.begin());
    }
    idx.insert(k, k);
    live.push_back(k);
  }
  EXPECT_EQ(idx.size(), kBound);
  EXPECT_LE(idx.capacity(), 128u);  // first power of two >= 64 * 10/7
  for (const std::uint32_t k : live) EXPECT_TRUE(idx.find(k).has_value());
}

}  // namespace
}  // namespace nc

#include "common/paged_store.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace nc {
namespace {

struct Slot {
  std::uint64_t value = 0;
  bool touched = false;
};

TEST(PagedStore, ModeSelectionFollowsTheEagerLimit) {
  PagedStore<Slot> eager(1000, /*eager_slot_limit=*/1000);
  EXPECT_FALSE(eager.paged());
  PagedStore<Slot> paged(1001, /*eager_slot_limit=*/1000);
  EXPECT_TRUE(paged.paged());
  // Default limit keeps the bench tier flat: a 4k-node shard array at W=1.
  PagedStore<Slot> bench(std::size_t{4096} * 4096);
  EXPECT_FALSE(bench.paged());
}

// The satellite's core contract: the two modes are observationally
// identical — the same writes through the same logical indices read back
// identically, including never-written slots (value-initialized in both).
TEST(PagedStore, IndexEquivalenceBetweenEagerAndPagedModes) {
  const std::size_t slots = 10 * PagedStore<Slot>::kPageSlots + 37;
  PagedStore<Slot> eager(slots, /*eager_slot_limit=*/slots);
  PagedStore<Slot> paged(slots, /*eager_slot_limit=*/0);
  ASSERT_FALSE(eager.paged());
  ASSERT_TRUE(paged.paged());

  // A scatter of indices spanning page boundaries, first/last slots and a
  // deterministic pseudo-random walk.
  std::vector<std::size_t> indices = {0, 1, slots - 1,
                                      PagedStore<Slot>::kPageSlots - 1,
                                      PagedStore<Slot>::kPageSlots,
                                      3 * PagedStore<Slot>::kPageSlots + 11};
  std::uint64_t x = 12345;
  for (int i = 0; i < 200; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    indices.push_back(static_cast<std::size_t>(x % slots));
  }

  for (const std::size_t i : indices) {
    eager.at(i).value += i + 1;
    eager.at(i).touched = true;
    paged.at(i).value += i + 1;
    paged.at(i).touched = true;
  }
  for (const std::size_t i : indices) {
    EXPECT_EQ(eager.at(i).value, paged.at(i).value) << i;
    EXPECT_TRUE(paged.at(i).touched) << i;
  }
  // Untouched slots read value-initialized in both modes.
  const std::size_t untouched = 7 * PagedStore<Slot>::kPageSlots + 5;
  EXPECT_EQ(eager.at(untouched).value, 0u);
  EXPECT_EQ(paged.at(untouched).value, 0u);
  EXPECT_FALSE(paged.at(untouched).touched);
}

TEST(PagedStore, PagesAllocateLazilyOnFirstTouch) {
  const std::size_t slots = 100 * PagedStore<Slot>::kPageSlots;
  PagedStore<Slot> store(slots, /*eager_slot_limit=*/0);
  EXPECT_EQ(store.allocated_pages(), 0u);
  EXPECT_EQ(store.page_count(), 100u);

  store.at(0).value = 1;
  EXPECT_EQ(store.allocated_pages(), 1u);
  // Same page: no new allocation.
  store.at(PagedStore<Slot>::kPageSlots - 1).value = 2;
  EXPECT_EQ(store.allocated_pages(), 1u);
  // A far slot materializes exactly one more page.
  store.at(42 * PagedStore<Slot>::kPageSlots + 7).value = 3;
  EXPECT_EQ(store.allocated_pages(), 2u);
}

// Past the DEFAULT 32M-slot eager limit — the regime every large-n run
// (10k+ nodes) actually exercises. One-byte slots keep the test cheap: the
// page table is ~4k pointers, and only touched pages cost real memory.
TEST(PagedStore, DefaultLimitPagesPastThirtyTwoMillionSlots) {
  const std::size_t slots = kPagedStoreDefaultEagerSlotLimit + 3 * PagedStore<std::uint8_t>::kPageSlots + 17;
  PagedStore<std::uint8_t> store(slots);  // default limit: must go paged
  ASSERT_TRUE(store.paged());
  EXPECT_EQ(store.size(), slots);
  EXPECT_EQ(store.page_count(),
            (slots + PagedStore<std::uint8_t>::kPageSlots - 1) /
                PagedStore<std::uint8_t>::kPageSlots);
  EXPECT_EQ(store.allocated_pages(), 0u);

  // Block-boundary indexing around the 32M mark: the last slot of one page
  // and the first of the next land on different pages and never alias.
  const std::size_t boundary =
      (kPagedStoreDefaultEagerSlotLimit / PagedStore<std::uint8_t>::kPageSlots) *
      PagedStore<std::uint8_t>::kPageSlots;
  store.at(boundary - 1) = 11;
  store.at(boundary) = 22;
  EXPECT_EQ(store.allocated_pages(), 2u);
  EXPECT_EQ(store.at(boundary - 1), 11);
  EXPECT_EQ(store.at(boundary), 22);

  // Lazy materialization count: the final partial page and the very first
  // page cost one page each; nothing in between appears.
  store.at(slots - 1) = 33;
  store.at(0) = 44;
  EXPECT_EQ(store.allocated_pages(), 4u);
  EXPECT_EQ(store.at(slots - 1), 33);
  // Untouched far slot still reads value-initialized (and try_at sees the
  // page as absent without materializing it).
  EXPECT_EQ(store.try_at(kPagedStoreDefaultEagerSlotLimit / 2), nullptr);
  EXPECT_EQ(store.at(kPagedStoreDefaultEagerSlotLimit / 2), 0);
  EXPECT_EQ(store.allocated_pages(), 5u);
  // Memory scales with the 5 touched pages, not the 33.6M logical slots.
  EXPECT_LT(store.memory_bytes(),
            6 * PagedStore<std::uint8_t>::kPageSlots +
                (store.page_count() + 8) * sizeof(void*));
}

TEST(PagedStore, EmptyAndEagerIntrospection) {
  PagedStore<Slot> empty;
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.allocated_pages(), 0u);
  PagedStore<Slot> eager(10);
  EXPECT_EQ(eager.size(), 10u);
  EXPECT_EQ(eager.allocated_pages(), 1u);
}

}  // namespace
}  // namespace nc

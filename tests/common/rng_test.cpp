#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace nc {
namespace {

TEST(SplitMix, KnownValuesAreStable) {
  // Pin the seed-derivation hash so traces stay reproducible across releases.
  EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(1), 0x910a2dec89025cc1ULL);
}

TEST(SplitMix, HashCombineMixesOrder) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_EQ(hash_combine(1, 2), hash_combine(1, 2));
}

TEST(Rng, DeterministicBySeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(42);
  Rng b(43);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, DerivedStreamsAreIndependent) {
  Rng a = Rng::derived(7, 1);
  Rng b = Rng::derived(7, 2);
  Rng a2 = Rng::derived(7, 1);
  EXPECT_NE(a.next_u64(), b.next_u64());
  Rng a3 = Rng::derived(7, 1);
  EXPECT_EQ(a2.next_u64(), a3.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(1);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng r(2);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(5.0, 9.0);
    ASSERT_GE(u, 5.0);
    ASSERT_LT(u, 9.0);
  }
}

TEST(Rng, UniformIntBoundsAndCoverage) {
  Rng r(3);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) {
    const auto k = r.uniform_int(7);
    ASSERT_LT(k, 7u);
    ++counts[static_cast<std::size_t>(k)];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 400);  // ~4 sigma
}

TEST(Rng, UniformIntOne) {
  Rng r(4);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(1), 0u);
}

TEST(Rng, BernoulliRate) {
  Rng r(5);
  int hits = 0;
  for (int i = 0; i < 100000; ++i)
    if (r.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng r(6);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalShifted) {
  Rng r(7);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, LognormalMedian) {
  Rng r(8);
  std::vector<double> xs(20001);
  for (auto& x : xs) x = r.lognormal(1.0, 0.5);
  std::nth_element(xs.begin(), xs.begin() + 10000, xs.end());
  EXPECT_NEAR(xs[10000], std::exp(1.0), 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng r(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(0.25);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, ParetoTailFraction) {
  Rng r(10);
  const double xm = 2.0, alpha = 1.5;
  int above = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = r.pareto(xm, alpha);
    ASSERT_GE(x, xm);
    if (x > 8.0) ++above;
  }
  // P(X > 8) = (2/8)^1.5 = 0.125
  EXPECT_NEAR(above / static_cast<double>(n), 0.125, 0.01);
}

TEST(Rng, UnitVectorHasUnitNorm) {
  Rng r(11);
  for (int dim = 1; dim <= kMaxDim; ++dim) {
    const Vec v = r.unit_vector(dim);
    EXPECT_EQ(v.dim(), dim);
    EXPECT_NEAR(v.norm(), 1.0, 1e-12);
  }
}

TEST(Rng, UnitVectorDirectionsCoverHemispheres) {
  Rng r(12);
  int positive = 0;
  for (int i = 0; i < 2000; ++i)
    if (r.unit_vector(3)[0] > 0.0) ++positive;
  EXPECT_NEAR(positive, 1000, 120);
}

TEST(Rng, ReseedRestartsStream) {
  Rng r(13);
  const auto a = r.next_u64();
  r.next_u64();
  r.reseed(13);
  EXPECT_EQ(r.next_u64(), a);
}

}  // namespace
}  // namespace nc

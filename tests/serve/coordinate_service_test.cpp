// CoordinateService (serve/coordinate_service.hpp) over a hand-fed
// publisher: nearest-k against brute force, distance through the estimator
// seam, centroid, the down-node filter, and version tracking.
#include "serve/coordinate_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "common/vec.hpp"
#include "estimate/snapshot.hpp"

namespace nc::serve {
namespace {

Coordinate at(double x, double y) { return Coordinate(Vec({x, y})); }

// Ten nodes on a line at x = 0, 10, 20, ...; node 7 down, node 9 unplaced.
void publish_line(est::SnapshotPublisher& pub, double t) {
  est::EpochSnapshot& snap = pub.staging(10);
  for (int i = 0; i < 10; ++i) {
    snap.nodes[static_cast<std::size_t>(i)] = {at(10.0 * i, 0.0), 0.1, 0.9, 1};
  }
  snap.nodes[7].up = 0;
  snap.nodes[9] = est::SnapshotNode{};
  pub.publish(t);
}

TEST(CoordinateService, EmptyBeforeFirstPublish) {
  est::SnapshotPublisher pub;
  CoordinateService service(&pub, 10);
  std::vector<CoordinateService::Neighbor> out;

  EXPECT_FALSE(service.distance_ms(0, 1).has_value());
  service.nearest_k(0, 3, out);
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(service.centroid({0, 1, 2}).has_value());
  EXPECT_EQ(service.snapshot_version(), 0u);
  EXPECT_EQ(service.stats().queries, 3u);
  EXPECT_EQ(service.stats().empty_answers, 3u);
}

TEST(CoordinateService, DistanceMatchesCoordinateGeometry) {
  est::SnapshotPublisher pub;
  publish_line(pub, 1.0);
  CoordinateService service(&pub, 10);
  const std::optional<double> d = service.distance_ms(2, 6);
  ASSERT_TRUE(d.has_value());
  EXPECT_DOUBLE_EQ(*d, 40.0);
  // Unplaced endpoint: no snapshot answer and no fallback feed -> empty.
  EXPECT_FALSE(service.distance_ms(0, 9).has_value());
  EXPECT_EQ(service.stats().distance_queries, 2u);
  EXPECT_EQ(service.stats().empty_answers, 1u);
  EXPECT_EQ(service.snapshot_version(), 1u);
}

TEST(CoordinateService, NearestKMatchesBruteForce) {
  est::SnapshotPublisher pub;
  publish_line(pub, 1.0);
  CoordinateService service(&pub, 10);
  std::vector<CoordinateService::Neighbor> out;

  service.nearest_k(3, 4, out);
  ASSERT_EQ(out.size(), 4u);
  // Brute force on the line from x=30: 2 and 4 at 10, 1 and 5 at 20 —
  // node 7 (down) and node 9 (unplaced) never appear; ties break by id.
  EXPECT_EQ(out[0].id, 2);
  EXPECT_EQ(out[1].id, 4);
  EXPECT_EQ(out[2].id, 1);
  EXPECT_EQ(out[3].id, 5);
  EXPECT_DOUBLE_EQ(out[0].rtt_ms, 10.0);
  EXPECT_DOUBLE_EQ(out[3].rtt_ms, 20.0);
  for (const auto& nb : out) EXPECT_NE(nb.id, 3);

  // include_down admits node 7 (distance 40 from node 3).
  service.nearest_k(3, 8, out, /*include_down=*/true);
  EXPECT_TRUE(std::any_of(out.begin(), out.end(),
                          [](const auto& nb) { return nb.id == 7; }));

  // k larger than the candidate set returns everyone placed (and up).
  service.nearest_k(0, 100, out);
  EXPECT_EQ(out.size(), 7u);  // 10 minus origin, node 7 (down), node 9

  // Unplaced origin answers empty.
  service.nearest_k(9, 3, out);
  EXPECT_TRUE(out.empty());
  EXPECT_GT(service.stats().empty_answers, 0u);
}

TEST(CoordinateService, CentroidAveragesPlacedMembers) {
  est::SnapshotPublisher pub;
  publish_line(pub, 1.0);
  CoordinateService service(&pub, 10);

  const std::optional<Coordinate> c = service.centroid({0, 2, 4});
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(c->position()[0], 20.0);
  EXPECT_DOUBLE_EQ(c->position()[1], 0.0);

  // Unplaced members are skipped, not averaged as zeros.
  const std::optional<Coordinate> skip = service.centroid({0, 2, 9});
  ASSERT_TRUE(skip.has_value());
  EXPECT_DOUBLE_EQ(skip->position()[0], 10.0);

  // A group with no placed member has no centroid.
  EXPECT_FALSE(service.centroid({9}).has_value());
  EXPECT_FALSE(service.centroid({}).has_value());
}

TEST(CoordinateService, TracksNewVersionsAcrossQueries) {
  est::SnapshotPublisher pub;
  publish_line(pub, 1.0);
  CoordinateService service(&pub, 10);
  ASSERT_TRUE(service.distance_ms(0, 1).has_value());
  EXPECT_EQ(service.snapshot_version(), 1u);

  publish_line(pub, 2.0);
  publish_line(pub, 3.0);
  ASSERT_TRUE(service.distance_ms(0, 1).has_value());
  EXPECT_EQ(service.snapshot_version(), 3u);
}

}  // namespace
}  // namespace nc::serve

// LatencyRecorder (serve/recorder.hpp): exactness in the linear range,
// bounded relative error in the log-bucketed range, percentile agreement
// with a sorted reference, and thread-merge semantics.
#include "serve/recorder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace nc::serve {
namespace {

// Deterministic 64-bit generator (splitmix64) — no external RNG needed.
class SplitMix {
 public:
  explicit SplitMix(std::uint64_t seed) : x_(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (x_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t x_;
};

TEST(LatencyRecorder, EmptyReportsZeros) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_EQ(rec.min_ns(), 0u);
  EXPECT_EQ(rec.max_ns(), 0u);
  EXPECT_EQ(rec.mean_ns(), 0.0);
  EXPECT_EQ(rec.percentile_ns(99.0), 0.0);
}

TEST(LatencyRecorder, SmallValuesAreExact) {
  LatencyRecorder rec;
  for (std::uint64_t v = 0; v < 128; ++v) rec.record(v);
  // Every value below two octaves maps to its own slot: percentiles are
  // exact order statistics (ceil-rank convention).
  EXPECT_EQ(rec.percentile_ns(50.0), 63.0);
  EXPECT_EQ(rec.percentile_ns(100.0), 127.0);
  EXPECT_EQ(rec.min_ns(), 0u);
  EXPECT_EQ(rec.max_ns(), 127u);
  EXPECT_EQ(rec.count(), 128u);
}

TEST(LatencyRecorder, PercentilesTrackSortedReference) {
  LatencyRecorder rec;
  std::vector<std::uint64_t> values;
  SplitMix rng(42);
  for (int i = 0; i < 200000; ++i) {
    // Mix of magnitudes: microseconds to tens of milliseconds in ns.
    const std::uint64_t v = 1000 + rng.next() % (50 * 1000 * 1000);
    values.push_back(v);
    rec.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double p : {50.0, 90.0, 95.0, 99.0, 99.9}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::max(1.0, std::ceil(p / 100.0 * static_cast<double>(values.size()))));
    const double truth = static_cast<double>(values[rank - 1]);
    const double got = rec.percentile_ns(p);
    // Table guarantee: <= ~0.8% relative value error per bucket.
    EXPECT_NEAR(got, truth, truth * 0.01) << "p" << p;
  }
  EXPECT_EQ(rec.max_ns(), values.back());
  EXPECT_EQ(rec.min_ns(), values.front());
}

TEST(LatencyRecorder, MergeEqualsCombinedRecording) {
  LatencyRecorder a, b, combined;
  SplitMix rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.next() % (10 * 1000 * 1000);
    (i % 2 == 0 ? a : b).record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min_ns(), combined.min_ns());
  EXPECT_EQ(a.max_ns(), combined.max_ns());
  EXPECT_EQ(a.mean_ns(), combined.mean_ns());
  for (const double p : {50.0, 95.0, 99.0, 99.9})
    EXPECT_EQ(a.percentile_ns(p), combined.percentile_ns(p)) << p;
  // Merging an empty recorder changes nothing.
  const double before = a.percentile_ns(99.0);
  a.merge(LatencyRecorder{});
  EXPECT_EQ(a.percentile_ns(99.0), before);
}

TEST(LatencyRecorder, HugeValuesDoNotOverflowTheTable) {
  LatencyRecorder rec;
  rec.record(std::numeric_limits<std::uint64_t>::max());
  rec.record(0);
  EXPECT_EQ(rec.count(), 2u);
  EXPECT_EQ(rec.max_ns(), std::numeric_limits<std::uint64_t>::max());
  // p100 lands in the top octave's last bucket; its representative is
  // within one bucket width (~0.8%) of the true maximum.
  const double p100 = rec.percentile_ns(100.0);
  EXPECT_GT(p100, 0.98 * static_cast<double>(rec.max_ns()));
}

}  // namespace
}  // namespace nc::serve

#include "core/neighbor_set.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"

namespace nc {
namespace {

TEST(NeighborSet, RejectsBadCapacity) { EXPECT_THROW(NeighborSet(0, 1), CheckError); }

TEST(NeighborSet, RejectsInvalidId) {
  NeighborSet s(4, 1);
  EXPECT_THROW(s.add(kInvalidNode), CheckError);
}

TEST(NeighborSet, EmptyYieldsNothing) {
  NeighborSet s(4, 1);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.next_round_robin(), std::nullopt);
  EXPECT_EQ(s.random_neighbor(), std::nullopt);
}

TEST(NeighborSet, AddAndContains) {
  NeighborSet s(4, 1);
  EXPECT_TRUE(s.add(7));
  EXPECT_FALSE(s.add(7));  // duplicate
  EXPECT_TRUE(s.contains(7));
  EXPECT_EQ(s.size(), 1u);
}

TEST(NeighborSet, RoundRobinCyclesInOrder) {
  NeighborSet s(8, 1);
  for (NodeId id : {3, 1, 4}) s.add(id);
  EXPECT_EQ(s.next_round_robin(), 3);
  EXPECT_EQ(s.next_round_robin(), 1);
  EXPECT_EQ(s.next_round_robin(), 4);
  EXPECT_EQ(s.next_round_robin(), 3);  // wraps
}

TEST(NeighborSet, CapacityReplacementKeepsSizeBounded) {
  NeighborSet s(4, 2);
  for (NodeId id = 0; id < 20; ++id) s.add(id);
  EXPECT_EQ(s.size(), 4u);
  // The most recent addition is always present (it replaced someone).
  EXPECT_TRUE(s.contains(19));
}

TEST(NeighborSet, RandomNeighborIsMember) {
  NeighborSet s(8, 3);
  for (NodeId id : {10, 20, 30}) s.add(id);
  for (int i = 0; i < 50; ++i) {
    const auto n = s.random_neighbor();
    ASSERT_TRUE(n.has_value());
    EXPECT_TRUE(s.contains(*n));
  }
}

TEST(NeighborSet, RoundRobinCoversAllMembers) {
  NeighborSet s(16, 4);
  std::set<NodeId> expected;
  for (NodeId id = 0; id < 10; ++id) {
    s.add(id);
    expected.insert(id);
  }
  std::set<NodeId> seen;
  for (int i = 0; i < 10; ++i) seen.insert(*s.next_round_robin());
  EXPECT_EQ(seen, expected);
}

TEST(NeighborSet, GrowthDuringIterationStaysConsistent) {
  NeighborSet s(16, 5);
  s.add(1);
  s.add(2);
  EXPECT_EQ(s.next_round_robin(), 1);
  s.add(3);  // gossip arrives mid-cycle
  EXPECT_EQ(s.next_round_robin(), 2);
  EXPECT_EQ(s.next_round_robin(), 3);
  EXPECT_EQ(s.next_round_robin(), 1);
}

TEST(NeighborSet, DeterministicReplacementBySeed) {
  NeighborSet a(4, 42);
  NeighborSet b(4, 42);
  for (NodeId id = 0; id < 50; ++id) {
    a.add(id);
    b.add(id);
  }
  EXPECT_EQ(a.members(), b.members());
}

}  // namespace
}  // namespace nc

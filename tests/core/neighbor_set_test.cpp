#include "core/neighbor_set.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace nc {
namespace {

TEST(NeighborSet, RejectsBadCapacity) { EXPECT_THROW(NeighborSet(0, 1), CheckError); }

TEST(NeighborSet, RejectsInvalidId) {
  NeighborSet s(4, 1);
  EXPECT_THROW(s.add(kInvalidNode), CheckError);
}

TEST(NeighborSet, EmptyYieldsNothing) {
  NeighborSet s(4, 1);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.next_round_robin(), std::nullopt);
  EXPECT_EQ(s.random_neighbor(), std::nullopt);
}

TEST(NeighborSet, AddAndContains) {
  NeighborSet s(4, 1);
  EXPECT_TRUE(s.add(7));
  EXPECT_FALSE(s.add(7));  // duplicate
  EXPECT_TRUE(s.contains(7));
  EXPECT_EQ(s.size(), 1u);
}

TEST(NeighborSet, RoundRobinCyclesInOrder) {
  NeighborSet s(8, 1);
  for (NodeId id : {3, 1, 4}) s.add(id);
  EXPECT_EQ(s.next_round_robin(), 3);
  EXPECT_EQ(s.next_round_robin(), 1);
  EXPECT_EQ(s.next_round_robin(), 4);
  EXPECT_EQ(s.next_round_robin(), 3);  // wraps
}

TEST(NeighborSet, CapacityReplacementKeepsSizeBounded) {
  NeighborSet s(4, 2);
  for (NodeId id = 0; id < 20; ++id) s.add(id);
  EXPECT_EQ(s.size(), 4u);
  // The most recent addition is always present (it replaced someone).
  EXPECT_TRUE(s.contains(19));
}

TEST(NeighborSet, RandomNeighborIsMember) {
  NeighborSet s(8, 3);
  for (NodeId id : {10, 20, 30}) s.add(id);
  for (int i = 0; i < 50; ++i) {
    const auto n = s.random_neighbor();
    ASSERT_TRUE(n.has_value());
    EXPECT_TRUE(s.contains(*n));
  }
}

TEST(NeighborSet, RoundRobinCoversAllMembers) {
  NeighborSet s(16, 4);
  std::set<NodeId> expected;
  for (NodeId id = 0; id < 10; ++id) {
    s.add(id);
    expected.insert(id);
  }
  std::set<NodeId> seen;
  for (int i = 0; i < 10; ++i) seen.insert(*s.next_round_robin());
  EXPECT_EQ(seen, expected);
}

TEST(NeighborSet, GrowthDuringIterationStaysConsistent) {
  NeighborSet s(16, 5);
  s.add(1);
  s.add(2);
  EXPECT_EQ(s.next_round_robin(), 1);
  s.add(3);  // gossip arrives mid-cycle
  EXPECT_EQ(s.next_round_robin(), 2);
  EXPECT_EQ(s.next_round_robin(), 3);
  EXPECT_EQ(s.next_round_robin(), 1);
}

TEST(NeighborSet, DeterministicReplacementBySeed) {
  NeighborSet a(4, 42);
  NeighborSet b(4, 42);
  for (NodeId id = 0; id < 50; ++id) {
    a.add(id);
    b.add(id);
  }
  EXPECT_EQ(a.members(), b.members());
}

// The compact-index membership must behave EXACTLY like the bitmap it
// replaced: same members in the same round-robin order, same contains()
// answers, same replacement victims — the reference model below replays the
// identical RNG stream (Rng::derived(seed, kNeighbor), one uniform_int per
// replacement) against a bitmap, over a churn-heavy add sequence with
// duplicates and re-additions of evicted ids.
TEST(NeighborSet, CompactMembershipMatchesBitmapReference) {
  constexpr std::size_t kCapacity = 16;
  constexpr NodeId kIdSpace = 2048;
  constexpr std::uint64_t kSeed = 77;

  NeighborSet s(kCapacity, kSeed);
  std::vector<NodeId> ref_order;
  std::vector<bool> ref_bitmap(static_cast<std::size_t>(kIdSpace), false);
  Rng ref_rng = Rng::derived(kSeed, rngstream::kNeighbor);
  Rng churn(12345);  // drives the id sequence only, not the set

  for (int step = 0; step < 4000; ++step) {
    const auto id = static_cast<NodeId>(churn.uniform_int(kIdSpace));
    const bool changed = s.add(id);
    // Reference add with the same semantics and the same RNG stream.
    bool ref_changed = false;
    if (!ref_bitmap[static_cast<std::size_t>(id)]) {
      ref_changed = true;
      if (ref_order.size() < kCapacity) {
        ref_order.push_back(id);
      } else {
        const auto victim =
            static_cast<std::size_t>(ref_rng.uniform_int(ref_order.size()));
        ref_bitmap[static_cast<std::size_t>(ref_order[victim])] = false;
        ref_order[victim] = id;
      }
      ref_bitmap[static_cast<std::size_t>(id)] = true;
    }
    ASSERT_EQ(changed, ref_changed) << "step " << step;
    ASSERT_EQ(s.members(), ref_order) << "step " << step;
    // Spot-check contains() beyond the members themselves.
    const auto probe = static_cast<NodeId>((id * 31 + step) % kIdSpace);
    ASSERT_EQ(s.contains(probe), ref_bitmap[static_cast<std::size_t>(probe)])
        << "step " << step;
  }
}

// The point of the compact membership: bytes scale with the gossip degree,
// never with the id space. A degree-64 set fed ids from a 1M-node space
// stays under 4 KB, where the n-bit bitmap it replaced needed 125 KB per
// node (n^2/8 aggregate).
TEST(NeighborSet, MemoryBoundedByDegreeNotIdSpace) {
  constexpr std::size_t kDegree = 64;
  constexpr NodeId kIdSpace = 1'000'000;
  NeighborSet s(kDegree, 9);
  Rng churn(2024);
  for (int step = 0; step < 20000; ++step)
    s.add(static_cast<NodeId>(churn.uniform_int(kIdSpace)));
  EXPECT_EQ(s.size(), kDegree);
  EXPECT_LT(s.memory_bytes(), 4096u);          // O(degree)
  EXPECT_LT(s.memory_bytes(), kIdSpace / 8u);  // << the bitmap bound
}

}  // namespace
}  // namespace nc

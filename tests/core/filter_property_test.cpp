// Cross-cutting filter properties that every LatencyFilter implementation
// must satisfy, parameterized over the configured kinds.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/filters/filter_config.hpp"

namespace nc {
namespace {

std::vector<FilterConfig> all_configs() {
  return {
      FilterConfig::none(),
      FilterConfig::moving_percentile(4, 25),
      FilterConfig::moving_percentile(16, 50, 2),
      FilterConfig::ewma(0.1),
      FilterConfig::threshold(1000.0),
  };
}

class FilterContract : public ::testing::TestWithParam<int> {
 protected:
  FilterConfig config() const {
    return all_configs()[static_cast<std::size_t>(GetParam())];
  }
};

TEST_P(FilterContract, CloneReplaysIdentically) {
  // A clone must be parameter-identical and history-free: feeding the same
  // stream to the original (after reset) and the clone yields identical
  // outputs.
  auto original = config().make();
  Rng warm(1);
  for (int i = 0; i < 50; ++i) original->update(warm.lognormal(4.0, 1.0));
  auto clone = original->clone();
  original->reset();

  Rng rng(2);
  for (int i = 0; i < 300; ++i) {
    const double x = rng.lognormal(4.0, 1.2);
    ASSERT_EQ(original->update(x), clone->update(x)) << config().name() << " @" << i;
  }
}

TEST_P(FilterContract, ResetForgetsEverything) {
  auto f = config().make();
  Rng rng(3);
  for (int i = 0; i < 100; ++i) f->update(rng.lognormal(4.0, 1.0));
  f->reset();
  EXPECT_EQ(f->estimate(), std::nullopt) << config().name();
}

TEST_P(FilterContract, EstimateIsStableWithoutUpdates) {
  auto f = config().make();
  f->update(50.0);
  f->update(60.0);
  const auto e1 = f->estimate();
  const auto e2 = f->estimate();
  EXPECT_EQ(e1, e2) << config().name();
}

TEST_P(FilterContract, OutputWithinObservedRange) {
  // No filter may extrapolate beyond the values it has seen.
  auto f = config().make();
  Rng rng(4);
  double lo = 1e18, hi = -1e18;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.lognormal(4.0, 1.5);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    const auto out = f->update(x);
    if (out.has_value()) {
      ASSERT_GE(*out, lo) << config().name();
      ASSERT_LE(*out, hi) << config().name();
    }
  }
}

TEST_P(FilterContract, ConstantInputIsFixedPoint) {
  auto f = config().make();
  std::optional<double> out;
  for (int i = 0; i < 50; ++i) out = f->update(123.0);
  ASSERT_TRUE(out.has_value());
  EXPECT_DOUBLE_EQ(*out, 123.0) << config().name();
}

INSTANTIATE_TEST_SUITE_P(AllKinds, FilterContract, ::testing::Range(0, 5));

}  // namespace
}  // namespace nc

#include "core/vivaldi.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace nc {
namespace {

VivaldiConfig basic_config(int dim = 2) {
  VivaldiConfig c;
  c.dim = dim;
  return c;
}

TEST(Vivaldi, StartsAtOriginWithInitialError) {
  const Vivaldi v(basic_config());
  EXPECT_EQ(v.coordinate().position().norm(), 0.0);
  EXPECT_EQ(v.error_estimate(), 1.0);
  EXPECT_EQ(v.confidence(), 0.0);
  EXPECT_EQ(v.observation_count(), 0u);
}

TEST(Vivaldi, RejectsBadConfig) {
  VivaldiConfig c = basic_config();
  c.dim = 0;
  EXPECT_THROW(Vivaldi{c}, CheckError);
  c = basic_config();
  c.cc = 0.0;
  EXPECT_THROW(Vivaldi{c}, CheckError);
  c = basic_config();
  c.initial_error = 2.0;  // above max_error
  EXPECT_THROW(Vivaldi{c}, CheckError);
}

TEST(Vivaldi, RejectsNonPositiveRtt) {
  Vivaldi v(basic_config());
  EXPECT_THROW(v.observe(Coordinate::origin(2), 1.0, 0.0), CheckError);
  EXPECT_THROW(v.observe(Coordinate::origin(2), 1.0, -5.0), CheckError);
}

TEST(Vivaldi, RejectsDimensionMismatch) {
  Vivaldi v(basic_config(2));
  EXPECT_THROW(v.observe(Coordinate::origin(3), 1.0, 10.0), CheckError);
}

TEST(Vivaldi, SpringDirectionIsCorrect) {
  // Remote sits at (100, 0); our coordinate is at the origin. The measured
  // RTT (10 ms) is far below the coordinate distance (100 ms), so the spring
  // is over-stretched and must pull us TOWARD the remote. This guards the
  // sign typo in the TR's Figure 1 (see DESIGN.md).
  Vivaldi v(basic_config());
  Coordinate self_before = v.coordinate();
  const Coordinate remote{Vec{100.0, 0.0}};
  v.observe(remote, 0.5, 10.0);
  EXPECT_LT(v.coordinate().distance_to(remote), self_before.distance_to(remote));

  // And push apart when the RTT exceeds the coordinate distance.
  Vivaldi w(basic_config());
  w.observe(remote, 0.5, 10.0);  // move near remote first
  const double before = w.coordinate().distance_to(remote);
  w.observe(remote, 0.5, 500.0);
  EXPECT_GT(w.coordinate().distance_to(remote), before);
}

TEST(Vivaldi, TwoNodesConvergeToTrueLatency) {
  VivaldiConfig c = basic_config();
  Vivaldi a(c, 1);
  Vivaldi b(c, 2);
  const double rtt = 42.0;
  for (int i = 0; i < 400; ++i) {
    a.observe(b.coordinate(), b.error_estimate(), rtt);
    b.observe(a.coordinate(), a.error_estimate(), rtt);
  }
  EXPECT_NEAR(a.coordinate().distance_to(b.coordinate()), rtt, 1.0);
  EXPECT_LT(a.error_estimate(), 0.05);
  EXPECT_GT(a.confidence(), 0.95);
}

TEST(Vivaldi, SymmetryBreakingFromIdenticalCoordinates) {
  // Both nodes start at the origin; random directions must separate them.
  VivaldiConfig c = basic_config();
  Vivaldi a(c, 1);
  Vivaldi b(c, 2);
  a.observe(b.coordinate(), 1.0, 50.0);
  EXPECT_GT(a.coordinate().position().norm(), 0.0);
}

TEST(Vivaldi, ErrorEstimateStaysInBounds) {
  VivaldiConfig c = basic_config();
  Vivaldi v(c, 3);
  Rng rng(99);
  // Wildly inconsistent observations cannot push the error outside [0, 1].
  for (int i = 0; i < 500; ++i) {
    const Coordinate remote{Vec{rng.uniform(-100.0, 100.0), rng.uniform(-100.0, 100.0)}};
    v.observe(remote, rng.uniform(0.0, 1.0), rng.uniform(0.1, 10000.0));
    ASSERT_GE(v.error_estimate(), 0.0);
    ASSERT_LE(v.error_estimate(), 1.0);
    ASSERT_TRUE(v.coordinate().position().all_finite());
  }
}

TEST(Vivaldi, ConfidentRemoteTugsHarder) {
  // Against a confident remote (low error), our move should be larger than
  // against an unconfident one (w = e_i / (e_i + e_j)).
  VivaldiConfig c = basic_config();
  Vivaldi a(c, 1);
  Vivaldi b(c, 1);  // identical twins
  const Coordinate remote{Vec{100.0, 0.0}};
  const auto move_confident = a.observe(remote, 0.01, 50.0).displacement_ms;
  const auto move_unsure = b.observe(remote, 1.0, 50.0).displacement_ms;
  EXPECT_GT(move_confident, move_unsure);
}

TEST(Vivaldi, ConfidenceBuildingTreatsMarginAsExact) {
  VivaldiConfig c = basic_config();
  c.confidence_margin_ms = 3.0;
  Vivaldi v(c, 4);
  // Put the node at a known spot first.
  const Coordinate remote{Vec{10.0, 0.0}};
  for (int i = 0; i < 200; ++i) v.observe(remote, 0.1, 10.0);
  const double err_before = v.error_estimate();
  const Coordinate pos_before = v.coordinate();

  // A sample within 3 ms of the prediction is treated as exact: no movement,
  // error improves.
  const double predicted = v.coordinate().distance_to(remote);
  const auto s = v.observe(remote, 0.1, predicted + 2.5);
  EXPECT_TRUE(s.within_margin);
  EXPECT_EQ(s.relative_error, 0.0);
  EXPECT_EQ(s.displacement_ms, 0.0);
  EXPECT_EQ(v.coordinate(), pos_before);
  EXPECT_LE(v.error_estimate(), err_before);
}

TEST(Vivaldi, WithoutMarginJitterErodesConfidence) {
  // The Fig. 6 cluster effect: 1 ms links with +/-2 ms jitter keep relative
  // error high without confidence building.
  VivaldiConfig plain = basic_config();
  VivaldiConfig margin = basic_config();
  margin.confidence_margin_ms = 3.0;
  Vivaldi a(plain, 5);
  Vivaldi b(margin, 5);
  Rng rng(7);
  const Coordinate remote{Vec{1.0, 0.0}};
  for (int i = 0; i < 300; ++i) {
    const double rtt = rng.uniform(0.4, 3.0);  // jitter >> true latency
    a.observe(remote, 0.1, rtt);
    b.observe(remote, 0.1, rtt);
  }
  EXPECT_GT(a.error_estimate(), 0.25);   // jitter keeps error high
  EXPECT_LT(b.error_estimate(), 0.05);   // margin absorbs it
  EXPECT_GT(b.confidence(), 0.95);
}

TEST(Vivaldi, DampingFreezesMovement) {
  // de Launois damping: movement decays towards zero with observation count
  // even when the network moves (the paper's criticism).
  VivaldiConfig c = basic_config();
  c.delaunois_damping = 5.0;
  Vivaldi v(c, 6);
  const Coordinate remote{Vec{80.0, 0.0}};
  for (int i = 0; i < 500; ++i) v.observe(remote, 0.2, 80.0);
  // Now the "network" changes: the same link is suddenly 400 ms.
  double total_move = 0.0;
  for (int i = 0; i < 50; ++i) total_move += v.observe(remote, 0.2, 400.0).displacement_ms;
  EXPECT_LT(total_move, 40.0);  // moved a small fraction of the 320 ms shift

  VivaldiConfig undamped = basic_config();
  Vivaldi u(undamped, 6);
  for (int i = 0; i < 500; ++i) u.observe(remote, 0.2, 80.0);
  double total_move_u = 0.0;
  for (int i = 0; i < 50; ++i)
    total_move_u += u.observe(remote, 0.2, 400.0).displacement_ms;
  EXPECT_GT(total_move_u, 8.0 * total_move);
}

TEST(Vivaldi, HeightsEvolveFromInitialValue) {
  // Regression: heights start positive and must actually move. (A zero
  // initial height would freeze the height component forever because the
  // height force scales with h_i + h_j.)
  VivaldiConfig c = basic_config();
  c.use_height = true;
  Vivaldi v(c, 9);
  EXPECT_EQ(v.coordinate().height(), c.initial_height_ms);
  // A remote with a big height and RTT far above the coordinate distance
  // stretches the spring, pushing our height up.
  const Coordinate remote{Vec{10.0, 0.0}, 20.0};
  for (int i = 0; i < 50; ++i) v.observe(remote, 0.2, 300.0);
  EXPECT_GT(v.coordinate().height(), c.initial_height_ms);
}

TEST(Vivaldi, HeightsParticipateInDistance) {
  VivaldiConfig c = basic_config();
  c.use_height = true;
  Vivaldi a(c, 1);
  Vivaldi b(c, 2);
  // The true RTT (40) exceeds what a plane embedding of two mutually-pinging
  // nodes needs; heights must stay non-negative throughout.
  for (int i = 0; i < 300; ++i) {
    a.observe(b.coordinate(), b.error_estimate(), 40.0);
    b.observe(a.coordinate(), a.error_estimate(), 40.0);
    ASSERT_GE(a.coordinate().height(), 0.0);
    ASSERT_GE(b.coordinate().height(), 0.0);
  }
  EXPECT_NEAR(a.coordinate().distance_to(b.coordinate()), 40.0, 2.0);
}

TEST(Vivaldi, GravityBoundsDriftFromOrigin) {
  // Two nodes whose only consistent observation keeps pushing them in one
  // direction (a remote that always advertises a coordinate "behind" them)
  // drift without bound; gravity anchors them near the origin.
  const auto drift_with = [](double rho) {
    VivaldiConfig c;
    c.dim = 2;
    c.gravity_rho = rho;
    Vivaldi v(c, 3);
    // The remote always claims to sit 100 ms behind us on the x axis while
    // the measured RTT says we are 300 ms apart: a perpetual eastward push.
    for (int i = 0; i < 3000; ++i) {
      const Vec pos = v.coordinate().position();
      const Coordinate remote{Vec{pos[0] - 100.0, pos[1]}};
      v.observe(remote, 0.3, 300.0);
    }
    return v.coordinate().position().norm();
  };
  const double unanchored = drift_with(0.0);
  const double anchored = drift_with(500.0);
  EXPECT_GT(unanchored, 10.0 * anchored);
  // Equilibrium where pull (r/rho)^2 balances the ~35 ms/update push:
  // r = rho * sqrt(push) ~ 3000 ms.
  EXPECT_LT(anchored, 4000.0);
}

TEST(Vivaldi, WeakGravityPreservesConvergence) {
  // With rho far above the network diameter, gravity must not perturb
  // pairwise accuracy.
  VivaldiConfig c;
  c.dim = 2;
  c.gravity_rho = 10000.0;
  Vivaldi a(c, 1);
  Vivaldi b(c, 2);
  for (int i = 0; i < 400; ++i) {
    a.observe(b.coordinate(), b.error_estimate(), 42.0);
    b.observe(a.coordinate(), a.error_estimate(), 42.0);
  }
  EXPECT_NEAR(a.coordinate().distance_to(b.coordinate()), 42.0, 1.5);
}

TEST(Vivaldi, ResetRestoresInitialState) {
  Vivaldi v(basic_config(), 7);
  v.observe(Coordinate{Vec{10.0, 0.0}}, 0.5, 25.0);
  EXPECT_GT(v.observation_count(), 0u);
  v.reset();
  EXPECT_EQ(v.coordinate().position().norm(), 0.0);
  EXPECT_EQ(v.error_estimate(), 1.0);
  EXPECT_EQ(v.observation_count(), 0u);
}

// Property: a clique of nodes with a consistent Euclidean ground truth
// converges to low error in any dimension >= the ground truth's.
class ConvergenceProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ConvergenceProperty, CliqueEmbedsGroundTruth) {
  const auto [dim, n] = GetParam();
  Rng rng(hash_combine(static_cast<std::uint64_t>(dim), static_cast<std::uint64_t>(n)));

  // Ground-truth positions in the same dimension.
  std::vector<Vec> truth;
  for (int i = 0; i < n; ++i) truth.push_back(rng.unit_vector(dim) * rng.uniform(10.0, 120.0));

  VivaldiConfig c = basic_config(dim);
  std::vector<Vivaldi> nodes;
  nodes.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) nodes.emplace_back(c, static_cast<std::uint64_t>(i));

  for (int round = 0; round < 120; ++round) {
    for (int i = 0; i < n; ++i) {
      const int j = static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(n - 1)));
      const int other = j >= i ? j + 1 : j;
      const double rtt = std::max(
          0.5, truth[static_cast<std::size_t>(i)].distance_to(
                   truth[static_cast<std::size_t>(other)]));
      nodes[static_cast<std::size_t>(i)].observe(
          nodes[static_cast<std::size_t>(other)].coordinate(),
          nodes[static_cast<std::size_t>(other)].error_estimate(), rtt);
    }
  }

  // Median relative error over all pairs must be small.
  std::vector<double> errs;
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) {
      const double rtt = std::max(0.5, truth[static_cast<std::size_t>(i)].distance_to(
                                           truth[static_cast<std::size_t>(j)]));
      const double d = nodes[static_cast<std::size_t>(i)].coordinate().distance_to(
          nodes[static_cast<std::size_t>(j)].coordinate());
      errs.push_back(std::fabs(d - rtt) / rtt);
    }
  std::sort(errs.begin(), errs.end());
  EXPECT_LT(errs[errs.size() / 2], 0.12) << "dim=" << dim << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Grid, ConvergenceProperty,
                         ::testing::Combine(::testing::Values(2, 3, 5),
                                            ::testing::Values(8, 24)));

}  // namespace
}  // namespace nc

#include "core/heuristics/windowed_heuristics.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace nc {
namespace {

Coordinate at(double x, double y) { return Coordinate{Vec{x, y}}; }

TEST(WindowedHeuristic, RejectsBadParams) {
  EXPECT_THROW(EnergyHeuristic(0.0, 8), CheckError);
  EXPECT_THROW(EnergyHeuristic(8.0, 1), CheckError);
  EXPECT_THROW(RelativeHeuristic(0.0, 8), CheckError);
}

TEST(EnergyHeuristic, NotArmedUntilWindowFills) {
  EnergyHeuristic h(0.001, 4);
  Coordinate app = at(0, 0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(h.on_system_update({at(i * 10.0, 0), nullptr, 0.0}, app));
    EXPECT_FALSE(h.armed());
  }
  h.on_system_update({at(30, 0), nullptr, 0.0}, app);
  EXPECT_TRUE(h.armed());
}

TEST(EnergyHeuristic, StableStreamNeverFires) {
  EnergyHeuristic h(8.0, 16);
  Coordinate app = at(0, 0);
  Rng rng(51);
  for (int i = 0; i < 500; ++i) {
    const Coordinate sys = at(50.0 + rng.normal(0.0, 0.5), rng.normal(0.0, 0.5));
    ASSERT_FALSE(h.on_system_update({sys, nullptr, 0.0}, app));
  }
  EXPECT_EQ(h.change_points(), 0u);
  EXPECT_EQ(app, at(0, 0));  // untouched
}

TEST(EnergyHeuristic, DetectsShiftAndPublishesCentroid) {
  EnergyHeuristic h(8.0, 16);
  Coordinate app = at(0, 0);
  Rng rng(52);
  // Phase 1: stable near (0, 0).
  for (int i = 0; i < 64; ++i) {
    h.on_system_update({at(rng.normal(0.0, 0.3), rng.normal(0.0, 0.3)), nullptr, 0.0},
                       app);
  }
  EXPECT_EQ(h.change_points(), 0u);
  // Phase 2: jump to (100, 0): must fire within ~window observations.
  bool fired = false;
  int steps = 0;
  for (; steps < 32 && !fired; ++steps) {
    fired = h.on_system_update(
        {at(100.0 + rng.normal(0.0, 0.3), rng.normal(0.0, 0.3)), nullptr, 0.0}, app);
  }
  ASSERT_TRUE(fired);
  EXPECT_LE(steps, 32);
  EXPECT_EQ(h.change_points(), 1u);
  // The published coordinate is the centroid of the current window — a mix
  // of old and new positions. The statistic fires after only a few samples
  // at the new location, so the centroid has moved off the old cluster but
  // not yet reached the new one.
  EXPECT_GT(app.position()[0], 5.0);
  EXPECT_LT(app.position()[0], 100.0);
  // After the change point the windows restart.
  EXPECT_FALSE(h.armed());
}

TEST(EnergyHeuristic, HigherThresholdFiresLater) {
  Rng rng(53);
  std::vector<Coordinate> stream;
  for (int i = 0; i < 32; ++i)
    stream.push_back(at(rng.normal(0.0, 0.2), rng.normal(0.0, 0.2)));
  for (int i = 0; i < 64; ++i)
    stream.push_back(at(2.0 * i + rng.normal(0.0, 0.2), 0.0));  // ramp

  const auto first_fire = [&](double tau) {
    EnergyHeuristic h(tau, 16);
    Coordinate app = at(0, 0);
    for (std::size_t i = 0; i < stream.size(); ++i)
      if (h.on_system_update({stream[i], nullptr, 0.0}, app))
        return static_cast<int>(i);
    return -1;
  };
  const int lo = first_fire(2.0);
  const int hi = first_fire(64.0);
  ASSERT_NE(lo, -1);
  ASSERT_NE(hi, -1);
  EXPECT_LT(lo, hi);
}

TEST(RelativeHeuristic, RequiresNearestNeighbor) {
  RelativeHeuristic h(0.3, 4);
  Coordinate app = at(0, 0);
  // Without a nearest neighbor the test can never trigger.
  for (int i = 0; i < 50; ++i)
    ASSERT_FALSE(h.on_system_update({at(i * 50.0, 0), nullptr, 0.0}, app));
}

TEST(RelativeHeuristic, FiresWhenMovementExceedsLocalScale) {
  RelativeHeuristic h(0.3, 8);
  Coordinate app = at(0, 0);
  const Coordinate nearest = at(0, 10);  // local scale ~10 ms
  Rng rng(54);
  // Stable phase.
  for (int i = 0; i < 16; ++i) {
    ASSERT_FALSE(h.on_system_update(
        {at(rng.normal(0.0, 0.1), rng.normal(0.0, 0.1)), &nearest, 0.0}, app));
  }
  // Move by ~8 ms: 8 / 10 > 0.3 once the current centroid reflects it.
  bool fired = false;
  for (int i = 0; i < 16 && !fired; ++i) {
    fired = h.on_system_update(
        {at(8.0 + rng.normal(0.0, 0.1), rng.normal(0.0, 0.1)), &nearest, 0.0}, app);
  }
  EXPECT_TRUE(fired);
  EXPECT_EQ(h.change_points(), 1u);
  EXPECT_GT(app.position()[0], 1.0);
}

TEST(RelativeHeuristic, SmallMovementRelativeToFarNeighborIgnored) {
  RelativeHeuristic h(0.3, 8);
  Coordinate app = at(0, 0);
  const Coordinate nearest = at(0, 500.0);  // very distant nearest neighbor
  Rng rng(55);
  for (int i = 0; i < 16; ++i)
    h.on_system_update({at(rng.normal(0.0, 0.1), 0), &nearest, 0.0}, app);
  // An 8 ms move is tiny relative to a 500 ms local scale.
  for (int i = 0; i < 32; ++i) {
    ASSERT_FALSE(h.on_system_update(
        {at(8.0 + rng.normal(0.0, 0.1), 0), &nearest, 0.0}, app));
  }
}

TEST(WindowedHeuristic, ResetClearsState) {
  EnergyHeuristic h(1.0, 4);
  Coordinate app = at(0, 0);
  // Stable stream: the windows fill and arm but never declare a change.
  for (int i = 0; i < 6; ++i) h.on_system_update({at(5, 5), nullptr, 0.0}, app);
  EXPECT_TRUE(h.armed());
  h.reset();
  EXPECT_FALSE(h.armed());
  EXPECT_EQ(h.change_points(), 0u);
}

TEST(WindowedHeuristic, CloneStartsFresh) {
  EnergyHeuristic h(8.0, 4);
  Coordinate app = at(0, 0);
  for (int i = 0; i < 4; ++i) h.on_system_update({at(0, 0), nullptr, 0.0}, app);
  EXPECT_TRUE(h.armed());
  const auto c = h.clone();
  auto* e = dynamic_cast<EnergyHeuristic*>(c.get());
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->armed());
  EXPECT_EQ(e->window(), 4);
}

// Regression pin for the O(k^2) -> O(k) energy-slide optimization: the
// ENERGY heuristic (the only energy path reachable from run_scenario, via
// NCClient) must make exactly the decisions a naive from-scratch
// energy_distance recomputation makes on every slide. The reference below
// replays the two-window protocol literally — fill both windows, freeze
// W_s, slide W_c, compare, restart on a change point.
TEST(EnergyHeuristic, MatchesNaiveEnergyRecomputationExactly) {
  const int k = 16;
  const double tau = 4.0;
  EnergyHeuristic h(tau, k);
  Coordinate app = at(0, 0);

  std::vector<Vec> start, current;  // naive reference state
  int naive_changes = 0;

  Rng rng(57);
  double cx = 0.0;
  for (int i = 0; i < 4000; ++i) {
    if (i % 500 == 499) cx += rng.uniform(5.0, 60.0);  // occasional shifts
    const Coordinate sys =
        at(cx + rng.normal(0.0, 0.4), rng.normal(0.0, 0.4));
    const bool fired = h.on_system_update({sys, nullptr, 0.0}, app);

    // Naive replica of WindowedHeuristic + energy_distance.
    bool naive_fired = false;
    const Vec v = sys.as_vec();
    if (static_cast<int>(start.size()) < k) {
      start.push_back(v);
      current.push_back(v);
    } else {
      current.push_back(v);
      current.erase(current.begin());
      if (stats::energy_distance(start, current) > tau) {
        naive_fired = true;
        ++naive_changes;
        Vec sum = Vec::zero(v.dim());
        for (const Vec& c : current) sum += c;
        const Vec centroid = sum / static_cast<double>(current.size());
        ASSERT_NEAR(app.position().distance_to(centroid), 0.0, 1e-9)
            << "published centroid diverged at step " << i;
        start.clear();
        current.clear();
      }
    }
    ASSERT_EQ(fired, naive_fired) << "decision diverged at step " << i;
  }
  EXPECT_EQ(h.change_points(), static_cast<std::uint64_t>(naive_changes));
  EXPECT_GT(naive_changes, 3);  // the stream actually exercised change points
}

TEST(WindowedHeuristic, HeightCoordinatesSupported) {
  EnergyHeuristic h(4.0, 8);
  Coordinate app = Coordinate{Vec{0.0, 0.0}, 1.0};
  Rng rng(56);
  for (int i = 0; i < 16; ++i) {
    h.on_system_update(
        {Coordinate{Vec{rng.normal(0.0, 0.1), 0.0}, 1.0}, nullptr, 0.0}, app);
  }
  bool fired = false;
  for (int i = 0; i < 16 && !fired; ++i) {
    fired = h.on_system_update(
        {Coordinate{Vec{40.0 + rng.normal(0.0, 0.1), 0.0}, 5.0}, nullptr, 0.0}, app);
  }
  ASSERT_TRUE(fired);
  EXPECT_TRUE(app.has_height());
  EXPECT_GE(app.height(), 0.0);
}

}  // namespace
}  // namespace nc

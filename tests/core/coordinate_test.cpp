#include "core/coordinate.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"

namespace nc {
namespace {

TEST(Coordinate, DefaultUninitialized) {
  const Coordinate c;
  EXPECT_FALSE(c.initialized());
  EXPECT_EQ(c.dim(), 0);
}

TEST(Coordinate, OriginFactory) {
  const Coordinate c = Coordinate::origin(3);
  EXPECT_TRUE(c.initialized());
  EXPECT_EQ(c.dim(), 3);
  EXPECT_FALSE(c.has_height());
  EXPECT_EQ(c.position().norm(), 0.0);

  const Coordinate h = Coordinate::origin(2, /*with_height=*/true);
  EXPECT_TRUE(h.has_height());
  EXPECT_EQ(h.height(), 0.0);
}

TEST(Coordinate, NegativeHeightRejected) {
  EXPECT_THROW(Coordinate(Vec{0.0, 0.0}, -1.0), CheckError);
}

TEST(Coordinate, EuclideanDistance) {
  const Coordinate a{Vec{0.0, 0.0}};
  const Coordinate b{Vec{3.0, 4.0}};
  EXPECT_EQ(a.distance_to(b), 5.0);
  EXPECT_EQ(b.distance_to(a), 5.0);
}

TEST(Coordinate, HeightAddsToDistanceBothWays) {
  const Coordinate a{Vec{0.0, 0.0}, 2.0};
  const Coordinate b{Vec{3.0, 4.0}, 1.5};
  EXPECT_EQ(a.distance_to(b), 5.0 + 2.0 + 1.5);
  EXPECT_EQ(b.distance_to(a), 8.5);
}

TEST(Coordinate, MixedHeightModelsRejected) {
  const Coordinate plain{Vec{0.0, 0.0}};
  const Coordinate tall{Vec{0.0, 0.0}, 1.0};
  EXPECT_THROW((void)plain.distance_to(tall), CheckError);
}

TEST(Coordinate, DimensionMismatchRejected) {
  const Coordinate a{Vec{0.0, 0.0}};
  const Coordinate b{Vec{0.0, 0.0, 0.0}};
  EXPECT_THROW((void)a.distance_to(b), CheckError);
}

TEST(Coordinate, DisplacementIgnoresHeightSum) {
  // Displacement measures movement, so heights difference — not sum.
  const Coordinate a{Vec{0.0, 0.0}, 5.0};
  const Coordinate b{Vec{3.0, 4.0}, 7.0};
  EXPECT_EQ(b.displacement_from(a), 5.0 + 2.0);
  EXPECT_EQ(a.displacement_from(b), 7.0);
  EXPECT_EQ(a.displacement_from(a), 0.0);
}

TEST(Coordinate, AsVecRoundTripNoHeight) {
  const Coordinate a{Vec{1.0, -2.0, 3.0}};
  const Vec v = a.as_vec();
  EXPECT_EQ(v.dim(), 3);
  const Coordinate back = Coordinate::from_vec(v, false);
  EXPECT_EQ(back, a);
}

TEST(Coordinate, AsVecRoundTripWithHeight) {
  const Coordinate a{Vec{1.0, -2.0}, 4.5};
  const Vec v = a.as_vec();
  EXPECT_EQ(v.dim(), 3);
  EXPECT_EQ(v[2], 4.5);
  const Coordinate back = Coordinate::from_vec(v, true);
  EXPECT_EQ(back, a);
}

TEST(Coordinate, FromVecClampsNegativeHeight) {
  const Coordinate c = Coordinate::from_vec(Vec{1.0, 2.0, -3.0}, true);
  EXPECT_EQ(c.height(), 0.0);
  EXPECT_EQ(c.position()[0], 1.0);
}

TEST(Coordinate, ApplyDisplacementMovesPosition) {
  Coordinate c{Vec{1.0, 1.0}};
  c.apply_displacement(Vec{0.5, -1.0}, 0.0);
  EXPECT_EQ(c.position()[0], 1.5);
  EXPECT_EQ(c.position()[1], 0.0);
}

TEST(Coordinate, ApplyDisplacementClampsHeight) {
  Coordinate c{Vec{0.0}, 1.0};
  c.apply_displacement(Vec{0.0}, -5.0, /*min_height=*/0.25);
  EXPECT_EQ(c.height(), 0.25);
  c.apply_displacement(Vec{0.0}, 2.0, 0.25);
  EXPECT_EQ(c.height(), 2.25);
}

TEST(Coordinate, HeightIgnoredWithoutHeightModel) {
  Coordinate c{Vec{0.0}};
  c.apply_displacement(Vec{1.0}, 99.0);
  EXPECT_EQ(c.height(), 0.0);
  EXPECT_FALSE(c.has_height());
}

TEST(Coordinate, Equality) {
  const Coordinate a{Vec{1.0, 2.0}};
  const Coordinate b{Vec{1.0, 2.0}};
  const Coordinate c{Vec{1.0, 2.0}, 0.0};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);  // height model differs
}

TEST(Coordinate, StreamOutput) {
  std::ostringstream os;
  os << Coordinate{Vec{1.0, 2.0}, 3.0};
  EXPECT_EQ(os.str(), "(1, 2)+h3");
}

}  // namespace
}  // namespace nc

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <tuple>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/filters/ewma_filter.hpp"
#include "core/filters/filter_config.hpp"
#include "core/filters/identity_filter.hpp"
#include "core/filters/mp_filter.hpp"
#include "core/filters/threshold_filter.hpp"
#include "stats/percentile.hpp"

namespace nc {
namespace {

// ------------------------------------------------------------------- MP --

TEST(MpFilter, RejectsBadParameters) {
  EXPECT_THROW(MovingPercentileFilter(0, 25.0), CheckError);
  EXPECT_THROW(MovingPercentileFilter(4, 101.0), CheckError);
  EXPECT_THROW(MovingPercentileFilter(4, 25.0, 0), CheckError);
  EXPECT_THROW(MovingPercentileFilter(4, 25.0, 5), CheckError);
}

TEST(MpFilter, PaperParametersReturnWindowMinimum) {
  // MP(4, 25): "taking the 25th percentile (minimum) of the previous four".
  MovingPercentileFilter f(4, 25.0);
  EXPECT_EQ(f.update(100.0), 100.0);
  EXPECT_EQ(f.update(50.0), 50.0);
  EXPECT_EQ(f.update(200.0), 50.0);
  EXPECT_EQ(f.update(80.0), 50.0);
  // Window is now {100,50,200,80}; adding evicts 100.
  EXPECT_EQ(f.update(300.0), 50.0);   // {50,200,80,300}
  EXPECT_EQ(f.update(400.0), 80.0);   // {200,80,300,400}
}

TEST(MpFilter, SpikeIsAbsorbed) {
  MovingPercentileFilter f(4, 25.0);
  for (double v : {30.0, 31.0, 29.0, 30.0}) f.update(v);
  // A 3-orders-of-magnitude spike must not surface.
  EXPECT_EQ(f.update(30000.0), 29.0);
}

TEST(MpFilter, TracksGenuineLatencyShift) {
  // After a route change, the output converges within `history` samples.
  MovingPercentileFilter f(4, 25.0);
  for (int i = 0; i < 8; ++i) f.update(30.0);
  std::optional<double> out;
  for (int i = 0; i < 4; ++i) out = f.update(90.0);
  EXPECT_EQ(out, 90.0);
}

TEST(MpFilter, MinSamplesWithholdsOutput) {
  // Sec. VI first-sample pathology: a filter primed with min_samples = 2
  // absorbs an extreme first observation.
  MovingPercentileFilter f(4, 25.0, 2);
  EXPECT_EQ(f.update(25000.0), std::nullopt);
  EXPECT_EQ(f.estimate(), std::nullopt);
  EXPECT_EQ(f.update(40.0), 40.0);
}

TEST(MpFilter, MedianPercentile) {
  MovingPercentileFilter f(5, 50.0);
  for (double v : {10.0, 20.0, 30.0, 40.0, 50.0}) f.update(v);
  EXPECT_EQ(f.estimate(), 30.0);
}

TEST(MpFilter, HistoryOneIsPassThrough) {
  MovingPercentileFilter f(1, 25.0);
  EXPECT_EQ(f.update(5.0), 5.0);
  EXPECT_EQ(f.update(7.0), 7.0);
}

TEST(MpFilter, ResetClearsWindow) {
  MovingPercentileFilter f(4, 25.0, 2);
  f.update(1.0);
  f.update(2.0);
  f.reset();
  EXPECT_EQ(f.estimate(), std::nullopt);
  EXPECT_EQ(f.size(), 0);
}

TEST(MpFilter, CloneIsFreshWithSameParameters) {
  MovingPercentileFilter f(8, 30.0, 3);
  f.update(1.0);
  const auto c = f.clone();
  auto* mp = dynamic_cast<MovingPercentileFilter*>(c.get());
  ASSERT_NE(mp, nullptr);
  EXPECT_EQ(mp->history(), 8);
  EXPECT_EQ(mp->percentile(), 30.0);
  EXPECT_EQ(mp->min_samples(), 3);
  EXPECT_EQ(mp->size(), 0);  // fresh history
}

TEST(MpFilter, HistoryOneEvictionStaysConsistent) {
  // With history == 1 every update after the first takes the eviction path
  // with head_ == 0 and window_.size() == 1; the sorted view must track the
  // single-element window exactly, including repeated values.
  MovingPercentileFilter f(1, 50.0);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const double x = (i % 3 == 0) ? 42.0 : rng.lognormal(3.5, 1.0);
    ASSERT_EQ(f.update(x), x) << "i=" << i;
    ASSERT_EQ(f.size(), 1);
    ASSERT_EQ(f.estimate(), x);
  }
}

TEST(MpFilter, ResetAfterFullWindowRefillsFromScratch) {
  // reset() must rewind the ring head as well as the contents: after a reset
  // the refill goes through the append path again and percentiles are over
  // the new samples only.
  MovingPercentileFilter f(3, 0.0);
  for (double v : {10.0, 20.0, 30.0, 40.0, 50.0}) f.update(v);  // head_ != 0
  f.reset();
  EXPECT_EQ(f.size(), 0);
  EXPECT_EQ(f.update(100.0), 100.0);  // old minimum must not resurface
  EXPECT_EQ(f.update(200.0), 100.0);
  EXPECT_EQ(f.update(90.0), 90.0);
  EXPECT_EQ(f.update(300.0), 90.0);  // eviction path sound after refill
}

TEST(MpFilter, MinSamplesReArmsAfterReset) {
  // The Sec. VI first-sample guard must apply again after reset(), not just
  // on the first-ever sample.
  MovingPercentileFilter f(4, 25.0, 2);
  f.update(30.0);
  f.update(31.0);
  f.reset();
  EXPECT_EQ(f.update(25000.0), std::nullopt);  // withheld again
  EXPECT_EQ(f.update(40.0), 40.0);
}

TEST(MpFilter, DuplicateValuesEvictCorrectly) {
  MovingPercentileFilter f(3, 0.0);  // minimum of last 3
  f.update(5.0);
  f.update(5.0);
  f.update(5.0);
  EXPECT_EQ(f.update(9.0), 5.0);  // {5,5,9}
  EXPECT_EQ(f.update(9.0), 5.0);  // {5,9,9}
  EXPECT_EQ(f.update(9.0), 9.0);  // {9,9,9}
}

// Property: against a brute-force sliding window for any (h, p).
class MpFilterProperty
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(MpFilterProperty, MatchesBruteForceWindow) {
  const auto [h, p] = GetParam();
  Rng rng(hash_combine(static_cast<std::uint64_t>(h), static_cast<std::uint64_t>(p)));
  MovingPercentileFilter f(h, p);
  std::deque<double> window;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.lognormal(3.5, 1.0);
    window.push_back(x);
    if (static_cast<int>(window.size()) > h) window.pop_front();
    std::vector<double> sorted(window.begin(), window.end());
    std::sort(sorted.begin(), sorted.end());
    const double expected = stats::percentile_nearest_rank_sorted(sorted, p);
    ASSERT_EQ(f.update(x), expected) << "h=" << h << " p=" << p << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MpFilterProperty,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 16, 64),
                       ::testing::Values(0.0, 25.0, 50.0, 75.0, 100.0)));

// ----------------------------------------------------------------- EWMA --

TEST(EwmaFilter, RejectsBadAlpha) {
  EXPECT_THROW(EwmaFilter(0.0), CheckError);
  EXPECT_THROW(EwmaFilter(1.5), CheckError);
}

TEST(EwmaFilter, FirstSamplePrimes) {
  EwmaFilter f(0.1);
  EXPECT_EQ(f.estimate(), std::nullopt);
  EXPECT_EQ(f.update(50.0), 50.0);
}

TEST(EwmaFilter, ExponentialSmoothing) {
  EwmaFilter f(0.25);
  f.update(100.0);
  EXPECT_EQ(f.update(200.0), 0.25 * 200.0 + 0.75 * 100.0);
}

TEST(EwmaFilter, OutlierPollutesForManySamples) {
  // The paper's Table I pathology: one spike lifts the estimate for ~1/alpha
  // samples.
  EwmaFilter f(0.2);
  for (int i = 0; i < 50; ++i) f.update(30.0);
  f.update(3000.0);
  EXPECT_GT(*f.estimate(), 600.0);
  std::optional<double> v;
  for (int i = 0; i < 5; ++i) v = f.update(30.0);
  EXPECT_GT(*v, 200.0);  // still badly polluted five samples later
}

TEST(EwmaFilter, ResetAndClone) {
  EwmaFilter f(0.3);
  f.update(10.0);
  f.reset();
  EXPECT_EQ(f.estimate(), std::nullopt);
  const auto c = f.clone();
  EXPECT_EQ(dynamic_cast<EwmaFilter*>(c.get())->alpha(), 0.3);
}

// ------------------------------------------------------------ Threshold --

TEST(ThresholdFilter, RejectsBadCutoff) {
  EXPECT_THROW(ThresholdFilter(0.0), CheckError);
}

TEST(ThresholdFilter, DropsAboveCutoff) {
  ThresholdFilter f(1000.0);
  EXPECT_EQ(f.update(999.0), 999.0);
  EXPECT_EQ(f.update(1000.0), 1000.0);  // at cutoff passes
  EXPECT_EQ(f.update(1001.0), std::nullopt);
  EXPECT_EQ(f.estimate(), 1000.0);  // last accepted
}

TEST(ThresholdFilter, CannotAdaptToLinkScale) {
  // A global 1000 ms cutoff does nothing for a 30 ms link whose outliers
  // are 300 ms (the paper's argument against thresholds).
  ThresholdFilter f(1000.0);
  EXPECT_EQ(f.update(30.0), 30.0);
  EXPECT_EQ(f.update(300.0), 300.0);  // 10x outlier passes untouched
}

// ------------------------------------------------------------- Identity --

TEST(IdentityFilter, PassThrough) {
  IdentityFilter f;
  EXPECT_EQ(f.estimate(), std::nullopt);
  EXPECT_EQ(f.update(123.0), 123.0);
  EXPECT_EQ(f.estimate(), 123.0);
  f.reset();
  EXPECT_EQ(f.estimate(), std::nullopt);
}

// --------------------------------------------------------------- Config --

TEST(FilterConfig, FactoryProducesConfiguredKind) {
  EXPECT_NE(dynamic_cast<IdentityFilter*>(FilterConfig::none().make().get()), nullptr);
  EXPECT_NE(dynamic_cast<MovingPercentileFilter*>(
                FilterConfig::moving_percentile(4, 25).make().get()),
            nullptr);
  EXPECT_NE(dynamic_cast<EwmaFilter*>(FilterConfig::ewma(0.1).make().get()), nullptr);
  EXPECT_NE(dynamic_cast<ThresholdFilter*>(FilterConfig::threshold(500).make().get()),
            nullptr);
}

TEST(FilterConfig, DefaultIsPaperMp425) {
  const FilterConfig c;
  auto f = c.make();
  auto* mp = dynamic_cast<MovingPercentileFilter*>(f.get());
  ASSERT_NE(mp, nullptr);
  EXPECT_EQ(mp->history(), 4);
  EXPECT_EQ(mp->percentile(), 25.0);
}

TEST(FilterConfig, Names) {
  EXPECT_EQ(FilterConfig::none().name(), "none");
  EXPECT_EQ(FilterConfig::moving_percentile(4, 25).name(), "mp(h=4,p=25)");
  EXPECT_EQ(FilterConfig::ewma(0.1).name(), "ewma(a=0.1)");
  EXPECT_EQ(FilterConfig::threshold(1000).name(), "threshold(1000ms)");
}

}  // namespace
}  // namespace nc

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/heuristics/heuristic_config.hpp"
#include "core/heuristics/threshold_heuristics.hpp"

namespace nc {
namespace {

Coordinate at(double x, double y) { return Coordinate{Vec{x, y}}; }

UpdateContext ctx_of(const Coordinate& system, double now = 0.0) {
  return UpdateContext{system, nullptr, now};
}

// ----------------------------------------------------------------- ALWAYS --

TEST(AlwaysHeuristic, PublishesEveryChange) {
  AlwaysUpdateHeuristic h;
  Coordinate app = at(0, 0);
  EXPECT_TRUE(h.on_system_update(ctx_of(at(1, 0)), app));
  EXPECT_EQ(app, at(1, 0));
  // Unchanged system coordinate: no app change reported.
  EXPECT_FALSE(h.on_system_update(ctx_of(at(1, 0)), app));
}

// ----------------------------------------------------------------- SYSTEM --

TEST(SystemHeuristic, RejectsBadThreshold) {
  EXPECT_THROW(SystemHeuristic(0.0), CheckError);
}

TEST(SystemHeuristic, FiresOnLargeStep) {
  SystemHeuristic h(5.0);
  Coordinate app = at(0, 0);
  EXPECT_FALSE(h.on_system_update(ctx_of(at(0, 0)), app));  // primes prev
  EXPECT_FALSE(h.on_system_update(ctx_of(at(3, 0)), app));  // step 3 < 5
  EXPECT_TRUE(h.on_system_update(ctx_of(at(20, 0)), app));  // step 17 > 5
  EXPECT_EQ(app, at(20, 0));
}

TEST(SystemHeuristic, PathologicalSubThresholdDriftNeverFires) {
  // The paper's criticism: many steps just under tau accumulate into a large
  // total drift without a single update.
  SystemHeuristic h(5.0);
  Coordinate app = at(0, 0);
  Coordinate sys = at(0, 0);
  h.on_system_update(ctx_of(sys), app);
  for (int i = 1; i <= 50; ++i) {
    sys = at(4.0 * i, 0.0);  // each step 4 < 5
    EXPECT_FALSE(h.on_system_update(ctx_of(sys), app));
  }
  EXPECT_EQ(app, at(0, 0));                      // app never updated...
  EXPECT_GT(sys.displacement_from(app), 190.0);  // ...despite 200 ms drift
}

TEST(SystemHeuristic, ResetForgetsPrevious) {
  SystemHeuristic h(5.0);
  Coordinate app = at(0, 0);
  h.on_system_update(ctx_of(at(0, 0)), app);
  h.reset();
  // First update after reset only primes again.
  EXPECT_FALSE(h.on_system_update(ctx_of(at(100, 0)), app));
}

// ------------------------------------------------------------ APPLICATION --

TEST(ApplicationHeuristic, FiresOnDriftFromApp) {
  ApplicationHeuristic h(5.0);
  Coordinate app = at(0, 0);
  EXPECT_FALSE(h.on_system_update(ctx_of(at(4, 0)), app));
  EXPECT_TRUE(h.on_system_update(ctx_of(at(6, 0)), app));
  EXPECT_EQ(app, at(6, 0));
}

TEST(ApplicationHeuristic, CatchesSlowDriftUnlikeSystem) {
  // Accumulated drift eventually exceeds tau relative to the app coordinate.
  ApplicationHeuristic h(5.0);
  Coordinate app = at(0, 0);
  int updates = 0;
  for (int i = 1; i <= 10; ++i)
    if (h.on_system_update(ctx_of(at(1.0 * i, 0.0)), app)) ++updates;
  EXPECT_EQ(updates, 1);
  EXPECT_EQ(app, at(6, 0));
}

TEST(ApplicationHeuristic, OscillationBelowTauSuppressed) {
  ApplicationHeuristic h(5.0);
  Coordinate app = at(0, 0);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(h.on_system_update(ctx_of(at(i % 2 ? 4.0 : -4.0, 0.0)), app));
  }
  EXPECT_EQ(app, at(0, 0));
}

// --------------------------------------------------- APPLICATION/CENTROID --

TEST(ApplicationCentroidHeuristic, PublishesWindowCentroid) {
  ApplicationCentroidHeuristic h(5.0, 4);
  Coordinate app = at(0, 0);
  EXPECT_FALSE(h.on_system_update(ctx_of(at(2, 0)), app));
  EXPECT_FALSE(h.on_system_update(ctx_of(at(4, 0)), app));
  EXPECT_TRUE(h.on_system_update(ctx_of(at(6, 0)), app));
  // Centroid of {2, 4, 6} on the x axis.
  EXPECT_NEAR(app.position()[0], 4.0, 1e-12);
  EXPECT_EQ(app.position()[1], 0.0);
}

TEST(ApplicationCentroidHeuristic, WindowSlides) {
  ApplicationCentroidHeuristic h(1.0, 2);
  Coordinate app = at(0, 0);
  h.on_system_update(ctx_of(at(10, 0)), app);  // fires; window {10}
  h.on_system_update(ctx_of(at(20, 0)), app);  // window {10,20}
  h.on_system_update(ctx_of(at(30, 0)), app);  // window {20,30}
  EXPECT_NEAR(app.position()[0], 25.0, 1e-12);
}

TEST(ApplicationCentroidHeuristic, RejectsBadParams) {
  EXPECT_THROW(ApplicationCentroidHeuristic(0.0, 4), CheckError);
  EXPECT_THROW(ApplicationCentroidHeuristic(1.0, 0), CheckError);
}

// ----------------------------------------------------------------- Config --

TEST(HeuristicConfig, FactoriesProduceConfiguredKinds) {
  EXPECT_EQ(HeuristicConfig::always().kind, HeuristicKind::kAlways);
  EXPECT_EQ(HeuristicConfig::system(4).kind, HeuristicKind::kSystem);
  EXPECT_EQ(HeuristicConfig::application(4).kind, HeuristicKind::kApplication);
  EXPECT_EQ(HeuristicConfig::application_centroid(4, 32).kind,
            HeuristicKind::kApplicationCentroid);
  EXPECT_EQ(HeuristicConfig::relative(0.3, 32).kind, HeuristicKind::kRelative);
  EXPECT_EQ(HeuristicConfig::energy(8, 32).kind, HeuristicKind::kEnergy);
  for (const auto& cfg :
       {HeuristicConfig::always(), HeuristicConfig::system(4),
        HeuristicConfig::application(4), HeuristicConfig::application_centroid(4, 8),
        HeuristicConfig::relative(0.3, 8), HeuristicConfig::energy(8, 8)}) {
    EXPECT_NE(cfg.make(), nullptr);
  }
}

TEST(HeuristicConfig, Names) {
  EXPECT_EQ(HeuristicConfig::always().name(), "always");
  EXPECT_EQ(HeuristicConfig::system(4).name(), "system(tau=4)");
  EXPECT_EQ(HeuristicConfig::energy(8, 32).name(), "energy(tau=8,k=32)");
  EXPECT_EQ(HeuristicConfig::relative(0.3, 32).name(), "relative(eps=0.3,k=32)");
}

TEST(HeuristicConfig, DefaultIsPaperEnergy) {
  const HeuristicConfig c;
  EXPECT_EQ(c.kind, HeuristicKind::kEnergy);
  EXPECT_EQ(c.threshold, 8.0);
  EXPECT_EQ(c.window, 32);
}

TEST(Heuristics, CloneIsIndependent) {
  SystemHeuristic h(5.0);
  Coordinate app = at(0, 0);
  h.on_system_update(ctx_of(at(0, 0)), app);  // primes prev
  const auto c = h.clone();
  Coordinate app2 = at(0, 0);
  // The clone has no previous coordinate: first call only primes.
  EXPECT_FALSE(c->on_system_update(ctx_of(at(100, 0)), app2));
  // The original does fire on the same step.
  EXPECT_TRUE(h.on_system_update(ctx_of(at(100, 0)), app));
}

}  // namespace
}  // namespace nc

#include "core/wire.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "common/check.hpp"

namespace nc {
namespace {

TEST(Wire, RoundTripPlainCoordinate) {
  const Coordinate c{Vec{10.5, -3.25, 99.0}};
  const auto bytes = encode_state(c, 0.42);
  EXPECT_EQ(bytes.size(), encoded_size(3, false));
  const auto decoded = decode_state(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->coordinate, c);
  EXPECT_NEAR(decoded->error_estimate, 0.42, 1e-7);
}

TEST(Wire, RoundTripWithHeight) {
  const Coordinate c{Vec{1.0, 2.0}, 7.5};
  const auto bytes = encode_state(c, 1.0);
  EXPECT_EQ(bytes.size(), encoded_size(2, true));
  const auto decoded = decode_state(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->coordinate.has_height());
  EXPECT_EQ(decoded->coordinate.height(), 7.5);
}

TEST(Wire, RoundTripAllDimensions) {
  for (int dim = 1; dim <= kMaxDim; ++dim) {
    Vec v(dim);
    for (int i = 0; i < dim; ++i) v[i] = static_cast<double>(i) - 2.5;
    const auto bytes = encode_state(Coordinate{v}, 0.0);
    const auto decoded = decode_state(bytes);
    ASSERT_TRUE(decoded.has_value()) << "dim " << dim;
    EXPECT_EQ(decoded->coordinate.dim(), dim);
  }
}

TEST(Wire, PaperConfigurationIs19Bytes) {
  // 3-D, no height: 3 header bytes + 3 * 4 position + 4 error.
  EXPECT_EQ(encoded_size(3, false), 19u);
}

TEST(Wire, EncodeRejectsBadInputs) {
  EXPECT_THROW((void)encode_state(Coordinate{}, 0.5), CheckError);
  EXPECT_THROW((void)encode_state(Coordinate{Vec{1.0}}, 1.5), CheckError);
  EXPECT_THROW((void)encode_state(Coordinate{Vec{1.0}}, -0.1), CheckError);
}

TEST(Wire, DecodeRejectsTruncation) {
  const auto bytes = encode_state(Coordinate{Vec{1.0, 2.0, 3.0}}, 0.5);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_EQ(decode_state(std::span(bytes.data(), len)), std::nullopt)
        << "length " << len;
  }
}

TEST(Wire, DecodeRejectsTrailingGarbage) {
  auto bytes = encode_state(Coordinate{Vec{1.0}}, 0.5);
  bytes.push_back(0);
  EXPECT_EQ(decode_state(bytes), std::nullopt);
}

TEST(Wire, DecodeRejectsWrongVersion) {
  auto bytes = encode_state(Coordinate{Vec{1.0}}, 0.5);
  bytes[0] = kWireVersion + 1;
  EXPECT_EQ(decode_state(bytes), std::nullopt);
}

TEST(Wire, DecodeRejectsUnknownFlags) {
  auto bytes = encode_state(Coordinate{Vec{1.0}}, 0.5);
  bytes[1] = 0x80;
  EXPECT_EQ(decode_state(bytes), std::nullopt);
}

TEST(Wire, DecodeRejectsBadDimension) {
  auto bytes = encode_state(Coordinate{Vec{1.0}}, 0.5);
  bytes[2] = 0;
  EXPECT_EQ(decode_state(bytes), std::nullopt);
  bytes[2] = kMaxDim + 1;
  EXPECT_EQ(decode_state(bytes), std::nullopt);
}

TEST(Wire, DecodeRejectsNonFiniteComponents) {
  auto bytes = encode_state(Coordinate{Vec{1.0, 2.0}}, 0.5);
  const float nan = std::numeric_limits<float>::quiet_NaN();
  std::memcpy(bytes.data() + 3, &nan, 4);  // first component
  EXPECT_EQ(decode_state(bytes), std::nullopt);

  auto bytes2 = encode_state(Coordinate{Vec{1.0, 2.0}}, 0.5);
  const float inf = std::numeric_limits<float>::infinity();
  std::memcpy(bytes2.data() + 7, &inf, 4);  // second component
  EXPECT_EQ(decode_state(bytes2), std::nullopt);
}

TEST(Wire, DecodeRejectsBadErrorEstimate) {
  auto bytes = encode_state(Coordinate{Vec{1.0}}, 0.5);
  const float bad = 1.5f;
  std::memcpy(bytes.data() + bytes.size() - 4, &bad, 4);
  EXPECT_EQ(decode_state(bytes), std::nullopt);
}

TEST(Wire, DecodeRejectsNegativeHeight) {
  auto bytes = encode_state(Coordinate{Vec{1.0}, 2.0}, 0.5);
  const float bad = -1.0f;
  std::memcpy(bytes.data() + 3 + 4, &bad, 4);  // height slot
  EXPECT_EQ(decode_state(bytes), std::nullopt);
}

TEST(Wire, EmptyInputRejected) {
  EXPECT_EQ(decode_state({}), std::nullopt);
}

}  // namespace
}  // namespace nc

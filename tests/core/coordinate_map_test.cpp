#include "core/coordinate_map.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace nc {
namespace {

Coordinate at(double x, double y) { return Coordinate{Vec{x, y}}; }

TEST(CoordinateMap, EmptyBehaviour) {
  const CoordinateMap m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.get(1, 0.0), std::nullopt);
  EXPECT_EQ(m.estimate_rtt(1, 2, 0.0), std::nullopt);
  EXPECT_TRUE(m.nearest(at(0, 0), 3, 0.0).empty());
}

TEST(CoordinateMap, UpdateAndGet) {
  CoordinateMap m;
  m.update(7, at(1, 2), 10.0);
  EXPECT_EQ(m.size(), 1u);
  const auto c = m.get(7, 11.0);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, at(1, 2));
  m.update(7, at(3, 4), 12.0);  // refresh overwrites
  EXPECT_EQ(*m.get(7, 12.0), at(3, 4));
  EXPECT_EQ(m.size(), 1u);
}

TEST(CoordinateMap, RejectsBadInputs) {
  CoordinateMap m;
  EXPECT_THROW(m.update(kInvalidNode, at(0, 0), 0.0), CheckError);
  EXPECT_THROW(m.update(1, Coordinate{}, 0.0), CheckError);
  EXPECT_THROW((void)m.nearest(at(0, 0), 0, 0.0), CheckError);
}

TEST(CoordinateMap, StalenessFiltersGets) {
  CoordinateMap m;
  m.update(1, at(0, 0), 100.0);
  EXPECT_TRUE(m.get(1, 130.0, 30.0).has_value());
  EXPECT_FALSE(m.get(1, 131.0, 30.0).has_value());
}

TEST(CoordinateMap, EstimateRtt) {
  CoordinateMap m;
  m.update(1, at(0, 0), 0.0);
  m.update(2, at(3, 4), 0.0);
  const auto rtt = m.estimate_rtt(1, 2, 1.0);
  ASSERT_TRUE(rtt.has_value());
  EXPECT_EQ(*rtt, 5.0);
  EXPECT_EQ(m.estimate_rtt(1, 9, 1.0), std::nullopt);
}

TEST(CoordinateMap, NearestOrdersAscending) {
  CoordinateMap m;
  m.update(1, at(10, 0), 0.0);
  m.update(2, at(1, 0), 0.0);
  m.update(3, at(5, 0), 0.0);
  const auto nn = m.nearest(at(0, 0), 2, 1.0);
  ASSERT_EQ(nn.size(), 2u);
  EXPECT_EQ(nn[0].id, 2);
  EXPECT_EQ(nn[0].distance_ms, 1.0);
  EXPECT_EQ(nn[1].id, 3);
}

TEST(CoordinateMap, NearestRespectsExcludeAndAge) {
  CoordinateMap m;
  m.update(1, at(1, 0), 0.0);
  m.update(2, at(2, 0), 100.0);
  const auto nn = m.nearest(at(0, 0), 5, 101.0, /*max_age_s=*/50.0);
  ASSERT_EQ(nn.size(), 1u);  // node 1 is stale
  EXPECT_EQ(nn[0].id, 2);
  const auto excl = m.nearest(at(0, 0), 5, 101.0, 1e18, /*exclude=*/2);
  ASSERT_EQ(excl.size(), 1u);
  EXPECT_EQ(excl[0].id, 1);
}

TEST(CoordinateMap, NearestKLargerThanMap) {
  CoordinateMap m;
  m.update(1, at(1, 0), 0.0);
  EXPECT_EQ(m.nearest(at(0, 0), 10, 1.0).size(), 1u);
}

TEST(CoordinateMap, NearestDeterministicTieBreak) {
  CoordinateMap m;
  m.update(5, at(1, 0), 0.0);
  m.update(3, at(-1, 0), 0.0);  // same distance from origin
  const auto nn = m.nearest(at(0, 0), 2, 1.0);
  ASSERT_EQ(nn.size(), 2u);
  EXPECT_EQ(nn[0].id, 3);  // lower id wins ties
}

TEST(CoordinateMap, RemoveAndExpire) {
  CoordinateMap m;
  m.update(1, at(0, 0), 10.0);
  m.update(2, at(0, 0), 20.0);
  m.update(3, at(0, 0), 30.0);
  m.remove(2);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.expire_older_than(25.0), 1u);  // drops node 1
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.get(3, 31.0).has_value());
}

TEST(CoordinateMap, WorksWithHeightCoordinates) {
  CoordinateMap m;
  m.update(1, Coordinate{Vec{0.0, 0.0}, 2.0}, 0.0);
  m.update(2, Coordinate{Vec{3.0, 4.0}, 1.0}, 0.0);
  const auto rtt = m.estimate_rtt(1, 2, 1.0);
  ASSERT_TRUE(rtt.has_value());
  EXPECT_EQ(*rtt, 8.0);  // 5 + 2 + 1
}

}  // namespace
}  // namespace nc

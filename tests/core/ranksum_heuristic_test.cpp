#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/heuristics/heuristic_config.hpp"
#include "core/heuristics/windowed_heuristics.hpp"

namespace nc {
namespace {

Coordinate at(double x, double y) { return Coordinate{Vec{x, y}}; }

TEST(RankSumHeuristic, RejectsBadAlpha) {
  EXPECT_THROW(RankSumHeuristic(0.0, 16), CheckError);
  EXPECT_THROW(RankSumHeuristic(1.0, 16), CheckError);
}

TEST(RankSumHeuristic, StableStreamRarelyFires) {
  RankSumHeuristic h(0.01, 16);
  Coordinate app = at(0, 0);
  Rng rng(71);
  int fires = 0;
  for (int i = 0; i < 600; ++i) {
    if (h.on_system_update(
            {at(20.0 + rng.normal(0.0, 0.4), rng.normal(0.0, 0.4)), nullptr, 0.0},
            app))
      ++fires;
  }
  // At alpha = 1% a false positive every ~100 armed tests is expected noise;
  // much more than that means the test statistic is broken.
  EXPECT_LE(fires, 12);
}

TEST(RankSumHeuristic, DetectsRadialShift) {
  RankSumHeuristic h(0.01, 16);
  Coordinate app = at(0, 0);
  Rng rng(72);
  for (int i = 0; i < 48; ++i) {
    h.on_system_update({at(rng.normal(0.0, 0.3), rng.normal(0.0, 0.3)), nullptr, 0.0},
                       app);
  }
  bool fired = false;
  int steps = 0;
  for (; steps < 40 && !fired; ++steps) {
    fired = h.on_system_update(
        {at(15.0 + rng.normal(0.0, 0.3), rng.normal(0.0, 0.3)), nullptr, 0.0}, app);
  }
  ASSERT_TRUE(fired);
  EXPECT_GT(app.position()[0], 1.0);  // centroid published
}

TEST(RankSumHeuristic, BlindSpotConstantDistanceRing) {
  // Construct the exact blind spot: the start window alternates between
  // (10, 0) and (-10, 0), so C(W_s) = (0, 0) and every element sits at
  // distance 10. The stream then moves to alternating (0, 10) / (0, -10):
  // still distance 10 from C(W_s) — rank-sum sees identical distributions
  // while the energy distance between the windows is large.
  const int k = 16;
  RankSumHeuristic ranksum(0.05, k);
  EnergyHeuristic energy(8.0, k);
  Coordinate app_r = at(0, 0);
  Coordinate app_e = at(0, 0);
  int ranksum_fires = 0;
  int energy_fires = 0;
  for (int i = 0; i < k; ++i) {
    const Coordinate c = at(i % 2 == 0 ? 10.0 : -10.0, 0.0);
    ranksum.on_system_update({c, nullptr, 0.0}, app_r);
    energy.on_system_update({c, nullptr, 0.0}, app_e);
  }
  for (int i = 0; i < 3 * k; ++i) {
    const Coordinate c = at(0.0, i % 2 == 0 ? 10.0 : -10.0);
    if (ranksum.on_system_update({c, nullptr, 0.0}, app_r)) ++ranksum_fires;
    if (energy.on_system_update({c, nullptr, 0.0}, app_e)) ++energy_fires;
  }
  EXPECT_EQ(ranksum_fires, 0);  // blind: distances unchanged
  EXPECT_GE(energy_fires, 1);   // energy sees the rotation
}

TEST(RankSumHeuristic, ConfigFactory) {
  const auto cfg = HeuristicConfig::rank_sum(0.01, 32);
  EXPECT_EQ(cfg.kind, HeuristicKind::kRankSum);
  EXPECT_EQ(cfg.name(), "ranksum(a=0.01,k=32)");
  EXPECT_NE(cfg.make(), nullptr);
}

TEST(RankSumHeuristic, CloneStartsFresh) {
  RankSumHeuristic h(0.01, 8);
  Coordinate app = at(0, 0);
  for (int i = 0; i < 8; ++i) h.on_system_update({at(1, 1), nullptr, 0.0}, app);
  EXPECT_TRUE(h.armed());
  const auto c = h.clone();
  EXPECT_FALSE(dynamic_cast<RankSumHeuristic*>(c.get())->armed());
}

}  // namespace
}  // namespace nc

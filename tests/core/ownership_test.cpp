// OwnershipMap + plan_rebalance: the deterministic decision function behind
// dynamic shard ownership (DESIGN.md Sec. 14). The engine-level guarantees
// (bit-identical metrics across migrations) live in tests/sim/rebalance_test.
#include "core/ownership.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace nc {
namespace {

TEST(OwnershipMap, SeedsFromTheStaticBlockPartition) {
  const int n = 37, shards = 4;
  const OwnershipMap map(n, shards);
  EXPECT_EQ(map.num_nodes(), n);
  EXPECT_EQ(map.shards(), shards);
  for (NodeId id = 0; id < n; ++id)
    EXPECT_EQ(map.owner(id), shard_of_node(id, n, shards));
}

TEST(OwnershipMap, ApplyMovesExactlyTheNamedNodes) {
  OwnershipMap map(10, 2);
  map.apply({{7, map.owner(7), 0}, {2, map.owner(2), 1}});
  EXPECT_EQ(map.owner(7), 0);
  EXPECT_EQ(map.owner(2), 1);
  for (NodeId id = 0; id < 10; ++id) {
    if (id != 7 && id != 2) {
      EXPECT_EQ(map.owner(id), shard_of_node(id, 10, 2));
    }
  }
}

TEST(PlanRebalance, BalancedLoadPlansNothing) {
  const OwnershipMap map(8, 2);  // 4 nodes per shard
  const std::vector<std::uint32_t> w(8, 5);
  EXPECT_TRUE(plan_rebalance(map, w, {}, 16).empty());
}

TEST(PlanRebalance, SingleShardOrZeroBudgetPlansNothing) {
  const std::vector<std::uint32_t> w(8, 100);
  EXPECT_TRUE(plan_rebalance(OwnershipMap(8, 1), w, {}, 16).empty());
  EXPECT_TRUE(plan_rebalance(OwnershipMap(8, 2), w, {}, 0).empty());
}

TEST(PlanRebalance, MovesHeaviestEligibleNodeTowardTheIdleShard) {
  // Shard 0 owns 0..3 (hot), shard 1 owns 4..7 (idle).
  OwnershipMap map(8, 2);
  std::vector<std::uint32_t> w = {10, 30, 20, 10, 0, 0, 0, 0};
  const auto plan = plan_rebalance(map, w, {}, 1);
  ASSERT_EQ(plan.size(), 1u);
  // gap = 70; the heaviest node with weight <= gap/2 is node 1 (30).
  EXPECT_EQ(plan[0].node, 1);
  EXPECT_EQ(plan[0].from, 0);
  EXPECT_EQ(plan[0].to, 1);
}

TEST(PlanRebalance, EveryMoveStrictlyNarrowsTheSpread) {
  OwnershipMap map(12, 3);
  std::vector<std::uint32_t> w = {9, 8, 7, 6, 1, 1, 0, 2, 0, 0, 1, 0};
  const auto plan = plan_rebalance(map, w, {}, 64);
  std::vector<std::int64_t> load(3, 0);
  for (NodeId id = 0; id < 12; ++id) load[map.owner(id)] += w[id];
  auto spread = [&] {
    return *std::max_element(load.begin(), load.end()) -
           *std::min_element(load.begin(), load.end());
  };
  std::int64_t prev = spread();
  OwnershipMap rolling = map;
  for (const RebalanceMove& m : plan) {
    EXPECT_EQ(rolling.owner(m.node), m.from);
    rolling.apply({m});
    load[m.from] -= w[m.node];
    load[m.to] += w[m.node];
    EXPECT_LT(spread(), prev);
    prev = spread();
  }
}

TEST(PlanRebalance, PinnedNodesNeverMove) {
  OwnershipMap map(8, 2);
  std::vector<std::uint32_t> w = {10, 30, 20, 10, 0, 0, 0, 0};
  std::vector<std::uint8_t> pinned(8, 0);
  pinned[1] = 1;  // the otherwise-best candidate
  const auto plan = plan_rebalance(map, w, pinned, 8);
  for (const RebalanceMove& m : plan) EXPECT_NE(m.node, 1);
  EXPECT_FALSE(plan.empty());  // others still rebalance
}

TEST(PlanRebalance, RespectsTheMoveBudget) {
  OwnershipMap map(16, 2);
  std::vector<std::uint32_t> w(16, 0);
  for (NodeId id = 0; id < 8; ++id) w[id] = 4;  // shard 0 hot
  EXPECT_LE(plan_rebalance(map, w, {}, 3).size(), 3u);
}

TEST(PlanRebalance, DeterministicAcrossRepeatedEvaluation) {
  // The engine evaluates the plan once per shard; the copies must agree.
  OwnershipMap map(24, 3);
  std::vector<std::uint32_t> w(24, 0);
  for (NodeId id = 0; id < 24; ++id)
    w[id] = static_cast<std::uint32_t>((id * 7 + 3) % 11);
  const auto a = plan_rebalance(map, w, {}, 8);
  const auto b = plan_rebalance(map, w, {}, 8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].from, b[i].from);
    EXPECT_EQ(a[i].to, b[i].to);
  }
}

TEST(PlanRebalance, ZeroWeightNodesAreNotWorthMoving) {
  // An idle node narrows nothing; the greedy loop must skip weight-0
  // candidates rather than burn budget on no-op moves.
  OwnershipMap map(8, 2);
  std::vector<std::uint32_t> w = {0, 0, 0, 40, 0, 0, 0, 0};
  const auto plan = plan_rebalance(map, w, {}, 8);
  // Node 3 (40) exceeds gap/2 = 20 and everything else is weightless.
  EXPECT_TRUE(plan.empty());
}

}  // namespace
}  // namespace nc

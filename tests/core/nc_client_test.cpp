#include "core/nc_client.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <unordered_map>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace nc {
namespace {

NCClientConfig basic_config() {
  NCClientConfig c;
  c.vivaldi.dim = 2;
  c.filter = FilterConfig::moving_percentile(4, 25.0);
  c.heuristic = HeuristicConfig::always();
  return c;
}

TEST(NCClient, RejectsSelfObservation) {
  NCClient c(1, basic_config());
  EXPECT_THROW(c.observe(1, Coordinate::origin(2), 1.0, 10.0, 0.0), CheckError);
}

TEST(NCClient, RejectsNonPositiveRtt) {
  NCClient c(1, basic_config());
  EXPECT_THROW(c.observe(2, Coordinate::origin(2), 1.0, 0.0, 0.0), CheckError);
}

TEST(NCClient, AppCoordinateSeededOnFirstUsableSample) {
  NCClient c(1, basic_config());
  const auto out = c.observe(2, Coordinate{Vec{50.0, 0.0}}, 0.5, 48.0, 0.0);
  EXPECT_TRUE(out.vivaldi_updated);
  EXPECT_TRUE(out.app_updated);
  EXPECT_EQ(c.application_coordinate(), c.system_coordinate());
  EXPECT_EQ(c.app_update_count(), 1u);
}

TEST(NCClient, FilterAbsorbsSamplesWhenNotPrimed) {
  NCClientConfig cfg = basic_config();
  cfg.filter = FilterConfig::moving_percentile(4, 25.0, /*min_samples=*/2);
  NCClient c(1, cfg);
  const auto out = c.observe(2, Coordinate{Vec{50.0, 0.0}}, 0.5, 30000.0, 0.0);
  EXPECT_FALSE(out.filtered_rtt_ms.has_value());
  EXPECT_FALSE(out.vivaldi_updated);
  EXPECT_FALSE(out.app_updated);
  EXPECT_EQ(c.absorbed_sample_count(), 1u);
  // Second sample primes the filter; MP(,25) of {30000, 40} is 40 — the
  // spike never reaches Vivaldi.
  const auto out2 = c.observe(2, Coordinate{Vec{50.0, 0.0}}, 0.5, 40.0, 1.0);
  ASSERT_TRUE(out2.filtered_rtt_ms.has_value());
  EXPECT_EQ(*out2.filtered_rtt_ms, 40.0);
}

TEST(NCClient, PerLinkFiltersAreIndependent) {
  NCClient c(1, basic_config());
  // Feed link 2 large values, link 3 small ones; each filter sees only its
  // own link's history.
  for (int i = 0; i < 4; ++i) {
    c.observe(2, Coordinate{Vec{100.0, 0.0}}, 0.5, 200.0 + i, static_cast<double>(i));
    c.observe(3, Coordinate{Vec{-10.0, 0.0}}, 0.5, 10.0 + i, static_cast<double>(i));
  }
  const auto out2 = c.observe(2, Coordinate{Vec{100.0, 0.0}}, 0.5, 500.0, 10.0);
  const auto out3 = c.observe(3, Coordinate{Vec{-10.0, 0.0}}, 0.5, 500.0, 10.0);
  EXPECT_EQ(*out2.filtered_rtt_ms, 201.0);  // min of {201,202,203,500}
  EXPECT_EQ(*out3.filtered_rtt_ms, 11.0);   // min of {11,12,13,500}
  EXPECT_EQ(c.tracked_link_count(), 2u);
}

TEST(NCClient, NearestNeighborTracksLowestFilteredRtt) {
  NCClient c(1, basic_config());
  c.observe(2, Coordinate{Vec{100.0, 0.0}}, 0.5, 100.0, 0.0);
  EXPECT_EQ(c.nearest_neighbor(), 2);
  c.observe(3, Coordinate{Vec{10.0, 0.0}}, 0.5, 12.0, 1.0);
  EXPECT_EQ(c.nearest_neighbor(), 3);
  EXPECT_EQ(c.nearest_rtt_ms(), 12.0);
  // A slower link does not displace the nearest.
  c.observe(4, Coordinate{Vec{50.0, 0.0}}, 0.5, 55.0, 2.0);
  EXPECT_EQ(c.nearest_neighbor(), 3);
}

TEST(NCClient, NearestRefreshedWhenReobserved) {
  NCClient c(1, basic_config());
  c.observe(3, Coordinate{Vec{10.0, 0.0}}, 0.5, 12.0, 0.0);
  // The nearest link got slower; re-observation refreshes its value.
  for (int i = 0; i < 4; ++i)
    c.observe(3, Coordinate{Vec{10.0, 0.0}}, 0.5, 80.0, 1.0 + i);
  EXPECT_EQ(c.nearest_neighbor(), 3);
  EXPECT_EQ(c.nearest_rtt_ms(), 80.0);
}

TEST(NCClient, LinkEvictionCapsState) {
  NCClientConfig cfg = basic_config();
  cfg.max_tracked_links = 8;
  NCClient c(0, cfg);
  for (NodeId id = 1; id <= 20; ++id)
    c.observe(id, Coordinate{Vec{10.0, 0.0}}, 0.5, 10.0, static_cast<double>(id));
  EXPECT_LE(c.tracked_link_count(), 8u);
  EXPECT_EQ(c.evicted_link_count(), 12u);
}

TEST(NCClient, UnboundedWhenCapIsZero) {
  NCClientConfig cfg = basic_config();
  cfg.max_tracked_links = 0;
  NCClient c(0, cfg);
  for (NodeId id = 1; id <= 50; ++id)
    c.observe(id, Coordinate{Vec{10.0, 0.0}}, 0.5, 10.0, static_cast<double>(id));
  EXPECT_EQ(c.tracked_link_count(), 50u);
  EXPECT_EQ(c.evicted_link_count(), 0u);
}

// Eviction-policy pin: the slab's clock-hand (second-chance) eviction must
// match an independently coded reference that replays the same recorded
// contact sequence. The reference mirrors the documented policy — slots
// claimed LIFO from the free list (else appended), every touch sets the
// slot's reference bit, the sweep clears set bits and evicts the first
// clear one, the hand persists across evictions — with its own map and
// fresh filters, so a slab bookkeeping bug (hand reset, ref bit dropped,
// free-list reuse order) diverges in filter outputs or eviction counts.
TEST(NCClient, SlabLinkStateMatchesClockHandReference) {
  NCClientConfig cfg = basic_config();
  cfg.filter = FilterConfig::moving_percentile(4, 25.0, /*min_samples=*/2);
  cfg.max_tracked_links = 6;  // small cap: plenty of evictions + re-contacts
  NCClient client(0, cfg);

  struct RefSlot {
    NodeId remote = kInvalidNode;  // kInvalidNode = parked
    bool referenced = false;
    std::unique_ptr<LatencyFilter> filter;
  };
  std::vector<RefSlot> slots;
  std::unordered_map<NodeId, std::size_t> slot_of;
  std::vector<std::size_t> free_slots;  // LIFO, like the slab's
  std::size_t hand = 0;
  std::size_t active = 0;
  std::uint64_t ref_evictions = 0;

  // A recorded observation sequence: 18 remotes cycling through a 6-slot
  // cap, pseudo-random RTTs, strictly increasing timestamps.
  Rng rng(1234);
  for (int i = 0; i < 600; ++i) {
    const auto remote = static_cast<NodeId>(1 + rng.uniform_int(18));
    const double rtt = 20.0 + rng.uniform(0.0, 200.0);
    const double now = static_cast<double>(i);

    auto it = slot_of.find(remote);
    std::size_t idx;
    if (it != slot_of.end()) {
      idx = it->second;
    } else {
      if (active >= cfg.max_tracked_links) {
        for (;;) {  // second-chance sweep from the persistent hand
          if (hand >= slots.size()) hand = 0;
          RefSlot& s = slots[hand++];
          if (s.remote == kInvalidNode) continue;
          if (s.referenced) {
            s.referenced = false;
            continue;
          }
          slot_of.erase(s.remote);
          s.remote = kInvalidNode;
          free_slots.push_back(hand - 1);
          --active;
          ++ref_evictions;
          break;
        }
      }
      if (!free_slots.empty()) {
        idx = free_slots.back();
        free_slots.pop_back();
      } else {
        slots.emplace_back();
        idx = slots.size() - 1;
      }
      slots[idx].remote = remote;
      slots[idx].filter = cfg.filter.make();
      slot_of[remote] = idx;
      ++active;
    }
    slots[idx].referenced = true;
    const std::optional<double> expected = slots[idx].filter->update(rtt);

    const auto out =
        client.observe(remote, Coordinate{Vec{50.0, 10.0}}, 0.5, rtt, now);
    ASSERT_EQ(out.filtered_rtt_ms, expected) << "observation " << i;
  }
  EXPECT_EQ(client.evicted_link_count(), ref_evictions);
  EXPECT_EQ(client.tracked_link_count(), active);
  EXPECT_GT(ref_evictions, 50u);  // the sequence actually exercised eviction
}

// Evicted slots park their filter in the pool; re-contact drains the pool
// instead of allocating. With the cap at 6 and 18 remotes churning, the
// slab settles at cap + a small pool — never one filter per remote ever
// seen.
TEST(NCClient, EvictedFiltersAreRecycledThroughThePool) {
  NCClientConfig cfg = basic_config();
  cfg.max_tracked_links = 6;
  NCClient c(0, cfg);
  for (int round = 0; round < 10; ++round)
    for (NodeId id = 1; id <= 18; ++id)
      c.observe(id, Coordinate{Vec{10.0, 0.0}}, 0.5, 10.0 + id,
                static_cast<double>(round * 18 + id));
  EXPECT_EQ(c.tracked_link_count(), 6u);
  // Active + pooled together bound the slab: at most cap + 1 instances were
  // ever created (one eviction happens before each over-cap claim, so the
  // pool never holds more than one parked filter here).
  EXPECT_LE(c.pooled_filter_count(), 1u);
  EXPECT_GT(c.evicted_link_count(), 100u);
}

// Index-equivalence pin (PR 7): the compact open-addressed slot index must
// be observationally identical to the dense remote->slot+1 array it
// replaced. The reference below IS the old dense path — a vector grown
// geometrically to the largest remote id, slot+1 stored, zeroed on eviction
// — wired to the same clock-hand/free-list bookkeeping as the slab. Any
// divergence (a lost entry, a stale slot surviving eviction, a wrong slot
// returned after backward-shift) shows up as a filter-output or
// eviction-count mismatch.
TEST(NCClient, CompactIndexMatchesDenseIndexReference) {
  NCClientConfig cfg = basic_config();
  cfg.filter = FilterConfig::moving_percentile(4, 25.0, /*min_samples=*/2);
  cfg.max_tracked_links = 16;
  NCClient client(0, cfg);

  struct RefSlot {
    NodeId remote = kInvalidNode;
    bool referenced = false;
    std::unique_ptr<LatencyFilter> filter;
  };
  std::vector<RefSlot> slots;
  std::vector<std::uint32_t> dense_slot_of;  // remote id -> slot + 1
  std::vector<std::size_t> free_slots;
  std::size_t hand = 0;
  std::size_t active = 0;
  std::uint64_t ref_evictions = 0;

  // Sparse ids across a wide range force plenty of hash collisions and
  // backward-shift chains in the compact table, while re-contact after
  // eviction exercises erase-then-reinsert of the same key.
  Rng rng(777);
  for (int i = 0; i < 4000; ++i) {
    const auto remote =
        static_cast<NodeId>(1 + (rng.uniform_int(48) * 100003) % 1000000);
    const double rtt = 20.0 + rng.uniform(0.0, 200.0);
    const double now = static_cast<double>(i);

    const auto rid = static_cast<std::size_t>(remote);
    if (rid >= dense_slot_of.size())
      dense_slot_of.resize(std::max(rid + 1, dense_slot_of.size() * 2), 0);
    std::size_t idx;
    if (dense_slot_of[rid] != 0) {
      idx = dense_slot_of[rid] - 1;
    } else {
      if (active >= cfg.max_tracked_links) {
        for (;;) {
          if (hand >= slots.size()) hand = 0;
          RefSlot& s = slots[hand++];
          if (s.remote == kInvalidNode) continue;
          if (s.referenced) {
            s.referenced = false;
            continue;
          }
          dense_slot_of[static_cast<std::size_t>(s.remote)] = 0;
          s.remote = kInvalidNode;
          free_slots.push_back(hand - 1);
          --active;
          ++ref_evictions;
          break;
        }
      }
      if (!free_slots.empty()) {
        idx = free_slots.back();
        free_slots.pop_back();
      } else {
        slots.emplace_back();
        idx = slots.size() - 1;
      }
      slots[idx].remote = remote;
      slots[idx].filter = cfg.filter.make();
      dense_slot_of[rid] = static_cast<std::uint32_t>(idx) + 1;
      ++active;
    }
    slots[idx].referenced = true;
    const std::optional<double> expected = slots[idx].filter->update(rtt);

    const auto out =
        client.observe(remote, Coordinate{Vec{50.0, 10.0}}, 0.5, rtt, now);
    ASSERT_EQ(out.filtered_rtt_ms, expected) << "observation " << i;
    ASSERT_EQ(client.evicted_link_count(), ref_evictions) << "observation " << i;
  }
  EXPECT_EQ(client.tracked_link_count(), active);
  EXPECT_GT(ref_evictions, 500u);  // churn actually hammered the index
}

// The O(n^2) -> O(n*k) win itself: per-client memory must depend on the
// link cap, never on the largest remote id seen. Under the old dense index
// the huge-id client below would carry ~4 MB of index alone.
TEST(NCClient, MemoryBoundedByTrackedLinksNotByRemoteIdRange) {
  NCClientConfig cfg = basic_config();
  cfg.max_tracked_links = 32;
  NCClient small_ids(0, cfg);
  NCClient huge_ids(0, cfg);
  for (int i = 0; i < 200; ++i) {
    const double t = static_cast<double>(i);
    small_ids.observe(static_cast<NodeId>(1 + i % 64),
                      Coordinate{Vec{10.0, 0.0}}, 0.5, 10.0, t);
    huge_ids.observe(static_cast<NodeId>(1000000 + (i % 64) * 15485863),
                     Coordinate{Vec{10.0, 0.0}}, 0.5, 10.0, t);
  }
  EXPECT_EQ(small_ids.tracked_link_count(), 32u);
  EXPECT_EQ(huge_ids.tracked_link_count(), 32u);
  // Same live-state shape => same memory, regardless of id magnitude.
  EXPECT_EQ(huge_ids.memory_bytes(), small_ids.memory_bytes());
  EXPECT_LT(huge_ids.memory_bytes(), 64u * 1024u);
}

TEST(NCClient, CountersAdvance) {
  NCClient c(1, basic_config());
  for (int i = 0; i < 10; ++i)
    c.observe(2, Coordinate{Vec{50.0, 0.0}}, 0.5, 50.0, static_cast<double>(i));
  EXPECT_EQ(c.observation_count(), 10u);
  EXPECT_GE(c.app_update_count(), 1u);
}

TEST(NCClient, TwoClientsConvergeThroughPublicApi) {
  NCClientConfig cfg = basic_config();
  NCClient a(1, cfg);
  NCClient b(2, cfg);
  for (int i = 0; i < 300; ++i) {
    const double t = static_cast<double>(i);
    a.observe(2, b.system_coordinate(), b.error_estimate(), 60.0, t);
    b.observe(1, a.system_coordinate(), a.error_estimate(), 60.0, t);
  }
  EXPECT_NEAR(a.system_coordinate().distance_to(b.system_coordinate()), 60.0, 3.0);
  EXPECT_GT(a.confidence(), 0.9);
}

TEST(NCClient, EnergyHeuristicSuppressesAppUpdatesOnStableStream) {
  NCClientConfig cfg = basic_config();
  cfg.heuristic = HeuristicConfig::energy(8.0, 16);
  NCClient a(1, cfg);
  NCClient b(2, cfg);
  Rng rng(61);
  for (int i = 0; i < 500; ++i) {
    const double t = static_cast<double>(i);
    const double rtt = 60.0 * rng.lognormal(0.0, 0.03);
    a.observe(2, b.system_coordinate(), b.error_estimate(), rtt, t);
    b.observe(1, a.system_coordinate(), a.error_estimate(), rtt, t);
  }
  // System coordinates keep jittering, application coordinates barely move.
  EXPECT_LT(a.app_update_count(), 20u);
  EXPECT_EQ(a.observation_count(), 500u);
}

TEST(NCClient, AppDisplacementReportedOnUpdate) {
  NCClientConfig cfg = basic_config();
  cfg.heuristic = HeuristicConfig::application(1.0);
  NCClient a(1, cfg);
  // The remote advertises (100, 0) but the measured RTT is only 50: the
  // spring is over-stretched, so the system coordinate keeps moving toward
  // the remote and the APPLICATION heuristic fires repeatedly.
  a.observe(2, Coordinate{Vec{100.0, 0.0}}, 0.1, 50.0, 0.0);
  double total_disp = 0.0;
  for (int i = 1; i < 50; ++i) {
    const auto out =
        a.observe(2, Coordinate{Vec{100.0, 0.0}}, 0.1, 50.0, static_cast<double>(i));
    if (out.app_updated) {
      EXPECT_GT(out.app_displacement_ms, 1.0);  // tau
      total_disp += out.app_displacement_ms;
    }
  }
  EXPECT_GT(total_disp, 0.0);
}

}  // namespace
}  // namespace nc

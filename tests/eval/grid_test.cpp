#include "eval/grid.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "common/check.hpp"

namespace nc::eval {
namespace {

ScenarioSpec small_spec(std::uint64_t seed) {
  ScenarioSpec s;
  s.workload.num_nodes = 10;
  s.workload.duration_s = 600.0;
  s.workload.seed = seed;
  return s;
}

// The acceptance property of the grid: results are a pure function of the
// spec vector, independent of the worker count.
TEST(ExperimentGrid, JobsOneAndFourAreBitIdentical) {
  std::vector<ScenarioSpec> specs;
  specs.push_back(small_spec(31));
  specs[0].client.filter = FilterConfig::moving_percentile(4, 25);
  specs.push_back(small_spec(31));
  specs[1].client.filter = FilterConfig::none();
  specs.push_back(small_spec(32));
  specs[2].client.heuristic = HeuristicConfig::energy(8.0, 32);
  specs.push_back(small_spec(33));
  specs[3].mode = SimMode::kOnline;
  specs[3].workload.ping_interval_s = 2.0;

  const auto serial = ExperimentGrid(1).run(specs);
  const auto parallel = ExperimentGrid(4).run(specs);

  ASSERT_EQ(serial.size(), specs.size());
  ASSERT_EQ(parallel.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& a = serial[i];
    const auto& b = parallel[i];
    EXPECT_EQ(a.records, b.records);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.absorbed, b.absorbed);
    EXPECT_EQ(a.pings_sent, b.pings_sent);
    EXPECT_EQ(a.pings_lost, b.pings_lost);
    EXPECT_EQ(a.metrics.observation_count(), b.metrics.observation_count());
    EXPECT_EQ(a.metrics.total_app_updates(), b.metrics.total_app_updates());
    // Bit-identical summary statistics (exact double equality intended).
    EXPECT_EQ(a.metrics.median_relative_error(), b.metrics.median_relative_error());
    EXPECT_EQ(a.metrics.mean_instability_ms_per_s(),
              b.metrics.mean_instability_ms_per_s());
    EXPECT_EQ(a.metrics.median_instability_ms_per_s(),
              b.metrics.median_instability_ms_per_s());
    EXPECT_EQ(a.metrics.per_node_median_error().median(),
              b.metrics.per_node_median_error().median());
    EXPECT_EQ(a.metrics.per_dst_median_error().median(),
              b.metrics.per_dst_median_error().median());
    EXPECT_EQ(a.metrics.instability().quantile(0.99),
              b.metrics.instability().quantile(0.99));
  }
}

TEST(ExperimentGrid, ResultsInSubmissionOrder) {
  // Distinguishable specs: node counts differ, so each output is traceable
  // to its spec via the metrics config.
  std::vector<ScenarioSpec> specs;
  for (int n : {4, 7, 11, 5, 9}) {
    ScenarioSpec s = small_spec(7);
    s.workload.num_nodes = n;
    s.workload.duration_s = 120.0;
    specs.push_back(std::move(s));
  }
  const auto outs = ExperimentGrid(4).run(specs);
  ASSERT_EQ(outs.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i)
    EXPECT_EQ(outs[i].metrics.config().num_nodes, specs[i].workload.num_nodes);
}

TEST(ExperimentGrid, MapRunsEveryTaskExactlyOnce) {
  std::atomic<int> calls{0};
  const auto out = ExperimentGrid(3).map(17, [&](std::size_t i) {
    calls.fetch_add(1);
    return static_cast<int>(i) * 2;
  });
  EXPECT_EQ(calls.load(), 17);
  ASSERT_EQ(out.size(), 17u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<int>(i) * 2);
}

TEST(ExperimentGrid, MapEmptyIsEmpty) {
  const auto out = ExperimentGrid(4).map(0, [](std::size_t) { return 1; });
  EXPECT_TRUE(out.empty());
}

TEST(ExperimentGrid, MapPropagatesLowestIndexException) {
  EXPECT_THROW(
      (void)ExperimentGrid(4).map(8,
                                  [](std::size_t i) {
                                    if (i % 2 == 1)
                                      throw std::runtime_error("task failed");
                                    return i;
                                  }),
      std::runtime_error);
}

TEST(ExperimentGrid, JobsClampedToAtLeastOne) {
  EXPECT_EQ(ExperimentGrid(0).jobs(), 1);
  EXPECT_EQ(ExperimentGrid(-3).jobs(), 1);
  EXPECT_EQ(ExperimentGrid(8).jobs(), 8);
}

}  // namespace
}  // namespace nc::eval

// Backend-equivalence pins for the LatencyEstimator seam.
//
// The coordinates backend must be a pure refactor: routing every predicted
// RTT through the estimator instead of computing coordinate distances
// inline in the metrics path has to reproduce the pre-seam metrics BIT FOR
// BIT, at any shard count. The goldens below are hexfloat captures of the
// pre-refactor engine (planetlab + churn, replay + online, 48 nodes, 900 s,
// seed 5); any drift — a reordered reduction, an extra rounding step, a
// divergent estimator answer — fails exact equality here.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "estimate/idms_estimator.hpp"
#include "eval/registry.hpp"
#include "eval/scenario.hpp"

namespace nc::eval {
namespace {

struct Golden {
  const char* scenario;
  SimMode mode;
  double median_relative_error;
  double mean_instability_ms_per_s;
  double median_instability_ms_per_s;
  double mean_pct_nodes_updating_per_s;
  std::uint64_t observation_count;
};

// Captured from the pre-refactor engine (PR 5 head) with the workload below.
constexpr Golden kGoldens[] = {
    {"planetlab", SimMode::kReplay, 0x1.3883c03ad3758p-4, 0x1.910de4d5e6f81p+0,
     0x1.ea131p-1, 0x1.897b425ed097bp+0, 32421},
    {"planetlab", SimMode::kOnline, 0x1.eed6b026e8739p-4, 0x1.de8836c16c16cp+1,
     0x0p+0, 0x1.684bda12f684cp-2, 6653},
    {"churn", SimMode::kReplay, 0x1.62b21c550f774p-4, 0x1.8e397293e93e9p+1,
     0x0p+0, 0x1.1097b425ed098p+0, 20610},
    {"churn", SimMode::kOnline, 0x1.9081f5f9da585p-3, 0x1.c89c23f6e5d4cp+2,
     0x0p+0, 0x1.5097b425ed098p-2, 4387},
};

ScenarioSpec golden_spec(const Golden& g, int shards) {
  ScenarioSpec spec = make_scenario(g.scenario);
  spec.mode = g.mode;
  spec.workload.num_nodes = 48;
  spec.workload.duration_s = 900.0;
  spec.workload.seed = 5;
  if (g.mode == SimMode::kOnline) spec.workload.ping_interval_s = 5.0;
  spec.shards = shards;
  return spec;
}

class BackendEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BackendEquivalence, CoordinatesBackendReproducesPreSeamMetrics) {
  const int shards = GetParam();
  for (const Golden& g : kGoldens) {
    ScenarioSpec spec = golden_spec(g, shards);
    apply_backend(spec, "coordinates");
    const ScenarioOutput out = run_scenario(spec);
    const std::string label =
        std::string(g.scenario) +
        (g.mode == SimMode::kReplay ? "/replay" : "/online");
    EXPECT_EQ(out.metrics.median_relative_error(), g.median_relative_error)
        << label;
    EXPECT_EQ(out.metrics.mean_instability_ms_per_s(),
              g.mean_instability_ms_per_s)
        << label;
    EXPECT_EQ(out.metrics.median_instability_ms_per_s(),
              g.median_instability_ms_per_s)
        << label;
    EXPECT_EQ(out.metrics.mean_pct_nodes_updating_per_s(),
              g.mean_pct_nodes_updating_per_s)
        << label;
    EXPECT_EQ(out.metrics.observation_count(), g.observation_count) << label;
    // The seam answered every predicted-RTT query from coordinate state.
    EXPECT_EQ(out.estimator_stats.queries, g.observation_count) << label;
    EXPECT_EQ(out.estimator_stats.direct_hits, g.observation_count) << label;
    EXPECT_EQ(out.estimator_stats.misses, 0u) << label;
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, BackendEquivalence, ::testing::Values(1, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "shards" + std::to_string(info.param);
                         });

// The IDMS backend runs the same grid and must produce a full comparative
// row: same observation stream, its own coverage/memory/traffic accounting.
TEST(BackendEquivalence, IdmsRunsTheSameGridWithItsOwnAccounting) {
  const Golden& g = kGoldens[0];  // planetlab/replay
  ScenarioSpec spec = golden_spec(g, 2);
  apply_backend(spec, "idms");
  const ScenarioOutput out = run_scenario(spec);
  // The workload is backend-independent: same observations processed.
  EXPECT_EQ(out.metrics.observation_count(), g.observation_count);
  const est::EstimatorStats& s = out.estimator_stats;
  EXPECT_EQ(s.queries, g.observation_count);
  EXPECT_EQ(s.direct_hits + s.fallback_hits + s.misses, s.queries);
  // The engine queries each pair right after measuring it: the fresh cell
  // answers, so the matrix covers every in-stream query directly.
  EXPECT_EQ(s.direct_hits, s.queries);
  EXPECT_GT(s.entries, 0u);
  EXPECT_GT(s.memory_bytes, 0u);
  // IDMS pays matrix reports ON TOP of the fallback's coordinate traffic.
  EXPECT_GT(s.traffic_bytes,
            g.observation_count * est::IDMSEstimator::kMatrixReportBytes);
  // And the error metrics differ from the coordinate path (measured cells
  // answer, not the embedding) — equality here would mean the seam ignored
  // the backend.
  EXPECT_NE(out.metrics.median_relative_error(), g.median_relative_error);
}

}  // namespace
}  // namespace nc::eval

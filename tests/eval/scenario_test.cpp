#include "eval/registry.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "eval/scenario.hpp"

namespace nc::eval {
namespace {

TEST(ScenarioRegistry, CatalogHasTheDocumentedPresets) {
  const auto names = scenario_names();
  ASSERT_GE(names.size(), 5u);
  EXPECT_EQ(names.front(), "planetlab");  // the paper's default comes first
  for (const char* expected : {"planetlab", "intercontinental", "churn",
                               "flash-crowd", "drift-heavy", "lan-cluster"}) {
    EXPECT_TRUE(scenario_exists(expected)) << expected;
  }
  EXPECT_FALSE(scenario_exists("no-such-workload"));
  EXPECT_EQ(scenario_catalog().size(), names.size());
  for (const auto& info : scenario_catalog())
    EXPECT_FALSE(info.summary.empty()) << info.name;
}

TEST(ScenarioRegistry, UnknownNameThrowsWithTheRegisteredList) {
  try {
    (void)make_scenario("bogus");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("planetlab"), std::string::npos);
  }
}

TEST(ScenarioRegistry, PresetsCarryTheirName) {
  for (const std::string& name : scenario_names())
    EXPECT_EQ(make_scenario(name).scenario, name);
}

// Every preset must construct at any scale and survive a short replay with
// finite, sane headline metrics — the smoke contract behind `--scenario=`.
TEST(ScenarioRegistry, EveryPresetRunsAShortReplay) {
  for (const std::string& name : scenario_names()) {
    SCOPED_TRACE(name);
    ScenarioSpec spec = make_scenario(name);
    spec.workload.num_nodes = 16;
    spec.workload.duration_s = 900.0;
    spec.workload.seed = 3;
    const auto out = run_scenario(spec);
    EXPECT_GT(out.records, 0u);
    EXPECT_GT(out.metrics.observation_count(), 0u);
    const double err = out.metrics.median_relative_error();
    EXPECT_TRUE(std::isfinite(err));
    EXPECT_GE(err, 0.0);
    const double instab = out.metrics.mean_instability_ms_per_s();
    EXPECT_TRUE(std::isfinite(instab));
    EXPECT_GE(instab, 0.0);
  }
}

// The registry's workloads genuinely differ: the lan-cluster world is sub-
// millisecond while intercontinental links reach hundreds of ms.
TEST(ScenarioRegistry, PresetTopologiesDiffer) {
  const auto lan = resolve_trace_config(
      [] {
        ScenarioSpec s = make_scenario("lan-cluster");
        s.workload.num_nodes = 8;
        return s.workload;
      }());
  const auto inter = resolve_trace_config(
      [] {
        ScenarioSpec s = make_scenario("intercontinental");
        s.workload.num_nodes = 8;
        return s.workload;
      }());
  const auto lan_topo = lat::Topology::make(lan.topology);
  const auto inter_topo = lat::Topology::make(inter.topology);
  double lan_max = 0.0, inter_max = 0.0;
  for (NodeId i = 0; i < 8; ++i)
    for (NodeId j = 0; j < 8; ++j) {
      if (i == j) continue;
      lan_max = std::max(lan_max, lan_topo.base_rtt_ms(i, j));
      inter_max = std::max(inter_max, inter_topo.base_rtt_ms(i, j));
    }
  EXPECT_LT(lan_max, 5.0);
  EXPECT_GT(inter_max, 100.0);
}

// ---------------------------------------------------------------------------
// Route-change schedule presets.
// ---------------------------------------------------------------------------

TEST(RouteSchedules, CatalogHasTheDocumentedSchedules) {
  const auto names = route_schedule_names();
  ASSERT_GE(names.size(), 4u);
  EXPECT_EQ(names.front(), "none");
  for (const char* expected :
       {"none", "single-link", "regional-shift", "backbone-flap"}) {
    EXPECT_TRUE(route_schedule_exists(expected)) << expected;
  }
  EXPECT_FALSE(route_schedule_exists("no-such-schedule"));
  EXPECT_EQ(route_schedule_catalog().size(), names.size());
  for (const auto& info : route_schedule_catalog())
    EXPECT_FALSE(info.summary.empty()) << info.name;
}

TEST(RouteSchedules, UnknownNameThrowsWithTheRegisteredList) {
  ScenarioSpec spec = make_scenario("planetlab");
  try {
    apply_route_schedule(spec, "bogus");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("regional-shift"), std::string::npos);
  }
}

// Schedules are pure functions of node count and duration: every expanded
// event references valid distinct nodes, a positive factor and an in-run
// time — at any scale (presets never hard-code node ids).
TEST(RouteSchedules, ExpansionsAreValidAtAnyScale) {
  for (const std::string& name : route_schedule_names()) {
    for (const int n : {2, 16, 269}) {
      SCOPED_TRACE(name + " @ " + std::to_string(n));
      ScenarioSpec spec = make_scenario("planetlab");
      spec.workload.num_nodes = n;
      spec.workload.duration_s = 1800.0;
      apply_route_schedule(spec, name);
      for (const RouteChangeEvent& rc : spec.workload.route_changes) {
        EXPECT_GE(rc.i, 0);
        EXPECT_LT(rc.i, n);
        EXPECT_GE(rc.j, 0);
        EXPECT_LT(rc.j, n);
        EXPECT_NE(rc.i, rc.j);
        EXPECT_GT(rc.factor, 0.0);
        EXPECT_GT(rc.at_t, 0.0);
        EXPECT_LT(rc.at_t, spec.workload.duration_s);
      }
      if (name == "none") {
        EXPECT_TRUE(spec.workload.route_changes.empty());
      }
      if (name == "regional-shift" && n == 269) {
        // One region (capped block) against the rest: linear-in-n events.
        EXPECT_EQ(spec.workload.route_changes.size(), 50u * (269u - 50u));
      }
    }
  }
}

// A composed schedule drives an actual run in both modes (replay here;
// sharded_replay_test covers the oracle-visible effect, sharded_sim_test
// the online engine's directed links).
TEST(BackendPresets, CatalogHasTheDocumentedPresets) {
  const auto names = backend_names();
  EXPECT_EQ(names.front(), "coordinates");  // the paper's path is the default
  for (const char* expected :
       {"coordinates", "idms", "idms-volatile", "idms-sticky", "snapshot"}) {
    EXPECT_TRUE(backend_exists(expected)) << expected;
  }
  EXPECT_FALSE(backend_exists("no-such-backend"));
  EXPECT_EQ(backend_catalog().size(), names.size());
  for (const auto& info : backend_catalog())
    EXPECT_FALSE(info.summary.empty()) << info.name;
}

TEST(BackendPresets, UnknownNameThrowsWithTheRegisteredList) {
  ScenarioSpec spec = make_scenario("planetlab");
  try {
    apply_backend(spec, "bogus");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("coordinates"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("idms"), std::string::npos);
  }
}

TEST(BackendPresets, PresetsConfigureTheSpec) {
  ScenarioSpec spec = make_scenario("planetlab");
  EXPECT_EQ(spec.estimator.backend, est::EstimatorBackend::kCoordinates);
  apply_backend(spec, "idms");
  EXPECT_EQ(spec.estimator.backend, est::EstimatorBackend::kIdms);
  EXPECT_EQ(spec.estimator.max_age_s, 600.0);
  apply_backend(spec, "idms-volatile");
  EXPECT_EQ(spec.estimator.max_age_s, 60.0);
  apply_backend(spec, "idms-sticky");
  EXPECT_EQ(spec.estimator.max_age_s, 3600.0);
  apply_backend(spec, "coordinates");
  EXPECT_EQ(spec.estimator.backend, est::EstimatorBackend::kCoordinates);
}

// The smoke contract behind --backend=: every preset runs a short scenario
// and reports estimator stats + a memory budget through ScenarioOutput.
TEST(BackendPresets, EveryPresetRunsAShortScenario) {
  for (const std::string& name : backend_names()) {
    SCOPED_TRACE(name);
    ScenarioSpec spec = make_scenario("planetlab");
    spec.workload.num_nodes = 12;
    spec.workload.duration_s = 300.0;
    spec.shards = 2;
    apply_backend(spec, name);
    const auto out = run_scenario(spec);
    EXPECT_GT(out.metrics.observation_count(), 0u);
    EXPECT_EQ(out.estimator_stats.queries, out.metrics.observation_count());
    EXPECT_EQ(out.estimator_stats.misses, 0u);  // in-stream queries always hit
    EXPECT_GT(out.estimator_stats.entries, 0u);
    EXPECT_GT(out.estimator_stats.traffic_bytes, 0u);
    EXPECT_GT(out.memory.estimator_bytes, 0u);
    EXPECT_GT(out.memory.client_bytes, 0u);
    EXPECT_GT(out.memory.total(), out.memory.estimator_bytes);
  }
}

// Partition-on-open replay (spec.partition_replay): splitting the generated
// trace into per-shard slice files and replaying one slice per reader must
// not change a single metric bit vs the single-reader path.
TEST(PartitionReplay, BitIdenticalToSingleReader) {
  ScenarioSpec spec = make_scenario("planetlab");
  spec.workload.num_nodes = 24;
  spec.workload.duration_s = 600.0;
  spec.shards = 3;

  // Partitioned replay is the default since PR 9; the single-reader path is
  // the explicit opt-out under comparison here.
  spec.partition_replay = false;
  const ScenarioOutput single = run_scenario(spec);
  spec.partition_replay = true;
  const ScenarioOutput split = run_scenario(spec);

  EXPECT_EQ(single.records, split.records);
  EXPECT_EQ(single.attempts, split.attempts);
  EXPECT_EQ(single.absorbed, split.absorbed);
  EXPECT_EQ(single.metrics.observation_count(),
            split.metrics.observation_count());
  EXPECT_EQ(single.metrics.total_app_updates(),
            split.metrics.total_app_updates());
  EXPECT_EQ(single.metrics.median_relative_error(),
            split.metrics.median_relative_error());
  EXPECT_EQ(single.metrics.mean_instability_ms_per_s(),
            split.metrics.mean_instability_ms_per_s());
  EXPECT_EQ(single.estimator_stats.queries, split.estimator_stats.queries);
}

// One worker shard: the flag is a no-op (the slice path needs shards > 1),
// and oracle collection composes with it because the single-reader branch
// still runs.
TEST(PartitionReplay, SingleShardFallsBackToOneReader) {
  ScenarioSpec spec = make_scenario("planetlab");
  spec.workload.num_nodes = 12;
  spec.workload.duration_s = 300.0;
  spec.shards = 1;
  spec.measurement.collect_oracle = true;
  spec.partition_replay = true;
  const ScenarioOutput out = run_scenario(spec);
  EXPECT_GT(out.metrics.observation_count(), 0u);
}

// Sharded + oracle: partition_replay now defaults ON, but oracle sampling
// needs the generating network, which concurrent readers must not touch —
// the run silently keeps the single reader instead of throwing, and the
// metrics match an explicit single-reader run bit for bit.
TEST(PartitionReplay, OracleRunsFallBackToOneReader) {
  ScenarioSpec spec = make_scenario("planetlab");
  spec.workload.num_nodes = 16;
  spec.workload.duration_s = 300.0;
  spec.shards = 3;
  spec.measurement.collect_oracle = true;
  ASSERT_TRUE(spec.partition_replay);  // the PR 9 default
  const ScenarioOutput defaulted = run_scenario(spec);
  spec.partition_replay = false;
  const ScenarioOutput single = run_scenario(spec);
  EXPECT_GT(defaulted.metrics.observation_count(), 0u);
  EXPECT_EQ(defaulted.metrics.observation_count(),
            single.metrics.observation_count());
  EXPECT_EQ(defaulted.metrics.median_relative_error(),
            single.metrics.median_relative_error());
}

TEST(RouteSchedules, ComposedScheduleRunsInBothModes) {
  for (const SimMode mode : {SimMode::kReplay, SimMode::kOnline}) {
    ScenarioSpec spec = make_scenario("planetlab");
    spec.mode = mode;
    spec.workload.num_nodes = 12;
    spec.workload.duration_s = 300.0;
    spec.workload.ping_interval_s = mode == SimMode::kOnline ? 5.0 : 1.0;
    apply_route_schedule(spec, "backbone-flap");
    EXPECT_FALSE(spec.workload.route_changes.empty());
    const auto out = run_scenario(spec);
    EXPECT_GT(out.metrics.observation_count(), 0u);
  }
}

}  // namespace
}  // namespace nc::eval

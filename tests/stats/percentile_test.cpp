#include "stats/percentile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace nc::stats {
namespace {

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW((void)percentile({}, 50.0), CheckError);
  EXPECT_THROW((void)percentile_nearest_rank({}, 50.0), CheckError);
}

TEST(Percentile, OutOfRangeThrows) {
  EXPECT_THROW((void)percentile({1.0}, -1.0), CheckError);
  EXPECT_THROW((void)percentile({1.0}, 101.0), CheckError);
}

TEST(Percentile, SingleElement) {
  EXPECT_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_EQ(percentile({7.0}, 50.0), 7.0);
  EXPECT_EQ(percentile({7.0}, 100.0), 7.0);
  EXPECT_EQ(percentile_nearest_rank({7.0}, 50.0), 7.0);
}

TEST(Percentile, NearestRankMinOfFourAt25) {
  // The paper's MP(4, 25) semantics: 25th percentile of four samples is the
  // minimum ("p = 25, the minimum with a history of four").
  EXPECT_EQ(percentile_nearest_rank({4.0, 1.0, 3.0, 2.0}, 25.0), 1.0);
}

TEST(Percentile, NearestRankBounds) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_EQ(percentile_nearest_rank(v, 0.0), 1.0);
  EXPECT_EQ(percentile_nearest_rank(v, 100.0), 5.0);
  EXPECT_EQ(percentile_nearest_rank(v, 50.0), 3.0);
  EXPECT_EQ(percentile_nearest_rank(v, 20.0), 1.0);   // ceil(1.0) = 1st
  EXPECT_EQ(percentile_nearest_rank(v, 20.01), 2.0);  // ceil(1.0005) = 2nd
}

TEST(Percentile, InterpolatedMedian) {
  EXPECT_EQ(median({1.0, 2.0, 3.0}), 2.0);
  EXPECT_EQ(median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Percentile, InterpolatedQuartiles) {
  // numpy.percentile(range(1, 6), 25) == 2.0
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_EQ(percentile(v, 25.0), 2.0);
  EXPECT_EQ(percentile(v, 75.0), 4.0);
  EXPECT_EQ(percentile(v, 10.0), 1.4);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_EQ(percentile({5.0, 1.0, 3.0}, 50.0), 3.0);
}

// Property: nearest-rank percentile equals the brute-force definition
// "smallest value with at least p% of the sample at or below it".
class NearestRankProperty
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(NearestRankProperty, MatchesBruteForce) {
  const auto [n, p] = GetParam();
  Rng rng(hash_combine(static_cast<std::uint64_t>(n),
                       static_cast<std::uint64_t>(p * 100)));
  std::vector<double> values(static_cast<std::size_t>(n));
  for (auto& v : values) v = rng.uniform(0.0, 100.0);

  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double got = percentile_nearest_rank_sorted(sorted, p);

  // Brute force over the sorted sample.
  double expected = sorted.back();
  for (double candidate : sorted) {
    int at_or_below = 0;
    for (double v : sorted)
      if (v <= candidate) ++at_or_below;
    if (100.0 * at_or_below / n >= p) {
      expected = candidate;
      break;
    }
  }
  if (p == 0.0) expected = sorted.front();
  EXPECT_EQ(got, expected) << "n=" << n << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NearestRankProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 8, 16, 33, 100),
                       ::testing::Values(0.0, 10.0, 25.0, 50.0, 75.0, 95.0, 100.0)));

// Property: interpolated percentile is monotone in p and bounded by extremes.
class InterpolationProperty : public ::testing::TestWithParam<int> {};

TEST_P(InterpolationProperty, MonotoneAndBounded) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> values(64);
  for (auto& v : values) v = rng.lognormal(2.0, 1.0);
  std::sort(values.begin(), values.end());
  double prev = values.front();
  for (double p = 0.0; p <= 100.0; p += 5.0) {
    const double q = percentile_sorted(values, p);
    EXPECT_GE(q, prev);
    EXPECT_GE(q, values.front());
    EXPECT_LE(q, values.back());
    prev = q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterpolationProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace nc::stats

#include "stats/energy.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace nc::stats {
namespace {

std::vector<Vec> random_sample(Rng& rng, int n, int dim, double spread,
                               const Vec& center) {
  std::vector<Vec> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Vec v = center;
    for (int d = 0; d < dim; ++d) v[d] += rng.normal(0.0, spread);
    out.push_back(v);
  }
  return out;
}

TEST(EnergyDistance, EmptyThrows) {
  const std::vector<Vec> a = {Vec{0.0, 0.0}};
  EXPECT_THROW((void)energy_distance(a, {}), CheckError);
  EXPECT_THROW((void)energy_distance({}, a), CheckError);
}

TEST(EnergyDistance, IdenticalSamplesAreZero) {
  Rng rng(31);
  const auto a = random_sample(rng, 16, 3, 5.0, Vec::zero(3));
  EXPECT_NEAR(energy_distance(a, a), 0.0, 1e-9);
}

TEST(EnergyDistance, Symmetric) {
  Rng rng(32);
  const auto a = random_sample(rng, 12, 3, 5.0, Vec::zero(3));
  const auto b = random_sample(rng, 17, 3, 5.0, Vec{10.0, 0.0, 0.0});
  EXPECT_NEAR(energy_distance(a, b), energy_distance(b, a), 1e-9);
}

TEST(EnergyDistance, NonNegativeAndGrowsWithSeparation) {
  Rng rng(33);
  const auto a = random_sample(rng, 16, 3, 2.0, Vec::zero(3));
  const auto near = random_sample(rng, 16, 3, 2.0, Vec{1.0, 0.0, 0.0});
  const auto far = random_sample(rng, 16, 3, 2.0, Vec{50.0, 0.0, 0.0});
  const double e_near = energy_distance(a, near);
  const double e_far = energy_distance(a, far);
  EXPECT_GE(e_near, 0.0);
  EXPECT_GT(e_far, e_near);
  EXPECT_GT(e_far, 100.0);  // well-separated clusters have large energy
}

TEST(EnergyDistance, TwoPointsKnownValue) {
  // A = {0}, B = {d} in 1-D: e = (1*1/2) * (2*d - 0 - 0) = d.
  const std::vector<Vec> a = {Vec{0.0}};
  const std::vector<Vec> b = {Vec{3.0}};
  EXPECT_DOUBLE_EQ(energy_distance(a, b), 3.0);
}

TEST(IncrementalEnergy, MatchesNaiveAfterFill) {
  Rng rng(34);
  const auto base = random_sample(rng, 8, 3, 4.0, Vec::zero(3));
  IncrementalEnergy inc;
  for (const Vec& v : base) inc.push_current(v);
  inc.set_base(base);
  EXPECT_NEAR(inc.value(), energy_distance(base, base), 1e-9);
}

TEST(IncrementalEnergy, PopRequiresNonEmpty) {
  IncrementalEnergy inc;
  EXPECT_THROW(inc.pop_current(), CheckError);
}

TEST(IncrementalEnergy, ValueRequiresBothWindows) {
  IncrementalEnergy inc;
  EXPECT_THROW((void)inc.value(), CheckError);
  inc.push_current(Vec{1.0});
  EXPECT_THROW((void)inc.value(), CheckError);  // no base yet
}

TEST(IncrementalEnergy, ResetClearsEverything) {
  Rng rng(35);
  const auto base = random_sample(rng, 4, 2, 1.0, Vec::zero(2));
  IncrementalEnergy inc;
  for (const Vec& v : base) inc.push_current(v);
  inc.set_base(base);
  inc.reset();
  EXPECT_FALSE(inc.has_base());
  EXPECT_EQ(inc.current_size(), 0u);
}

// Property: after any sequence of slides, the incremental value matches a
// naive recomputation over the live window contents.
class IncrementalSlideProperty : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalSlideProperty, MatchesNaiveUnderSliding) {
  const int k = 16;
  Rng rng(static_cast<std::uint64_t>(GetParam()));

  IncrementalEnergy inc;
  std::vector<Vec> base;
  std::vector<Vec> window;  // mirror of the incremental current window

  // Fill phase: base == current.
  for (int i = 0; i < k; ++i) {
    Vec v = rng.unit_vector(3) * rng.uniform(0.0, 20.0);
    base.push_back(v);
    window.push_back(v);
    inc.push_current(v);
  }
  inc.set_base(base);

  // Slide 200 elements with a drifting distribution.
  Vec drift = Vec::zero(3);
  for (int i = 0; i < 200; ++i) {
    drift += rng.unit_vector(3) * 0.3;
    Vec v = drift + rng.unit_vector(3) * rng.uniform(0.0, 5.0);
    inc.push_current(v);
    inc.pop_current();
    window.push_back(v);
    window.erase(window.begin());

    if (i % 20 == 0) {
      const double naive = energy_distance(base, window);
      EXPECT_NEAR(inc.value(), naive, 1e-7 * std::max(1.0, naive)) << "slide " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalSlideProperty, ::testing::Range(1, 11));

TEST(IncrementalEnergy, RebaseRebuildsCrossTerms) {
  Rng rng(36);
  const auto a1 = random_sample(rng, 6, 3, 2.0, Vec::zero(3));
  const auto a2 = random_sample(rng, 6, 3, 2.0, Vec{8.0, 0.0, 0.0});
  const auto b = random_sample(rng, 6, 3, 2.0, Vec{4.0, 0.0, 0.0});

  IncrementalEnergy inc;
  for (const Vec& v : b) inc.push_current(v);
  inc.set_base(a1);
  EXPECT_NEAR(inc.value(), energy_distance(a1, b), 1e-9);
  inc.set_base(a2);
  EXPECT_NEAR(inc.value(), energy_distance(a2, b), 1e-9);
}

}  // namespace
}  // namespace nc::stats

#include "stats/p2_quantile.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "stats/percentile.hpp"

namespace nc::stats {
namespace {

TEST(P2Quantile, RejectsBadQuantile) {
  EXPECT_THROW(P2Quantile(0.0), CheckError);
  EXPECT_THROW(P2Quantile(1.0), CheckError);
  EXPECT_THROW(P2Quantile(-0.5), CheckError);
}

TEST(P2Quantile, EmptyIsZero) {
  P2Quantile q(0.5);
  EXPECT_EQ(q.value(), 0.0);
  EXPECT_EQ(q.count(), 0u);
}

TEST(P2Quantile, ExactForTinySamples) {
  P2Quantile q(0.5);
  q.add(3.0);
  EXPECT_EQ(q.value(), 3.0);
  q.add(1.0);
  q.add(2.0);
  EXPECT_EQ(q.value(), 2.0);  // median of {1,2,3}
  EXPECT_EQ(q.count(), 3u);
}

TEST(P2Quantile, MedianOfUniformStream) {
  Rng rng(21);
  P2Quantile q(0.5);
  for (int i = 0; i < 50000; ++i) q.add(rng.uniform(0.0, 10.0));
  EXPECT_NEAR(q.value(), 5.0, 0.1);
}

TEST(P2Quantile, TailQuantileOfExponential) {
  Rng rng(22);
  P2Quantile q(0.95);
  for (int i = 0; i < 100000; ++i) q.add(rng.exponential(1.0));
  // True 95th percentile of Exp(1) is -ln(0.05) = 2.996.
  EXPECT_NEAR(q.value(), 2.996, 0.15);
}

// Property: across distributions and quantiles, the P² estimate stays close
// to the exact percentile of the same stream.
class P2Accuracy : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(P2Accuracy, TracksExactPercentile) {
  const auto [quant, dist] = GetParam();
  Rng rng(hash_combine(static_cast<std::uint64_t>(quant * 1000),
                       static_cast<std::uint64_t>(dist)));
  P2Quantile estimator(quant);
  std::vector<double> all;
  all.reserve(30000);
  for (int i = 0; i < 30000; ++i) {
    double x = 0.0;
    switch (dist) {
      case 0: x = rng.uniform(0.0, 1.0); break;
      case 1: x = rng.normal(50.0, 10.0); break;
      case 2: x = rng.lognormal(3.0, 0.6); break;
    }
    estimator.add(x);
    all.push_back(x);
  }
  const double exact = percentile(all, quant * 100.0);
  const double scale = std::max(1.0, std::fabs(exact));
  EXPECT_NEAR(estimator.value() / scale, exact / scale, 0.05)
      << "q=" << quant << " dist=" << dist;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, P2Accuracy,
    ::testing::Combine(::testing::Values(0.25, 0.5, 0.75, 0.95),
                       ::testing::Values(0, 1, 2)));

TEST(P2Quantile, ConstantStream) {
  P2Quantile q(0.5);
  for (int i = 0; i < 100; ++i) q.add(4.2);
  EXPECT_DOUBLE_EQ(q.value(), 4.2);
}

}  // namespace
}  // namespace nc::stats

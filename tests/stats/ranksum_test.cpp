#include "stats/ranksum.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace nc::stats {
namespace {

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
}

TEST(RankSum, EmptyThrows) {
  const std::vector<double> a = {1.0};
  EXPECT_THROW((void)rank_sum_test(a, {}), CheckError);
  EXPECT_THROW((void)rank_sum_test({}, a), CheckError);
}

TEST(RankSum, IdenticalSamplesNotSignificant) {
  const std::vector<double> a = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto r = rank_sum_test(a, a);
  EXPECT_NEAR(r.z, 0.0, 1e-9);
  EXPECT_GT(r.p_two_sided, 0.9);
}

TEST(RankSum, AllTiesNotSignificant) {
  const std::vector<double> a(10, 3.0);
  const auto r = rank_sum_test(a, a);
  EXPECT_EQ(r.p_two_sided, 1.0);
}

TEST(RankSum, ClearShiftIsSignificant) {
  Rng rng(41);
  std::vector<double> a(32), b(32);
  for (auto& x : a) x = rng.normal(0.0, 1.0);
  for (auto& x : b) x = rng.normal(3.0, 1.0);
  const auto r = rank_sum_test(a, b);
  EXPECT_LT(r.p_two_sided, 0.001);
}

TEST(RankSum, NoShiftUsuallyNotSignificant) {
  Rng rng(42);
  int significant = 0;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> a(24), b(24);
    for (auto& x : a) x = rng.normal(5.0, 2.0);
    for (auto& x : b) x = rng.normal(5.0, 2.0);
    if (rank_sum_test(a, b).p_two_sided < 0.05) ++significant;
  }
  // False-positive rate should be near 5%.
  EXPECT_LE(significant, 8);
}

TEST(RankSum, DirectionSymmetry) {
  const std::vector<double> lo = {1, 2, 3, 4, 5};
  const std::vector<double> hi = {6, 7, 8, 9, 10};
  const auto r1 = rank_sum_test(lo, hi);
  const auto r2 = rank_sum_test(hi, lo);
  EXPECT_NEAR(r1.z, -r2.z, 1e-9);
  EXPECT_NEAR(r1.p_two_sided, r2.p_two_sided, 1e-9);
  EXPECT_LT(r1.z, 0.0);  // first sample ranks lower
}

TEST(RankSum, UStatisticRange) {
  const std::vector<double> lo = {1, 2};
  const std::vector<double> hi = {3, 4, 5};
  const auto r = rank_sum_test(lo, hi);
  EXPECT_EQ(r.u, 0.0);  // no lo element beats any hi element
  const auto r2 = rank_sum_test(hi, lo);
  EXPECT_EQ(r2.u, 6.0);  // all 3*2 pairs
}

}  // namespace
}  // namespace nc::stats

#include "stats/boxplot.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace nc::stats {
namespace {

TEST(Boxplot, EmptyThrows) { EXPECT_THROW((void)boxplot({}), CheckError); }

TEST(Boxplot, SingleValue) {
  const BoxplotStats b = boxplot({5.0});
  EXPECT_EQ(b.min, 5.0);
  EXPECT_EQ(b.median, 5.0);
  EXPECT_EQ(b.max, 5.0);
  EXPECT_EQ(b.outliers, 0u);
  EXPECT_EQ(b.count, 1u);
}

TEST(Boxplot, KnownQuartiles) {
  const BoxplotStats b = boxplot({1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_EQ(b.median, 5.0);
  EXPECT_EQ(b.q1, 3.0);
  EXPECT_EQ(b.q3, 7.0);
  EXPECT_EQ(b.min, 1.0);
  EXPECT_EQ(b.max, 9.0);
  EXPECT_EQ(b.outliers, 0u);
  EXPECT_EQ(b.whisker_lo, 1.0);
  EXPECT_EQ(b.whisker_hi, 9.0);
}

TEST(Boxplot, DetectsOutliers) {
  // IQR = 2 (q1=2, q3=4 over {1..5}); fences at -1 and 7; 100 is outside.
  const BoxplotStats b = boxplot({1, 2, 3, 4, 5, 100});
  EXPECT_EQ(b.outliers, 1u);
  EXPECT_EQ(b.max, 100.0);
  EXPECT_LT(b.whisker_hi, 100.0);
}

TEST(Boxplot, AllEqualDegenerate) {
  const BoxplotStats b = boxplot({3.0, 3.0, 3.0, 3.0});
  EXPECT_EQ(b.q1, 3.0);
  EXPECT_EQ(b.q3, 3.0);
  EXPECT_EQ(b.whisker_lo, 3.0);
  EXPECT_EQ(b.whisker_hi, 3.0);
  EXPECT_EQ(b.outliers, 0u);
}

TEST(Boxplot, WhiskersAtMostExtremeInliers) {
  const BoxplotStats b = boxplot({0.0, 10.0, 11.0, 12.0, 13.0, 14.0, 30.0});
  // q1=10.5, q3=13.5, iqr=3 => fences at 6 and 18.
  EXPECT_EQ(b.whisker_lo, 10.0);
  EXPECT_EQ(b.whisker_hi, 14.0);
  EXPECT_EQ(b.outliers, 2u);
}

}  // namespace
}  // namespace nc::stats

#include "stats/ecdf.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace nc::stats {
namespace {

TEST(Ecdf, EmptyQuantileThrows) {
  const Ecdf e;
  EXPECT_TRUE(e.empty());
  EXPECT_THROW((void)e.quantile(0.5), CheckError);
}

TEST(Ecdf, FractionOnEmptyIsZero) {
  const Ecdf e;
  EXPECT_EQ(e.fraction_at_or_below(1.0), 0.0);
}

TEST(Ecdf, QuantilesOfSmallSample) {
  Ecdf e;
  for (double v : {3.0, 1.0, 2.0}) e.add(v);
  EXPECT_EQ(e.quantile(0.0), 1.0);
  EXPECT_EQ(e.quantile(0.5), 2.0);
  EXPECT_EQ(e.quantile(1.0), 3.0);
  EXPECT_EQ(e.min(), 1.0);
  EXPECT_EQ(e.median(), 2.0);
  EXPECT_EQ(e.max(), 3.0);
}

TEST(Ecdf, FractionAtOrBelow) {
  Ecdf e({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(e.fraction_at_or_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.fraction_at_or_below(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.fraction_at_or_below(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.fraction_at_or_below(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e.fraction_above(2.5), 0.5);
}

TEST(Ecdf, AddAfterQueryResorts) {
  Ecdf e;
  e.add(5.0);
  EXPECT_EQ(e.median(), 5.0);
  e.add(1.0);
  e.add(2.0);
  EXPECT_EQ(e.median(), 2.0);
}

TEST(Ecdf, SortedValuesAscending) {
  Ecdf e({3.0, 1.0, 2.0});
  const auto vals = e.sorted_values();
  ASSERT_EQ(vals.size(), 3u);
  EXPECT_EQ(vals[0], 1.0);
  EXPECT_EQ(vals[2], 3.0);
}

TEST(Ecdf, DuplicatesCounted) {
  Ecdf e({2.0, 2.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(e.fraction_at_or_below(2.0), 0.75);
  EXPECT_EQ(e.size(), 4u);
}

}  // namespace
}  // namespace nc::stats

#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace nc::stats {
namespace {

TEST(Histogram, RejectsBadEdges) {
  EXPECT_THROW(Histogram({1.0}), CheckError);
  EXPECT_THROW(Histogram({2.0, 1.0}), CheckError);
}

TEST(Histogram, BasicBucketing) {
  Histogram h({0.0, 10.0, 20.0});
  h.add(0.0);
  h.add(9.999);
  h.add(10.0);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h({0.0, 10.0});
  h.add(-1.0);
  h.add(10.0);
  h.add(100.0);
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h({0.0, 1.0});
  h.add(0.5, 7);
  EXPECT_EQ(h.count(0), 7u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, UniformFactory) {
  Histogram h = Histogram::uniform(0.0, 100.0, 10);
  EXPECT_EQ(h.bucket_count(), 10);
  EXPECT_EQ(h.bucket_lo(0), 0.0);
  EXPECT_EQ(h.bucket_hi(9), 100.0);
  h.add(55.0);
  EXPECT_EQ(h.count(5), 1u);
}

TEST(Histogram, UniformFactoryRejectsBadSpec) {
  EXPECT_THROW(Histogram::uniform(0.0, 1.0, 0), CheckError);
  EXPECT_THROW(Histogram::uniform(1.0, 0.0, 4), CheckError);
}

TEST(Histogram, PaperStyleLabels) {
  Histogram h({0.0, 100.0, 200.0});
  EXPECT_EQ(h.bucket_label(0), "0-99");
  EXPECT_EQ(h.bucket_label(1), "100-199");
}

TEST(Histogram, FractionAtOrAbove) {
  Histogram h({0.0, 100.0, 1000.0, 3000.0});
  for (int i = 0; i < 90; ++i) h.add(50.0);
  for (int i = 0; i < 6; ++i) h.add(500.0);
  for (int i = 0; i < 3; ++i) h.add(1500.0);
  h.add(5000.0);  // overflow
  EXPECT_DOUBLE_EQ(h.fraction_at_or_above(1000.0), 0.04);
  EXPECT_DOUBLE_EQ(h.fraction_at_or_above(100.0), 0.10);
  EXPECT_DOUBLE_EQ(h.fraction_at_or_above(3000.0), 0.01);
}

TEST(Histogram, FractionOnEmptyIsZero) {
  const Histogram h({0.0, 1.0});
  EXPECT_EQ(h.fraction_at_or_above(0.5), 0.0);
}

TEST(Histogram, IrregularBuckets) {
  // Fig. 2 style: fine buckets then coarse ones.
  Histogram h({0.0, 100.0, 1000.0, 2000.0, 3000.0});
  h.add(999.0);
  h.add(1999.0);
  h.add(2000.0);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(3), 1u);
}

}  // namespace
}  // namespace nc::stats

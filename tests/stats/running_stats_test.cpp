#include "stats/running_stats.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace nc::stats {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.sum(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);       // population
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_NEAR(s.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  Rng rng(17);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);

  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_EQ(c.mean(), mean);
}

TEST(RunningStats, Reset) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(RunningStats, LongStreamStability) {
  // Welford must not lose precision on a long, offset stream.
  RunningStats s;
  const double offset = 1e9;
  for (int i = 0; i < 100000; ++i) s.add(offset + (i % 2 == 0 ? 1.0 : -1.0));
  EXPECT_NEAR(s.mean(), offset, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

}  // namespace
}  // namespace nc::stats

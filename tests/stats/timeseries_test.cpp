#include "stats/timeseries.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace nc::stats {
namespace {

TEST(BucketedSum, RejectsBadWidth) {
  EXPECT_THROW(BucketedSum(0.0), CheckError);
  EXPECT_THROW(BucketedSum(-1.0), CheckError);
}

TEST(BucketedSum, SumsPerBucket) {
  BucketedSum s(10.0);
  s.add(0.0, 1.0);
  s.add(9.9, 2.0);
  s.add(10.0, 5.0);
  s.add(25.0, 7.0);
  const auto sums = s.sums();
  ASSERT_EQ(sums.size(), 3u);
  EXPECT_EQ(sums[0].t, 0.0);
  EXPECT_EQ(sums[0].value, 3.0);
  EXPECT_EQ(sums[1].t, 10.0);
  EXPECT_EQ(sums[1].value, 5.0);
  EXPECT_EQ(sums[2].t, 20.0);
  EXPECT_EQ(sums[2].value, 7.0);
}

TEST(BucketedSum, Means) {
  BucketedSum s(10.0);
  s.add(1.0, 2.0);
  s.add(2.0, 4.0);
  const auto means = s.means();
  ASSERT_EQ(means.size(), 1u);
  EXPECT_EQ(means[0].value, 3.0);
}

TEST(BucketedSum, EmptyBucketsAbsent) {
  BucketedSum s(1.0);
  s.add(0.5, 1.0);
  s.add(5.5, 1.0);
  EXPECT_EQ(s.bucket_count(), 2u);
}

TEST(BucketedValues, MediansAndQuantiles) {
  BucketedValues v(60.0);
  for (double x : {1.0, 2.0, 3.0, 4.0, 100.0}) v.add(30.0, x);
  const auto med = v.medians();
  ASSERT_EQ(med.size(), 1u);
  EXPECT_EQ(med[0].value, 3.0);
  const auto p95 = v.quantiles(0.95);
  EXPECT_GT(p95[0].value, 50.0);
}

TEST(BucketedValues, MeansPerBucket) {
  BucketedValues v(10.0);
  v.add(0.0, 2.0);
  v.add(5.0, 4.0);
  v.add(15.0, 10.0);
  const auto means = v.means();
  ASSERT_EQ(means.size(), 2u);
  EXPECT_EQ(means[0].value, 3.0);
  EXPECT_EQ(means[1].value, 10.0);
}

TEST(BucketedValues, TimeOrderOfBuckets) {
  BucketedValues v(1.0);
  v.add(5.0, 1.0);
  v.add(1.0, 1.0);
  v.add(3.0, 1.0);
  const auto med = v.medians();
  ASSERT_EQ(med.size(), 3u);
  EXPECT_LT(med[0].t, med[1].t);
  EXPECT_LT(med[1].t, med[2].t);
}

TEST(BucketedSum, NegativeTimesSupported) {
  BucketedSum s(10.0);
  s.add(-5.0, 1.0);  // bucket floor(-0.5) = -1 => t = -10
  const auto sums = s.sums();
  ASSERT_EQ(sums.size(), 1u);
  EXPECT_EQ(sums[0].t, -10.0);
}

}  // namespace
}  // namespace nc::stats

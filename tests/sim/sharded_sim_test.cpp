#include "sim/sharded_sim.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "eval/registry.hpp"
#include "eval/scenario.hpp"

namespace nc::sim {
namespace {

OnlineSimConfig small_config(double duration = 900.0) {
  OnlineSimConfig c;
  c.client.vivaldi.dim = 3;
  c.client.heuristic = HeuristicConfig::always();
  c.duration_s = duration;
  c.measure_start_s = duration / 2.0;
  c.ping_interval_s = 2.0;
  return c;
}

lat::Topology small_topology(int nodes = 24, std::uint64_t seed = 91) {
  lat::TopologyConfig tc;
  tc.num_nodes = nodes;
  tc.seed = seed;
  return lat::Topology::make(tc);
}

lat::AvailabilityConfig all_up() {
  lat::AvailabilityConfig av;
  av.enabled = false;
  return av;
}

// The engine's core guarantee, at full strength: every node's final
// coordinate is bit-identical for any shard count (shards own disjoint node
// sets, so equality here means every observation stream replayed alike).
TEST(ShardedEngine, CoordinatesBitIdenticalAcrossShardCounts) {
  const auto run_with = [](int shards) {
    ShardedEngine sim(small_config(600.0), shards, small_topology(),
                               lat::LinkModelConfig{}, all_up());
    sim.run();
    std::vector<Coordinate> coords;
    for (NodeId id = 0; id < sim.num_nodes(); ++id)
      coords.push_back(sim.client(id).system_coordinate());
    return std::tuple{coords, sim.pings_sent(), sim.pings_lost(),
                      sim.metrics().observation_count()};
  };
  const auto one = run_with(1);
  EXPECT_EQ(one, run_with(2));
  EXPECT_EQ(one, run_with(3));
  EXPECT_EQ(one, run_with(4));
}

// The acceptance-level check: full metric surface, bit-identical, on the
// planetlab and churn presets through the scenario engine.
TEST(ShardedEngine, MetricsBitIdenticalOnPresets) {
  for (const char* preset : {"planetlab", "churn"}) {
    eval::ScenarioSpec spec = eval::make_scenario(preset);
    spec.mode = eval::SimMode::kOnline;
    spec.workload.num_nodes = 48;
    spec.workload.duration_s = 900.0;
    spec.workload.ping_interval_s = 5.0;
    spec.measurement.measure_start_s = 450.0;
    spec.measurement.collect_timeseries = true;
    spec.measurement.timeseries_bucket_s = 120.0;

    spec.shards = 1;
    const eval::ScenarioOutput a = eval::run_scenario(spec);
    spec.shards = 4;
    const eval::ScenarioOutput b = eval::run_scenario(spec);

    EXPECT_EQ(a.pings_sent, b.pings_sent) << preset;
    EXPECT_EQ(a.pings_lost, b.pings_lost) << preset;
    EXPECT_EQ(a.metrics.observation_count(), b.metrics.observation_count())
        << preset;
    EXPECT_EQ(a.metrics.total_app_updates(), b.metrics.total_app_updates())
        << preset;
    EXPECT_EQ(a.metrics.median_relative_error(), b.metrics.median_relative_error())
        << preset;
    EXPECT_EQ(a.metrics.mean_instability_ms_per_s(),
              b.metrics.mean_instability_ms_per_s())
        << preset;
    EXPECT_EQ(a.metrics.mean_pct_nodes_updating_per_s(),
              b.metrics.mean_pct_nodes_updating_per_s())
        << preset;

    const auto cdf_equal = [](const stats::Ecdf& x, const stats::Ecdf& y) {
      const auto xs = x.sorted_values();
      const auto ys = y.sorted_values();
      return std::vector<double>(xs.begin(), xs.end()) ==
             std::vector<double>(ys.begin(), ys.end());
    };
    EXPECT_TRUE(cdf_equal(a.metrics.per_node_median_error(),
                          b.metrics.per_node_median_error()))
        << preset;
    EXPECT_TRUE(cdf_equal(a.metrics.per_node_p95_error(),
                          b.metrics.per_node_p95_error()))
        << preset;
    EXPECT_TRUE(cdf_equal(a.metrics.instability(), b.metrics.instability()))
        << preset;
    EXPECT_TRUE(
        cdf_equal(a.metrics.system_instability(), b.metrics.system_instability()))
        << preset;
    EXPECT_TRUE(cdf_equal(a.metrics.per_node_p95_movement(),
                          b.metrics.per_node_p95_movement()))
        << preset;
    EXPECT_TRUE(cdf_equal(a.metrics.per_dst_median_error(),
                          b.metrics.per_dst_median_error()))
        << preset;

    const auto series_equal = [](const std::vector<stats::SeriesPoint>& x,
                                 const std::vector<stats::SeriesPoint>& y) {
      if (x.size() != y.size()) return false;
      for (std::size_t i = 0; i < x.size(); ++i)
        if (x[i].t != y[i].t || x[i].value != y[i].value) return false;
      return true;
    };
    EXPECT_TRUE(series_equal(a.metrics.error_timeseries_median(),
                             b.metrics.error_timeseries_median()))
        << preset;
    EXPECT_TRUE(series_equal(a.metrics.error_timeseries_p95(),
                             b.metrics.error_timeseries_p95()))
        << preset;
    EXPECT_TRUE(series_equal(a.metrics.instability_timeseries(),
                             b.metrics.instability_timeseries()))
        << preset;
  }
}

TEST(ShardedEngine, ConvergesLikeTheSerialEngine) {
  ShardedEngine sim(small_config(900.0), 4, small_topology(20),
                             lat::LinkModelConfig{}, all_up());
  sim.run();
  EXPECT_GT(sim.pings_sent(), 1000u);
  EXPECT_GT(sim.metrics().observation_count(), 500u);
  EXPECT_LT(sim.metrics().median_relative_error(), 0.3);
}

TEST(ShardedEngine, GossipSpreadsAcrossShards) {
  OnlineSimConfig c = small_config(900.0);
  c.bootstrap_degree = 1;  // minimal seed knowledge
  ShardedEngine sim(c, 4, small_topology(20), lat::LinkModelConfig{},
                             all_up());
  sim.run();
  int grew = 0;
  for (NodeId id = 0; id < sim.num_nodes(); ++id)
    if (sim.neighbors(id).size() >= 5) ++grew;
  EXPECT_GT(grew, sim.num_nodes() * 3 / 4);
}

TEST(ShardedEngine, DriftTrackingIsShardCountInvariant) {
  const auto drift_of = [](int shards) {
    OnlineSimConfig c = small_config(600.0);
    c.tracked_nodes = {1, 17};  // land on different shards at W=3
    c.track_interval_s = 120.0;
    ShardedEngine sim(c, shards, small_topology(),
                               lat::LinkModelConfig{}, all_up());
    sim.run();
    std::vector<std::pair<double, Vec>> points;
    for (NodeId id : {1, 17})
      for (const DriftPoint& p : sim.metrics().drift(id))
        points.emplace_back(p.t, p.position);
    return std::pair{points, sim.events_processed()};
  };
  const auto serial = drift_of(1);
  // 4 interior ticks + the final duration_s flush, per tracked node.
  EXPECT_EQ(serial.first.size(), 10u);
  // Both the drift series and the event count must ignore how many shards
  // carry copies of the track-tick series.
  EXPECT_EQ(serial, drift_of(3));
}

// Paged directed-link state (the 10k-node fallback) must be observationally
// identical to the flat bench-tier arrays: same coordinates, same counters.
TEST(ShardedEngine, PagedLinkStateBitIdenticalToEager) {
  const auto run_with = [](std::size_t eager_limit, int shards) {
    OnlineSimConfig c = small_config(600.0);
    c.link_eager_slot_limit = eager_limit;
    ShardedEngine sim(c, shards, small_topology(), lat::LinkModelConfig{},
                      all_up());
    sim.run();
    std::vector<Coordinate> coords;
    for (NodeId id = 0; id < sim.num_nodes(); ++id)
      coords.push_back(sim.client(id).system_coordinate());
    return std::tuple{coords, sim.pings_sent(), sim.pings_lost(),
                      sim.metrics().observation_count()};
  };
  // limit 0 forces paging at any size; the default keeps this n flat.
  const auto eager = run_with(kPagedStoreDefaultEagerSlotLimit, 1);
  EXPECT_EQ(eager, run_with(0, 1));
  EXPECT_EQ(eager, run_with(0, 3));
}

// The 100k-node layout: sparse per-row compact-indexed link state must be
// observationally identical to the dense (flat/paged) layouts too — every
// link's stream is seeded from its own key, so the physical layout can
// never leak into results.
TEST(ShardedEngine, SparseLinkStateBitIdenticalToDense) {
  const auto run_with = [](std::size_t sparse_limit, int shards) {
    OnlineSimConfig c = small_config(600.0);
    c.link_sparse_slot_limit = sparse_limit;
    ShardedEngine sim(c, shards, small_topology(), lat::LinkModelConfig{},
                      all_up());
    sim.run();
    std::vector<Coordinate> coords;
    for (NodeId id = 0; id < sim.num_nodes(); ++id)
      coords.push_back(sim.client(id).system_coordinate());
    return std::tuple{coords, sim.pings_sent(), sim.pings_lost(),
                      sim.metrics().observation_count(),
                      sim.memory_budget().client_bytes};
  };
  // limit 0 forces the sparse layout at any size; the default keeps this n
  // dense.
  const auto dense = run_with(kShardLinkDefaultSparseSlotLimit, 1);
  EXPECT_EQ(dense, run_with(0, 1));
  EXPECT_EQ(dense, run_with(0, 3));
}

TEST(ShardedEngine, MoreShardsThanNodesWorks) {
  ShardedEngine sim(small_config(300.0), 8, small_topology(5),
                             lat::LinkModelConfig{}, all_up());
  sim.run();
  EXPECT_GT(sim.metrics().observation_count(), 0u);
}

TEST(ShardedEngine, RunTwiceRejected) {
  ShardedEngine sim(small_config(60.0), 2, small_topology(),
                             lat::LinkModelConfig{}, all_up());
  sim.run();
  EXPECT_THROW(sim.run(), CheckError);
}

TEST(ShardedEngine, RejectsBadConfigs) {
  EXPECT_THROW(ShardedEngine(small_config(), 0, small_topology(),
                                      lat::LinkModelConfig{}, all_up()),
               CheckError);
  OnlineSimConfig too_many_peers = small_config();
  too_many_peers.bootstrap_degree = 24;  // == num nodes: would never finish
  EXPECT_THROW(ShardedEngine(too_many_peers, 2, small_topology(24),
                                      lat::LinkModelConfig{}, all_up()),
               CheckError);
  OnlineSimConfig bad_track = small_config();
  bad_track.tracked_nodes = {1};
  bad_track.track_interval_s = 0.0;  // used to spin forever in maybe_track
  EXPECT_THROW(ShardedEngine(bad_track, 2, small_topology(),
                                      lat::LinkModelConfig{}, all_up()),
               CheckError);
  // Route-change validation matches the classic path's
  // schedule_route_change: a non-positive factor fails at construction.
  EXPECT_THROW(ShardedEngine(small_config(), 2, small_topology(),
                                      lat::LinkModelConfig{}, all_up(),
                                      {{0, 1, -2.0, 10.0}}),
               CheckError);
}

// Scheduled route changes reach both directions of the sharded link state.
TEST(ShardedEngine, RouteChangeShiftsObservedRtts) {
  const auto oracle_err = [](double factor) {
    OnlineSimConfig c = small_config(600.0);
    c.collect_oracle = true;
    c.client.filter = FilterConfig::none();
    std::vector<ShardedRouteChange> rcs;
    for (NodeId j = 1; j < 12; ++j) rcs.push_back({0, j, factor, 1.0});
    ShardedEngine sim(c, 3, small_topology(12),
                               lat::LinkModelConfig::noiseless(), all_up(),
                               std::move(rcs));
    sim.run();
    return sim.metrics().oracle_median_error_of(0);
  };
  // With every link of node 0 stretched 3x at t=1s and a noiseless link
  // model, node 0 still embeds consistently (all its links scaled alike),
  // so this mainly proves the schedule was applied without deadlock or
  // directional loss; the unstretched control must differ.
  EXPECT_NE(oracle_err(3.0), oracle_err(1.0));
}

}  // namespace
}  // namespace nc::sim

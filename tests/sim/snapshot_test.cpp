// Snapshot publication out of the epoch-sharded engine: the concurrent-
// reader seam (estimate/snapshot.hpp) and its two load-bearing guarantees —
// publication changes NO metric bit at any shard count, and readers on
// other threads see only complete, monotonically-versioned snapshots. The
// concurrent tests here are the CI ThreadSanitizer targets.
#include "estimate/snapshot.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include "eval/registry.hpp"
#include "eval/scenario.hpp"
#include "latency/trace_generator.hpp"
#include "sim/sharded_sim.hpp"

namespace nc::sim {
namespace {

OnlineSimConfig small_config(double duration = 600.0) {
  OnlineSimConfig c;
  c.client.vivaldi.dim = 3;
  c.client.heuristic = HeuristicConfig::always();
  c.duration_s = duration;
  c.measure_start_s = duration / 2.0;
  c.ping_interval_s = 2.0;
  return c;
}

lat::Topology small_topology(int nodes = 24, std::uint64_t seed = 91) {
  lat::TopologyConfig tc;
  tc.num_nodes = nodes;
  tc.seed = seed;
  return lat::Topology::make(tc);
}

lat::AvailabilityConfig all_up() {
  lat::AvailabilityConfig av;
  av.enabled = false;
  return av;
}

lat::TraceGenConfig small_trace(int nodes = 24, double duration = 600.0) {
  lat::TraceGenConfig tc;
  tc.topology.num_nodes = nodes;
  tc.topology.seed = 91;
  tc.duration_s = duration;
  tc.seed = 7;
  return tc;
}

// Everything a run can disagree on, collapsed into one comparable value.
struct RunDigest {
  std::vector<Coordinate> coords;
  std::uint64_t observations = 0;
  std::uint64_t app_updates = 0;
  double median_err = 0.0;
  double instability = 0.0;

  bool operator==(const RunDigest& o) const {
    return coords == o.coords && observations == o.observations &&
           app_updates == o.app_updates && median_err == o.median_err &&
           instability == o.instability;
  }
};

RunDigest digest(ShardedEngine& sim) {
  RunDigest d;
  for (NodeId id = 0; id < sim.num_nodes(); ++id)
    d.coords.push_back(sim.client(id).system_coordinate());
  d.observations = sim.metrics().observation_count();
  d.app_updates = sim.metrics().total_app_updates();
  d.median_err = sim.metrics().median_relative_error();
  d.instability = sim.metrics().mean_instability_ms_per_s();
  return d;
}

// ISSUE 8's acceptance gate: with publication ON the engine produces
// bit-identical metrics and coordinates to publication OFF, at every shard
// count, in online mode.
TEST(SnapshotPublication, OnlineBitIdenticalOnVsOff) {
  const auto run_with = [](int shards, bool publish) {
    OnlineSimConfig c = small_config();
    c.publish_snapshots = publish;
    ShardedEngine sim(c, shards, small_topology(), lat::LinkModelConfig{},
                      all_up());
    sim.run();
    return digest(sim);
  };
  const RunDigest off = run_with(1, false);
  for (const int shards : {1, 2, 4}) {
    EXPECT_EQ(off, run_with(shards, false)) << "shards=" << shards;
    EXPECT_EQ(off, run_with(shards, true)) << "shards=" << shards;
  }
}

// Same gate in replay mode (and at a coarser publication cadence — the
// interval only changes how often a snapshot appears, never the run).
TEST(SnapshotPublication, ReplayBitIdenticalOnVsOff) {
  const auto run_with = [](int shards, bool publish, int interval) {
    ReplayConfig rc;
    rc.duration_s = 600.0;
    rc.measure_start_s = 300.0;
    rc.shards = shards;
    rc.publish_snapshots = publish;
    rc.snapshot_interval_epochs = interval;
    lat::TraceGenerator gen(small_trace());
    ShardedEngine sim(rc, gen.num_nodes());
    sim.run(gen);
    return digest(sim);
  };
  const RunDigest off = run_with(1, false, 1);
  for (const int shards : {1, 2, 4}) {
    EXPECT_EQ(off, run_with(shards, false, 1)) << "shards=" << shards;
    EXPECT_EQ(off, run_with(shards, true, 1)) << "shards=" << shards;
    EXPECT_EQ(off, run_with(shards, true, 7)) << "shards=" << shards;
  }
}

// The final published snapshot IS the end-of-run client state, and the
// published content is itself shard-count-invariant.
TEST(SnapshotPublication, FinalSnapshotMatchesClientState) {
  const auto final_nodes = [](int shards) {
    OnlineSimConfig c = small_config(400.0);
    c.publish_snapshots = true;
    ShardedEngine sim(c, shards, small_topology(), lat::LinkModelConfig{},
                      all_up());
    sim.run();
    const auto snap = sim.snapshot_publisher().latest();
    EXPECT_NE(snap, nullptr);
    EXPECT_EQ(snap->t_s, 400.0);
    EXPECT_EQ(snap->version, sim.snapshot_publisher().published());
    EXPECT_EQ(snap->num_nodes(), sim.num_nodes());
    for (NodeId id = 0; id < sim.num_nodes(); ++id) {
      const est::SnapshotNode& slot =
          snap->nodes[static_cast<std::size_t>(id)];
      EXPECT_EQ(slot.app, sim.client(id).application_coordinate()) << id;
      // Published error/confidence describe the published coordinate: the
      // app-level pair frozen at its last update, not the live Vivaldi
      // estimate (which keeps moving between app updates).
      EXPECT_EQ(slot.error, sim.client(id).app_error()) << id;
      EXPECT_EQ(slot.confidence, sim.client(id).app_confidence()) << id;
    }
    return snap->nodes;
  };
  const std::vector<est::SnapshotNode> one = final_nodes(1);
  const std::vector<est::SnapshotNode> three = final_nodes(3);
  ASSERT_EQ(one.size(), three.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].app, three[i].app) << i;
    EXPECT_EQ(one[i].error, three[i].error) << i;
    EXPECT_EQ(one[i].confidence, three[i].confidence) << i;
    EXPECT_EQ(one[i].up, three[i].up) << i;
  }
}

// Versions are dense (published() == latest version), and a coarser
// interval publishes fewer, but always at least the end-of-run snapshot.
TEST(SnapshotPublication, VersionsDenseAndIntervalRespected) {
  const auto published = [](int interval) {
    OnlineSimConfig c = small_config(400.0);
    c.publish_snapshots = true;
    c.snapshot_interval_epochs = interval;
    ShardedEngine sim(c, 2, small_topology(), lat::LinkModelConfig{},
                      all_up());
    sim.run();
    const auto snap = sim.snapshot_publisher().latest();
    EXPECT_NE(snap, nullptr);
    EXPECT_EQ(snap->version, sim.snapshot_publisher().published());
    return sim.snapshot_publisher().published();
  };
  const std::uint64_t dense = published(1);
  const std::uint64_t sparse = published(10);
  // 400 s at 2 s epochs: ~200 staged epochs + the final snapshot.
  EXPECT_GT(dense, 100u);
  EXPECT_LT(sparse, dense / 2);
  EXPECT_GE(sparse, 1u);
}

// The concurrent-reader stress test (the CI TSan job runs this binary):
// reader threads hammer latest() while the shard workers run, verifying
// snapshots are complete (every slot either unplaced or carrying finite
// state) and versions never go backwards. Readers deliberately hold the
// previous snapshot so retired buffers are recycled from a reader thread.
TEST(SnapshotPublication, ConcurrentReadersDuringRun) {
  OnlineSimConfig c = small_config(600.0);
  c.publish_snapshots = true;
  ShardedEngine sim(c, 2, small_topology(32), lat::LinkModelConfig{},
                    all_up());

  std::atomic<bool> stop{false};
  std::atomic<bool> monotonic{true};
  std::atomic<std::uint64_t> reads{0};
  const auto reader = [&] {
    std::uint64_t last_version = 0;
    std::shared_ptr<const est::EpochSnapshot> prev;
    double sink = 0.0;
    while (!stop.load(std::memory_order_acquire)) {
      // published() >= v must imply latest() returns version >= v.
      const std::uint64_t floor = sim.snapshot_publisher().published();
      const std::shared_ptr<const est::EpochSnapshot> snap =
          sim.snapshot_publisher().latest();
      if (snap == nullptr) {
        std::this_thread::yield();
        continue;
      }
      if (snap->version < last_version || snap->version < floor)
        monotonic.store(false, std::memory_order_relaxed);
      last_version = snap->version;
      for (const est::SnapshotNode& node : snap->nodes)
        if (node.placed()) sink += node.error + node.confidence;
      prev = snap;
      reads.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
    // Keep the summed reads observable so the loop cannot be elided.
    EXPECT_GE(sink, 0.0);
  };

  std::thread r1(reader);
  std::thread r2(reader);
  sim.run();
  stop.store(true, std::memory_order_release);
  r1.join();
  r2.join();

  EXPECT_TRUE(monotonic.load());
  EXPECT_GT(reads.load(), 0u);
  EXPECT_GT(sim.snapshot_publisher().published(), 0u);
}

// The snapshot estimator backend wired through the engine: --backend
// snapshot runs must themselves be shard-count invariant (every shard
// scores against the same published version each epoch).
TEST(SnapshotPublication, SnapshotBackendMetricsShardInvariant) {
  eval::ScenarioSpec spec = eval::make_scenario("planetlab");
  spec.mode = eval::SimMode::kOnline;
  spec.workload.num_nodes = 32;
  spec.workload.duration_s = 600.0;
  spec.workload.ping_interval_s = 2.0;
  spec.measurement.measure_start_s = 300.0;
  eval::apply_backend(spec, "snapshot");

  spec.shards = 1;
  const eval::ScenarioOutput a = eval::run_scenario(spec);
  spec.shards = 3;
  const eval::ScenarioOutput b = eval::run_scenario(spec);

  EXPECT_EQ(a.pings_sent, b.pings_sent);
  EXPECT_EQ(a.metrics.observation_count(), b.metrics.observation_count());
  EXPECT_EQ(a.metrics.median_relative_error(),
            b.metrics.median_relative_error());
  EXPECT_EQ(a.estimator_stats.queries, b.estimator_stats.queries);
  EXPECT_EQ(a.estimator_stats.direct_hits, b.estimator_stats.direct_hits);
  EXPECT_EQ(a.estimator_stats.fallback_hits, b.estimator_stats.fallback_hits);
  EXPECT_EQ(a.estimator_stats.misses, b.estimator_stats.misses);
  // The backend actually answered from snapshots, not only the fallback.
  EXPECT_GT(a.estimator_stats.direct_hits, 0u);
  // Snapshot buffers are accounted in the engine's memory budget.
  EXPECT_GT(a.memory.snapshot_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Delta publication (ISSUE 10): churn-proportional snapshots must be
// OBSERVATIONALLY IDENTICAL to full publication — same metrics bit for bit
// at any shard count, and any reconstructed view equal to the full snapshot
// slot for slot — while shipping O(changed) bytes per publish.
// ---------------------------------------------------------------------------

// Bit-identity gate, online mode: deltas on == deltas off == publication
// off, at every shard count.
TEST(SnapshotDeltas, OnlineBitIdenticalOnVsOff) {
  const auto run_with = [](int shards, bool publish, bool deltas) {
    OnlineSimConfig c = small_config();
    c.publish_snapshots = publish;
    c.snapshot_deltas = deltas;
    c.snapshot_base_interval = 8;
    ShardedEngine sim(c, shards, small_topology(), lat::LinkModelConfig{},
                      all_up());
    sim.run();
    return digest(sim);
  };
  const RunDigest off = run_with(1, false, false);
  for (const int shards : {1, 2, 4}) {
    EXPECT_EQ(off, run_with(shards, true, true)) << "shards=" << shards;
  }
}

// Bit-identity gate, replay mode, including a coarse publication cadence.
TEST(SnapshotDeltas, ReplayBitIdenticalOnVsOff) {
  const auto run_with = [](int shards, bool deltas, int interval) {
    ReplayConfig rc;
    rc.duration_s = 600.0;
    rc.measure_start_s = 300.0;
    rc.shards = shards;
    rc.publish_snapshots = true;
    rc.snapshot_interval_epochs = interval;
    rc.snapshot_deltas = deltas;
    rc.snapshot_base_interval = 5;
    lat::TraceGenerator gen(small_trace());
    ShardedEngine sim(rc, gen.num_nodes());
    sim.run(gen);
    return digest(sim);
  };
  const RunDigest off = run_with(1, false, 1);
  for (const int shards : {1, 2, 4}) {
    EXPECT_EQ(off, run_with(shards, true, 1)) << "shards=" << shards;
    EXPECT_EQ(off, run_with(shards, true, 7)) << "shards=" << shards;
  }
}

// The final published state under deltas equals full publication's, slot
// for slot (the end-of-run publish always ships a base), and a SnapshotView
// reconstructs exactly that — at every shard count. Deltas actually carried
// the churn: base publishes are a small fraction of all publishes.
TEST(SnapshotDeltas, FinalViewMatchesFullPublication) {
  const auto final_nodes = [](int shards, bool deltas) {
    OnlineSimConfig c = small_config(400.0);
    c.publish_snapshots = true;
    c.snapshot_deltas = deltas;
    c.snapshot_base_interval = 16;
    ShardedEngine sim(c, shards, small_topology(), lat::LinkModelConfig{},
                      all_up());
    sim.run();
    const est::SnapshotPublisher& pub = sim.snapshot_publisher();
    const auto snap = pub.latest();
    EXPECT_NE(snap, nullptr);
    EXPECT_EQ(snap->t_s, 400.0);
    if (deltas) {
      EXPECT_LT(pub.base_publishes(), pub.published() / 4);
      EXPECT_GT(pub.published_delta_bytes(), 0u);
      // A fresh reader reconstructs the final view: one base rebuild plus
      // the (empty-or-not) chain tail, equal to the published base.
      est::SnapshotView view(&pub);
      const est::EpochSnapshot* rec = view.refresh();
      EXPECT_NE(rec, nullptr);
      if (rec != nullptr) {
        EXPECT_EQ(rec->version, pub.published());
        EXPECT_EQ(rec->nodes, snap->nodes);
      }
    }
    return snap->nodes;
  };
  const std::vector<est::SnapshotNode> full = final_nodes(1, false);
  for (const int shards : {1, 3}) {
    const std::vector<est::SnapshotNode> delta = final_nodes(shards, true);
    ASSERT_EQ(full.size(), delta.size());
    for (std::size_t i = 0; i < full.size(); ++i)
      EXPECT_TRUE(full[i] == delta[i]) << "slot " << i << " shards " << shards;
  }
}

// The snapshot estimator backend answers THROUGH a SnapshotView now; with
// deltas on, every engine-internal query must see exactly the view full
// publication would give it: identical metrics AND identical coverage
// counters, deltas on vs off, at multiple shard counts.
TEST(SnapshotDeltas, SnapshotBackendIdenticalOnVsOff) {
  const auto run_with = [](int shards, bool deltas) {
    OnlineSimConfig c = small_config();
    c.estimator.backend = est::EstimatorBackend::kSnapshot;
    c.snapshot_deltas = deltas;
    c.snapshot_base_interval = 8;
    ShardedEngine sim(c, shards, small_topology(32), lat::LinkModelConfig{},
                      all_up());
    sim.run();
    return std::make_tuple(digest(sim), sim.estimator_stats().queries,
                           sim.estimator_stats().direct_hits,
                           sim.estimator_stats().fallback_hits,
                           sim.estimator_stats().misses);
  };
  const auto off = run_with(1, false);
  EXPECT_GT(std::get<2>(off), 0u);  // snapshots actually answered queries
  for (const int shards : {1, 3}) {
    EXPECT_EQ(off, run_with(shards, true)) << "shards=" << shards;
  }
}

// Reader-lag boundaries, driven directly against the publisher: a reader
// within the retained chain (at most one base behind) catches up applying
// deltas only; a reader further behind rebuilds from the newest base. In
// both cases the reconstruction matches the reference state slot for slot.
class DeltaDriver {
 public:
  DeltaDriver(int n, int base_interval, int lanes)
      : lanes_(lanes), state_(static_cast<std::size_t>(n)) {
    pub.enable_deltas(base_interval, lanes);
    for (int i = 0; i < n; ++i) set(i, 0.0);
  }

  /// Gives slot i a placed coordinate encoding `value` (and a derived
  /// error), marking it dirty for the next publish.
  void set(int i, double value) {
    Vec v = Vec::zero(3);
    v[0] = value;
    v[1] = static_cast<double>(i);
    est::SnapshotNode n;
    n.app = Coordinate(v);
    n.error = 0.25 + value / 1024.0;
    n.confidence = 1.0 - n.error;
    n.up = 1;
    state_[static_cast<std::size_t>(i)] = n;
  }

  /// Engine-shaped publish: diff state against the last-published mirror
  /// into round-robin lanes, stage a full buffer when the publisher asks
  /// for a base, publish.
  void publish_next() {
    for (std::size_t i = 0; i < state_.size(); ++i) {
      if (mirror_.size() < state_.size()) mirror_.resize(state_.size());
      if (!(mirror_[i] == state_[i])) {
        pub.lane(static_cast<int>(i) % lanes_)
            .push_back({static_cast<std::uint32_t>(i), state_[i]});
        mirror_[i] = state_[i];
      }
    }
    if (pub.next_is_base()) {
      est::EpochSnapshot& s = pub.staging(static_cast<int>(state_.size()));
      s.nodes = state_;
    }
    pub.publish(static_cast<double>(pub.published()));
  }

  void expect_current(const est::EpochSnapshot* view) const {
    ASSERT_NE(view, nullptr);
    ASSERT_EQ(view->nodes.size(), state_.size());
    EXPECT_EQ(view->version, pub.published());
    for (std::size_t i = 0; i < state_.size(); ++i)
      EXPECT_TRUE(view->nodes[i] == state_[i]) << "slot " << i;
  }

  est::SnapshotPublisher pub;

 private:
  int lanes_;
  std::vector<est::SnapshotNode> state_;
  std::vector<est::SnapshotNode> mirror_;
};

TEST(SnapshotDeltas, ReaderLagWithinOneBaseCatchesUpIncrementally) {
  DeltaDriver d(/*n=*/12, /*base_interval=*/4, /*lanes=*/3);
  est::SnapshotView view(&d.pub);

  d.publish_next();  // version 1: the first base, all slots dirty
  d.expect_current(view.refresh());
  EXPECT_EQ(view.full_rebuilds(), 1u);

  // A few delta publishes, refreshed each time: all incremental.
  for (int round = 1; round <= 6; ++round) {
    d.set(round % 12, static_cast<double>(round));
    d.publish_next();
    d.expect_current(view.refresh());
  }
  EXPECT_EQ(view.full_rebuilds(), 1u);
  EXPECT_EQ(view.delta_refreshes(), 6u);

  // Fall behind across ONE base boundary (stale by < 2 bases): versions 8
  // (base), 9, 10 land unrefreshed; the chain still reaches back far
  // enough, so catch-up stays incremental.
  for (int round = 7; round <= 9; ++round) {
    d.set(round % 12, static_cast<double>(round));
    d.publish_next();
  }
  d.expect_current(view.refresh());
  EXPECT_EQ(view.full_rebuilds(), 1u);
  EXPECT_EQ(view.delta_refreshes(), 7u);
}

TEST(SnapshotDeltas, ReaderLagBeyondOneBaseRebuildsFromBase) {
  DeltaDriver d(/*n=*/12, /*base_interval=*/4, /*lanes=*/3);
  est::SnapshotView view(&d.pub);
  d.publish_next();
  d.expect_current(view.refresh());

  // Two whole base cycles pass unrefreshed: the chain has been pruned past
  // this reader, so it must copy the newest base once — and still land on
  // the exact current state.
  for (int round = 1; round <= 9; ++round) {
    d.set(round % 12, static_cast<double>(round));
    d.publish_next();
  }
  d.expect_current(view.refresh());
  EXPECT_EQ(view.full_rebuilds(), 2u);
  EXPECT_EQ(view.delta_refreshes(), 0u);
}

// Steady-state delta publication allocates nothing: after one base cycle
// has warmed the pools, buffer-allocation counters stay flat and the staged
// buffers/lanes keep their storage across many more publish cycles.
TEST(SnapshotDeltas, SteadyStatePublishingDoesNotAllocate) {
  DeltaDriver d(/*n=*/64, /*base_interval=*/4, /*lanes=*/2);
  est::SnapshotView view(&d.pub);
  // Warm-up: three full base cycles — the live-object population (retained
  // chain + pools) only reaches steady state once the first prune bursts
  // have refilled the pool — with a reader draining so retired buffers
  // recycle.
  for (int round = 0; round < 12; ++round) {
    d.set(round % 64, 100.0 + round);
    d.publish_next();
    view.refresh();
  }
  const std::uint64_t base_allocs = d.pub.base_buffer_allocs();
  const std::uint64_t delta_allocs = d.pub.delta_buffer_allocs();
  const est::SnapshotDeltaEntry* lane0 = d.pub.lane(0).data();
  const std::size_t lane0_cap = d.pub.lane(0).capacity();

  for (int round = 12; round < 48; ++round) {
    d.set(round % 64, 200.0 + round);
    d.publish_next();
    view.refresh();
  }
  EXPECT_EQ(d.pub.base_buffer_allocs(), base_allocs);
  EXPECT_EQ(d.pub.delta_buffer_allocs(), delta_allocs);
  EXPECT_EQ(d.pub.lane(0).data(), lane0);
  EXPECT_EQ(d.pub.lane(0).capacity(), lane0_cap);
}

// Wire accounting: with one slot changing per epoch, delta publishes cost
// O(1) entries while base publishes cost O(n) — the mean bytes per publish
// must sit far below the full-buffer cost (the churn-proportional claim,
// unit-sized).
TEST(SnapshotDeltas, PublishBytesAreChurnProportional) {
  const int n = 256;
  DeltaDriver d(n, /*base_interval=*/16, /*lanes=*/2);
  for (int round = 0; round < 64; ++round) {
    d.set(round % n, static_cast<double>(round));
    d.publish_next();
  }
  const est::SnapshotPublisher& pub = d.pub;
  const double mean_bytes =
      static_cast<double>(pub.published_base_bytes() +
                          pub.published_delta_bytes()) /
      static_cast<double>(pub.published());
  const double full_bytes = 24.0 + n * sizeof(est::SnapshotNode);
  // 4 bases out of 64 publishes + tiny deltas: well under 20% of full cost.
  EXPECT_LT(mean_bytes, 0.20 * full_bytes);
}

// The concurrent-reader stress test for the delta read path (CI TSan runs
// this binary): reader threads each hold their OWN SnapshotView and refresh
// while the shard workers publish deltas. Versions never go backwards,
// refresh never trails published(), and every refreshed view is complete.
TEST(SnapshotDeltas, ConcurrentViewReadersDuringRun) {
  OnlineSimConfig c = small_config(600.0);
  c.publish_snapshots = true;
  c.snapshot_deltas = true;
  c.snapshot_base_interval = 8;
  ShardedEngine sim(c, 2, small_topology(32), lat::LinkModelConfig{},
                    all_up());

  std::atomic<bool> stop{false};
  std::atomic<bool> monotonic{true};
  std::atomic<std::uint64_t> reads{0};
  const auto reader = [&] {
    est::SnapshotView view(&sim.snapshot_publisher());
    std::uint64_t last_version = 0;
    double sink = 0.0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t floor = sim.snapshot_publisher().published();
      const est::EpochSnapshot* snap = view.refresh();
      if (snap == nullptr) {
        std::this_thread::yield();
        continue;
      }
      if (snap->version < last_version || snap->version < floor)
        monotonic.store(false, std::memory_order_relaxed);
      last_version = snap->version;
      for (const est::SnapshotNode& node : snap->nodes)
        if (node.placed()) sink += node.error + node.confidence;
      reads.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
    EXPECT_GE(sink, 0.0);
    EXPECT_GT(view.full_rebuilds() + view.delta_refreshes(), 0u);
  };

  std::thread r1(reader);
  std::thread r2(reader);
  sim.run();
  stop.store(true, std::memory_order_release);
  r1.join();
  r2.join();

  EXPECT_TRUE(monotonic.load());
  EXPECT_GT(reads.load(), 0u);
  EXPECT_GT(sim.snapshot_publisher().published(), 0u);
}

// Delta-mode memory accounting is split and visible: the base side carries
// the O(n) buffers + mirror, the delta side the chain/lanes/pool.
TEST(SnapshotDeltas, MemoryBudgetSplitsBaseAndDelta) {
  OnlineSimConfig c = small_config(200.0);
  c.publish_snapshots = true;
  c.snapshot_deltas = true;
  c.snapshot_base_interval = 8;
  ShardedEngine sim(c, 2, small_topology(), lat::LinkModelConfig{},
                    all_up());
  sim.run();
  const MemoryBudget m = sim.memory_budget();
  EXPECT_GT(m.snapshot_base_bytes, 0u);
  EXPECT_GT(m.snapshot_delta_bytes, 0u);
  EXPECT_GT(m.neighbor_bytes, 0u);
  EXPECT_GE(m.total(), m.snapshot_base_bytes + m.snapshot_delta_bytes +
                           m.neighbor_bytes);
}

}  // namespace
}  // namespace nc::sim

// Snapshot publication out of the epoch-sharded engine: the concurrent-
// reader seam (estimate/snapshot.hpp) and its two load-bearing guarantees —
// publication changes NO metric bit at any shard count, and readers on
// other threads see only complete, monotonically-versioned snapshots. The
// concurrent tests here are the CI ThreadSanitizer targets.
#include "estimate/snapshot.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include "eval/registry.hpp"
#include "eval/scenario.hpp"
#include "latency/trace_generator.hpp"
#include "sim/sharded_sim.hpp"

namespace nc::sim {
namespace {

OnlineSimConfig small_config(double duration = 600.0) {
  OnlineSimConfig c;
  c.client.vivaldi.dim = 3;
  c.client.heuristic = HeuristicConfig::always();
  c.duration_s = duration;
  c.measure_start_s = duration / 2.0;
  c.ping_interval_s = 2.0;
  return c;
}

lat::Topology small_topology(int nodes = 24, std::uint64_t seed = 91) {
  lat::TopologyConfig tc;
  tc.num_nodes = nodes;
  tc.seed = seed;
  return lat::Topology::make(tc);
}

lat::AvailabilityConfig all_up() {
  lat::AvailabilityConfig av;
  av.enabled = false;
  return av;
}

lat::TraceGenConfig small_trace(int nodes = 24, double duration = 600.0) {
  lat::TraceGenConfig tc;
  tc.topology.num_nodes = nodes;
  tc.topology.seed = 91;
  tc.duration_s = duration;
  tc.seed = 7;
  return tc;
}

// Everything a run can disagree on, collapsed into one comparable value.
struct RunDigest {
  std::vector<Coordinate> coords;
  std::uint64_t observations = 0;
  std::uint64_t app_updates = 0;
  double median_err = 0.0;
  double instability = 0.0;

  bool operator==(const RunDigest& o) const {
    return coords == o.coords && observations == o.observations &&
           app_updates == o.app_updates && median_err == o.median_err &&
           instability == o.instability;
  }
};

RunDigest digest(ShardedEngine& sim) {
  RunDigest d;
  for (NodeId id = 0; id < sim.num_nodes(); ++id)
    d.coords.push_back(sim.client(id).system_coordinate());
  d.observations = sim.metrics().observation_count();
  d.app_updates = sim.metrics().total_app_updates();
  d.median_err = sim.metrics().median_relative_error();
  d.instability = sim.metrics().mean_instability_ms_per_s();
  return d;
}

// ISSUE 8's acceptance gate: with publication ON the engine produces
// bit-identical metrics and coordinates to publication OFF, at every shard
// count, in online mode.
TEST(SnapshotPublication, OnlineBitIdenticalOnVsOff) {
  const auto run_with = [](int shards, bool publish) {
    OnlineSimConfig c = small_config();
    c.publish_snapshots = publish;
    ShardedEngine sim(c, shards, small_topology(), lat::LinkModelConfig{},
                      all_up());
    sim.run();
    return digest(sim);
  };
  const RunDigest off = run_with(1, false);
  for (const int shards : {1, 2, 4}) {
    EXPECT_EQ(off, run_with(shards, false)) << "shards=" << shards;
    EXPECT_EQ(off, run_with(shards, true)) << "shards=" << shards;
  }
}

// Same gate in replay mode (and at a coarser publication cadence — the
// interval only changes how often a snapshot appears, never the run).
TEST(SnapshotPublication, ReplayBitIdenticalOnVsOff) {
  const auto run_with = [](int shards, bool publish, int interval) {
    ReplayConfig rc;
    rc.duration_s = 600.0;
    rc.measure_start_s = 300.0;
    rc.shards = shards;
    rc.publish_snapshots = publish;
    rc.snapshot_interval_epochs = interval;
    lat::TraceGenerator gen(small_trace());
    ShardedEngine sim(rc, gen.num_nodes());
    sim.run(gen);
    return digest(sim);
  };
  const RunDigest off = run_with(1, false, 1);
  for (const int shards : {1, 2, 4}) {
    EXPECT_EQ(off, run_with(shards, false, 1)) << "shards=" << shards;
    EXPECT_EQ(off, run_with(shards, true, 1)) << "shards=" << shards;
    EXPECT_EQ(off, run_with(shards, true, 7)) << "shards=" << shards;
  }
}

// The final published snapshot IS the end-of-run client state, and the
// published content is itself shard-count-invariant.
TEST(SnapshotPublication, FinalSnapshotMatchesClientState) {
  const auto final_nodes = [](int shards) {
    OnlineSimConfig c = small_config(400.0);
    c.publish_snapshots = true;
    ShardedEngine sim(c, shards, small_topology(), lat::LinkModelConfig{},
                      all_up());
    sim.run();
    const auto snap = sim.snapshot_publisher().latest();
    EXPECT_NE(snap, nullptr);
    EXPECT_EQ(snap->t_s, 400.0);
    EXPECT_EQ(snap->version, sim.snapshot_publisher().published());
    EXPECT_EQ(snap->num_nodes(), sim.num_nodes());
    for (NodeId id = 0; id < sim.num_nodes(); ++id) {
      const est::SnapshotNode& slot =
          snap->nodes[static_cast<std::size_t>(id)];
      EXPECT_EQ(slot.app, sim.client(id).application_coordinate()) << id;
      EXPECT_EQ(slot.error, sim.client(id).error_estimate()) << id;
      EXPECT_EQ(slot.confidence, sim.client(id).confidence()) << id;
    }
    return snap->nodes;
  };
  const std::vector<est::SnapshotNode> one = final_nodes(1);
  const std::vector<est::SnapshotNode> three = final_nodes(3);
  ASSERT_EQ(one.size(), three.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].app, three[i].app) << i;
    EXPECT_EQ(one[i].error, three[i].error) << i;
    EXPECT_EQ(one[i].confidence, three[i].confidence) << i;
    EXPECT_EQ(one[i].up, three[i].up) << i;
  }
}

// Versions are dense (published() == latest version), and a coarser
// interval publishes fewer, but always at least the end-of-run snapshot.
TEST(SnapshotPublication, VersionsDenseAndIntervalRespected) {
  const auto published = [](int interval) {
    OnlineSimConfig c = small_config(400.0);
    c.publish_snapshots = true;
    c.snapshot_interval_epochs = interval;
    ShardedEngine sim(c, 2, small_topology(), lat::LinkModelConfig{},
                      all_up());
    sim.run();
    const auto snap = sim.snapshot_publisher().latest();
    EXPECT_NE(snap, nullptr);
    EXPECT_EQ(snap->version, sim.snapshot_publisher().published());
    return sim.snapshot_publisher().published();
  };
  const std::uint64_t dense = published(1);
  const std::uint64_t sparse = published(10);
  // 400 s at 2 s epochs: ~200 staged epochs + the final snapshot.
  EXPECT_GT(dense, 100u);
  EXPECT_LT(sparse, dense / 2);
  EXPECT_GE(sparse, 1u);
}

// The concurrent-reader stress test (the CI TSan job runs this binary):
// reader threads hammer latest() while the shard workers run, verifying
// snapshots are complete (every slot either unplaced or carrying finite
// state) and versions never go backwards. Readers deliberately hold the
// previous snapshot so retired buffers are recycled from a reader thread.
TEST(SnapshotPublication, ConcurrentReadersDuringRun) {
  OnlineSimConfig c = small_config(600.0);
  c.publish_snapshots = true;
  ShardedEngine sim(c, 2, small_topology(32), lat::LinkModelConfig{},
                    all_up());

  std::atomic<bool> stop{false};
  std::atomic<bool> monotonic{true};
  std::atomic<std::uint64_t> reads{0};
  const auto reader = [&] {
    std::uint64_t last_version = 0;
    std::shared_ptr<const est::EpochSnapshot> prev;
    double sink = 0.0;
    while (!stop.load(std::memory_order_acquire)) {
      // published() >= v must imply latest() returns version >= v.
      const std::uint64_t floor = sim.snapshot_publisher().published();
      const std::shared_ptr<const est::EpochSnapshot> snap =
          sim.snapshot_publisher().latest();
      if (snap == nullptr) {
        std::this_thread::yield();
        continue;
      }
      if (snap->version < last_version || snap->version < floor)
        monotonic.store(false, std::memory_order_relaxed);
      last_version = snap->version;
      for (const est::SnapshotNode& node : snap->nodes)
        if (node.placed()) sink += node.error + node.confidence;
      prev = snap;
      reads.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
    // Keep the summed reads observable so the loop cannot be elided.
    EXPECT_GE(sink, 0.0);
  };

  std::thread r1(reader);
  std::thread r2(reader);
  sim.run();
  stop.store(true, std::memory_order_release);
  r1.join();
  r2.join();

  EXPECT_TRUE(monotonic.load());
  EXPECT_GT(reads.load(), 0u);
  EXPECT_GT(sim.snapshot_publisher().published(), 0u);
}

// The snapshot estimator backend wired through the engine: --backend
// snapshot runs must themselves be shard-count invariant (every shard
// scores against the same published version each epoch).
TEST(SnapshotPublication, SnapshotBackendMetricsShardInvariant) {
  eval::ScenarioSpec spec = eval::make_scenario("planetlab");
  spec.mode = eval::SimMode::kOnline;
  spec.workload.num_nodes = 32;
  spec.workload.duration_s = 600.0;
  spec.workload.ping_interval_s = 2.0;
  spec.measurement.measure_start_s = 300.0;
  eval::apply_backend(spec, "snapshot");

  spec.shards = 1;
  const eval::ScenarioOutput a = eval::run_scenario(spec);
  spec.shards = 3;
  const eval::ScenarioOutput b = eval::run_scenario(spec);

  EXPECT_EQ(a.pings_sent, b.pings_sent);
  EXPECT_EQ(a.metrics.observation_count(), b.metrics.observation_count());
  EXPECT_EQ(a.metrics.median_relative_error(),
            b.metrics.median_relative_error());
  EXPECT_EQ(a.estimator_stats.queries, b.estimator_stats.queries);
  EXPECT_EQ(a.estimator_stats.direct_hits, b.estimator_stats.direct_hits);
  EXPECT_EQ(a.estimator_stats.fallback_hits, b.estimator_stats.fallback_hits);
  EXPECT_EQ(a.estimator_stats.misses, b.estimator_stats.misses);
  // The backend actually answered from snapshots, not only the fallback.
  EXPECT_GT(a.estimator_stats.direct_hits, 0u);
  // Snapshot buffers are accounted in the engine's memory budget.
  EXPECT_GT(a.memory.snapshot_bytes, 0u);
}

}  // namespace
}  // namespace nc::sim

#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "sim/shard_mailbox.hpp"

namespace nc::sim {
namespace {

struct Payload {
  int id;
};

TEST(EventQueue, EmptyPopsNothing) {
  EventQueue<Payload> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_EQ(q.now(), 0.0);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue<Payload> q;
  q.schedule(3.0, {3});
  q.schedule(1.0, {1});
  q.schedule(2.0, {2});
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop()->payload.id, 1);
  EXPECT_EQ(q.pop()->payload.id, 2);
  EXPECT_EQ(q.pop()->payload.id, 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakInInsertionOrder) {
  EventQueue<Payload> q;
  for (int i = 0; i < 10; ++i) q.schedule(5.0, {i});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.pop()->payload.id, i);
}

TEST(EventQueue, ClockAdvancesWithPops) {
  EventQueue<Payload> q;
  q.schedule(2.5, {1});
  q.schedule(7.0, {2});
  EXPECT_EQ(q.pop()->payload.id, 1);
  EXPECT_EQ(q.now(), 2.5);
  EXPECT_EQ(q.pop()->payload.id, 2);
  EXPECT_EQ(q.now(), 7.0);
}

TEST(EventQueue, SchedulingInThePastRejected) {
  EventQueue<Payload> q;
  q.schedule(10.0, {1});
  EXPECT_EQ(q.pop()->payload.id, 1);
  EXPECT_THROW(q.schedule(5.0, {2}), CheckError);
  q.schedule(10.0, {3});  // same time as now is fine
  EXPECT_EQ(q.pop()->payload.id, 3);
}

TEST(EventQueue, InterleavedScheduleAndPop) {
  EventQueue<Payload> q;
  q.schedule(1.0, {1});
  const auto e1 = q.pop();
  q.schedule(e1->t + 1.0, {2});
  q.schedule(e1->t + 0.5, {3});
  EXPECT_EQ(q.pop()->payload.id, 3);
  EXPECT_EQ(q.pop()->payload.id, 2);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue<Payload> q;
  // Deterministic pseudo-random times.
  std::uint64_t x = 12345;
  for (int i = 0; i < 10000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    q.schedule(static_cast<double>(x % 100000) / 10.0, {i});
  }
  double last = -1.0;
  while (auto e = q.pop()) {
    ASSERT_GE(e->t, last);
    last = e->t;
  }
}

// Same-timestamp events land in one calendar bucket; they must still pop in
// insertion (sequence) order even when interleaved with earlier/later times
// and when the burst is large enough to trigger bucket-count rebuilds.
TEST(EventQueue, LargeSameTimeBurstPopsInInsertionOrder) {
  EventQueue<Payload> q;
  q.schedule(4.0, {-1});
  for (int i = 0; i < 2000; ++i) q.schedule(5.0, {i});
  q.schedule(4.5, {-2});
  EXPECT_EQ(q.pop()->payload.id, -1);
  EXPECT_EQ(q.pop()->payload.id, -2);
  for (int i = 0; i < 2000; ++i) ASSERT_EQ(q.pop()->payload.id, i);
  EXPECT_TRUE(q.empty());
}

// A steady hold pattern cycles the calendar through many "years" (bucket
// wrap-arounds): order must hold across every wrap.
TEST(EventQueue, HoldPatternSurvivesBucketWrapAround) {
  EventQueue<Payload> q;
  std::uint64_t x = 99;
  for (int i = 0; i < 64; ++i) q.schedule(static_cast<double>(i) / 8.0, {i});
  double last = 0.0;
  for (int i = 0; i < 50000; ++i) {
    const auto e = q.pop();
    ASSERT_TRUE(e.has_value());
    ASSERT_GE(e->t, last);
    last = e->t;
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    // Mean increment ~8 time units over 64 held events: the active window
    // keeps sliding far past any fixed bucket year.
    q.schedule(e->t + static_cast<double>(x % 1000) / 64.0, {i});
  }
  EXPECT_EQ(q.size(), 64u);
}

// Events scheduled far beyond the calendar's covered year wait in their
// residue bucket (the overflow case) and must surface exactly in order once
// the near-term traffic drains.
TEST(EventQueue, FarFutureEventsPopAfterNearOnes) {
  EventQueue<Payload> q;
  q.schedule(1e6, {100});  // years ahead of everything else
  q.schedule(2e6, {200});
  for (int i = 0; i < 100; ++i) q.schedule(static_cast<double>(i), {i});
  for (int i = 0; i < 100; ++i) ASSERT_EQ(q.pop()->payload.id, i);
  EXPECT_EQ(q.pop()->payload.id, 100);  // cursor jumps a year gap
  EXPECT_EQ(q.pop()->payload.id, 200);
  EXPECT_EQ(q.pop(), std::nullopt);
  // The queue stays usable after draining through the far-future jump.
  q.schedule(3e6, {300});
  EXPECT_EQ(q.pop()->payload.id, 300);
}

// Grow-then-shrink: a large population resizes the calendar up; draining it
// must shrink back without losing or reordering the survivors.
TEST(EventQueue, ShrinkAfterDrainKeepsRemainingOrder) {
  EventQueue<Payload> q;
  for (int i = 0; i < 5000; ++i) q.schedule(static_cast<double>(i) * 0.01, {i});
  for (int i = 0; i < 4990; ++i) ASSERT_EQ(q.pop()->payload.id, i);
  for (int i = 0; i < 10; ++i) ASSERT_EQ(q.pop()->payload.id, 4990 + i);
  EXPECT_TRUE(q.empty());
}

// ---- ShardEventQueue: canonical (t, kind, a, b, seq) order ----

ShardEvent shard_event(double t, ShardEventKind kind, NodeId a, NodeId b,
                       std::uint64_t seq) {
  ShardEvent ev;
  ev.t = t;
  ev.kind = kind;
  ev.a = a;
  ev.b = b;
  ev.seq = seq;
  return ev;
}

TEST(ShardEventQueue, SameTimeTiesBreakByKindOwnerSenderSeq) {
  ShardEventQueue q;
  // Insert in scrambled order; all at one timestamp.
  q.push(shard_event(7.0, ShardEventKind::kPong, 1, 0, 3));
  q.push(shard_event(7.0, ShardEventKind::kPing, 2, 1, 0));
  q.push(shard_event(7.0, ShardEventKind::kPingTimer, 0, -1, 0));
  q.push(shard_event(7.0, ShardEventKind::kTrack, -1, -1, 0));
  q.push(shard_event(7.0, ShardEventKind::kPing, 1, 1, 5));
  q.push(shard_event(7.0, ShardEventKind::kPing, 1, 1, 2));
  q.push(shard_event(7.0, ShardEventKind::kPing, 1, 0, 9));

  EXPECT_EQ(q.pop().kind, ShardEventKind::kTrack);
  EXPECT_EQ(q.pop().kind, ShardEventKind::kPingTimer);
  ShardEvent e = q.pop();  // kPing ordered by (a, b, seq)
  EXPECT_EQ(e.a, 1);
  EXPECT_EQ(e.b, 0);
  EXPECT_EQ(e.seq, 9u);
  e = q.pop();
  EXPECT_EQ(e.a, 1);
  EXPECT_EQ(e.seq, 2u);
  e = q.pop();
  EXPECT_EQ(e.a, 1);
  EXPECT_EQ(e.seq, 5u);
  e = q.pop();
  EXPECT_EQ(e.a, 2);
  EXPECT_EQ(q.pop().kind, ShardEventKind::kPong);
  EXPECT_TRUE(q.empty());
}

TEST(ShardEventQueue, HasEventBeforeIsAnExclusiveBound) {
  ShardEventQueue q;
  q.push(shard_event(5.0, ShardEventKind::kPingTimer, 0, -1, 0));
  EXPECT_FALSE(q.has_event_before(5.0));
  EXPECT_TRUE(q.has_event_before(5.0001));
  (void)q.pop();
  EXPECT_FALSE(q.has_event_before(1e18));
}

// push_batch is the epoch-delivery path: an arbitrary-order batch (clamped
// deliveries shuffle the canonical order when translated to processing
// keys) must interleave with resident timer events exactly as the
// one-at-a-time path would.
TEST(ShardEventQueue, PushBatchMatchesIndividualPushes) {
  const auto make_events = [] {
    std::vector<ShardEvent> evs;
    std::uint64_t x = 7;
    for (int i = 0; i < 500; ++i) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      const double t = 10.0 + static_cast<double>(x % 64) / 4.0;  // many ties
      const auto kind = (x >> 8) % 2 == 0 ? ShardEventKind::kPing
                                          : ShardEventKind::kPong;
      evs.push_back(shard_event(t, kind, static_cast<NodeId>((x >> 16) % 16),
                                static_cast<NodeId>((x >> 24) % 16), i));
    }
    return evs;
  };
  const auto timers = [] {
    std::vector<ShardEvent> evs;
    for (int i = 0; i < 32; ++i)
      evs.push_back(shard_event(10.0 + static_cast<double>(i),
                                ShardEventKind::kPingTimer, i, -1, 0));
    return evs;
  };

  ShardEventQueue individual;
  for (const ShardEvent& ev : timers()) individual.push(ev);
  for (const ShardEvent& ev : make_events()) individual.push(ev);

  ShardEventQueue batched;
  for (const ShardEvent& ev : timers()) batched.push(ev);
  std::vector<ShardEvent> batch = make_events();
  batched.push_batch(batch);
  EXPECT_TRUE(batch.empty());  // contents consumed

  while (!individual.empty()) {
    ASSERT_FALSE(batched.empty());
    const ShardEvent a = individual.pop();
    const ShardEvent b = batched.pop();
    ASSERT_EQ(a.t, b.t);
    ASSERT_EQ(a.kind, b.kind);
    ASSERT_EQ(a.a, b.a);
    ASSERT_EQ(a.b, b.b);
    ASSERT_EQ(a.seq, b.seq);
  }
  EXPECT_TRUE(batched.empty());
}

// Far-future track ticks coexist with near-term timer traffic across many
// bucket wrap-arounds — the sharded constructor's exact layout.
TEST(ShardEventQueue, TrackTicksSurviveAmongDenseTimers) {
  ShardEventQueue q;
  for (int k = 1; k <= 5; ++k)
    q.push(shard_event(600.0 * k, ShardEventKind::kTrack, -1, -1, 0));
  for (int i = 0; i < 200; ++i)
    q.push(shard_event(static_cast<double>(i) * 0.025,
                       ShardEventKind::kPingTimer, i, -1, 0));
  double last = 0.0;
  int ticks = 0, timers = 0;
  // Hold pattern: every popped timer re-arms 5s ahead until past the ticks.
  while (!q.empty()) {
    const ShardEvent ev = q.pop();
    ASSERT_GE(ev.t, last);
    last = ev.t;
    if (ev.kind == ShardEventKind::kTrack) {
      ++ticks;
    } else {
      ++timers;
      if (ev.t < 3300.0)
        q.push(shard_event(ev.t + 5.0, ShardEventKind::kPingTimer, ev.a, -1,
                           ev.seq + 1));
    }
  }
  EXPECT_EQ(ticks, 5);
  EXPECT_GT(timers, 200 * 600);  // ~660 re-arms per timer chain
}

}  // namespace
}  // namespace nc::sim

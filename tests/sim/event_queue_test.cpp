#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace nc::sim {
namespace {

struct Payload {
  int id;
};

TEST(EventQueue, EmptyPopsNothing) {
  EventQueue<Payload> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_EQ(q.now(), 0.0);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue<Payload> q;
  q.schedule(3.0, {3});
  q.schedule(1.0, {1});
  q.schedule(2.0, {2});
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop()->payload.id, 1);
  EXPECT_EQ(q.pop()->payload.id, 2);
  EXPECT_EQ(q.pop()->payload.id, 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakInInsertionOrder) {
  EventQueue<Payload> q;
  for (int i = 0; i < 10; ++i) q.schedule(5.0, {i});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.pop()->payload.id, i);
}

TEST(EventQueue, ClockAdvancesWithPops) {
  EventQueue<Payload> q;
  q.schedule(2.5, {1});
  q.schedule(7.0, {2});
  EXPECT_EQ(q.pop()->payload.id, 1);
  EXPECT_EQ(q.now(), 2.5);
  EXPECT_EQ(q.pop()->payload.id, 2);
  EXPECT_EQ(q.now(), 7.0);
}

TEST(EventQueue, SchedulingInThePastRejected) {
  EventQueue<Payload> q;
  q.schedule(10.0, {1});
  EXPECT_EQ(q.pop()->payload.id, 1);
  EXPECT_THROW(q.schedule(5.0, {2}), CheckError);
  q.schedule(10.0, {3});  // same time as now is fine
  EXPECT_EQ(q.pop()->payload.id, 3);
}

TEST(EventQueue, InterleavedScheduleAndPop) {
  EventQueue<Payload> q;
  q.schedule(1.0, {1});
  const auto e1 = q.pop();
  q.schedule(e1->t + 1.0, {2});
  q.schedule(e1->t + 0.5, {3});
  EXPECT_EQ(q.pop()->payload.id, 3);
  EXPECT_EQ(q.pop()->payload.id, 2);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue<Payload> q;
  // Deterministic pseudo-random times.
  std::uint64_t x = 12345;
  for (int i = 0; i < 10000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    q.schedule(static_cast<double>(x % 100000) / 10.0, {i});
  }
  double last = -1.0;
  while (auto e = q.pop()) {
    ASSERT_GE(e->t, last);
    last = e->t;
  }
}

}  // namespace
}  // namespace nc::sim

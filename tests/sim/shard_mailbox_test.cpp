#include "sim/shard_mailbox.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace nc::sim {
namespace {

ShardMessage msg(ShardMsgKind kind, double t, NodeId from, NodeId to,
                 std::uint64_t seq) {
  ShardMessage m;
  m.kind = kind;
  m.t = t;
  m.from = from;
  m.to = to;
  m.seq = seq;
  return m;
}

/// One epoch of realistic traffic from every sender shard into `mb`:
/// kPing/kDstError appended in canonical (processing-time) order, kPong
/// with scrambled stochastic arrival times, then sealed.
void emit_epoch(EpochMailbox& mb, int shards, double epoch_start,
                int msgs_per_kind, std::vector<std::uint64_t>& seqs) {
  Rng rng(static_cast<std::uint64_t>(epoch_start) + 17);
  for (int s = 0; s < shards; ++s) {
    for (int i = 0; i < msgs_per_kind; ++i) {
      const double t = epoch_start + static_cast<double>(i) * 0.01;
      const NodeId from = static_cast<NodeId>(s * 100 + i % 7);
      for (int r = 0; r < shards; ++r) {
        const NodeId to = static_cast<NodeId>(r * 100 + i % 5);
        auto& seq = seqs[static_cast<std::size_t>(s)];
        mb.send(s, r, msg(ShardMsgKind::kPing, t, from, to, seq++));
        mb.send(s, r,
                msg(ShardMsgKind::kPong, epoch_start + rng.uniform(0.0, 5.0),
                    from, to, seq++));
        mb.send(s, r, msg(ShardMsgKind::kDstError, t, from, to, seq++));
      }
    }
    mb.seal_outboxes(s);
  }
}

// The k-way merge must reproduce exactly what the old gather-then-sort
// produced: the canonical order over the whole delivery batch.
TEST(EpochMailbox, MergeEqualsCanonicalSort) {
  const int W = 3;
  EpochMailbox mb(W);
  std::vector<std::uint64_t> seqs(W, 0);
  emit_epoch(mb, W, 0.0, 11, seqs);

  for (int r = 0; r < W; ++r) {
    // Reference: gather every run destined to r, then sort.
    std::vector<ShardMessage> expected;
    for (int s = 0; s < W; ++s)
      for (const auto& run : mb.cell(s, r).runs)
        expected.insert(expected.end(), run.begin(), run.end());
    std::sort(expected.begin(), expected.end(), &shard_msg_less);

    std::vector<ShardMessage> out;
    mb.collect_into(r, out);
    ASSERT_EQ(out.size(), expected.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i].t, expected[i].t) << "receiver " << r << " pos " << i;
      ASSERT_EQ(out[i].kind, expected[i].kind);
      ASSERT_EQ(out[i].from, expected[i].from);
      ASSERT_EQ(out[i].to, expected[i].to);
      ASSERT_EQ(out[i].seq, expected[i].seq);
    }
    // Runs are reset for the next epoch.
    for (int s = 0; s < W; ++s)
      for (const auto& run : mb.cell(s, r).runs) EXPECT_TRUE(run.empty());
  }
}

TEST(EpochMailbox, CollectIntoClearsStaleOutput) {
  EpochMailbox mb(2);
  std::vector<ShardMessage> out(7);  // stale junk from a previous epoch
  mb.collect_into(0, out);
  EXPECT_TRUE(out.empty());
  mb.send(1, 0, msg(ShardMsgKind::kPing, 1.0, 100, 1, 0));
  mb.seal_outboxes(1);
  mb.collect_into(0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].from, 100);
}

// The no-reallocation contract of the steady state: with the capacity hint
// sized for the per-epoch traffic, a second identical epoch reuses every
// buffer — outbox runs and the delivery batch keep their exact capacity and
// data pointers.
TEST(EpochMailbox, SecondEpochReallocatesNothing) {
  const int W = 2;
  const int kPerKind = 9;
  EpochMailbox mb(W, /*per_cell_hint=*/kPerKind * 8);
  std::vector<std::uint64_t> seqs(W, 0);
  std::vector<ShardMessage> inbox[2];

  // Epoch 1: warm every buffer.
  emit_epoch(mb, W, 0.0, kPerKind, seqs);
  for (int r = 0; r < W; ++r) mb.collect_into(r, inbox[r]);

  struct Snapshot {
    const ShardMessage* data;
    std::size_t capacity;
  };
  std::vector<Snapshot> snaps;
  for (int s = 0; s < W; ++s)
    for (int r = 0; r < W; ++r)
      for (const auto& run : mb.cell(s, r).runs)
        snaps.push_back({run.data(), run.capacity()});
  for (int r = 0; r < W; ++r)
    snaps.push_back({inbox[r].data(), inbox[r].capacity()});

  // Epoch 2: same traffic shape.
  emit_epoch(mb, W, 5.0, kPerKind, seqs);
  for (int r = 0; r < W; ++r) mb.collect_into(r, inbox[r]);

  std::size_t i = 0;
  for (int s = 0; s < W; ++s)
    for (int r = 0; r < W; ++r)
      for (const auto& run : mb.cell(s, r).runs) {
        EXPECT_EQ(run.data(), snaps[i].data) << "outbox run reallocated";
        EXPECT_EQ(run.capacity(), snaps[i].capacity);
        ++i;
      }
  for (int r = 0; r < W; ++r) {
    EXPECT_EQ(inbox[r].data(), snaps[i].data) << "delivery batch reallocated";
    EXPECT_EQ(inbox[r].capacity(), snaps[i].capacity);
    ++i;
  }
}

TEST(EpochMailbox, CapacityHintPresizesRuns) {
  EpochMailbox mb(2, 32);
  for (int s = 0; s < 2; ++s)
    for (int r = 0; r < 2; ++r)
      for (const auto& run : mb.cell(s, r).runs)
        EXPECT_GE(run.capacity(), 32u);
  EXPECT_THROW(EpochMailbox(0), CheckError);
}

}  // namespace
}  // namespace nc::sim

#include "sim/replay.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "latency/trace_generator.hpp"

namespace nc::sim {
namespace {

lat::TraceGenConfig small_trace(int nodes = 24, double duration = 600.0) {
  lat::TraceGenConfig c;
  c.topology.num_nodes = nodes;
  c.duration_s = duration;
  c.seed = 71;
  c.availability.enabled = false;
  return c;
}

ReplayConfig small_replay(double duration = 600.0) {
  ReplayConfig c;
  c.client.vivaldi.dim = 3;
  c.client.heuristic = HeuristicConfig::always();
  c.duration_s = duration;
  c.measure_start_s = duration / 2.0;
  return c;
}

TEST(ReplayDriver, CoordinatesConvergeOnSyntheticPlanetLab) {
  lat::TraceGenerator gen(small_trace());
  ReplayDriver driver(small_replay(), gen.num_nodes());
  driver.run(gen);
  EXPECT_GT(driver.metrics().observation_count(), 5000u);
  // With the MP filter, the median node should reach reasonable accuracy
  // within 10 minutes on a 24-node network.
  EXPECT_LT(driver.metrics().median_relative_error(), 0.25);
  // Confidence rises from 0 on every node that observed samples.
  int confident = 0;
  for (NodeId id = 0; id < driver.num_nodes(); ++id)
    if (driver.client(id).confidence() > 0.5) ++confident;
  EXPECT_GT(confident, driver.num_nodes() / 2);
}

TEST(ReplayDriver, DeterministicAcrossRuns) {
  const auto run_once = [] {
    lat::TraceGenerator gen(small_trace(16, 300.0));
    ReplayDriver driver(small_replay(300.0), gen.num_nodes());
    driver.run(gen);
    return std::pair{driver.metrics().median_relative_error(),
                     driver.metrics().median_instability_ms_per_s()};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(ReplayDriver, RecordsPastDurationIgnored) {
  lat::TraceGenerator gen(small_trace(8, 600.0));
  ReplayConfig rc = small_replay(300.0);  // driver stops at 300 s
  ReplayDriver driver(rc, gen.num_nodes());
  driver.run(gen);
  EXPECT_GT(driver.metrics().observation_count(), 0u);
  // ~8 nodes * 300 s at 1 Hz minus losses.
  EXPECT_LT(driver.metrics().observation_count(), 8u * 301u);
}

TEST(ReplayDriver, OracleMetricsCollected) {
  lat::TraceGenerator gen(small_trace(12, 300.0));
  ReplayConfig rc = small_replay(300.0);
  rc.collect_oracle = true;
  ReplayDriver driver(rc, gen.num_nodes());
  driver.run(gen, &gen.network());
  const auto cdf = driver.metrics().oracle_per_node_median_error();
  EXPECT_GT(cdf.size(), 6u);
  EXPECT_LT(cdf.median(), 0.5);
}

TEST(ReplayDriver, TracksDriftOfSelectedNodes) {
  lat::TraceGenerator gen(small_trace(8, 300.0));
  ReplayConfig rc = small_replay(300.0);
  rc.tracked_nodes = {0, 3};
  rc.track_interval_s = 60.0;
  ReplayDriver driver(rc, gen.num_nodes());
  driver.run(gen);
  const auto& drift = driver.metrics().drift(3);
  EXPECT_GE(drift.size(), 3u);  // snapshots at 60, 120, 180, 240
  EXPECT_LE(drift.size(), 5u);
}

TEST(ReplayDriver, TraceWithMoreNodesThanDriverRejected) {
  lat::TraceGenerator gen(small_trace(8, 60.0));
  ReplayDriver driver(small_replay(60.0), 4);
  EXPECT_THROW(driver.run(gen), CheckError);
}

TEST(ReplayDriver, AppUpdatesSuppressedByEnergyHeuristic) {
  lat::TraceGenerator gen_a(small_trace(16, 600.0));
  ReplayConfig always = small_replay(600.0);
  ReplayDriver da(always, gen_a.num_nodes());
  da.run(gen_a);

  lat::TraceGenerator gen_b(small_trace(16, 600.0));
  ReplayConfig energy = small_replay(600.0);
  energy.client.heuristic = HeuristicConfig::energy(8.0, 32);
  ReplayDriver db(energy, gen_b.num_nodes());
  db.run(gen_b);

  // Identical workload (same seed): ENERGY must cut application updates and
  // instability dramatically without hurting error much.
  EXPECT_LT(db.metrics().total_app_updates(),
            da.metrics().total_app_updates() / 5);
  EXPECT_LT(db.metrics().median_instability_ms_per_s(),
            da.metrics().median_instability_ms_per_s() / 2.0);
  EXPECT_LT(db.metrics().median_relative_error(),
            da.metrics().median_relative_error() * 1.6 + 0.05);
}

}  // namespace
}  // namespace nc::sim

// Replay mode on the epoch-sharded kernel: the PR 5 port's acceptance
// suite, mirroring sharded_sim_test for SimMode::kReplay. The contract is
// the same as the online engine's: every metric and every coordinate is
// bit-identical for ANY --shards=W, because each entity consumes its
// observation stream in a canonical, partition-independent order.
#include "sim/replay.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "eval/registry.hpp"
#include "eval/scenario.hpp"
#include "latency/trace.hpp"
#include "latency/trace_generator.hpp"

namespace nc::sim {
namespace {

lat::TraceGenConfig small_trace(int nodes = 24, double duration = 600.0) {
  lat::TraceGenConfig c;
  c.topology.num_nodes = nodes;
  c.duration_s = duration;
  c.seed = 71;
  c.availability.enabled = false;
  return c;
}

ReplayConfig small_replay(double duration = 600.0, int shards = 1) {
  ReplayConfig c;
  c.client.vivaldi.dim = 3;
  c.client.heuristic = HeuristicConfig::always();
  c.duration_s = duration;
  c.measure_start_s = duration / 2.0;
  c.shards = shards;
  return c;
}

// Every node's final coordinate bit-identical for any shard count (shards
// own disjoint node sets, so equality here means every client's observation
// stream replayed alike, including the cross-shard state stamps).
TEST(ShardedReplay, CoordinatesBitIdenticalAcrossShardCounts) {
  const auto run_with = [](int shards) {
    lat::TraceGenerator gen(small_trace());
    ReplayDriver driver(small_replay(600.0, shards), gen.num_nodes());
    driver.run(gen);
    std::vector<Coordinate> coords;
    for (NodeId id = 0; id < driver.num_nodes(); ++id)
      coords.push_back(driver.client(id).system_coordinate());
    return std::tuple{coords, driver.metrics().observation_count(),
                      driver.events_processed()};
  };
  const auto one = run_with(1);
  EXPECT_EQ(one, run_with(2));
  EXPECT_EQ(one, run_with(3));
  EXPECT_EQ(one, run_with(4));
}

// The acceptance-level check: full metric surface, bit-identical, on the
// planetlab and churn presets through the scenario engine.
TEST(ShardedReplay, MetricsBitIdenticalOnPresets) {
  for (const char* preset : {"planetlab", "churn"}) {
    eval::ScenarioSpec spec = eval::make_scenario(preset);
    spec.mode = eval::SimMode::kReplay;
    spec.workload.num_nodes = 48;
    spec.workload.duration_s = 900.0;
    spec.measurement.measure_start_s = 450.0;
    spec.measurement.collect_timeseries = true;
    spec.measurement.timeseries_bucket_s = 120.0;

    spec.shards = 1;
    const eval::ScenarioOutput a = eval::run_scenario(spec);
    spec.shards = 4;
    const eval::ScenarioOutput b = eval::run_scenario(spec);

    EXPECT_EQ(a.records, b.records) << preset;
    EXPECT_EQ(a.attempts, b.attempts) << preset;
    EXPECT_EQ(a.absorbed, b.absorbed) << preset;
    EXPECT_EQ(a.metrics.observation_count(), b.metrics.observation_count())
        << preset;
    EXPECT_EQ(a.metrics.total_app_updates(), b.metrics.total_app_updates())
        << preset;
    EXPECT_EQ(a.metrics.median_relative_error(), b.metrics.median_relative_error())
        << preset;
    EXPECT_EQ(a.metrics.mean_instability_ms_per_s(),
              b.metrics.mean_instability_ms_per_s())
        << preset;
    EXPECT_EQ(a.metrics.mean_pct_nodes_updating_per_s(),
              b.metrics.mean_pct_nodes_updating_per_s())
        << preset;

    const auto cdf_equal = [](const stats::Ecdf& x, const stats::Ecdf& y) {
      const auto xs = x.sorted_values();
      const auto ys = y.sorted_values();
      return std::vector<double>(xs.begin(), xs.end()) ==
             std::vector<double>(ys.begin(), ys.end());
    };
    EXPECT_TRUE(cdf_equal(a.metrics.per_node_median_error(),
                          b.metrics.per_node_median_error()))
        << preset;
    EXPECT_TRUE(cdf_equal(a.metrics.per_node_p95_error(),
                          b.metrics.per_node_p95_error()))
        << preset;
    EXPECT_TRUE(cdf_equal(a.metrics.instability(), b.metrics.instability()))
        << preset;
    EXPECT_TRUE(
        cdf_equal(a.metrics.system_instability(), b.metrics.system_instability()))
        << preset;
    EXPECT_TRUE(cdf_equal(a.metrics.per_node_p95_movement(),
                          b.metrics.per_node_p95_movement()))
        << preset;
    EXPECT_TRUE(cdf_equal(a.metrics.per_dst_median_error(),
                          b.metrics.per_dst_median_error()))
        << preset;

    const auto series_equal = [](const std::vector<stats::SeriesPoint>& x,
                                 const std::vector<stats::SeriesPoint>& y) {
      if (x.size() != y.size()) return false;
      for (std::size_t i = 0; i < x.size(); ++i)
        if (x[i].t != y[i].t || x[i].value != y[i].value) return false;
      return true;
    };
    EXPECT_TRUE(series_equal(a.metrics.error_timeseries_median(),
                             b.metrics.error_timeseries_median()))
        << preset;
    EXPECT_TRUE(series_equal(a.metrics.error_timeseries_p95(),
                             b.metrics.error_timeseries_p95()))
        << preset;
    EXPECT_TRUE(series_equal(a.metrics.instability_timeseries(),
                             b.metrics.instability_timeseries()))
        << preset;
  }
}

// Oracle metrics flow through the reader's gt stamps identically at any W.
TEST(ShardedReplay, OracleMetricsShardCountInvariant) {
  const auto oracle_cdf = [](int shards) {
    lat::TraceGenerator gen(small_trace(12, 300.0));
    ReplayConfig rc = small_replay(300.0, shards);
    rc.collect_oracle = true;
    ReplayDriver driver(rc, gen.num_nodes());
    driver.run(gen, &gen.network());
    const auto cdf = driver.metrics().oracle_per_node_median_error();
    return std::vector<double>(cdf.sorted_values().begin(),
                               cdf.sorted_values().end());
  };
  const auto one = oracle_cdf(1);
  EXPECT_GT(one.size(), 6u);
  EXPECT_EQ(one, oracle_cdf(3));
}

// Drift tracking: every shard carries the tick series of its own tracked
// nodes; the merged series must not depend on the partition.
TEST(ShardedReplay, DriftTrackingIsShardCountInvariant) {
  const auto drift_of = [](int shards) {
    lat::TraceGenerator gen(small_trace(24, 600.0));
    ReplayConfig rc = small_replay(600.0, shards);
    rc.tracked_nodes = {1, 17};  // land on different shards at W=3
    rc.track_interval_s = 120.0;
    ReplayDriver driver(rc, gen.num_nodes());
    driver.run(gen);
    std::vector<std::pair<double, Vec>> points;
    for (NodeId id : {1, 17})
      for (const DriftPoint& p : driver.metrics().drift(id))
        points.emplace_back(p.t, p.position);
    return std::pair{points, driver.events_processed()};
  };
  const auto serial = drift_of(1);
  // 4 interior ticks + the final duration_s flush, per tracked node.
  EXPECT_EQ(serial.first.size(), 10u);
  EXPECT_EQ(serial, drift_of(3));
}

// Parallel trace ingest (PR 7): a pre-partitioned replay — every shard
// reading its own slice — must be bit-identical to the single-reader path
// on the unpartitioned trace, for any shard count. Equality of every final
// coordinate plus the merged metric surface means each client consumed the
// same observation stream in the same order.
TEST(ShardedReplay, PartitionedReplayBitIdenticalToSingleReader) {
  const std::string prefix =
      std::string(::testing::TempDir()) + "/replay-part";
  const std::string whole = prefix + ".nctr";
  lat::generate_trace_file(small_trace(32, 600.0), whole);

  struct Result {
    std::vector<Coordinate> coords;
    std::uint64_t observations;
    std::uint64_t events;
    double median_err;
    double instability;
    bool operator==(const Result&) const = default;
  };
  const auto result_of = [](ReplayDriver& driver) {
    Result r;
    for (NodeId id = 0; id < driver.num_nodes(); ++id)
      r.coords.push_back(driver.client(id).system_coordinate());
    r.observations = driver.metrics().observation_count();
    r.events = driver.events_processed();
    r.median_err = driver.metrics().median_relative_error();
    r.instability = driver.metrics().mean_instability_ms_per_s();
    return r;
  };

  lat::TraceReader ref_src(whole);
  ReplayDriver ref(small_replay(600.0, 1), ref_src.num_nodes());
  ref.run(ref_src);
  const Result expected = result_of(ref);

  for (int shards : {1, 2, 3}) {
    lat::TraceReader src(whole);
    const auto paths = lat::partition_trace(src, prefix, src.num_nodes(), shards);
    std::vector<std::unique_ptr<lat::TraceReader>> slices;
    std::vector<lat::TraceSource*> sources;
    for (const std::string& p : paths) {
      slices.push_back(std::make_unique<lat::TraceReader>(p));
      sources.push_back(slices.back().get());
    }
    ReplayDriver driver(small_replay(600.0, shards), ref_src.num_nodes());
    driver.run_partitioned(sources);
    EXPECT_EQ(result_of(driver), expected) << "shards=" << shards;
  }
}

// The partitioned entry point enforces its contract: one slice per shard,
// no nulls, no foreign records in a slice.
TEST(ShardedReplay, PartitionedReplayRejectsBadSlices) {
  const std::string prefix =
      std::string(::testing::TempDir()) + "/replay-part-bad";
  const std::string whole = prefix + ".nctr";
  lat::generate_trace_file(small_trace(12, 60.0), whole);

  {
    // Wrong slice count.
    lat::TraceReader a(whole);
    ReplayDriver driver(small_replay(60.0, 2), 12);
    std::vector<lat::TraceSource*> sources{&a};
    EXPECT_THROW(driver.run_partitioned(sources), CheckError);
  }
  {
    // The whole trace handed to every shard: shard 1's reader immediately
    // sees records whose dst it does not own.
    lat::TraceReader a(whole);
    lat::TraceReader b(whole);
    ReplayDriver driver(small_replay(60.0, 2), 12);
    std::vector<lat::TraceSource*> sources{&a, &b};
    EXPECT_THROW(driver.run_partitioned(sources), CheckError);
  }
}

TEST(ShardedReplay, MoreShardsThanNodesWorks) {
  lat::TraceGenerator gen(small_trace(5, 300.0));
  ReplayDriver driver(small_replay(300.0, 8), gen.num_nodes());
  driver.run(gen);
  EXPECT_GT(driver.metrics().observation_count(), 0u);
}

TEST(ShardedReplay, RunTwiceRejected) {
  lat::TraceGenerator gen(small_trace(8, 60.0));
  ReplayDriver driver(small_replay(60.0, 2), gen.num_nodes());
  driver.run(gen);
  lat::TraceGenerator gen2(small_trace(8, 60.0));
  EXPECT_THROW(driver.run(gen2), CheckError);
}

TEST(ShardedReplay, RejectsBadConfigs) {
  EXPECT_THROW(ReplayDriver(small_replay(600.0, 0), 8), CheckError);
  ReplayConfig bad_epoch = small_replay();
  bad_epoch.epoch_s = 0.0;
  EXPECT_THROW(ReplayDriver(bad_epoch, 8), CheckError);
  ReplayConfig bad_track = small_replay();
  bad_track.tracked_nodes = {1};
  bad_track.track_interval_s = 0.0;
  EXPECT_THROW(ReplayDriver(bad_track, 8), CheckError);
}

// The two run() entry points are mode-gated: a replay engine cannot run as
// an online simulation and vice versa.
TEST(ShardedReplay, ModeMismatchedRunRejected) {
  ShardedEngine replay(small_replay(60.0), 8);
  EXPECT_THROW(replay.run(), CheckError);

  lat::TopologyConfig tc;
  tc.num_nodes = 8;
  OnlineSimConfig oc;
  oc.duration_s = 60.0;
  oc.measure_start_s = 30.0;
  ShardedEngine online(oc, 1, lat::Topology::make(tc));
  lat::TraceGenerator gen(small_trace(8, 60.0));
  EXPECT_THROW(online.run(gen), CheckError);
}

// Scheduled route changes reach the replay oracle via the generating
// network — the composed schedule presets drive replay mode too.
TEST(ShardedReplay, RouteScheduleShiftsOracleRtts) {
  const auto oracle_err = [](const char* schedule) {
    eval::ScenarioSpec spec = eval::make_scenario("planetlab");
    spec.mode = eval::SimMode::kReplay;
    spec.workload.num_nodes = 12;
    spec.workload.duration_s = 300.0;
    spec.workload.availability = lat::AvailabilityConfig{.enabled = false};
    spec.measurement.measure_start_s = 150.0;
    spec.measurement.collect_oracle = true;
    eval::apply_route_schedule(spec, schedule);
    const eval::ScenarioOutput out = eval::run_scenario(spec);
    return out.metrics.oracle_median_error_of(0);
  };
  EXPECT_NE(oracle_err("single-link"), oracle_err("none"));
}

}  // namespace
}  // namespace nc::sim

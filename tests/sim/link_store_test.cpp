// ShardLinkStore: the three directed-link layouts (flat, paged, sparse)
// must be observationally identical — same value at every (row, col), same
// first-touch semantics — differing only in bytes held. The engine-level
// bit-identity run lives in sharded_sim_test (SparseLinkStateBitIdentical-
// ToDense); this file pins the slot-level contract.
#include "sim/link_store.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace nc {
namespace {

struct Slot {
  std::uint64_t value = 0;
  bool touched = false;
};

TEST(ShardLinkStore, ModeSelectionFollowsTheSparseLimit) {
  ShardLinkStore<Slot> dense(10, 10, /*eager_slot_limit=*/100,
                             /*sparse_slot_limit=*/100);
  EXPECT_FALSE(dense.sparse());
  ShardLinkStore<Slot> sparse(10, 10, /*eager_slot_limit=*/100,
                              /*sparse_slot_limit=*/99);
  EXPECT_TRUE(sparse.sparse());
  EXPECT_EQ(sparse.rows(), 10u);
  EXPECT_EQ(sparse.cols(), 10u);
}

TEST(ShardLinkStore, SlotEquivalenceAcrossAllThreeLayouts) {
  constexpr std::size_t kRows = 16;
  constexpr std::size_t kCols = 64;
  ShardLinkStore<Slot> flat(kRows, kCols, kRows * kCols, kRows * kCols);
  ShardLinkStore<Slot> paged(kRows, kCols, /*eager_slot_limit=*/0,
                             kRows * kCols);
  ShardLinkStore<Slot> sparse(kRows, kCols, /*eager_slot_limit=*/0,
                              /*sparse_slot_limit=*/0);
  EXPECT_FALSE(flat.sparse());
  EXPECT_FALSE(paged.sparse());
  EXPECT_TRUE(sparse.sparse());

  // A scattered touch pattern with revisits: first touch must read
  // value-initialized everywhere, revisits must read back the write.
  Rng rng(42);
  for (int step = 0; step < 2000; ++step) {
    const auto row = static_cast<std::size_t>(rng.next_u64() % kRows);
    const auto col = static_cast<std::size_t>(rng.next_u64() % kCols);
    for (ShardLinkStore<Slot>* store : {&flat, &paged, &sparse}) {
      Slot& s = store->at(row, col);
      if (!s.touched) {
        EXPECT_EQ(s.value, 0u) << "fresh slot not value-initialized";
        s.touched = true;
      }
      s.value = static_cast<std::uint64_t>(step);
    }
  }
  for (std::size_t r = 0; r < kRows; ++r)
    for (std::size_t c = 0; c < kCols; ++c) {
      const Slot* a = flat.try_at(r, c);
      const Slot* b = paged.try_at(r, c);
      const Slot* d = sparse.try_at(r, c);
      ASSERT_NE(a, nullptr);  // flat mode materializes everything
      if (d == nullptr) {
        // Never touched: dense layouts must agree it reads fresh.
        EXPECT_FALSE(a->touched);
        if (b != nullptr) {
          EXPECT_FALSE(b->touched);
        }
      } else {
        ASSERT_NE(b, nullptr);
        EXPECT_EQ(a->value, d->value);
        EXPECT_EQ(b->value, d->value);
      }
    }
}

TEST(ShardLinkStore, SparseMemoryTracksTouchedLinksNotLogicalSpace) {
  // A 1000 x 100000 logical space (1e8 slots) where only 64 links per row
  // are ever touched: memory must scale with 64k touched slots, not 1e8.
  ShardLinkStore<Slot> store(1000, 100000, /*eager_slot_limit=*/0,
                             /*sparse_slot_limit=*/0);
  ASSERT_TRUE(store.sparse());
  for (std::size_t r = 0; r < 1000; ++r)
    for (std::size_t k = 0; k < 64; ++k)
      store.at(r, (k * 1543) % 100000).value = r;
  EXPECT_EQ(store.touched(), 64u * 1000u);
  // Slab + per-row tables; far under the ~1.6 GB a dense array would hold.
  EXPECT_LT(store.memory_bytes(), std::size_t{64} << 20);
}

TEST(ShardLinkStore, SparseReferencesStableWithinOneTouch) {
  ShardLinkStore<Slot> store(4, 1000, 0, 0);
  for (std::size_t c = 0; c < 1000; ++c) {
    Slot& s = store.at(2, c);
    s.value = c;  // written through the just-returned reference
  }
  for (std::size_t c = 0; c < 1000; ++c)
    EXPECT_EQ(store.at(2, c).value, c);
}

}  // namespace
}  // namespace nc

#include "sim/online_sim.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace nc::sim {
namespace {

lat::LatencyNetwork small_network(int nodes = 20, std::uint64_t seed = 81) {
  lat::TopologyConfig tc;
  tc.num_nodes = nodes;
  tc.seed = seed;
  lat::AvailabilityConfig av;
  av.enabled = false;
  return lat::LatencyNetwork(lat::Topology::make(tc), lat::LinkModelConfig{}, av, seed);
}

OnlineSimConfig small_config(double duration = 900.0) {
  OnlineSimConfig c;
  c.client.vivaldi.dim = 3;
  c.client.heuristic = HeuristicConfig::always();
  c.duration_s = duration;
  c.measure_start_s = duration / 2.0;
  c.ping_interval_s = 2.0;
  return c;
}

TEST(OnlineSimulator, RunsAndConverges) {
  auto net = small_network();
  OnlineSimulator sim(small_config(), net);
  sim.run();
  EXPECT_GT(sim.pings_sent(), 1000u);
  EXPECT_GT(sim.metrics().observation_count(), 500u);
  EXPECT_LT(sim.metrics().median_relative_error(), 0.3);
}

TEST(OnlineSimulator, RunTwiceRejected) {
  auto net = small_network();
  OnlineSimulator sim(small_config(60.0), net);
  sim.run();
  EXPECT_THROW(sim.run(), CheckError);
}

TEST(OnlineSimulator, GossipSpreadsMembership) {
  auto net = small_network(20);
  OnlineSimConfig c = small_config(900.0);
  c.bootstrap_degree = 1;  // minimal seed knowledge
  OnlineSimulator sim(c, net);
  sim.run();
  // Every node should know far more peers than it was bootstrapped with.
  int grew = 0;
  for (NodeId id = 0; id < sim.num_nodes(); ++id)
    if (sim.neighbors(id).size() >= 5) ++grew;
  EXPECT_GT(grew, sim.num_nodes() * 3 / 4);
}

TEST(OnlineSimulator, DeterministicBySeed) {
  const auto run_once = [] {
    auto net = small_network(12, 83);
    OnlineSimulator sim(small_config(300.0), net);
    sim.run();
    return std::tuple{sim.pings_sent(), sim.metrics().observation_count(),
                      sim.metrics().median_relative_error()};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(OnlineSimulator, IdenticalWorkloadAcrossClientConfigs) {
  // The paper runs filtered and unfiltered coordinate systems side by side
  // on the same hosts. Same seed + same network seed => identical pings and
  // RTT streams regardless of the client configuration.
  const auto pings_with = [](FilterConfig f) {
    auto net = small_network(12, 85);
    OnlineSimConfig c = small_config(300.0);
    c.client.filter = f;
    OnlineSimulator sim(c, net);
    sim.run();
    return std::pair{sim.pings_sent(), sim.pings_lost()};
  };
  EXPECT_EQ(pings_with(FilterConfig::moving_percentile(4, 25)),
            pings_with(FilterConfig::none()));
}

TEST(OnlineSimulator, LossyNetworkStillConverges) {
  lat::TopologyConfig tc;
  tc.num_nodes = 16;
  tc.seed = 87;
  lat::LinkModelConfig lm;
  lm.loss_prob = 0.15;
  lat::AvailabilityConfig av;
  av.enabled = false;
  lat::LatencyNetwork net(lat::Topology::make(tc), lm, av, 87);
  OnlineSimulator sim(small_config(900.0), net);
  sim.run();
  EXPECT_GT(sim.pings_lost(), 0u);
  EXPECT_LT(sim.metrics().median_relative_error(), 0.4);
}

TEST(OnlineSimulator, ChurnedNodesDoNotPingWhileDown) {
  lat::TopologyConfig tc;
  tc.num_nodes = 10;
  tc.seed = 89;
  lat::AvailabilityConfig av;
  av.enabled = true;
  av.initial_up_prob = 0.5;
  av.mean_up_s = 1e9;
  av.mean_down_s = 1e9;
  lat::LatencyNetwork net(lat::Topology::make(tc), lat::LinkModelConfig{}, av, 89);
  OnlineSimulator sim(small_config(300.0), net);
  sim.run();
  // Roughly half the nodes are permanently down: ping volume is well below
  // the all-up expectation of ~10 * 150.
  EXPECT_LT(sim.pings_sent(), 10u * 150u * 3u / 4u);
}

TEST(OnlineSimulator, TracksDrift) {
  auto net = small_network(8);
  OnlineSimConfig c = small_config(600.0);
  c.tracked_nodes = {1};
  c.track_interval_s = 120.0;
  OnlineSimulator sim(c, net);
  sim.run();
  EXPECT_GE(sim.metrics().drift(1).size(), 3u);
}

TEST(OnlineSimulator, DriftSeriesCoversTheWholeRun) {
  auto net = small_network(8);
  OnlineSimConfig c = small_config(600.0);
  c.tracked_nodes = {1};
  c.track_interval_s = 250.0;
  OnlineSimulator sim(c, net);
  sim.run();
  // Interior samples at 250 and 500 plus the final flush at duration_s.
  const auto& d = sim.metrics().drift(1);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d.back().t, 600.0);
}

TEST(OnlineSimulator, NonPositiveTrackIntervalRejected) {
  // Used to spin forever inside maybe_track (next_track_t_ += 0).
  auto net = small_network(8);
  OnlineSimConfig c = small_config(300.0);
  c.tracked_nodes = {1};
  c.track_interval_s = 0.0;
  EXPECT_THROW(OnlineSimulator(c, net), CheckError);
}

TEST(OnlineSimulator, BootstrapDegreeCountsDistinctPeers) {
  // With 8 nodes and degree 5 duplicate draws are near-certain; every node
  // must still start with exactly 5 DISTINCT live peers (the constructor
  // used to count duplicates toward the degree and under-connect).
  auto net = small_network(8);
  OnlineSimConfig c = small_config(60.0);
  c.bootstrap_degree = 5;
  OnlineSimulator sim(c, net);
  for (NodeId id = 0; id < sim.num_nodes(); ++id) {
    EXPECT_EQ(sim.neighbors(id).size(), 5u) << "node " << id;
    EXPECT_FALSE(sim.neighbors(id).contains(id)) << "node " << id;
  }
}

TEST(OnlineSimulator, NetworkWithScheduledRouteChangesRejected) {
  // The facade copies the network's configuration, not its state: a
  // schedule installed on the network object would be silently dropped, so
  // the constructor refuses it (kernel callers pass ShardedRouteChange
  // arguments instead).
  auto net = small_network(8);
  net.schedule_route_change(0, 1, 2.0, 30.0);
  EXPECT_THROW(OnlineSimulator(small_config(60.0), net), CheckError);
}

TEST(OnlineSimulator, BootstrapDegreeMustLeaveANonPeer) {
  // degree >= n can never find enough distinct peers: reject instead of
  // looping forever in the constructor.
  auto net = small_network(8);
  OnlineSimConfig c = small_config(60.0);
  c.bootstrap_degree = 8;
  EXPECT_THROW(OnlineSimulator(c, net), CheckError);
}

}  // namespace
}  // namespace nc::sim

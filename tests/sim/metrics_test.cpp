#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace nc::sim {
namespace {

Coordinate at(double x, double y) { return Coordinate{Vec{x, y}}; }

MetricsConfig small_config() {
  MetricsConfig c;
  c.num_nodes = 4;
  c.duration_s = 100.0;
  c.measure_start_s = 0.0;
  c.min_node_samples = 1;
  return c;
}

ObservationOutcome outcome(double sys_move, bool app_updated, double app_move) {
  ObservationOutcome o;
  o.filtered_rtt_ms = 1.0;
  o.vivaldi_updated = true;
  o.system_displacement_ms = sys_move;
  o.app_updated = app_updated;
  o.app_displacement_ms = app_move;
  return o;
}

TEST(MetricsCollector, RejectsBadConfig) {
  MetricsConfig c = small_config();
  c.num_nodes = 1;
  EXPECT_THROW(MetricsCollector{c}, CheckError);
  c = small_config();
  c.measure_start_s = 200.0;
  EXPECT_THROW(MetricsCollector{c}, CheckError);
  // A window that contains no FULL second (stability metrics cover
  // [ceil(start), ceil(duration))) is rejected up front, not at query time.
  c = small_config();
  c.duration_s = 60.0;
  c.measure_start_s = 59.5;
  EXPECT_THROW(MetricsCollector{c}, CheckError);
}

TEST(MetricsCollector, RelativeErrorPerNode) {
  MetricsCollector m(small_config());
  // Node 0 at (0,0), node 1 at (30,0): predicted 30. Observed 60 => err 0.5.
  m.on_observation(1.0, 0, 1, 60.0, at(0, 0), at(30, 0), outcome(0, false, 0));
  // Observed 30 => err 0.
  m.on_observation(2.0, 0, 1, 30.0, at(0, 0), at(30, 0), outcome(0, false, 0));
  const auto cdf = m.per_node_median_error();
  ASSERT_EQ(cdf.size(), 1u);  // only node 0 observed anything
  EXPECT_DOUBLE_EQ(cdf.median(), 0.25);
  EXPECT_EQ(m.observation_count(), 2u);
}

TEST(MetricsCollector, InstabilityAggregatesPerSecond) {
  MetricsCollector m(small_config());
  // Three observations in second 5 moving 2, 3, 5 ms; one in second 6.
  m.on_observation(5.1, 0, 1, 10.0, at(0, 0), at(10, 0), outcome(9, true, 2));
  m.on_observation(5.5, 1, 2, 10.0, at(0, 0), at(10, 0), outcome(9, true, 3));
  m.on_observation(5.9, 2, 3, 10.0, at(0, 0), at(10, 0), outcome(9, true, 5));
  m.on_observation(6.5, 0, 1, 10.0, at(0, 0), at(10, 0), outcome(9, true, 7));
  const auto cdf = m.instability();
  // 100 seconds window: 98 zero seconds, one 10, one 7.
  EXPECT_EQ(cdf.size(), 100u);
  EXPECT_DOUBLE_EQ(cdf.max(), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 0.0);
  // System instability uses system displacements.
  EXPECT_DOUBLE_EQ(m.system_instability().max(), 27.0);
}

TEST(MetricsCollector, EvalWindowExcludesWarmup) {
  MetricsConfig c = small_config();
  c.measure_start_s = 50.0;
  MetricsCollector m(c);
  m.on_observation(10.0, 0, 1, 10.0, at(0, 0), at(20, 0), outcome(5, true, 5));
  m.on_observation(60.0, 0, 1, 10.0, at(0, 0), at(10, 0), outcome(5, true, 5));
  // Only the t=60 observation is inside the window: err |10-10|/10 = 0.
  const auto cdf = m.per_node_median_error();
  ASSERT_EQ(cdf.size(), 1u);
  EXPECT_DOUBLE_EQ(cdf.median(), 0.0);
  // Instability CDF spans [50, 100).
  EXPECT_EQ(m.instability().size(), 50u);
}

TEST(MetricsCollector, PctNodesUpdatingCountsDistinctNodes) {
  MetricsCollector m(small_config());
  // Two updates by the same node in one second count once.
  m.on_observation(3.1, 0, 1, 10.0, at(0, 0), at(10, 0), outcome(1, true, 1));
  m.on_observation(3.6, 0, 2, 10.0, at(0, 0), at(10, 0), outcome(1, true, 1));
  m.on_observation(3.8, 1, 2, 10.0, at(0, 0), at(10, 0), outcome(1, true, 1));
  // Second 3: 2 of 4 nodes updated => 50%; other 99 seconds 0%.
  EXPECT_NEAR(m.mean_pct_nodes_updating_per_s(), 50.0 / 100.0, 1e-9);
  EXPECT_EQ(m.total_app_updates(), 3u);
}

TEST(MetricsCollector, MinNodeSamplesFilters) {
  MetricsConfig c = small_config();
  c.min_node_samples = 3;
  MetricsCollector m(c);
  for (int i = 0; i < 3; ++i)
    m.on_observation(i + 0.5, 0, 1, 10.0, at(0, 0), at(10, 0), outcome(0, false, 0));
  m.on_observation(0.5, 1, 0, 10.0, at(10, 0), at(0, 0), outcome(0, false, 0));
  EXPECT_EQ(m.per_node_median_error().size(), 1u);  // node 1 has too few
}

TEST(MetricsCollector, TimeSeriesBucketsWholeRun) {
  MetricsConfig c = small_config();
  c.measure_start_s = 50.0;
  c.collect_timeseries = true;
  c.timeseries_bucket_s = 10.0;
  MetricsCollector m(c);
  // Time series include the warm-up (unlike accuracy CDFs).
  m.on_observation(5.0, 0, 1, 10.0, at(0, 0), at(20, 0), outcome(0, false, 0));
  m.on_observation(15.0, 0, 1, 10.0, at(0, 0), at(10, 0), outcome(0, false, 0));
  const auto med = m.error_timeseries_median();
  ASSERT_EQ(med.size(), 2u);
  EXPECT_DOUBLE_EQ(med[0].value, 1.0);  // |20-10|/10
  EXPECT_DOUBLE_EQ(med[1].value, 0.0);
  EXPECT_FALSE(m.error_timeseries_p95().empty());
}

TEST(MetricsCollector, TimeSeriesDisabledThrows) {
  MetricsCollector m(small_config());
  EXPECT_THROW((void)m.error_timeseries_median(), CheckError);
}

TEST(MetricsCollector, InstabilityTimeSeriesAveragesSeconds) {
  MetricsConfig c = small_config();
  c.timeseries_bucket_s = 10.0;
  MetricsCollector m(c);
  m.on_observation(0.5, 0, 1, 10.0, at(0, 0), at(10, 0), outcome(0, true, 20.0));
  const auto ts = m.instability_timeseries();
  ASSERT_FALSE(ts.empty());
  // Bucket [0,10): one second with 20 ms, nine with 0 => mean 2 ms/s.
  EXPECT_DOUBLE_EQ(ts[0].value, 2.0);
}

TEST(MetricsCollector, OracleMetrics) {
  MetricsConfig c = small_config();
  c.collect_oracle = true;
  MetricsCollector m(c);
  for (int i = 0; i < 5; ++i) {
    // Predicted 10 vs ground truth 20 => oracle error 0.5 even though the
    // raw observation (10) would give error 0.
    m.on_observation(i + 0.5, 0, 1, 10.0, at(0, 0), at(10, 0), outcome(0, false, 0),
                     20.0);
  }
  const auto cdf = m.oracle_per_node_median_error();
  ASSERT_EQ(cdf.size(), 1u);
  EXPECT_NEAR(cdf.median(), 0.5, 1e-9);
}

TEST(MetricsCollector, OracleDisabledThrows) {
  MetricsCollector m(small_config());
  EXPECT_THROW((void)m.oracle_per_node_median_error(), CheckError);
}

TEST(MetricsCollector, DriftTracking) {
  MetricsConfig c = small_config();
  c.tracked_nodes = {2};
  MetricsCollector m(c);
  m.track_coordinate(10.0, 2, at(1, 2));
  m.track_coordinate(20.0, 2, at(3, 4));
  const auto& d = m.drift(2);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0].t, 10.0);
  EXPECT_EQ(d[1].position[0], 3.0);
  EXPECT_THROW((void)m.drift(0), CheckError);
}

TEST(MetricsCollector, MeanInstabilityIsTotalMovementOverTime) {
  MetricsConfig c = small_config();
  c.measure_start_s = 50.0;
  MetricsCollector m(c);
  // 10 + 30 = 40 ms of movement over a 50-second window => 0.8 ms/s.
  m.on_observation(60.2, 0, 1, 10.0, at(0, 0), at(10, 0), outcome(0, true, 10.0));
  m.on_observation(70.9, 1, 2, 10.0, at(0, 0), at(10, 0), outcome(0, true, 30.0));
  // Movement before the window is excluded.
  m.on_observation(10.0, 0, 1, 10.0, at(0, 0), at(10, 0), outcome(0, true, 99.0));
  EXPECT_NEAR(m.mean_instability_ms_per_s(), 0.8, 1e-9);
}

TEST(MetricsCollector, OracleMedianOfSingleNode) {
  MetricsConfig c = small_config();
  c.collect_oracle = true;
  c.min_node_samples = 3;
  MetricsCollector m(c);
  for (int i = 0; i < 5; ++i)
    m.on_observation(i + 0.5, 2, 1, 10.0, at(0, 0), at(10, 0), outcome(0, false, 0),
                     20.0);
  EXPECT_NEAR(m.oracle_median_error_of(2), 0.5, 1e-9);
  EXPECT_THROW((void)m.oracle_median_error_of(0), CheckError);  // no samples
}

TEST(MetricsCollector, PerDstMedianErrorKeyedByObservedNode) {
  MetricsCollector m(small_config());
  // Three observers aim at node 3; their errors are 0.5, 0.25 and 0.0, so
  // node 3's per-destination median is 0.25. Node 1 is observed once with
  // error 1.0.
  m.on_observation(1.0, 0, 3, 60.0, at(0, 0), at(30, 0), outcome(0, false, 0));
  m.on_observation(2.0, 1, 3, 40.0, at(0, 0), at(30, 0), outcome(0, false, 0));
  m.on_observation(3.0, 2, 3, 30.0, at(0, 0), at(30, 0), outcome(0, false, 0));
  m.on_observation(4.0, 0, 1, 20.0, at(0, 0), at(40, 0), outcome(0, false, 0));
  EXPECT_DOUBLE_EQ(m.median_error_to(3), 0.25);
  EXPECT_DOUBLE_EQ(m.median_error_to(1), 1.0);
  EXPECT_EQ(m.dst_observation_count(3), 3u);
  EXPECT_EQ(m.dst_observation_count(2), 0u);
  const auto cdf = m.per_dst_median_error();
  ASSERT_EQ(cdf.size(), 2u);  // only nodes 1 and 3 were observed
  EXPECT_DOUBLE_EQ(cdf.max(), 1.0);
}

TEST(MetricsCollector, PerDstExcludesWarmupAndEnforcesMinSamples) {
  MetricsConfig c = small_config();
  c.measure_start_s = 50.0;
  c.min_node_samples = 2;
  MetricsCollector m(c);
  m.on_observation(10.0, 0, 3, 60.0, at(0, 0), at(30, 0), outcome(0, false, 0));
  EXPECT_EQ(m.dst_observation_count(3), 0u);  // warm-up excluded
  m.on_observation(60.0, 0, 3, 60.0, at(0, 0), at(30, 0), outcome(0, false, 0));
  EXPECT_EQ(m.dst_observation_count(3), 1u);
  EXPECT_THROW((void)m.median_error_to(3), CheckError);  // below min samples
  EXPECT_TRUE(m.per_dst_median_error().empty());
  m.on_observation(61.0, 1, 3, 60.0, at(0, 0), at(30, 0), outcome(0, false, 0));
  EXPECT_EQ(m.per_dst_median_error().size(), 1u);
}

TEST(MetricsCollector, FinalizeFlushesTheLastInFlightSecond) {
  MetricsCollector m(small_config());
  // One burst of movement inside a single second, never rolled over: before
  // finalize() the per-node movement distribution has no flushed seconds at
  // all, so the node is invisible and its p95 silently truncated.
  m.on_observation(5.2, 0, 1, 10.0, at(0, 0), at(10, 0), outcome(0, true, 40.0));
  m.on_observation(5.7, 0, 1, 10.0, at(0, 0), at(10, 0), outcome(0, true, 2.0));
  EXPECT_TRUE(m.per_node_p95_movement().empty());
  m.finalize();
  const auto cdf = m.per_node_p95_movement();
  ASSERT_EQ(cdf.size(), 1u);
  // finalize() is idempotent: a second call must not duplicate the second.
  m.finalize();
  EXPECT_EQ(m.per_node_p95_movement().size(), 1u);
}

TEST(MetricsCollector, InstabilityWindowExcludesPartialWarmupSecond) {
  MetricsConfig c = small_config();
  c.measure_start_s = 50.5;  // second 50 straddles the warm-up boundary
  MetricsCollector m(c);
  // In the eval window by the accuracy gate (t >= 50.5), but inside the
  // partial second 50 — its movement must not appear in any per-second
  // stability metric.
  m.on_observation(50.7, 0, 1, 10.0, at(0, 0), at(10, 0), outcome(9, true, 99.0));
  m.on_observation(51.5, 0, 1, 10.0, at(0, 0), at(10, 0), outcome(9, true, 10.0));
  m.finalize();
  // Full seconds 51..99 only: 49 of them, and the 99 ms never leaks in.
  const auto cdf = m.instability();
  EXPECT_EQ(cdf.size(), 49u);
  EXPECT_DOUBLE_EQ(cdf.max(), 10.0);
  EXPECT_NEAR(m.mean_instability_ms_per_s(), 10.0 / 49.0, 1e-9);
  // Accuracy still counts both observations (it gates per observation).
  EXPECT_EQ(m.per_node_median_error().size(), 1u);
  // Per-node movement seconds follow the same full-second boundary.
  const auto p95 = m.per_node_p95_movement();
  ASSERT_EQ(p95.size(), 1u);
  EXPECT_LT(p95.max(), 99.0);
}

TEST(MetricsCollector, DeferredDstAccountingRoutesThroughRecordDstError) {
  MetricsConfig c = small_config();
  c.inline_dst_errors = false;
  MetricsCollector m(c);
  m.on_observation(1.0, 0, 3, 60.0, at(0, 0), at(30, 0), outcome(0, false, 0));
  EXPECT_EQ(m.dst_observation_count(3), 0u);  // inline path disabled
  m.record_dst_error(1.0, 3, 0.5);
  m.record_dst_error(2.0, 3, 0.25);
  m.record_dst_error(3.0, 3, 0.0);
  EXPECT_EQ(m.dst_observation_count(3), 3u);
  EXPECT_DOUBLE_EQ(m.median_error_to(3), 0.25);
}

TEST(MetricsCollector, RecordDstErrorRespectsEvalWindowAndInlineFlag) {
  MetricsConfig c = small_config();
  c.measure_start_s = 50.0;
  c.inline_dst_errors = false;
  MetricsCollector m(c);
  m.record_dst_error(10.0, 2, 1.0);  // warm-up: ignored
  EXPECT_EQ(m.dst_observation_count(2), 0u);
  m.record_dst_error(60.0, 2, 1.0);
  EXPECT_EQ(m.dst_observation_count(2), 1u);
  // The inline-accounting collector rejects the deferred path outright.
  MetricsCollector inline_m(small_config());
  EXPECT_THROW(inline_m.record_dst_error(60.0, 2, 1.0), CheckError);
}

TEST(MetricsCollector, MergeCombinesDisjointNodeSets) {
  MetricsCollector a(small_config());
  MetricsCollector b(small_config());
  // Shard A owns nodes 0-1, shard B owns 2-3; same second, both shards.
  a.on_observation(5.1, 0, 1, 60.0, at(0, 0), at(30, 0), outcome(1, true, 2.0));
  a.on_observation(5.9, 1, 0, 30.0, at(0, 0), at(30, 0), outcome(1, true, 3.0));
  b.on_observation(5.5, 2, 3, 40.0, at(0, 0), at(30, 0), outcome(1, true, 5.0));
  b.on_observation(7.5, 3, 2, 30.0, at(0, 0), at(30, 0), outcome(1, true, 7.0));
  a.merge(b);

  EXPECT_EQ(a.observation_count(), 4u);
  EXPECT_EQ(a.total_app_updates(), 4u);
  EXPECT_EQ(a.per_node_median_error().size(), 4u);
  EXPECT_EQ(a.per_dst_median_error().size(), 4u);
  // Second 5 sums movement across shards: 2 + 3 + 5 = 10; second 7 has 7.
  EXPECT_DOUBLE_EQ(a.instability().max(), 10.0);
  EXPECT_DOUBLE_EQ(a.system_instability().max(), 3.0);
  // Distinct updating nodes in second 5: three of four nodes => mean over
  // the 100 s window = (3 + 1) / 100 nodes-seconds of 4 nodes.
  EXPECT_NEAR(a.mean_pct_nodes_updating_per_s(), 100.0 * 4.0 / 400.0, 1e-9);
}

TEST(MetricsCollector, MergeRejectsOverlapAndConfigMismatch) {
  MetricsCollector a(small_config());
  MetricsCollector b(small_config());
  a.on_observation(1.0, 0, 1, 60.0, at(0, 0), at(30, 0), outcome(0, false, 0));
  b.on_observation(2.0, 0, 1, 60.0, at(0, 0), at(30, 0), outcome(0, false, 0));
  EXPECT_THROW(a.merge(b), CheckError);  // node 0 observed on both sides

  MetricsConfig other = small_config();
  other.duration_s = 200.0;
  MetricsCollector c(other);
  EXPECT_THROW(a.merge(c), CheckError);
}

TEST(MetricsCollector, MergeUnionsDriftAndTimeseries) {
  MetricsConfig ca = small_config();
  ca.tracked_nodes = {0};
  ca.collect_timeseries = true;
  ca.timeseries_bucket_s = 10.0;
  MetricsConfig cb = small_config();
  cb.tracked_nodes = {2};
  cb.collect_timeseries = true;
  cb.timeseries_bucket_s = 10.0;
  MetricsCollector a(ca);
  MetricsCollector b(cb);
  a.track_coordinate(10.0, 0, at(1, 1));
  b.track_coordinate(10.0, 2, at(2, 2));
  a.on_observation(5.0, 0, 1, 10.0, at(0, 0), at(20, 0), outcome(0, false, 0));
  b.on_observation(15.0, 2, 3, 10.0, at(0, 0), at(10, 0), outcome(0, false, 0));
  a.merge(b);
  EXPECT_EQ(a.drift(0).size(), 1u);
  EXPECT_EQ(a.drift(2).size(), 1u);
  const auto med = a.error_timeseries_median();
  ASSERT_EQ(med.size(), 2u);
  EXPECT_DOUBLE_EQ(med[0].value, 1.0);
  EXPECT_DOUBLE_EQ(med[1].value, 0.0);
}

TEST(MetricsCollector, PerNodeMovementPercentile) {
  MetricsCollector m(small_config());
  // Node 0 moves 10 ms in one second, then is quiet: its p95 per-second
  // movement over the 100 s window is ~0 (padded zeros dominate).
  m.on_observation(1.2, 0, 1, 10.0, at(0, 0), at(10, 0), outcome(0, true, 10.0));
  for (int sec = 2; sec < 99; ++sec)
    m.on_observation(sec + 0.1, 0, 1, 10.0, at(0, 0), at(10, 0), outcome(0, false, 0));
  const auto cdf = m.per_node_p95_movement();
  ASSERT_EQ(cdf.size(), 1u);
  EXPECT_LT(cdf.max(), 10.0);
}

// The per-node movement store is capacity-hinted at its first flush: the
// steady-state flush path (one entry per eval second) must never
// reallocate.
TEST(MetricsCollector, NodeSecondFlushesDoNotReallocate) {
  MetricsCollector m(small_config());  // 100 s window
  EXPECT_EQ(m.node_movement_capacity(0), 0u);  // no flush yet, no commit
  // Second 1 opens the node's window; the flush happens when second 2
  // arrives.
  m.on_observation(1.2, 0, 1, 10.0, at(0, 0), at(10, 0), outcome(0, true, 1.0));
  m.on_observation(2.2, 0, 1, 10.0, at(0, 0), at(10, 0), outcome(0, true, 1.0));
  const std::size_t cap = m.node_movement_capacity(0);
  EXPECT_GE(cap, 100u);  // hinted from the eval window, not grown from 1
  for (int sec = 3; sec < 100; ++sec)
    m.on_observation(sec + 0.2, 0, 1, 10.0, at(0, 0), at(10, 0),
                     outcome(0, true, 1.0));
  m.finalize();
  EXPECT_EQ(m.node_movement_capacity(0), cap);  // one window, zero regrowth
}

// Dense drift storage must reject ids outside [0, num_nodes) up front
// (the sparse map silently accepted them).
TEST(MetricsCollector, TrackingOutOfRangeNodeRejected) {
  MetricsConfig c = small_config();
  c.tracked_nodes = {99};
  EXPECT_THROW(MetricsCollector{c}, CheckError);
  MetricsCollector m(small_config());
  EXPECT_THROW(m.track_coordinate(1.0, 99, at(0, 0)), CheckError);
  EXPECT_THROW((void)m.drift(99), CheckError);
}

}  // namespace
}  // namespace nc::sim

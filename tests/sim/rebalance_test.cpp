// Dynamic shard ownership (DESIGN.md Sec. 14): the engine-level acceptance
// suite for epoch-barrier rebalancing. The contract is the kernel's usual
// one, extended across migrations — every metric and every coordinate is
// bit-identical for ANY --shards=W with rebalancing on or off, even though
// node state (link rows, estimator rows, metrics state, pending calendar
// events) physically moves between workers mid-run.
//
// This file is also the TSan stress target: CI builds it with
// -fsanitize=thread and runs it to pin the no-atomics weight-counter and
// migration-channel handoffs as race-free.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/check.hpp"
#include "eval/registry.hpp"
#include "eval/scenario.hpp"
#include "latency/trace.hpp"
#include "latency/trace_generator.hpp"
#include "sim/replay.hpp"
#include "sim/sharded_sim.hpp"

namespace nc::sim {
namespace {

// A workload with deliberate load skew: the lowest half of the ids sits out
// the first half of the run (staged-rollout override), so their home shards
// are nearly idle and the planner has something to fix.
lat::AvailabilityConfig staged_skew(int down_count, double join_s) {
  lat::AvailabilityConfig av;
  av.enabled = false;
  av.staged_down_count = down_count;
  av.staged_join_s = join_s;
  return av;
}

OnlineSimConfig online_config(double duration, int rebalance_every) {
  OnlineSimConfig c;
  c.client.vivaldi.dim = 3;
  c.client.heuristic = HeuristicConfig::always();
  c.duration_s = duration;
  c.measure_start_s = duration / 2.0;
  c.ping_interval_s = 2.0;  // = the kernel's epoch length
  c.rebalance_interval_epochs = rebalance_every;
  c.rebalance_max_moves = 8;
  return c;
}

lat::Topology topology(int nodes) {
  lat::TopologyConfig tc;
  tc.num_nodes = nodes;
  tc.seed = 91;
  return lat::Topology::make(tc);
}

struct Result {
  std::vector<Coordinate> coords;
  std::uint64_t pings_sent = 0;
  std::uint64_t pings_lost = 0;
  std::uint64_t observations = 0;
  std::uint64_t app_updates = 0;
  std::uint64_t events = 0;
  double median_err = 0.0;
  double instability = 0.0;
  bool operator==(const Result&) const = default;
};

struct EngineRun {
  Result result;
  std::uint64_t migrated = 0;
  MemoryBudget memory;
};

EngineRun run_online(int shards, int rebalance_every, int nodes = 24,
               double duration = 600.0) {
  ShardedEngine sim(online_config(duration, rebalance_every), shards,
                    topology(nodes), lat::LinkModelConfig{},
                    staged_skew(nodes / 2, duration / 2.0));
  sim.run();
  EngineRun r;
  for (NodeId id = 0; id < sim.num_nodes(); ++id)
    r.result.coords.push_back(sim.client(id).system_coordinate());
  r.result.pings_sent = sim.pings_sent();
  r.result.pings_lost = sim.pings_lost();
  r.result.observations = sim.metrics().observation_count();
  r.result.app_updates = sim.metrics().total_app_updates();
  r.result.events = sim.events_processed();
  r.result.median_err = sim.metrics().median_relative_error();
  r.result.instability = sim.metrics().mean_instability_ms_per_s();
  r.migrated = sim.migrated_nodes();
  r.memory = sim.memory_budget();
  return r;
}

// The tentpole guarantee, online: rebalancing on at any W is bit-identical
// to one worker — and migrations genuinely happened, so the equality covers
// link rows, estimator rows and metrics state crossing shards.
TEST(Rebalance, OnlineBitIdenticalAcrossShardCountsWithMigration) {
  const EngineRun serial = run_online(1, 0);
  for (int shards : {2, 3, 4}) {
    const EngineRun r = run_online(shards, /*rebalance_every=*/2);
    EXPECT_EQ(r.result, serial.result) << "shards=" << shards;
    EXPECT_GT(r.migrated, 0u) << "shards=" << shards;
  }
}

// On vs. off at the same shard count: the partition's physical placement
// (and the full-height store layout rebalancing forces) must never leak
// into results.
TEST(Rebalance, OnVsOffBitIdenticalAtSameShardCount) {
  const EngineRun off = run_online(3, 0);
  const EngineRun on = run_online(3, 2);
  EXPECT_EQ(on.result, off.result);
  EXPECT_GT(on.migrated, 0u);
  EXPECT_EQ(off.migrated, 0u);
}

// Satellite: every kPong/kObs crosses exactly one epoch barrier (messages
// sent while processing epoch k deliver at k+1). With a decision every
// epoch, in-flight replies routinely target nodes that migrate at that very
// barrier — senders route with the post-move view, pending calendar events
// ship with the node, and the receiver installs before delivering. Equality
// with the serial run proves no reply was lost or double-delivered.
TEST(Rebalance, InFlightEventsFollowTheMigratedNode) {
  const auto run_with = [](int shards, int every) {
    OnlineSimConfig c = online_config(600.0, every);
    c.rebalance_max_moves = 16;
    ShardedEngine sim(c, shards, topology(24), lat::LinkModelConfig{},
                      staged_skew(12, 300.0));
    sim.run();
    std::vector<Coordinate> coords;
    for (NodeId id = 0; id < sim.num_nodes(); ++id)
      coords.push_back(sim.client(id).system_coordinate());
    return std::tuple{coords, sim.pings_sent(), sim.pings_lost(),
                      sim.metrics().observation_count(), sim.migrated_nodes()};
  };
  const auto serial = run_with(1, 0);
  const auto rebalanced = run_with(3, /*every=*/1);
  EXPECT_EQ(std::get<0>(rebalanced), std::get<0>(serial));
  EXPECT_EQ(std::get<1>(rebalanced), std::get<1>(serial));
  EXPECT_EQ(std::get<2>(rebalanced), std::get<2>(serial));
  EXPECT_EQ(std::get<3>(rebalanced), std::get<3>(serial));
  EXPECT_GT(std::get<4>(rebalanced), 0u);
}

// Drift-tracked nodes are pinned (their kTrack tick chain must not change
// hands mid-series); the merged drift output stays shard-count invariant
// while everything around them migrates.
TEST(Rebalance, DriftTrackedNodesArePinnedAndInvariant) {
  const auto drift_of = [](int shards, int every) {
    OnlineSimConfig c = online_config(600.0, every);
    c.tracked_nodes = {1, 17};  // land on different shards at W=3
    c.track_interval_s = 120.0;
    ShardedEngine sim(c, shards, topology(24), lat::LinkModelConfig{},
                      staged_skew(12, 300.0));
    sim.run();
    std::vector<std::pair<double, Vec>> points;
    for (NodeId id : {1, 17})
      for (const DriftPoint& p : sim.metrics().drift(id))
        points.emplace_back(p.t, p.position);
    return std::pair{points, sim.migrated_nodes()};
  };
  const auto serial = drift_of(1, 0);
  EXPECT_EQ(serial.first.size(), 10u);
  const auto rebalanced = drift_of(3, 2);
  EXPECT_EQ(rebalanced.first, serial.first);
  EXPECT_GT(rebalanced.second, 0u);
}

// The IDMS backend keeps a per-node delay-matrix row whose EWMA chains must
// survive migration byte-for-byte; run through the scenario engine with the
// idms backend preset.
TEST(Rebalance, IdmsBackendBitIdenticalAcrossMigration) {
  const auto run_with = [](int shards, int every) {
    eval::ScenarioSpec spec = eval::make_scenario("churn");
    spec.mode = eval::SimMode::kOnline;
    spec.workload.num_nodes = 32;
    spec.workload.duration_s = 600.0;
    spec.workload.ping_interval_s = 2.0;
    spec.measurement.measure_start_s = 300.0;
    eval::apply_backend(spec, "idms");
    spec.shards = shards;
    spec.rebalance_interval_epochs = every;
    const eval::ScenarioOutput out = eval::run_scenario(spec);
    return std::tuple{out.pings_sent, out.pings_lost,
                      out.metrics.observation_count(),
                      out.metrics.median_relative_error(),
                      out.estimator_stats.queries,
                      out.estimator_stats.direct_hits,
                      out.estimator_stats.fallback_hits};
  };
  // Churn availability is the load skew here: down nodes stop generating
  // events, so shard weights diverge and plans fire.
  const auto serial = run_with(1, 0);
  EXPECT_EQ(run_with(3, 2), serial);
  EXPECT_EQ(run_with(2, 4), serial);
}

// Replay mode: same kernel, same guarantee — the record stream re-routes to
// each node's current owner across migrations.
TEST(Rebalance, ReplayBitIdenticalWithMigration) {
  lat::TraceGenConfig tc;
  tc.topology.num_nodes = 24;
  tc.duration_s = 600.0;
  tc.seed = 71;
  // Churn keeps per-node record counts (and thus shard weights) uneven.
  const auto run_with = [&](int shards, int every) {
    lat::TraceGenerator gen(tc);
    ReplayConfig rc;
    rc.client.vivaldi.dim = 3;
    rc.client.heuristic = HeuristicConfig::always();
    rc.duration_s = 600.0;
    rc.measure_start_s = 300.0;
    rc.shards = shards;
    rc.rebalance_interval_epochs = every;
    rc.rebalance_max_moves = 16;
    ReplayDriver driver(rc, gen.num_nodes());
    driver.run(gen);
    std::vector<Coordinate> coords;
    for (NodeId id = 0; id < driver.num_nodes(); ++id)
      coords.push_back(driver.client(id).system_coordinate());
    return std::pair{std::tuple{coords, driver.metrics().observation_count(),
                                driver.events_processed(),
                                driver.metrics().median_relative_error()},
                     driver.migrated_nodes()};
  };
  const auto serial = run_with(1, 0);
  for (int shards : {2, 3}) {
    const auto r = run_with(shards, 2);
    EXPECT_EQ(r.first, serial.first) << "shards=" << shards;
    EXPECT_GT(r.second, 0u) << "shards=" << shards;
  }
}

// Parallel trace ingest composes with rebalancing: slices stay split by the
// STATIC partition (that is how partition_trace wrote them), while delivery
// re-routes each record to the node's current owner.
TEST(Rebalance, PartitionedReplayComposesWithRebalance) {
  const std::string prefix =
      std::string(::testing::TempDir()) + "/rebalance-part";
  const std::string whole = prefix + ".nctr";
  lat::TraceGenConfig tc;
  tc.topology.num_nodes = 24;
  tc.duration_s = 600.0;
  tc.seed = 71;
  lat::generate_trace_file(tc, whole);

  const auto result_of = [](ReplayDriver& driver) {
    std::vector<Coordinate> coords;
    for (NodeId id = 0; id < driver.num_nodes(); ++id)
      coords.push_back(driver.client(id).system_coordinate());
    return std::tuple{coords, driver.metrics().observation_count(),
                      driver.events_processed()};
  };
  ReplayConfig rc;
  rc.client.vivaldi.dim = 3;
  rc.client.heuristic = HeuristicConfig::always();
  rc.duration_s = 600.0;
  rc.measure_start_s = 300.0;
  rc.rebalance_interval_epochs = 2;
  rc.rebalance_max_moves = 16;

  lat::TraceReader ref_src(whole);
  rc.shards = 1;
  ReplayDriver ref(rc, ref_src.num_nodes());
  ref.run(ref_src);
  const auto expected = result_of(ref);

  for (int shards : {2, 3}) {
    lat::TraceReader src(whole);
    const auto paths =
        lat::partition_trace(src, prefix, src.num_nodes(), shards);
    std::vector<std::unique_ptr<lat::TraceReader>> slices;
    std::vector<lat::TraceSource*> sources;
    for (const std::string& p : paths) {
      slices.push_back(std::make_unique<lat::TraceReader>(p));
      sources.push_back(slices.back().get());
    }
    rc.shards = shards;
    ReplayDriver driver(rc, ref_src.num_nodes());
    driver.run_partitioned(sources);
    EXPECT_EQ(result_of(driver), expected) << "shards=" << shards;
    EXPECT_GT(driver.migrated_nodes(), 0u) << "shards=" << shards;
  }
}

// Satellite: migration buffers show up in the memory budget. The high-water
// accounting only exists when hand-offs happened.
TEST(Rebalance, MemoryBudgetAccountsMigrationBuffers) {
  const EngineRun off = run_online(2, 0);
  const EngineRun on = run_online(2, 2);
  EXPECT_GT(on.migrated, 0u);
  EXPECT_GT(on.memory.rebalance_bytes, off.memory.rebalance_bytes);
  // rebalance_bytes participates in the reported total.
  EXPECT_GE(on.memory.total(), on.memory.rebalance_bytes);
}

// Per-shard busy time is measured whenever the engine runs; the bench's
// utilization spread is built from it.
TEST(Rebalance, ReportsPerShardBusyTime) {
  ShardedEngine sim(online_config(120.0, 2), 3, topology(12),
                    lat::LinkModelConfig{}, staged_skew(6, 60.0));
  sim.run();
  ASSERT_EQ(sim.shard_busy_seconds().size(), 3u);
  for (double s : sim.shard_busy_seconds()) EXPECT_GE(s, 0.0);
}

TEST(Rebalance, RejectsBadConfigs) {
  OnlineSimConfig bad = online_config(60.0, -1);
  EXPECT_THROW(ShardedEngine(bad, 2, topology(8), lat::LinkModelConfig{},
                             staged_skew(0, 0.0)),
               CheckError);
  OnlineSimConfig bad_moves = online_config(60.0, 2);
  bad_moves.rebalance_max_moves = -1;
  EXPECT_THROW(ShardedEngine(bad_moves, 2, topology(8), lat::LinkModelConfig{},
                             staged_skew(0, 0.0)),
               CheckError);
}

}  // namespace
}  // namespace nc::sim

#include "latency/link_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace nc::lat {
namespace {

LatencyNetwork make_network(int nodes = 10, std::uint64_t seed = 5,
                            LinkModelConfig lm = {},
                            AvailabilityConfig av = {.enabled = false}) {
  TopologyConfig tc;
  tc.num_nodes = nodes;
  tc.seed = seed;
  return LatencyNetwork(Topology::make(tc), lm, av, seed);
}

TEST(LatencyNetwork, RejectsSelfPing) {
  auto net = make_network();
  EXPECT_THROW((void)net.sample_rtt(1, 1, 0.0), CheckError);
}

// The dense link array has no inert slot for bad endpoints (the sparse map
// it replaced silently tolerated them): every entry point must reject them.
TEST(LatencyNetwork, RejectsBadLinkEndpoints) {
  auto net = make_network(10);
  EXPECT_THROW((void)net.ground_truth_rtt(3, 3, 0.0), CheckError);
  EXPECT_THROW(net.force_route_change(0, 99, 2.0, 0.0), CheckError);
  EXPECT_THROW(net.force_route_change(-1, 2, 2.0, 0.0), CheckError);
  EXPECT_THROW(net.schedule_route_change(5, 5, 2.0, 1.0), CheckError);
}

TEST(LatencyNetwork, DeterministicBySeed) {
  auto a = make_network(10, 77);
  auto b = make_network(10, 77);
  for (int i = 0; i < 200; ++i) {
    const double t = i * 0.5;
    ASSERT_EQ(a.sample_rtt(0, 1, t), b.sample_rtt(0, 1, t));
  }
}

// Paged link storage (the 10k-node fallback behind the triangular index)
// must produce the exact sample stream of the flat default, including
// scheduled route changes landing on lazily-paged slots.
TEST(LatencyNetwork, PagedLinkStateMatchesEagerExactly) {
  TopologyConfig tc;
  tc.num_nodes = 12;
  tc.seed = 91;
  const AvailabilityConfig av{.enabled = false};
  LatencyNetwork eager(Topology::make(tc), LinkModelConfig{}, av, 91);
  LatencyNetwork paged(Topology::make(tc), LinkModelConfig{}, av, 91,
                       /*eager_slot_limit=*/0);
  eager.schedule_route_change(2, 7, 2.5, 40.0);
  paged.schedule_route_change(2, 7, 2.5, 40.0);
  for (int i = 0; i < 300; ++i) {
    const double t = i * 0.5;
    const NodeId src = static_cast<NodeId>(i % 12);
    const NodeId dst = static_cast<NodeId>((i * 7 + 1) % 12);
    if (src == dst) continue;
    ASSERT_EQ(eager.sample_rtt(src, dst, t), paged.sample_rtt(src, dst, t));
    ASSERT_EQ(eager.ground_truth_rtt(src, dst, t),
              paged.ground_truth_rtt(src, dst, t));
  }
}

TEST(LatencyNetwork, DifferentSeedsDiffer) {
  auto a = make_network(10, 77);
  auto b = make_network(10, 78);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    const auto ra = a.sample_rtt(0, 1, i * 1.0);
    const auto rb = b.sample_rtt(0, 1, i * 1.0);
    if (ra.has_value() && rb.has_value() && *ra == *rb) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(LatencyNetwork, BodyTracksBaseRtt) {
  LinkModelConfig lm;
  lm.base_spike_prob = 0.0;
  lm.burst_spike_prob = 0.0;
  lm.node_burst_rate_hz = 0.0;  // handled below: rate 0 => never
  lm.link_burst_rate_hz = 1e-12;
  lm.node_burst_rate_hz = 1e-12;
  lm.route_change_rate_hz = 1e-12;
  lm.loss_prob = 0.0;
  auto net = make_network(6, 9, lm);
  const double base = net.topology().base_rtt_ms(0, 1);
  double sum = 0.0;
  int n = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto r = net.sample_rtt(0, 1, i * 1.0);
    ASSERT_TRUE(r.has_value());
    ASSERT_GT(*r, 0.0);
    sum += *r;
    ++n;
  }
  EXPECT_NEAR(sum / n, base, base * 0.02);  // unit-mean jitter
}

TEST(LatencyNetwork, LossRateMatchesConfig) {
  LinkModelConfig lm;
  lm.loss_prob = 0.2;
  auto net = make_network(6, 11, lm);
  int lost = 0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i)
    if (!net.sample_rtt(0, 1, i * 1.0).has_value()) ++lost;
  EXPECT_NEAR(lost / static_cast<double>(trials), 0.2, 0.02);
}

TEST(LatencyNetwork, SpikesProduceHeavyTail) {
  LinkModelConfig lm;
  lm.base_spike_prob = 0.05;  // exaggerated for the test
  lm.loss_prob = 0.0;
  auto net = make_network(6, 13, lm);
  const double base = net.topology().base_rtt_ms(0, 1);
  int spikes = 0;
  double maxv = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double r = *net.sample_rtt(0, 1, i * 0.1);
    if (r > base * 2.0 + 100.0) ++spikes;
    maxv = std::max(maxv, r);
    ASSERT_LE(r, lm.rtt_cap_ms);
  }
  EXPECT_GT(spikes, 300);           // roughly 5% of 20k, spread over time
  EXPECT_GT(maxv, base + 1000.0);   // the tail reaches orders of magnitude
}

TEST(LatencyNetwork, RttCapRespected) {
  LinkModelConfig lm;
  lm.base_spike_prob = 1.0;  // every sample spikes
  lm.spike_alpha = 0.5;      // brutal tail
  lm.rtt_cap_ms = 5000.0;
  lm.loss_prob = 0.0;
  auto net = make_network(4, 15, lm);
  for (int i = 0; i < 1000; ++i) ASSERT_LE(*net.sample_rtt(0, 1, i * 1.0), 5000.0);
}

TEST(LatencyNetwork, GroundTruthFollowsRouteChanges) {
  LinkModelConfig lm;
  lm.route_change_rate_hz = 1.0 / 50.0;  // fast for the test
  auto net = make_network(6, 17, lm);
  const double g0 = net.ground_truth_rtt(0, 1, 0.0);
  bool changed = false;
  for (int i = 1; i <= 100 && !changed; ++i)
    changed = std::fabs(net.ground_truth_rtt(0, 1, i * 10.0) - g0) > 1e-9;
  EXPECT_TRUE(changed);
}

TEST(LatencyNetwork, ForcedRouteChangeAppliesAndFreezes) {
  auto net = make_network(6, 19);
  const double before = net.ground_truth_rtt(0, 1, 0.0);
  net.force_route_change(0, 1, 2.0, 1.0);
  const double after = net.ground_truth_rtt(0, 1, 2.0);
  EXPECT_NEAR(after, net.topology().base_rtt_ms(0, 1) * 2.0, 1e-9);
  EXPECT_NE(before, after);
  // Frozen: stays at the forced factor arbitrarily far in the future.
  EXPECT_EQ(net.ground_truth_rtt(0, 1, 1e6), after);
}

TEST(LatencyNetwork, ScheduledRouteChangeWaitsForItsTime) {
  auto net = make_network(6, 21);
  net.schedule_route_change(0, 1, 3.0, 100.0);
  const double base = net.topology().base_rtt_ms(0, 1);
  EXPECT_NEAR(net.ground_truth_rtt(0, 1, 50.0), base, 1e-9);
  EXPECT_NEAR(net.ground_truth_rtt(0, 1, 100.0), base * 3.0, 1e-9);
  EXPECT_NEAR(net.ground_truth_rtt(0, 1, 200.0), base * 3.0, 1e-9);
}

TEST(LatencyNetwork, TimeMustNotGoBackwards) {
  auto net = make_network(6, 23);
  (void)net.sample_rtt(0, 1, 100.0);
  EXPECT_THROW((void)net.sample_rtt(0, 1, 50.0), CheckError);
}

TEST(LatencyNetwork, AvailabilityTogglesNodes) {
  AvailabilityConfig av;
  av.enabled = true;
  av.mean_up_s = 100.0;
  av.mean_down_s = 100.0;
  av.initial_up_prob = 1.0;
  auto net = make_network(8, 25, {}, av);
  int up = 0, checks = 0;
  for (int i = 0; i < 400; ++i) {
    if (net.node_up(0, i * 10.0)) ++up;
    ++checks;
  }
  // With equal up/down means the duty cycle is ~50%; allow wide slack.
  EXPECT_GT(up, checks / 10);
  EXPECT_LT(up, checks * 9 / 10);
}

TEST(LatencyNetwork, DisabledAvailabilityKeepsNodesUp) {
  auto net = make_network(8, 27, {}, {.enabled = false});
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(net.node_up(3, i * 100.0));
}

TEST(LatencyNetwork, PingToDownNodeIsLost) {
  AvailabilityConfig av;
  av.enabled = true;
  av.mean_up_s = 1e-3;  // node flaps down almost immediately
  av.mean_down_s = 1e9;
  av.initial_up_prob = 1.0;
  LinkModelConfig lm;
  lm.loss_prob = 0.0;
  auto net = make_network(4, 29, lm, av);
  (void)net.node_up(1, 0.0);
  EXPECT_FALSE(net.sample_rtt(0, 1, 1000.0).has_value());
}

TEST(LatencyNetwork, NoiselessModeIsAStaticLatencyMatrix) {
  // The original Vivaldi evaluation's world: every sample returns exactly
  // the base RTT, forever.
  auto net = make_network(8, 41, LinkModelConfig::noiseless());
  const double base01 = net.topology().base_rtt_ms(0, 1);
  for (int i = 0; i < 500; ++i) {
    const auto r = net.sample_rtt(0, 1, i * 1.0);
    ASSERT_TRUE(r.has_value());
    ASSERT_DOUBLE_EQ(*r, base01);
  }
  // And over a long horizon: no route changes either.
  ASSERT_DOUBLE_EQ(*net.sample_rtt(0, 1, 1e6), base01);
  EXPECT_EQ(net.loss_count(), 0u);
}

TEST(LatencyNetwork, CountersTrackSamplesAndLosses) {
  LinkModelConfig lm;
  lm.loss_prob = 0.5;
  auto net = make_network(4, 31, lm);
  for (int i = 0; i < 100; ++i) (void)net.sample_rtt(0, 1, i * 1.0);
  EXPECT_EQ(net.sample_count(), 100u);
  EXPECT_GT(net.loss_count(), 20u);
  EXPECT_LT(net.loss_count(), 80u);
}

}  // namespace
}  // namespace nc::lat

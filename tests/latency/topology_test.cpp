#include "latency/topology.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/check.hpp"

namespace nc::lat {
namespace {

TEST(Topology, RejectsBadConfig) {
  TopologyConfig c;
  c.num_nodes = 1;
  EXPECT_THROW((void)Topology::make(c), CheckError);
  c = TopologyConfig{};
  c.dim = 0;
  EXPECT_THROW((void)Topology::make(c), CheckError);
}

TEST(Topology, DefaultPlanetLabShape) {
  TopologyConfig c;
  c.num_nodes = 269;
  const Topology t = Topology::make(c);
  EXPECT_EQ(t.size(), 269);
  EXPECT_EQ(t.dim(), 3);
  EXPECT_EQ(t.region_count(), 6);
}

TEST(Topology, RegionApportionmentMatchesWeights) {
  TopologyConfig c;
  c.num_nodes = 100;
  const Topology t = Topology::make(c);
  std::map<int, int> counts;
  for (NodeId id = 0; id < t.size(); ++id) ++counts[t.region_of(id)];
  int total = 0;
  for (const auto& [r, n] : counts) total += n;
  EXPECT_EQ(total, 100);
  // 30% us-east, 30% europe with the default mix.
  EXPECT_EQ(counts[0], 30);
  EXPECT_EQ(counts[2], 30);
}

TEST(Topology, BaseRttSymmetricPositiveAndFloored) {
  TopologyConfig c;
  c.num_nodes = 40;
  const Topology t = Topology::make(c);
  for (NodeId i = 0; i < 40; ++i) {
    for (NodeId j = i + 1; j < 40; ++j) {
      const double rtt = t.base_rtt_ms(i, j);
      ASSERT_GT(rtt, 0.0);
      ASSERT_GE(rtt, c.min_base_rtt_ms);
      ASSERT_EQ(rtt, t.base_rtt_ms(j, i));
    }
  }
}

TEST(Topology, SelfRttRejected) {
  TopologyConfig c;
  c.num_nodes = 4;
  const Topology t = Topology::make(c);
  EXPECT_THROW((void)t.base_rtt_ms(2, 2), CheckError);
}

TEST(Topology, HeightsWithinConfiguredRange) {
  TopologyConfig c;
  c.num_nodes = 120;
  const Topology t = Topology::make(c);
  for (NodeId id = 0; id < t.size(); ++id) {
    ASSERT_GE(t.height_ms(id), c.height_min_ms);
    ASSERT_LE(t.height_ms(id), c.height_max_ms);
  }
}

TEST(Topology, DeterministicBySeed) {
  TopologyConfig c;
  c.num_nodes = 30;
  c.seed = 99;
  const Topology a = Topology::make(c);
  const Topology b = Topology::make(c);
  for (NodeId id = 0; id < 30; ++id) {
    ASSERT_EQ(a.position(id), b.position(id));
    ASSERT_EQ(a.height_ms(id), b.height_ms(id));
  }
  c.seed = 100;
  const Topology d = Topology::make(c);
  EXPECT_FALSE(a.position(0) == d.position(0));
}

TEST(Topology, IntraRegionCloserThanInterRegion) {
  TopologyConfig c;
  c.num_nodes = 120;
  const Topology t = Topology::make(c);
  // Average intra-region RTT must be far below average inter-region RTT.
  double intra = 0.0, inter = 0.0;
  int n_intra = 0, n_inter = 0;
  for (NodeId i = 0; i < t.size(); ++i)
    for (NodeId j = i + 1; j < t.size(); ++j) {
      if (t.region_of(i) == t.region_of(j)) {
        intra += t.base_rtt_ms(i, j);
        ++n_intra;
      } else {
        inter += t.base_rtt_ms(i, j);
        ++n_inter;
      }
    }
  ASSERT_GT(n_intra, 0);
  ASSERT_GT(n_inter, 0);
  EXPECT_LT(intra / n_intra, 0.5 * inter / n_inter);
}

TEST(Topology, HeightsInduceTriangleInequalityViolations) {
  // With access-link heights the base-RTT "metric" violates the triangle
  // inequality relative to any Euclidean embedding: going through a
  // low-height relay can beat the direct path. Verify at least one
  // violation exists among sampled triples.
  TopologyConfig c;
  c.num_nodes = 60;
  const Topology t = Topology::make(c);
  int violations = 0;
  for (NodeId i = 0; i < 20; ++i)
    for (NodeId j = 20; j < 40; ++j)
      for (NodeId k = 40; k < 60; ++k)
        if (t.base_rtt_ms(i, k) > t.base_rtt_ms(i, j) + t.base_rtt_ms(j, k))
          ++violations;
  EXPECT_GT(violations, 0);
}

TEST(Topology, FirstNodeInRegionRoundTrips) {
  TopologyConfig c;
  c.num_nodes = 50;
  const Topology t = Topology::make(c);
  for (int r = 0; r < t.region_count(); ++r) {
    const NodeId id = t.first_node_in_region(r);
    if (id != kInvalidNode) {
      EXPECT_EQ(t.region_of(id), r);
    }
  }
}

TEST(Topology, InterRegionDistancesApproximateContinentalRtts) {
  // us-east <-> europe should sit near 90 ms + heights; us-east <-> us-west
  // near 70 ms; europe <-> east-asia near 280 ms (DESIGN.md table).
  TopologyConfig c;
  c.num_nodes = 200;
  const Topology t = Topology::make(c);
  const auto region_center_rtt = [&](int ra, int rb) {
    double sum = 0.0;
    int n = 0;
    for (NodeId i = 0; i < t.size(); ++i)
      for (NodeId j = i + 1; j < t.size(); ++j)
        if ((t.region_of(i) == ra && t.region_of(j) == rb) ||
            (t.region_of(i) == rb && t.region_of(j) == ra)) {
          sum += t.base_rtt_ms(i, j);
          ++n;
        }
    return sum / n;
  };
  EXPECT_NEAR(region_center_rtt(0, 1), 78.0, 25.0);   // us-east <-> us-west
  EXPECT_NEAR(region_center_rtt(0, 2), 98.0, 25.0);   // us-east <-> europe
  EXPECT_NEAR(region_center_rtt(2, 3), 285.0, 40.0);  // europe <-> east-asia
}

}  // namespace
}  // namespace nc::lat

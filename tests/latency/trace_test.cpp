#include "latency/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include "common/check.hpp"
#include "latency/trace_generator.hpp"

namespace nc::lat {
namespace {

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TraceIo, WriteReadRoundTrip) {
  const std::string path = temp_path("roundtrip.nctr");
  {
    TraceWriter w(path, 5);
    w.append({0.5, 0, 1, 12.5f});
    w.append({1.5, 2, 3, 200.0f});
    w.close();
    EXPECT_EQ(w.written(), 2u);
  }
  TraceReader r(path);
  EXPECT_EQ(r.num_nodes(), 5);
  EXPECT_EQ(r.record_count(), 2u);
  const auto a = r.next();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->t_s, 0.5);
  EXPECT_EQ(a->src, 0);
  EXPECT_EQ(a->dst, 1);
  EXPECT_EQ(a->rtt_ms, 12.5f);
  const auto b = r.next();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->src, 2);
  EXPECT_EQ(r.next(), std::nullopt);
}

TEST(TraceIo, DestructorClosesAndPatchesCount) {
  const std::string path = temp_path("dtor.nctr");
  {
    TraceWriter w(path, 3);
    w.append({0.0, 0, 1, 1.0f});
  }  // no explicit close
  TraceReader r(path);
  EXPECT_EQ(r.record_count(), 1u);
}

TEST(TraceIo, RejectsGarbageFile) {
  const std::string path = temp_path("garbage.nctr");
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a trace";
  }
  EXPECT_THROW(TraceReader{path}, CheckError);
}

TEST(TraceIo, RejectsMissingFile) {
  EXPECT_THROW(TraceReader{temp_path("does-not-exist.nctr")}, CheckError);
}

TEST(TraceIo, AppendAfterCloseRejected) {
  const std::string path = temp_path("closed.nctr");
  TraceWriter w(path, 2);
  w.close();
  EXPECT_THROW(w.append({0.0, 0, 1, 1.0f}), CheckError);
}

TEST(TraceIo, CsvExport) {
  const std::string bin = temp_path("csv-src.nctr");
  {
    TraceWriter w(bin, 3);
    w.append({1.0, 0, 1, 10.0f});
    w.append({2.0, 1, 2, 20.0f});
  }
  TraceReader r(bin);
  const std::string csv = temp_path("out.csv");
  EXPECT_EQ(export_csv(r, csv), 2u);
  std::ifstream in(csv);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "t_s,src,dst,rtt_ms");
  std::getline(in, line);
  EXPECT_EQ(line, "1,0,1,10");
}

// ----------------------------------------------------------- Partitioner --

TEST(TracePartition, SplitsByDstOwnerShardPreservingOrder) {
  const std::string src_path = temp_path("part-src.nctr");
  {
    TraceWriter w(src_path, 8);
    // dst cycles all shards; times strictly increase.
    for (int i = 0; i < 40; ++i)
      w.append({static_cast<double>(i), static_cast<NodeId>(i % 8),
                static_cast<NodeId>((i + 1) % 8), 10.0f + static_cast<float>(i)});
  }
  TraceReader src(src_path);
  const auto paths = partition_trace(src, temp_path("part"), 8, 3);
  ASSERT_EQ(paths.size(), 3u);

  std::uint64_t total = 0;
  for (int s = 0; s < 3; ++s) {
    TraceReader slice(paths[static_cast<std::size_t>(s)]);
    EXPECT_EQ(slice.num_nodes(), 8);
    double last_t = -1.0;
    while (auto r = slice.next()) {
      // Routed by the ONE partition function, original order preserved.
      EXPECT_EQ(shard_of_node(r->dst, 8, 3), s);
      EXPECT_GT(r->t_s, last_t);
      last_t = r->t_s;
      ++total;
    }
  }
  EXPECT_EQ(total, 40u);  // nothing dropped, nothing duplicated
}

TEST(TracePartition, SingleShardSliceEqualsTheSource) {
  const std::string src_path = temp_path("part1-src.nctr");
  generate_trace_file(
      [] {
        TraceGenConfig c;
        c.topology.num_nodes = 8;
        c.duration_s = 60.0;
        c.seed = 33;
        c.availability.enabled = false;
        return c;
      }(),
      src_path);
  TraceReader src(src_path);
  const auto paths = partition_trace(src, temp_path("part1"), 8, 1);
  ASSERT_EQ(paths.size(), 1u);
  TraceReader slice(paths[0]);
  TraceReader ref(src_path);
  EXPECT_EQ(slice.record_count(), ref.record_count());
  while (auto expect = ref.next()) {
    const auto got = slice.next();
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(got->t_s, expect->t_s);
    ASSERT_EQ(got->src, expect->src);
    ASSERT_EQ(got->dst, expect->dst);
    ASSERT_EQ(got->rtt_ms, expect->rtt_ms);
  }
}

TEST(TracePartition, RejectsBadArguments) {
  const std::string src_path = temp_path("partbad-src.nctr");
  {
    TraceWriter w(src_path, 8);
    w.append({0.0, 0, 1, 1.0f});
  }
  TraceReader a(src_path);
  EXPECT_THROW(partition_trace(a, temp_path("partbad"), 8, 0), CheckError);
  TraceReader b(src_path);
  // Partition node space must cover the trace's.
  EXPECT_THROW(partition_trace(b, temp_path("partbad"), 4, 2), CheckError);
}

// ------------------------------------------------------------- Generator --

TraceGenConfig small_config() {
  TraceGenConfig c;
  c.topology.num_nodes = 8;
  c.duration_s = 120.0;
  c.seed = 33;
  c.availability.enabled = false;
  c.link_model.loss_prob = 0.0;
  return c;
}

TEST(TraceGenerator, RecordsAreTimeOrderedAndValid) {
  TraceGenerator gen(small_config());
  double last_t = 0.0;
  std::uint64_t n = 0;
  while (auto r = gen.next()) {
    ASSERT_GE(r->t_s, last_t);
    ASSERT_LT(r->t_s, 120.0);
    ASSERT_GE(r->src, 0);
    ASSERT_LT(r->src, 8);
    ASSERT_GE(r->dst, 0);
    ASSERT_LT(r->dst, 8);
    ASSERT_NE(r->src, r->dst);
    ASSERT_GT(r->rtt_ms, 0.0f);
    last_t = r->t_s;
    ++n;
  }
  // 8 nodes at 1 Hz for 120 s, no loss/churn: ~960 records.
  EXPECT_NEAR(static_cast<double>(n), 960.0, 16.0);
  EXPECT_EQ(gen.produced(), n);
}

TEST(TraceGenerator, RoundRobinCoversAllPartners) {
  TraceGenerator gen(small_config());
  std::set<NodeId> partners_of_3;
  while (auto r = gen.next())
    if (r->src == 3) partners_of_3.insert(r->dst);
  EXPECT_EQ(partners_of_3.size(), 7u);  // every other node
}

TEST(TraceGenerator, DeterministicBySeed) {
  TraceGenerator a(small_config());
  TraceGenerator b(small_config());
  while (true) {
    const auto ra = a.next();
    const auto rb = b.next();
    ASSERT_EQ(ra.has_value(), rb.has_value());
    if (!ra.has_value()) break;
    ASSERT_EQ(ra->t_s, rb->t_s);
    ASSERT_EQ(ra->src, rb->src);
    ASSERT_EQ(ra->dst, rb->dst);
    ASSERT_EQ(ra->rtt_ms, rb->rtt_ms);
  }
}

TEST(TraceGenerator, LossReducesYield) {
  TraceGenConfig c = small_config();
  c.link_model.loss_prob = 0.3;
  TraceGenerator gen(c);
  std::uint64_t n = 0;
  while (gen.next()) ++n;
  EXPECT_LT(static_cast<double>(n), 0.8 * static_cast<double>(gen.attempts()));
  EXPECT_GT(static_cast<double>(n), 0.5 * static_cast<double>(gen.attempts()));
}

TEST(TraceGenerator, PingIntervalControlsRate) {
  TraceGenConfig c = small_config();
  c.ping_interval_s = 10.0;
  TraceGenerator gen(c);
  std::uint64_t n = 0;
  while (gen.next()) ++n;
  EXPECT_NEAR(static_cast<double>(n), 96.0, 10.0);
}

TEST(TraceGenerator, FileGenerationMatchesStreaming) {
  const std::string path = temp_path("gen.nctr");
  const auto written = generate_trace_file(small_config(), path);
  TraceReader r(path);
  EXPECT_EQ(r.record_count(), written);
  EXPECT_EQ(r.num_nodes(), 8);

  TraceGenerator gen(small_config());
  std::uint64_t matched = 0;
  while (auto expect = gen.next()) {
    const auto got = r.next();
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(got->t_s, expect->t_s);
    ASSERT_EQ(got->rtt_ms, expect->rtt_ms);
    ++matched;
  }
  EXPECT_EQ(matched, written);
}

TEST(TraceGenerator, ChurnSuppressesDownNodes) {
  TraceGenConfig c = small_config();
  c.availability.enabled = true;
  c.availability.initial_up_prob = 0.5;
  c.availability.mean_up_s = 1e9;   // whoever starts up stays up
  c.availability.mean_down_s = 1e9; // whoever starts down stays down
  TraceGenerator gen(c);
  std::set<NodeId> sources;
  while (auto r = gen.next()) sources.insert(r->src);
  EXPECT_LT(sources.size(), 8u);  // some nodes never ping
  EXPECT_GE(sources.size(), 1u);
}

}  // namespace
}  // namespace nc::lat

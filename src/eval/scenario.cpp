#include "eval/scenario.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>

#include <algorithm>

#include "common/check.hpp"
#include "latency/trace.hpp"
#include "sim/replay.hpp"
#include "sim/sharded_sim.hpp"

namespace nc::eval {

namespace {

/// A process-unique temp-file prefix for partition-on-open slices. Grid runs
/// execute many scenarios concurrently in one process, so a static counter
/// (not the pid alone) keeps concurrent partitioned replays apart.
std::string partition_prefix() {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  const std::filesystem::path dir = std::filesystem::temp_directory_path();
  return (dir / ("nc_scenario_part_" + std::to_string(::getpid()) + "_" +
                 std::to_string(n)))
      .string();
}

/// Deletes the partition slice files when the replay is done (or throws).
struct SliceCleanup {
  std::vector<std::string> paths;
  ~SliceCleanup() {
    for (const std::string& p : paths) std::remove(p.c_str());
  }
};

ScenarioOutput run_replay_mode(const ScenarioSpec& spec) {
  lat::TraceGenerator gen(resolve_trace_config(spec.workload));
  for (const RouteChangeEvent& rc : spec.workload.route_changes)
    gen.network().schedule_route_change(rc.i, rc.j, rc.factor, rc.at_t);

  sim::ReplayConfig rc;
  rc.client = spec.client;
  rc.duration_s = spec.workload.duration_s;
  rc.measure_start_s = resolved_measure_start_s(spec);
  // The kernel's epoch matches the trace cadence; spec.shards = 0 means
  // "one worker shard" (there is no other replay engine).
  rc.epoch_s = spec.workload.ping_interval_s;
  rc.shards = std::max(1, spec.shards);
  rc.collect_timeseries = spec.measurement.collect_timeseries;
  rc.timeseries_bucket_s = spec.measurement.timeseries_bucket_s;
  rc.collect_oracle = spec.measurement.collect_oracle;
  rc.tracked_nodes = spec.measurement.tracked_nodes;
  rc.track_interval_s = spec.measurement.track_interval_s;
  rc.estimator = spec.estimator;
  rc.rebalance_interval_epochs = spec.rebalance_interval_epochs;
  rc.rebalance_max_moves = spec.rebalance_max_moves;

  sim::ReplayDriver driver(rc, gen.num_nodes());
  // Partitioned replay is the default at shards > 1, EXCEPT under
  // collect_oracle: oracle sampling hits the generating network, which is
  // not safe from concurrent readers — those runs silently keep the
  // single-reader path (the results are bit-identical either way, so the
  // fallback is an engine choice, not a semantic one).
  if (spec.partition_replay && rc.shards > 1 &&
      !spec.measurement.collect_oracle) {
    // Partition-on-open: split the generated trace into per-shard slice
    // files, then let every worker shard read its own slice
    // (run_partitioned) instead of funneling all records through one
    // reader. Bit-identical to the single-reader path by partition_trace's
    // stable split.
    SliceCleanup slices{lat::partition_trace(gen, partition_prefix(),
                                             gen.num_nodes(), rc.shards)};
    std::vector<std::unique_ptr<lat::TraceReader>> readers;
    std::vector<lat::TraceSource*> sources;
    readers.reserve(slices.paths.size());
    sources.reserve(slices.paths.size());
    for (const std::string& path : slices.paths) {
      readers.push_back(std::make_unique<lat::TraceReader>(path));
      sources.push_back(readers.back().get());
    }
    driver.run_partitioned(sources);
  } else {
    driver.run(gen, spec.measurement.collect_oracle ? &gen.network() : nullptr);
  }

  std::uint64_t absorbed = 0;
  for (NodeId id = 0; id < driver.num_nodes(); ++id)
    absorbed += driver.client(id).absorbed_sample_count();
  ScenarioOutput out{std::move(driver.metrics()), gen.produced(),
                     gen.attempts(), absorbed, 0, 0, {}, {}};
  out.estimator_stats = out.metrics.estimator_stats();
  out.memory = driver.memory_budget();
  return out;
}

ScenarioOutput run_online_mode(const ScenarioSpec& spec) {
  const WorkloadSpec& w = spec.workload;

  // The epoch-sharded engine is the only online engine: spec.shards = 0
  // (the retired serial simulator's slot) runs it with one worker shard.
  // It derives all link/node stochastic state itself from w.seed.
  sim::ShardedEngine simulator(
      resolve_online_config(spec), std::max(1, spec.shards),
      lat::Topology::make(resolve_topology_config(w)),
      w.link_model.value_or(lat::LinkModelConfig{}),
      w.availability.value_or(lat::AvailabilityConfig{}),
      resolve_route_changes(w));
  simulator.run();
  ScenarioOutput out{std::move(simulator.metrics()), 0, 0, 0,
                     simulator.pings_sent(), simulator.pings_lost(), {}, {}};
  out.estimator_stats = out.metrics.estimator_stats();
  out.memory = simulator.memory_budget();
  return out;
}

}  // namespace

sim::OnlineSimConfig resolve_online_config(const ScenarioSpec& spec) {
  const WorkloadSpec& w = spec.workload;
  sim::OnlineSimConfig oc;
  oc.client = spec.client;
  oc.duration_s = w.duration_s;
  oc.measure_start_s = resolved_measure_start_s(spec);
  oc.ping_interval_s = w.ping_interval_s;
  oc.bootstrap_degree = w.bootstrap_degree;
  oc.collect_timeseries = spec.measurement.collect_timeseries;
  oc.timeseries_bucket_s = spec.measurement.timeseries_bucket_s;
  oc.collect_oracle = spec.measurement.collect_oracle;
  oc.tracked_nodes = spec.measurement.tracked_nodes;
  oc.track_interval_s = spec.measurement.track_interval_s;
  oc.seed = w.seed;
  oc.estimator = spec.estimator;
  oc.rebalance_interval_epochs = spec.rebalance_interval_epochs;
  oc.rebalance_max_moves = spec.rebalance_max_moves;
  return oc;
}

lat::TopologyConfig resolve_topology_config(const WorkloadSpec& workload) {
  lat::TopologyConfig topo = workload.topology.value_or(lat::TopologyConfig{});
  topo.num_nodes = workload.num_nodes;
  if (topo.seed == lat::TopologyConfig{}.seed) topo.seed = workload.seed;
  return topo;
}

std::vector<sim::ShardedRouteChange> resolve_route_changes(
    const WorkloadSpec& workload) {
  std::vector<sim::ShardedRouteChange> rcs;
  rcs.reserve(workload.route_changes.size());
  for (const RouteChangeEvent& rc : workload.route_changes)
    rcs.push_back({rc.i, rc.j, rc.factor, rc.at_t});
  return rcs;
}

lat::TraceGenConfig resolve_trace_config(const WorkloadSpec& workload) {
  lat::TraceGenConfig cfg;
  cfg.topology = resolve_topology_config(workload);
  cfg.link_model = workload.link_model.value_or(lat::LinkModelConfig{});
  cfg.availability = workload.availability.value_or(lat::AvailabilityConfig{});
  cfg.duration_s = workload.duration_s;
  cfg.ping_interval_s = workload.ping_interval_s;
  cfg.seed = workload.seed;
  return cfg;
}

double resolved_measure_start_s(const ScenarioSpec& spec) {
  return spec.measurement.measure_start_s >= 0.0
             ? spec.measurement.measure_start_s
             : spec.workload.duration_s / 2.0;
}

ScenarioOutput run_scenario(const ScenarioSpec& spec) {
  NC_CHECK_MSG(spec.workload.num_nodes >= 2, "need at least two nodes");
  NC_CHECK_MSG(spec.shards >= 0, "shards must be >= 0 (0 and 1 both mean one "
                                 "worker shard)");
  return spec.mode == SimMode::kReplay ? run_replay_mode(spec)
                                       : run_online_mode(spec);
}

}  // namespace nc::eval

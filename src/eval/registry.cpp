#include "eval/registry.hpp"

#include <algorithm>
#include <functional>

#include "common/check.hpp"
#include "latency/topology.hpp"

namespace nc::eval {

namespace {

struct Preset {
  ScenarioInfo info;
  std::function<ScenarioSpec()> make;
};

ScenarioSpec named(const char* name) {
  ScenarioSpec spec;
  spec.scenario = name;
  return spec;
}

ScenarioSpec make_planetlab() { return named("planetlab"); }

ScenarioSpec make_intercontinental() {
  ScenarioSpec spec = named("intercontinental");
  lat::TopologyConfig topo;
  topo.regions = lat::intercontinental_regions();
  topo.inefficiency_max = 0.5;   // more indirect routing across oceans
  topo.height_log_mu = 1.4;      // fatter access links outside NA/EU
  topo.height_log_sigma = 1.0;
  spec.workload.topology = topo;
  lat::LinkModelConfig link;
  link.spike_xm_min_ms = 150.0;  // spikes scale with the longer base RTTs
  link.spike_xm_max_ms = 900.0;
  spec.workload.link_model = link;
  return spec;
}

ScenarioSpec make_churn() {
  ScenarioSpec spec = named("churn");
  lat::AvailabilityConfig avail;
  avail.mean_up_s = 45.0 * 60.0;
  avail.mean_down_s = 15.0 * 60.0;
  avail.initial_up_prob = 0.7;
  spec.workload.availability = avail;
  lat::LinkModelConfig link;
  link.loss_prob = 0.06;  // flapping hosts also drop more pings
  spec.workload.link_model = link;
  return spec;
}

ScenarioSpec make_flash_crowd() {
  ScenarioSpec spec = named("flash-crowd");
  // The surge: most nodes start offline, come up after ~20 min on average
  // and then stay up (long mean_up), so the live population multiplies
  // mid-run and coordinate systems must absorb a wave of cold joiners.
  lat::AvailabilityConfig avail;
  avail.initial_up_prob = 0.25;
  avail.mean_down_s = 20.0 * 60.0;
  avail.mean_up_s = 36.0 * 3600.0;
  spec.workload.availability = avail;
  // Crowded links burst far more often while the crowd arrives.
  lat::LinkModelConfig link;
  link.link_burst_rate_hz = 1.0 / 600.0;
  link.link_burst_mean_duration_s = 60.0;
  link.node_burst_rate_hz = 1.0 / 900.0;
  spec.workload.link_model = link;
  return spec;
}

ScenarioSpec make_drift_heavy() {
  ScenarioSpec spec = named("drift-heavy");
  lat::LinkModelConfig link;
  link.route_change_rate_hz = 1.0 / 1800.0;  // ~16x the default rate
  link.route_factor_min = 0.4;
  link.route_factor_max = 2.5;
  spec.workload.link_model = link;
  return spec;
}

ScenarioSpec make_lan_cluster() {
  ScenarioSpec spec = named("lan-cluster");
  lat::TopologyConfig topo;
  topo.regions = lat::lan_cluster_regions();
  topo.height_log_mu = -1.5;  // tiny access heights (median ~0.22 ms)
  topo.height_log_sigma = 0.2;
  topo.height_min_ms = 0.1;
  topo.height_max_ms = 0.3;
  spec.workload.topology = topo;
  lat::LinkModelConfig link;
  link.body_sigma = 0.35;       // jitter comparable to the latency itself
  link.base_spike_prob = 0.05;  // ~5% of samples above ~1.2 ms
  link.spike_xm_min_ms = 0.5;
  link.spike_xm_max_ms = 1.5;
  link.spike_alpha = 1.5;
  link.loss_prob = 0.0;
  spec.workload.link_model = link;
  spec.workload.availability = lat::AvailabilityConfig{.enabled = false};
  return spec;
}

const std::vector<Preset>& presets() {
  static const std::vector<Preset> all = {
      {{"planetlab", "the paper's default PlanetLab-like workload"},
       make_planetlab},
      {{"intercontinental", "balanced global regions, heavy-tail ~300 ms RTTs"},
       make_intercontinental},
      {{"churn", "aggressive availability flapping (~45 min up / ~15 min down)"},
       make_churn},
      {{"flash-crowd", "mid-run population surge; links burst under load"},
       make_flash_crowd},
      {{"drift-heavy", "route changes every ~30 min per link, wide swings"},
       make_drift_heavy},
      {{"lan-cluster", "one machine room; jitter dominates latency (Fig. 6)"},
       make_lan_cluster},
  };
  return all;
}

}  // namespace

const std::vector<ScenarioInfo>& scenario_catalog() {
  static const std::vector<ScenarioInfo> catalog = [] {
    std::vector<ScenarioInfo> out;
    for (const Preset& p : presets()) out.push_back(p.info);
    return out;
  }();
  return catalog;
}

std::vector<std::string> scenario_names() {
  std::vector<std::string> out;
  for (const Preset& p : presets()) out.push_back(p.info.name);
  return out;
}

bool scenario_exists(const std::string& name) {
  for (const Preset& p : presets())
    if (p.info.name == name) return true;
  return false;
}

ScenarioSpec make_scenario(const std::string& name) {
  for (const Preset& p : presets())
    if (p.info.name == name) return p.make();
  NC_CHECK_MSG(false, "unknown scenario '" + name +
                          "' (registered: " + scenario_names_joined() + ")");
  return ScenarioSpec{};  // unreachable
}

std::string scenario_names_joined(char sep) {
  std::string out;
  for (const Preset& p : presets()) {
    if (!out.empty()) out += sep;
    out += p.info.name;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Route-change schedules.
// ---------------------------------------------------------------------------

namespace {

/// The "shifted region": a contiguous block of nodes standing in for one
/// geographic region whose routes all change together. Capped so event
/// counts scale linearly in n (each block node contributes n-ish links).
int shifted_block_size(int num_nodes) {
  return std::max(1, std::min(num_nodes / 5, 50));
}

/// Every link between the first `block` nodes and the rest of the network,
/// stepped to `factor` at `at_t`. Cross links only — an inter-region reroute
/// leaves intra-region paths alone — so each undirected pair appears once.
void append_block_shift(std::vector<RouteChangeEvent>& out, int num_nodes,
                        int block, double factor, double at_t) {
  for (NodeId i = 0; i < block; ++i)
    for (NodeId j = block; j < num_nodes; ++j)
      out.push_back({i, j, factor, at_t});
}

struct RouteSchedule {
  RouteScheduleInfo info;
  std::function<void(ScenarioSpec&)> apply;
};

const std::vector<RouteSchedule>& route_schedules() {
  static const std::vector<RouteSchedule> all = {
      {{"none", "no controlled route changes"}, [](ScenarioSpec&) {}},
      {{"single-link", "link (0,1) triples at mid-run"},
       [](ScenarioSpec& spec) {
         NC_CHECK_MSG(spec.workload.num_nodes >= 2,
                      "single-link schedule needs two nodes");
         spec.workload.route_changes.push_back(
             {0, 1, 3.0, spec.workload.duration_s / 2.0});
       }},
      {{"regional-shift",
        "one region's links to everyone stretch 1.8x at mid-run"},
       [](ScenarioSpec& spec) {
         const int n = spec.workload.num_nodes;
         append_block_shift(spec.workload.route_changes, n,
                            shifted_block_size(n), 1.8,
                            spec.workload.duration_s / 2.0);
       }},
      {{"backbone-flap",
        "one region stretches 2.2x at 40% of the run, reverts at 70%"},
       [](ScenarioSpec& spec) {
         const int n = spec.workload.num_nodes;
         const int block = shifted_block_size(n);
         append_block_shift(spec.workload.route_changes, n, block, 2.2,
                            0.4 * spec.workload.duration_s);
         append_block_shift(spec.workload.route_changes, n, block, 1.0,
                            0.7 * spec.workload.duration_s);
       }},
  };
  return all;
}

}  // namespace

const std::vector<RouteScheduleInfo>& route_schedule_catalog() {
  static const std::vector<RouteScheduleInfo> catalog = [] {
    std::vector<RouteScheduleInfo> out;
    for (const RouteSchedule& s : route_schedules()) out.push_back(s.info);
    return out;
  }();
  return catalog;
}

std::vector<std::string> route_schedule_names() {
  std::vector<std::string> out;
  for (const RouteSchedule& s : route_schedules()) out.push_back(s.info.name);
  return out;
}

bool route_schedule_exists(const std::string& name) {
  for (const RouteSchedule& s : route_schedules())
    if (s.info.name == name) return true;
  return false;
}

void apply_route_schedule(ScenarioSpec& spec, const std::string& name) {
  for (const RouteSchedule& s : route_schedules()) {
    if (s.info.name == name) {
      s.apply(spec);
      return;
    }
  }
  NC_CHECK_MSG(false, "unknown route schedule '" + name + "' (registered: " +
                          route_schedule_names_joined() + ")");
}

std::string route_schedule_names_joined(char sep) {
  std::string out;
  for (const RouteSchedule& s : route_schedules()) {
    if (!out.empty()) out += sep;
    out += s.info.name;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Estimator backend presets.
// ---------------------------------------------------------------------------

namespace {

est::EstimatorSpec idms_spec(double max_age_s) {
  est::EstimatorSpec e;
  e.backend = est::EstimatorBackend::kIdms;
  e.max_age_s = max_age_s;
  return e;
}

struct BackendPreset {
  BackendInfo info;
  std::function<est::EstimatorSpec()> make;
};

const std::vector<BackendPreset>& backend_presets() {
  static const std::vector<BackendPreset> all = {
      {{"coordinates", "the paper's network-coordinate path (default)"},
       [] { return est::EstimatorSpec{}; }},
      {{"idms", "measured delay matrix, 10 min staleness, coord fallback"},
       [] { return idms_spec(600.0); }},
      {{"idms-volatile", "delay matrix with a 60 s horizon (fallback-heavy)"},
       [] { return idms_spec(60.0); }},
      {{"idms-sticky", "delay matrix with a 1 h horizon (stale-tolerant)"},
       [] { return idms_spec(3600.0); }},
      {{"snapshot", "published epoch snapshots (the serving layer's read "
                    "path), coord fallback"},
       [] {
         est::EstimatorSpec e;
         e.backend = est::EstimatorBackend::kSnapshot;
         return e;
       }},
  };
  return all;
}

}  // namespace

const std::vector<BackendInfo>& backend_catalog() {
  static const std::vector<BackendInfo> catalog = [] {
    std::vector<BackendInfo> out;
    for (const BackendPreset& b : backend_presets()) out.push_back(b.info);
    return out;
  }();
  return catalog;
}

std::vector<std::string> backend_names() {
  std::vector<std::string> out;
  for (const BackendPreset& b : backend_presets()) out.push_back(b.info.name);
  return out;
}

bool backend_exists(const std::string& name) {
  for (const BackendPreset& b : backend_presets())
    if (b.info.name == name) return true;
  return false;
}

void apply_backend(ScenarioSpec& spec, const std::string& name) {
  for (const BackendPreset& b : backend_presets()) {
    if (b.info.name == name) {
      spec.estimator = b.make();
      return;
    }
  }
  NC_CHECK_MSG(false, "unknown backend '" + name +
                          "' (registered: " + backend_names_joined() + ")");
}

std::string backend_names_joined(char sep) {
  std::string out;
  for (const BackendPreset& b : backend_presets()) {
    if (!out.empty()) out += sep;
    out += b.info.name;
  }
  return out;
}

}  // namespace nc::eval

#include "eval/grid.hpp"

namespace nc::eval {

std::vector<ScenarioOutput> ExperimentGrid::run(
    const std::vector<ScenarioSpec>& specs) const {
  return map(specs.size(),
             [&specs](std::size_t i) { return run_scenario(specs[i]); });
}

}  // namespace nc::eval

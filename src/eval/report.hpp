// Plain-text report formatting: aligned tables, CDF grids, histograms.
//
// Bench binaries print the same rows/series the paper's figures plot; these
// helpers keep that output consistent and diffable across runs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "stats/boxplot.hpp"
#include "stats/ecdf.hpp"
#include "stats/histogram.hpp"

namespace nc::eval {

struct ScenarioOutput;

/// Fixed-precision double formatting ("%.*g"-style but stable).
[[nodiscard]] std::string fmt(double v, int precision = 4);

/// Human-readable byte count ("640 B", "1.5 MiB").
[[nodiscard]] std::string fmt_bytes(std::uint64_t bytes);

/// Column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// The probability grid used when printing CDFs.
[[nodiscard]] const std::vector<double>& cdf_grid();

/// Prints one table with a row per grid quantile and a column per named CDF.
void print_cdf_table(std::ostream& os, const std::string& title,
                     const std::vector<std::pair<std::string, const stats::Ecdf*>>& cdfs,
                     int precision = 4);

/// Prints a histogram with per-bucket counts and a log-scaled bar.
void print_histogram(std::ostream& os, const std::string& title,
                     const stats::Histogram& hist);

/// One boxplot summary line: min/whiskers/quartiles/max/outliers.
[[nodiscard]] std::string boxplot_row(const stats::BoxplotStats& b, int precision = 3);

/// Bucket edges of the paper's Fig. 2 latency histogram:
/// 0-99, ..., 900-999, 1000-1999, 2000-2999, >= 3000 (overflow).
[[nodiscard]] std::vector<double> fig2_bucket_edges();

/// Bucket edges of Fig. 3 (single link): 200 ms buckets up to 2200.
[[nodiscard]] std::vector<double> fig3_bucket_edges();

/// Side-by-side estimator-backend comparison: one row per labelled run with
/// the headline error, coverage/staleness of the backend's state, and the
/// memory + feed-traffic cost columns.
void print_backend_comparison(
    std::ostream& os, const std::string& title,
    const std::vector<std::pair<std::string, const ScenarioOutput*>>& runs);

/// One memory-budget breakdown line (clients/links/estimator/mailbox).
void print_memory_budget(std::ostream& os, const ScenarioOutput& out);

}  // namespace nc::eval

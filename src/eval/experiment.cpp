#include "eval/experiment.hpp"

#include "common/check.hpp"
#include "sim/online_sim.hpp"
#include "sim/replay.hpp"

namespace nc::eval {

lat::TraceGenConfig resolve_trace_config(const ReplaySpec& spec) {
  lat::TraceGenConfig cfg;
  cfg.topology = spec.topology.value_or(lat::TopologyConfig{});
  cfg.topology.num_nodes = spec.num_nodes;
  if (cfg.topology.seed == lat::TopologyConfig{}.seed) cfg.topology.seed = spec.seed;
  cfg.link_model = spec.link_model.value_or(lat::LinkModelConfig{});
  cfg.availability = spec.availability.value_or(lat::AvailabilityConfig{});
  cfg.duration_s = spec.duration_s;
  cfg.ping_interval_s = spec.ping_interval_s;
  cfg.seed = spec.seed;
  return cfg;
}

ReplayOutput run_replay(const ReplaySpec& spec) {
  NC_CHECK_MSG(spec.num_nodes >= 2, "need at least two nodes");

  lat::TraceGenerator gen(resolve_trace_config(spec));
  for (const RouteChangeEvent& rc : spec.route_changes)
    gen.network().schedule_route_change(rc.i, rc.j, rc.factor, rc.at_t);

  sim::ReplayConfig rc;
  rc.client = spec.client;
  rc.duration_s = spec.duration_s;
  rc.measure_start_s =
      spec.measure_start_s >= 0.0 ? spec.measure_start_s : spec.duration_s / 2.0;
  rc.collect_timeseries = spec.collect_timeseries;
  rc.timeseries_bucket_s = spec.timeseries_bucket_s;
  rc.collect_oracle = spec.collect_oracle;
  rc.tracked_nodes = spec.tracked_nodes;
  rc.track_interval_s = spec.track_interval_s;

  sim::ReplayDriver driver(rc, gen.num_nodes());
  driver.run(gen, spec.collect_oracle ? &gen.network() : nullptr);

  std::uint64_t absorbed = 0;
  for (NodeId id = 0; id < driver.num_nodes(); ++id)
    absorbed += driver.client(id).absorbed_sample_count();
  return ReplayOutput{std::move(driver.metrics()), gen.produced(), gen.attempts(),
                      absorbed};
}

OnlineOutput run_online(const OnlineSpec& spec) {
  NC_CHECK_MSG(spec.num_nodes >= 2, "need at least two nodes");

  lat::TopologyConfig topo = spec.topology.value_or(lat::TopologyConfig{});
  topo.num_nodes = spec.num_nodes;
  if (topo.seed == lat::TopologyConfig{}.seed) topo.seed = spec.seed;

  lat::LatencyNetwork network(lat::Topology::make(topo),
                              spec.link_model.value_or(lat::LinkModelConfig{}),
                              spec.availability.value_or(lat::AvailabilityConfig{}),
                              spec.seed);
  for (const RouteChangeEvent& rc : spec.route_changes)
    network.schedule_route_change(rc.i, rc.j, rc.factor, rc.at_t);

  sim::OnlineSimConfig oc;
  oc.client = spec.client;
  oc.duration_s = spec.duration_s;
  oc.measure_start_s =
      spec.measure_start_s >= 0.0 ? spec.measure_start_s : spec.duration_s / 2.0;
  oc.ping_interval_s = spec.ping_interval_s;
  oc.bootstrap_degree = spec.bootstrap_degree;
  oc.collect_timeseries = spec.collect_timeseries;
  oc.timeseries_bucket_s = spec.timeseries_bucket_s;
  oc.collect_oracle = spec.collect_oracle;
  oc.tracked_nodes = spec.tracked_nodes;
  oc.track_interval_s = spec.track_interval_s;
  oc.seed = spec.seed;

  sim::OnlineSimulator simulator(oc, network);
  simulator.run();

  return OnlineOutput{std::move(simulator.metrics()), simulator.pings_sent(),
                      simulator.pings_lost()};
}

}  // namespace nc::eval

// Named workload presets: the scenario registry.
//
// The paper evaluates one workload — a 269-node PlanetLab-like network —
// but the techniques are workload-sensitive (the MP filter's percentile
// assumes a tight body with a detached tail; the heuristics' windows assume
// a particular change rate). The registry pins down a family of named,
// reproducible workloads so every bench can run any of them via
// `--scenario=<name>` and regressions can be tracked per scenario:
//
//   planetlab        the paper's world (default): NA/EU-heavy region mix,
//                    moderate churn, heavy-tailed spikes.
//   intercontinental balanced global region mix with heavy-tail inter-region
//                    RTTs (~300 ms band) and more indirect routing.
//   churn            aggressive availability flapping: nodes bounce on
//                    ~45 min up / ~15 min down cycles with elevated loss.
//   flash-crowd      mid-run population surge: most nodes start offline and
//                    stream in during the run while links burst under load.
//   drift-heavy      LinkModel drift-regime dominated: route changes every
//                    ~30 min per link with wide factor swings.
//   lan-cluster      one machine room where jitter dominates latency (the
//                    Fig. 6 confidence-building regime).
//
// Every preset is a complete replay-mode ScenarioSpec; callers override
// node count, duration, seed or mode afterwards (presets scale to any
// num_nodes — they never reference concrete node ids).
#pragma once

#include <string>
#include <vector>

#include "eval/scenario.hpp"

namespace nc::eval {

struct ScenarioInfo {
  std::string name;
  std::string summary;  // one line for --help style listings
};

/// All registered presets, in registration order (planetlab first).
[[nodiscard]] const std::vector<ScenarioInfo>& scenario_catalog();

/// Names only, registration order.
[[nodiscard]] std::vector<std::string> scenario_names();

[[nodiscard]] bool scenario_exists(const std::string& name);

/// Builds the named preset. Throws nc::CheckError for unknown names,
/// listing the registered ones.
[[nodiscard]] ScenarioSpec make_scenario(const std::string& name);

/// "planetlab|intercontinental|..." — for usage messages.
[[nodiscard]] std::string scenario_names_joined(char sep = '|');

// ---------------------------------------------------------------------------
// Route-change schedules: named, composable workload components.
//
// The adaptation experiments (Sec. VII-B) perturb the network mid-run with
// controlled route changes. These used to be per-bench code; as named
// presets any scenario composes one via --route-schedule=<name>. Schedules
// are generated as a pure function of the spec's node count and duration —
// like workload presets, they never hard-code concrete node ids — and
// expand into plain RouteChangeEvents, so they drive both modes (the trace
// generator's network and the sharded kernel's directed links alike).
//
//   none            no controlled changes (default).
//   single-link     link (0, 1) triples at mid-run: the classic
//                   one-variable adaptation probe.
//   regional-shift  a region-sized block of nodes (min(n/5, 50)) has every
//                   link to the rest of the network stretched 1.8x at
//                   mid-run — a coordinated BGP-level reroute of a region.
//   backbone-flap   the same block stretches 2.2x at 40% of the run and
//                   reverts at 70% — an outage with recovery, exercising
//                   re-convergence in both directions.
// ---------------------------------------------------------------------------

struct RouteScheduleInfo {
  std::string name;
  std::string summary;  // one line for --help style listings
};

/// All registered schedules, in registration order ("none" first).
[[nodiscard]] const std::vector<RouteScheduleInfo>& route_schedule_catalog();

[[nodiscard]] std::vector<std::string> route_schedule_names();

[[nodiscard]] bool route_schedule_exists(const std::string& name);

/// Expands the named schedule for spec's node count and duration and
/// appends the events to spec.workload.route_changes. Apply AFTER node
/// count / duration overrides. Throws nc::CheckError for unknown names.
void apply_route_schedule(ScenarioSpec& spec, const std::string& name);

/// "none|single-link|..." — for usage messages.
[[nodiscard]] std::string route_schedule_names_joined(char sep = '|');

// ---------------------------------------------------------------------------
// Estimator backend presets: which subsystem answers estimate_rtt queries.
//
// Any scenario composes one via --backend=<name>. Presets set
// spec.estimator (est::EstimatorSpec); they are orthogonal to workload and
// schedule presets.
//
//   coordinates   the paper's network-coordinate path (default; bit-
//                 identical to the pre-seam metrics).
//   idms          measured delay-matrix service, EWMA cells, 10 min
//                 staleness horizon, coordinate fallback for uncovered or
//                 stale pairs.
//   idms-volatile idms with a 60 s horizon: matrix entries expire almost
//                 immediately, stressing the fallback path.
//   idms-sticky   idms with a 1 h horizon: point measurements trusted long
//                 past typical route-change timescales.
//   snapshot      published epoch snapshots (est::SnapshotPublisher): the
//                 serving layer's read path scored as an engine backend.
//                 The engine wires its own publisher and turns snapshot
//                 publication on; coordinate fallback covers the first
//                 epoch and unplaced nodes.
// ---------------------------------------------------------------------------

struct BackendInfo {
  std::string name;
  std::string summary;  // one line for --help style listings
};

/// All registered backend presets, in registration order (coordinates
/// first).
[[nodiscard]] const std::vector<BackendInfo>& backend_catalog();

[[nodiscard]] std::vector<std::string> backend_names();

[[nodiscard]] bool backend_exists(const std::string& name);

/// Sets spec.estimator to the named preset. Throws nc::CheckError for
/// unknown names, listing the registered ones.
void apply_backend(ScenarioSpec& spec, const std::string& name);

/// "coordinates|idms|..." — for usage messages.
[[nodiscard]] std::string backend_names_joined(char sep = '|');

}  // namespace nc::eval

// Experiment runners shared by benches, examples and integration tests.
//
// A ReplaySpec describes one trace-replay experiment (the paper's simulator
// methodology): a synthetic workload plus one NCClient configuration applied
// to every node. An OnlineSpec is the analogous description for the
// event-driven deployment simulator. Both return the populated
// MetricsCollector so callers can print whichever figure they reproduce.
//
// Two experiments with the same workload fields and seed see bit-identical
// observation streams even when their client configurations differ — the
// reproduction of the paper's "run both systems on the same nodes at the
// same time" methodology (Sec. VI).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/nc_client.hpp"
#include "latency/link_model.hpp"
#include "latency/trace_generator.hpp"
#include "sim/metrics.hpp"

namespace nc::eval {

/// A controlled route change injected into the workload (adaptation studies).
struct RouteChangeEvent {
  NodeId i = kInvalidNode;
  NodeId j = kInvalidNode;
  double factor = 1.0;
  double at_t = 0.0;
};

struct ReplaySpec {
  // Workload.
  int num_nodes = 269;
  double duration_s = 4.0 * 3600.0;
  double ping_interval_s = 1.0;
  std::uint64_t seed = 1;
  std::optional<lat::TopologyConfig> topology;        // default: PlanetLab-like
  std::optional<lat::LinkModelConfig> link_model;     // default: LinkModelConfig{}
  std::optional<lat::AvailabilityConfig> availability;
  std::vector<RouteChangeEvent> route_changes;

  // Node configuration.
  NCClientConfig client;

  // Measurement.
  double measure_start_s = -1.0;  // < 0: second half of the run
  bool collect_timeseries = false;
  double timeseries_bucket_s = 600.0;
  bool collect_oracle = false;
  std::vector<NodeId> tracked_nodes;
  double track_interval_s = 600.0;
};

struct ReplayOutput {
  sim::MetricsCollector metrics;
  std::uint64_t records = 0;   // observations replayed
  std::uint64_t attempts = 0;  // ping attempts incl. losses
  std::uint64_t absorbed = 0;  // samples withheld by filters (not primed/rejected)
};

[[nodiscard]] ReplayOutput run_replay(const ReplaySpec& spec);

struct OnlineSpec {
  int num_nodes = 270;
  double duration_s = 4.0 * 3600.0;
  double ping_interval_s = 5.0;
  int bootstrap_degree = 3;
  std::uint64_t seed = 7;
  std::optional<lat::TopologyConfig> topology;
  std::optional<lat::LinkModelConfig> link_model;
  std::optional<lat::AvailabilityConfig> availability;
  std::vector<RouteChangeEvent> route_changes;

  NCClientConfig client;

  double measure_start_s = -1.0;
  bool collect_timeseries = false;
  double timeseries_bucket_s = 600.0;
  bool collect_oracle = false;
  std::vector<NodeId> tracked_nodes;
  double track_interval_s = 600.0;
};

struct OnlineOutput {
  sim::MetricsCollector metrics;
  std::uint64_t pings_sent = 0;
  std::uint64_t pings_lost = 0;
};

[[nodiscard]] OnlineOutput run_online(const OnlineSpec& spec);

/// The trace-generator configuration a ReplaySpec resolves to (exposed so
/// benches can build matching TraceGenerators, e.g. for filter-only studies).
[[nodiscard]] lat::TraceGenConfig resolve_trace_config(const ReplaySpec& spec);

}  // namespace nc::eval

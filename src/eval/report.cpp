#include "eval/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/check.hpp"
#include "eval/scenario.hpp"

namespace nc::eval {

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return buf;
}

std::string fmt_bytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (v >= 1024.0 && unit + 1 < std::size(kUnits)) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0)
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  else
    std::snprintf(buf, sizeof buf, "%.1f %s", v, kUnits[unit]);
  return buf;
}

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  NC_CHECK_MSG(!headers_.empty(), "table needs headers");
}

void TextTable::add_row(std::vector<std::string> cells) {
  NC_CHECK_MSG(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    rule += "  " + std::string(width[c], '-');
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

const std::vector<double>& cdf_grid() {
  static const std::vector<double> grid = {0.05, 0.10, 0.25, 0.50,
                                           0.75, 0.90, 0.95, 0.99};
  return grid;
}

void print_cdf_table(std::ostream& os, const std::string& title,
                     const std::vector<std::pair<std::string, const stats::Ecdf*>>& cdfs,
                     int precision) {
  os << title << '\n';
  std::vector<std::string> headers = {"pctile"};
  for (const auto& [name, cdf] : cdfs) {
    NC_CHECK_MSG(cdf != nullptr && !cdf->empty(), "empty CDF: " + name);
    headers.push_back(name);
  }
  TextTable table(std::move(headers));
  for (double q : cdf_grid()) {
    std::vector<std::string> row = {fmt(100.0 * q, 3) + "%"};
    for (const auto& [name, cdf] : cdfs) row.push_back(fmt(cdf->quantile(q), precision));
    table.add_row(std::move(row));
  }
  table.print(os);
}

void print_histogram(std::ostream& os, const std::string& title,
                     const stats::Histogram& hist) {
  os << title << '\n';
  TextTable table({"bucket(ms)", "count", "log-bar"});
  const auto bar = [](std::uint64_t count) {
    if (count == 0) return std::string();
    const int len = 1 + static_cast<int>(std::log10(static_cast<double>(count)) * 6.0);
    return std::string(static_cast<std::size_t>(std::min(len, 60)), '#');
  };
  for (int b = 0; b < hist.bucket_count(); ++b)
    table.add_row({hist.bucket_label(b), std::to_string(hist.count(b)),
                   bar(hist.count(b))});
  if (hist.overflow() > 0)
    table.add_row({">=" + fmt(hist.edges().back(), 6), std::to_string(hist.overflow()),
                   bar(hist.overflow())});
  table.print(os);
}

std::string boxplot_row(const stats::BoxplotStats& b, int precision) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "min=%s wlo=%s q1=%s med=%s q3=%s whi=%s max=%s outliers=%llu",
                fmt(b.min, precision).c_str(), fmt(b.whisker_lo, precision).c_str(),
                fmt(b.q1, precision).c_str(), fmt(b.median, precision).c_str(),
                fmt(b.q3, precision).c_str(), fmt(b.whisker_hi, precision).c_str(),
                fmt(b.max, precision).c_str(),
                static_cast<unsigned long long>(b.outliers));
  return buf;
}

std::vector<double> fig2_bucket_edges() {
  std::vector<double> edges;
  for (int e = 0; e <= 1000; e += 100) edges.push_back(e);
  edges.push_back(2000.0);
  edges.push_back(3000.0);
  return edges;
}

std::vector<double> fig3_bucket_edges() {
  std::vector<double> edges;
  for (int e = 0; e <= 2200; e += 200) edges.push_back(e);
  return edges;
}

void print_backend_comparison(
    std::ostream& os, const std::string& title,
    const std::vector<std::pair<std::string, const ScenarioOutput*>>& runs) {
  os << title << '\n';
  TextTable table({"run", "med_rel_err", "mean_instab", "coverage", "stale",
                   "entries", "est_mem", "feed_traffic", "total_mem"});
  for (const auto& [label, out] : runs) {
    const est::EstimatorStats& es = out->estimator_stats;
    const double stale_frac =
        es.entries == 0 ? 0.0
                        : static_cast<double>(es.stale_entries) /
                              static_cast<double>(es.entries);
    table.add_row({label, fmt(out->metrics.median_relative_error()),
                   fmt(out->metrics.mean_instability_ms_per_s()),
                   fmt(es.coverage(), 3), fmt(stale_frac, 3),
                   std::to_string(es.entries), fmt_bytes(es.memory_bytes),
                   fmt_bytes(es.traffic_bytes), fmt_bytes(out->memory.total())});
  }
  table.print(os);
}

void print_memory_budget(std::ostream& os, const ScenarioOutput& out) {
  const sim::MemoryBudget& m = out.memory;
  os << "memory budget: clients=" << fmt_bytes(m.client_bytes)
     << " links=" << fmt_bytes(m.link_bytes)
     << " estimator=" << fmt_bytes(m.estimator_bytes)
     << " mailbox=" << fmt_bytes(m.mailbox_bytes);
  if (m.neighbor_bytes > 0)
    os << " neighbors=" << fmt_bytes(m.neighbor_bytes);
  if (m.snapshot_bytes() > 0) {
    os << " snapshots=" << fmt_bytes(m.snapshot_bytes());
    if (m.snapshot_delta_bytes > 0)
      os << " (deltas=" << fmt_bytes(m.snapshot_delta_bytes) << ')';
  }
  os << " total=" << fmt_bytes(m.total()) << '\n';
}

}  // namespace nc::eval

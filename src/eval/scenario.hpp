// The scenario engine: one spec type for every experiment in the repo.
//
// A ScenarioSpec composes three orthogonal pieces:
//
//  * WorkloadSpec    — the synthetic network and measurement schedule
//                      (topology, link model, availability, route events);
//  * NCClientConfig  — the coordinate pipeline applied to every node;
//  * MeasurementSpec — what to collect and over which window.
//
// plus a SimMode selecting how observations arise: kReplay feeds a
// generated trace through the epoch-sharded kernel (the paper's simulator
// methodology, Sec. IV-A), kOnline runs the event-driven deployment
// protocol on the same kernel (Sec. VI). Both modes shard one run across
// `shards` worker threads with bit-identical results at any count. Named
// workload presets — planetlab, intercontinental, churn, flash-crowd,
// drift-heavy, lan-cluster — live in eval/registry.hpp; the parallel
// multi-spec runner lives in eval/grid.hpp.
//
// Determinism guarantee: run_scenario is a pure function of its spec. Two
// scenarios with the same workload fields and seed see bit-identical
// observation streams even when their client configurations differ — the
// reproduction of the paper's "run both systems on the same nodes at the
// same time" methodology — and repeated runs of one spec produce
// bit-identical metrics, which is what lets ExperimentGrid fan runs out
// across threads without changing any result.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/nc_client.hpp"
#include "estimate/estimator_config.hpp"
#include "latency/link_model.hpp"
#include "latency/trace_generator.hpp"
#include "sim/metrics.hpp"
#include "sim/online_sim.hpp"
#include "sim/sharded_route_change.hpp"
#include "sim/sharded_sim.hpp"

namespace nc::eval {

/// A controlled route change injected into the workload (adaptation studies).
struct RouteChangeEvent {
  NodeId i = kInvalidNode;
  NodeId j = kInvalidNode;
  double factor = 1.0;
  double at_t = 0.0;
};

/// The synthetic network plus the measurement schedule driving it.
struct WorkloadSpec {
  int num_nodes = 269;
  double duration_s = 4.0 * 3600.0;
  double ping_interval_s = 1.0;
  std::uint64_t seed = 1;
  int bootstrap_degree = 3;  // online mode only
  std::optional<lat::TopologyConfig> topology;        // default: PlanetLab-like
  std::optional<lat::LinkModelConfig> link_model;     // default: LinkModelConfig{}
  std::optional<lat::AvailabilityConfig> availability;
  std::vector<RouteChangeEvent> route_changes;
};

/// What to collect, and over which window.
struct MeasurementSpec {
  double measure_start_s = -1.0;  // < 0: second half of the run
  bool collect_timeseries = false;
  double timeseries_bucket_s = 600.0;
  bool collect_oracle = false;
  std::vector<NodeId> tracked_nodes;
  double track_interval_s = 600.0;
};

enum class SimMode { kReplay, kOnline };

struct ScenarioSpec {
  /// Registry preset this spec was built from ("custom" when hand-built);
  /// informational — carried along so reports can label their workload.
  std::string scenario = "custom";
  SimMode mode = SimMode::kReplay;

  /// Worker shards of the epoch-sharded kernel, for BOTH modes — one run
  /// spread across cores, bit-identical for any shard count (see
  /// sim/sharded_sim.hpp). 0 and 1 both mean one worker shard: the kernel
  /// is the only engine (the serial simulators were retired in PR 5; their
  /// facades run the same kernel).
  int shards = 0;

  WorkloadSpec workload;
  NCClientConfig client;  // identical configuration on every node
  MeasurementSpec measurement;
  /// Estimation backend answering RTT queries and scoring the accuracy
  /// metrics (registry backend presets: coordinates, idms, idms-volatile,
  /// idms-sticky, snapshot — see apply_backend).
  est::EstimatorSpec estimator;

  /// Replay mode with shards > 1: materialize the generated trace to disk,
  /// split it by owner shard (lat::partition_trace) and replay one slice
  /// per reading shard (ShardedEngine::run_partitioned) instead of funneling
  /// every record through shard 0's serial reader. Bit-identical to the
  /// single-reader path; costs one extra trace pass + temp-file space. ON by
  /// default since PR 9 — multi-core replay profiles showed the serial
  /// reader stall. Falls back to the single reader when
  /// measurement.collect_oracle is set (the generating network is not safe
  /// to sample from concurrent readers). Ignored in online mode and at one
  /// shard. Bench flag: --partition-trace=0 opts out.
  bool partition_replay = true;

  /// Dynamic shard ownership (sim/sharded_sim.hpp): rebalance the node
  /// partition every k epochs from per-node event weights, migrating at
  /// most `rebalance_max_moves` nodes per barrier. 0 keeps the static block
  /// partition. Metrics are bit-identical on vs. off at any shard count.
  int rebalance_interval_epochs = 0;
  int rebalance_max_moves = 8;
};

struct ScenarioOutput {
  sim::MetricsCollector metrics;

  // Replay mode.
  std::uint64_t records = 0;   // observations replayed
  std::uint64_t attempts = 0;  // ping attempts incl. losses
  std::uint64_t absorbed = 0;  // samples withheld by filters (not primed/rejected)

  // Online mode.
  std::uint64_t pings_sent = 0;
  std::uint64_t pings_lost = 0;

  /// Backend coverage/staleness/cost, merged across shards (equal to
  /// metrics.estimator_stats(); duplicated here for report convenience).
  est::EstimatorStats estimator_stats;
  /// End-of-run byte accounting of the engine's state blocks.
  sim::MemoryBudget memory;
};

/// Runs one scenario to completion. Pure: equal specs => equal outputs.
[[nodiscard]] ScenarioOutput run_scenario(const ScenarioSpec& spec);

/// The trace-generator configuration a workload resolves to (exposed so
/// benches can build matching TraceGenerators, e.g. for filter-only studies).
[[nodiscard]] lat::TraceGenConfig resolve_trace_config(const WorkloadSpec& workload);

/// The online-engine configuration a spec resolves to (exposed so benches
/// that drive the kernel directly — e.g. bench_event_core reading
/// events_processed() — assemble exactly what run_scenario would).
[[nodiscard]] sim::OnlineSimConfig resolve_online_config(const ScenarioSpec& spec);

/// The topology configuration a workload resolves to (node count and seed
/// fallbacks applied).
[[nodiscard]] lat::TopologyConfig resolve_topology_config(const WorkloadSpec& workload);

/// workload.route_changes in the sharded simulator's vocabulary.
[[nodiscard]] std::vector<sim::ShardedRouteChange> resolve_route_changes(
    const WorkloadSpec& workload);

/// The effective measurement-window start (resolves the < 0 default).
[[nodiscard]] double resolved_measure_start_s(const ScenarioSpec& spec);

}  // namespace nc::eval

// ExperimentGrid: a thread-pool runner for independent experiment points.
//
// Every figure/ablation sweep in the paper is a grid of self-contained runs
// (filter x heuristic x workload); run_scenario is a pure function of its
// spec, so the grid is embarrassingly parallel. ExperimentGrid fans the
// points out over `jobs` worker threads and returns results in submission
// order, making an N-point sweep ~min(N, jobs)x faster in wall-clock with
// bit-identical results at any job count (each run owns all of its mutable
// state — network, clients, metrics — and the workers share nothing but the
// work queue).
//
// `run()` covers the common case (a vector of ScenarioSpecs); `map()` fans
// out arbitrary tasks for benches whose per-point work is not a plain
// scenario run (e.g. filter-only trace studies).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "eval/scenario.hpp"

namespace nc::eval {

class ExperimentGrid {
 public:
  /// `jobs` is clamped below at 1; pass the --jobs flag straight through.
  explicit ExperimentGrid(int jobs = 1) : jobs_(jobs < 1 ? 1 : jobs) {}

  [[nodiscard]] int jobs() const noexcept { return jobs_; }

  /// Runs every spec and returns the outputs in submission order.
  [[nodiscard]] std::vector<ScenarioOutput> run(
      const std::vector<ScenarioSpec>& specs) const;

  /// Invokes task(i) for i in [0, count) across the pool; result i is
  /// task(i). Tasks must not share mutable state. If any task throws, the
  /// lowest-index exception is rethrown after all workers finish.
  template <typename Task>
  [[nodiscard]] auto map(std::size_t count, Task task) const {
    using R = std::invoke_result_t<Task&, std::size_t>;
    static_assert(!std::is_void_v<R>, "grid tasks must return a value");
    std::vector<std::optional<R>> slots(count);
    std::vector<std::exception_ptr> errors(count);
    std::atomic<std::size_t> next{0};

    auto worker = [&]() noexcept {
      for (std::size_t i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
        try {
          slots[i].emplace(task(i));
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    };

    const std::size_t pool =
        std::min<std::size_t>(static_cast<std::size_t>(jobs_), count);
    if (pool <= 1) {
      worker();
    } else {
      std::vector<std::thread> threads;
      threads.reserve(pool);
      for (std::size_t w = 0; w < pool; ++w) threads.emplace_back(worker);
      for (std::thread& t : threads) t.join();
    }

    for (std::exception_ptr& e : errors)
      if (e) std::rethrow_exception(e);
    std::vector<R> out;
    out.reserve(count);
    for (std::optional<R>& slot : slots) {
      NC_CHECK_MSG(slot.has_value(), "grid task produced no result");
      out.push_back(std::move(*slot));
    }
    return out;
  }

 private:
  int jobs_;
};

}  // namespace nc::eval

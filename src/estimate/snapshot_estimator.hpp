// SnapshotEstimator: answer latency queries from published epoch snapshots.
//
// The backend the serving layer runs on. Instead of tracking coordinates
// off the observation stream itself, it holds a SnapshotView onto a
// SnapshotPublisher — refreshed once per query, which is a cached-version
// no-op between publishes, a pointer copy in full mode, and an O(changed
// slots) delta apply in delta mode — and answers estimate_rtt(a, b) with
// the coordinate distance between the two published entries. That decouples
// readers from engine internals completely: each estimator instance queries
// from its own thread at any time, and what it sees is a consistent
// epoch-boundary view (a's and b's coordinates from the SAME epoch, never a
// torn mix). Like the view it wraps, an estimator instance is NOT
// internally synchronized — one instance per reader thread (exactly how the
// engine's per-shard and the service's per-thread instances are deployed).
//
// Fallback: before the first publish — and for nodes not yet placed in the
// snapshot — the backend falls back to a CoordinateEstimator cache fed from
// its own observation stream, exactly like IDMS falls back to coordinates.
// Inside the engine this guarantees the invariant on_delivered_pong relies
// on: right after on_observation(src, dst, ...) the pair always has an
// estimate (the fallback just cached both endpoints).
//
// Determinism: used as the engine's scoring backend (--backend=snapshot),
// results stay bit-identical at any shard count. Snapshots are published
// at epoch boundaries from barrier-ordered state, so every shard's
// processing phase of epoch k sees the same snapshot (the boundary-k view)
// regardless of W, and the fallback cache is fed in the shard's canonical
// observation order like any other backend.
#pragma once

#include "estimate/coordinate_estimator.hpp"
#include "estimate/latency_estimator.hpp"
#include "estimate/snapshot.hpp"

namespace nc::est {

struct SnapshotEstimatorConfig {
  /// Staleness horizon applied to the fallback cache (the snapshot itself
  /// is always current — the engine republishes every epoch).
  double max_age_s = 600.0;
};

class SnapshotEstimator final : public LatencyEstimator {
 public:
  /// `source` must outlive the estimator and may be shared with any number
  /// of concurrent readers; nullptr is allowed (everything falls back).
  SnapshotEstimator(const SnapshotEstimatorConfig& config,
                    const SnapshotPublisher* source, int num_nodes);

  void on_observation(const LatencyObservation& obs) override;
  [[nodiscard]] std::optional<double> estimate_rtt(NodeId a, NodeId b,
                                                   double now_s) override;
  [[nodiscard]] const char* name() const noexcept override {
    return "snapshot";
  }
  /// Coverage counters are this backend's own (direct = answered from the
  /// snapshot); state/traffic accounting is the fallback cache's — the
  /// shared snapshot's bytes belong to its publisher (the engine budgets
  /// them as snapshot_bytes), and counting it per shard instance would make
  /// the summed stats depend on the shard count.
  [[nodiscard]] EstimatorStats stats() const override;

  /// The materialized view queries are answered from — shared with callers
  /// (CoordinateService's scans) so estimator and scan always agree on the
  /// epoch. Same thread contract as the estimator itself.
  [[nodiscard]] SnapshotView& view() noexcept { return view_; }

 private:
  SnapshotView view_;
  CoordinateEstimator fallback_;

  std::uint64_t queries_ = 0;
  std::uint64_t direct_hits_ = 0;
  std::uint64_t fallback_hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace nc::est

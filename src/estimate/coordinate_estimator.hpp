// CoordinateEstimator: the paper's network-coordinate path behind the
// LatencyEstimator seam.
//
// The backend keeps, per node, the latest application coordinate it has
// seen on the observation stream — the observer's own post-update state
// from `src_app`, and every remote's advertised state from `dst_app` — and
// answers estimate_rtt(a, b) with the coordinate distance between the two
// cached entries. Right after on_observation(src, dst, ...) that distance
// is EXACTLY src_app.distance_to(dst_app): both entries were just written
// and distance_to is bit-symmetric, which is how the refactored engine
// reproduces the pre-refactor error metrics bit-for-bit (pinned by
// tests/eval/backend_equivalence_test.cpp).
//
// Traffic model: coordinate state rides on the measurement replies the
// deployment already exchanges, so the backend's feed costs one wire-encoded
// coordinate state per observation (core/wire.hpp's encoding).
#pragma once

#include <vector>

#include "estimate/latency_estimator.hpp"

namespace nc::est {

struct CoordinateEstimatorConfig {
  /// Entries older than this count as stale in stats() (introspection only;
  /// a stale coordinate still answers — the deployment has nothing better).
  double max_age_s = 600.0;
};

class CoordinateEstimator final : public LatencyEstimator {
 public:
  CoordinateEstimator(const CoordinateEstimatorConfig& config, int num_nodes);

  void on_observation(const LatencyObservation& obs) override;
  [[nodiscard]] std::optional<double> estimate_rtt(NodeId a, NodeId b,
                                                   double now_s) override;
  [[nodiscard]] const char* name() const noexcept override {
    return "coordinates";
  }
  [[nodiscard]] EstimatorStats stats() const override;

 private:
  void store(NodeId id, const Coordinate& coord, double t_s);

  CoordinateEstimatorConfig config_;
  /// Latest application coordinate per node id; uninitialized Coordinate
  /// (dim 0) marks "never seen".
  std::vector<Coordinate> coords_;
  std::vector<double> last_seen_s_;

  std::uint64_t observations_ = 0;
  std::uint64_t queries_ = 0;
  std::uint64_t direct_hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t entries_ = 0;
  std::uint64_t traffic_bytes_ = 0;
  double last_now_s_ = 0.0;
};

}  // namespace nc::est

// IDMSEstimator: a measured delay-matrix service behind the
// LatencyEstimator seam.
//
// The IDMS line of work (see PAPERS.md) argues an NC system is unnecessary:
// keep the observed RTTs themselves in a matrix and answer queries by
// lookup. This backend maintains a DIRECTED delay matrix over the node id
// space, filled from the same observed-RTT stream that drives the
// coordinate backend. Each cell smooths repeated samples with an EWMA
// (alpha-weighted toward the newest sample) rather than storing the last
// raw value, so one congestion spike does not own the cell.
//
// Sharding / determinism: a cell (src, dst) is only ever written while
// processing an observation whose observer is `src`, and every instance is
// owned by the shard that owns `src` — so cell updates happen in the
// shard's canonical processing order and the matrix is bit-identical at any
// shard count. The matrix is indexed (src - first_owned) * n + dst exactly
// like the engine's directed link arrays, and paged via common/paged_store
// above the eager slot limit so big deployments pay for sampled pairs, not
// for n^2/W.
//
// Staleness + fallback: a cell older than `max_age_s` no longer answers —
// unlike a coordinate, a point measurement says nothing once the paths have
// churned. Queries for stale or never-measured pairs fall back to an
// embedded coordinate backend fed the same stream (the hybrid deployment
// IDMS itself proposes for partial coverage); only when the fallback also
// has nothing does the query miss.
//
// Traffic model: each observation is one fixed-size matrix report to the
// service (src, dst, rtt, timestamp ~ kMatrixReportBytes) ON TOP of the
// coordinate state the fallback still needs piggybacked.
#pragma once

#include <vector>

#include "common/paged_store.hpp"
#include "estimate/coordinate_estimator.hpp"
#include "estimate/latency_estimator.hpp"

namespace nc::est {

struct IDMSEstimatorConfig {
  /// Matrix cells older than this stop answering and fall back.
  double max_age_s = 600.0;
  /// EWMA weight of the newest sample when refreshing a live cell.
  double alpha = 0.3;
  /// Paged-store threshold for the matrix (tests shrink it to force paging).
  std::size_t eager_slot_limit = kPagedStoreDefaultEagerSlotLimit;
};

class IDMSEstimator final : public LatencyEstimator {
 public:
  /// One matrix report on the wire: two node ids, an RTT and a timestamp.
  static constexpr std::uint64_t kMatrixReportBytes = 20;

  /// Owns the directed rows of nodes [first_owned, first_owned + owned_count)
  /// out of a `num_nodes`-node deployment (a per-shard slice; pass 0 /
  /// num_nodes for a whole-run instance).
  IDMSEstimator(const IDMSEstimatorConfig& config, int num_nodes,
                NodeId first_owned, int owned_count);

  void on_observation(const LatencyObservation& obs) override;
  [[nodiscard]] std::optional<double> estimate_rtt(NodeId a, NodeId b,
                                                   double now_s) override;
  [[nodiscard]] const char* name() const noexcept override { return "idms"; }
  [[nodiscard]] EstimatorStats stats() const override;

  /// Ownership migration: the matrix is owner-partitioned by row, so a
  /// node's state is exactly its directed row, carried dst-ascending.
  [[nodiscard]] EstimatorNodeState extract_node_state(NodeId node) override;
  void install_node_state(NodeId node, const EstimatorNodeState& state) override;

 private:
  /// One directed measurement; updated_s < 0 marks "never measured" (the
  /// value a fresh page reads as).
  struct Cell {
    double rtt_ms = 0.0;
    double updated_s = -1.0;
  };

  [[nodiscard]] std::size_t cell_index(NodeId src, NodeId dst) const noexcept {
    return static_cast<std::size_t>(src - first_owned_) *
               static_cast<std::size_t>(num_nodes_) +
           static_cast<std::size_t>(dst);
  }

  IDMSEstimatorConfig config_;
  int num_nodes_;
  NodeId first_owned_;
  PagedStore<Cell> cells_;
  /// Indices of filled cells, for O(entries) staleness scans.
  std::vector<std::size_t> filled_;
  CoordinateEstimator fallback_;

  std::uint64_t observations_ = 0;
  std::uint64_t queries_ = 0;
  std::uint64_t direct_hits_ = 0;
  std::uint64_t fallback_hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t traffic_bytes_ = 0;
  double last_now_s_ = 0.0;
};

}  // namespace nc::est

// LatencyEstimator: one estimation interface, many backends.
//
// The paper's claim is that stabilized coordinates are accurate enough for
// applications; the IDMS line of work argues a measured delay-matrix
// service can replace a coordinate system outright. Adjudicating that needs
// both answers behind ONE seam: every consumer (metrics, examples, benches)
// asks "what is the RTT between a and b right now?" through this interface
// and never reaches into coordinate state directly.
//
// The estimation loop mirrors how a deployment feeds any backend: the same
// observed-RTT stream the kernel already routes (node src measured node dst,
// carrying the remote's advertised application coordinate) goes into
// on_observation(); estimate_rtt() answers queries from whatever state the
// backend maintains. Backends are OWNED PER SHARD by the simulation engine —
// each instance sees only the observations whose observer the shard owns, in
// the shard's canonical processing order, which is what keeps every backend
// bit-identical at any shard count (see sim/sharded_sim.hpp).
//
// Introspection is part of the contract: EstimatorStats reports coverage
// (how many queries the backend answered from its own state vs. fell back
// or missed), staleness (entries past the configured horizon), and cost
// (bytes of estimator state; wire bytes the backend's feed would consume).
// Stats from per-shard instances add field-wise into whole-run totals.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/coordinate.hpp"
#include "core/node_id.hpp"

namespace nc::est {

/// One observed measurement: `src` measured `dst` at `t_s` and read the
/// remote's advertised application coordinate off the reply. `src_app` is
/// the observer's own application coordinate AFTER applying the sample —
/// the state a coordinate backend would publish at that instant.
struct LatencyObservation {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  double t_s = 0.0;
  double raw_rtt_ms = 0.0;
  Coordinate src_app;
  Coordinate dst_app;
};

/// Coverage / staleness / cost introspection. Per-shard instances report
/// disjoint state, so whole-run totals are a field-wise sum.
struct EstimatorStats {
  std::uint64_t observations = 0;
  std::uint64_t queries = 0;
  /// Queries answered from the backend's own primary state.
  std::uint64_t direct_hits = 0;
  /// Queries answered by the backend's fallback path (IDMS -> coordinates).
  std::uint64_t fallback_hits = 0;
  /// Queries with no estimate at all.
  std::uint64_t misses = 0;
  /// Live state entries (filled matrix cells / cached coordinates).
  std::uint64_t entries = 0;
  /// Entries older than the staleness horizon at the last observation.
  std::uint64_t stale_entries = 0;
  /// Bytes of estimator state held right now.
  std::uint64_t memory_bytes = 0;
  /// Wire bytes the backend's feed would have consumed (piggybacked
  /// coordinate state / matrix report messages).
  std::uint64_t traffic_bytes = 0;

  void add(const EstimatorStats& o) noexcept {
    observations += o.observations;
    queries += o.queries;
    direct_hits += o.direct_hits;
    fallback_hits += o.fallback_hits;
    misses += o.misses;
    entries += o.entries;
    stale_entries += o.stale_entries;
    memory_bytes += o.memory_bytes;
    traffic_bytes += o.traffic_bytes;
  }

  /// Fraction of queries answered from primary state (0 when unqueried).
  [[nodiscard]] double coverage() const noexcept {
    return queries == 0 ? 0.0
                        : static_cast<double>(direct_hits) /
                              static_cast<double>(queries);
  }
};

/// One node's portable backend state for ownership migration: the primary
/// per-(node, dst) cells a backend keeps for an owned node, in canonical
/// (dst ascending) order. Backends whose per-observation state is globally
/// replicated rather than owner-partitioned (coordinates, snapshot) have
/// nothing to carry and use the default no-op hooks.
struct EstimatorNodeState {
  struct MatrixCell {
    NodeId dst = kInvalidNode;
    double rtt_ms = 0.0;
    double updated_s = -1.0;
  };
  std::vector<MatrixCell> cells;
};

class LatencyEstimator {
 public:
  virtual ~LatencyEstimator() = default;

  /// Feeds one observation. The observer (`obs.src`) must be a node this
  /// instance is responsible for; any destination is fine.
  virtual void on_observation(const LatencyObservation& obs) = 0;

  /// Estimated RTT (ms) from `a` to `b` as of `now_s`, or nullopt when the
  /// backend (including its fallback) has nothing to say. `a` must be a
  /// node this instance is responsible for. Counts into stats().
  [[nodiscard]] virtual std::optional<double> estimate_rtt(NodeId a, NodeId b,
                                                           double now_s) = 0;

  [[nodiscard]] virtual const char* name() const noexcept = 0;
  [[nodiscard]] virtual EstimatorStats stats() const = 0;

  /// Ownership migration (sim/sharded_sim.cpp): moves `node`'s primary state
  /// out of this instance, canonically ordered (see EstimatorNodeState).
  /// After extraction the instance answers for `node` as if it had never
  /// observed it. Default: nothing to carry.
  [[nodiscard]] virtual EstimatorNodeState extract_node_state(NodeId node) {
    (void)node;
    return {};
  }

  /// Installs state packed by another instance's extract_node_state. The
  /// node must currently have no state here. Default: nothing to install.
  virtual void install_node_state(NodeId node, const EstimatorNodeState& state) {
    (void)node;
    (void)state;
  }

 protected:
  LatencyEstimator() = default;
  LatencyEstimator(const LatencyEstimator&) = default;
  LatencyEstimator& operator=(const LatencyEstimator&) = default;
};

}  // namespace nc::est

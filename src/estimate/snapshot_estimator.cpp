#include "estimate/snapshot_estimator.hpp"

namespace nc::est {

SnapshotEstimator::SnapshotEstimator(const SnapshotEstimatorConfig& config,
                                     const SnapshotPublisher* source,
                                     int num_nodes)
    : view_(source),
      fallback_(CoordinateEstimatorConfig{config.max_age_s}, num_nodes) {}

void SnapshotEstimator::on_observation(const LatencyObservation& obs) {
  // The feed keeps the fallback cache primed (and accounts the piggybacked
  // coordinate traffic); the primary state refreshes itself — the engine
  // publishes a new snapshot every epoch.
  fallback_.on_observation(obs);
}

std::optional<double> SnapshotEstimator::estimate_rtt(NodeId a, NodeId b,
                                                      double now_s) {
  ++queries_;
  if (a >= 0 && b >= 0) {
    if (const EpochSnapshot* snap = view_.refresh()) {
      const auto ia = static_cast<std::size_t>(a);
      const auto ib = static_cast<std::size_t>(b);
      if (ia < snap->nodes.size() && ib < snap->nodes.size()) {
        const SnapshotNode& na = snap->nodes[ia];
        const SnapshotNode& nb = snap->nodes[ib];
        if (na.placed() && nb.placed()) {
          ++direct_hits_;
          return na.app.distance_to(nb.app);
        }
      }
    }
  }
  const std::optional<double> fb = fallback_.estimate_rtt(a, b, now_s);
  if (fb.has_value())
    ++fallback_hits_;
  else
    ++misses_;
  return fb;
}

EstimatorStats SnapshotEstimator::stats() const {
  EstimatorStats s = fallback_.stats();
  // The fallback's query-side counters reflect only delegated queries;
  // replace them with this backend's own coverage view.
  s.queries = queries_;
  s.direct_hits = direct_hits_;
  s.fallback_hits = fallback_hits_;
  s.misses = misses_;
  return s;
}

}  // namespace nc::est

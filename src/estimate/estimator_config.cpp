#include "estimate/estimator_config.hpp"

#include "common/check.hpp"
#include "estimate/coordinate_estimator.hpp"
#include "estimate/idms_estimator.hpp"

namespace nc::est {

const char* backend_name(EstimatorBackend backend) noexcept {
  switch (backend) {
    case EstimatorBackend::kCoordinates:
      return "coordinates";
    case EstimatorBackend::kIdms:
      return "idms";
  }
  return "?";
}

std::optional<EstimatorBackend> backend_from_string(
    const std::string& name) noexcept {
  if (name == "coordinates") return EstimatorBackend::kCoordinates;
  if (name == "idms") return EstimatorBackend::kIdms;
  return std::nullopt;
}

std::unique_ptr<LatencyEstimator> make_estimator(const EstimatorSpec& spec,
                                                 int num_nodes,
                                                 NodeId first_owned,
                                                 int owned_count) {
  switch (spec.backend) {
    case EstimatorBackend::kCoordinates:
      return std::make_unique<CoordinateEstimator>(
          CoordinateEstimatorConfig{spec.max_age_s}, num_nodes);
    case EstimatorBackend::kIdms: {
      IDMSEstimatorConfig config;
      config.max_age_s = spec.max_age_s;
      config.alpha = spec.idms_alpha;
      config.eager_slot_limit = spec.idms_eager_slot_limit;
      return std::make_unique<IDMSEstimator>(config, num_nodes, first_owned,
                                             owned_count);
    }
  }
  NC_CHECK_MSG(false, "unknown estimator backend");
  return nullptr;
}

}  // namespace nc::est

#include "estimate/estimator_config.hpp"

#include "common/check.hpp"
#include "estimate/coordinate_estimator.hpp"
#include "estimate/idms_estimator.hpp"
#include "estimate/snapshot_estimator.hpp"

namespace nc::est {

const char* backend_name(EstimatorBackend backend) noexcept {
  switch (backend) {
    case EstimatorBackend::kCoordinates:
      return "coordinates";
    case EstimatorBackend::kIdms:
      return "idms";
    case EstimatorBackend::kSnapshot:
      return "snapshot";
  }
  return "?";
}

std::optional<EstimatorBackend> backend_from_string(
    const std::string& name) noexcept {
  if (name == "coordinates") return EstimatorBackend::kCoordinates;
  if (name == "idms") return EstimatorBackend::kIdms;
  if (name == "snapshot") return EstimatorBackend::kSnapshot;
  return std::nullopt;
}

std::unique_ptr<LatencyEstimator> make_estimator(const EstimatorSpec& spec,
                                                 int num_nodes,
                                                 NodeId first_owned,
                                                 int owned_count) {
  switch (spec.backend) {
    case EstimatorBackend::kCoordinates:
      return std::make_unique<CoordinateEstimator>(
          CoordinateEstimatorConfig{spec.max_age_s}, num_nodes);
    case EstimatorBackend::kIdms: {
      IDMSEstimatorConfig config;
      config.max_age_s = spec.max_age_s;
      config.alpha = spec.idms_alpha;
      config.eager_slot_limit = spec.idms_eager_slot_limit;
      return std::make_unique<IDMSEstimator>(config, num_nodes, first_owned,
                                             owned_count);
    }
    case EstimatorBackend::kSnapshot:
      // The engine wires spec.snapshot_source to its own publisher before
      // building shard instances; a null source still works (everything
      // goes through the coordinate fallback) so whole-run instances built
      // outside an engine don't trip over it.
      return std::make_unique<SnapshotEstimator>(
          SnapshotEstimatorConfig{spec.max_age_s}, spec.snapshot_source,
          num_nodes);
  }
  NC_CHECK_MSG(false, "unknown estimator backend");
  return nullptr;
}

}  // namespace nc::est

#include "estimate/coordinate_estimator.hpp"

#include "common/check.hpp"
#include "core/wire.hpp"

namespace nc::est {

CoordinateEstimator::CoordinateEstimator(const CoordinateEstimatorConfig& config,
                                         int num_nodes)
    : config_(config) {
  NC_CHECK_MSG(num_nodes >= 0, "negative node count");
  NC_CHECK_MSG(config.max_age_s > 0.0, "staleness horizon must be positive");
  coords_.resize(static_cast<std::size_t>(num_nodes));
  last_seen_s_.assign(static_cast<std::size_t>(num_nodes), 0.0);
}

void CoordinateEstimator::store(NodeId id, const Coordinate& coord, double t_s) {
  if (!coord.initialized()) return;  // nothing advertised yet
  const auto i = static_cast<std::size_t>(id);
  NC_ASSERT(i < coords_.size());
  if (!coords_[i].initialized()) ++entries_;
  coords_[i] = coord;
  last_seen_s_[i] = t_s;
}

void CoordinateEstimator::on_observation(const LatencyObservation& obs) {
  ++observations_;
  last_now_s_ = obs.t_s;
  store(obs.src, obs.src_app, obs.t_s);
  store(obs.dst, obs.dst_app, obs.t_s);
  // The remote's coordinate state rode on the measurement reply.
  if (obs.dst_app.initialized())
    traffic_bytes_ +=
        encoded_size(obs.dst_app.dim(), obs.dst_app.has_height());
}

std::optional<double> CoordinateEstimator::estimate_rtt(NodeId a, NodeId b,
                                                        double now_s) {
  ++queries_;
  last_now_s_ = std::max(last_now_s_, now_s);
  const auto ia = static_cast<std::size_t>(a);
  const auto ib = static_cast<std::size_t>(b);
  NC_ASSERT(ia < coords_.size() && ib < coords_.size());
  if (!coords_[ia].initialized() || !coords_[ib].initialized()) {
    ++misses_;
    return std::nullopt;
  }
  ++direct_hits_;
  return coords_[ia].distance_to(coords_[ib]);
}

EstimatorStats CoordinateEstimator::stats() const {
  EstimatorStats s;
  s.observations = observations_;
  s.queries = queries_;
  s.direct_hits = direct_hits_;
  s.misses = misses_;
  s.entries = entries_;
  for (std::size_t i = 0; i < coords_.size(); ++i) {
    if (coords_[i].initialized() &&
        last_now_s_ - last_seen_s_[i] > config_.max_age_s)
      ++s.stale_entries;
  }
  s.memory_bytes = sizeof(*this) +
                   coords_.capacity() * sizeof(Coordinate) +
                   last_seen_s_.capacity() * sizeof(double);
  s.traffic_bytes = traffic_bytes_;
  return s;
}

}  // namespace nc::est

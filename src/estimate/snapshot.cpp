#include "estimate/snapshot.hpp"

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/check.hpp"

namespace nc::est {

namespace {

/// Retired FULL buffers kept warm per publisher. More than (readers +
/// writer) buffers can only pile up transiently; beyond this the pool frees
/// them.
constexpr std::size_t kMaxPooledBuffers = 8;

/// Wire-format header for the publish-byte accounting: a base ships
/// {version, t_s, count} + packed nodes (a delta additionally carries its
/// base_version — SnapshotDelta::wire_bytes matches).
constexpr std::uint64_t kBaseHeaderBytes = 24;

std::uint64_t base_wire_bytes(std::size_t num_nodes) noexcept {
  return kBaseHeaderBytes + num_nodes * sizeof(SnapshotNode);
}

}  // namespace

SnapshotPublisher::SnapshotPublisher()
    : pool_(std::make_shared<BufferPool>()),
      delta_pool_(std::make_shared<DeltaPool>()) {}

void SnapshotPublisher::enable_deltas(int base_interval, int num_lanes) {
  NC_CHECK_MSG(base_interval >= 1, "base_interval must be >= 1");
  NC_CHECK_MSG(num_lanes >= 1, "num_lanes must be >= 1");
  NC_CHECK_MSG(versions_.load(std::memory_order_relaxed) == 0,
               "enable_deltas() must precede the first publish");
  base_interval_ = base_interval;
  lanes_.resize(static_cast<std::size_t>(num_lanes));
  // A base publish prunes up to base_interval chain entries in one burst;
  // size the pool to absorb it so steady-state publishing never allocates
  // after the first base cycle.
  delta_pool_->max_pooled = static_cast<std::size_t>(base_interval) + 4;
}

EpochSnapshot& SnapshotPublisher::staging(int num_nodes) {
  NC_CHECK_MSG(num_nodes >= 0, "negative snapshot size");
  if (!staging_) {
    std::lock_guard<std::mutex> lock(pool_->mu);
    if (!pool_->free.empty()) {
      staging_ = std::move(pool_->free.back());
      pool_->free.pop_back();
    }
  }
  if (!staging_) {
    staging_ = std::make_unique<EpochSnapshot>();
    ++base_allocs_;
  }
  staging_->nodes.resize(static_cast<std::size_t>(num_nodes));
  return *staging_;
}

std::shared_ptr<const SnapshotDelta> SnapshotPublisher::build_delta(
    std::uint64_t version, double t_s) {
  std::unique_ptr<SnapshotDelta> d;
  {
    std::lock_guard<std::mutex> lock(delta_pool_->mu);
    if (!delta_pool_->free.empty()) {
      d = std::move(delta_pool_->free.back());
      delta_pool_->free.pop_back();
    }
  }
  if (!d) {
    d = std::make_unique<SnapshotDelta>();
    ++delta_allocs_;
  }
  d->version = version;
  d->base_version = last_base_version_;  // newest base BEFORE this publish
  d->t_s = t_s;
  d->entries.clear();
  for (const auto& lane : lanes_)
    d->entries.insert(d->entries.end(), lane.begin(), lane.end());
  // Lanes hold disjoint owned slots, but ownership (and hence lane order)
  // is arbitrary under rebalancing — sort once here so readers apply, and
  // the bit-identity tests compare, a canonical slot-ascending record.
  std::sort(d->entries.begin(), d->entries.end(),
            [](const SnapshotDeltaEntry& a, const SnapshotDeltaEntry& b) {
              return a.slot < b.slot;
            });
  // Same deleter shape as the full buffers: the POOL is captured, so the
  // last holder — possibly a reader after publisher teardown — recycles the
  // delta under the pool mutex instead of freeing it.
  std::shared_ptr<DeltaPool> pool = delta_pool_;
  return std::shared_ptr<const SnapshotDelta>(
      d.release(), [pool](const SnapshotDelta* p) {
        std::unique_ptr<SnapshotDelta> owned(const_cast<SnapshotDelta*>(p));
        std::lock_guard<std::mutex> lock(pool->mu);
        if (pool->free.size() < pool->max_pooled)
          pool->free.push_back(std::move(owned));
      });
}

void SnapshotPublisher::publish(double t_s) {
  const std::uint64_t version = versions_.load(std::memory_order_relaxed) + 1;
  const bool ship_base = next_is_base();
  std::shared_ptr<const EpochSnapshot> snap;
  if (ship_base) {
    NC_CHECK_MSG(staging_ != nullptr, "publish() without staging()");
    staging_->version = version;
    staging_->t_s = t_s;
    published_base_bytes_ += base_wire_bytes(staging_->nodes.size());
    ++base_publishes_;
    // The deleter captures the POOL, not the publisher: the last holder of a
    // snapshot — a reader thread, possibly after the publisher is destroyed —
    // recycles the buffer under the pool mutex instead of freeing it.
    std::shared_ptr<BufferPool> pool = pool_;
    snap = std::shared_ptr<const EpochSnapshot>(
        staging_.release(), [pool](const EpochSnapshot* s) {
          std::unique_ptr<EpochSnapshot> buf(const_cast<EpochSnapshot*>(s));
          std::lock_guard<std::mutex> lock(pool->mu);
          if (pool->free.size() < kMaxPooledBuffers)
            pool->free.push_back(std::move(buf));
        });
  }

  if (delta_mode()) {
    std::shared_ptr<const SnapshotDelta> delta = build_delta(version, t_s);
    published_delta_bytes_ += delta->wire_bytes();
    for (auto& lane : lanes_) lane.clear();
    // Chain entries pruned at a base are collected into `retired` and
    // released OUTSIDE the lock: their deleter takes the delta-pool mutex,
    // which must never nest inside latest_mu_'s pointer-sized section.
    std::vector<std::shared_ptr<const SnapshotDelta>> retired;
    {
      std::lock_guard<std::mutex> lock(latest_mu_);
      chain_.push_back(std::move(delta));
      if (ship_base) {
        latest_ = std::move(snap);
        // The chain keeps reaching back to the PREVIOUS base: a reader who
        // last refreshed anywhere in the last base cycle still catches up
        // incrementally across this boundary.
        const std::uint64_t prune_floor = last_base_version_;
        prev_base_version_ = last_base_version_;
        last_base_version_ = version;
        auto keep = chain_.begin();
        while (keep != chain_.end() && (*keep)->version <= prune_floor) ++keep;
        retired.assign(std::make_move_iterator(chain_.begin()),
                       std::make_move_iterator(keep));
        chain_.erase(chain_.begin(), keep);
      }
    }
    retired.clear();
    ++publish_seq_;
    if (ship_base) force_base_ = false;
  } else {
    // The mutex hand-off orders every slot the writer (and, in the engine,
    // the barrier-ordered shard slices) filled before any reader's copy; the
    // critical section is one pointer move.
    std::lock_guard<std::mutex> lock(latest_mu_);
    latest_ = std::move(snap);
  }
  // Bumped AFTER the slot swap: published() >= v guarantees latest() (and
  // catch_up()) already serve version >= v (the monotonicity tests poll
  // exactly this way).
  versions_.fetch_add(1, std::memory_order_release);
}

std::shared_ptr<const EpochSnapshot> SnapshotPublisher::latest() const {
  std::lock_guard<std::mutex> lock(latest_mu_);
  return latest_;
}

bool SnapshotPublisher::catch_up(
    std::uint64_t have_version, bool materialized,
    std::shared_ptr<const EpochSnapshot>& base,
    std::vector<std::shared_ptr<const SnapshotDelta>>& deltas) const {
  base.reset();
  deltas.clear();
  std::lock_guard<std::mutex> lock(latest_mu_);
  if (chain_.empty()) {
    base = latest_;  // nothing published yet, or full mode
    return false;
  }
  // The chain covers (prev_base_version_, latest]; a materialized reader
  // inside that window tops up with exactly the deltas it is missing.
  if (materialized && have_version >= prev_base_version_) {
    for (const auto& d : chain_)
      if (d->version > have_version) deltas.push_back(d);
    return true;
  }
  base = latest_;
  if (base)
    for (const auto& d : chain_)
      if (d->version > base->version) deltas.push_back(d);
  return false;
}

std::uint64_t SnapshotPublisher::base_memory_bytes() const {
  std::uint64_t total = 0;
  if (staging_) total += staging_->memory_bytes();
  {
    std::lock_guard<std::mutex> lock(latest_mu_);
    if (latest_) total += latest_->memory_bytes();
  }
  std::lock_guard<std::mutex> lock(pool_->mu);
  for (const auto& buf : pool_->free) total += buf->memory_bytes();
  return total;
}

std::uint64_t SnapshotPublisher::delta_memory_bytes() const {
  std::uint64_t total = 0;
  for (const auto& lane : lanes_)
    total += lane.capacity() * sizeof(SnapshotDeltaEntry);
  {
    std::lock_guard<std::mutex> lock(latest_mu_);
    for (const auto& d : chain_) total += d->memory_bytes();
  }
  std::lock_guard<std::mutex> lock(delta_pool_->mu);
  for (const auto& d : delta_pool_->free) total += d->memory_bytes();
  return total;
}

const EpochSnapshot* SnapshotView::refresh() {
  if (!source_) return nullptr;
  const std::uint64_t pub = source_->published();
  if (pub == 0) return nullptr;
  if (!source_->delta_mode()) {
    if (!full_ || full_->version != pub) full_ = source_->latest();
    return full_.get();
  }
  if (materialized_ && local_.version >= pub) return &local_;
  std::shared_ptr<const EpochSnapshot> base;
  scratch_.clear();
  const bool incremental =
      source_->catch_up(local_.version, materialized_, base, scratch_);
  if (incremental) {
    ++delta_refreshes_;
  } else {
    if (!base) return materialized_ ? &local_ : nullptr;
    local_.version = base->version;
    local_.t_s = base->t_s;
    local_.nodes = base->nodes;  // O(n), reuses the local buffer's capacity
    materialized_ = true;
    ++full_rebuilds_;
  }
  for (const auto& d : scratch_) {
    for (const auto& e : d->entries) local_.nodes[e.slot] = e.node;
    local_.version = d->version;
    local_.t_s = d->t_s;
  }
  scratch_.clear();  // drop delta refs promptly so they recycle to the pool
  return &local_;
}

}  // namespace nc::est

#include "estimate/snapshot.hpp"

#include "common/check.hpp"

namespace nc::est {

namespace {

/// Retired buffers kept warm per publisher. More than (readers + writer)
/// buffers can only pile up transiently; beyond this the pool frees them.
constexpr std::size_t kMaxPooledBuffers = 8;

}  // namespace

SnapshotPublisher::SnapshotPublisher()
    : pool_(std::make_shared<BufferPool>()) {}

EpochSnapshot& SnapshotPublisher::staging(int num_nodes) {
  NC_CHECK_MSG(num_nodes >= 0, "negative snapshot size");
  if (!staging_) {
    std::lock_guard<std::mutex> lock(pool_->mu);
    if (!pool_->free.empty()) {
      staging_ = std::move(pool_->free.back());
      pool_->free.pop_back();
    }
  }
  if (!staging_) staging_ = std::make_unique<EpochSnapshot>();
  staging_->nodes.resize(static_cast<std::size_t>(num_nodes));
  return *staging_;
}

void SnapshotPublisher::publish(double t_s) {
  NC_CHECK_MSG(staging_ != nullptr, "publish() without staging()");
  staging_->version = versions_.load(std::memory_order_relaxed) + 1;
  staging_->t_s = t_s;
  // The deleter captures the POOL, not the publisher: the last holder of a
  // snapshot — a reader thread, possibly after the publisher is destroyed —
  // recycles the buffer under the pool mutex instead of freeing it.
  std::shared_ptr<BufferPool> pool = pool_;
  std::shared_ptr<const EpochSnapshot> snap(
      staging_.release(), [pool](const EpochSnapshot* s) {
        std::unique_ptr<EpochSnapshot> buf(const_cast<EpochSnapshot*>(s));
        std::lock_guard<std::mutex> lock(pool->mu);
        if (pool->free.size() < kMaxPooledBuffers)
          pool->free.push_back(std::move(buf));
      });
  // The mutex hand-off orders every slot the writer (and, in the engine,
  // the barrier-ordered shard slices) filled before any reader's copy; the
  // critical section is one pointer move.
  {
    std::lock_guard<std::mutex> lock(latest_mu_);
    latest_ = std::move(snap);
  }
  // Bumped AFTER the slot swap: published() >= v guarantees latest() already
  // returns version >= v (the monotonicity tests poll exactly this way).
  versions_.fetch_add(1, std::memory_order_release);
}

std::shared_ptr<const EpochSnapshot> SnapshotPublisher::latest() const {
  std::lock_guard<std::mutex> lock(latest_mu_);
  return latest_;
}

std::uint64_t SnapshotPublisher::memory_bytes() const {
  std::uint64_t total = 0;
  if (staging_) total += staging_->memory_bytes();
  if (const auto snap = latest()) total += snap->memory_bytes();
  std::lock_guard<std::mutex> lock(pool_->mu);
  for (const auto& buf : pool_->free) total += buf->memory_bytes();
  return total;
}

}  // namespace nc::est

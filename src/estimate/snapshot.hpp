// Epoch snapshots: the engine's coordinate state made concurrently readable.
//
// The sharded kernel's shared-state discipline is owner-only writes with
// barrier-separated reads — correct inside the run, but it means nothing
// outside the worker threads may look at a coordinate while the simulation
// is advancing. The serving layer (src/serve/) needs exactly that: a query
// front end answering nearest-k/distance requests from LIVE engine state
// under a heavy open-loop client workload.
//
// The seam is publish-on-barrier: at epoch boundaries the engine stamps
// every node's application coordinate, error/confidence estimate and
// availability bit into an immutable EpochSnapshot and hands it to a
// SnapshotPublisher. Readers copy the latest snapshot pointer and then
// compute against a frozen, consistent view — no waiting on the shard
// workers, no torn coordinates, no tearing between a node's position and
// its confidence.
//
// DELTA MODE (churn-proportional publication): a full O(n) buffer per epoch
// is fine at 100k nodes but not at 1M, and it is mostly redundant — the
// paper's central claim is that application coordinates barely move between
// epochs. With enable_deltas(), only every `base_interval`-th publish ships
// a full EpochSnapshot base; the publishes in between ship a compact
// SnapshotDelta (slot-ascending (slot, SnapshotNode) upserts), built from
// per-shard dirty lanes the engine fills at its stamp step. Every publish
// — including a base — appends a delta to the retained chain, so the chain
// is continuous across bases and a reader that is at most one base behind
// catches up by applying O(changed) entries; an older (or fresh) reader
// copies the newest base once and replays the deltas after it. Version
// numbering is shared: a base and its companion delta carry the same
// version, and published() counts every publish, so delta mode publishes
// the same dense version sequence full mode would.
//
// The hand-off slot is a shared_ptr guarded by a mutex held only for the
// pointer copy itself (both sides' critical sections are pointer-sized; the
// O(n) snapshot fill happens strictly outside it), plus a lock-free
// published() version counter readers can poll without touching the slot.
// Deliberately NOT std::atomic<std::shared_ptr>: libstdc++'s _Sp_atomic
// releases its reader-side spin bit with a relaxed fetch_sub, so the
// embedded _M_ptr hand-off has no release/acquire edge back to the writer —
// a formal data race that ThreadSanitizer reports (GCC 12/13), and its spin
// bit serializes readers against each other anyway, so the plain mutex is
// not even a concession.
//
// Reader/writer contract:
//  * WRITER (one thread at a time; in the engine: shard 0 between the
//    epoch barriers): staging(n) -> fill nodes -> publish(t). Shard workers
//    may fill DISJOINT slices of the staging buffer (and their OWN dirty
//    lane) in their processing phase; the engine's barriers order those
//    writes before shard 0's publish.
//  * READERS (any thread, any time): latest() returns the newest published
//    FULL snapshot or nullptr before the first publish (in delta mode that
//    is the newest base — hold a SnapshotView to track the per-delta
//    versions). The snapshot/delta objects are immutable and kept alive by
//    their shared_ptr for as long as the reader holds them — a reader
//    mid-query never blocks the engine and never sees a later epoch
//    overwrite its view.
//  * Versions are dense (1, 2, 3, ...) and strictly increasing; a reader
//    polling latest() observes a non-decreasing version sequence.
//
// Buffer lifecycle: retired snapshot AND delta buffers are recycled through
// small mutex-protected pools instead of freed — each pool is referenced by
// every outstanding object's deleter (shared_ptr<...Pool>), so the handoff
// is data-race-free under TSan and buffers outlive the publisher if a
// reader keeps one past engine teardown. Steady state allocates nothing:
// with R concurrent readers at most R + 2 full buffers circulate, and the
// delta pool is sized to absorb the burst of chain entries pruned at a base.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/coordinate.hpp"
#include "core/node_id.hpp"

namespace nc::est {

/// One node's published state at an epoch boundary. `error`/`confidence`
/// describe the published (application) coordinate: NCClient::app_error(),
/// captured at the coordinate's last update — so the whole record only
/// changes when the node's application state or availability does, which is
/// what makes delta publication churn-proportional.
struct SnapshotNode {
  Coordinate app;           // stable application coordinate (paper Sec. V)
  double error = 0.0;       // relative-error estimate at the last app update
  double confidence = 0.0;  // 1 - error, clamped to [0, 1] by NCClient
  std::uint8_t up = 1;      // availability bit at the boundary
  /// A node is queryable once its coordinate left the origin-less initial
  /// state (dim 0 = "never updated").
  [[nodiscard]] bool placed() const noexcept { return app.initialized(); }

  [[nodiscard]] friend bool operator==(const SnapshotNode& a,
                                       const SnapshotNode& b) noexcept {
    return a.app == b.app && a.error == b.error &&
           a.confidence == b.confidence && a.up == b.up;
  }
};

/// An immutable epoch-boundary view of the whole deployment. `version` is
/// dense and strictly increasing per publisher; `t_s` is the simulation
/// time of the boundary the snapshot was taken at.
struct EpochSnapshot {
  std::uint64_t version = 0;
  double t_s = 0.0;
  std::vector<SnapshotNode> nodes;

  [[nodiscard]] int num_nodes() const noexcept {
    return static_cast<int>(nodes.size());
  }
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return sizeof(EpochSnapshot) + nodes.capacity() * sizeof(SnapshotNode);
  }
};

/// One changed slot: a full-value upsert (idempotent — applying a delta
/// twice, or onto a view that already has the value, is harmless).
struct SnapshotDeltaEntry {
  std::uint32_t slot = 0;
  SnapshotNode node;
};

/// The slots that changed between version-1 and version, slot-ascending.
/// Applying the full delta chain (base_version, version] onto the base
/// reproduces the full snapshot at `version` slot for slot.
struct SnapshotDelta {
  std::uint64_t version = 0;       // view this delta produces
  std::uint64_t base_version = 0;  // newest full base at publish time
  double t_s = 0.0;
  std::vector<SnapshotDeltaEntry> entries;

  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return sizeof(SnapshotDelta) +
           entries.capacity() * sizeof(SnapshotDeltaEntry);
  }
  /// Bytes this delta puts on the wire (header + packed entries) — the
  /// publish-cost unit bench_serving reports per epoch.
  [[nodiscard]] std::uint64_t wire_bytes() const noexcept {
    return 32 + entries.size() * sizeof(SnapshotDeltaEntry);
  }
};

/// Single-writer / many-reader snapshot hand-off point (contract above).
class SnapshotPublisher {
 public:
  SnapshotPublisher();
  SnapshotPublisher(const SnapshotPublisher&) = delete;
  SnapshotPublisher& operator=(const SnapshotPublisher&) = delete;

  // --- writer side (one thread at a time) ---

  /// Switches to delta publication: every `base_interval`-th publish ships
  /// a full base, the rest ship deltas built from `num_lanes` per-shard
  /// dirty lanes. Call once, before the first publish.
  void enable_deltas(int base_interval, int num_lanes);
  [[nodiscard]] bool delta_mode() const noexcept { return base_interval_ > 0; }
  /// Whether the NEXT publish ships a full base (delta mode; always true in
  /// full mode). The engine stages a full buffer exactly when this is true.
  [[nodiscard]] bool next_is_base() const noexcept {
    return base_interval_ == 0 || force_base_ ||
           publish_seq_ % static_cast<std::uint64_t>(base_interval_) == 0;
  }
  /// Forces the next publish to ship a full base regardless of cadence (the
  /// engine's end-of-run publish, so latest() always ends on final state).
  void force_base_next() noexcept { force_base_ = true; }

  /// Shard `lane`'s dirty list for the upcoming publish. The owner clears
  /// and refills it at the stamp step (entries slot-ascending per lane is
  /// not required — publish sorts); the barriers order those writes before
  /// the publish that consumes them. Valid after enable_deltas().
  [[nodiscard]] std::vector<SnapshotDeltaEntry>& lane(int lane) noexcept {
    return lanes_[static_cast<std::size_t>(lane)];
  }

  /// The buffer the next publish() will ship, sized to `num_nodes` entries
  /// (recycled from the pool when possible; entries from the buffer's
  /// previous life are NOT cleared — the engine overwrites every slot).
  /// Repeated calls before publish() return the same buffer. In delta mode
  /// call only when next_is_base().
  [[nodiscard]] EpochSnapshot& staging(int num_nodes);

  /// Stamps version/t_s on the staged buffer and makes it the latest
  /// snapshot. Full mode: staging() must have been called since the last
  /// publish. Delta mode: consumes the dirty lanes into a pooled
  /// SnapshotDelta, appends it to the retained chain (pruned to reach back
  /// exactly one base), and additionally ships the staged full base when
  /// next_is_base().
  void publish(double t_s);

  // --- reader side (any thread) ---

  /// Newest published FULL snapshot (delta mode: the newest base), or
  /// nullptr before the first publish. Copies the pointer under a mutex held
  /// only for the copy — a reader never waits on a snapshot being filled,
  /// and the writer never waits on a reader's query. Poll published()
  /// (lock-free) to skip the copy when nothing new was published.
  [[nodiscard]] std::shared_ptr<const EpochSnapshot> latest() const;

  /// Number of snapshots published so far (== the latest version; in delta
  /// mode every delta publish counts).
  [[nodiscard]] std::uint64_t published() const noexcept {
    return versions_.load(std::memory_order_acquire);
  }

  /// Delta-mode reader catch-up (SnapshotView::refresh's one locked call):
  /// returns true when `deltas` (versions > have_version, ascending) alone
  /// bring a MATERIALIZED view at have_version to the latest version —
  /// `materialized` false, or a reader more than one base behind, returns
  /// false with `base` set to the newest full base and `deltas` holding the
  /// chain after it (the O(n) fallback copy).
  bool catch_up(std::uint64_t have_version, bool materialized,
                std::shared_ptr<const EpochSnapshot>& base,
                std::vector<std::shared_ptr<const SnapshotDelta>>& deltas) const;

  // --- accounting (writer thread; call between runs, not mid-publish) ---

  /// Bytes held by the staged + published + pooled FULL buffers.
  [[nodiscard]] std::uint64_t base_memory_bytes() const;
  /// Bytes held by the delta chain + pooled deltas + dirty lanes.
  [[nodiscard]] std::uint64_t delta_memory_bytes() const;
  /// Everything the publisher holds (base + delta side).
  [[nodiscard]] std::uint64_t memory_bytes() const {
    return base_memory_bytes() + delta_memory_bytes();
  }

  /// Cumulative wire bytes shipped by base publishes / delta publishes —
  /// (published_base_bytes + published_delta_bytes) / published() is the
  /// mean publish cost per epoch the churn-proportional claim is about.
  [[nodiscard]] std::uint64_t published_base_bytes() const noexcept {
    return published_base_bytes_;
  }
  [[nodiscard]] std::uint64_t published_delta_bytes() const noexcept {
    return published_delta_bytes_;
  }
  [[nodiscard]] std::uint64_t base_publishes() const noexcept {
    return base_publishes_;
  }
  /// Buffers allocated fresh because the pools had nothing to recycle — the
  /// zero-steady-state-allocation tests pin these flat.
  [[nodiscard]] std::uint64_t base_buffer_allocs() const noexcept {
    return base_allocs_;
  }
  [[nodiscard]] std::uint64_t delta_buffer_allocs() const noexcept {
    return delta_allocs_;
  }

 private:
  /// Retired-buffer pools, shared with every outstanding object's deleter
  /// so recycling works (and is safe) no matter who drops the last
  /// reference, even after the publisher itself is gone.
  struct BufferPool {
    std::mutex mu;
    std::vector<std::unique_ptr<EpochSnapshot>> free;
  };
  struct DeltaPool {
    std::mutex mu;
    std::vector<std::unique_ptr<SnapshotDelta>> free;
    /// Pruning a base boundary retires up to base_interval deltas at once;
    /// the cap absorbs that burst so steady state never allocates.
    std::size_t max_pooled = 8;
  };

  [[nodiscard]] std::shared_ptr<const SnapshotDelta> build_delta(
      std::uint64_t version, double t_s);

  std::shared_ptr<BufferPool> pool_;
  std::shared_ptr<DeltaPool> delta_pool_;
  std::unique_ptr<EpochSnapshot> staging_;
  std::vector<std::vector<SnapshotDeltaEntry>> lanes_;
  mutable std::mutex latest_mu_;                 // guards latest_ AND chain_
  std::shared_ptr<const EpochSnapshot> latest_;  // the hand-off slot
  /// Deltas since the PREVIOUS base, ascending versions — exactly what a
  /// reader at most one base behind needs.
  std::vector<std::shared_ptr<const SnapshotDelta>> chain_;
  std::atomic<std::uint64_t> versions_{0};

  int base_interval_ = 0;  // 0 = full mode
  bool force_base_ = false;
  std::uint64_t publish_seq_ = 0;        // publishes so far (delta mode)
  std::uint64_t last_base_version_ = 0;  // newest base's version
  std::uint64_t prev_base_version_ = 0;  // the base before it (prune floor)

  std::uint64_t published_base_bytes_ = 0;
  std::uint64_t published_delta_bytes_ = 0;
  std::uint64_t base_publishes_ = 0;
  std::uint64_t base_allocs_ = 0;
  std::uint64_t delta_allocs_ = 0;
};

/// A reader's reconstruction of the latest published view (delta mode's
/// read path; transparent pointer pass-through in full mode). refresh()
/// applies every delta published since the last call onto a reader-local
/// materialized copy — O(changed slots) per call, one pointer-sized locked
/// section, never blocking the engine — falling back to one O(n) base copy
/// when the reader is more than one base behind (or brand new). NOT
/// internally synchronized: one view per reader thread, matching
/// CoordinateService's thread contract.
class SnapshotView {
 public:
  SnapshotView() = default;
  explicit SnapshotView(const SnapshotPublisher* source) : source_(source) {}

  /// The newest reconstructable view, or nullptr before the first publish.
  /// The pointer (and the nodes behind it) stays valid until the next
  /// refresh() on this view.
  const EpochSnapshot* refresh();

  /// Version of the view refresh() last returned (0 before any).
  [[nodiscard]] std::uint64_t version() const noexcept {
    return materialized_ ? local_.version : (full_ ? full_->version : 0);
  }
  /// Refreshes that caught up by applying deltas only.
  [[nodiscard]] std::uint64_t delta_refreshes() const noexcept {
    return delta_refreshes_;
  }
  /// Refreshes that had to copy a full base (fresh view, or > 1 base behind).
  [[nodiscard]] std::uint64_t full_rebuilds() const noexcept {
    return full_rebuilds_;
  }

 private:
  const SnapshotPublisher* source_ = nullptr;
  std::shared_ptr<const EpochSnapshot> full_;  // full-mode pass-through
  EpochSnapshot local_;                        // delta-mode materialized copy
  bool materialized_ = false;
  std::vector<std::shared_ptr<const SnapshotDelta>> scratch_;
  std::uint64_t delta_refreshes_ = 0;
  std::uint64_t full_rebuilds_ = 0;
};

}  // namespace nc::est

// Epoch snapshots: the engine's coordinate state made concurrently readable.
//
// The sharded kernel's shared-state discipline is owner-only writes with
// barrier-separated reads — correct inside the run, but it means nothing
// outside the worker threads may look at a coordinate while the simulation
// is advancing. The serving layer (src/serve/) needs exactly that: a query
// front end answering nearest-k/distance requests from LIVE engine state
// under a heavy open-loop client workload.
//
// The seam is publish-on-barrier: at epoch boundaries the engine stamps
// every node's application coordinate, error/confidence estimate and
// availability bit into an immutable EpochSnapshot and hands it to a
// SnapshotPublisher. Readers copy the latest snapshot pointer and then
// compute against a frozen, consistent view — no waiting on the shard
// workers, no torn coordinates, no tearing between a node's position and
// its confidence.
//
// The hand-off slot is a shared_ptr guarded by a mutex held only for the
// pointer copy itself (both sides' critical sections are pointer-sized; the
// O(n) snapshot fill happens strictly outside it), plus a lock-free
// published() version counter readers can poll without touching the slot.
// Deliberately NOT std::atomic<std::shared_ptr>: libstdc++'s _Sp_atomic
// releases its reader-side spin bit with a relaxed fetch_sub, so the
// embedded _M_ptr hand-off has no release/acquire edge back to the writer —
// a formal data race that ThreadSanitizer reports (GCC 12/13), and its spin
// bit serializes readers against each other anyway, so the plain mutex is
// not even a concession.
//
// Reader/writer contract:
//  * WRITER (one thread at a time; in the engine: shard 0 between the
//    epoch barriers): staging(n) -> fill nodes -> publish(t). Shard workers
//    may fill DISJOINT slices of the staging buffer in their processing
//    phase; the engine's barriers order those writes before shard 0's
//    publish.
//  * READERS (any thread, any time): latest() returns the newest published
//    snapshot or nullptr before the first publish. The snapshot is
//    immutable and kept alive by the shared_ptr for as long as the reader
//    holds it — a reader mid-query never blocks the engine and never sees a
//    later epoch overwrite its view.
//  * Versions are dense (1, 2, 3, ...) and strictly increasing; a reader
//    polling latest() observes a non-decreasing version sequence.
//
// Buffer lifecycle: retired snapshot buffers are recycled through a small
// mutex-protected pool instead of freed — the pool is referenced by every
// outstanding snapshot's deleter (shared_ptr<BufferPool>), so the handoff
// is data-race-free under TSan and buffers outlive the publisher if a
// reader keeps one past engine teardown. Steady state allocates nothing:
// with R concurrent readers at most R + 2 buffers circulate.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/coordinate.hpp"
#include "core/node_id.hpp"

namespace nc::est {

/// One node's published state at an epoch boundary.
struct SnapshotNode {
  Coordinate app;           // stable application coordinate (paper Sec. V)
  double error = 0.0;       // the node's own relative-error estimate
  double confidence = 0.0;  // 1 - error, clamped to [0, 1] by NCClient
  std::uint8_t up = 1;      // availability bit at the boundary
  /// A node is queryable once its coordinate left the origin-less initial
  /// state (dim 0 = "never updated").
  [[nodiscard]] bool placed() const noexcept { return app.initialized(); }
};

/// An immutable epoch-boundary view of the whole deployment. `version` is
/// dense and strictly increasing per publisher; `t_s` is the simulation
/// time of the boundary the snapshot was taken at.
struct EpochSnapshot {
  std::uint64_t version = 0;
  double t_s = 0.0;
  std::vector<SnapshotNode> nodes;

  [[nodiscard]] int num_nodes() const noexcept {
    return static_cast<int>(nodes.size());
  }
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return sizeof(EpochSnapshot) + nodes.capacity() * sizeof(SnapshotNode);
  }
};

/// Single-writer / many-reader snapshot hand-off point (contract above).
class SnapshotPublisher {
 public:
  SnapshotPublisher();
  SnapshotPublisher(const SnapshotPublisher&) = delete;
  SnapshotPublisher& operator=(const SnapshotPublisher&) = delete;

  // --- writer side (one thread at a time) ---

  /// The buffer the next publish() will ship, sized to `num_nodes` entries
  /// (recycled from the pool when possible; entries from the buffer's
  /// previous life are NOT cleared — the engine overwrites every slot).
  /// Repeated calls before publish() return the same buffer.
  [[nodiscard]] EpochSnapshot& staging(int num_nodes);

  /// Stamps version/t_s on the staged buffer and makes it the latest
  /// snapshot. staging() must have been called since the last publish.
  void publish(double t_s);

  // --- reader side (any thread) ---

  /// Newest published snapshot, or nullptr before the first publish. Copies
  /// the pointer under a mutex held only for the copy — a reader never waits
  /// on a snapshot being filled, and the writer never waits on a reader's
  /// query. Poll published() (lock-free) to skip the copy when nothing new
  /// was published.
  [[nodiscard]] std::shared_ptr<const EpochSnapshot> latest() const;

  /// Number of snapshots published so far (== the latest version).
  [[nodiscard]] std::uint64_t published() const noexcept {
    return versions_.load(std::memory_order_acquire);
  }

  /// Bytes held by the staged + published + pooled buffers. Writer-thread
  /// accounting (call between runs, not concurrently with publish).
  [[nodiscard]] std::uint64_t memory_bytes() const;

 private:
  /// Retired-buffer pool, shared with every outstanding snapshot's deleter
  /// so recycling works (and is safe) no matter who drops the last
  /// reference, even after the publisher itself is gone.
  struct BufferPool {
    std::mutex mu;
    std::vector<std::unique_ptr<EpochSnapshot>> free;
  };

  std::shared_ptr<BufferPool> pool_;
  std::unique_ptr<EpochSnapshot> staging_;
  mutable std::mutex latest_mu_;                  // guards latest_ only
  std::shared_ptr<const EpochSnapshot> latest_;   // the hand-off slot
  std::atomic<std::uint64_t> versions_{0};
};

}  // namespace nc::est

#include "estimate/idms_estimator.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace nc::est {

IDMSEstimator::IDMSEstimator(const IDMSEstimatorConfig& config, int num_nodes,
                             NodeId first_owned, int owned_count)
    : config_(config),
      num_nodes_(num_nodes),
      first_owned_(first_owned),
      cells_(static_cast<std::size_t>(owned_count) *
                 static_cast<std::size_t>(num_nodes),
             config.eager_slot_limit),
      fallback_(CoordinateEstimatorConfig{config.max_age_s}, num_nodes) {
  NC_CHECK_MSG(num_nodes >= 0 && owned_count >= 0 && first_owned >= 0,
               "negative matrix extent");
  NC_CHECK_MSG(first_owned + owned_count <= num_nodes,
               "owned slice exceeds the node id space");
  NC_CHECK_MSG(config.max_age_s > 0.0, "staleness horizon must be positive");
  NC_CHECK_MSG(config.alpha > 0.0 && config.alpha <= 1.0,
               "EWMA weight must be in (0, 1]");
}

void IDMSEstimator::on_observation(const LatencyObservation& obs) {
  ++observations_;
  last_now_s_ = obs.t_s;
  traffic_bytes_ += kMatrixReportBytes;
  fallback_.on_observation(obs);

  NC_ASSERT(obs.src >= first_owned_);
  Cell& cell = cells_.at(cell_index(obs.src, obs.dst));
  if (cell.updated_s < 0.0) {
    filled_.push_back(cell_index(obs.src, obs.dst));
    cell.rtt_ms = obs.raw_rtt_ms;
  } else {
    cell.rtt_ms =
        config_.alpha * obs.raw_rtt_ms + (1.0 - config_.alpha) * cell.rtt_ms;
  }
  cell.updated_s = obs.t_s;
}

std::optional<double> IDMSEstimator::estimate_rtt(NodeId a, NodeId b,
                                                  double now_s) {
  ++queries_;
  last_now_s_ = std::max(last_now_s_, now_s);
  NC_ASSERT(a >= first_owned_);
  // try_at keeps never-measured pairs from materializing matrix pages.
  const Cell* cell = cells_.try_at(cell_index(a, b));
  if (cell != nullptr && cell->updated_s >= 0.0 &&
      now_s - cell->updated_s <= config_.max_age_s) {
    ++direct_hits_;
    return cell->rtt_ms;
  }
  if (const auto est = fallback_.estimate_rtt(a, b, now_s)) {
    ++fallback_hits_;
    return est;
  }
  ++misses_;
  return std::nullopt;
}

EstimatorNodeState IDMSEstimator::extract_node_state(NodeId node) {
  NC_ASSERT(node >= first_owned_ &&
            cell_index(node, 0) + static_cast<std::size_t>(num_nodes_) <=
                cells_.size());
  const std::size_t row_begin = cell_index(node, 0);
  const std::size_t row_end = row_begin + static_cast<std::size_t>(num_nodes_);

  EstimatorNodeState state;
  // Swap-remove the row's filled indices; filled_ is only ever scanned as a
  // set (stats' staleness pass), so its order never reaches results.
  for (std::size_t i = 0; i < filled_.size();) {
    const std::size_t idx = filled_[i];
    if (idx < row_begin || idx >= row_end) {
      ++i;
      continue;
    }
    Cell* cell = cells_.try_at(idx);
    NC_ASSERT(cell != nullptr && cell->updated_s >= 0.0);
    state.cells.push_back({static_cast<NodeId>(idx - row_begin), cell->rtt_ms,
                           cell->updated_s});
    *cell = Cell{};
    filled_[i] = filled_.back();
    filled_.pop_back();
  }
  std::sort(state.cells.begin(), state.cells.end(),
            [](const EstimatorNodeState::MatrixCell& a,
               const EstimatorNodeState::MatrixCell& b) { return a.dst < b.dst; });
  return state;
}

void IDMSEstimator::install_node_state(NodeId node,
                                       const EstimatorNodeState& state) {
  for (const EstimatorNodeState::MatrixCell& c : state.cells) {
    const std::size_t idx = cell_index(node, c.dst);
    Cell& cell = cells_.at(idx);
    NC_ASSERT(cell.updated_s < 0.0);
    cell.rtt_ms = c.rtt_ms;
    cell.updated_s = c.updated_s;
    filled_.push_back(idx);
  }
}

EstimatorStats IDMSEstimator::stats() const {
  EstimatorStats s;
  s.observations = observations_;
  s.queries = queries_;
  s.direct_hits = direct_hits_;
  s.fallback_hits = fallback_hits_;
  s.misses = misses_;
  s.entries = filled_.size();
  for (const std::size_t idx : filled_) {
    const Cell* cell = cells_.try_at(idx);
    NC_ASSERT(cell != nullptr && cell->updated_s >= 0.0);
    if (last_now_s_ - cell->updated_s > config_.max_age_s) ++s.stale_entries;
  }
  const EstimatorStats fb = fallback_.stats();
  // sizeof(*this) already covers the embedded fallback's own footprint.
  s.memory_bytes = sizeof(*this) + cells_.memory_bytes() +
                   filled_.capacity() * sizeof(std::size_t) +
                   (fb.memory_bytes - sizeof(fallback_));
  s.traffic_bytes = traffic_bytes_ + fb.traffic_bytes;
  return s;
}

}  // namespace nc::est

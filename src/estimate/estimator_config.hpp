// Backend selection: the one spec every layer plumbs through.
//
// ScenarioSpec, the engine configs and the --backend= flag all carry an
// EstimatorSpec; make_estimator() is the single construction point the
// sharded engine calls per shard. Keeping the enum + factory here (not in
// eval's registry) lets sim depend on estimate without a cycle — eval's
// registry layers named PRESETS (idms-volatile etc.) on top of this spec.
#pragma once

#include <memory>
#include <string>

#include "common/paged_store.hpp"
#include "core/node_id.hpp"
#include "estimate/latency_estimator.hpp"

namespace nc::est {

class SnapshotPublisher;

enum class EstimatorBackend {
  kCoordinates,  // the paper's NC path (default; bit-identical to pre-seam)
  kIdms,         // measured delay matrix with coordinate fallback
  kSnapshot,     // published epoch snapshots with coordinate fallback
};

struct EstimatorSpec {
  EstimatorBackend backend = EstimatorBackend::kCoordinates;
  /// Staleness horizon for every backend's entry-age model.
  double max_age_s = 600.0;
  /// IDMS only: EWMA weight of the newest sample.
  double idms_alpha = 0.3;
  /// IDMS only: paged-store threshold for the delay matrix.
  std::size_t idms_eager_slot_limit = kPagedStoreDefaultEagerSlotLimit;
  /// Snapshot backend only: where estimates are read from (non-owning; must
  /// outlive the estimator). Leave null to have the engine wire its own
  /// publisher — the sharded engine fills this in and turns snapshot
  /// publication on when it sees backend == kSnapshot. External consumers
  /// (serve::CoordinateService, tools querying a finished run) point it at
  /// the engine's snapshot_publisher().
  const SnapshotPublisher* snapshot_source = nullptr;
};

/// Canonical flag/report spelling of a backend.
[[nodiscard]] const char* backend_name(EstimatorBackend backend) noexcept;

/// Parses a --backend= value; nullopt for unknown spellings.
[[nodiscard]] std::optional<EstimatorBackend> backend_from_string(
    const std::string& name) noexcept;

/// Builds the backend instance owning nodes [first_owned, first_owned +
/// owned_count) of a num_nodes deployment (a shard slice, or 0/num_nodes
/// for a whole-run instance).
[[nodiscard]] std::unique_ptr<LatencyEstimator> make_estimator(
    const EstimatorSpec& spec, int num_nodes, NodeId first_owned,
    int owned_count);

}  // namespace nc::est

// Cache of remote application coordinates with staleness tracking and
// nearest-neighbor queries.
//
// Applications using network coordinates (replica selection, operator
// placement, the distributed approximate k-NN problem the paper cites)
// accumulate peers' application coordinates from protocol traffic and query
// them later. Because application coordinates change rarely by design, a
// cached entry stays useful for a long time; max_age_s bounds how stale an
// entry may be before queries ignore it.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/coordinate.hpp"
#include "core/node_id.hpp"

namespace nc {

class CoordinateMap {
 public:
  struct Neighbor {
    NodeId id = kInvalidNode;
    double distance_ms = 0.0;  // predicted RTT to the query coordinate
  };

  /// Inserts or refreshes a peer's coordinate.
  void update(NodeId id, const Coordinate& coordinate, double now_s);

  /// Removes a peer (e.g. on failure detection). No-op if absent.
  void remove(NodeId id);

  /// The peer's coordinate if present and no older than max_age_s.
  [[nodiscard]] std::optional<Coordinate> get(NodeId id, double now_s,
                                              double max_age_s = kNoMaxAge) const;

  /// Predicted RTT between two cached peers; nullopt if either is missing
  /// or stale.
  [[nodiscard]] std::optional<double> estimate_rtt(NodeId a, NodeId b, double now_s,
                                                   double max_age_s = kNoMaxAge) const;

  /// The k cached peers nearest to `query` (ascending distance), skipping
  /// entries older than max_age_s and the optional `exclude` id.
  [[nodiscard]] std::vector<Neighbor> nearest(const Coordinate& query, int k,
                                              double now_s,
                                              double max_age_s = kNoMaxAge,
                                              NodeId exclude = kInvalidNode) const;

  /// Drops every entry last updated before `cutoff_s`; returns drop count.
  std::size_t expire_older_than(double cutoff_s);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  static constexpr double kNoMaxAge = 1e300;

 private:
  struct Entry {
    Coordinate coordinate;
    double updated_s = 0.0;
  };
  std::unordered_map<NodeId, Entry> entries_;
};

}  // namespace nc

#include "core/filters/ewma_filter.hpp"

#include "common/check.hpp"

namespace nc {

EwmaFilter::EwmaFilter(double alpha) : alpha_(alpha) {
  NC_CHECK_MSG(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
}

std::optional<double> EwmaFilter::update(double raw_ms) {
  if (!primed_) {
    value_ = raw_ms;
    primed_ = true;
  } else {
    value_ = alpha_ * raw_ms + (1.0 - alpha_) * value_;
  }
  return value_;
}

std::optional<double> EwmaFilter::estimate() const {
  if (!primed_) return std::nullopt;
  return value_;
}

void EwmaFilter::reset() {
  primed_ = false;
  value_ = 0.0;
}

std::unique_ptr<LatencyFilter> EwmaFilter::clone() const {
  return std::make_unique<EwmaFilter>(alpha_);
}

}  // namespace nc

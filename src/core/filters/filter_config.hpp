// Value-type filter configuration and factory.
//
// Experiment configs carry a FilterConfig; every per-link filter instance is
// stamped out with make(). Defaults are the paper's recommended MP(4, 25).
#pragma once

#include <memory>
#include <string>

#include "core/filter.hpp"

namespace nc {

enum class FilterKind {
  kIdentity,          // "No Filter"
  kMovingPercentile,  // the paper's MP filter
  kEwma,
  kThreshold,
};

struct FilterConfig {
  FilterKind kind = FilterKind::kMovingPercentile;

  // Moving percentile parameters.
  int mp_history = 4;
  double mp_percentile = 25.0;
  int mp_min_samples = 1;

  // EWMA parameter.
  double ewma_alpha = 0.10;

  // Threshold parameter.
  double threshold_ms = 1000.0;

  [[nodiscard]] std::unique_ptr<LatencyFilter> make() const;
  [[nodiscard]] std::string name() const;

  [[nodiscard]] static FilterConfig none();
  [[nodiscard]] static FilterConfig moving_percentile(int history, double percentile,
                                                      int min_samples = 1);
  [[nodiscard]] static FilterConfig ewma(double alpha);
  [[nodiscard]] static FilterConfig threshold(double cutoff_ms);
};

}  // namespace nc

// Exponentially-weighted moving average filter (paper Sec. IV-B, Table I).
//
// The conventional smoothing baseline:  v <- alpha*s + (1-alpha)*v.
// The paper shows it performs WORSE than no filter on latency streams: the
// heavy-tail outliers are not a trend to be tracked but impulses to discard,
// and every outlier pollutes the average for ~1/alpha subsequent samples.
// Kept as a faithful baseline for Table I.
#pragma once

#include "core/filter.hpp"

namespace nc {

class EwmaFilter final : public LatencyFilter {
 public:
  /// alpha in (0, 1]: weight of the newest observation.
  explicit EwmaFilter(double alpha);

  std::optional<double> update(double raw_ms) override;
  [[nodiscard]] std::optional<double> estimate() const override;
  void reset() override;
  [[nodiscard]] std::unique_ptr<LatencyFilter> clone() const override;
  [[nodiscard]] std::size_t memory_bytes() const noexcept override {
    return sizeof(*this);
  }

  [[nodiscard]] double alpha() const noexcept { return alpha_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool primed_ = false;
};

}  // namespace nc

#include "core/filters/mp_filter.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "stats/percentile.hpp"

namespace nc {

MovingPercentileFilter::MovingPercentileFilter(int history, double percentile,
                                               int min_samples)
    : history_(history), percentile_(percentile), min_samples_(min_samples) {
  NC_CHECK_MSG(history >= 1, "history must be >= 1");
  NC_CHECK_MSG(percentile >= 0.0 && percentile <= 100.0, "percentile out of range");
  NC_CHECK_MSG(min_samples >= 1 && min_samples <= history,
               "min_samples must be in [1, history]");
  window_.reserve(static_cast<std::size_t>(history));
  sorted_.reserve(static_cast<std::size_t>(history));
}

std::optional<double> MovingPercentileFilter::update(double raw_ms) {
  if (static_cast<int>(window_.size()) < history_) {
    window_.push_back(raw_ms);
  } else {
    // Evict the oldest sample from the sorted view, then overwrite it.
    const double evicted = window_[head_];
    const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), evicted);
    NC_ASSERT(it != sorted_.end());
    sorted_.erase(it);
    window_[head_] = raw_ms;
    head_ = (head_ + 1) % window_.size();
  }
  sorted_.insert(std::upper_bound(sorted_.begin(), sorted_.end(), raw_ms), raw_ms);
  return estimate();
}

std::optional<double> MovingPercentileFilter::estimate() const {
  if (static_cast<int>(sorted_.size()) < min_samples_) return std::nullopt;
  return stats::percentile_nearest_rank_sorted(sorted_, percentile_);
}

void MovingPercentileFilter::reset() {
  window_.clear();
  sorted_.clear();
  head_ = 0;
}

std::unique_ptr<LatencyFilter> MovingPercentileFilter::clone() const {
  return std::make_unique<MovingPercentileFilter>(history_, percentile_, min_samples_);
}

}  // namespace nc

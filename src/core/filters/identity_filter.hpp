// Pass-through filter: raw samples go straight to Vivaldi ("No Filter" in
// the paper's comparisons).
#pragma once

#include "core/filter.hpp"

namespace nc {

class IdentityFilter final : public LatencyFilter {
 public:
  std::optional<double> update(double raw_ms) override {
    last_ = raw_ms;
    primed_ = true;
    return raw_ms;
  }

  [[nodiscard]] std::optional<double> estimate() const override {
    if (!primed_) return std::nullopt;
    return last_;
  }

  void reset() override {
    primed_ = false;
    last_ = 0.0;
  }

  [[nodiscard]] std::unique_ptr<LatencyFilter> clone() const override {
    return std::make_unique<IdentityFilter>();
  }

  [[nodiscard]] std::size_t memory_bytes() const noexcept override {
    return sizeof(*this);
  }

 private:
  double last_ = 0.0;
  bool primed_ = false;
};

}  // namespace nc

// Fixed-cutoff filter (paper Sec. IV-B, "Thresholds").
//
// Drops any sample above a global cutoff. Stateless and simple, but a single
// cutoff cannot fit every link: a value that trims the global tail does
// nothing for a 30 ms link whose own outliers sit at 300 ms. Kept as the
// baseline the paper rejects.
#pragma once

#include "core/filter.hpp"

namespace nc {

class ThresholdFilter final : public LatencyFilter {
 public:
  /// Samples strictly above cutoff_ms are rejected (update returns nullopt).
  explicit ThresholdFilter(double cutoff_ms);

  std::optional<double> update(double raw_ms) override;
  [[nodiscard]] std::optional<double> estimate() const override;
  void reset() override;
  [[nodiscard]] std::unique_ptr<LatencyFilter> clone() const override;
  [[nodiscard]] std::size_t memory_bytes() const noexcept override {
    return sizeof(*this);
  }

  [[nodiscard]] double cutoff_ms() const noexcept { return cutoff_ms_; }

 private:
  double cutoff_ms_;
  double last_accepted_ = 0.0;
  bool primed_ = false;
};

}  // namespace nc

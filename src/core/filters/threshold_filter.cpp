#include "core/filters/threshold_filter.hpp"

#include "common/check.hpp"

namespace nc {

ThresholdFilter::ThresholdFilter(double cutoff_ms) : cutoff_ms_(cutoff_ms) {
  NC_CHECK_MSG(cutoff_ms > 0.0, "cutoff must be positive");
}

std::optional<double> ThresholdFilter::update(double raw_ms) {
  if (raw_ms > cutoff_ms_) return std::nullopt;
  last_accepted_ = raw_ms;
  primed_ = true;
  return raw_ms;
}

std::optional<double> ThresholdFilter::estimate() const {
  if (!primed_) return std::nullopt;
  return last_accepted_;
}

void ThresholdFilter::reset() {
  primed_ = false;
  last_accepted_ = 0.0;
}

std::unique_ptr<LatencyFilter> ThresholdFilter::clone() const {
  return std::make_unique<ThresholdFilter>(cutoff_ms_);
}

}  // namespace nc

// Moving-Percentile filter (paper Sec. IV).
//
// Keeps the last `history` raw observations per link and outputs their p-th
// percentile (nearest-rank). With the paper's best parameters — history 4,
// p = 25 — the output is the minimum of the last four samples: a non-linear
// low-pass filter that discards heavy-tail impulses while tracking genuine
// shifts in the underlying latency within `history` observations.
//
// `min_samples` withholds output until that many samples have been seen,
// fixing the first-sample pathology of Sec. VI (an extreme outlier arriving
// first on a link otherwise passes straight through the filter).
#pragma once

#include <vector>

#include "core/filter.hpp"

namespace nc {

class MovingPercentileFilter final : public LatencyFilter {
 public:
  /// history >= 1; percentile in [0,100]; 1 <= min_samples <= history.
  MovingPercentileFilter(int history, double percentile, int min_samples = 1);

  std::optional<double> update(double raw_ms) override;
  [[nodiscard]] std::optional<double> estimate() const override;
  void reset() override;
  [[nodiscard]] std::unique_ptr<LatencyFilter> clone() const override;
  [[nodiscard]] std::size_t memory_bytes() const noexcept override {
    return sizeof(*this) +
           (window_.capacity() + sorted_.capacity()) * sizeof(double);
  }

  [[nodiscard]] int history() const noexcept { return history_; }
  [[nodiscard]] double percentile() const noexcept { return percentile_; }
  [[nodiscard]] int min_samples() const noexcept { return min_samples_; }
  [[nodiscard]] int size() const noexcept { return static_cast<int>(window_.size()); }

 private:
  int history_;
  double percentile_;
  int min_samples_;
  std::vector<double> window_;  // chronological ring (oldest at head_)
  std::size_t head_ = 0;        // index of the oldest element once full
  std::vector<double> sorted_;  // same elements, ascending
};

}  // namespace nc

#include "core/filters/filter_config.hpp"

#include <cstdio>

#include "common/check.hpp"
#include "core/filters/ewma_filter.hpp"
#include "core/filters/identity_filter.hpp"
#include "core/filters/mp_filter.hpp"
#include "core/filters/threshold_filter.hpp"

namespace nc {

std::unique_ptr<LatencyFilter> FilterConfig::make() const {
  switch (kind) {
    case FilterKind::kIdentity:
      return std::make_unique<IdentityFilter>();
    case FilterKind::kMovingPercentile:
      return std::make_unique<MovingPercentileFilter>(mp_history, mp_percentile,
                                                      mp_min_samples);
    case FilterKind::kEwma:
      return std::make_unique<EwmaFilter>(ewma_alpha);
    case FilterKind::kThreshold:
      return std::make_unique<ThresholdFilter>(threshold_ms);
  }
  NC_CHECK_MSG(false, "unknown filter kind");
  return nullptr;
}

std::string FilterConfig::name() const {
  char buf[64];
  switch (kind) {
    case FilterKind::kIdentity:
      return "none";
    case FilterKind::kMovingPercentile:
      std::snprintf(buf, sizeof buf, "mp(h=%d,p=%g)", mp_history, mp_percentile);
      return buf;
    case FilterKind::kEwma:
      std::snprintf(buf, sizeof buf, "ewma(a=%g)", ewma_alpha);
      return buf;
    case FilterKind::kThreshold:
      std::snprintf(buf, sizeof buf, "threshold(%gms)", threshold_ms);
      return buf;
  }
  return "unknown";
}

FilterConfig FilterConfig::none() {
  FilterConfig c;
  c.kind = FilterKind::kIdentity;
  return c;
}

FilterConfig FilterConfig::moving_percentile(int history, double percentile,
                                             int min_samples) {
  FilterConfig c;
  c.kind = FilterKind::kMovingPercentile;
  c.mp_history = history;
  c.mp_percentile = percentile;
  c.mp_min_samples = min_samples;
  return c;
}

FilterConfig FilterConfig::ewma(double alpha) {
  FilterConfig c;
  c.kind = FilterKind::kEwma;
  c.ewma_alpha = alpha;
  return c;
}

FilterConfig FilterConfig::threshold(double cutoff_ms) {
  FilterConfig c;
  c.kind = FilterKind::kThreshold;
  c.threshold_ms = cutoff_ms;
  return c;
}

}  // namespace nc

// Node identity used across the coordinate subsystem and simulators.
#pragma once

#include <cstdint>

namespace nc {

using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// Owner shard of a node under the engines' block partition: contiguous id
/// ranges, shard s owning ids with id * shards / num_nodes == s (clamped).
/// The ONE partition function — ShardedEngine routes with it and
/// lat::partition_trace splits trace files with it, so a pre-partitioned
/// replay provably agrees with the engine's routing.
[[nodiscard]] constexpr int shard_of_node(NodeId id, int num_nodes,
                                          int shards) noexcept {
  const auto n = static_cast<std::int64_t>(num_nodes);
  const auto w = static_cast<std::int64_t>(shards);
  const std::int64_t s = static_cast<std::int64_t>(id) * w / (n > 0 ? n : 1);
  return static_cast<int>(s < w - 1 ? s : w - 1);
}

}  // namespace nc

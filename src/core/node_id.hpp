// Node identity used across the coordinate subsystem and simulators.
#pragma once

#include <cstdint>

namespace nc {

using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

}  // namespace nc

#include "core/coordinate_map.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace nc {

void CoordinateMap::update(NodeId id, const Coordinate& coordinate, double now_s) {
  NC_CHECK_MSG(id != kInvalidNode, "invalid node id");
  NC_CHECK_MSG(coordinate.initialized(), "cannot cache an empty coordinate");
  entries_[id] = Entry{coordinate, now_s};
}

void CoordinateMap::remove(NodeId id) { entries_.erase(id); }

std::optional<Coordinate> CoordinateMap::get(NodeId id, double now_s,
                                             double max_age_s) const {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  if (now_s - it->second.updated_s > max_age_s) return std::nullopt;
  return it->second.coordinate;
}

std::optional<double> CoordinateMap::estimate_rtt(NodeId a, NodeId b, double now_s,
                                                  double max_age_s) const {
  const auto ca = get(a, now_s, max_age_s);
  const auto cb = get(b, now_s, max_age_s);
  if (!ca.has_value() || !cb.has_value()) return std::nullopt;
  return ca->distance_to(*cb);
}

std::vector<CoordinateMap::Neighbor> CoordinateMap::nearest(const Coordinate& query,
                                                            int k, double now_s,
                                                            double max_age_s,
                                                            NodeId exclude) const {
  NC_CHECK_MSG(k >= 1, "k must be >= 1");
  std::vector<Neighbor> all;
  all.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    if (id == exclude) continue;
    if (now_s - entry.updated_s > max_age_s) continue;
    all.push_back(Neighbor{id, query.distance_to(entry.coordinate)});
  }
  const auto count = std::min<std::size_t>(static_cast<std::size_t>(k), all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(count),
                    all.end(), [](const Neighbor& a, const Neighbor& b) {
                      if (a.distance_ms != b.distance_ms)
                        return a.distance_ms < b.distance_ms;
                      return a.id < b.id;  // deterministic tie-break
                    });
  all.resize(count);
  return all;
}

std::size_t CoordinateMap::expire_older_than(double cutoff_s) {
  std::size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.updated_s < cutoff_s) {
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

}  // namespace nc

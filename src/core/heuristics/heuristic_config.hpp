// Value-type heuristic configuration and factory.
#pragma once

#include <memory>
#include <string>

#include "core/heuristics/update_heuristic.hpp"

namespace nc {

enum class HeuristicKind {
  kAlways,              // publish every system update ("Raw")
  kSystem,              // SYSTEM threshold
  kApplication,         // APPLICATION threshold
  kApplicationCentroid, // APPLICATION trigger, centroid publish
  kRelative,            // windowed, nearest-neighbor-relative centroids
  kEnergy,              // windowed, energy-distance statistic
  kRankSum,             // windowed, 1-D rank-sum baseline (extension)
};

struct HeuristicConfig {
  HeuristicKind kind = HeuristicKind::kEnergy;
  /// tau (ms) for SYSTEM/APPLICATION/APPLICATION_CENTROID, the energy
  /// statistic threshold for ENERGY, or eps_r for RELATIVE.
  double threshold = 8.0;
  /// Window size k for the windowed and centroid heuristics.
  int window = 32;

  [[nodiscard]] std::unique_ptr<UpdateHeuristic> make() const;
  [[nodiscard]] std::string name() const;

  [[nodiscard]] static HeuristicConfig always();
  [[nodiscard]] static HeuristicConfig system(double tau_ms);
  [[nodiscard]] static HeuristicConfig application(double tau_ms);
  [[nodiscard]] static HeuristicConfig application_centroid(double tau_ms, int window);
  [[nodiscard]] static HeuristicConfig relative(double eps_r, int window);
  [[nodiscard]] static HeuristicConfig energy(double tau, int window);
  [[nodiscard]] static HeuristicConfig rank_sum(double alpha, int window);
};

}  // namespace nc

// Window-based change-detection heuristics: RELATIVE and ENERGY
// (paper Secs. V-A, V-B, V-D).
//
// Both adapt the two-window stream change-detection scheme of Kifer,
// Ben-David & Gehrke: the stream of system coordinates is split into a
// "start" window W_s (frozen once it reaches k elements) and a "current"
// window W_c (sliding, also k elements). After every slide the two windows
// are compared; when they are declared different, a change point has
// occurred: the application coordinate is set to the CENTROID of W_c and
// both windows restart empty.
//
//  * RELATIVE compares the centroid displacement against the distance to the
//    node's nearest known neighbor:
//        ||C(W_s) - C(W_c)|| / ||C(W_s) - r|| > eps_r
//  * ENERGY applies the Szekely-Rizzo energy-distance statistic:
//        e(W_s, W_c) > tau
//    (maintained incrementally in O(k) per observation; see stats/energy.hpp)
#pragma once

#include <deque>
#include <vector>

#include "common/vec.hpp"
#include "core/heuristics/update_heuristic.hpp"
#include "stats/energy.hpp"

namespace nc {

/// Shared two-window bookkeeping. Derived classes implement the difference
/// test and may hook window transitions to maintain incremental state.
class WindowedHeuristic : public UpdateHeuristic {
 public:
  bool on_system_update(const UpdateContext& ctx, Coordinate& app) final;
  void reset() final;

  [[nodiscard]] int window() const noexcept { return window_; }
  /// True once W_s is frozen and W_c slides (tests are being run).
  [[nodiscard]] bool armed() const noexcept {
    return static_cast<int>(start_.size()) == window_;
  }
  /// Number of change points declared so far.
  [[nodiscard]] std::uint64_t change_points() const noexcept { return change_points_; }

 protected:
  explicit WindowedHeuristic(int window);

  [[nodiscard]] const std::vector<Vec>& start_window() const noexcept { return start_; }
  [[nodiscard]] const std::deque<Vec>& current_window() const noexcept { return current_; }
  [[nodiscard]] Vec current_centroid() const;

  /// The difference test, run after every slide while armed.
  [[nodiscard]] virtual bool windows_differ(const UpdateContext& ctx) = 0;

  // Incremental-state hooks.
  virtual void on_current_push(const Vec& v) = 0;
  virtual void on_current_pop(const Vec& v) = 0;
  virtual void on_start_frozen() = 0;
  virtual void on_cleared() = 0;

 private:
  int window_;
  std::vector<Vec> start_;
  std::deque<Vec> current_;
  Vec current_sum_;
  std::uint64_t change_points_ = 0;
};

class RelativeHeuristic final : public WindowedHeuristic {
 public:
  /// eps_r: relative movement threshold (paper sweeps 0.1-0.9; knee at 0.3).
  RelativeHeuristic(double eps_r, int window);
  [[nodiscard]] std::unique_ptr<UpdateHeuristic> clone() const override;

 private:
  bool windows_differ(const UpdateContext& ctx) override;
  void on_current_push(const Vec&) override {}
  void on_current_pop(const Vec&) override {}
  void on_start_frozen() override;
  void on_cleared() override;

  double eps_r_;
  Vec start_centroid_;  // cached C(W_s); valid while armed
};

class EnergyHeuristic final : public WindowedHeuristic {
 public:
  /// tau: energy-distance threshold (paper sweeps 1-256; knee at 8).
  EnergyHeuristic(double tau, int window);
  [[nodiscard]] std::unique_ptr<UpdateHeuristic> clone() const override;

 private:
  bool windows_differ(const UpdateContext& ctx) override;
  void on_current_push(const Vec& v) override;
  void on_current_pop(const Vec& v) override;
  void on_start_frozen() override;
  void on_cleared() override;

  double tau_;
  stats::IncrementalEnergy energy_;
};

/// RANKSUM (extension): Kifer et al.'s change detection uses classical
/// two-sample tests, which are one-dimensional — the reason the paper had
/// to reach for RELATIVE/ENERGY. This heuristic applies the obvious 1-D
/// reduction — each coordinate's distance to the frozen start centroid —
/// and runs the Wilcoxon rank-sum test on the two windows. It serves as the
/// "what if we had just used the well-known test" baseline: blind to pure
/// direction changes at constant radius from C(W_s).
class RankSumHeuristic final : public WindowedHeuristic {
 public:
  /// alpha: two-sided p-value below which a change point is declared
  /// (smaller alpha => fewer updates).
  RankSumHeuristic(double alpha, int window);
  [[nodiscard]] std::unique_ptr<UpdateHeuristic> clone() const override;

 private:
  bool windows_differ(const UpdateContext& ctx) override;
  void on_current_push(const Vec& v) override;
  void on_current_pop(const Vec& v) override;
  void on_start_frozen() override;
  void on_cleared() override;

  double alpha_;
  Vec start_centroid_;
  std::vector<double> start_dists_;
  std::deque<double> current_dists_;
};

}  // namespace nc

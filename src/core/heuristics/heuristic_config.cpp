#include "core/heuristics/heuristic_config.hpp"

#include <cstdio>

#include "common/check.hpp"
#include "core/heuristics/threshold_heuristics.hpp"
#include "core/heuristics/windowed_heuristics.hpp"

namespace nc {

std::unique_ptr<UpdateHeuristic> HeuristicConfig::make() const {
  switch (kind) {
    case HeuristicKind::kAlways:
      return std::make_unique<AlwaysUpdateHeuristic>();
    case HeuristicKind::kSystem:
      return std::make_unique<SystemHeuristic>(threshold);
    case HeuristicKind::kApplication:
      return std::make_unique<ApplicationHeuristic>(threshold);
    case HeuristicKind::kApplicationCentroid:
      return std::make_unique<ApplicationCentroidHeuristic>(threshold, window);
    case HeuristicKind::kRelative:
      return std::make_unique<RelativeHeuristic>(threshold, window);
    case HeuristicKind::kEnergy:
      return std::make_unique<EnergyHeuristic>(threshold, window);
    case HeuristicKind::kRankSum:
      return std::make_unique<RankSumHeuristic>(threshold, window);
  }
  NC_CHECK_MSG(false, "unknown heuristic kind");
  return nullptr;
}

std::string HeuristicConfig::name() const {
  char buf[80];
  switch (kind) {
    case HeuristicKind::kAlways:
      return "always";
    case HeuristicKind::kSystem:
      std::snprintf(buf, sizeof buf, "system(tau=%g)", threshold);
      return buf;
    case HeuristicKind::kApplication:
      std::snprintf(buf, sizeof buf, "application(tau=%g)", threshold);
      return buf;
    case HeuristicKind::kApplicationCentroid:
      std::snprintf(buf, sizeof buf, "app_centroid(tau=%g,k=%d)", threshold, window);
      return buf;
    case HeuristicKind::kRelative:
      std::snprintf(buf, sizeof buf, "relative(eps=%g,k=%d)", threshold, window);
      return buf;
    case HeuristicKind::kEnergy:
      std::snprintf(buf, sizeof buf, "energy(tau=%g,k=%d)", threshold, window);
      return buf;
    case HeuristicKind::kRankSum:
      std::snprintf(buf, sizeof buf, "ranksum(a=%g,k=%d)", threshold, window);
      return buf;
  }
  return "unknown";
}

HeuristicConfig HeuristicConfig::always() {
  HeuristicConfig c;
  c.kind = HeuristicKind::kAlways;
  return c;
}

HeuristicConfig HeuristicConfig::system(double tau_ms) {
  HeuristicConfig c;
  c.kind = HeuristicKind::kSystem;
  c.threshold = tau_ms;
  return c;
}

HeuristicConfig HeuristicConfig::application(double tau_ms) {
  HeuristicConfig c;
  c.kind = HeuristicKind::kApplication;
  c.threshold = tau_ms;
  return c;
}

HeuristicConfig HeuristicConfig::application_centroid(double tau_ms, int window) {
  HeuristicConfig c;
  c.kind = HeuristicKind::kApplicationCentroid;
  c.threshold = tau_ms;
  c.window = window;
  return c;
}

HeuristicConfig HeuristicConfig::relative(double eps_r, int window) {
  HeuristicConfig c;
  c.kind = HeuristicKind::kRelative;
  c.threshold = eps_r;
  c.window = window;
  return c;
}

HeuristicConfig HeuristicConfig::energy(double tau, int window) {
  HeuristicConfig c;
  c.kind = HeuristicKind::kEnergy;
  c.threshold = tau;
  c.window = window;
  return c;
}

HeuristicConfig HeuristicConfig::rank_sum(double alpha, int window) {
  HeuristicConfig c;
  c.kind = HeuristicKind::kRankSum;
  c.threshold = alpha;
  c.window = window;
  return c;
}

}  // namespace nc

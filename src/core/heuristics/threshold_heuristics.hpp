// Windowless update heuristics: ALWAYS, SYSTEM, APPLICATION and the
// APPLICATION/CENTROID hybrid (paper Secs. V-B, V-E, V-G).
//
// These trade accuracy directly against stability through a single movement
// threshold tau (ms in coordinate space) and are sensitive to its tuning —
// the baselines the windowed heuristics are compared against.
#pragma once

#include <deque>

#include "common/vec.hpp"
#include "core/heuristics/update_heuristic.hpp"

namespace nc {

/// Publishes every system update: c_a == c_s ("Raw" rows in the paper).
class AlwaysUpdateHeuristic final : public UpdateHeuristic {
 public:
  bool on_system_update(const UpdateContext& ctx, Coordinate& app) override;
  void reset() override {}
  [[nodiscard]] std::unique_ptr<UpdateHeuristic> clone() const override;
};

/// SYSTEM: update when one step of the system coordinate moved farther than
/// tau:  ||c_s(t) - c_s(t-1)|| > tau  =>  c_a = c_s.
/// Pathology (paper): many sub-threshold steps in one direction never fire.
class SystemHeuristic final : public UpdateHeuristic {
 public:
  explicit SystemHeuristic(double tau_ms);
  bool on_system_update(const UpdateContext& ctx, Coordinate& app) override;
  void reset() override;
  [[nodiscard]] std::unique_ptr<UpdateHeuristic> clone() const override;

 private:
  double tau_ms_;
  Coordinate prev_system_;
};

/// APPLICATION: update when the application's view drifted too far from the
/// system's:  ||c_a - c_s|| > tau  =>  c_a = c_s.
class ApplicationHeuristic final : public UpdateHeuristic {
 public:
  explicit ApplicationHeuristic(double tau_ms);
  bool on_system_update(const UpdateContext& ctx, Coordinate& app) override;
  void reset() override {}
  [[nodiscard]] std::unique_ptr<UpdateHeuristic> clone() const override;

 private:
  double tau_ms_;
};

/// APPLICATION/CENTROID (Sec. V-G): triggers like APPLICATION but publishes
/// the centroid of the last `window` system coordinates, isolating how much
/// of the windowed heuristics' win comes from *what* they publish vs *when*.
class ApplicationCentroidHeuristic final : public UpdateHeuristic {
 public:
  ApplicationCentroidHeuristic(double tau_ms, int window);
  bool on_system_update(const UpdateContext& ctx, Coordinate& app) override;
  void reset() override;
  [[nodiscard]] std::unique_ptr<UpdateHeuristic> clone() const override;

 private:
  double tau_ms_;
  int window_;
  std::deque<Vec> recent_;
  Vec sum_;
};

}  // namespace nc

#include "core/heuristics/windowed_heuristics.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "stats/ranksum.hpp"

namespace nc {

// ------------------------------------------------------ WindowedHeuristic --

WindowedHeuristic::WindowedHeuristic(int window) : window_(window) {
  NC_CHECK_MSG(window >= 2, "window must be >= 2");
}

bool WindowedHeuristic::on_system_update(const UpdateContext& ctx, Coordinate& app) {
  const Vec v = ctx.system.as_vec();
  if (current_sum_.dim() == 0) current_sum_ = Vec::zero(v.dim());

  if (!armed()) {
    // Filling: both windows receive the element (W_s == W_c while filling).
    start_.push_back(v);
    current_.push_back(v);
    current_sum_ += v;
    on_current_push(v);
    if (armed()) on_start_frozen();
    return false;
  }

  // Armed: W_s is frozen, W_c slides.
  current_.push_back(v);
  current_sum_ += v;
  on_current_push(v);
  const Vec oldest = current_.front();
  current_.pop_front();
  current_sum_ -= oldest;
  on_current_pop(oldest);

  if (!windows_differ(ctx)) return false;

  // Change point: publish the centroid of the current window and restart.
  ++change_points_;
  app = Coordinate::from_vec(current_centroid(), ctx.system.has_height());
  const int dim = current_sum_.dim();
  start_.clear();
  current_.clear();
  current_sum_ = Vec::zero(dim);
  on_cleared();
  return true;
}

void WindowedHeuristic::reset() {
  start_.clear();
  current_.clear();
  current_sum_ = Vec();
  change_points_ = 0;
  on_cleared();
}

Vec WindowedHeuristic::current_centroid() const {
  NC_CHECK_MSG(!current_.empty(), "centroid of empty window");
  return current_sum_ / static_cast<double>(current_.size());
}

// ------------------------------------------------------- RelativeHeuristic --

RelativeHeuristic::RelativeHeuristic(double eps_r, int window)
    : WindowedHeuristic(window), eps_r_(eps_r) {
  NC_CHECK_MSG(eps_r > 0.0, "eps_r must be positive");
}

void RelativeHeuristic::on_start_frozen() {
  Vec sum = Vec::zero(start_window().front().dim());
  for (const Vec& v : start_window()) sum += v;
  start_centroid_ = sum / static_cast<double>(start_window().size());
}

void RelativeHeuristic::on_cleared() { start_centroid_ = Vec(); }

bool RelativeHeuristic::windows_differ(const UpdateContext& ctx) {
  // Without a known neighbor there is no local scale to compare against;
  // the paper learns r from latency samples, which every node has by the
  // time the windows fill.
  if (ctx.nearest == nullptr || !ctx.nearest->initialized()) return false;
  const double moved = start_centroid_.distance_to(current_centroid());
  const double scale =
      std::max(start_centroid_.distance_to(ctx.nearest->as_vec()), 1e-9);
  return moved / scale > eps_r_;
}

std::unique_ptr<UpdateHeuristic> RelativeHeuristic::clone() const {
  return std::make_unique<RelativeHeuristic>(eps_r_, window());
}

// --------------------------------------------------------- EnergyHeuristic --

EnergyHeuristic::EnergyHeuristic(double tau, int window)
    : WindowedHeuristic(window), tau_(tau) {
  NC_CHECK_MSG(tau > 0.0, "tau must be positive");
}

void EnergyHeuristic::on_current_push(const Vec& v) { energy_.push_current(v); }

void EnergyHeuristic::on_current_pop(const Vec&) { energy_.pop_current(); }

void EnergyHeuristic::on_start_frozen() { energy_.set_base(start_window()); }

void EnergyHeuristic::on_cleared() { energy_.reset(); }

bool EnergyHeuristic::windows_differ(const UpdateContext&) {
  return energy_.value() > tau_;
}

std::unique_ptr<UpdateHeuristic> EnergyHeuristic::clone() const {
  return std::make_unique<EnergyHeuristic>(tau_, window());
}

// -------------------------------------------------------- RankSumHeuristic --

RankSumHeuristic::RankSumHeuristic(double alpha, int window)
    : WindowedHeuristic(window), alpha_(alpha) {
  NC_CHECK_MSG(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
}

void RankSumHeuristic::on_start_frozen() {
  Vec sum = Vec::zero(start_window().front().dim());
  for (const Vec& v : start_window()) sum += v;
  start_centroid_ = sum / static_cast<double>(start_window().size());
  start_dists_.clear();
  start_dists_.reserve(start_window().size());
  for (const Vec& v : start_window())
    start_dists_.push_back(start_centroid_.distance_to(v));
  // W_c == W_s at freeze time, so its reduction is identical.
  current_dists_.assign(start_dists_.begin(), start_dists_.end());
}

void RankSumHeuristic::on_current_push(const Vec& v) {
  // During the fill phase (including the push that completes it) the start
  // centroid does not exist yet; on_start_frozen seeds the current
  // reduction wholesale right afterwards.
  if (start_centroid_.dim() == 0) return;
  current_dists_.push_back(start_centroid_.distance_to(v));
}

void RankSumHeuristic::on_current_pop(const Vec&) {
  if (current_dists_.empty()) return;  // fill phase
  current_dists_.pop_front();
}

void RankSumHeuristic::on_cleared() {
  start_centroid_ = Vec();
  start_dists_.clear();
  current_dists_.clear();
}

bool RankSumHeuristic::windows_differ(const UpdateContext&) {
  const std::vector<double> current(current_dists_.begin(), current_dists_.end());
  return stats::rank_sum_test(start_dists_, current).p_two_sided < alpha_;
}

std::unique_ptr<UpdateHeuristic> RankSumHeuristic::clone() const {
  return std::make_unique<RankSumHeuristic>(alpha_, window());
}

}  // namespace nc

// Application-level coordinate update heuristics (paper Sec. V).
//
// The coordinate subsystem maintains a continuously-evolving system
// coordinate c_s but exposes to the application a coordinate c_a that only
// changes when a heuristic declares the movement significant. Each heuristic
// consumes the stream of system coordinates and decides when — and to what —
// the application coordinate is updated.
#pragma once

#include <memory>

#include "core/coordinate.hpp"

namespace nc {

/// Everything a heuristic may consult when a new system coordinate arrives.
struct UpdateContext {
  /// The system coordinate after the latest Vivaldi update.
  const Coordinate& system;
  /// Coordinate of the (approximate) nearest known neighbor, if any —
  /// RELATIVE normalizes by the distance to it. May be null.
  const Coordinate* nearest = nullptr;
  /// Current time in seconds (monotonic within a run).
  double now_s = 0.0;
};

class UpdateHeuristic {
 public:
  virtual ~UpdateHeuristic() = default;

  /// Feeds one system-coordinate update. If the heuristic decides the
  /// application coordinate must change it assigns `app` and returns true.
  /// `app` is always initialized (the owner seeds it with the first system
  /// coordinate before engaging the heuristic).
  virtual bool on_system_update(const UpdateContext& ctx, Coordinate& app) = 0;

  /// Forgets all internal state (windows, previous coordinates).
  virtual void reset() = 0;

  [[nodiscard]] virtual std::unique_ptr<UpdateHeuristic> clone() const = 0;

 protected:
  UpdateHeuristic() = default;
  UpdateHeuristic(const UpdateHeuristic&) = default;
  UpdateHeuristic& operator=(const UpdateHeuristic&) = default;
};

}  // namespace nc

#include "core/heuristics/threshold_heuristics.hpp"

#include "common/check.hpp"

namespace nc {

// ---------------------------------------------------------------- ALWAYS --

bool AlwaysUpdateHeuristic::on_system_update(const UpdateContext& ctx,
                                             Coordinate& app) {
  const bool changed = !(app == ctx.system);
  app = ctx.system;
  return changed;
}

std::unique_ptr<UpdateHeuristic> AlwaysUpdateHeuristic::clone() const {
  return std::make_unique<AlwaysUpdateHeuristic>();
}

// ---------------------------------------------------------------- SYSTEM --

SystemHeuristic::SystemHeuristic(double tau_ms) : tau_ms_(tau_ms) {
  NC_CHECK_MSG(tau_ms > 0.0, "tau must be positive");
}

bool SystemHeuristic::on_system_update(const UpdateContext& ctx, Coordinate& app) {
  if (!prev_system_.initialized()) {
    prev_system_ = ctx.system;
    return false;
  }
  const double step = ctx.system.displacement_from(prev_system_);
  prev_system_ = ctx.system;
  if (step > tau_ms_) {
    app = ctx.system;
    return true;
  }
  return false;
}

void SystemHeuristic::reset() { prev_system_ = Coordinate(); }

std::unique_ptr<UpdateHeuristic> SystemHeuristic::clone() const {
  return std::make_unique<SystemHeuristic>(tau_ms_);
}

// ----------------------------------------------------------- APPLICATION --

ApplicationHeuristic::ApplicationHeuristic(double tau_ms) : tau_ms_(tau_ms) {
  NC_CHECK_MSG(tau_ms > 0.0, "tau must be positive");
}

bool ApplicationHeuristic::on_system_update(const UpdateContext& ctx,
                                            Coordinate& app) {
  if (ctx.system.displacement_from(app) > tau_ms_) {
    app = ctx.system;
    return true;
  }
  return false;
}

std::unique_ptr<UpdateHeuristic> ApplicationHeuristic::clone() const {
  return std::make_unique<ApplicationHeuristic>(tau_ms_);
}

// -------------------------------------------------- APPLICATION/CENTROID --

ApplicationCentroidHeuristic::ApplicationCentroidHeuristic(double tau_ms, int window)
    : tau_ms_(tau_ms), window_(window) {
  NC_CHECK_MSG(tau_ms > 0.0, "tau must be positive");
  NC_CHECK_MSG(window >= 1, "window must be >= 1");
}

bool ApplicationCentroidHeuristic::on_system_update(const UpdateContext& ctx,
                                                    Coordinate& app) {
  const Vec v = ctx.system.as_vec();
  if (sum_.dim() == 0) sum_ = Vec::zero(v.dim());
  recent_.push_back(v);
  sum_ += v;
  if (static_cast<int>(recent_.size()) > window_) {
    sum_ -= recent_.front();
    recent_.pop_front();
  }

  if (ctx.system.displacement_from(app) > tau_ms_) {
    const Vec centroid = sum_ / static_cast<double>(recent_.size());
    app = Coordinate::from_vec(centroid, ctx.system.has_height());
    return true;
  }
  return false;
}

void ApplicationCentroidHeuristic::reset() {
  recent_.clear();
  sum_ = Vec();
}

std::unique_ptr<UpdateHeuristic> ApplicationCentroidHeuristic::clone() const {
  return std::make_unique<ApplicationCentroidHeuristic>(tau_ms_, window_);
}

}  // namespace nc

#include "core/coordinate.hpp"

#include <algorithm>
#include <ostream>

namespace nc {

Vec Coordinate::as_vec() const {
  if (!has_height_) return pos_;
  NC_CHECK_MSG(pos_.dim() < kMaxDim, "no room to embed height");
  Vec v(pos_.dim() + 1);
  for (int i = 0; i < pos_.dim(); ++i) v[i] = pos_[i];
  v[pos_.dim()] = height_;
  return v;
}

Coordinate Coordinate::from_vec(const Vec& v, bool with_height) {
  if (!with_height) return Coordinate(v);
  NC_CHECK_MSG(v.dim() >= 2, "height embedding needs >= 2 components");
  Vec pos(v.dim() - 1);
  for (int i = 0; i < pos.dim(); ++i) pos[i] = v[i];
  return Coordinate(pos, std::max(0.0, v[v.dim() - 1]));
}

void Coordinate::apply_displacement(const Vec& spatial, double dheight,
                                    double min_height) {
  pos_ += spatial;
  if (has_height_) {
    height_ = std::max(min_height, height_ + dheight);
  }
}

std::ostream& operator<<(std::ostream& os, const Coordinate& c) {
  os << c.position();
  if (c.has_height()) os << "+h" << c.height();
  return os;
}

}  // namespace nc

// Wire encoding of the coordinate state nodes exchange on every sample.
//
// The protocol payload is (coordinate, error estimate); with gossip piggy-
// backed on pings it must stay small. Encoding: one version byte, one flags
// byte (bit 0: height present), one dimension byte, then float32 components,
// optional float32 height, float32 error — 19 bytes for the paper's 3-D
// no-height configuration.
//
// decode_state() validates everything a remote peer could get wrong
// (truncation, bad version, dimension out of range, non-finite components,
// negative height, error outside [0, 1]) and returns nullopt rather than
// trusting the bytes: a malformed or malicious peer must not be able to
// inject NaN into the spring computation (cf. PIC's security discussion in
// the paper's related work).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/coordinate.hpp"

namespace nc {

inline constexpr std::uint8_t kWireVersion = 1;

struct WireState {
  Coordinate coordinate;
  double error_estimate = 1.0;
};

/// Serializes a node's advertised state.
[[nodiscard]] std::vector<std::uint8_t> encode_state(const Coordinate& coordinate,
                                                     double error_estimate);

/// Parses and validates a peer's advertised state; nullopt on any defect.
[[nodiscard]] std::optional<WireState> decode_state(
    std::span<const std::uint8_t> bytes);

/// Exact encoded size for a coordinate of this shape.
[[nodiscard]] std::size_t encoded_size(int dim, bool has_height);

}  // namespace nc

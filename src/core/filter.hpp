// Per-link latency filter interface.
//
// A deployment does not observe one latency per link; it observes a stream
// whose samples vary by orders of magnitude (paper Sec. III). A LatencyFilter
// turns that raw stream into the estimate fed to Vivaldi. update() may return
// nullopt to signal "no usable estimate yet" — either because the filter is
// not primed (MP filter with min_samples, guarding the first-sample pathology
// of Sec. VI) or because the sample was rejected (threshold filter).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>

namespace nc {

class LatencyFilter {
 public:
  virtual ~LatencyFilter() = default;

  /// Feeds one raw observation (ms); returns the filtered estimate, if any.
  virtual std::optional<double> update(double raw_ms) = 0;

  /// Current estimate without feeding a new observation.
  [[nodiscard]] virtual std::optional<double> estimate() const = 0;

  /// Forgets all history.
  virtual void reset() = 0;

  /// Fresh filter with the same parameters and empty history. Used to stamp
  /// out one filter instance per link from a configured prototype.
  [[nodiscard]] virtual std::unique_ptr<LatencyFilter> clone() const = 0;

  /// Bytes this instance holds (object + owned buffers), for the per-run
  /// memory budget report. Stateless-buffer filters just report sizeof.
  [[nodiscard]] virtual std::size_t memory_bytes() const noexcept = 0;

 protected:
  LatencyFilter() = default;
  LatencyFilter(const LatencyFilter&) = default;
  LatencyFilter& operator=(const LatencyFilter&) = default;
};

}  // namespace nc

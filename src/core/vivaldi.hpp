// Vivaldi spring-relaxation coordinate update (Dabek et al., SIGCOMM'04),
// as used and extended by the paper (Fig. 1).
//
// Each node keeps a coordinate and a local error estimate w_i in [0, 1]
// (the paper calls 1 - w_i the node's "confidence"). On observing a
// neighbor's coordinate, error estimate and an RTT sample:
//
//   w      = w_i / (w_i + w_j)                  observation weight
//   eps    = | ||x_i - x_j|| - rtt | / rtt      relative error of sample
//   alpha  = c_e * w
//   w_i    = alpha * eps + (1 - alpha) * w_i    adaptive EWMA of error
//   delta  = c_c * w
//   x_i    = x_i + delta * (rtt - ||x_i - x_j||) * u(x_i - x_j)
//
// Note on the sign: the TR's Figure 1 line 6 prints the force term as
// (||x_i-x_j|| - rtt) * u(x_i - x_j), which would move a node AWAY from a
// neighbor it already overestimates — a typo for the SIGCOMM'04 form above
// (spring force pushes apart when rtt exceeds the coordinate distance). We
// implement the original, self-consistent form; DESIGN.md discusses this.
//
// Two optional behaviors from the paper and its related work:
//  * Confidence building (Sec. IV-B): samples within `confidence_margin_ms`
//    of the predicted distance count as exact (eps = 0, no movement), so
//    timing jitter on sub-millisecond cluster links cannot erode confidence.
//  * de Launois damping (Sec. VII-B): multiply delta by c/(c + k) after k
//    observations. Stabilizes but freezes the system — kept as an ablation
//    baseline showing why the paper rejects it.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "core/coordinate.hpp"

namespace nc {

struct VivaldiConfig {
  int dim = 3;              // coordinate dimensionality (paper uses 3)
  bool use_height = false;  // height-vector variant

  double cc = 0.25;  // coordinate gain (paper's c_c)
  double ce = 0.25;  // error-estimate gain (paper's c_e)

  double initial_error = 1.0;  // error estimate of a fresh node
  double max_error = 1.0;      // clamp: paper keeps w_i in (0,1)

  // Confidence building: treat |predicted - measured| <= margin as an exact
  // match. 0 disables (the paper enables 3 ms only on cluster experiments).
  double confidence_margin_ms = 0.0;

  // de Launois asymptotic damping constant; 0 disables. When enabled, the
  // movement delta is additionally scaled by c/(c + observation_count).
  double delaunois_damping = 0.0;

  // Gravity (drift control, as later deployed in Pyxida — Ledlie's own
  // implementation): after each spring update, the coordinate is pulled
  // toward the origin by (||x|| / rho)^2 ms. Coordinates are relative, so
  // the spring force cannot stop the whole space from translating (Fig. 7);
  // a weak gravity well anchors it without distorting pairwise distances
  // noticeably when rho is much larger than the network diameter.
  // 0 disables.
  double gravity_rho = 0.0;

  // Height-vector parameters (use_height). Heights must start positive:
  // the spring force's height component scales with (h_i + h_j), so a node
  // whose height reaches exactly zero could never lift off the plane again.
  double initial_height_ms = 1.0;
  double min_height_ms = 0.1;

  double min_rtt_ms = 0.01;  // guard for eps = |d - rtt| / rtt

  std::uint64_t seed = 0x5eed;  // symmetry-breaking random directions
};

/// Result of applying one observation.
struct VivaldiSample {
  double displacement_ms = 0.0;   // how far the coordinate moved
  double relative_error = 0.0;    // eps of this sample (before moving)
  bool within_margin = false;     // confidence building treated it as exact
};

class Vivaldi {
 public:
  /// `node_seed` individualizes the RNG so co-located nodes break symmetry
  /// differently under identical configs.
  explicit Vivaldi(const VivaldiConfig& config, std::uint64_t node_seed = 0);

  /// Applies one observation of a remote node. `rtt_ms` must be positive
  /// (filters upstream guarantee this; non-positive samples trip NC_CHECK).
  VivaldiSample observe(const Coordinate& remote, double remote_error, double rtt_ms);

  [[nodiscard]] const Coordinate& coordinate() const noexcept { return coord_; }
  /// Local relative-error estimate w_i in [0, max_error].
  [[nodiscard]] double error_estimate() const noexcept { return error_; }
  /// The paper's "confidence": 1 - w_i.
  [[nodiscard]] double confidence() const noexcept { return 1.0 - error_; }
  [[nodiscard]] std::uint64_t observation_count() const noexcept { return observations_; }
  [[nodiscard]] const VivaldiConfig& config() const noexcept { return config_; }

  /// Forgets all state (coordinate back to origin, error to initial).
  void reset();

 private:
  VivaldiConfig config_;
  Coordinate coord_;
  double error_;
  std::uint64_t observations_ = 0;
  Rng rng_;
};

}  // namespace nc

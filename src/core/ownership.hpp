// Dynamic node ownership for the epoch-sharded engine.
//
// The block partition (core/node_id.hpp's shard_of_node) fixes ownership at
// startup, so a regional flash crowd or staged rollout piles live nodes onto
// a few shards while the rest idle. OwnershipMap makes ownership a run-time
// table seeded from that same block partition, and plan_rebalance is the
// deterministic decision function evaluated at rebalance barriers: a pure
// function of (per-node event-weight counters, pin set, move budget) —
// integer arithmetic only, ties broken by lowest index — so every shard
// computes the IDENTICAL plan from the same barrier-separated counters with
// no extra synchronization, and metrics stay bit-identical for any shard
// count (DESIGN.md Sec. 14).
//
// Each shard keeps its OWN OwnershipMap copy and applies each plan locally;
// the copies can never diverge because the plan is deterministic. Not
// thread-safe by design — there is no shared writer.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "core/node_id.hpp"

namespace nc {

/// One ownership transfer decided at a rebalance barrier.
struct RebalanceMove {
  NodeId node = kInvalidNode;
  int from = -1;
  int to = -1;
};

class OwnershipMap {
 public:
  OwnershipMap() = default;

  /// Seeds from the static block partition, so an engine that never
  /// rebalances routes exactly as shard_of_node always did.
  OwnershipMap(int num_nodes, int shards) : shards_(shards) {
    NC_ASSERT(num_nodes >= 0 && shards >= 1);
    owner_.resize(static_cast<std::size_t>(num_nodes));
    for (NodeId id = 0; id < num_nodes; ++id)
      owner_[static_cast<std::size_t>(id)] = shard_of_node(id, num_nodes, shards);
  }

  [[nodiscard]] int owner(NodeId id) const noexcept {
    NC_ASSERT(id >= 0 && static_cast<std::size_t>(id) < owner_.size());
    return owner_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] int num_nodes() const noexcept {
    return static_cast<int>(owner_.size());
  }
  [[nodiscard]] int shards() const noexcept { return shards_; }

  /// Applies one barrier's plan. Every shard calls this with the same plan,
  /// keeping all per-shard copies identical.
  void apply(const std::vector<RebalanceMove>& moves) {
    for (const RebalanceMove& m : moves) {
      NC_ASSERT(owner(m.node) == m.from);
      NC_ASSERT(m.to >= 0 && m.to < shards_);
      owner_[static_cast<std::size_t>(m.node)] = static_cast<std::int32_t>(m.to);
    }
  }

  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return owner_.capacity() * sizeof(std::int32_t);
  }

 private:
  int shards_ = 1;
  std::vector<std::int32_t> owner_;
};

/// The rebalance decision function. Pure and integer-only: given the current
/// ownership, per-node event weights accumulated since the last decision
/// (counters written by owners, read at a barrier), a pin bitmap (nodes that
/// must not move, e.g. drift-tracked nodes), and a move budget, returns a
/// bounded batch of ownership transfers.
///
/// Greedy max-to-min: each step picks the most-loaded shard (tie: lowest
/// index) as donor and the least-loaded (tie: lowest index) as recipient,
/// then moves the heaviest donor-owned node whose weight w satisfies
/// 1 <= w <= gap/2 (tie: lowest node id) — the half-gap cap guarantees each
/// move strictly narrows the donor/recipient spread, so the plan can never
/// oscillate. Stops early when the gap closes below 2 or no candidate fits.
[[nodiscard]] inline std::vector<RebalanceMove> plan_rebalance(
    const OwnershipMap& map, const std::vector<std::uint32_t>& node_weight,
    const std::vector<std::uint8_t>& pinned, int max_moves) {
  const int n = map.num_nodes();
  const int shards = map.shards();
  NC_ASSERT(static_cast<int>(node_weight.size()) == n);
  NC_ASSERT(pinned.empty() || static_cast<int>(pinned.size()) == n);

  std::vector<RebalanceMove> plan;
  if (shards < 2 || max_moves <= 0) return plan;

  std::vector<std::int64_t> load(static_cast<std::size_t>(shards), 0);
  for (NodeId id = 0; id < n; ++id)
    load[static_cast<std::size_t>(map.owner(id))] += node_weight[static_cast<std::size_t>(id)];

  // Nodes already moved this round keep their NEW owner only in `moved_to`
  // (the caller's map is const); at most max_moves entries, linear scan.
  std::vector<RebalanceMove> moved;
  const auto owner_now = [&](NodeId id) {
    for (const RebalanceMove& m : moved)
      if (m.node == id) return m.to;
    return map.owner(id);
  };

  for (int step = 0; step < max_moves; ++step) {
    int donor = 0, recipient = 0;
    for (int s = 1; s < shards; ++s) {
      if (load[static_cast<std::size_t>(s)] > load[static_cast<std::size_t>(donor)]) donor = s;
      if (load[static_cast<std::size_t>(s)] < load[static_cast<std::size_t>(recipient)]) recipient = s;
    }
    const std::int64_t gap =
        load[static_cast<std::size_t>(donor)] - load[static_cast<std::size_t>(recipient)];
    if (gap < 2) break;

    NodeId best = kInvalidNode;
    std::uint32_t best_w = 0;
    for (NodeId id = 0; id < n; ++id) {
      if (owner_now(id) != donor) continue;
      if (!pinned.empty() && pinned[static_cast<std::size_t>(id)]) continue;
      const std::uint32_t w = node_weight[static_cast<std::size_t>(id)];
      if (w < 1 || static_cast<std::int64_t>(w) * 2 > gap) continue;
      if (best == kInvalidNode || w > best_w) {
        best = id;
        best_w = w;
      }
    }
    if (best == kInvalidNode) break;

    const RebalanceMove m{best, donor, recipient};
    plan.push_back(m);
    moved.push_back(m);
    load[static_cast<std::size_t>(donor)] -= best_w;
    load[static_cast<std::size_t>(recipient)] += best_w;
  }
  return plan;
}

}  // namespace nc

#include "core/wire.hpp"

#include <cmath>
#include <cstring>

#include "common/check.hpp"

namespace nc {

namespace {

constexpr std::uint8_t kFlagHeight = 0x01;

void put_f32(std::vector<std::uint8_t>& out, float v) {
  std::uint8_t buf[4];
  std::memcpy(buf, &v, 4);
  out.insert(out.end(), buf, buf + 4);
}

bool get_f32(std::span<const std::uint8_t> bytes, std::size_t& offset, float& v) {
  if (offset + 4 > bytes.size()) return false;
  std::memcpy(&v, bytes.data() + offset, 4);
  offset += 4;
  return true;
}

}  // namespace

std::size_t encoded_size(int dim, bool has_height) {
  return 3 + 4 * static_cast<std::size_t>(dim) + (has_height ? 4 : 0) + 4;
}

std::vector<std::uint8_t> encode_state(const Coordinate& coordinate,
                                       double error_estimate) {
  NC_CHECK_MSG(coordinate.initialized(), "cannot encode an empty coordinate");
  NC_CHECK_MSG(error_estimate >= 0.0 && error_estimate <= 1.0,
               "error estimate out of [0,1]");
  std::vector<std::uint8_t> out;
  out.reserve(encoded_size(coordinate.dim(), coordinate.has_height()));
  out.push_back(kWireVersion);
  out.push_back(coordinate.has_height() ? kFlagHeight : 0);
  out.push_back(static_cast<std::uint8_t>(coordinate.dim()));
  for (int i = 0; i < coordinate.dim(); ++i)
    put_f32(out, static_cast<float>(coordinate.position()[i]));
  if (coordinate.has_height())
    put_f32(out, static_cast<float>(coordinate.height()));
  put_f32(out, static_cast<float>(error_estimate));
  return out;
}

std::optional<WireState> decode_state(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 3) return std::nullopt;
  if (bytes[0] != kWireVersion) return std::nullopt;
  const std::uint8_t flags = bytes[1];
  if ((flags & ~kFlagHeight) != 0) return std::nullopt;
  const bool has_height = (flags & kFlagHeight) != 0;
  const int dim = bytes[2];
  if (dim < 1 || dim > kMaxDim) return std::nullopt;
  if (bytes.size() != encoded_size(dim, has_height)) return std::nullopt;

  std::size_t offset = 3;
  Vec pos(dim);
  for (int i = 0; i < dim; ++i) {
    float v = 0.0f;
    if (!get_f32(bytes, offset, v) || !std::isfinite(v)) return std::nullopt;
    pos[i] = static_cast<double>(v);
  }
  double height = 0.0;
  if (has_height) {
    float v = 0.0f;
    if (!get_f32(bytes, offset, v) || !std::isfinite(v) || v < 0.0f)
      return std::nullopt;
    height = static_cast<double>(v);
  }
  float err = 0.0f;
  if (!get_f32(bytes, offset, err) || !std::isfinite(err) || err < 0.0f ||
      err > 1.0f) {
    return std::nullopt;
  }

  WireState state;
  state.coordinate = has_height ? Coordinate(pos, height) : Coordinate(pos);
  state.error_estimate = static_cast<double>(err);
  return state;
}

}  // namespace nc

// Network coordinate: a low-dimensional Euclidean position, optionally
// augmented with a height (Dabek et al., SIGCOMM'04).
//
// With heights the predicted RTT between i and j is
//     ||x_i - x_j|| + h_i + h_j
// modelling the access link each packet must traverse twice. The paper under
// reproduction uses pure Euclidean 3-D coordinates but notes its techniques
// admit heights, so height support is carried through the whole stack.
//
// Height algebra follows the original Vivaldi/p2psim semantics: subtracting
// two coordinates yields a displacement whose height component is the SUM of
// the two heights (moving away from someone pushes you up off the plane), and
// a coordinate's height is clamped non-negative after every update.
#pragma once

#include <iosfwd>

#include "common/vec.hpp"

namespace nc {

class Coordinate {
 public:
  /// Empty coordinate (dim 0); used as "not yet initialized".
  Coordinate() = default;

  /// Pure Euclidean coordinate.
  explicit Coordinate(Vec position) : pos_(position) {}

  /// Coordinate with a height component (height must be >= 0).
  Coordinate(Vec position, double height) : pos_(position), height_(height), has_height_(true) {
    NC_CHECK_MSG(height >= 0.0, "height must be non-negative");
  }

  [[nodiscard]] static Coordinate origin(int dim, bool with_height = false) {
    return with_height ? Coordinate(Vec::zero(dim), 0.0) : Coordinate(Vec::zero(dim));
  }

  [[nodiscard]] bool initialized() const noexcept { return pos_.dim() > 0; }
  [[nodiscard]] int dim() const noexcept { return pos_.dim(); }
  [[nodiscard]] bool has_height() const noexcept { return has_height_; }
  [[nodiscard]] const Vec& position() const noexcept { return pos_; }
  [[nodiscard]] double height() const noexcept { return height_; }

  /// Predicted RTT (ms) to `o`: Euclidean distance plus both heights.
  /// Heights are summed first so the result is bit-symmetric in (this, o).
  [[nodiscard]] double distance_to(const Coordinate& o) const {
    check_compatible(o);
    return pos_.distance_to(o.pos_) + (height_ + o.height_);
  }

  /// Magnitude of the coordinate *movement* from `from` to *this: spatial
  /// displacement plus height change. This is the quantity the stability
  /// metric (ms of coordinate change per second) accumulates; unlike
  /// distance_to it does not add the heights themselves.
  [[nodiscard]] double displacement_from(const Coordinate& from) const {
    check_compatible(from);
    return pos_.distance_to(from.pos_) + std::abs(height_ - from.height_);
  }

  /// Embeds the coordinate in R^dim (or R^(dim+1) with the height appended)
  /// for window statistics (centroids, energy distance).
  [[nodiscard]] Vec as_vec() const;

  /// Inverse of as_vec(); `with_height` must match the embedding.
  [[nodiscard]] static Coordinate from_vec(const Vec& v, bool with_height);

  /// Applies a Vivaldi displacement: the spatial part moves the position;
  /// the height part adds to the height, clamped at `min_height`.
  /// `spatial` must have the coordinate's dimension.
  void apply_displacement(const Vec& spatial, double dheight, double min_height = 0.0);

  [[nodiscard]] friend bool operator==(const Coordinate& a, const Coordinate& b) noexcept {
    return a.pos_ == b.pos_ && a.height_ == b.height_ && a.has_height_ == b.has_height_;
  }

 private:
  void check_compatible(const Coordinate& o) const {
    NC_CHECK_MSG(pos_.dim() == o.pos_.dim(), "coordinate dimension mismatch");
    NC_CHECK_MSG(has_height_ == o.has_height_, "height-model mismatch");
  }

  Vec pos_;
  double height_ = 0.0;
  bool has_height_ = false;
};

std::ostream& operator<<(std::ostream& os, const Coordinate& c);

}  // namespace nc

#include "core/nc_client.hpp"

#include "common/check.hpp"

namespace nc {

NCClient::NCClient(NodeId id, const NCClientConfig& config)
    : id_(id),
      config_(config),
      vivaldi_(config.vivaldi, static_cast<std::uint64_t>(id)),
      heuristic_(config.heuristic.make()) {}

NCClient::LinkState& NCClient::link_for(NodeId remote, double now_s) {
  auto it = links_.find(remote);
  if (it == links_.end()) {
    if (config_.max_tracked_links > 0 && links_.size() >= config_.max_tracked_links) {
      evict_oldest_link();
    }
    it = links_.emplace(remote, LinkState{config_.filter.make(), {}, now_s}).first;
  }
  return it->second;
}

void NCClient::evict_oldest_link() {
  auto oldest = links_.begin();
  for (auto it = links_.begin(); it != links_.end(); ++it) {
    if (it->second.last_seen_s < oldest->second.last_seen_s) oldest = it;
  }
  if (oldest != links_.end()) {
    if (oldest->first == nearest_id_) nearest_id_ = kInvalidNode;
    links_.erase(oldest);
    ++evictions_;
  }
}

ObservationOutcome NCClient::observe(NodeId remote, const Coordinate& remote_coord,
                                     double remote_error, double raw_rtt_ms,
                                     double now_s) {
  NC_CHECK_MSG(remote != id_, "node observed itself");
  NC_CHECK_MSG(raw_rtt_ms > 0.0, "rtt must be positive");
  ++observations_;

  ObservationOutcome out;
  LinkState& link = link_for(remote, now_s);
  link.last_coord = remote_coord;
  link.last_seen_s = now_s;

  out.filtered_rtt_ms = link.filter->update(raw_rtt_ms);
  if (!out.filtered_rtt_ms.has_value()) {
    ++absorbed_;
    return out;
  }
  const double filtered = *out.filtered_rtt_ms;

  // Approximate nearest neighbor by filtered RTT. Re-observing the current
  // nearest refreshes its value and coordinate even if the link got slower;
  // this keeps the scale honest without scanning all links.
  if (nearest_id_ == kInvalidNode || filtered <= nearest_rtt_ms_ ||
      remote == nearest_id_) {
    nearest_id_ = remote;
    nearest_rtt_ms_ = filtered;
    nearest_coord_ = remote_coord;
  }

  const VivaldiSample sample = vivaldi_.observe(remote_coord, remote_error, filtered);
  out.vivaldi_updated = true;
  out.sample_relative_error = sample.relative_error;
  out.system_displacement_ms = sample.displacement_ms;

  if (!app_initialized_) {
    // First usable sample: seed the application coordinate so callers always
    // have something consistent, then let the heuristic take over.
    app_coord_ = vivaldi_.coordinate();
    app_initialized_ = true;
    out.app_updated = true;
    out.app_displacement_ms = 0.0;  // seeded from origin-adjacent state
    ++app_updates_;
    return out;
  }

  const UpdateContext ctx{
      .system = vivaldi_.coordinate(),
      .nearest = nearest_coord_.initialized() ? &nearest_coord_ : nullptr,
      .now_s = now_s,
  };
  const Coordinate app_before = app_coord_;
  out.app_updated = heuristic_->on_system_update(ctx, app_coord_);
  if (out.app_updated) {
    out.app_displacement_ms = app_coord_.displacement_from(app_before);
    ++app_updates_;
  }
  return out;
}

}  // namespace nc

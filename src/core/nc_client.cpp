#include "core/nc_client.hpp"

#include "common/check.hpp"

namespace nc {

NCClient::NCClient(NodeId id, const NCClientConfig& config)
    : id_(id),
      config_(config),
      vivaldi_(config.vivaldi, static_cast<std::uint64_t>(id)),
      heuristic_(config.heuristic.make()) {}

NCClient::LinkState& NCClient::link_for(NodeId remote, double now_s) {
  const auto rid = static_cast<std::uint32_t>(remote);
  if (const auto slot = slot_of_.find(rid); slot.has_value())
    return slab_[*slot];

  // First contact (or re-contact after eviction): claim a slab slot.
  if (config_.max_tracked_links > 0 &&
      active_links_ >= config_.max_tracked_links) {
    evict_one_link();
  }
  std::uint32_t idx;
  if (!free_slots_.empty()) {
    // Reuse the parked slot: reset its filter instead of allocating a fresh
    // one — a reset filter is behaviorally identical to a clone()d one
    // (pinned by NCClient.SlabLinkStateMatchesMapReference).
    idx = free_slots_.back();
    free_slots_.pop_back();
    LinkState& s = slab_[idx];
    s.filter->reset();
    s.last_coord = Coordinate{};
  } else {
    slab_.push_back(LinkState{config_.filter.make(), {}, 0.0, kInvalidNode, 0});
    idx = static_cast<std::uint32_t>(slab_.size() - 1);
  }
  LinkState& s = slab_[idx];
  s.remote = remote;
  s.last_seen_s = now_s;
  s.ref = 1;
  slot_of_.insert(rid, idx);
  ++active_links_;
  return s;
}

void NCClient::evict_one_link() {
  // Clock-hand (second-chance) sweep: links observed since the hand last
  // passed get their reference bit cleared and survive; the first slot found
  // unreferenced is evicted. Amortized O(1) per eviction — the old oldest-
  // timestamp scan paid O(max_tracked_links) every time. Two full passes
  // bound the loop: after one pass every ref bit is clear, so the second
  // pass must evict (the slab holds at least one active slot here).
  if (active_links_ == 0) return;
  for (std::size_t step = 0; step < 2 * slab_.size(); ++step) {
    if (clock_hand_ >= slab_.size()) clock_hand_ = 0;
    LinkState& s = slab_[clock_hand_++];
    if (s.remote == kInvalidNode) continue;  // parked slot
    if (s.ref != 0) {
      s.ref = 0;  // second chance
      continue;
    }
    if (s.remote == nearest_id_) nearest_id_ = kInvalidNode;
    // Unhook the index entry: this is what keeps the compact table bounded
    // by the slab instead of by the distinct-remote count.
    slot_of_.erase(static_cast<std::uint32_t>(s.remote));
    s.remote = kInvalidNode;
    free_slots_.push_back(static_cast<std::uint32_t>(clock_hand_ - 1));
    --active_links_;
    ++evictions_;
    return;
  }
  NC_CHECK_MSG(false, "clock-hand sweep found no victim in two passes");
}

ObservationOutcome NCClient::observe(NodeId remote, const Coordinate& remote_coord,
                                     double remote_error, double raw_rtt_ms,
                                     double now_s) {
  NC_CHECK_MSG(remote != id_, "node observed itself");
  NC_CHECK_MSG(raw_rtt_ms > 0.0, "rtt must be positive");
  ++observations_;

  ObservationOutcome out;
  LinkState& link = link_for(remote, now_s);
  link.last_coord = remote_coord;
  link.last_seen_s = now_s;
  link.ref = 1;

  out.filtered_rtt_ms = link.filter->update(raw_rtt_ms);
  if (!out.filtered_rtt_ms.has_value()) {
    ++absorbed_;
    return out;
  }
  const double filtered = *out.filtered_rtt_ms;

  // Approximate nearest neighbor by filtered RTT. Re-observing the current
  // nearest refreshes its value and coordinate even if the link got slower;
  // this keeps the scale honest without scanning all links.
  if (nearest_id_ == kInvalidNode || filtered <= nearest_rtt_ms_ ||
      remote == nearest_id_) {
    nearest_id_ = remote;
    nearest_rtt_ms_ = filtered;
    nearest_coord_ = remote_coord;
  }

  const VivaldiSample sample = vivaldi_.observe(remote_coord, remote_error, filtered);
  out.vivaldi_updated = true;
  out.sample_relative_error = sample.relative_error;
  out.system_displacement_ms = sample.displacement_ms;

  if (!app_initialized_) {
    // First usable sample: seed the application coordinate so callers always
    // have something consistent, then let the heuristic take over.
    app_coord_ = vivaldi_.coordinate();
    app_error_ = vivaldi_.error_estimate();
    app_initialized_ = true;
    out.app_updated = true;
    out.app_displacement_ms = 0.0;  // seeded from origin-adjacent state
    ++app_updates_;
    return out;
  }

  const UpdateContext ctx{
      .system = vivaldi_.coordinate(),
      .nearest = nearest_coord_.initialized() ? &nearest_coord_ : nullptr,
      .now_s = now_s,
  };
  const Coordinate app_before = app_coord_;
  out.app_updated = heuristic_->on_system_update(ctx, app_coord_);
  if (out.app_updated) {
    out.app_displacement_ms = app_coord_.displacement_from(app_before);
    app_error_ = vivaldi_.error_estimate();
    ++app_updates_;
  }
  return out;
}

std::size_t NCClient::memory_bytes() const noexcept {
  std::size_t bytes = sizeof(*this) + slab_.capacity() * sizeof(LinkState) +
                      slot_of_.memory_bytes() +
                      free_slots_.capacity() * sizeof(std::uint32_t);
  // Parked filters stay allocated (that is the point of the pool), so every
  // slab slot's filter counts whether or not a remote occupies it.
  for (const LinkState& s : slab_)
    if (s.filter) bytes += s.filter->memory_bytes();
  return bytes;
}

}  // namespace nc

#include "core/neighbor_set.hpp"

#include "common/check.hpp"

namespace nc {

NeighborSet::NeighborSet(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_(Rng::derived(seed, rngstream::kNeighbor)) {
  NC_CHECK_MSG(capacity >= 1, "capacity must be >= 1");
}

bool NeighborSet::add(NodeId id) {
  NC_CHECK_MSG(id != kInvalidNode && id >= 0, "invalid neighbor id");
  if (contains(id)) return false;
  if (order_.size() < capacity_) {
    index_.insert(static_cast<std::uint32_t>(id),
                  static_cast<std::uint32_t>(order_.size()));
    order_.push_back(id);
    return true;
  }
  // Full: replace a uniformly random member, keeping its round-robin slot so
  // the cursor's cycle length is undisturbed.
  const auto victim_idx =
      static_cast<std::size_t>(rng_.uniform_int(order_.size()));
  index_.erase(static_cast<std::uint32_t>(order_[victim_idx]));
  order_[victim_idx] = id;
  index_.insert(static_cast<std::uint32_t>(id),
                static_cast<std::uint32_t>(victim_idx));
  return true;
}

std::optional<NodeId> NeighborSet::next_round_robin() {
  if (order_.empty()) return std::nullopt;
  if (cursor_ >= order_.size()) cursor_ = 0;
  return order_[cursor_++];
}

std::optional<NodeId> NeighborSet::random_neighbor() {
  if (order_.empty()) return std::nullopt;
  return order_[static_cast<std::size_t>(rng_.uniform_int(order_.size()))];
}

}  // namespace nc

#include "core/vivaldi.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace nc {

namespace {

Coordinate initial_coordinate(const VivaldiConfig& config) {
  if (!config.use_height) return Coordinate::origin(config.dim);
  return Coordinate(Vec::zero(config.dim), config.initial_height_ms);
}

}  // namespace

Vivaldi::Vivaldi(const VivaldiConfig& config, std::uint64_t node_seed)
    : config_(config),
      coord_(initial_coordinate(config)),
      error_(config.initial_error),
      rng_(Rng::derived(config.seed, node_seed)) {
  NC_CHECK_MSG(config.dim >= 1 && config.dim <= kMaxDim, "bad dimension");
  NC_CHECK_MSG(config.cc > 0.0 && config.cc <= 1.0, "cc out of (0,1]");
  NC_CHECK_MSG(config.ce > 0.0 && config.ce <= 1.0, "ce out of (0,1]");
  NC_CHECK_MSG(config.initial_error > 0.0 && config.initial_error <= config.max_error,
               "bad initial error");
  NC_CHECK_MSG(!config.use_height || config.initial_height_ms > 0.0,
               "initial height must be positive");
}

VivaldiSample Vivaldi::observe(const Coordinate& remote, double remote_error,
                               double rtt_ms) {
  NC_CHECK_MSG(rtt_ms > 0.0, "rtt must be positive");
  NC_CHECK_MSG(remote.dim() == config_.dim, "remote coordinate dimension mismatch");
  const double rtt = std::max(rtt_ms, config_.min_rtt_ms);
  ++observations_;

  VivaldiSample out;

  const double dist = coord_.distance_to(remote);
  double gap = rtt - dist;  // positive: spring compressed, push apart

  // Confidence building: within the measurement-error margin, the predicted
  // and observed latency are considered equal.
  if (config_.confidence_margin_ms > 0.0 &&
      std::fabs(gap) <= config_.confidence_margin_ms) {
    gap = 0.0;
    out.within_margin = true;
  }

  const double eps = std::fabs(gap) / rtt;
  out.relative_error = eps;

  // Observation weight: how uncertain am I relative to the remote node?
  const double sum_err = error_ + std::max(0.0, remote_error);
  const double w = sum_err > 0.0 ? error_ / sum_err : 0.0;

  // Adaptive EWMA of the local error estimate.
  const double alpha = config_.ce * w;
  error_ = std::clamp(alpha * eps + (1.0 - alpha) * error_, 0.0, config_.max_error);

  // Spring force on the coordinate.
  double delta = config_.cc * w;
  if (config_.delaunois_damping > 0.0) {
    delta *= config_.delaunois_damping /
             (config_.delaunois_damping + static_cast<double>(observations_));
  }

  if (gap == 0.0 || delta == 0.0) return out;

  // Direction of the push. With heights, the difference vector's "height"
  // component is the sum of both heights (p2psim semantics): a stretching
  // spring lifts the node off the plane as well as moving it in-plane. The
  // full unit direction is (dx, h_i + h_j) / (||dx|| + h_i + h_j).
  Vec spatial_dir = coord_.position() - remote.position();
  double spatial_norm = spatial_dir.norm();
  if (spatial_norm == 0.0) {
    // Spatially co-located (e.g. everyone starts at the origin): pick a
    // random in-plane direction to break the symmetry, unit length.
    spatial_dir = rng_.unit_vector(config_.dim);
    spatial_norm = 1.0;
  }
  const double height_component =
      config_.use_height ? coord_.height() + remote.height() : 0.0;
  const double norm = spatial_norm + height_component;

  const double magnitude = delta * gap;
  Vec spatial_move = spatial_dir * (magnitude / norm);
  const double height_move =
      config_.use_height ? magnitude * height_component / norm : 0.0;

  if (config_.gravity_rho > 0.0) {
    // Pull toward the origin by (||x||/rho)^2 ms, never overshooting it.
    const Vec pos = coord_.position();
    const double r = pos.norm();
    if (r > 0.0) {
      const double ratio = r / config_.gravity_rho;
      const double pull = std::min(ratio * ratio, r);
      spatial_move -= pos * (pull / r);
    }
  }

  const Coordinate before = coord_;
  coord_.apply_displacement(spatial_move, height_move, config_.min_height_ms);
  out.displacement_ms = coord_.displacement_from(before);
  NC_ASSERT(coord_.position().all_finite());
  return out;
}

void Vivaldi::reset() {
  coord_ = initial_coordinate(config_);
  error_ = config_.initial_error;
  observations_ = 0;
}

}  // namespace nc

// NCClient: the complete per-node coordinate subsystem as a black box
// (paper Sec. V intro): raw RTT samples go in; a stable application
// coordinate plus a continuously-evolving system coordinate come out.
//
// Pipeline per observation of remote node j:
//   raw rtt --(per-link LatencyFilter)--> filtered rtt
//           --(Vivaldi update)----------> system coordinate c_s
//           --(UpdateHeuristic)---------> application coordinate c_a
//
// The client also tracks the approximate nearest neighbor (lowest filtered
// RTT seen so far), which the RELATIVE heuristic uses as its local scale,
// and caps per-link filter state with clock-hand (second-chance) eviction
// so that gossip-discovered neighbor churn cannot grow memory without
// bound: each observation sets the link's reference bit, and when the slab
// is full a circular hand sweeps slots, clearing set bits and evicting the
// first unreferenced link it finds — O(1) amortized instead of the
// O(max_tracked_links) oldest-timestamp scan it replaces.
//
// Per-link state is SLAB-allocated (PR 5): a remote-id -> slot index
// replaces the per-observation hash lookup that topped the profile
// (~16% of an online run, find + first-contact filter allocation in
// link_for), and evicted slots return their filter instance to a per-client
// pool (reset, not destroyed), so steady-state neighbor churn allocates
// nothing.
//
// The index itself is COMPACT (PR 7): a CompactSlotIndex bounded by the
// live link count instead of the dense array that grew to the largest
// remote id seen. The dense form made aggregate index memory O(n^2) across
// n clients — the last O(n) per-client state standing between the engine
// and 100k+-node runs — where the compact table is O(max_tracked_links)
// because eviction unhooks its entry, so the table can never outgrow the
// slab it points into.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/compact_index.hpp"
#include "core/coordinate.hpp"
#include "core/filters/filter_config.hpp"
#include "core/heuristics/heuristic_config.hpp"
#include "core/node_id.hpp"
#include "core/vivaldi.hpp"

namespace nc {

struct NCClientConfig {
  VivaldiConfig vivaldi;
  FilterConfig filter;          // default: MP(4, 25)
  HeuristicConfig heuristic;    // default: ENERGY(tau=8, k=32)
  /// Maximum remote nodes with live filter state; 0 = unbounded.
  std::size_t max_tracked_links = 8192;
};

/// What one call to observe() did.
struct ObservationOutcome {
  /// Filter output fed to Vivaldi; nullopt if the sample was absorbed
  /// (filter not yet primed, or rejected by a threshold filter).
  std::optional<double> filtered_rtt_ms;
  /// True when Vivaldi ran (filtered_rtt_ms engaged).
  bool vivaldi_updated = false;
  /// Relative error of the Vivaldi sample (against the filtered rtt).
  double sample_relative_error = 0.0;
  /// How far the system coordinate moved (ms), for stability accounting.
  double system_displacement_ms = 0.0;
  /// True when the application coordinate changed this observation.
  bool app_updated = false;
  /// How far the application coordinate moved (0 unless app_updated).
  double app_displacement_ms = 0.0;
};

class NCClient {
 public:
  NCClient(NodeId id, const NCClientConfig& config);

  /// Feeds one latency observation of `remote` (its advertised coordinate
  /// and error estimate plus a raw RTT sample), advancing all three stages.
  ObservationOutcome observe(NodeId remote, const Coordinate& remote_coord,
                             double remote_error, double raw_rtt_ms, double now_s);

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] const Coordinate& system_coordinate() const noexcept {
    return vivaldi_.coordinate();
  }
  /// The stable coordinate applications should use. Equals the system
  /// coordinate until the first Vivaldi update, then evolves per heuristic.
  [[nodiscard]] const Coordinate& application_coordinate() const noexcept {
    return app_initialized_ ? app_coord_ : vivaldi_.coordinate();
  }
  [[nodiscard]] double error_estimate() const noexcept { return vivaldi_.error_estimate(); }
  [[nodiscard]] double confidence() const noexcept { return vivaldi_.confidence(); }
  /// Error estimate AS OF the last application-coordinate update — the
  /// value that describes application_coordinate(), where error_estimate()
  /// describes the continuously-moving system coordinate. Equals the live
  /// estimate until the first update (same fallback as
  /// application_coordinate()). Published snapshots carry this pair, so a
  /// node's published state only changes when its application state does.
  [[nodiscard]] double app_error() const noexcept {
    return app_initialized_ ? app_error_ : vivaldi_.error_estimate();
  }
  [[nodiscard]] double app_confidence() const noexcept { return 1.0 - app_error(); }

  /// Approximate nearest neighbor by filtered RTT, if any sample passed the
  /// filter yet.
  [[nodiscard]] std::optional<NodeId> nearest_neighbor() const noexcept {
    if (nearest_id_ == kInvalidNode) return std::nullopt;
    return nearest_id_;
  }
  [[nodiscard]] double nearest_rtt_ms() const noexcept { return nearest_rtt_ms_; }

  [[nodiscard]] std::uint64_t observation_count() const noexcept { return observations_; }
  [[nodiscard]] std::uint64_t app_update_count() const noexcept { return app_updates_; }
  [[nodiscard]] std::uint64_t absorbed_sample_count() const noexcept { return absorbed_; }
  [[nodiscard]] std::size_t tracked_link_count() const noexcept { return active_links_; }
  [[nodiscard]] std::uint64_t evicted_link_count() const noexcept { return evictions_; }
  /// Filter instances parked in the reuse pool (free slab slots).
  [[nodiscard]] std::size_t pooled_filter_count() const noexcept {
    return free_slots_.size();
  }

  [[nodiscard]] const NCClientConfig& config() const noexcept { return config_; }

  /// Bytes of per-client state (slab + filters + id maps), for the per-run
  /// memory budget report.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  struct LinkState {
    std::unique_ptr<LatencyFilter> filter;
    Coordinate last_coord;
    double last_seen_s = 0.0;
    /// Which remote occupies this slab slot; kInvalidNode = free (filter
    /// parked for reuse).
    NodeId remote = kInvalidNode;
    /// Second-chance reference bit: set on every observation of the link,
    /// cleared as the eviction hand sweeps past.
    std::uint8_t ref = 0;
  };

  LinkState& link_for(NodeId remote, double now_s);
  void evict_one_link();

  NodeId id_;
  NCClientConfig config_;
  Vivaldi vivaldi_;
  std::unique_ptr<UpdateHeuristic> heuristic_;
  Coordinate app_coord_;
  double app_error_ = 1.0;  // error_estimate() at the last app update
  bool app_initialized_ = false;

  /// Slab of link states; active count bounded by max_tracked_links.
  std::vector<LinkState> slab_;
  /// remote id -> slab slot, bounded by the live link count (eviction
  /// erases its entry) — O(max_tracked_links) bytes regardless of how many
  /// distinct remotes the client ever hears about.
  CompactSlotIndex slot_of_;
  /// Recycled slab slots, filters parked inside (reset on reuse).
  std::vector<std::uint32_t> free_slots_;
  /// Clock-hand position of the second-chance eviction sweep.
  std::size_t clock_hand_ = 0;
  std::size_t active_links_ = 0;
  NodeId nearest_id_ = kInvalidNode;
  double nearest_rtt_ms_ = 0.0;
  Coordinate nearest_coord_;

  std::uint64_t observations_ = 0;
  std::uint64_t app_updates_ = 0;
  std::uint64_t absorbed_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace nc

// Neighbor management for the sampling loop (paper Sec. II).
//
// Each node keeps a set of neighbors it samples in round-robin order and
// learns new neighbors through gossip (every sampling message carries one
// extra node address). Capacity is bounded; once full, new additions replace
// a uniformly random existing neighbor so long-running nodes keep mixing.
//
// Membership is a CompactSlotIndex (id -> round-robin slot) bounded by the
// set's capacity. The bitmap it replaces answered contains() in one word
// probe but cost n/8 bytes PER NODE — n^2/8 aggregate (125 GB at 1M nodes)
// for a set that never holds more than `capacity` members. The compact
// table keeps add() — one of the hottest calls in the simulators — at a
// couple of cache probes on a flat array while memory stays O(capacity):
// replacement erases the victim's entry (backward-shift, no tombstones), so
// the table can never outgrow the membership it indexes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/compact_index.hpp"
#include "common/rng.hpp"
#include "core/node_id.hpp"

namespace nc {

class NeighborSet {
 public:
  /// capacity >= 1; `seed` drives replacement choices deterministically.
  NeighborSet(std::size_t capacity, std::uint64_t seed);

  /// Adds a neighbor; returns true if the set changed. Adding a node already
  /// present (or self, passed as `self`) is a no-op.
  bool add(NodeId id);

  [[nodiscard]] bool contains(NodeId id) const noexcept {
    return index_.find(static_cast<std::uint32_t>(id)).has_value();
  }
  [[nodiscard]] std::size_t size() const noexcept { return order_.size(); }
  [[nodiscard]] bool empty() const noexcept { return order_.empty(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Next neighbor in round-robin order; nullopt when empty.
  [[nodiscard]] std::optional<NodeId> next_round_robin();

  /// A uniformly random neighbor (for gossip payloads); nullopt when empty.
  [[nodiscard]] std::optional<NodeId> random_neighbor();

  /// All current neighbors, in round-robin order.
  [[nodiscard]] const std::vector<NodeId>& members() const noexcept { return order_; }

  /// Heap bytes held (order list + membership index): O(capacity), never a
  /// function of the id space — the bound the 1M-node budget relies on.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return sizeof(*this) + order_.capacity() * sizeof(NodeId) +
           index_.memory_bytes();
  }

 private:
  std::size_t capacity_;
  std::vector<NodeId> order_;
  /// id -> round-robin slot, bounded by `capacity_` live entries.
  CompactSlotIndex index_;
  std::size_t cursor_ = 0;
  Rng rng_;
};

}  // namespace nc

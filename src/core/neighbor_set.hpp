// Neighbor management for the sampling loop (paper Sec. II).
//
// Each node keeps a set of neighbors it samples in round-robin order and
// learns new neighbors through gossip (every sampling message carries one
// extra node address). Capacity is bounded; once full, new additions replace
// a uniformly random existing neighbor so long-running nodes keep mixing.
//
// Membership is a bitmap over node ids rather than a hash set: add() runs
// once per delivered gossip message — one of the hottest calls in the
// simulators — and a bitmap answers it with one word probe and zero heap
// traffic, where the hash set paid an allocation per replacement
// (erase + insert of set nodes) in the steady state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "core/node_id.hpp"

namespace nc {

class NeighborSet {
 public:
  /// capacity >= 1; `seed` drives replacement choices deterministically.
  NeighborSet(std::size_t capacity, std::uint64_t seed);

  /// Adds a neighbor; returns true if the set changed. Adding a node already
  /// present (or self, passed as `self`) is a no-op.
  bool add(NodeId id);

  [[nodiscard]] bool contains(NodeId id) const noexcept {
    const auto word = static_cast<std::size_t>(id) >> 6;
    return word < member_bits_.size() &&
           ((member_bits_[word] >> (static_cast<std::size_t>(id) & 63)) & 1u) != 0;
  }
  [[nodiscard]] std::size_t size() const noexcept { return order_.size(); }
  [[nodiscard]] bool empty() const noexcept { return order_.empty(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Next neighbor in round-robin order; nullopt when empty.
  [[nodiscard]] std::optional<NodeId> next_round_robin();

  /// A uniformly random neighbor (for gossip payloads); nullopt when empty.
  [[nodiscard]] std::optional<NodeId> random_neighbor();

  /// All current neighbors, in round-robin order.
  [[nodiscard]] const std::vector<NodeId>& members() const noexcept { return order_; }

 private:
  void set_bit(NodeId id);
  void clear_bit(NodeId id) noexcept;

  std::size_t capacity_;
  std::vector<NodeId> order_;
  /// Membership bitmap, grown to cover the largest id seen (ids are dense
  /// node indices, so this settles at num_nodes/8 bytes and never
  /// reallocates again).
  std::vector<std::uint64_t> member_bits_;
  std::size_t cursor_ = 0;
  Rng rng_;
};

}  // namespace nc

// Neighbor management for the sampling loop (paper Sec. II).
//
// Each node keeps a set of neighbors it samples in round-robin order and
// learns new neighbors through gossip (every sampling message carries one
// extra node address). Capacity is bounded; once full, new additions replace
// a uniformly random existing neighbor so long-running nodes keep mixing.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "core/node_id.hpp"

namespace nc {

class NeighborSet {
 public:
  /// capacity >= 1; `seed` drives replacement choices deterministically.
  NeighborSet(std::size_t capacity, std::uint64_t seed);

  /// Adds a neighbor; returns true if the set changed. Adding a node already
  /// present (or self, passed as `self`) is a no-op.
  bool add(NodeId id);

  [[nodiscard]] bool contains(NodeId id) const { return members_.count(id) > 0; }
  [[nodiscard]] std::size_t size() const noexcept { return order_.size(); }
  [[nodiscard]] bool empty() const noexcept { return order_.empty(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Next neighbor in round-robin order; nullopt when empty.
  [[nodiscard]] std::optional<NodeId> next_round_robin();

  /// A uniformly random neighbor (for gossip payloads); nullopt when empty.
  [[nodiscard]] std::optional<NodeId> random_neighbor();

  /// All current neighbors, in round-robin order.
  [[nodiscard]] const std::vector<NodeId>& members() const noexcept { return order_; }

 private:
  std::size_t capacity_;
  std::vector<NodeId> order_;
  std::unordered_set<NodeId> members_;
  std::size_t cursor_ = 0;
  Rng rng_;
};

}  // namespace nc

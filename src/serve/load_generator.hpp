// Open-loop closed-world load generator for the CoordinateService.
//
// OPEN LOOP: each client thread schedules query arrivals by WALL CLOCK at
// its share of the aggregate rate (Poisson inter-arrivals), independent of
// when earlier queries complete, and measures each query's latency from its
// SCHEDULED arrival time — so when the service stalls, the queue that
// builds up is charged to the stalled requests. A closed loop (issue, wait,
// issue) would silently absorb exactly the stalls a tail-latency benchmark
// exists to expose: the coordinated-omission mistake HdrHistogram-style
// harnesses guard against.
//
// CLOSED WORLD: the query population is the fixed node id space [0,
// num_nodes) of the deployment under test; operands are drawn uniformly
// from each thread's own deterministic Rng stream (Rng::derived(seed,
// thread)), so two runs with equal config issue the same query sequence per
// thread — only the timing is physical.
//
// Each thread owns its CoordinateService instance and LatencyRecorder
// (coordinate_service.hpp's thread contract); the run merges them into one
// LoadReport after join. Engine-concurrency comes from the caller: start
// the engine on its own thread with publish_snapshots on, then call
// run_open_loop against its publisher (bench/serving.cpp does exactly
// this).
#pragma once

#include <atomic>
#include <cstdint>

#include "estimate/snapshot.hpp"
#include "serve/coordinate_service.hpp"
#include "serve/recorder.hpp"

namespace nc::serve {

/// Query mix (fractions of issued queries; remainder goes to distance).
struct LoadMix {
  double nearest_k = 0.08;
  double centroid = 0.02;
};

struct LoadConfig {
  /// Open-loop client threads, each with its own service instance.
  int clients = 2;
  /// Aggregate arrival rate across all clients (queries per second).
  double rate_qps = 5000.0;
  /// Wall-clock run length; the loop also stops when `stop` (run_open_loop
  /// argument) becomes true.
  double duration_s = 10.0;
  int k = 5;             // nearest-k fan-out
  int centroid_size = 8; // replica-group size for centroid queries
  LoadMix mix;
  std::uint64_t seed = 1;
};

struct LoadReport {
  LatencyRecorder latency;       // per-query, from scheduled arrival
  ServiceStats service;          // merged per-thread service counters
  std::uint64_t issued = 0;      // queries fired
  std::uint64_t answered = 0;    // non-empty answers
  double elapsed_s = 0.0;        // wall clock, start to last thread joined
  std::uint64_t first_version = 0;  // snapshot version at start (0: none)
  std::uint64_t last_version = 0;   // newest version any thread observed

  /// Achieved throughput (issued queries per wall second).
  [[nodiscard]] double qps() const noexcept {
    return elapsed_s > 0.0 ? static_cast<double>(issued) / elapsed_s : 0.0;
  }
};

/// Runs the open-loop workload against `source` covering nodes [0,
/// num_nodes). Blocks until config.duration_s elapses or `stop` (optional)
/// becomes true; returns the merged report.
[[nodiscard]] LoadReport run_open_loop(const est::SnapshotPublisher& source,
                                       int num_nodes, const LoadConfig& config,
                                       const std::atomic<bool>* stop = nullptr);

}  // namespace nc::serve

#include "serve/load_generator.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace nc::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Stream-domain tag for the load threads' operand draws ("serv").
constexpr std::uint64_t kServeStream = 0x73657276ULL;

struct ThreadResult {
  LatencyRecorder latency;
  ServiceStats service;
  std::uint64_t issued = 0;
  std::uint64_t answered = 0;
  std::uint64_t first_version = 0;
  std::uint64_t last_version = 0;
};

void client_loop(const est::SnapshotPublisher& source, int num_nodes,
                 const LoadConfig& config, const std::atomic<bool>* stop,
                 int thread_idx, Clock::time_point t0, ThreadResult& result) {
  CoordinateService service(&source, num_nodes);
  Rng rng = Rng::derived(config.seed, kServeStream,
                         static_cast<std::uint64_t>(thread_idx));
  result.first_version = source.published();

  const double per_thread_qps =
      config.rate_qps / static_cast<double>(config.clients);
  const auto deadline =
      t0 + std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(config.duration_s));

  const auto draw_node = [&] {
    return static_cast<NodeId>(
        rng.uniform_int(static_cast<std::uint64_t>(num_nodes)));
  };
  std::vector<CoordinateService::Neighbor> neighbors;
  std::vector<NodeId> group(static_cast<std::size_t>(config.centroid_size));

  // Open loop: the next arrival is scheduled on the thread's own Poisson
  // clock regardless of when the previous query finished. If the service
  // (or this core) falls behind, `next` drifts into the past and every
  // late query's latency includes its queue delay — that is the point.
  double offset_s = rng.exponential(per_thread_qps);
  for (;;) {
    const auto next = t0 + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(offset_s));
    if (next >= deadline) break;
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) break;
    if (const auto now = Clock::now(); next > now)
      std::this_thread::sleep_until(next);

    // The query: mix drawn per arrival, operands uniform over the world.
    const double kind = rng.uniform();
    bool got_answer = false;
    if (kind < config.mix.nearest_k) {
      service.nearest_k(draw_node(), config.k, neighbors);
      got_answer = !neighbors.empty();
    } else if (kind < config.mix.nearest_k + config.mix.centroid) {
      for (NodeId& id : group) id = draw_node();
      got_answer = service.centroid(group).has_value();
    } else {
      NodeId a = draw_node();
      NodeId b = draw_node();
      if (a == b) b = static_cast<NodeId>((b + 1) % num_nodes);
      got_answer = service.distance_ms(a, b).has_value();
    }

    const auto done = Clock::now();
    const auto scheduled_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(done - next);
    result.latency.record(
        scheduled_ns.count() > 0
            ? static_cast<std::uint64_t>(scheduled_ns.count())
            : 0);
    ++result.issued;
    if (got_answer) ++result.answered;

    offset_s += rng.exponential(per_thread_qps);
  }
  result.service = service.stats();
  result.last_version = service.snapshot_version();
}

}  // namespace

LoadReport run_open_loop(const est::SnapshotPublisher& source, int num_nodes,
                         const LoadConfig& config,
                         const std::atomic<bool>* stop) {
  NC_CHECK_MSG(config.clients >= 1, "need at least one client thread");
  NC_CHECK_MSG(config.rate_qps > 0.0, "rate must be positive");
  NC_CHECK_MSG(config.duration_s > 0.0, "duration must be positive");
  NC_CHECK_MSG(num_nodes >= 2, "need at least two nodes to query");
  NC_CHECK_MSG(config.centroid_size >= 1, "empty centroid group");
  NC_CHECK_MSG(config.mix.nearest_k >= 0.0 && config.mix.centroid >= 0.0 &&
                   config.mix.nearest_k + config.mix.centroid <= 1.0,
               "query mix fractions must be a sub-distribution");

  const auto t0 = Clock::now();
  std::vector<ThreadResult> results(static_cast<std::size_t>(config.clients));
  {
    std::vector<std::thread> threads;
    threads.reserve(results.size());
    for (int c = 0; c < config.clients; ++c)
      threads.emplace_back(client_loop, std::cref(source), num_nodes,
                           std::cref(config), stop, c, t0,
                           std::ref(results[static_cast<std::size_t>(c)]));
    for (std::thread& t : threads) t.join();
  }

  LoadReport report;
  report.elapsed_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  report.first_version = results.empty() ? 0 : results.front().first_version;
  for (const ThreadResult& r : results) {
    report.latency.merge(r.latency);
    report.service.add(r.service);
    report.issued += r.issued;
    report.answered += r.answered;
    report.first_version = std::min(report.first_version, r.first_version);
    report.last_version = std::max(report.last_version, r.last_version);
  }
  return report;
}

}  // namespace nc::serve

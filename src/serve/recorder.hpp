// HDR-style tail-latency recorder: p50/p95/p99/p999 + throughput.
//
// The serving layer's measurement instrument, shaped after the harnesses in
// SNIPPETS.md — sphinx's recorder.h (percentiles over recorded request
// latencies, reported as p50/p95/p99 plus throughput) and brubeck's
// log-bucketed histogram (PC_50..PC_999) — but streaming: sphinx sorts the
// full sample vector, which is O(n log n) at report time and O(n) memory
// under an open-loop load that records millions of requests. This recorder
// is the HdrHistogram compromise: log2 buckets with 64 linear sub-buckets
// per octave, giving <= ~0.8% relative value error over [1 ns, ~4.6 h] in
// a fixed ~30 KB table, O(1) record, mergeable across load threads.
//
// Thread contract: record() is single-threaded (one recorder per load
// thread); merge() combines thread-local recorders after join.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

namespace nc::serve {

class LatencyRecorder {
 public:
  LatencyRecorder() : counts_(kSlots, 0) {}

  /// Records one latency sample in nanoseconds. O(1), no allocation.
  void record(std::uint64_t nanos) noexcept {
    ++count_;
    total_ns_ += nanos;
    max_ns_ = std::max(max_ns_, nanos);
    min_ns_ = count_ == 1 ? nanos : std::min(min_ns_, nanos);
    ++counts_[index_of(nanos)];
  }

  /// Adds another recorder's samples (after its recording thread joined).
  void merge(const LatencyRecorder& o) noexcept {
    for (std::size_t i = 0; i < kSlots; ++i) counts_[i] += o.counts_[i];
    if (o.count_ > 0) {
      min_ns_ = count_ == 0 ? o.min_ns_ : std::min(min_ns_, o.min_ns_);
      max_ns_ = std::max(max_ns_, o.max_ns_);
      count_ += o.count_;
      total_ns_ += o.total_ns_;
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t max_ns() const noexcept { return max_ns_; }
  [[nodiscard]] std::uint64_t min_ns() const noexcept {
    return count_ == 0 ? 0 : min_ns_;
  }
  [[nodiscard]] double mean_ns() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(total_ns_) /
                             static_cast<double>(count_);
  }

  /// Value at percentile `p` in [0, 100] (ns; bucket-representative, within
  /// the table's ~0.8% relative error). 0 with no samples.
  [[nodiscard]] double percentile_ns(double p) const noexcept {
    if (count_ == 0) return 0.0;
    const double want = p / 100.0 * static_cast<double>(count_);
    std::uint64_t rank = static_cast<std::uint64_t>(want);
    if (static_cast<double>(rank) < want || rank == 0) ++rank;  // ceil, >= 1
    rank = std::min(rank, count_);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kSlots; ++i) {
      seen += counts_[i];
      if (seen >= rank) return representative(i);
    }
    return static_cast<double>(max_ns_);  // unreachable
  }

  [[nodiscard]] double p50_us() const noexcept { return percentile_ns(50.0) / 1e3; }
  [[nodiscard]] double p95_us() const noexcept { return percentile_ns(95.0) / 1e3; }
  [[nodiscard]] double p99_us() const noexcept { return percentile_ns(99.0) / 1e3; }
  [[nodiscard]] double p999_us() const noexcept { return percentile_ns(99.9) / 1e3; }

 private:
  /// 64 linear sub-buckets per power-of-two octave: values < 64 map
  /// exactly; above, the top 7 significant bits select the slot.
  static constexpr int kSubBucketBits = 6;
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBucketBits;
  // Highest msb is 63 -> shift 57 -> octave 58; slots = (58 + 1) * 64.
  static constexpr std::size_t kSlots = 59 * kSubBuckets;

  [[nodiscard]] static std::size_t index_of(std::uint64_t v) noexcept {
    const int msb = 63 - std::countl_zero(v | 1);
    if (msb < kSubBucketBits) return static_cast<std::size_t>(v);
    const int shift = msb - kSubBucketBits;
    return (static_cast<std::size_t>(shift) + 1) * kSubBuckets +
           static_cast<std::size_t>((v >> shift) - kSubBuckets);
  }

  /// Midpoint of slot i's value range (exact for the first two octaves).
  [[nodiscard]] static double representative(std::size_t i) noexcept {
    if (i < 2 * kSubBuckets) return static_cast<double>(i);
    const std::uint64_t octave = i / kSubBuckets;
    const std::uint64_t within = i % kSubBuckets;
    const int shift = static_cast<int>(octave) - 1;
    const std::uint64_t low = (kSubBuckets + within) << shift;
    const std::uint64_t width = std::uint64_t{1} << shift;
    return static_cast<double>(low + (width >> 1));
  }

  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t total_ns_ = 0;
  std::uint64_t min_ns_ = 0;
  std::uint64_t max_ns_ = 0;
};

}  // namespace nc::serve

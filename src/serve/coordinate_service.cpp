#include "serve/coordinate_service.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace nc::serve {

CoordinateService::CoordinateService(const est::SnapshotPublisher* source,
                                     int num_nodes)
    : num_nodes_(num_nodes),
      estimator_(est::SnapshotEstimatorConfig{}, source, num_nodes) {
  NC_CHECK_MSG(source != nullptr, "CoordinateService needs a snapshot source");
  NC_CHECK_MSG(num_nodes >= 1, "need at least one node");
}

const est::EpochSnapshot* CoordinateService::view() {
  const est::EpochSnapshot* snap = estimator_.view().refresh();
  if (snap) last_version_ = snap->version;
  return snap;
}

std::optional<double> CoordinateService::distance_ms(NodeId a, NodeId b) {
  NC_CHECK_MSG(a >= 0 && a < num_nodes_ && b >= 0 && b < num_nodes_,
               "distance query endpoint out of range");
  ++stats_.queries;
  ++stats_.distance_queries;
  (void)view();  // refresh last_version_
  // The estimator's `now` only drives fallback-staleness introspection; the
  // service feeds no observations, so any value works — use 0.
  const std::optional<double> d = estimator_.estimate_rtt(a, b, 0.0);
  if (!d.has_value()) ++stats_.empty_answers;
  return d;
}

void CoordinateService::nearest_k(NodeId origin, int k,
                                  std::vector<Neighbor>& out,
                                  bool include_down) {
  NC_CHECK_MSG(origin >= 0 && origin < num_nodes_,
               "nearest-k origin out of range");
  NC_CHECK_MSG(k >= 0, "negative k");
  ++stats_.queries;
  ++stats_.nearest_queries;
  out.clear();
  const est::EpochSnapshot* snap = view();
  if (!snap || k == 0) {
    if (!snap) ++stats_.empty_answers;
    return;
  }
  const auto& nodes = snap->nodes;
  const auto o = static_cast<std::size_t>(origin);
  if (o >= nodes.size() || !nodes[o].placed()) {
    ++stats_.empty_answers;
    return;
  }
  const Coordinate& from = nodes[o].app;
  scratch_.clear();
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    if (id == o || !nodes[id].placed()) continue;
    if (!include_down && nodes[id].up == 0) continue;
    scratch_.push_back(
        {static_cast<NodeId>(id), from.distance_to(nodes[id].app)});
  }
  const auto closer = [](const Neighbor& x, const Neighbor& y) {
    return x.rtt_ms != y.rtt_ms ? x.rtt_ms < y.rtt_ms : x.id < y.id;
  };
  const std::size_t take =
      std::min(scratch_.size(), static_cast<std::size_t>(k));
  std::partial_sort(scratch_.begin(),
                    scratch_.begin() + static_cast<std::ptrdiff_t>(take),
                    scratch_.end(), closer);
  out.assign(scratch_.begin(),
             scratch_.begin() + static_cast<std::ptrdiff_t>(take));
  if (out.empty()) ++stats_.empty_answers;
}

std::optional<Coordinate> CoordinateService::centroid(
    const std::vector<NodeId>& ids) {
  ++stats_.queries;
  ++stats_.centroid_queries;
  const est::EpochSnapshot* snap = view();
  if (!snap) {
    ++stats_.empty_answers;
    return std::nullopt;
  }
  std::optional<Vec> sum;
  bool with_height = false;
  int placed = 0;
  for (const NodeId id : ids) {
    NC_CHECK_MSG(id >= 0 && id < num_nodes_, "centroid id out of range");
    const auto i = static_cast<std::size_t>(id);
    if (i >= snap->nodes.size() || !snap->nodes[i].placed()) continue;
    const Vec v = snap->nodes[i].app.as_vec();
    if (sum.has_value()) {
      *sum += v;
    } else {
      sum = v;
      with_height = snap->nodes[i].app.has_height();
    }
    ++placed;
  }
  if (placed == 0) {
    ++stats_.empty_answers;
    return std::nullopt;
  }
  return Coordinate::from_vec(*sum / static_cast<double>(placed), with_height);
}

}  // namespace nc::serve

// CoordinateService: the query front end over published epoch snapshots.
//
// The application surface the paper's embedding exists for (and the shape
// of the anycast-over-coordinates systems in PAPERS.md): clients ask
// "how far is a from b", "which k nodes are nearest to me", "where is the
// center of this replica group" — and the answers come from LIVE engine
// state, concurrently with the simulation advancing, through the
// est::SnapshotPublisher seam (estimate/snapshot.hpp).
//
// Distance queries go through the existing LatencyEstimator interface (an
// owned SnapshotEstimator), so a service answer and an engine-side
// --backend=snapshot score are the same computation; nearest-k and centroid
// scan the snapshot directly (they need the whole frozen view, which is
// exactly what a snapshot is).
//
// Thread contract: a CoordinateService instance is NOT internally
// synchronized — it keeps per-instance query counters and a materialized
// SnapshotView — but it is cheap (a few vectors of num_nodes entries) and
// entirely read-only towards the engine, so the serving pattern is ONE
// INSTANCE PER CLIENT THREAD over the same publisher
// (serve/load_generator.cpp does exactly that). Every query refreshes the
// estimator's view: a cached-version no-op between publishes, one
// pointer-sized critical section when something new was published, and —
// in delta mode — an O(changed slots) apply instead of any O(n) work.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/coordinate.hpp"
#include "core/node_id.hpp"
#include "estimate/snapshot.hpp"
#include "estimate/snapshot_estimator.hpp"

namespace nc::serve {

/// Per-instance query counters (merge across per-thread instances with
/// add(); empty_answers counts queries that found no usable snapshot
/// state — before the first publish, or unplaced/down endpoints).
struct ServiceStats {
  std::uint64_t queries = 0;
  std::uint64_t distance_queries = 0;
  std::uint64_t nearest_queries = 0;
  std::uint64_t centroid_queries = 0;
  std::uint64_t empty_answers = 0;

  void add(const ServiceStats& o) noexcept {
    queries += o.queries;
    distance_queries += o.distance_queries;
    nearest_queries += o.nearest_queries;
    centroid_queries += o.centroid_queries;
    empty_answers += o.empty_answers;
  }
};

class CoordinateService {
 public:
  /// `source` is non-owning and must outlive the service; `num_nodes` is
  /// the id space queries may name.
  CoordinateService(const est::SnapshotPublisher* source, int num_nodes);

  struct Neighbor {
    NodeId id = kInvalidNode;
    double rtt_ms = 0.0;
  };

  /// Predicted RTT (ms) between two nodes, answered through the estimator
  /// seam; nullopt before any snapshot covers both endpoints.
  [[nodiscard]] std::optional<double> distance_ms(NodeId a, NodeId b);

  /// The up-to-k nearest placed nodes to `origin`'s own coordinate,
  /// ascending predicted RTT (ties by id), excluding origin itself. Nodes
  /// marked down are skipped unless `include_down`. Empty when origin is
  /// not yet placed (or nothing is published). `out` is overwritten —
  /// callers reuse it across queries to stay allocation-free.
  void nearest_k(NodeId origin, int k, std::vector<Neighbor>& out,
                 bool include_down = false);

  /// Coordinate centroid of the placed nodes among `ids` (replica-group
  /// placement: the point an operator should sit near); nullopt when none
  /// are placed.
  [[nodiscard]] std::optional<Coordinate> centroid(
      const std::vector<NodeId>& ids);

  /// Version of the snapshot the last query ran against (0 before any).
  [[nodiscard]] std::uint64_t snapshot_version() const noexcept {
    return last_version_;
  }
  [[nodiscard]] int num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] const ServiceStats& stats() const noexcept { return stats_; }

 private:
  /// Latest reconstructable snapshot, via the estimator's SnapshotView so
  /// scans and distance queries always agree on the epoch; nullptr before
  /// the first publish. Valid until the next view() call.
  [[nodiscard]] const est::EpochSnapshot* view();

  int num_nodes_;
  est::SnapshotEstimator estimator_;
  /// Scratch for nearest_k's candidate scan, reused across queries.
  std::vector<Neighbor> scratch_;
  ServiceStats stats_;
  std::uint64_t last_version_ = 0;
};

}  // namespace nc::serve

// Streaming synthetic-trace generator.
//
// Reproduces the paper's measurement methodology (Sec. III): every node
// sends one application-level UDP ping per `ping_interval_s` to its
// neighbors in round-robin order, cycling through all other nodes. Records
// stream out in global time order without materializing the trace, so
// three-day, 40M+-sample traces generate in seconds of CPU and O(nodes)
// memory. Lost pings and down nodes simply produce no record, which is why
// the paper's 269-node, 3-day trace holds 43M samples instead of the ~70M a
// perfect 1 Hz schedule would yield.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "latency/link_model.hpp"
#include "latency/trace.hpp"

namespace nc::lat {

struct TraceGenConfig {
  TopologyConfig topology;
  LinkModelConfig link_model;
  AvailabilityConfig availability;
  double duration_s = 4.0 * 3600.0;
  double ping_interval_s = 1.0;  // per-node ping period
  std::uint64_t seed = 1;
};

class TraceGenerator final : public TraceSource {
 public:
  explicit TraceGenerator(const TraceGenConfig& config);

  /// Next successful ping observation, in non-decreasing time order;
  /// nullopt once the configured duration is exhausted.
  [[nodiscard]] std::optional<TraceRecord> next() override;

  [[nodiscard]] int num_nodes() const override { return network_.topology().size(); }

  [[nodiscard]] const Topology& topology() const noexcept { return network_.topology(); }
  [[nodiscard]] LatencyNetwork& network() noexcept { return network_; }

  /// Successful observations emitted so far.
  [[nodiscard]] std::uint64_t produced() const noexcept { return produced_; }
  /// Ping attempts (successful or not) so far.
  [[nodiscard]] std::uint64_t attempts() const noexcept { return attempts_; }

 private:
  struct PingSlot {
    double t;
    NodeId src;
    [[nodiscard]] friend bool operator>(const PingSlot& a, const PingSlot& b) {
      return a.t != b.t ? a.t > b.t : a.src > b.src;
    }
  };

  [[nodiscard]] NodeId next_partner(NodeId src);

  TraceGenConfig config_;
  LatencyNetwork network_;
  std::priority_queue<PingSlot, std::vector<PingSlot>, std::greater<>> schedule_;
  std::vector<std::uint64_t> rr_counter_;  // per-node round-robin progress
  std::uint64_t produced_ = 0;
  std::uint64_t attempts_ = 0;
};

/// Generates a full trace to a binary file; returns records written.
std::uint64_t generate_trace_file(const TraceGenConfig& config,
                                  const std::string& path);

}  // namespace nc::lat

#include "latency/topology.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace nc::lat {

std::vector<RegionSpec> planetlab_regions() {
  // Centers chosen so pairwise distances approximate 2005-era continental
  // RTTs; z-offsets keep the space genuinely 3-D.
  return {
      {"us-east", Vec{0.0, 0.0, 0.0}, 9.0, 0.30},
      {"us-west", Vec{70.0, 0.0, 5.0}, 8.0, 0.18},
      {"europe", Vec{-85.0, 30.0, -5.0}, 10.0, 0.30},
      {"east-asia", Vec{185.0, -40.0, 0.0}, 9.0, 0.14},
      {"oceania", Vec{170.0, -160.0, 10.0}, 6.0, 0.04},
      {"s-america", Vec{40.0, 140.0, 0.0}, 6.0, 0.04},
  };
}

std::vector<RegionSpec> intercontinental_regions() {
  // Same latency-space embedding idea as planetlab_regions(), but with every
  // continent populated, balanced weights and wider in-region spreads, so a
  // large fraction of links sit in the 150-350 ms band.
  return {
      {"us-east", Vec{0.0, 0.0, 0.0}, 12.0, 0.16},
      {"us-west", Vec{70.0, 0.0, 5.0}, 12.0, 0.12},
      {"europe", Vec{-90.0, 35.0, -5.0}, 14.0, 0.18},
      {"east-asia", Vec{190.0, -45.0, 0.0}, 14.0, 0.16},
      {"south-asia", Vec{235.0, 60.0, -10.0}, 16.0, 0.12},
      {"oceania", Vec{175.0, -165.0, 10.0}, 12.0, 0.09},
      {"s-america", Vec{45.0, 150.0, 0.0}, 14.0, 0.09},
      {"africa", Vec{-60.0, 160.0, 5.0}, 16.0, 0.08},
  };
}

std::vector<RegionSpec> lan_cluster_regions() {
  return {{"lan", Vec{0.0, 0.0, 0.0}, 0.15, 1.0}};
}

Topology Topology::make(const TopologyConfig& config) {
  NC_CHECK_MSG(config.num_nodes >= 2, "need at least two nodes");
  NC_CHECK_MSG(config.dim >= 1 && config.dim <= kMaxDim, "bad dimension");
  const std::vector<RegionSpec> regions =
      config.regions.empty() ? planetlab_regions() : config.regions;
  NC_CHECK_MSG(!regions.empty(), "need at least one region");

  double total_weight = 0.0;
  for (const auto& r : regions) {
    NC_CHECK_MSG(r.weight >= 0.0, "negative region weight");
    NC_CHECK_MSG(r.center.dim() == config.dim, "region center dimension mismatch");
    total_weight += r.weight;
  }
  NC_CHECK_MSG(total_weight > 0.0, "total region weight must be positive");

  Topology t;
  t.dim_ = config.dim;
  t.min_base_rtt_ms_ = config.min_base_rtt_ms;
  t.inefficiency_max_ = config.inefficiency_max;
  t.seed_ = config.seed;
  t.positions_.reserve(static_cast<std::size_t>(config.num_nodes));
  t.heights_.reserve(static_cast<std::size_t>(config.num_nodes));
  t.region_.reserve(static_cast<std::size_t>(config.num_nodes));
  for (const auto& r : regions) t.region_names_.push_back(r.name);

  Rng rng = Rng::derived(config.seed, rngstream::kTopology);

  // Largest-remainder apportionment of nodes to regions keeps the mix exact.
  std::vector<int> counts(regions.size(), 0);
  {
    std::vector<double> exact(regions.size());
    int assigned = 0;
    for (std::size_t r = 0; r < regions.size(); ++r) {
      exact[r] = config.num_nodes * regions[r].weight / total_weight;
      counts[r] = static_cast<int>(exact[r]);
      assigned += counts[r];
    }
    while (assigned < config.num_nodes) {
      std::size_t best = 0;
      double best_frac = -1.0;
      for (std::size_t r = 0; r < regions.size(); ++r) {
        const double frac = exact[r] - counts[r];
        if (frac > best_frac) {
          best_frac = frac;
          best = r;
        }
      }
      ++counts[best];
      ++assigned;
    }
  }

  for (std::size_t r = 0; r < regions.size(); ++r) {
    for (int k = 0; k < counts[r]; ++k) {
      Vec pos = regions[r].center;
      for (int d = 0; d < config.dim; ++d)
        pos[d] += rng.normal(0.0, regions[r].spread_ms);
      const double h =
          std::clamp(rng.lognormal(config.height_log_mu, config.height_log_sigma),
                     config.height_min_ms, config.height_max_ms);
      t.positions_.push_back(pos);
      t.heights_.push_back(h);
      t.region_.push_back(static_cast<int>(r));
    }
  }
  return t;
}

double Topology::base_rtt_ms(NodeId i, NodeId j) const {
  NC_CHECK_MSG(i != j, "no self-RTT");
  // Heights summed first so the result is bit-symmetric in (i, j).
  const double direct =
      position(i).distance_to(position(j)) + (height_ms(i) + height_ms(j));
  // Deterministic per-link routing inefficiency (symmetric key).
  const auto lo = static_cast<std::uint64_t>(std::min(i, j));
  const auto hi = static_cast<std::uint64_t>(std::max(i, j));
  const double u = static_cast<double>(
                       splitmix64(hash_combine(seed_, (lo << 32) | hi)) >> 11) *
                   0x1.0p-53;
  const double factor = 1.0 + inefficiency_max_ * u * u;
  return std::max(direct * factor, min_base_rtt_ms_);
}

NodeId Topology::first_node_in_region(int region) const {
  for (std::size_t n = 0; n < region_.size(); ++n)
    if (region_[n] == region) return static_cast<NodeId>(n);
  return kInvalidNode;
}

}  // namespace nc::lat

// Stochastic per-link latency observation model.
//
// A real deployment never sees the quiescent RTT; it sees a stream shaped by
// queueing, scheduling and routing (paper Sec. III: samples on one link span
// two orders of magnitude; 0.4% of all samples exceed one second; long pings
// recur across the whole trace). LatencyNetwork layers, per sample:
//
//   1. base RTT from the ground-truth topology,
//   2. a slowly-varying per-link route factor (BGP route changes),
//   3. multiplicative lognormal body jitter,
//   4. additive overload delay while either endpoint is in a node-overload
//      window (PlanetLab CPU contention was notorious),
//   5. heavy-tailed Pareto spikes — at a small background rate always, and
//      at a high rate inside per-link delay-burst windows,
//   6. a cap at the application ping timeout,
//   7. packet loss and node up/down churn (lost samples return nullopt).
//
// All stochastic state is derived deterministically from the master seed, so
// a (topology, config, seed) triple defines one reproducible network.
// Time must be non-decreasing per link/node (the generators and simulators
// naturally sample in time order).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/paged_store.hpp"
#include "common/rng.hpp"
#include "core/node_id.hpp"
#include "latency/topology.hpp"

namespace nc::lat {

struct LinkModelConfig {
  // Body jitter: rtt *= lognormal(-sigma^2/2, sigma), unit mean. Wide-area
  // latency bodies are tight (Fig. 3: a narrow common case with a detached
  // heavy tail), so the body is a few percent and the tail does the damage.
  double body_sigma = 0.04;

  // Heavy-tail spikes: rtt += Pareto(xm, alpha), xm ~ U[xm_min, xm_max].
  double base_spike_prob = 0.005;   // background, outside any burst
  double burst_spike_prob = 0.40;   // inside a link delay burst
  double spike_xm_min_ms = 100.0;
  double spike_xm_max_ms = 500.0;
  double spike_alpha = 1.05;        // infinite-variance tail
  double rtt_cap_ms = 30000.0;      // application ping timeout

  // Per-link delay-burst windows (congestion episodes).
  double link_burst_rate_hz = 1.0 / 2400.0;  // ~1 per 40 min per link
  double link_burst_mean_duration_s = 40.0;

  // Per-node overload windows (host CPU contention slows all its links).
  double node_burst_rate_hz = 1.0 / 3000.0;
  double node_burst_mean_duration_s = 25.0;
  double node_overload_extra_min_ms = 15.0;
  double node_overload_extra_max_ms = 250.0;
  double node_overload_spike_prob = 0.12;

  // Route changes: base RTT multiplied by a factor redrawn at Poisson times.
  double route_change_rate_hz = 1.0 / (8.0 * 3600.0);
  double route_factor_min = 0.55;
  double route_factor_max = 1.9;

  double loss_prob = 0.03;  // per-ping packet loss

  /// The original Vivaldi evaluation's world: a static latency matrix. Every
  /// sample returns exactly the quiescent base RTT — no jitter, spikes,
  /// bursts, route changes or loss. Used by ablation benches to show why an
  /// evaluation on fixed l_ij could not see the instability this paper fixes.
  [[nodiscard]] static LinkModelConfig noiseless();
};

struct AvailabilityConfig;

/// Next Poisson event time after `t`; rate 0 means "never" (1e18).
[[nodiscard]] double next_poisson_event_after(Rng& rng, double t, double rate_hz);

/// The stochastic processes of one link (route factor + delay bursts),
/// shared by LatencyNetwork's undirected links and the sharded engine's
/// directed links so the two engines can never drift apart. The draw ORDER
/// on `rng` (init: route change then burst; advance: random route changes,
/// scheduled steps, bursts) is part of every seed's defined trace — never
/// reorder it.
struct LinkDynamics {
  double route_factor = 1.0;
  double next_route_change_t = 0.0;
  double burst_end_t = -1.0;
  double next_burst_t = 0.0;
  bool route_changes_frozen = false;
  std::vector<std::pair<double, double>> scheduled;  // (at_t, factor), sorted

  /// First-touch initialization at time t (draws the first event times).
  void init(Rng& rng, double t, const LinkModelConfig& config);
  /// Advances route-factor/burst state to time t (t non-decreasing).
  void advance(Rng& rng, double t, const LinkModelConfig& config);
};

/// One node's availability (up/down churn) and overload-burst processes,
/// shared by both engines. Same draw-order contract as LinkDynamics
/// (init: initial up, first toggle, first burst; advance: toggles then
/// bursts).
struct NodeDynamics {
  bool up = true;
  double next_toggle_t = 0.0;
  double burst_end_t = -1.0;
  double next_burst_t = 0.0;

  void init(Rng& rng, double t, const LinkModelConfig& config,
            const AvailabilityConfig& availability);
  void advance(Rng& rng, double t, const LinkModelConfig& config,
               const AvailabilityConfig& availability);
};

/// The post-loss RTT observation pipeline shared by LatencyNetwork and the
/// sharded engine's directed links: lognormal body jitter on base_rtt_ms,
/// overload extra delay, burst/overload/base spike-probability selection
/// with a Pareto spike, then the timeout cap. The draw ORDER on `rng` is
/// part of every seed's defined trace — never reorder it.
[[nodiscard]] double sample_noisy_rtt(Rng& rng, double base_rtt_ms, bool overload,
                                      bool in_link_burst,
                                      const LinkModelConfig& config);

struct AvailabilityConfig {
  bool enabled = true;
  double mean_up_s = 18.0 * 3600.0;
  double mean_down_s = 4.0 * 3600.0;
  double initial_up_prob = 0.85;

  /// Staged-rollout skew: the `staged_down_count` LOWEST node ids are forced
  /// down until `staged_join_s`, then rejoin their normal churn process. The
  /// sharded engine applies this as an override AFTER NodeDynamics advances,
  /// so no RNG stream shifts — the workload stays bit-identical at any
  /// placement. It concentrates early load on the high-id region, the
  /// bench_rebalance imbalance driver. LatencyNetwork ignores these fields
  /// (its consumers sample links, not the engine's epoch snapshots).
  int staged_down_count = 0;
  double staged_join_s = 0.0;
};

class LatencyNetwork {
 public:
  /// `eager_slot_limit`: per-link state stays one flat array up to this many
  /// undirected links and switches to lazily-allocated fixed-size pages
  /// beyond (common/paged_store.hpp) — how a 10k-node network (~50M links)
  /// costs memory proportional to the links actually sampled. Both modes are
  /// observationally identical; the default keeps bench-tier n flat.
  LatencyNetwork(Topology topology, LinkModelConfig link_config,
                 AvailabilityConfig availability, std::uint64_t seed,
                 std::size_t eager_slot_limit = kPagedStoreDefaultEagerSlotLimit);

  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const LinkModelConfig& link_config() const noexcept { return config_; }
  [[nodiscard]] const AvailabilityConfig& availability() const noexcept {
    return availability_;
  }
  /// Links that received a controlled route-change schedule. The
  /// OnlineSimulator facade uses this to reject a network whose schedule it
  /// cannot honor (the kernel takes schedules as explicit constructor
  /// arguments, not from borrowed network state).
  [[nodiscard]] std::size_t scheduled_route_change_count() const noexcept {
    return scheduled_links_;
  }

  /// One application-level ping i -> j at time t. nullopt: the ping was lost
  /// or the target is down. Does not check whether i itself is up — a down
  /// node simply should not call (see node_up()).
  [[nodiscard]] std::optional<double> sample_rtt(NodeId i, NodeId j, double t);

  /// Effective quiescent RTT (base x current route factor): the oracle a
  /// real deployment lacks, used for ground-truth error metrics.
  [[nodiscard]] double ground_truth_rtt(NodeId i, NodeId j, double t);

  [[nodiscard]] bool node_up(NodeId i, double t);

  /// Forces a route change on link (i, j) at time t and suppresses further
  /// random route changes on it — the route-change adaptation experiments
  /// need a single controlled step.
  void force_route_change(NodeId i, NodeId j, double factor, double t);

  /// Schedules a controlled route change to take effect once the link is
  /// next sampled at or after `at_t` (also freezes random route changes on
  /// that link so the step stays clean). Must be scheduled before the link
  /// reaches `at_t`.
  void schedule_route_change(NodeId i, NodeId j, double factor, double at_t);

  [[nodiscard]] std::uint64_t sample_count() const noexcept { return samples_; }
  [[nodiscard]] std::uint64_t loss_count() const noexcept { return losses_; }

 private:
  struct LinkState {
    Rng rng;
    double last_t = -1e18;
    LinkDynamics dyn;
    bool initialized = false;
  };
  struct NodeState {
    Rng rng;
    double last_t = -1e18;
    NodeDynamics dyn;
  };

  [[nodiscard]] static std::uint64_t link_key(NodeId i, NodeId j) noexcept;
  /// Dense triangular index of the undirected link {i, j}. Throws on
  /// out-of-range ids or i == j (a dense array has no inert slot for them).
  [[nodiscard]] std::size_t link_index(NodeId i, NodeId j) const;
  LinkState& link_at(NodeId i, NodeId j, double t);
  NodeState& node_at(NodeId i, double t);

  Topology topology_;
  LinkModelConfig config_;
  AvailabilityConfig availability_;
  std::uint64_t seed_;
  /// Per-link stochastic state, dense over the n*(n-1)/2 undirected links
  /// (triangular index) — flat at bench-tier n, lazily paged beyond. Slots
  /// stay lazily stream-seeded at first-touch time, exactly like the
  /// hash-map entries this replaced — the map cost (hash + probe per
  /// sample, rehash allocations) is gone from the simulator hot path.
  PagedStore<LinkState> links_;
  std::vector<NodeState> nodes_;
  std::vector<bool> node_init_;
  std::size_t scheduled_links_ = 0;
  std::uint64_t samples_ = 0;
  std::uint64_t losses_ = 0;
};

}  // namespace nc::lat

#include "latency/trace_generator.hpp"

#include "common/check.hpp"

namespace nc::lat {

TraceGenerator::TraceGenerator(const TraceGenConfig& config)
    : config_(config),
      network_(Topology::make(config.topology), config.link_model,
               config.availability, config.seed) {
  NC_CHECK_MSG(config.duration_s > 0.0, "duration must be positive");
  NC_CHECK_MSG(config.ping_interval_s > 0.0, "ping interval must be positive");

  const int n = network_.topology().size();
  rr_counter_.resize(static_cast<std::size_t>(n));
  Rng rng = Rng::derived(config.seed, 0x7363686564ULL /* "sched" */);
  for (NodeId id = 0; id < n; ++id) {
    // Random phase staggers nodes inside the second; random round-robin
    // starting point decorrelates who measures whom first.
    schedule_.push({rng.uniform(0.0, config.ping_interval_s), id});
    rr_counter_[static_cast<std::size_t>(id)] =
        rng.uniform_int(static_cast<std::uint64_t>(n - 1));
  }
}

NodeId TraceGenerator::next_partner(NodeId src) {
  const int n = network_.topology().size();
  auto& counter = rr_counter_[static_cast<std::size_t>(src)];
  const auto idx = static_cast<NodeId>(counter % static_cast<std::uint64_t>(n - 1));
  ++counter;
  // Map [0, n-2] onto node ids skipping src.
  return idx >= src ? idx + 1 : idx;
}

std::optional<TraceRecord> TraceGenerator::next() {
  while (!schedule_.empty()) {
    const PingSlot slot = schedule_.top();
    schedule_.pop();
    if (slot.t >= config_.duration_s) return std::nullopt;
    schedule_.push({slot.t + config_.ping_interval_s, slot.src});

    ++attempts_;
    if (!network_.node_up(slot.src, slot.t)) continue;  // down nodes do not ping
    const NodeId dst = next_partner(slot.src);
    const auto rtt = network_.sample_rtt(slot.src, dst, slot.t);
    if (!rtt.has_value()) continue;  // lost or target down

    ++produced_;
    return TraceRecord{slot.t, slot.src, dst, static_cast<float>(*rtt)};
  }
  return std::nullopt;
}

std::uint64_t generate_trace_file(const TraceGenConfig& config,
                                  const std::string& path) {
  TraceGenerator gen(config);
  TraceWriter writer(path, gen.num_nodes());
  while (auto r = gen.next()) writer.append(*r);
  writer.close();
  return writer.written();
}

}  // namespace nc::lat

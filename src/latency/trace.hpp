// Latency trace records and file I/O.
//
// A trace is a time-ordered stream of (time, src, dst, rtt) ping samples —
// the exact input the paper's simulator replays (their 3-day PlanetLab
// trace). Traces can be streamed straight out of TraceGenerator or persisted
// to a compact binary format (20 bytes/record) and replayed later; a CSV
// export exists for interoperability with external analysis tools.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/node_id.hpp"

namespace nc::lat {

struct TraceRecord {
  double t_s = 0.0;     // observation time (seconds from trace start)
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  float rtt_ms = 0.0f;  // measured application-level RTT
};

/// Anything that yields trace records in non-decreasing time order.
class TraceSource {
 public:
  virtual ~TraceSource() = default;
  [[nodiscard]] virtual std::optional<TraceRecord> next() = 0;
  /// Number of distinct nodes the trace may reference (ids in [0, n)).
  [[nodiscard]] virtual int num_nodes() const = 0;
};

/// Writes the binary trace format:
///   header: magic 'NCTR', u32 version, u32 num_nodes, u64 record count
///   records: f64 t, i32 src, i32 dst, f32 rtt
class TraceWriter {
 public:
  TraceWriter(const std::string& path, int num_nodes);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void append(const TraceRecord& record);
  /// Flushes and patches the record count into the header.
  void close();

  [[nodiscard]] std::uint64_t written() const noexcept { return count_; }

 private:
  std::ofstream out_;
  std::uint64_t count_ = 0;
  bool closed_ = false;
};

class TraceReader final : public TraceSource {
 public:
  explicit TraceReader(const std::string& path);

  [[nodiscard]] std::optional<TraceRecord> next() override;
  [[nodiscard]] int num_nodes() const override { return num_nodes_; }
  [[nodiscard]] std::uint64_t record_count() const noexcept { return count_; }

 private:
  std::ifstream in_;
  int num_nodes_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t read_ = 0;
};

/// Drains `source` into a CSV file with a "t_s,src,dst,rtt_ms" header row.
/// Returns the number of records written.
std::uint64_t export_csv(TraceSource& source, const std::string& path);

/// One-pass trace splitter for parallel replay ingest: routes every record
/// of `source` to the binary trace file `<path_prefix>.shard<s>` where
/// s = shard_of_node(record.dst, num_nodes, shards) — dst is the record's
/// FIRST stop in the replay pipeline, so each engine shard reads exactly
/// the slice it would have been mailed by a single reader. The split is
/// stable (original relative order within each file), which is what keeps
/// ShardedEngine::run_partitioned bit-identical to the single-reader path.
/// `num_nodes` must cover every id in the trace (pass the driver's node
/// count, which may exceed the source's). Returns the per-shard paths,
/// indexed by shard.
std::vector<std::string> partition_trace(TraceSource& source,
                                         const std::string& path_prefix,
                                         int num_nodes, int shards);

}  // namespace nc::lat

// Ground-truth network topology for the synthetic PlanetLab.
//
// Nodes are placed in geographic regions embedded in a low-dimensional
// "latency space" (coordinates in milliseconds). The quiescent RTT between
// two nodes is the Euclidean distance between their positions plus both
// access-link heights:
//
//     base_rtt(i, j) = ||p_i - p_j|| + h_i + h_j
//
// Heights model the last-mile/access link each packet crosses twice. A
// height metric still satisfies the triangle inequality but is not
// realizable by any pure Euclidean embedding, giving coordinate systems an
// irreducible error floor. Genuine triangle-inequality VIOLATIONS — the
// other structural error the paper cites — come from per-link routing
// inefficiency: each link's RTT is inflated by a deterministic link-specific
// factor (indirect BGP paths), so a two-hop detour can beat the direct link.
//
// The default region mix approximates the 2005 PlanetLab footprint: mostly
// North America and Europe, a smaller East-Asian contingent, and a few nodes
// elsewhere. Inter-region distances approximate real continent-scale RTTs
// (US-East <-> Europe ~90 ms, US coasts ~70 ms, Europe <-> East Asia ~280 ms).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/vec.hpp"
#include "core/node_id.hpp"

namespace nc::lat {

struct RegionSpec {
  std::string name;
  Vec center;        // region center in latency space (ms)
  double spread_ms;  // stddev of node placement around the center
  double weight;     // share of nodes assigned to the region
};

struct TopologyConfig {
  int num_nodes = 269;
  int dim = 3;  // latency-space dimension
  std::uint64_t seed = 1;

  /// Empty => planetlab_regions() defaults.
  std::vector<RegionSpec> regions;

  // Access-link heights: lognormal(log mu, sigma), clamped to [min, max].
  double height_log_mu = 1.0;    // median ~e^1.0 ≈ 2.7 ms
  double height_log_sigma = 0.8;
  double height_min_ms = 0.3;
  double height_max_ms = 25.0;

  // Routing inefficiency: each link's RTT is multiplied by
  // 1 + inefficiency_max * u^2 with link-specific u ~ U[0,1), so most links
  // are near-direct and a minority take substantially indirect routes
  // (creating genuine triangle-inequality violations).
  double inefficiency_max = 0.25;

  /// Floor for base RTTs (co-located nodes still need one RTT quantum).
  double min_base_rtt_ms = 0.2;
};

/// The PlanetLab-like default region mix.
[[nodiscard]] std::vector<RegionSpec> planetlab_regions();

/// Every continent hosts nodes and no region dominates: inter-region RTTs
/// reach the ~300 ms intercontinental band far more often than on the
/// NA/EU-heavy PlanetLab mix (the `intercontinental` scenario preset).
[[nodiscard]] std::vector<RegionSpec> intercontinental_regions();

/// One machine room: sub-millisecond geographic spread, so measured latency
/// is dominated by jitter and access heights (the `lan-cluster` preset).
[[nodiscard]] std::vector<RegionSpec> lan_cluster_regions();

class Topology {
 public:
  [[nodiscard]] static Topology make(const TopologyConfig& config);

  [[nodiscard]] int size() const noexcept { return static_cast<int>(positions_.size()); }
  [[nodiscard]] int dim() const noexcept { return dim_; }

  [[nodiscard]] const Vec& position(NodeId id) const { return positions_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] double height_ms(NodeId id) const { return heights_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] int region_of(NodeId id) const { return region_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] const std::string& region_name(int region) const {
    return region_names_.at(static_cast<std::size_t>(region));
  }
  [[nodiscard]] int region_count() const noexcept {
    return static_cast<int>(region_names_.size());
  }

  /// Quiescent RTT between two distinct nodes (ms).
  [[nodiscard]] double base_rtt_ms(NodeId i, NodeId j) const;

  /// First node belonging to `region`, if any.
  [[nodiscard]] NodeId first_node_in_region(int region) const;

 private:
  int dim_ = 3;
  double min_base_rtt_ms_ = 0.2;
  double inefficiency_max_ = 0.6;
  std::uint64_t seed_ = 0;
  std::vector<Vec> positions_;
  std::vector<double> heights_;
  std::vector<int> region_;
  std::vector<std::string> region_names_;
};

}  // namespace nc::lat

#include "latency/link_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace nc::lat {

namespace {

// Next Poisson event; rate 0 means "never".
double next_event_after(Rng& rng, double t, double rate_hz) {
  return rate_hz > 0.0 ? t + rng.exponential(rate_hz) : 1e18;
}

}  // namespace

LinkModelConfig LinkModelConfig::noiseless() {
  LinkModelConfig c;
  c.body_sigma = 0.0;
  c.base_spike_prob = 0.0;
  c.burst_spike_prob = 0.0;
  c.node_overload_spike_prob = 0.0;
  c.node_overload_extra_min_ms = 0.0;
  c.node_overload_extra_max_ms = 0.0;
  c.link_burst_rate_hz = 0.0;
  c.node_burst_rate_hz = 0.0;
  c.route_change_rate_hz = 0.0;
  c.loss_prob = 0.0;
  return c;
}

LatencyNetwork::LatencyNetwork(Topology topology, LinkModelConfig link_config,
                               AvailabilityConfig availability, std::uint64_t seed)
    : topology_(std::move(topology)),
      config_(link_config),
      availability_(availability),
      seed_(seed),
      nodes_(static_cast<std::size_t>(topology_.size())),
      node_init_(static_cast<std::size_t>(topology_.size()), false) {
  NC_CHECK_MSG(config_.body_sigma >= 0.0, "negative jitter sigma");
  NC_CHECK_MSG(config_.loss_prob >= 0.0 && config_.loss_prob < 1.0, "bad loss prob");
  NC_CHECK_MSG(config_.spike_alpha > 0.0, "bad spike alpha");
}

std::uint64_t LatencyNetwork::link_key(NodeId i, NodeId j) noexcept {
  const auto lo = static_cast<std::uint64_t>(std::min(i, j));
  const auto hi = static_cast<std::uint64_t>(std::max(i, j));
  return (lo << 32) | hi;
}

LatencyNetwork::LinkState& LatencyNetwork::link_at(NodeId i, NodeId j, double t) {
  const std::uint64_t key = link_key(i, j);
  auto [it, inserted] = links_.try_emplace(key);
  LinkState& s = it->second;
  if (inserted) {
    s.rng = Rng::derived(seed_, 0x6c696e6bULL /* "link" */, key);
    s.next_route_change_t = next_event_after(s.rng, t, config_.route_change_rate_hz);
    s.next_burst_t = next_event_after(s.rng, t, config_.link_burst_rate_hz);
    s.last_t = t;
  }
  NC_CHECK_MSG(t >= s.last_t - 1e-9, "link time went backwards");
  s.last_t = t;

  if (!s.route_changes_frozen) {
    while (s.next_route_change_t <= t) {
      s.route_factor = s.rng.uniform(config_.route_factor_min, config_.route_factor_max);
      s.next_route_change_t += s.rng.exponential(config_.route_change_rate_hz);
    }
  }
  while (!s.scheduled.empty() && s.scheduled.front().first <= t) {
    s.route_factor = s.scheduled.front().second;
    s.scheduled.erase(s.scheduled.begin());
  }
  while (s.next_burst_t <= t) {
    s.burst_end_t =
        s.next_burst_t + s.rng.exponential(1.0 / config_.link_burst_mean_duration_s);
    s.next_burst_t =
        next_event_after(s.rng, s.burst_end_t, config_.link_burst_rate_hz);
  }
  return s;
}

LatencyNetwork::NodeState& LatencyNetwork::node_at(NodeId i, double t) {
  auto& s = nodes_.at(static_cast<std::size_t>(i));
  if (!node_init_[static_cast<std::size_t>(i)]) {
    node_init_[static_cast<std::size_t>(i)] = true;
    s.rng = Rng::derived(seed_, 0x6e6f6465ULL /* "node" */, static_cast<std::uint64_t>(i));
    s.up = !availability_.enabled || s.rng.bernoulli(availability_.initial_up_prob);
    s.next_toggle_t =
        availability_.enabled
            ? t + s.rng.exponential(1.0 / (s.up ? availability_.mean_up_s
                                               : availability_.mean_down_s))
            : 1e18;
    s.next_burst_t = next_event_after(s.rng, t, config_.node_burst_rate_hz);
    s.last_t = t;
  }
  NC_CHECK_MSG(t >= s.last_t - 1e-9, "node time went backwards");
  s.last_t = t;

  while (s.next_toggle_t <= t) {
    s.up = !s.up;
    s.next_toggle_t += s.rng.exponential(
        1.0 / (s.up ? availability_.mean_up_s : availability_.mean_down_s));
  }
  while (s.next_burst_t <= t) {
    s.burst_end_t =
        s.next_burst_t + s.rng.exponential(1.0 / config_.node_burst_mean_duration_s);
    s.next_burst_t =
        next_event_after(s.rng, s.burst_end_t, config_.node_burst_rate_hz);
  }
  return s;
}

std::optional<double> LatencyNetwork::sample_rtt(NodeId i, NodeId j, double t) {
  NC_CHECK_MSG(i != j, "no self-ping");
  ++samples_;

  NodeState& ni = node_at(i, t);
  NodeState& nj = node_at(j, t);
  if (!nj.up) {  // target down: the ping times out
    ++losses_;
    return std::nullopt;
  }
  const bool overload = t < ni.burst_end_t || t < nj.burst_end_t;

  LinkState& link = link_at(i, j, t);
  if (link.rng.bernoulli(config_.loss_prob)) {
    ++losses_;
    return std::nullopt;
  }

  const double base = topology_.base_rtt_ms(i, j) * link.route_factor;
  const double sigma = config_.body_sigma;
  double rtt = base * link.rng.lognormal(-0.5 * sigma * sigma, sigma);

  if (overload) {
    rtt += link.rng.uniform(config_.node_overload_extra_min_ms,
                            config_.node_overload_extra_max_ms);
  }

  const bool in_link_burst = t < link.burst_end_t;
  const double spike_prob = in_link_burst   ? config_.burst_spike_prob
                            : overload      ? config_.node_overload_spike_prob
                                            : config_.base_spike_prob;
  if (link.rng.bernoulli(spike_prob)) {
    const double xm = link.rng.uniform(config_.spike_xm_min_ms, config_.spike_xm_max_ms);
    rtt += link.rng.pareto(xm, config_.spike_alpha);
  }

  return std::min(rtt, config_.rtt_cap_ms);
}

double LatencyNetwork::ground_truth_rtt(NodeId i, NodeId j, double t) {
  return topology_.base_rtt_ms(i, j) * link_at(i, j, t).route_factor;
}

bool LatencyNetwork::node_up(NodeId i, double t) { return node_at(i, t).up; }

void LatencyNetwork::force_route_change(NodeId i, NodeId j, double factor, double t) {
  NC_CHECK_MSG(factor > 0.0, "route factor must be positive");
  LinkState& s = link_at(i, j, t);
  s.route_factor = factor;
  s.route_changes_frozen = true;
}

void LatencyNetwork::schedule_route_change(NodeId i, NodeId j, double factor,
                                           double at_t) {
  NC_CHECK_MSG(factor > 0.0, "route factor must be positive");
  const std::uint64_t key = link_key(i, j);
  auto [it, inserted] = links_.try_emplace(key);
  LinkState& s = it->second;
  if (inserted) {
    // Initialize exactly as link_at would at first sample time; the first
    // real sample will advance from here.
    s.rng = Rng::derived(seed_, 0x6c696e6bULL, key);
    s.next_route_change_t = next_event_after(s.rng, 0.0, config_.route_change_rate_hz);
    s.next_burst_t = next_event_after(s.rng, 0.0, config_.link_burst_rate_hz);
    s.last_t = 0.0;
  }
  NC_CHECK_MSG(s.last_t <= at_t, "link already advanced past at_t");
  s.route_changes_frozen = true;
  s.scheduled.emplace_back(at_t, factor);
  std::sort(s.scheduled.begin(), s.scheduled.end());
}

}  // namespace nc::lat

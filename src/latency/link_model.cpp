#include "latency/link_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace nc::lat {

double next_poisson_event_after(Rng& rng, double t, double rate_hz) {
  return rate_hz > 0.0 ? t + rng.exponential(rate_hz) : 1e18;
}

void LinkDynamics::init(Rng& rng, double t, const LinkModelConfig& config) {
  next_route_change_t =
      next_poisson_event_after(rng, t, config.route_change_rate_hz);
  next_burst_t = next_poisson_event_after(rng, t, config.link_burst_rate_hz);
}

void LinkDynamics::advance(Rng& rng, double t, const LinkModelConfig& config) {
  if (!route_changes_frozen) {
    while (next_route_change_t <= t) {
      route_factor = rng.uniform(config.route_factor_min, config.route_factor_max);
      next_route_change_t += rng.exponential(config.route_change_rate_hz);
    }
  }
  while (!scheduled.empty() && scheduled.front().first <= t) {
    route_factor = scheduled.front().second;
    scheduled.erase(scheduled.begin());
  }
  while (next_burst_t <= t) {
    burst_end_t =
        next_burst_t + rng.exponential(1.0 / config.link_burst_mean_duration_s);
    next_burst_t =
        next_poisson_event_after(rng, burst_end_t, config.link_burst_rate_hz);
  }
}

void NodeDynamics::init(Rng& rng, double t, const LinkModelConfig& config,
                        const AvailabilityConfig& availability) {
  up = !availability.enabled || rng.bernoulli(availability.initial_up_prob);
  next_toggle_t =
      availability.enabled
          ? t + rng.exponential(1.0 / (up ? availability.mean_up_s
                                          : availability.mean_down_s))
          : 1e18;
  next_burst_t = next_poisson_event_after(rng, t, config.node_burst_rate_hz);
}

void NodeDynamics::advance(Rng& rng, double t, const LinkModelConfig& config,
                           const AvailabilityConfig& availability) {
  while (next_toggle_t <= t) {
    up = !up;
    next_toggle_t += rng.exponential(
        1.0 / (up ? availability.mean_up_s : availability.mean_down_s));
  }
  while (next_burst_t <= t) {
    burst_end_t =
        next_burst_t + rng.exponential(1.0 / config.node_burst_mean_duration_s);
    next_burst_t =
        next_poisson_event_after(rng, burst_end_t, config.node_burst_rate_hz);
  }
}

double sample_noisy_rtt(Rng& rng, double base_rtt_ms, bool overload,
                        bool in_link_burst, const LinkModelConfig& config) {
  const double sigma = config.body_sigma;
  double rtt = base_rtt_ms * rng.lognormal(-0.5 * sigma * sigma, sigma);

  if (overload) {
    rtt += rng.uniform(config.node_overload_extra_min_ms,
                       config.node_overload_extra_max_ms);
  }

  const double spike_prob = in_link_burst ? config.burst_spike_prob
                            : overload    ? config.node_overload_spike_prob
                                          : config.base_spike_prob;
  if (rng.bernoulli(spike_prob)) {
    const double xm = rng.uniform(config.spike_xm_min_ms, config.spike_xm_max_ms);
    rtt += rng.pareto(xm, config.spike_alpha);
  }
  return std::min(rtt, config.rtt_cap_ms);
}

LinkModelConfig LinkModelConfig::noiseless() {
  LinkModelConfig c;
  c.body_sigma = 0.0;
  c.base_spike_prob = 0.0;
  c.burst_spike_prob = 0.0;
  c.node_overload_spike_prob = 0.0;
  c.node_overload_extra_min_ms = 0.0;
  c.node_overload_extra_max_ms = 0.0;
  c.link_burst_rate_hz = 0.0;
  c.node_burst_rate_hz = 0.0;
  c.route_change_rate_hz = 0.0;
  c.loss_prob = 0.0;
  return c;
}

LatencyNetwork::LatencyNetwork(Topology topology, LinkModelConfig link_config,
                               AvailabilityConfig availability, std::uint64_t seed,
                               std::size_t eager_slot_limit)
    : topology_(std::move(topology)),
      config_(link_config),
      availability_(availability),
      seed_(seed),
      links_(static_cast<std::size_t>(topology_.size()) *
                 static_cast<std::size_t>(std::max(0, topology_.size() - 1)) / 2,
             eager_slot_limit),
      nodes_(static_cast<std::size_t>(topology_.size())),
      node_init_(static_cast<std::size_t>(topology_.size()), false) {
  NC_CHECK_MSG(config_.body_sigma >= 0.0, "negative jitter sigma");
  NC_CHECK_MSG(config_.loss_prob >= 0.0 && config_.loss_prob < 1.0, "bad loss prob");
  NC_CHECK_MSG(config_.spike_alpha > 0.0, "bad spike alpha");
}

std::uint64_t LatencyNetwork::link_key(NodeId i, NodeId j) noexcept {
  const auto lo = static_cast<std::uint64_t>(std::min(i, j));
  const auto hi = static_cast<std::uint64_t>(std::max(i, j));
  return (lo << 32) | hi;
}

std::size_t LatencyNetwork::link_index(NodeId i, NodeId j) const {
  // The sparse map this replaced tolerated any key as an inert entry; a
  // dense index must reject bad endpoints or write out of bounds.
  NC_CHECK_MSG(i >= 0 && j >= 0 && i != j && i < topology_.size() &&
                   j < topology_.size(),
               "bad link endpoints");
  const auto n = static_cast<std::size_t>(topology_.size());
  const auto lo = static_cast<std::size_t>(std::min(i, j));
  const auto hi = static_cast<std::size_t>(std::max(i, j));
  // Row-major upper triangle: row lo starts after the first lo rows, whose
  // lengths are (n-1), (n-2), ..., (n-lo).
  return lo * (2 * n - lo - 1) / 2 + (hi - lo - 1);
}

LatencyNetwork::LinkState& LatencyNetwork::link_at(NodeId i, NodeId j, double t) {
  LinkState& s = links_.at(link_index(i, j));
  if (!s.initialized) {
    // Lazy stream seeding at first-touch time; the derivation key is the
    // same (lo, hi) pair as always, so every seed maps to the same trace.
    s.initialized = true;
    s.rng = Rng::derived(seed_, rngstream::kLink, link_key(i, j));
    s.dyn.init(s.rng, t, config_);
    s.last_t = t;
  }
  NC_CHECK_MSG(t >= s.last_t - 1e-9, "link time went backwards");
  s.last_t = t;
  s.dyn.advance(s.rng, t, config_);
  return s;
}

LatencyNetwork::NodeState& LatencyNetwork::node_at(NodeId i, double t) {
  auto& s = nodes_.at(static_cast<std::size_t>(i));
  if (!node_init_[static_cast<std::size_t>(i)]) {
    node_init_[static_cast<std::size_t>(i)] = true;
    s.rng = Rng::derived(seed_, rngstream::kNode, static_cast<std::uint64_t>(i));
    s.dyn.init(s.rng, t, config_, availability_);
    s.last_t = t;
  }
  NC_CHECK_MSG(t >= s.last_t - 1e-9, "node time went backwards");
  s.last_t = t;
  s.dyn.advance(s.rng, t, config_, availability_);
  return s;
}

std::optional<double> LatencyNetwork::sample_rtt(NodeId i, NodeId j, double t) {
  NC_CHECK_MSG(i != j, "no self-ping");
  ++samples_;

  NodeState& ni = node_at(i, t);
  NodeState& nj = node_at(j, t);
  if (!nj.dyn.up) {  // target down: the ping times out
    ++losses_;
    return std::nullopt;
  }
  const bool overload = t < ni.dyn.burst_end_t || t < nj.dyn.burst_end_t;

  LinkState& link = link_at(i, j, t);
  if (link.rng.bernoulli(config_.loss_prob)) {
    ++losses_;
    return std::nullopt;
  }

  const double base = topology_.base_rtt_ms(i, j) * link.dyn.route_factor;
  return sample_noisy_rtt(link.rng, base, overload, t < link.dyn.burst_end_t,
                          config_);
}

double LatencyNetwork::ground_truth_rtt(NodeId i, NodeId j, double t) {
  return topology_.base_rtt_ms(i, j) * link_at(i, j, t).dyn.route_factor;
}

bool LatencyNetwork::node_up(NodeId i, double t) { return node_at(i, t).dyn.up; }

void LatencyNetwork::force_route_change(NodeId i, NodeId j, double factor, double t) {
  NC_CHECK_MSG(factor > 0.0, "route factor must be positive");
  LinkState& s = link_at(i, j, t);
  s.dyn.route_factor = factor;
  s.dyn.route_changes_frozen = true;
}

void LatencyNetwork::schedule_route_change(NodeId i, NodeId j, double factor,
                                           double at_t) {
  NC_CHECK_MSG(factor > 0.0, "route factor must be positive");
  LinkState& s = links_.at(link_index(i, j));
  if (!s.initialized) {
    // Initialize exactly as link_at would at first sample time; the first
    // real sample will advance from here.
    s.initialized = true;
    s.rng = Rng::derived(seed_, rngstream::kLink, link_key(i, j));
    s.dyn.init(s.rng, 0.0, config_);
    s.last_t = 0.0;
  }
  NC_CHECK_MSG(s.last_t <= at_t, "link already advanced past at_t");
  s.dyn.route_changes_frozen = true;
  if (s.dyn.scheduled.empty()) ++scheduled_links_;
  s.dyn.scheduled.emplace_back(at_t, factor);
  std::sort(s.dyn.scheduled.begin(), s.dyn.scheduled.end());
}

}  // namespace nc::lat

#include "latency/trace.hpp"

#include <array>
#include <cstring>
#include <memory>

#include "common/check.hpp"

namespace nc::lat {

namespace {

constexpr std::uint32_t kMagic = 0x4e435452;  // 'NCTR'
constexpr std::uint32_t kVersion = 1;
constexpr std::streamoff kCountOffset = 12;  // after magic, version, num_nodes

template <typename T>
void write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
bool read_pod(std::ifstream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  return static_cast<bool>(in);
}

}  // namespace

TraceWriter::TraceWriter(const std::string& path, int num_nodes) {
  NC_CHECK_MSG(num_nodes >= 2, "trace needs at least two nodes");
  out_.open(path, std::ios::binary | std::ios::trunc);
  NC_CHECK_MSG(out_.is_open(), "cannot open trace file for writing: " + path);
  write_pod(out_, kMagic);
  write_pod(out_, kVersion);
  write_pod(out_, static_cast<std::uint32_t>(num_nodes));
  write_pod(out_, std::uint64_t{0});  // count, patched in close()
}

TraceWriter::~TraceWriter() {
  if (!closed_) close();
}

void TraceWriter::append(const TraceRecord& record) {
  NC_CHECK_MSG(!closed_, "append after close");
  write_pod(out_, record.t_s);
  write_pod(out_, record.src);
  write_pod(out_, record.dst);
  write_pod(out_, record.rtt_ms);
  ++count_;
}

void TraceWriter::close() {
  if (closed_) return;
  closed_ = true;
  out_.seekp(kCountOffset);
  write_pod(out_, count_);
  out_.close();
}

TraceReader::TraceReader(const std::string& path) {
  in_.open(path, std::ios::binary);
  NC_CHECK_MSG(in_.is_open(), "cannot open trace file: " + path);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t nodes = 0;
  NC_CHECK_MSG(read_pod(in_, magic) && magic == kMagic, "bad trace magic");
  NC_CHECK_MSG(read_pod(in_, version) && version == kVersion,
               "unsupported trace version");
  NC_CHECK_MSG(read_pod(in_, nodes) && nodes >= 2, "bad node count");
  NC_CHECK_MSG(read_pod(in_, count_), "truncated trace header");
  num_nodes_ = static_cast<int>(nodes);
}

std::optional<TraceRecord> TraceReader::next() {
  if (read_ >= count_) return std::nullopt;
  TraceRecord r;
  if (!read_pod(in_, r.t_s) || !read_pod(in_, r.src) || !read_pod(in_, r.dst) ||
      !read_pod(in_, r.rtt_ms)) {
    return std::nullopt;  // truncated file: stop cleanly
  }
  ++read_;
  return r;
}

std::vector<std::string> partition_trace(TraceSource& source,
                                         const std::string& path_prefix,
                                         int num_nodes, int shards) {
  NC_CHECK_MSG(shards >= 1, "need at least one shard");
  NC_CHECK_MSG(num_nodes >= 2, "trace needs at least two nodes");
  NC_CHECK_MSG(source.num_nodes() <= num_nodes,
               "trace has more nodes than the partition covers");
  std::vector<std::string> paths;
  std::vector<std::unique_ptr<TraceWriter>> writers;
  paths.reserve(static_cast<std::size_t>(shards));
  writers.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    paths.push_back(path_prefix + ".shard" + std::to_string(s));
    writers.push_back(std::make_unique<TraceWriter>(paths.back(), num_nodes));
  }
  while (auto r = source.next()) {
    NC_CHECK_MSG(r->dst >= 0 && r->dst < num_nodes, "bad dst id in trace");
    writers[static_cast<std::size_t>(shard_of_node(r->dst, num_nodes, shards))]
        ->append(*r);
  }
  for (auto& w : writers) w->close();
  return paths;
}

std::uint64_t export_csv(TraceSource& source, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  NC_CHECK_MSG(out.is_open(), "cannot open CSV file for writing: " + path);
  out << "t_s,src,dst,rtt_ms\n";
  std::uint64_t n = 0;
  while (auto r = source.next()) {
    out << r->t_s << ',' << r->src << ',' << r->dst << ',' << r->rtt_ms << '\n';
    ++n;
  }
  return n;
}

}  // namespace nc::lat

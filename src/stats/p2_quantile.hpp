// P² streaming quantile estimator (Jain & Chlamtac, CACM 1985).
//
// Estimates a single quantile of an unbounded stream with five markers and
// O(1) memory. Used by long-running metrics collection where storing every
// observation would be wasteful; accuracy is within a few percent on smooth
// distributions (tests compare it against exact percentiles).
#pragma once

#include <array>
#include <cstdint>

namespace nc::stats {

class P2Quantile {
 public:
  /// q in (0, 1), e.g. 0.95 for the 95th percentile.
  explicit P2Quantile(double q);

  void add(double x) noexcept;

  /// Current estimate; exact while fewer than 5 samples have been seen.
  [[nodiscard]] double value() const noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  void adjust_markers() noexcept;
  [[nodiscard]] double parabolic(int i, double d) const noexcept;
  [[nodiscard]] double linear(int i, double d) const noexcept;

  double q_;
  std::uint64_t count_ = 0;
  std::array<double, 5> heights_{};    // marker heights (values)
  std::array<double, 5> positions_{};  // actual marker positions
  std::array<double, 5> desired_{};    // desired marker positions
  std::array<double, 5> increments_{}; // desired position increments
};

}  // namespace nc::stats

// Wilcoxon-Mann-Whitney rank-sum test.
//
// Kifer, Ben-David & Gehrke's change-detection framework (which the paper's
// windowed heuristics adapt) compares the start/current windows with a
// standard two-sample test; rank-sum is their one-dimensional workhorse. We
// provide it for scalar streams (e.g. per-link latency change detection) —
// the coordinate heuristics use RELATIVE/ENERGY instead because coordinates
// are multi-dimensional.
#pragma once

#include <span>

namespace nc::stats {

struct RankSumResult {
  double u = 0.0;        // Mann-Whitney U statistic (for the first sample)
  double z = 0.0;        // normal approximation z-score (tie-corrected)
  double p_two_sided = 0.0;
};

/// Requires both samples non-empty. Uses the normal approximation with tie
/// correction; accurate for window sizes >= ~8 as used in change detection.
[[nodiscard]] RankSumResult rank_sum_test(std::span<const double> a,
                                          std::span<const double> b);

/// Standard normal CDF.
[[nodiscard]] double normal_cdf(double z);

}  // namespace nc::stats

#include "stats/percentile.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace nc::stats {

double percentile_nearest_rank_sorted(std::span<const double> sorted, double p) {
  NC_CHECK_MSG(!sorted.empty(), "percentile of empty sample");
  NC_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile out of [0,100]");
  const auto n = sorted.size();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(idx, n - 1)];
}

double percentile_sorted(std::span<const double> sorted, double p) {
  NC_CHECK_MSG(!sorted.empty(), "percentile of empty sample");
  NC_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile out of [0,100]");
  const auto n = sorted.size();
  if (n == 1) return sorted[0];
  const double h = p / 100.0 * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(h);
  if (lo + 1 >= n) return sorted[n - 1];
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

double percentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  return percentile_sorted(values, p);
}

double percentile_nearest_rank(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  return percentile_nearest_rank_sorted(values, p);
}

double median(std::vector<double> values) { return percentile(std::move(values), 50.0); }

}  // namespace nc::stats

#include "stats/ecdf.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "stats/percentile.hpp"

namespace nc::stats {

void Ecdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Ecdf::quantile(double q) const {
  NC_CHECK_MSG(!values_.empty(), "quantile of empty ECDF");
  ensure_sorted();
  return percentile_sorted(values_, q * 100.0);
}

double Ecdf::fraction_at_or_below(double x) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(it - values_.begin()) /
         static_cast<double>(values_.size());
}

std::span<const double> Ecdf::sorted_values() const {
  ensure_sorted();
  return values_;
}

}  // namespace nc::stats

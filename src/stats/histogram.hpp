// Frequency histograms over explicit bucket edges.
//
// The paper's latency histograms (Figs. 2, 3, 5-bottom) use irregular
// buckets (0-99, ..., 900-999, 1000-1999, 2000-2999, >=3000), so buckets are
// defined by an arbitrary ascending edge vector; values below the first edge
// land in an underflow bucket and values at/above the last edge in an
// overflow bucket.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nc::stats {

class Histogram {
 public:
  /// Buckets are [edges[i], edges[i+1]); edges must be ascending, size >= 2.
  explicit Histogram(std::vector<double> edges);

  /// Uniform buckets: n buckets spanning [lo, hi).
  static Histogram uniform(double lo, double hi, int n);

  void add(double x, std::uint64_t weight = 1) noexcept;

  [[nodiscard]] int bucket_count() const noexcept {
    return static_cast<int>(counts_.size());
  }
  [[nodiscard]] std::uint64_t count(int bucket) const { return counts_.at(static_cast<std::size_t>(bucket)); }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  [[nodiscard]] double bucket_lo(int bucket) const { return edges_.at(static_cast<std::size_t>(bucket)); }
  [[nodiscard]] double bucket_hi(int bucket) const { return edges_.at(static_cast<std::size_t>(bucket) + 1); }
  /// "lo-hi" label, e.g. "100-199" for [100, 200).
  [[nodiscard]] std::string bucket_label(int bucket) const;

  /// Fraction of all added values that are >= x (computed from bucket
  /// boundaries; x should coincide with an edge for an exact answer).
  [[nodiscard]] double fraction_at_or_above(double x) const noexcept;

  [[nodiscard]] const std::vector<double>& edges() const noexcept { return edges_; }

 private:
  std::vector<double> edges_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace nc::stats

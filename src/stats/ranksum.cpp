#include "stats/ranksum.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"

namespace nc::stats {

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

RankSumResult rank_sum_test(std::span<const double> a, std::span<const double> b) {
  NC_CHECK_MSG(!a.empty() && !b.empty(), "rank-sum of empty sample");
  const std::size_t n1 = a.size();
  const std::size_t n2 = b.size();

  struct Tagged {
    double value;
    bool from_a;
  };
  std::vector<Tagged> all;
  all.reserve(n1 + n2);
  for (double v : a) all.push_back({v, true});
  for (double v : b) all.push_back({v, false});
  std::sort(all.begin(), all.end(),
            [](const Tagged& x, const Tagged& y) { return x.value < y.value; });

  // Average ranks across ties; accumulate tie-group sizes for the variance
  // correction.
  double rank_sum_a = 0.0;
  double tie_term = 0.0;
  std::size_t i = 0;
  while (i < all.size()) {
    std::size_t j = i;
    while (j < all.size() && all[j].value == all[i].value) ++j;
    const double avg_rank = 0.5 * static_cast<double>(i + 1 + j);  // 1-based
    const auto t = static_cast<double>(j - i);
    if (j - i > 1) tie_term += t * t * t - t;
    for (std::size_t k = i; k < j; ++k)
      if (all[k].from_a) rank_sum_a += avg_rank;
    i = j;
  }

  const double dn1 = static_cast<double>(n1);
  const double dn2 = static_cast<double>(n2);
  const double n = dn1 + dn2;

  RankSumResult r;
  r.u = rank_sum_a - dn1 * (dn1 + 1.0) / 2.0;
  const double mean_u = dn1 * dn2 / 2.0;
  const double var_u =
      dn1 * dn2 / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
  if (var_u <= 0.0) {  // all values identical
    r.z = 0.0;
    r.p_two_sided = 1.0;
    return r;
  }
  // Continuity correction.
  const double diff = r.u - mean_u;
  const double cc = diff > 0 ? -0.5 : (diff < 0 ? 0.5 : 0.0);
  r.z = (diff + cc) / std::sqrt(var_u);
  r.p_two_sided = 2.0 * (1.0 - normal_cdf(std::fabs(r.z)));
  return r;
}

}  // namespace nc::stats

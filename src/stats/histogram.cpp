#include "stats/histogram.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"

namespace nc::stats {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  NC_CHECK_MSG(edges_.size() >= 2, "need at least two edges");
  NC_CHECK_MSG(std::is_sorted(edges_.begin(), edges_.end()),
               "edges must be ascending");
  counts_.assign(edges_.size() - 1, 0);
}

Histogram Histogram::uniform(double lo, double hi, int n) {
  NC_CHECK_MSG(n > 0 && hi > lo, "bad uniform histogram spec");
  std::vector<double> edges(static_cast<std::size_t>(n) + 1);
  for (int i = 0; i <= n; ++i)
    edges[static_cast<std::size_t>(i)] = lo + (hi - lo) * i / n;
  return Histogram(std::move(edges));
}

void Histogram::add(double x, std::uint64_t weight) noexcept {
  total_ += weight;
  if (x < edges_.front()) {
    underflow_ += weight;
    return;
  }
  if (x >= edges_.back()) {
    overflow_ += weight;
    return;
  }
  // upper_bound finds the first edge > x; its predecessor opens the bucket.
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  const auto idx = static_cast<std::size_t>(it - edges_.begin()) - 1;
  counts_[idx] += weight;
}

std::string Histogram::bucket_label(int bucket) const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.0f-%.0f", bucket_lo(bucket),
                bucket_hi(bucket) - 1);
  return buf;
}

double Histogram::fraction_at_or_above(double x) const noexcept {
  if (total_ == 0) return 0.0;
  std::uint64_t at_or_above = overflow_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (edges_[i] >= x) at_or_above += counts_[i];
  }
  return static_cast<double>(at_or_above) / static_cast<double>(total_);
}

}  // namespace nc::stats

// Energy distance between two multivariate samples (Szekely & Rizzo).
//
// The ENERGY update heuristic (paper Sec. V-B) tests whether the sliding
// "current" window of system coordinates has diverged from the frozen
// "start" window using
//
//   e(A,B) = n1*n2/(n1+n2) * ( 2/(n1*n2) * S_AB
//                              - 1/n1^2 * S_AA - 1/n2^2 * S_BB )
//
// where S_XY are sums of pairwise Euclidean distances. A naive evaluation is
// O(k^2) per observation; IncrementalEnergy maintains the three sums under
// window pushes/pops for O(k) per observation. Tests verify both agree.
#pragma once

#include <deque>
#include <span>
#include <vector>

#include "common/vec.hpp"

namespace nc::stats {

/// O(|a|*|b| + |a|^2 + |b|^2) direct evaluation. Requires non-empty samples.
[[nodiscard]] double energy_distance(std::span<const Vec> a, std::span<const Vec> b);

/// Maintains e(A, B) where A is fixed (the "start" window) and B is a FIFO
/// sliding window ("current"), under push/pop of B elements.
class IncrementalEnergy {
 public:
  /// Freezes the base sample A and computes its self-distance sum.
  void set_base(std::span<const Vec> a);

  /// Appends v to the current window B.
  void push_current(const Vec& v);

  /// Removes the oldest element of B.
  void pop_current();

  void reset() noexcept;

  [[nodiscard]] bool has_base() const noexcept { return !a_.empty(); }
  [[nodiscard]] std::size_t base_size() const noexcept { return a_.size(); }
  [[nodiscard]] std::size_t current_size() const noexcept { return b_.size(); }

  /// Current e(A, B); requires both samples non-empty.
  [[nodiscard]] double value() const;

 private:
  std::vector<Vec> a_;
  std::deque<Vec> b_;
  double sum_aa_ = 0.0;  // sum over ordered pairs of A (each unordered pair twice)
  double sum_bb_ = 0.0;  // sum over ordered pairs of B
  double sum_ab_ = 0.0;  // sum over A x B
};

}  // namespace nc::stats

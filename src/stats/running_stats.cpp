#include "stats/running_stats.hpp"

#include <cmath>

namespace nc::stats {

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace nc::stats

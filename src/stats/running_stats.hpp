// Streaming first/second-moment accumulator (Welford's algorithm).
#pragma once

#include <cstdint>
#include <limits>

namespace nc::stats {

/// Accumulates count/mean/variance/min/max in O(1) memory, numerically
/// stable for long streams (Welford).
class RunningStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Merges another accumulator (parallel Welford / Chan et al.).
  void merge(const RunningStats& o) noexcept {
    if (o.count_ == 0) return;
    if (count_ == 0) {
      *this = o;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(o.count_);
    const double delta = o.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += o.m2_ + delta * delta * n1 * n2 / n;
    count_ += o.count_;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }

  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }
  /// Population variance; 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
  }
  /// Unbiased sample variance; 0 for fewer than 2 samples.
  [[nodiscard]] double sample_variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace nc::stats

// Five-number boxplot summary with Tukey whiskers (Fig. 4 reports MP filter
// prediction error as boxplots over links).
#pragma once

#include <cstdint>
#include <vector>

namespace nc::stats {

struct BoxplotStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  /// Whiskers: most extreme sample within 1.5*IQR of the box.
  double whisker_lo = 0.0;
  double whisker_hi = 0.0;
  std::uint64_t outliers = 0;  // samples outside the whiskers
  std::uint64_t count = 0;
};

/// Computes boxplot statistics (sorts a copy). Requires non-empty input.
[[nodiscard]] BoxplotStats boxplot(std::vector<double> values);

}  // namespace nc::stats

// Fixed-width time-bucket aggregation for metric time series.
//
// Instability is defined per unit time (sum of coordinate displacement per
// second); Fig. 14 reports 10-minute medians. These helpers bucket (t, v)
// pairs by floor(t / width).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace nc::stats {

struct SeriesPoint {
  double t = 0.0;  // bucket start time
  double value = 0.0;
};

/// Accumulates sums (and counts) per time bucket. O(1) memory per bucket.
class BucketedSum {
 public:
  explicit BucketedSum(double bucket_width);

  void add(double t, double v);

  /// Bucket sums in time order. Buckets with no samples are absent.
  [[nodiscard]] std::vector<SeriesPoint> sums() const;
  /// Bucket means in time order.
  [[nodiscard]] std::vector<SeriesPoint> means() const;

  [[nodiscard]] double bucket_width() const noexcept { return width_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept { return buckets_.size(); }

 private:
  struct Cell {
    double sum = 0.0;
    std::uint64_t count = 0;
  };
  double width_;
  std::map<std::int64_t, Cell> buckets_;
};

/// Stores every value per bucket so that medians/percentiles can be taken.
class BucketedValues {
 public:
  explicit BucketedValues(double bucket_width);

  void add(double t, double v);

  /// Absorbs another collection with the same bucket width. Bucket contents
  /// are concatenated; medians/quantiles sort per bucket, so those queries
  /// are independent of merge order (means() sums in stored order and may
  /// differ in the last ulp across orders).
  void merge(const BucketedValues& other);

  [[nodiscard]] std::vector<SeriesPoint> medians() const;
  [[nodiscard]] std::vector<SeriesPoint> means() const;
  [[nodiscard]] std::vector<SeriesPoint> quantiles(double q) const;

  [[nodiscard]] double bucket_width() const noexcept { return width_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept { return buckets_.size(); }

 private:
  double width_;
  std::map<std::int64_t, std::vector<double>> buckets_;
};

}  // namespace nc::stats

#include "stats/p2_quantile.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace nc::stats {

P2Quantile::P2Quantile(double q) : q_(q) {
  NC_CHECK_MSG(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
  desired_ = {1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0};
  increments_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
}

void P2Quantile::add(double x) noexcept {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
    }
    return;
  }
  ++count_;

  // Locate the cell containing x and update extreme markers.
  int k = 0;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    for (k = 0; k < 4; ++k)
      if (x < heights_[k + 1]) break;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  adjust_markers();
}

void P2Quantile::adjust_markers() noexcept {
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const bool move_right = d >= 1.0 && positions_[i + 1] - positions_[i] > 1.0;
    const bool move_left = d <= -1.0 && positions_[i - 1] - positions_[i] < -1.0;
    if (!move_right && !move_left) continue;
    const double dir = d >= 0 ? 1.0 : -1.0;
    double h = parabolic(i, dir);
    if (!(heights_[i - 1] < h && h < heights_[i + 1])) h = linear(i, dir);
    heights_[i] = h;
    positions_[i] += dir;
  }
}

double P2Quantile::parabolic(int i, double d) const noexcept {
  const double np = positions_[i + 1];
  const double n = positions_[i];
  const double nm = positions_[i - 1];
  const double hp = heights_[i + 1];
  const double h = heights_[i];
  const double hm = heights_[i - 1];
  return h + d / (np - nm) *
                 ((n - nm + d) * (hp - h) / (np - n) +
                  (np - n - d) * (h - hm) / (n - nm));
}

double P2Quantile::linear(int i, double d) const noexcept {
  const int j = i + static_cast<int>(d);
  return heights_[i] + d * (heights_[j] - heights_[i]) /
                           (positions_[j] - positions_[i]);
}

double P2Quantile::value() const noexcept {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact while the sample is tiny.
    std::array<double, 5> tmp = heights_;
    std::sort(tmp.begin(), tmp.begin() + static_cast<long>(count_));
    const auto idx = static_cast<std::size_t>(
        std::ceil(q_ * static_cast<double>(count_))) -
        1;
    return tmp[std::min<std::size_t>(idx, count_ - 1)];
  }
  return heights_[2];
}

}  // namespace nc::stats

#include "stats/timeseries.hpp"

#include <cmath>

#include "common/check.hpp"
#include "stats/percentile.hpp"

namespace nc::stats {

namespace {
std::int64_t bucket_of(double t, double width) {
  return static_cast<std::int64_t>(std::floor(t / width));
}
}  // namespace

BucketedSum::BucketedSum(double bucket_width) : width_(bucket_width) {
  NC_CHECK_MSG(bucket_width > 0.0, "bucket width must be positive");
}

void BucketedSum::add(double t, double v) {
  Cell& c = buckets_[bucket_of(t, width_)];
  c.sum += v;
  ++c.count;
}

std::vector<SeriesPoint> BucketedSum::sums() const {
  std::vector<SeriesPoint> out;
  out.reserve(buckets_.size());
  for (const auto& [b, cell] : buckets_)
    out.push_back({static_cast<double>(b) * width_, cell.sum});
  return out;
}

std::vector<SeriesPoint> BucketedSum::means() const {
  std::vector<SeriesPoint> out;
  out.reserve(buckets_.size());
  for (const auto& [b, cell] : buckets_)
    out.push_back({static_cast<double>(b) * width_,
                   cell.count ? cell.sum / static_cast<double>(cell.count) : 0.0});
  return out;
}

BucketedValues::BucketedValues(double bucket_width) : width_(bucket_width) {
  NC_CHECK_MSG(bucket_width > 0.0, "bucket width must be positive");
}

void BucketedValues::add(double t, double v) {
  buckets_[bucket_of(t, width_)].push_back(v);
}

void BucketedValues::merge(const BucketedValues& other) {
  NC_CHECK_MSG(width_ == other.width_, "bucket width mismatch");
  for (const auto& [b, vs] : other.buckets_) {
    auto& mine = buckets_[b];
    mine.insert(mine.end(), vs.begin(), vs.end());
  }
}

std::vector<SeriesPoint> BucketedValues::medians() const { return quantiles(0.5); }

std::vector<SeriesPoint> BucketedValues::means() const {
  std::vector<SeriesPoint> out;
  out.reserve(buckets_.size());
  for (const auto& [b, vs] : buckets_) {
    double s = 0.0;
    for (double v : vs) s += v;
    out.push_back({static_cast<double>(b) * width_,
                   vs.empty() ? 0.0 : s / static_cast<double>(vs.size())});
  }
  return out;
}

std::vector<SeriesPoint> BucketedValues::quantiles(double q) const {
  std::vector<SeriesPoint> out;
  out.reserve(buckets_.size());
  for (const auto& [b, vs] : buckets_)
    out.push_back({static_cast<double>(b) * width_, percentile(vs, q * 100.0)});
  return out;
}

}  // namespace nc::stats

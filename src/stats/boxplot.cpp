#include "stats/boxplot.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "stats/percentile.hpp"

namespace nc::stats {

BoxplotStats boxplot(std::vector<double> values) {
  NC_CHECK_MSG(!values.empty(), "boxplot of empty sample");
  std::sort(values.begin(), values.end());

  BoxplotStats s;
  s.count = values.size();
  s.min = values.front();
  s.max = values.back();
  s.q1 = percentile_sorted(values, 25.0);
  s.median = percentile_sorted(values, 50.0);
  s.q3 = percentile_sorted(values, 75.0);

  const double iqr = s.q3 - s.q1;
  const double lo_fence = s.q1 - 1.5 * iqr;
  const double hi_fence = s.q3 + 1.5 * iqr;

  s.whisker_lo = s.max;
  s.whisker_hi = s.min;
  for (double v : values) {
    if (v >= lo_fence && v <= hi_fence) {
      s.whisker_lo = std::min(s.whisker_lo, v);
      s.whisker_hi = std::max(s.whisker_hi, v);
    } else {
      ++s.outliers;
    }
  }
  if (s.outliers == s.count) {  // degenerate: everything outside fences
    s.whisker_lo = s.min;
    s.whisker_hi = s.max;
  }
  return s;
}

}  // namespace nc::stats

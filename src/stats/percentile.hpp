// Exact percentile computation on finite samples.
//
// Two conventions are provided because the paper relies on nearest-rank
// semantics for the MP filter ("p = 25, the minimum with a history of four")
// while figures of merit (medians, 95th percentiles) conventionally use
// linear interpolation.
#pragma once

#include <span>
#include <vector>

namespace nc::stats {

/// Nearest-rank percentile of an ascending-sorted sample:
/// the ceil(p/100 * n)-th smallest element (1-based), so p=0 is the minimum
/// and p=100 the maximum. Requires non-empty input and p in [0, 100].
[[nodiscard]] double percentile_nearest_rank_sorted(std::span<const double> sorted,
                                                    double p);

/// Linearly interpolated percentile of an ascending-sorted sample
/// (the common "exclusive of extremes" R-7 definition used by numpy).
[[nodiscard]] double percentile_sorted(std::span<const double> sorted, double p);

/// Convenience: sorts a copy, then interpolated percentile.
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// Convenience: sorts a copy, then nearest-rank percentile.
[[nodiscard]] double percentile_nearest_rank(std::vector<double> values, double p);

/// Interpolated median of an unsorted sample (sorts a copy).
[[nodiscard]] double median(std::vector<double> values);

}  // namespace nc::stats

#include "stats/energy.hpp"

#include "common/check.hpp"

namespace nc::stats {

namespace {

double pairwise_sum(std::span<const Vec> xs) {
  // Sum over unordered pairs, then doubled: matches the ordered-pair
  // double sums in the energy statistic.
  double s = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    for (std::size_t j = i + 1; j < xs.size(); ++j)
      s += xs[i].distance_to(xs[j]);
  return 2.0 * s;
}

double cross_sum(std::span<const Vec> a, std::span<const Vec> b) {
  double s = 0.0;
  for (const Vec& x : a)
    for (const Vec& y : b) s += x.distance_to(y);
  return s;
}

double combine(double sum_ab, double sum_aa, double sum_bb, double n1, double n2) {
  return n1 * n2 / (n1 + n2) *
         (2.0 / (n1 * n2) * sum_ab - sum_aa / (n1 * n1) - sum_bb / (n2 * n2));
}

}  // namespace

double energy_distance(std::span<const Vec> a, std::span<const Vec> b) {
  NC_CHECK_MSG(!a.empty() && !b.empty(), "energy distance of empty sample");
  return combine(cross_sum(a, b), pairwise_sum(a), pairwise_sum(b),
                 static_cast<double>(a.size()), static_cast<double>(b.size()));
}

void IncrementalEnergy::set_base(std::span<const Vec> a) {
  NC_CHECK_MSG(!a.empty(), "empty base sample");
  a_.assign(a.begin(), a.end());
  sum_aa_ = pairwise_sum(a_);
  // Cross terms must be rebuilt against the new base.
  sum_ab_ = 0.0;
  for (const Vec& x : a_)
    for (const Vec& y : b_) sum_ab_ += x.distance_to(y);
}

void IncrementalEnergy::push_current(const Vec& v) {
  for (const Vec& x : a_) sum_ab_ += x.distance_to(v);
  for (const Vec& y : b_) sum_bb_ += 2.0 * y.distance_to(v);
  b_.push_back(v);
}

void IncrementalEnergy::pop_current() {
  NC_CHECK_MSG(!b_.empty(), "pop from empty current window");
  const Vec v = b_.front();
  b_.pop_front();
  for (const Vec& y : b_) sum_bb_ -= 2.0 * y.distance_to(v);
  for (const Vec& x : a_) sum_ab_ -= x.distance_to(v);
}

void IncrementalEnergy::reset() noexcept {
  a_.clear();
  b_.clear();
  sum_aa_ = sum_bb_ = sum_ab_ = 0.0;
}

double IncrementalEnergy::value() const {
  NC_CHECK_MSG(!a_.empty() && !b_.empty(), "energy of empty window");
  return combine(sum_ab_, sum_aa_, sum_bb_, static_cast<double>(a_.size()),
                 static_cast<double>(b_.size()));
}

}  // namespace nc::stats

// Empirical cumulative distribution over a collected sample.
//
// Collect values with add(), then query quantiles / CDF points. The paper's
// evaluation reports most results as CDFs over nodes or over seconds
// (Figs. 5, 11, 13); benches print these at fixed probability grid points.
#pragma once

#include <span>
#include <vector>

namespace nc::stats {

class Ecdf {
 public:
  Ecdf() = default;
  explicit Ecdf(std::vector<double> values) : values_(std::move(values)) {
    sorted_ = false;
  }

  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }

  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }

  /// Interpolated quantile, q in [0, 1].
  [[nodiscard]] double quantile(double q) const;

  /// Fraction of the sample <= x.
  [[nodiscard]] double fraction_at_or_below(double x) const;
  /// Fraction of the sample > x.
  [[nodiscard]] double fraction_above(double x) const {
    return 1.0 - fraction_at_or_below(x);
  }

  [[nodiscard]] double min() const { return quantile(0.0); }
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double max() const { return quantile(1.0); }

  /// Sorted sample (ascending); valid until the next add().
  [[nodiscard]] std::span<const double> sorted_values() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
};

}  // namespace nc::stats

// Trace-replay driver: the paper's simulator (Sec. IV-A).
//
// Feeds a recorded (or synthetically generated) ping trace through the full
// per-node coordinate pipeline, mimicking Vivaldi's distributed behavior:
// when the trace says node i measured node j at time t, node i observes
// node j's *current* advertised state (system coordinate + error estimate)
// together with the recorded raw RTT. The paper validated that this replay
// tracks a live deployment closely; Sec. VI's PlanetLab run corresponds to
// our OnlineSimulator.
#pragma once

#include <memory>
#include <vector>

#include "core/nc_client.hpp"
#include "latency/link_model.hpp"
#include "latency/trace.hpp"
#include "sim/metrics.hpp"

namespace nc::sim {

struct ReplayConfig {
  NCClientConfig client;  // identical configuration on every node

  double duration_s = 4.0 * 3600.0;
  /// Accuracy/stability measured from here (paper: second half of the run).
  double measure_start_s = 2.0 * 3600.0;

  bool collect_timeseries = false;
  double timeseries_bucket_s = 600.0;
  bool collect_oracle = false;

  std::vector<NodeId> tracked_nodes;
  double track_interval_s = 600.0;
};

class ReplayDriver {
 public:
  ReplayDriver(const ReplayConfig& config, int num_nodes);

  /// Replays every record (records past duration_s are ignored). `oracle`
  /// optionally supplies ground-truth RTTs for oracle metrics — pass the
  /// generating LatencyNetwork. Call once.
  void run(lat::TraceSource& source, lat::LatencyNetwork* oracle = nullptr);

  [[nodiscard]] MetricsCollector& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsCollector& metrics() const noexcept { return metrics_; }
  [[nodiscard]] NCClient& client(NodeId id) { return *clients_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] int num_nodes() const noexcept { return static_cast<int>(clients_.size()); }

 private:
  ReplayConfig config_;
  std::vector<std::unique_ptr<NCClient>> clients_;
  MetricsCollector metrics_;
  double next_track_t_ = 0.0;
};

}  // namespace nc::sim

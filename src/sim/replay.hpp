// Trace-replay driver: the paper's simulator (Sec. IV-A).
//
// Feeds a recorded (or synthetically generated) ping trace through the full
// per-node coordinate pipeline, mimicking Vivaldi's distributed behavior:
// when the trace says node i measured node j at time t, node i observes
// node j's advertised state (system coordinate + error estimate) together
// with the recorded raw RTT. The paper validated that this replay tracks a
// live deployment closely; Sec. VI's PlanetLab run corresponds to our
// online mode.
//
// Since PR 5 replay runs on the same epoch-sharded kernel as online mode
// (sim/sharded_sim.hpp): ReplayDriver is a thin facade that builds a
// replay-mode ShardedEngine from its config. Records are routed through the
// kernel's epoch mailboxes — a record at time t is observed against the
// observed node's state at time t, at the next epoch boundary — and a run
// parallelizes over `config.shards` worker threads with bit-identical
// metrics for any shard count. ReplayConfig (including `epoch_s` and
// `shards`) lives in sharded_sim.hpp next to the kernel.
#pragma once

#include <memory>

#include "sim/sharded_sim.hpp"

namespace nc::sim {

class ReplayDriver {
 public:
  ReplayDriver(const ReplayConfig& config, int num_nodes)
      : engine_(std::make_unique<ShardedEngine>(config, num_nodes)) {}

  /// Replays every record (records past duration_s are ignored). `oracle`
  /// optionally supplies ground-truth RTTs for oracle metrics — pass the
  /// generating LatencyNetwork. Call once.
  void run(lat::TraceSource& source, lat::LatencyNetwork* oracle = nullptr) {
    engine_->run(source, oracle);
  }

  /// Replays a pre-partitioned trace (lat::partition_trace): one slice per
  /// shard, each read by its own worker — bit-identical to run(source) on
  /// the unpartitioned trace. No oracle (not concurrency-safe). Call once.
  void run_partitioned(const std::vector<lat::TraceSource*>& sources) {
    engine_->run_partitioned(sources);
  }

  [[nodiscard]] MetricsCollector& metrics() noexcept { return engine_->metrics(); }
  [[nodiscard]] const MetricsCollector& metrics() const noexcept {
    return engine_->metrics();
  }
  [[nodiscard]] NCClient& client(NodeId id) { return engine_->client(id); }
  [[nodiscard]] int num_nodes() const noexcept { return engine_->num_nodes(); }
  /// Kernel events processed (record stamps + observations), the unit
  /// bench_event_core reports per second for replay rows.
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return engine_->events_processed();
  }
  [[nodiscard]] MemoryBudget memory_budget() const {
    return engine_->memory_budget();
  }
  /// Ownership hand-offs executed at rebalance barriers (see sharded_sim.hpp).
  [[nodiscard]] std::uint64_t migrated_nodes() const noexcept {
    return engine_->migrated_nodes();
  }

 private:
  std::unique_ptr<ShardedEngine> engine_;
};

}  // namespace nc::sim

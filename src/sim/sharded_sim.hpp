// Epoch-sharded online simulator: one big run across all cores.
//
// ExperimentGrid parallelizes across independent runs; this engine
// parallelizes WITHIN one online run. Nodes are block-partitioned over W
// worker shards. Each shard owns everything its nodes touch — NCClient,
// NeighborSet, per-node RNG streams, the availability/overload process of
// its nodes and the latency state of every DIRECTED link its nodes ping —
// and advances in lock-step epochs of `ping_interval_s`. Within an epoch a
// shard processes only its own entities; all cross-node interaction
// (ping delivery, pong observation, per-destination metric records) travels
// as messages handed over at epoch boundaries and merged into a canonical,
// message-intrinsic order (shard_mailbox.hpp).
//
// Determinism: results are bit-identical for ANY shard count, because
//  * every stochastic draw belongs to exactly one entity's derived stream
//    (rngstream::k{PingTimer,Bootstrap,Node,DirectedLink,Neighbor}, plus
//    Vivaldi's per-node stream), so no global draw order exists;
//  * each entity consumes its events in a canonical order: local timers are
//    totally ordered by time per node, and delivered batches are merged in
//    the canonical message order before entering the shard's queue;
//  * cross-node per-second metric sums are accumulated in fixed-point by
//    MetricsCollector and merged associatively (MetricsCollector::merge).
//
// The steady-state event loop is allocation-free (DESIGN.md "Event core"):
// per-shard calendar queues replace binary heaps, delivery batches are
// k-way merges into buffers reused across epochs, and per-link latency
// state lives in a dense directed-link-indexed array instead of a hash map.
//
// Protocol semantics differ from OnlineSimulator in one declared way:
// messages cross the network at epoch granularity (a ping sent in epoch k
// is answered in epoch k+1 and observed one delivery later, each step
// clamped up to the delivering epoch's start), and node up/down/overload
// state advances at epoch starts instead of per query. Both engines
// implement the same paper protocol; shards=1 is the reference semantics
// for sharded runs — compare sharded runs against each other, not against
// OnlineSimulator.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/nc_client.hpp"
#include "core/neighbor_set.hpp"
#include "latency/link_model.hpp"
#include "latency/topology.hpp"
#include "sim/metrics.hpp"
#include "sim/online_sim.hpp"
#include "sim/shard_mailbox.hpp"
#include "sim/sharded_route_change.hpp"

namespace nc::sim {

class ShardedOnlineSimulator {
 public:
  /// `shards` >= 1 worker threads; the topology/link/availability configs
  /// play the role of OnlineSimulator's shared LatencyNetwork (the sharded
  /// engine derives all link/node stochastic state itself, from
  /// config.seed, so it owns the network model rather than borrowing one).
  ShardedOnlineSimulator(const OnlineSimConfig& config, int shards,
                         lat::Topology topology,
                         const lat::LinkModelConfig& link_config = {},
                         const lat::AvailabilityConfig& availability = {},
                         std::vector<ShardedRouteChange> route_changes = {});

  /// Runs the full simulation across `shards` threads. Call once.
  void run();

  /// Merged metrics over all shards; valid after run().
  [[nodiscard]] MetricsCollector& metrics() noexcept;
  [[nodiscard]] const MetricsCollector& metrics() const noexcept;

  [[nodiscard]] NCClient& client(NodeId id) { return *clients_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] NeighborSet& neighbors(NodeId id) { return neighbors_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] int num_nodes() const noexcept { return static_cast<int>(clients_.size()); }
  [[nodiscard]] int shards() const noexcept { return static_cast<int>(shards_.size()); }
  [[nodiscard]] int shard_of(NodeId id) const noexcept;

  [[nodiscard]] std::uint64_t pings_sent() const noexcept { return pings_sent_; }
  [[nodiscard]] std::uint64_t pings_lost() const noexcept { return pings_lost_; }
  /// Queue events processed across all shards (timers + deliveries), the
  /// unit bench_event_core reports per second.
  [[nodiscard]] std::uint64_t events_processed() const noexcept { return events_; }

 private:
  /// Availability/overload process of one node, advanced at epoch starts by
  /// the owning shard (epoch-granular analogue of LatencyNetwork::node_at;
  /// the state machine itself is the shared lat::NodeDynamics).
  struct NodeDyn {
    Rng rng;
    bool initialized = false;
    lat::NodeDynamics dyn;
  };

  /// Epoch-wide view of a node, written by its owner in the delivery phase
  /// and read by every shard in the processing phase (barrier-separated).
  struct NodeSnapshot {
    std::uint8_t up = 1;
    double burst_end_t = -1.0;
  };

  /// Latency state of one DIRECTED link, owned by the source node's shard.
  /// Streams are per direction (route factor, bursts, jitter draws evolve
  /// independently for i->j and j->i); controlled route changes apply to
  /// both directions. The state machine is the shared lat::LinkDynamics.
  /// Initialization stays lazy (stream seeded at first-touch time), but the
  /// slot itself lives in the shard's dense directed-link array.
  struct DirLink {
    Rng rng;
    lat::LinkDynamics dyn;
    bool initialized = false;
  };

  struct Shard {
    std::vector<NodeId> owned;  // contiguous block [first_owned, ...]
    NodeId first_owned = 0;
    ShardEventQueue queue;
    /// Dense directed-link state: index (src - first_owned) * n + dst.
    /// Replaces a u64-keyed hash map — O(1) arithmetic lookup, no rehash
    /// allocations, one cache line per hot link.
    std::vector<DirLink> links;
    /// Delivery batch buffer, reused every epoch (collect_into target).
    std::vector<ShardMessage> inbox;
    /// Delivered-event staging for ShardEventQueue::push_batch, reused
    /// every epoch.
    std::vector<ShardEvent> staging;
    std::unique_ptr<MetricsCollector> collector;
    std::uint64_t pings_sent = 0;
    std::uint64_t pings_lost = 0;
    std::uint64_t events = 0;
  };

  [[nodiscard]] int shard_idx_of(const Shard& s) const noexcept {
    return static_cast<int>(&s - shards_.data());
  }
  void advance_node_dyn(NodeId id, double t);
  void deliver_batch(Shard& shard, int shard_idx, double epoch_start);
  void process_epoch(Shard& shard, int shard_idx, double epoch_end);
  void on_ping_timer(Shard& shard, double t, NodeId node);
  void on_delivered_ping(Shard& shard, double t_proc, const ShardEvent& ev);
  void on_delivered_pong(Shard& shard, double t_proc, const ShardEvent& ev);
  DirLink& link_at(Shard& shard, NodeId src, NodeId dst, double t);

  OnlineSimConfig config_;
  lat::Topology topology_;
  lat::LinkModelConfig link_config_;
  lat::AvailabilityConfig availability_;
  std::vector<ShardedRouteChange> route_changes_;

  // Node-indexed state; each element is touched only by its owner shard
  // during parallel phases (snapshots_ additionally read by all shards in
  // processing phases, barrier-separated from the owner's writes).
  std::vector<std::unique_ptr<NCClient>> clients_;
  std::vector<NeighborSet> neighbors_;
  std::vector<Rng> timer_rngs_;
  std::vector<std::uint64_t> msg_seq_;
  std::vector<NodeDyn> node_dyn_;
  std::vector<NodeSnapshot> snapshots_;

  std::vector<Shard> shards_;
  EpochMailbox mailbox_;

  std::uint64_t pings_sent_ = 0;
  std::uint64_t pings_lost_ = 0;
  std::uint64_t events_ = 0;
  bool ran_ = false;
};

}  // namespace nc::sim

// The epoch-sharded simulation engine: one kernel for every run.
//
// ExperimentGrid parallelizes across independent runs; this engine
// parallelizes WITHIN one run, and since PR 5 it drives BOTH simulation
// modes — the event-driven online deployment (paper Sec. VI) and trace
// replay (Sec. IV-A). Nodes are block-partitioned over W worker shards;
// with rebalance_interval_epochs > 0 the partition becomes DYNAMIC — every
// k-th barrier each shard deterministically re-plans placement from shared
// per-node event weights and hands a bounded batch of nodes to new owners
// through the migration channel (core/ownership.hpp; DESIGN.md Sec. 14) with
// bit-identical results.
// Each shard owns everything its nodes touch — NCClient, NeighborSet,
// per-node RNG streams, the availability/overload process of its nodes and
// the latency state of every DIRECTED link its nodes ping — and advances in
// lock-step epochs. Within an epoch a shard processes only its own
// entities; all cross-node interaction (ping delivery, pong observation,
// replay-record routing, per-destination metric records) travels as
// messages handed over at epoch boundaries and merged into a canonical,
// message-intrinsic order (shard_mailbox.hpp).
//
// Online mode: epochs are `ping_interval_s` long; shards fire their nodes'
// ping timers, sample directed links, and exchange ping/pong traffic.
//
// Replay mode: epochs are `epoch_s` long and the traffic comes from a
// trace. With a single source, shard 0 doubles as the READER: during its
// processing phase it reads one epoch window of records ahead and mails
// each record as a kObs message to the OBSERVED node's owner shard. With a
// PRE-PARTITIONED trace (run_partitioned; lat::partition_trace splits one
// pass by owner shard of dst), EVERY shard reads its own slice in its own
// processing phase — the serial-reader Amdahl bottleneck disappears, and
// the result stays bit-identical because the canonical merge order
// (t, kind, from, to, seq) only consults seq for records identical in the
// first four keys, which necessarily sit in the same slice in their
// original relative order. That shard answers during the
// next epoch exactly like a pinged node answers a ping — it stamps its
// client's current coordinate state into a kPong at the record's own
// timestamp — and the pong is observed by the recorded source node one
// hand-off later, clamped up to the delivering epoch's start. A record at
// time t is therefore observed against the observed node's state at time t,
// at most ~2 epochs after t; records whose observation would land at or
// past duration_s are dropped (declared end-of-run semantics, exactly like
// the online engine's in-flight pings).
//
// Determinism: results are bit-identical for ANY shard count, because
//  * every stochastic draw belongs to exactly one entity's derived stream
//    (rngstream::k{PingTimer,Bootstrap,Node,DirectedLink,Neighbor}, plus
//    Vivaldi's per-node stream; replay mode draws nothing at all — the
//    trace and the serial reader own every random bit);
//  * each entity consumes its events in a canonical order: local timers are
//    totally ordered by time per node, and delivered batches are merged in
//    the canonical message order before entering the shard's queue;
//  * cross-node per-second metric sums are accumulated in fixed-point by
//    MetricsCollector and merged associatively (MetricsCollector::merge).
//
// The steady-state event loop is allocation-free (DESIGN.md "Event core"):
// per-shard calendar queues replace binary heaps, delivery batches are
// k-way merges into buffers reused across epochs, and per-link latency
// state lives in a directed-link-indexed ShardLinkStore — flat at
// bench-tier sizes, lazily paged beyond, per-row compact-indexed at
// 100k-node scale (sim/link_store.hpp).
//
// Protocol semantics are declared per mode: messages cross the network at
// epoch granularity (a ping sent in epoch k is answered in epoch k+1 and
// observed one delivery later, each step clamped up to the delivering
// epoch's start; a replay record is answered in the epoch containing it and
// observed at the next boundary), and node up/down/overload state advances
// at epoch starts instead of per query. shards=1 is the reference
// semantics; the retired serial engines' immediate-delivery semantics no
// longer exist as a separate code path (OnlineSimulator and ReplayDriver
// are thin facades over this kernel).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/nc_client.hpp"
#include "core/neighbor_set.hpp"
#include "core/ownership.hpp"
#include "estimate/snapshot.hpp"
#include "latency/link_model.hpp"
#include "latency/topology.hpp"
#include "latency/trace.hpp"
#include "sim/link_store.hpp"
#include "sim/metrics.hpp"
#include "sim/online_sim.hpp"
#include "sim/shard_mailbox.hpp"
#include "sim/sharded_route_change.hpp"

namespace nc::sim {

/// Replay-mode configuration (the paper's simulator methodology, Sec. IV-A):
/// every node runs an identically-configured client; the observation stream
/// comes from a recorded or generated trace instead of live timers.
struct ReplayConfig {
  NCClientConfig client;  // identical configuration on every node

  double duration_s = 4.0 * 3600.0;
  /// Accuracy/stability measured from here (paper: second half of the run).
  double measure_start_s = 2.0 * 3600.0;

  /// Epoch length of the sharded kernel (the replay analogue of the online
  /// engine's ping_interval_s). run_scenario sets it to the workload's trace
  /// cadence; the default matches TraceGenConfig's 1 Hz per-node pings.
  double epoch_s = 1.0;
  /// Worker shards (>= 1). Results are bit-identical for any value.
  int shards = 1;

  bool collect_timeseries = false;
  double timeseries_bucket_s = 600.0;
  bool collect_oracle = false;

  /// Estimation backend (per-shard instances; see est::EstimatorSpec).
  est::EstimatorSpec estimator;

  std::vector<NodeId> tracked_nodes;
  double track_interval_s = 600.0;

  /// Same contract as OnlineSimConfig: publish epoch snapshots for
  /// concurrent readers (off by default; forced on by backend kSnapshot).
  bool publish_snapshots = false;
  int snapshot_interval_epochs = 1;
  /// Same contract as OnlineSimConfig: churn-proportional delta publication
  /// (full base every snapshot_base_interval publishes, compact deltas in
  /// between). Observationally identical to full publication.
  bool snapshot_deltas = false;
  int snapshot_base_interval = 16;

  /// Same contract as OnlineSimConfig: dynamic shard ownership every k
  /// epochs (0 keeps the static block partition).
  int rebalance_interval_epochs = 0;
  int rebalance_max_moves = 8;
};

/// Per-run byte accounting of the engine's big state blocks (surfaced in
/// eval reports and BENCH rows; fields are heap bytes held at query time).
struct MemoryBudget {
  std::uint64_t client_bytes = 0;     // NCClient slabs: link state + filters
  std::uint64_t link_bytes = 0;       // per-shard directed-link stores
  std::uint64_t estimator_bytes = 0;  // backend state (matrix/coordinates)
  std::uint64_t mailbox_bytes = 0;    // epoch mailbox runs + merge scratch
  /// Gossip membership (NeighborSet) across all nodes — O(degree) per node
  /// since the compact-index membership replaced the n-bit bitmaps (0 in
  /// replay mode, which has no neighbor sets).
  std::uint64_t neighbor_bytes = 0;
  /// Snapshot publication, split by side: full staged/published/pooled
  /// buffers vs the delta chain + dirty lanes + delta pool (both 0 with
  /// publication off; delta side 0 in full-publication mode). The engine's
  /// last-published mirror counts on the base side — it is O(n) whether or
  /// not deltas are on.
  std::uint64_t snapshot_base_bytes = 0;
  std::uint64_t snapshot_delta_bytes = 0;
  /// Dynamic-ownership state: routing tables, per-node weights, and the
  /// high-water mark of migration payloads staged at one rebalance barrier.
  std::uint64_t rebalance_bytes = 0;
  /// Both snapshot sides, for callers that only care about the block total.
  [[nodiscard]] std::uint64_t snapshot_bytes() const noexcept {
    return snapshot_base_bytes + snapshot_delta_bytes;
  }
  [[nodiscard]] std::uint64_t total() const noexcept {
    return client_bytes + link_bytes + estimator_bytes + mailbox_bytes +
           neighbor_bytes + snapshot_base_bytes + snapshot_delta_bytes +
           rebalance_bytes;
  }
};

class ShardedEngine {
 public:
  /// Online-mode engine: `shards` >= 1 worker threads; the topology/link/
  /// availability configs play the role of the retired serial engine's
  /// shared LatencyNetwork (the kernel derives all link/node stochastic
  /// state itself, from config.seed, so it owns the network model rather
  /// than borrowing one).
  ShardedEngine(const OnlineSimConfig& config, int shards,
                lat::Topology topology,
                const lat::LinkModelConfig& link_config = {},
                const lat::AvailabilityConfig& availability = {},
                std::vector<ShardedRouteChange> route_changes = {});

  /// Replay-mode engine over `num_nodes` identically-configured clients.
  ShardedEngine(const ReplayConfig& config, int num_nodes);

  /// Runs a full online simulation across the worker shards. Call once;
  /// online mode only.
  void run();

  /// Replays every record of `source` (records past duration_s are
  /// ignored). `oracle` optionally supplies ground-truth RTTs for oracle
  /// metrics — pass the generating LatencyNetwork. Call once; replay mode
  /// only.
  void run(lat::TraceSource& source, lat::LatencyNetwork* oracle = nullptr);

  /// Replays a PRE-PARTITIONED trace: sources[s] must hold exactly the
  /// records whose observed node (dst) shard s owns, in their original
  /// relative order (lat::partition_trace produces this). Every shard reads
  /// its own slice concurrently — bit-identical to run(source) on the
  /// unpartitioned trace at any shard count. No oracle: the generating
  /// LatencyNetwork is not safe to sample from concurrent readers. Call
  /// once; replay mode only; sources.size() must equal shards().
  void run_partitioned(const std::vector<lat::TraceSource*>& sources);

  /// Merged metrics over all shards; valid after run().
  [[nodiscard]] MetricsCollector& metrics() noexcept;
  [[nodiscard]] const MetricsCollector& metrics() const noexcept;

  [[nodiscard]] NCClient& client(NodeId id) { return *clients_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] NeighborSet& neighbors(NodeId id) { return neighbors_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] int num_nodes() const noexcept { return static_cast<int>(clients_.size()); }
  [[nodiscard]] int shards() const noexcept { return static_cast<int>(shards_.size()); }
  [[nodiscard]] int shard_of(NodeId id) const noexcept;

  /// RTT estimate from the active backend: routed to the shard-owned
  /// instance responsible for `a`. The application-facing query surface
  /// (examples call this instead of reaching into coordinate state).
  [[nodiscard]] std::optional<double> estimate_rtt(NodeId a, NodeId b,
                                                   double now_s);
  /// Field-wise sum of every shard instance's coverage/staleness/cost
  /// counters (also attached to metrics() after run()).
  [[nodiscard]] est::EstimatorStats estimator_stats() const;
  /// Byte accounting of the engine's big state blocks.
  [[nodiscard]] MemoryBudget memory_budget() const;

  /// The engine's snapshot hand-off point (config.publish_snapshots; see
  /// estimate/snapshot.hpp for the reader/writer contract). Readers on any
  /// thread may call latest() on it WHILE the run is in progress — that is
  /// the point; serve::CoordinateService wraps exactly this. Before the
  /// first published epoch (or with publication off) latest() is null.
  [[nodiscard]] const est::SnapshotPublisher& snapshot_publisher() const noexcept {
    return publisher_;
  }

  [[nodiscard]] std::uint64_t pings_sent() const noexcept { return pings_sent_; }
  [[nodiscard]] std::uint64_t pings_lost() const noexcept { return pings_lost_; }
  /// Queue events processed across all shards (timers + deliveries; replay:
  /// record stamps + observations), the unit bench_event_core reports per
  /// second.
  [[nodiscard]] std::uint64_t events_processed() const noexcept { return events_; }

  /// Ownership hand-offs executed at rebalance barriers (0 with rebalancing
  /// off, at shards()==1, or when the load never skews); valid after run().
  [[nodiscard]] std::uint64_t migrated_nodes() const noexcept { return migrated_; }
  /// Per-shard CPU seconds spent in the epoch loop's work segments
  /// (delivery + processing; barrier waits excluded) — the utilization basis
  /// bench_rebalance reports as a spread. Valid after run().
  [[nodiscard]] const std::vector<double>& shard_busy_seconds() const noexcept {
    return busy_s_;
  }

 private:
  enum class Mode : std::uint8_t { kOnline, kReplay };

  /// Availability/overload process of one node, advanced at epoch starts by
  /// the owning shard (epoch-granular analogue of the retired per-query
  /// LatencyNetwork::node_at; the state machine itself is the shared
  /// lat::NodeDynamics).
  struct NodeDyn {
    Rng rng;
    bool initialized = false;
    lat::NodeDynamics dyn;
  };

  /// Epoch-wide view of a node, written by its owner in the delivery phase
  /// and read by every shard in the processing phase (barrier-separated).
  struct NodeSnapshot {
    std::uint8_t up = 1;
    double burst_end_t = -1.0;
  };

  /// Latency state of one DIRECTED link, owned by the source node's shard.
  /// Streams are per direction (route factor, bursts, jitter draws evolve
  /// independently for i->j and j->i); controlled route changes apply to
  /// both directions. The state machine is the shared lat::LinkDynamics.
  /// Initialization stays lazy (stream seeded at first-touch time), but the
  /// slot itself lives in the shard's dense directed-link store.
  struct DirLink {
    Rng rng;
    lat::LinkDynamics dyn;
    bool initialized = false;
  };

  /// One node's packed state crossing shards at a rebalance barrier, staged
  /// in migrations_ by the departing owner after its processing phase and
  /// installed by the arriving owner at the top of the next epoch. Shared
  /// node-indexed arrays (clients_, neighbors_, timer_rngs_, msg_seq_,
  /// node_dyn_, snapshots_) transfer by ownership hand-off alone — the
  /// barriers order the old owner's last write before the new owner's first.
  struct NodeMigration {
    NodeId node = kInvalidNode;
    /// Initialized directed-link slots of the node's store row, dst
    /// ascending (online mode only).
    std::vector<std::pair<std::uint32_t, DirLink>> links;
    est::EstimatorNodeState estimator;
    MetricsNodeState metrics;
    /// The node's not-yet-processed queue events (re-armed ping timer,
    /// far-future pongs), canonically ordered.
    std::vector<ShardEvent> pending;

    [[nodiscard]] std::uint64_t payload_bytes() const noexcept {
      return sizeof(*this) +
             links.capacity() * sizeof(std::pair<std::uint32_t, DirLink>) +
             estimator.cells.capacity() *
                 sizeof(est::EstimatorNodeState::MatrixCell) +
             (metrics.errors.capacity() +
              metrics.second_movements.capacity()) * sizeof(double) +
             pending.capacity() * sizeof(ShardEvent);
    }
  };

  struct Shard {
    std::vector<NodeId> owned;  // sorted; contiguous block unless rebalancing
    NodeId first_owned = 0;     // 0 when rebalancing (full-height stores)
    ShardEventQueue queue;
    /// Directed-link state indexed (src - first_owned, dst). Flat at
    /// bench-tier sizes, lazily paged beyond, per-row compact-indexed at
    /// large n (ShardLinkStore picks the layout; all observationally
    /// identical).
    ShardLinkStore<DirLink> links;
    /// Delivery batch buffer, reused every epoch (collect_into target).
    std::vector<ShardMessage> inbox;
    /// Delivered-event staging for ShardEventQueue::push_batch, reused
    /// every epoch.
    std::vector<ShardEvent> staging;
    std::unique_ptr<MetricsCollector> collector;
    /// The shard's estimation backend instance: fed every observation whose
    /// OBSERVER the shard owns, in the shard's canonical processing order
    /// (which is what keeps any backend bit-identical at any shard count).
    std::unique_ptr<est::LatencyEstimator> estimator;
    /// The shard's own copy of the ownership map: read for every mailbox
    /// routing decision, mutated only by this shard's thread (every shard
    /// applies the identical deterministic plan, so the copies never
    /// diverge).
    OwnershipMap ownership;
    /// The plan decided this rebalance epoch, applied (owned lists +
    /// arriving state) at the top of the next epoch, then cleared.
    std::vector<RebalanceMove> pending_plan;
    /// Drain buffer for migrations_.collect_into, reused across barriers.
    std::vector<NodeMigration> arrivals;
    /// High-water mark of migration payload bytes received at one barrier.
    std::uint64_t rebalance_recv_hwm = 0;
    /// CPU seconds inside this shard's work segments (barriers excluded).
    double busy_s = 0.0;
    std::uint64_t pings_sent = 0;
    std::uint64_t pings_lost = 0;
    std::uint64_t events = 0;
  };

  [[nodiscard]] int shard_idx_of(const Shard& s) const noexcept {
    return static_cast<int>(&s - shards_.data());
  }
  void init_snapshot_publication(int shards, int num_nodes);
  void init_shards(int shards, int num_nodes);
  void advance_node_dyn(NodeId id, double t);
  void deliver_batch(Shard& shard, int shard_idx, double epoch_start);
  void process_epoch(Shard& shard, int shard_idx, double epoch_end);
  void run_epochs();
  void on_ping_timer(Shard& shard, double t, NodeId node);
  void on_delivered_ping(Shard& shard, double t_proc, const ShardEvent& ev);
  void on_delivered_pong(Shard& shard, double t_proc, const ShardEvent& ev);
  void on_delivered_obs(Shard& shard, const ShardEvent& ev);
  /// Replay reader (a reading shard's processing phase): routes every
  /// record with t < t_limit to the observed node's owner as a kObs
  /// message. Single-source replay runs one reader on shard 0; partitioned
  /// replay runs one per shard over its own slice.
  void read_trace_until(int shard_idx, double t_limit);
  DirLink& link_at(Shard& shard, NodeId src, NodeId dst, double t);
  /// Stamps the shard's owned nodes for the pending publish: into the staged
  /// full buffer when one is staged (base epochs / full mode), and — in
  /// delta mode — diffs each owned slot against the last-published mirror,
  /// appending changed slots to the shard's dirty lane and updating the
  /// mirror. Owned slots only (disjoint writes, ordered before the publish
  /// by the epoch barriers).
  void write_snapshot_slice(int shard_idx, const Shard& shard);

  // --- Dynamic ownership (rebalance_interval_epochs > 0) ------------------
  /// Top of a rebalance-decision epoch's delivery phase: every shard
  /// computes the IDENTICAL plan from the shared weight counters (stable
  /// since the last barrier) and applies it to its own routing copy, so all
  /// sends of this epoch already route to the post-barrier owners.
  void decide_rebalance(Shard& shard);
  /// End of the decision epoch's processing phase: the departing owner packs
  /// each migrating node it owns into the migration channel.
  void pack_departures(Shard& shard, int shard_idx);
  /// Top of the NEXT epoch's delivery phase (barrier-separated from the
  /// pack): owned lists are updated and arriving state is installed BEFORE
  /// node dynamics advance and the epoch's messages deliver.
  void apply_migrations(Shard& shard, int shard_idx);

  Mode mode_;
  OnlineSimConfig config_;  // replay mode maps ReplayConfig onto this
  lat::Topology topology_;  // online mode only
  lat::LinkModelConfig link_config_;
  lat::AvailabilityConfig availability_;
  /// Scheduled route changes indexed by undirected link key, so lazy link
  /// initialization looks its schedule up in O(1) instead of scanning the
  /// full list (regional-shift presets schedule O(n) links at once).
  std::unordered_map<std::uint64_t, std::vector<std::pair<double, double>>>
      route_changes_;

  // Node-indexed state; each element is touched only by its owner shard
  // during parallel phases (snapshots_ additionally read by all shards in
  // processing phases, barrier-separated from the owner's writes).
  std::vector<std::unique_ptr<NCClient>> clients_;
  std::vector<NeighborSet> neighbors_;   // online mode only
  std::vector<Rng> timer_rngs_;          // online mode only
  std::vector<std::uint64_t> msg_seq_;
  std::vector<NodeDyn> node_dyn_;        // online mode only
  std::vector<NodeSnapshot> snapshots_;  // online mode only

  std::vector<Shard> shards_;
  EpochMailbox mailbox_;

  /// Dynamic ownership state. ownership_ seeds the per-shard copies and,
  /// after the workers join, is re-synced from shard 0 so shard_of() /
  /// estimate_rtt() route to the final owners. node_weight_[id] counts the
  /// node's processed events since the last decision: incremented by the
  /// owner during processing phases, read by every shard at decision points
  /// in delivery phases, reset by the (current) owner right before the
  /// decision epoch's processing — all barrier-separated, so the shared
  /// vector needs no atomics.
  bool rebalancing_ = false;
  OwnershipMap ownership_;
  std::vector<std::uint32_t> node_weight_;
  /// Nodes that must never migrate (drift-tracked nodes: their collector
  /// state is pinned to the shard whose tracked subset names them).
  std::vector<std::uint8_t> pinned_;
  MigrationChannel<NodeMigration> migrations_;
  std::uint64_t migrated_ = 0;
  std::vector<double> busy_s_;

  /// Epoch-snapshot hand-off (config_.publish_snapshots). On a snapshot
  /// epoch shard 0 raises snap_publish_pending_ at the top of the iteration
  /// (before the delivery barrier) and acquires a full staging buffer when
  /// the publisher's next publish ships a base (always, in full mode);
  /// every shard stamps its owned slice after its processing phase, and
  /// shard 0 publishes at the top of the next iteration — all cross-thread
  /// hand-offs ordered by the epoch barriers.
  est::SnapshotPublisher publisher_;
  est::EpochSnapshot* snap_staging_ = nullptr;
  bool snap_publish_pending_ = false;
  /// Delta mode's diff reference: every node's state as of its last
  /// published record. Owner-only writes at the stamp step (same slice
  /// discipline as the staging buffer), so migration hand-offs carry it
  /// implicitly with ownership.
  std::vector<est::SnapshotNode> last_published_;

  /// One trace reader's cursor. readers_[s] is touched only by shard s's
  /// thread once the run starts (the priming reads happen before the
  /// workers launch); single-source replay activates readers_[0] only.
  struct ReaderState {
    lat::TraceSource* source = nullptr;
    std::optional<lat::TraceRecord> pending;
    std::uint64_t seq = 0;
    bool done = true;
  };

  // Replay reader state.
  std::vector<ReaderState> readers_;
  lat::LatencyNetwork* oracle_ = nullptr;
  /// Partitioned mode: each reading shard checks it owns every dst it reads
  /// (a mis-split trace would silently break the canonical merge order).
  bool partitioned_ = false;

  std::uint64_t pings_sent_ = 0;
  std::uint64_t pings_lost_ = 0;
  std::uint64_t events_ = 0;
  bool ran_ = false;
};

}  // namespace nc::sim

// Metrics collection shared by the trace-replay and online simulators.
//
// Implements the paper's two figures of merit (Sec. II-A) plus the
// application-update rate of Sec. V-D:
//
//  * Accuracy — per-node relative error: for every observation,
//    eps = | ||c_i - c_j|| - l_ij | / l_ij measured with the APPLICATION
//    coordinates of both endpoints against the raw observed latency. Per-node
//    distributions feed the median / 95th-percentile CDFs.
//  * Stability — coordinate movement per second (ms/s). Aggregate instability
//    sums all nodes' application-coordinate displacement per second of
//    simulated time; its distribution over seconds is the paper's
//    "Instability" CDF, and its median the sweep-figure scalar.
//  * Update rate — percentage of nodes whose application coordinate changed
//    in each second (Fig. 9 bottom).
//
// Because this reproduction owns the ground truth (a real deployment does
// not), an optional oracle metric also compares coordinate distances against
// the quiescent route-adjusted RTT — useful for validating the substitution.
//
// Accuracy/stability are collected inside [measure_start_s, duration_s) to
// exclude start-up transients (the paper reports the second half of each
// run); time series span the whole run. Per-observation accuracy gates on
// t >= measure_start_s; per-second stability metrics cover only FULL eval
// seconds, [ceil(measure_start_s), ceil(duration_s)), so a fractional
// measure_start never leaks warm-up movement into the instability window.
//
// Collectors are mergeable: a sharded simulator gives each worker shard its
// own collector (same config, disjoint node ownership) and combines them
// with merge(). Cross-node per-second movement sums are accumulated in
// fixed-point ticks (2^-20 ms) so that addition is associative and the
// merged totals are bit-identical for any shard count; everything else is
// keyed by node and merged disjointly. Call finalize() at end of run (both
// simulators do) to flush each node's in-flight second into the per-node
// movement distributions.
#pragma once

#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/coordinate.hpp"
#include "core/nc_client.hpp"
#include "core/node_id.hpp"
#include "estimate/latency_estimator.hpp"
#include "stats/ecdf.hpp"
#include "stats/p2_quantile.hpp"
#include "stats/timeseries.hpp"

namespace nc::sim {

struct MetricsConfig {
  int num_nodes = 0;
  double duration_s = 0.0;
  double measure_start_s = 0.0;

  bool collect_timeseries = false;
  double timeseries_bucket_s = 600.0;

  bool collect_oracle = false;

  /// Nodes whose coordinate trajectory is recorded (Fig. 7 drift plots).
  std::vector<NodeId> tracked_nodes;

  /// Per-node error distributions need at least this many samples to count.
  int min_node_samples = 8;

  /// When false, on_observation() skips the per-destination error accounting
  /// and the caller feeds it through record_dst_error() instead. The sharded
  /// simulator uses this to route each destination's error stream to the
  /// shard that owns the destination, keeping the streaming median's input
  /// order canonical for any shard count.
  bool inline_dst_errors = true;
};

struct DriftPoint {
  double t = 0.0;
  Vec position;
};

/// One node's migratable metrics state: everything the collector keys by
/// node, packed when ownership migration hands the node to another shard's
/// collector (sim/sharded_sim.cpp). The in-flight second is carried RAW
/// (not flushed), so the new owner keeps accumulating the same second and
/// the flushed per-second series is bit-identical to a single-shard run.
struct MetricsNodeState {
  std::vector<double> errors;
  std::vector<double> second_movements;
  std::int64_t current_second = -1;
  double current_movement = 0.0;
  std::int64_t last_update_sec = -1;
  stats::P2Quantile dst_median = stats::P2Quantile(0.5);
  std::uint64_t dst_count = 0;
  stats::P2Quantile oracle_median = stats::P2Quantile(0.5);
  std::uint64_t oracle_count = 0;
};

class MetricsCollector {
 public:
  explicit MetricsCollector(const MetricsConfig& config);

  /// Records one observation: `src` observed `dst` with raw RTT `raw_rtt_ms`
  /// and the active estimation backend predicted `predicted_rtt_ms` for the
  /// pair; `outcome` is what the observation did to `src`. Returns the
  /// application-level relative error of the observation (callers that defer
  /// destination accounting feed it to the destination owner's
  /// record_dst_error()).
  double on_observation(double t, NodeId src, NodeId dst, double raw_rtt_ms,
                        double predicted_rtt_ms,
                        const ObservationOutcome& outcome,
                        std::optional<double> oracle_rtt_ms = std::nullopt);

  /// Coordinate-backend convenience: predicts via the two endpoints'
  /// application coordinates (`src_app.distance_to(dst_app)`) and delegates.
  double on_observation(double t, NodeId src, NodeId dst, double raw_rtt_ms,
                        const Coordinate& src_app, const Coordinate& dst_app,
                        const ObservationOutcome& outcome,
                        std::optional<double> oracle_rtt_ms = std::nullopt) {
    return on_observation(t, src, dst, raw_rtt_ms,
                          src_app.distance_to(dst_app), outcome,
                          oracle_rtt_ms);
  }

  /// Appends a drift snapshot for a tracked node (driver decides cadence).
  void track_coordinate(double t, NodeId node, const Coordinate& coord);

  /// Per-destination error accounting for one observation aimed at `dst`
  /// (same eval-window gating as on_observation). Only valid when the
  /// config disabled inline_dst_errors — the two paths never mix.
  void record_dst_error(double t, NodeId dst, double err);

  /// Flushes every node's in-flight second into the per-node movement
  /// distributions. Call once at end of run (further observations would
  /// start fresh seconds); idempotent.
  void finalize();

  /// Ownership migration: moves `node`'s per-node state out (see
  /// MetricsNodeState); afterwards this collector holds no data for it.
  /// Tracked (drift) nodes are pinned by the engine and must not be
  /// extracted. Cross-node sums (per-second movement, update counts, time
  /// series) stay — they are globally associative and merge() adds them.
  [[nodiscard]] MetricsNodeState extract_node_state(NodeId node);

  /// Installs state packed by another collector's extract_node_state. The
  /// node must currently have no data here.
  void install_node_state(NodeId node, MetricsNodeState state);

  /// Absorbs a collector covering a disjoint set of nodes (same num_nodes,
  /// window and collection flags). Both sides must be finalized. Cross-node
  /// per-second sums add in fixed point (associative, so any merge order
  /// yields bit-identical totals); per-node state moves over — a node with
  /// data on both sides is a contract violation and throws. tracked_nodes
  /// are unioned.
  void merge(MetricsCollector& other);

  // ---- accuracy ----
  [[nodiscard]] stats::Ecdf per_node_median_error() const;
  [[nodiscard]] stats::Ecdf per_node_p95_error() const;
  /// Median over nodes of each node's median relative error.
  [[nodiscard]] double median_relative_error() const;
  /// CDF over DESTINATIONS of the median error of all observations aimed at
  /// each destination. A node can predict well as an observer yet be badly
  /// placed as a target (stale advertised coordinate, overloaded host); this
  /// view exposes those nodes, which per_node_* (keyed by observer) averages
  /// away.
  [[nodiscard]] stats::Ecdf per_dst_median_error() const;
  /// Median error of observations aimed at one destination (needs enough
  /// samples).
  [[nodiscard]] double median_error_to(NodeId dst) const;
  /// Eval-window observations aimed at `dst`.
  [[nodiscard]] std::uint64_t dst_observation_count(NodeId dst) const;
  [[nodiscard]] stats::Ecdf oracle_per_node_median_error() const;
  /// Ground-truth median error of one node (e.g. the node whose links an
  /// adaptation experiment perturbed). Requires enough samples.
  [[nodiscard]] double oracle_median_error_of(NodeId node) const;

  // ---- stability ----
  /// CDF over eval-window seconds of aggregate app-coordinate movement (ms/s).
  [[nodiscard]] stats::Ecdf instability() const;
  /// Same, for system coordinates.
  [[nodiscard]] stats::Ecdf system_instability() const;
  [[nodiscard]] double median_instability_ms_per_s() const;
  /// The paper's stability definition s = sum(dx)/t over the eval window:
  /// total application-coordinate movement divided by elapsed seconds.
  [[nodiscard]] double mean_instability_ms_per_s() const;
  /// CDF over nodes of the 95th percentile of per-second movement.
  [[nodiscard]] stats::Ecdf per_node_p95_movement() const;

  // ---- application updates ----
  /// Mean over eval seconds of (distinct nodes updating / num_nodes * 100).
  [[nodiscard]] double mean_pct_nodes_updating_per_s() const;
  [[nodiscard]] std::uint64_t total_app_updates() const noexcept { return app_updates_; }

  // ---- time series (whole run) ----
  [[nodiscard]] std::vector<stats::SeriesPoint> error_timeseries_median() const;
  [[nodiscard]] std::vector<stats::SeriesPoint> error_timeseries_p95() const;
  /// Mean per-second aggregate movement within each bucket (ms/s).
  [[nodiscard]] std::vector<stats::SeriesPoint> instability_timeseries() const;

  // ---- drift ----
  [[nodiscard]] const std::vector<DriftPoint>& drift(NodeId node) const;

  // ---- estimator introspection ----
  /// Attaches the active backend's coverage/staleness/cost counters (the
  /// sharded engine calls this per shard before finalize; merge() adds the
  /// disjoint per-shard stats field-wise).
  void set_estimator_stats(const est::EstimatorStats& s) noexcept {
    estimator_stats_ = s;
  }
  [[nodiscard]] const est::EstimatorStats& estimator_stats() const noexcept {
    return estimator_stats_;
  }

  [[nodiscard]] std::uint64_t observation_count() const noexcept { return observations_; }
  [[nodiscard]] const MetricsConfig& config() const noexcept { return config_; }

  /// Capacity of one node's per-second movement store (tests pin the
  /// no-reallocation-in-steady-state contract through this).
  [[nodiscard]] std::size_t node_movement_capacity(NodeId node) const {
    return node_second_movements_.at(static_cast<std::size_t>(node)).capacity();
  }

 private:
  /// Movement sums that cross node boundaries are accumulated in integer
  /// ticks of 2^-20 ms: integer addition is associative and commutative, so
  /// per-shard partial sums merge to bit-identical totals in any order. The
  /// quantization (~1e-6 ms per observation) is part of the metric's
  /// definition, applied identically in serial and sharded runs.
  static constexpr double kTicksPerMs = 1048576.0;  // 2^20
  [[nodiscard]] static std::int64_t to_ticks(double ms) noexcept {
    return static_cast<std::int64_t>(std::llround(ms * kTicksPerMs));
  }
  [[nodiscard]] static double from_ticks(std::int64_t ticks) noexcept {
    return static_cast<double>(ticks) / kTicksPerMs;
  }

  [[nodiscard]] bool in_eval_window(double t) const noexcept {
    return t >= config_.measure_start_s && t < config_.duration_s;
  }
  [[nodiscard]] std::size_t second_index(double t) const noexcept;
  /// First FULL second of the eval window: ceil(measure_start_s).
  [[nodiscard]] std::size_t eval_start_sec() const noexcept;
  /// One past the last eval second: ceil(duration_s), clamped to the arrays.
  [[nodiscard]] std::size_t eval_end_sec() const noexcept;
  [[nodiscard]] std::size_t eval_window_seconds() const noexcept;

  MetricsConfig config_;

  // Accuracy (eval window).
  std::vector<std::vector<double>> node_errors_;
  std::vector<stats::P2Quantile> node_oracle_median_;
  std::vector<std::uint64_t> node_oracle_count_;

  // Per-destination accuracy (eval window): streaming medians keyed by the
  // observed node, aggregated over all observers.
  std::vector<stats::P2Quantile> dst_median_;
  std::vector<std::uint64_t> dst_count_;

  // Whole-run per-second aggregate movement (app and system coordinates),
  // in fixed-point ticks (see kTicksPerMs).
  std::vector<std::int64_t> app_move_per_sec_;
  std::vector<std::int64_t> sys_move_per_sec_;

  // Per-node movement per second (eval window): flushed sums. Each node's
  // store is capacity-hinted at its first flush (flush_node_second) so the
  // steady-state flush path does not reallocate per push.
  struct NodeSecond {
    std::int64_t second = -1;
    double movement = 0.0;
  };
  void flush_node_second(std::size_t node, double movement);
  std::vector<NodeSecond> node_current_second_;
  std::vector<std::vector<double>> node_second_movements_;

  // Distinct nodes with app updates per eval second.
  std::vector<std::uint32_t> updating_nodes_per_sec_;
  std::vector<std::int64_t> node_last_update_sec_;

  // Time series.
  std::optional<stats::BucketedValues> ts_errors_;

  // Drift: dense node-indexed series plus a tracked flag replicating the
  // sparse map's "was this node ever tracked" distinction.
  std::vector<std::vector<DriftPoint>> drift_;
  std::vector<std::uint8_t> drift_tracked_;

  std::uint64_t observations_ = 0;
  std::uint64_t app_updates_ = 0;
  est::EstimatorStats estimator_stats_;
};

}  // namespace nc::sim

#include "sim/online_sim.hpp"

#include "common/check.hpp"
#include "sim/sharded_sim.hpp"

namespace nc::sim {

OnlineNodeRuntime make_online_node_runtime(const OnlineSimConfig& config,
                                           int num_nodes) {
  const int n = num_nodes;
  NC_CHECK_MSG(config.bootstrap_degree >= 1, "need at least one bootstrap peer");
  NC_CHECK_MSG(config.bootstrap_degree < n,
               "bootstrap_degree must leave at least one non-peer "
               "(fewer distinct peers than requested exist)");
  NC_CHECK_MSG(config.ping_interval_s > 0.0, "ping interval must be positive");
  NC_CHECK_MSG(config.tracked_nodes.empty() || config.track_interval_s > 0.0,
               "tracking requires a positive track interval");

  OnlineNodeRuntime rt;
  rt.clients.reserve(static_cast<std::size_t>(n));
  rt.neighbors.reserve(static_cast<std::size_t>(n));
  rt.timer_rngs.reserve(static_cast<std::size_t>(n));
  for (NodeId id = 0; id < n; ++id) {
    rt.clients.push_back(std::make_unique<NCClient>(id, config.client));
    rt.neighbors.emplace_back(
        config.neighbor_capacity,
        hash_combine(config.seed, static_cast<std::uint64_t>(id)));
    rt.timer_rngs.push_back(Rng::derived(config.seed, rngstream::kPingTimer,
                                         static_cast<std::uint64_t>(id)));
  }
  // Bootstrap membership: every node knows `bootstrap_degree` DISTINCT live
  // random peers, drawn from its own kBootstrap stream.
  for (NodeId id = 0; id < n; ++id) {
    Rng boot = Rng::derived(config.seed, rngstream::kBootstrap,
                            static_cast<std::uint64_t>(id));
    int added = 0;
    while (added < config.bootstrap_degree) {
      const auto peer = static_cast<NodeId>(boot.uniform_int(static_cast<std::uint64_t>(n)));
      if (peer == id) continue;
      if (rt.neighbors[static_cast<std::size_t>(id)].add(peer)) ++added;
    }
  }
  return rt;
}

OnlineSimulator::OnlineSimulator(const OnlineSimConfig& config,
                                 lat::LatencyNetwork& network)
    : engine_(nullptr) {
  // The facade copies the network's CONFIGURATION; it cannot honor state
  // scheduled on the network object itself. Reject instead of silently
  // running an unperturbed experiment — route changes go to the kernel as
  // ShardedRouteChange arguments (run_scenario resolves them from the spec).
  NC_CHECK_MSG(network.scheduled_route_change_count() == 0,
               "the OnlineSimulator facade ignores route changes scheduled on "
               "the network; construct a ShardedEngine with explicit "
               "ShardedRouteChange arguments instead");
  engine_ = std::make_unique<ShardedEngine>(config, /*shards=*/1,
                                            network.topology(),
                                            network.link_config(),
                                            network.availability());
}

OnlineSimulator::~OnlineSimulator() = default;

void OnlineSimulator::run() { engine_->run(); }

MetricsCollector& OnlineSimulator::metrics() noexcept { return engine_->metrics(); }
const MetricsCollector& OnlineSimulator::metrics() const noexcept {
  return engine_->metrics();
}
NCClient& OnlineSimulator::client(NodeId id) { return engine_->client(id); }
NeighborSet& OnlineSimulator::neighbors(NodeId id) { return engine_->neighbors(id); }
int OnlineSimulator::num_nodes() const noexcept { return engine_->num_nodes(); }
std::uint64_t OnlineSimulator::pings_sent() const noexcept {
  return engine_->pings_sent();
}
std::uint64_t OnlineSimulator::pings_lost() const noexcept {
  return engine_->pings_lost();
}
std::uint64_t OnlineSimulator::events_processed() const noexcept {
  return engine_->events_processed();
}
MemoryBudget OnlineSimulator::memory_budget() const {
  return engine_->memory_budget();
}

}  // namespace nc::sim

#include "sim/online_sim.hpp"

#include "common/check.hpp"

namespace nc::sim {

namespace {

MetricsConfig make_metrics_config(const OnlineSimConfig& config, int num_nodes) {
  MetricsConfig m;
  m.num_nodes = num_nodes;
  m.duration_s = config.duration_s;
  m.measure_start_s = config.measure_start_s;
  m.collect_timeseries = config.collect_timeseries;
  m.timeseries_bucket_s = config.timeseries_bucket_s;
  m.collect_oracle = config.collect_oracle;
  m.tracked_nodes = config.tracked_nodes;
  return m;
}

}  // namespace

OnlineNodeRuntime make_online_node_runtime(const OnlineSimConfig& config,
                                           int num_nodes) {
  const int n = num_nodes;
  NC_CHECK_MSG(config.bootstrap_degree >= 1, "need at least one bootstrap peer");
  NC_CHECK_MSG(config.bootstrap_degree < n,
               "bootstrap_degree must leave at least one non-peer "
               "(fewer distinct peers than requested exist)");
  NC_CHECK_MSG(config.ping_interval_s > 0.0, "ping interval must be positive");
  NC_CHECK_MSG(config.tracked_nodes.empty() || config.track_interval_s > 0.0,
               "tracking requires a positive track interval");

  OnlineNodeRuntime rt;
  rt.clients.reserve(static_cast<std::size_t>(n));
  rt.neighbors.reserve(static_cast<std::size_t>(n));
  rt.timer_rngs.reserve(static_cast<std::size_t>(n));
  for (NodeId id = 0; id < n; ++id) {
    rt.clients.push_back(std::make_unique<NCClient>(id, config.client));
    rt.neighbors.emplace_back(
        config.neighbor_capacity,
        hash_combine(config.seed, static_cast<std::uint64_t>(id)));
    rt.timer_rngs.push_back(Rng::derived(config.seed, rngstream::kPingTimer,
                                         static_cast<std::uint64_t>(id)));
  }
  // Bootstrap membership: every node knows `bootstrap_degree` DISTINCT live
  // random peers, drawn from its own kBootstrap stream.
  for (NodeId id = 0; id < n; ++id) {
    Rng boot = Rng::derived(config.seed, rngstream::kBootstrap,
                            static_cast<std::uint64_t>(id));
    int added = 0;
    while (added < config.bootstrap_degree) {
      const auto peer = static_cast<NodeId>(boot.uniform_int(static_cast<std::uint64_t>(n)));
      if (peer == id) continue;
      if (rt.neighbors[static_cast<std::size_t>(id)].add(peer)) ++added;
    }
  }
  return rt;
}

OnlineSimulator::OnlineSimulator(const OnlineSimConfig& config,
                                 lat::LatencyNetwork& network)
    : config_(config),
      network_(network),
      metrics_(make_metrics_config(config, network.topology().size())) {
  const int n = network.topology().size();
  OnlineNodeRuntime rt = make_online_node_runtime(config, n);
  clients_ = std::move(rt.clients);
  neighbors_ = std::move(rt.neighbors);
  timer_rngs_ = std::move(rt.timer_rngs);

  // Staggered first pings, one phase draw per node from its own stream.
  for (NodeId id = 0; id < n; ++id) {
    queue_.schedule(
        timer_rngs_[static_cast<std::size_t>(id)].uniform(0.0, config.ping_interval_s),
        Payload{EventKind::kPingTimer, id});
  }
  next_track_t_ = config.track_interval_s;
}

void OnlineSimulator::run() {
  NC_CHECK_MSG(!ran_, "run() called twice");
  ran_ = true;
  while (auto ev = queue_.pop()) {
    const double t = ev->t;
    if (t >= config_.duration_s) break;
    ++events_;
    maybe_track(t);
    switch (ev->payload.kind) {
      case EventKind::kPingTimer:
        on_ping_timer(t, ev->payload.a);
        break;
      case EventKind::kPongArrival:
        on_pong(t, ev->payload);
        break;
    }
  }
  // Close out the run: a final drift sample at duration_s so tracked series
  // cover the whole run, and flush each node's in-flight second into the
  // per-node movement distributions.
  for (NodeId id : metrics_.config().tracked_nodes)
    metrics_.track_coordinate(config_.duration_s, id, client(id).system_coordinate());
  metrics_.finalize();
}

void OnlineSimulator::on_ping_timer(double t, NodeId node) {
  // Re-arm the timer first so churned/idle nodes keep their cadence.
  const double jitter = timer_rngs_[static_cast<std::size_t>(node)].uniform(
      -config_.ping_jitter_s, config_.ping_jitter_s);
  queue_.schedule(t + std::max(0.1, config_.ping_interval_s + jitter),
                  Payload{EventKind::kPingTimer, node});

  if (!network_.node_up(node, t)) return;  // down nodes neither ping nor respond

  auto& nbrs = neighbors_[static_cast<std::size_t>(node)];
  const auto target = nbrs.next_round_robin();
  if (!target.has_value()) return;

  ++pings_sent_;
  const auto rtt = network_.sample_rtt(node, *target, t);
  if (!rtt.has_value()) {
    ++pings_lost_;
    return;  // timeout: no observation
  }

  // The ping itself gossips one of the sender's neighbors to the target and
  // introduces the sender (paper: nodes learn neighbors via sampling
  // messages). The target learns both immediately in wall-clock terms; the
  // one-way skew is far below membership time-scales.
  auto& target_nbrs = neighbors_[static_cast<std::size_t>(*target)];
  target_nbrs.add(node);
  if (const auto g = nbrs.random_neighbor(); g.has_value() && *g != *target)
    target_nbrs.add(*g);

  // The pong returns the target's state; it is observed on arrival.
  Payload pong{EventKind::kPongArrival, node, *target,
               static_cast<float>(*rtt), kInvalidNode};
  if (const auto g = target_nbrs.random_neighbor(); g.has_value() && *g != node)
    pong.gossip = *g;
  queue_.schedule(t + *rtt / 1000.0, pong);
}

void OnlineSimulator::on_pong(double t, const Payload& p) {
  NCClient& observer = *clients_[static_cast<std::size_t>(p.a)];
  NCClient& remote = *clients_[static_cast<std::size_t>(p.b)];

  if (p.gossip != kInvalidNode && p.gossip != p.a)
    neighbors_[static_cast<std::size_t>(p.a)].add(p.gossip);

  const ObservationOutcome outcome =
      observer.observe(p.b, remote.system_coordinate(), remote.error_estimate(),
                       static_cast<double>(p.rtt_ms), t);

  std::optional<double> truth;
  if (metrics_.config().collect_oracle)
    truth = network_.ground_truth_rtt(p.a, p.b, t);

  metrics_.on_observation(t, p.a, p.b, static_cast<double>(p.rtt_ms),
                          observer.application_coordinate(),
                          remote.application_coordinate(), outcome, truth);
}

void OnlineSimulator::maybe_track(double t) {
  while (!metrics_.config().tracked_nodes.empty() && t >= next_track_t_) {
    for (NodeId id : metrics_.config().tracked_nodes)
      metrics_.track_coordinate(next_track_t_, id, client(id).system_coordinate());
    next_track_t_ += config_.track_interval_s;
  }
}

}  // namespace nc::sim

// Bucketed calendar queue: the allocation-free priority queue of the
// simulation kernel (R. Brown, CACM 1988).
//
// Both simulation engines pop events in nondecreasing time with an explicit
// total-order tie-break, and nearly all of their traffic is periodic (one
// ping timer per node per interval, deliveries clamped to epoch starts).
// That access pattern is the textbook case where a calendar beats a binary
// heap: an insert lands in the one bucket covering its "day" (a width_-sized
// slice of simulated time) and a pop reads the current day's bucket head —
// O(1) amortized each, with no O(log n) sift moving 100+-byte events around.
//
// Layout and invariants:
//  * nbuckets_ is a power of two; an event at time t belongs to day
//    floor(t / width_) and lives in bucket (day & mask_), whatever its year —
//    far-future events simply wait in their residue bucket (the "overflow"
//    events of the classic design) and are skipped by the day check until
//    the cursor reaches their day.
//  * Every bucket is kept sorted by Ops::less, a TOTAL order that extends
//    time order (Ops::less(a, b) implies time(a) <= time(b)); consumed
//    events are a prefix [0, head) compacted lazily. Pop order is therefore
//    exactly the global Ops::less order — bit-identical to what a binary
//    heap over the same comparator produces, which is the contract the
//    engines' determinism tests pin.
//  * cur_day_ is a lower bound on the earliest unconsumed day. Pops advance
//    it; an insert below it (legal: epoch-clamped deliveries restart the
//    cursor at an epoch boundary) lowers it. Callers must never insert an
//    event that sorts before one already popped (the engines schedule only
//    at or after the current event time, which guarantees it).
//  * Steady state allocates nothing: buckets and the resize scratch keep
//    their capacity across years, and the bucket count rescales (with a
//    width retune from observed inter-event gaps) only when the population
//    doubles or collapses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iterator>
#include <vector>

#include "common/check.hpp"

namespace nc::sim {

/// Ops contract:
///   static double time(const Event&)            — event timestamp;
///   static bool less(const Event&, const Event&) — strict TOTAL order that
///     refines time order (equal times broken by caller-defined fields).
template <typename Event, typename Ops>
class CalendarQueue {
 public:
  CalendarQueue() { buckets_.resize(kMinBuckets); }

  void push(Event ev) {
    const double t = Ops::time(ev);
    NC_ASSERT(std::isfinite(t));
    if (size_ + 1 > (nbuckets() << 1)) rebuild(size_ + 1);
    const std::int64_t day = day_of(t);
    if (size_ == 0 || day < cur_day_) cur_day_ = day;
    insert_sorted(buckets_[bucket_of(day)], std::move(ev));
    ++size_;
  }

  /// Bulk insert of a run already sorted by Ops::less (the epoch-sharded
  /// engine's delivery batches). Each maximal same-day segment is merged
  /// into its bucket in one linear pass — crucial for epoch-clamped
  /// batches, where thousands of equal-time events target a single bucket
  /// and per-event sorted insertion would memmove the bucket tail once per
  /// event instead of once per epoch.
  template <typename It>
  void push_sorted_run(It first, It last) {
    if (first == last) return;
    const auto count = static_cast<std::size_t>(std::distance(first, last));
    if (size_ + count > (nbuckets() << 1)) rebuild(size_ + count);
    if (size_ == 0 || day_of(Ops::time(*first)) < cur_day_)
      cur_day_ = day_of(Ops::time(*first));
    while (first != last) {
      NC_ASSERT(std::isfinite(Ops::time(*first)));
      const std::int64_t day = day_of(Ops::time(*first));
      It seg_end = first + 1;
      while (seg_end != last && day_of(Ops::time(*seg_end)) == day) {
        NC_ASSERT(!Ops::less(*seg_end, *(seg_end - 1)));
        ++seg_end;
      }
      merge_segment(buckets_[bucket_of(day)], first, seg_end);
      first = seg_end;
    }
    size_ += count;
  }

  /// Earliest event by Ops::less, or nullptr when empty. Advances the day
  /// cursor past verified-empty days (pure acceleration state; a later
  /// lower push rewinds it).
  [[nodiscard]] const Event* peek() {
    if (size_ == 0) return nullptr;
    for (std::size_t probes = 0; probes < nbuckets(); ++probes) {
      const Bucket& b = buckets_[bucket_of(cur_day_)];
      if (b.head < b.items.size() &&
          day_of(Ops::time(b.items[b.head])) == cur_day_)
        return &b.items[b.head];
      ++cur_day_;
    }
    // A whole year of empty days: jump straight to the earliest populated
    // day (rare — only when the next event is further than a year ahead).
    std::int64_t min_day = 0;
    bool found = false;
    for (const Bucket& b : buckets_) {
      if (b.head >= b.items.size()) continue;
      const std::int64_t day = day_of(Ops::time(b.items[b.head]));
      if (!found || day < min_day) min_day = day, found = true;
    }
    NC_ASSERT(found);
    cur_day_ = min_day;
    const Bucket& b = buckets_[bucket_of(cur_day_)];
    return &b.items[b.head];
  }

  /// Removes and returns the earliest event. Precondition: !empty().
  [[nodiscard]] Event pop() {
    const Event* head = peek();
    NC_CHECK_MSG(head != nullptr, "pop from empty calendar queue");
    Bucket& b = buckets_[bucket_of(cur_day_)];
    Event ev = std::move(b.items[b.head]);
    ++b.head;
    --size_;
    if (b.head == b.items.size()) {
      b.items.clear();  // capacity retained: steady state reallocates nothing
      b.head = 0;
    } else if (b.head > 64 && b.head * 2 > b.items.size()) {
      // Lazy compaction: a bucket pinned by a far-future event must not
      // accumulate its consumed prefix forever.
      b.items.erase(b.items.begin(),
                    b.items.begin() + static_cast<std::ptrdiff_t>(b.head));
      b.head = 0;
    }
    if (size_ < nbuckets() / 8 && nbuckets() > kMinBuckets) rebuild(size_);
    return ev;
  }

  /// Removes every event matching `pred` and appends them to `out` (bucket
  /// order, NOT globally sorted — callers needing a canonical order sort the
  /// result by Ops::less). Used by ownership migration to pull a node's
  /// pending events out of its old shard's queue; each bucket is compacted
  /// with one stable two-pointer pass, so the sorted-bucket invariant and
  /// the consumed-prefix head are preserved.
  template <typename Pred>
  void extract_if(Pred&& pred, std::vector<Event>& out) {
    for (Bucket& b : buckets_) {
      std::size_t write = b.head;
      for (std::size_t read = b.head; read < b.items.size(); ++read) {
        if (pred(b.items[read])) {
          out.push_back(std::move(b.items[read]));
          --size_;
        } else {
          if (write != read) b.items[write] = std::move(b.items[read]);
          ++write;
        }
      }
      b.items.resize(write);
      if (b.head == b.items.size()) {
        b.items.clear();
        b.head = 0;
      }
    }
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] double bucket_width() const noexcept { return width_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept { return nbuckets(); }

 private:
  struct Bucket {
    std::vector<Event> items;  // sorted by Ops::less; [0, head) consumed
    std::size_t head = 0;
  };

  static constexpr std::size_t kMinBuckets = 16;

  [[nodiscard]] std::size_t nbuckets() const noexcept { return buckets_.size(); }
  [[nodiscard]] std::size_t bucket_of(std::int64_t day) const noexcept {
    return static_cast<std::size_t>(day) & (nbuckets() - 1);
  }
  [[nodiscard]] std::int64_t day_of(double t) const noexcept {
    return static_cast<std::int64_t>(std::floor(t / width_));
  }

  /// Merges a sorted same-day segment into a bucket: append when it sorts
  /// entirely after the existing items (the common case — an empty bucket
  /// or a batch landing past the resident timers), otherwise one linear
  /// merge through the reused scratch buffer.
  template <typename It>
  void merge_segment(Bucket& b, It first, It last) {
    if (b.items.empty() || !Ops::less(*first, b.items.back())) {
      b.items.insert(b.items.end(), std::make_move_iterator(first),
                     std::make_move_iterator(last));
      return;
    }
    merge_scratch_.clear();
    merge_scratch_.reserve(b.items.size() - b.head +
                           static_cast<std::size_t>(std::distance(first, last)));
    std::merge(
        std::make_move_iterator(b.items.begin() +
                                static_cast<std::ptrdiff_t>(b.head)),
        std::make_move_iterator(b.items.end()), std::make_move_iterator(first),
        std::make_move_iterator(last), std::back_inserter(merge_scratch_),
        &Ops::less);
    b.items.clear();
    b.head = 0;
    b.items.insert(b.items.end(),
                   std::make_move_iterator(merge_scratch_.begin()),
                   std::make_move_iterator(merge_scratch_.end()));
  }

  static void insert_sorted(Bucket& b, Event ev) {
    // Periodic traffic appends: timers re-arm one interval ahead and
    // epoch-clamped deliveries arrive presorted, so the common case is a
    // single comparison against the bucket's back.
    if (b.items.empty() || !Ops::less(ev, b.items.back())) {
      b.items.push_back(std::move(ev));
      return;
    }
    const auto pos =
        std::upper_bound(b.items.begin() + static_cast<std::ptrdiff_t>(b.head),
                         b.items.end(), ev, &Ops::less);
    b.items.insert(pos, std::move(ev));
  }

  /// Rescales to ~target events per two buckets and retunes the bucket
  /// width to 3x the mean inter-event gap near the head of the queue (the
  /// classic Brown rule: clusters get spread over several buckets while a
  /// day still covers more than one event). Deterministic — depends only on
  /// the queued events, never on wall clock or randomness.
  void rebuild(std::size_t target) {
    scratch_.clear();
    for (Bucket& b : buckets_) {
      for (std::size_t i = b.head; i < b.items.size(); ++i)
        scratch_.push_back(std::move(b.items[i]));
      b.items.clear();
      b.head = 0;
    }
    std::sort(scratch_.begin(), scratch_.end(), &Ops::less);

    std::size_t n = kMinBuckets;
    while (n < target) n <<= 1;
    buckets_.resize(n);

    const std::size_t sample =
        std::min<std::size_t>(scratch_.size(), kMinBuckets * 4);
    if (sample >= 2) {
      const double span = Ops::time(scratch_[sample - 1]) - Ops::time(scratch_[0]);
      const double gap = span / static_cast<double>(sample - 1);
      if (gap > 0.0) width_ = 3.0 * gap;
    }

    cur_day_ = scratch_.empty() ? 0 : day_of(Ops::time(scratch_.front()));
    for (Event& ev : scratch_)
      buckets_[bucket_of(day_of(Ops::time(ev)))].items.push_back(std::move(ev));
    scratch_.clear();
  }

  std::vector<Bucket> buckets_;
  std::vector<Event> scratch_;        // rebuild staging, capacity reused
  std::vector<Event> merge_scratch_;  // segment-merge staging, capacity reused
  double width_ = 1.0;
  std::int64_t cur_day_ = 0;
  std::size_t size_ = 0;
};

}  // namespace nc::sim

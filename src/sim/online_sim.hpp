// Online deployment simulator: the paper's PlanetLab experiment (Sec. VI).
//
// Unlike trace replay, nodes here run the full protocol concurrently as
// discrete events over the stochastic latency network:
//
//  * every node samples one neighbor from its NeighborSet in round-robin
//    order every `ping_interval_s` (paper: 5 s), with a small deterministic
//    phase jitter;
//  * each ping/pong carries the sender's coordinate state plus one gossiped
//    neighbor address, so membership spreads epidemically from a small
//    bootstrap set;
//  * the response arrives after the sampled RTT; the observation applies the
//    remote state as of arrival time;
//  * lost pings and down nodes produce timeouts (no observation).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/nc_client.hpp"
#include "core/neighbor_set.hpp"
#include "latency/link_model.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"

namespace nc::sim {

struct OnlineSimConfig {
  NCClientConfig client;

  double duration_s = 4.0 * 3600.0;
  double measure_start_s = 2.0 * 3600.0;
  double ping_interval_s = 5.0;   // paper Sec. VI
  double ping_jitter_s = 0.25;    // deterministic phase jitter per ping

  /// Each node bootstraps with this many random known peers (>= 1).
  int bootstrap_degree = 3;
  std::size_t neighbor_capacity = 512;

  bool collect_timeseries = false;
  double timeseries_bucket_s = 600.0;
  bool collect_oracle = false;
  std::vector<NodeId> tracked_nodes;
  double track_interval_s = 600.0;

  std::uint64_t seed = 7;
};

/// Per-node runtime shared by both online engines (OnlineSimulator and
/// ShardedOnlineSimulator): clients, neighbor sets with bootstrap
/// membership, and per-node ping-timer streams, all derived from
/// config.seed. Building both engines from this one helper is what keeps
/// their starting membership provably identical.
struct OnlineNodeRuntime {
  std::vector<std::unique_ptr<NCClient>> clients;
  std::vector<NeighborSet> neighbors;
  std::vector<Rng> timer_rngs;
};

/// Validates the config fields common to both engines (bootstrap degree in
/// [1, n), positive ping interval, positive track interval when tracking)
/// and builds the runtime. Bootstrap counts only DISTINCT peers — a
/// duplicate random draw must not eat a slot, or nodes silently start
/// under-connected.
[[nodiscard]] OnlineNodeRuntime make_online_node_runtime(
    const OnlineSimConfig& config, int num_nodes);

class OnlineSimulator {
 public:
  /// The simulator does not own the network; the caller can share one
  /// network across configurations (paper Sec. VI runs filtered and
  /// unfiltered systems side by side on the same nodes).
  OnlineSimulator(const OnlineSimConfig& config, lat::LatencyNetwork& network);

  /// Runs the full simulation. Call once.
  void run();

  [[nodiscard]] MetricsCollector& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsCollector& metrics() const noexcept { return metrics_; }
  [[nodiscard]] NCClient& client(NodeId id) { return *clients_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] NeighborSet& neighbors(NodeId id) { return neighbors_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] int num_nodes() const noexcept { return static_cast<int>(clients_.size()); }

  [[nodiscard]] std::uint64_t pings_sent() const noexcept { return pings_sent_; }
  [[nodiscard]] std::uint64_t pings_lost() const noexcept { return pings_lost_; }
  /// Queue events processed (timers + pong arrivals), the unit
  /// bench_event_core reports per second for the serial engine.
  [[nodiscard]] std::uint64_t events_processed() const noexcept { return events_; }

 private:
  enum class EventKind : std::uint8_t { kPingTimer, kPongArrival };
  struct Payload {
    EventKind kind;
    NodeId a = kInvalidNode;  // timer owner / observer
    NodeId b = kInvalidNode;  // pong: remote node
    float rtt_ms = 0.0f;      // pong: measured RTT
    NodeId gossip = kInvalidNode;  // pong: neighbor advertised by remote
  };

  void on_ping_timer(double t, NodeId node);
  void on_pong(double t, const Payload& p);
  void maybe_track(double t);

  OnlineSimConfig config_;
  lat::LatencyNetwork& network_;
  std::vector<std::unique_ptr<NCClient>> clients_;
  std::vector<NeighborSet> neighbors_;
  EventQueue<Payload> queue_;
  MetricsCollector metrics_;
  /// One timer stream per node, derived from (seed, kPingTimer, id). No
  /// global draw order exists: every stochastic choice belongs to exactly
  /// one node's stream, which is what lets ShardedOnlineSimulator evolve
  /// nodes on different threads deterministically.
  std::vector<Rng> timer_rngs_;
  double next_track_t_ = 0.0;
  std::uint64_t pings_sent_ = 0;
  std::uint64_t pings_lost_ = 0;
  std::uint64_t events_ = 0;
  bool ran_ = false;
};

}  // namespace nc::sim

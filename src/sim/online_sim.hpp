// Online deployment simulation: the paper's PlanetLab experiment (Sec. VI).
//
// Nodes run the full protocol concurrently as discrete events over the
// stochastic latency network:
//
//  * every node samples one neighbor from its NeighborSet in round-robin
//    order every `ping_interval_s` (paper: 5 s), with a small deterministic
//    phase jitter;
//  * each ping/pong carries the sender's coordinate state plus one gossiped
//    neighbor address, so membership spreads epidemically from a small
//    bootstrap set;
//  * the response arrives after the sampled RTT; the observation applies the
//    remote state as of arrival time;
//  * lost pings and down nodes produce timeouts (no observation).
//
// Since PR 5 there is exactly ONE online event loop in the repo: the
// epoch-sharded kernel (sim/sharded_sim.hpp). OnlineSimulator is a thin
// shards=1 facade over it, kept for callers that hold a LatencyNetwork and
// want the classic constructor shape; it no longer owns a timer/gossip loop
// of its own. Its delivery semantics are therefore the kernel's epoch
// semantics (messages hand over at ping_interval_s boundaries), and all of
// its stochastic state derives from config.seed — the borrowed network
// contributes its topology and its link/availability CONFIGURATION, not its
// internal RNG state.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/paged_store.hpp"
#include "core/nc_client.hpp"
#include "sim/link_store.hpp"
#include "core/neighbor_set.hpp"
#include "estimate/estimator_config.hpp"
#include "latency/link_model.hpp"
#include "sim/metrics.hpp"

namespace nc::sim {

class ShardedEngine;
struct MemoryBudget;

struct OnlineSimConfig {
  NCClientConfig client;

  double duration_s = 4.0 * 3600.0;
  double measure_start_s = 2.0 * 3600.0;
  double ping_interval_s = 5.0;   // paper Sec. VI
  double ping_jitter_s = 0.25;    // deterministic phase jitter per ping

  /// Each node bootstraps with this many random known peers (>= 1).
  int bootstrap_degree = 3;
  std::size_t neighbor_capacity = 512;

  bool collect_timeseries = false;
  double timeseries_bucket_s = 600.0;
  bool collect_oracle = false;
  std::vector<NodeId> tracked_nodes;
  double track_interval_s = 600.0;

  std::uint64_t seed = 7;

  /// Which estimation backend answers RTT queries (and scores the accuracy
  /// metrics). Each shard owns one instance fed its nodes' observations.
  est::EstimatorSpec estimator;

  /// Publish an immutable est::EpochSnapshot of every node's application
  /// coordinate / confidence / availability at epoch boundaries — the
  /// serving layer's concurrent read path (ShardedEngine::
  /// snapshot_publisher()). Off by default; with publication off the run is
  /// bit-identical to a build without the seam. Forced on when
  /// estimator.backend == kSnapshot.
  bool publish_snapshots = false;
  /// Publish every k-th epoch boundary (>= 1). The end-of-run state is
  /// always published once the run finishes, whatever the cadence.
  int snapshot_interval_epochs = 1;
  /// Churn-proportional publication: ship a full base snapshot only every
  /// snapshot_base_interval-th publish and compact deltas (the slots whose
  /// published state actually changed) in between. Readers reconstruct the
  /// full view through est::SnapshotView. Observationally identical to full
  /// publication — same publish epochs, same version numbering, and any
  /// reconstructed view matches the full snapshot slot for slot — only the
  /// bytes shipped per publish change (O(churn) instead of O(n)).
  bool snapshot_deltas = false;
  /// Full-base cadence in publishes (>= 1) when snapshot_deltas is on. The
  /// end-of-run publish always ships a base, whatever the cadence.
  int snapshot_base_interval = 16;

  /// Dynamic shard ownership (core/ownership.hpp): every k-th epoch barrier
  /// each shard deterministically re-plans node placement from per-node
  /// event weights and migrates a bounded batch of nodes between shards
  /// through the epoch mailbox. 0 (default) keeps the static block
  /// partition. Metrics are bit-identical at any shard count with
  /// rebalancing on, and identical to off — only per-shard utilization and
  /// the memory layout change.
  int rebalance_interval_epochs = 0;
  /// Upper bound on nodes migrated per rebalance barrier (>= 0).
  int rebalance_max_moves = 8;

  /// Per-shard directed-link state stays a flat array up to this many slots
  /// and switches to lazily-allocated pages beyond (common/paged_store.hpp).
  /// The default keeps the 4k-node bench tier flat; lower it (0 forces
  /// paging) to bound memory for very large n — results are identical in
  /// both modes.
  std::size_t link_eager_slot_limit = kPagedStoreDefaultEagerSlotLimit;
  /// Above this many logical slots per shard the link store goes SPARSE
  /// (per-row compact index + slab, sim/link_store.hpp): page granularity
  /// stops paying at 100k-node scale, where a node's ~512 scattered targets
  /// touch nearly every page of its row. Lower it (0 forces sparse) to
  /// test; results are identical in every mode.
  std::size_t link_sparse_slot_limit = kShardLinkDefaultSparseSlotLimit;
};

/// Per-node runtime of the online protocol: clients, neighbor sets with
/// bootstrap membership, and per-node ping-timer streams, all derived from
/// config.seed. The sharded kernel builds its node state through this one
/// helper, which is what pins the starting membership to the seed alone.
struct OnlineNodeRuntime {
  std::vector<std::unique_ptr<NCClient>> clients;
  std::vector<NeighborSet> neighbors;
  std::vector<Rng> timer_rngs;
};

/// Validates the online config (bootstrap degree in [1, n), positive ping
/// interval, positive track interval when tracking) and builds the runtime.
/// Bootstrap counts only DISTINCT peers — a duplicate random draw must not
/// eat a slot, or nodes silently start under-connected.
[[nodiscard]] OnlineNodeRuntime make_online_node_runtime(
    const OnlineSimConfig& config, int num_nodes);

/// Thin shards=1 facade over the epoch-sharded kernel. The borrowed network
/// supplies topology and link/availability configuration only (callers that
/// share one network across configurations still see identical workloads —
/// every stochastic draw derives from config.seed and the entity keys).
class OnlineSimulator {
 public:
  /// Rejects a network with route changes scheduled on it: the facade
  /// copies configuration, not network state, so it could not honor them —
  /// pass schedules to ShardedEngine as ShardedRouteChange arguments.
  OnlineSimulator(const OnlineSimConfig& config, lat::LatencyNetwork& network);
  ~OnlineSimulator();
  OnlineSimulator(const OnlineSimulator&) = delete;
  OnlineSimulator& operator=(const OnlineSimulator&) = delete;

  /// Runs the full simulation. Call once.
  void run();

  [[nodiscard]] MetricsCollector& metrics() noexcept;
  [[nodiscard]] const MetricsCollector& metrics() const noexcept;
  [[nodiscard]] NCClient& client(NodeId id);
  [[nodiscard]] NeighborSet& neighbors(NodeId id);
  [[nodiscard]] int num_nodes() const noexcept;

  [[nodiscard]] std::uint64_t pings_sent() const noexcept;
  [[nodiscard]] std::uint64_t pings_lost() const noexcept;
  /// Queue events processed (timers + deliveries), the unit
  /// bench_event_core reports per second for the facade rows.
  [[nodiscard]] std::uint64_t events_processed() const noexcept;
  /// Per-run byte accounting of the underlying engine's state blocks.
  [[nodiscard]] MemoryBudget memory_budget() const;

 private:
  std::unique_ptr<ShardedEngine> engine_;
};

}  // namespace nc::sim

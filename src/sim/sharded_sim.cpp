#include "sim/sharded_sim.hpp"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <cmath>
#include <ctime>
#include <exception>
#include <thread>

#include "common/check.hpp"

namespace nc::sim {

namespace {

/// CPU time of the CALLING thread, the utilization basis of
/// shard_busy_seconds(): time blocked at an epoch barrier costs ~nothing, so
/// the per-shard spread reflects real work imbalance even on few cores.
double thread_cpu_seconds() noexcept {
#ifdef __linux__
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
#else
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
#endif
}

MetricsConfig make_shard_metrics_config(const OnlineSimConfig& config,
                                        int num_nodes,
                                        std::vector<NodeId> tracked_subset) {
  MetricsConfig m;
  m.num_nodes = num_nodes;
  m.duration_s = config.duration_s;
  m.measure_start_s = config.measure_start_s;
  m.collect_timeseries = config.collect_timeseries;
  m.timeseries_bucket_s = config.timeseries_bucket_s;
  m.collect_oracle = config.collect_oracle;
  m.tracked_nodes = std::move(tracked_subset);
  // Destination error streams are routed to the destination's owner shard
  // so each stream keeps one canonical input order at any shard count.
  m.inline_dst_errors = false;
  return m;
}

std::uint64_t directed_key(NodeId src, NodeId dst) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst));
}

/// Undirected link key (same derivation as LatencyNetwork's): controlled
/// route changes apply to both directions of a link.
std::uint64_t undirected_key(NodeId i, NodeId j) noexcept {
  return directed_key(std::min(i, j), std::max(i, j));
}

ShardEvent make_event(double t, ShardEventKind kind, NodeId a = kInvalidNode) {
  ShardEvent ev;
  ev.t = t;
  ev.kind = kind;
  ev.a = a;
  return ev;
}

/// Expected per-epoch occupancy of one outbox run. Online: each of the
/// sender shard's ~n/W nodes emits about one message per kind per epoch,
/// spread over W receiving shards. Replay: the reader (shard 0) routes ~n
/// records per epoch over W shards, so its cells see ~n/W — size every run
/// for the larger of the two patterns of its mode.
std::size_t mailbox_cell_hint(int num_nodes, int shards, bool replay) noexcept {
  if (shards < 1) return 0;  // EpochMailbox rejects the shard count itself
  const auto n = static_cast<std::size_t>(num_nodes);
  const auto w = static_cast<std::size_t>(shards);
  return (replay ? n / w : n / (w * w)) + 8;
}

OnlineSimConfig replay_as_engine_config(const ReplayConfig& config) {
  OnlineSimConfig oc;
  oc.client = config.client;
  oc.duration_s = config.duration_s;
  oc.measure_start_s = config.measure_start_s;
  oc.ping_interval_s = config.epoch_s;  // the kernel's epoch length
  oc.collect_timeseries = config.collect_timeseries;
  oc.timeseries_bucket_s = config.timeseries_bucket_s;
  oc.collect_oracle = config.collect_oracle;
  oc.tracked_nodes = config.tracked_nodes;
  oc.track_interval_s = config.track_interval_s;
  oc.estimator = config.estimator;
  oc.publish_snapshots = config.publish_snapshots;
  oc.snapshot_interval_epochs = config.snapshot_interval_epochs;
  oc.snapshot_deltas = config.snapshot_deltas;
  oc.snapshot_base_interval = config.snapshot_base_interval;
  oc.rebalance_interval_epochs = config.rebalance_interval_epochs;
  oc.rebalance_max_moves = config.rebalance_max_moves;
  return oc;
}

}  // namespace

ShardedEngine::ShardedEngine(const OnlineSimConfig& config, int shards,
                             lat::Topology topology,
                             const lat::LinkModelConfig& link_config,
                             const lat::AvailabilityConfig& availability,
                             std::vector<ShardedRouteChange> route_changes)
    : mode_(Mode::kOnline),
      config_(config),
      topology_(std::move(topology)),
      link_config_(link_config),
      availability_(availability),
      mailbox_(shards, mailbox_cell_hint(topology_.size(), shards, false)) {
  const int n = topology_.size();
  NC_CHECK_MSG(shards >= 1, "need at least one shard");
  // Same validation the retired classic path got from schedule_route_change:
  // fail the bad spec up front, not deep inside a worker thread mid-run.
  // Schedules are indexed by undirected link so lazy link initialization
  // finds its steps in O(1) — preset schedules touch O(n) links at once.
  for (const ShardedRouteChange& rc : route_changes) {
    NC_CHECK_MSG(rc.factor > 0.0, "route factor must be positive");
    NC_CHECK_MSG(rc.i >= 0 && rc.i < n && rc.j >= 0 && rc.j < n && rc.i != rc.j,
                 "bad route-change link");
    route_changes_[undirected_key(rc.i, rc.j)].emplace_back(rc.at_t, rc.factor);
  }
  for (auto& [key, steps] : route_changes_) std::sort(steps.begin(), steps.end());

  // One shared builder with the facade: same validations, same per-node
  // streams, same bootstrap membership (identical at any shard count —
  // every draw comes from a node's own stream).
  OnlineNodeRuntime rt = make_online_node_runtime(config, n);
  clients_ = std::move(rt.clients);
  neighbors_ = std::move(rt.neighbors);
  timer_rngs_ = std::move(rt.timer_rngs);
  msg_seq_.assign(static_cast<std::size_t>(n), 0);
  node_dyn_.resize(static_cast<std::size_t>(n));
  snapshots_.resize(static_cast<std::size_t>(n));

  init_snapshot_publication(shards, n);
  init_shards(shards, n);
}

ShardedEngine::ShardedEngine(const ReplayConfig& config, int num_nodes)
    : mode_(Mode::kReplay),
      config_(replay_as_engine_config(config)),
      mailbox_(config.shards,
               mailbox_cell_hint(num_nodes, config.shards, true)) {
  NC_CHECK_MSG(config.shards >= 1, "need at least one shard");
  NC_CHECK_MSG(num_nodes >= 1, "need at least one node");
  NC_CHECK_MSG(config.epoch_s > 0.0, "epoch length must be positive");
  NC_CHECK_MSG(config.tracked_nodes.empty() || config.track_interval_s > 0.0,
               "tracking requires a positive track interval");

  clients_.reserve(static_cast<std::size_t>(num_nodes));
  for (NodeId id = 0; id < num_nodes; ++id)
    clients_.push_back(std::make_unique<NCClient>(id, config.client));
  msg_seq_.assign(static_cast<std::size_t>(num_nodes), 0);

  init_snapshot_publication(config.shards, num_nodes);
  init_shards(config.shards, num_nodes);
}

void ShardedEngine::init_snapshot_publication(int shards, int num_nodes) {
  // The snapshot backend reads its primary state off a publisher; when the
  // spec names none, the engine is it — turn publication on and point every
  // shard instance (built right after, in init_shards) at publisher_.
  if (config_.estimator.backend == est::EstimatorBackend::kSnapshot) {
    config_.publish_snapshots = true;
    if (config_.estimator.snapshot_source == nullptr)
      config_.estimator.snapshot_source = &publisher_;
  }
  NC_CHECK_MSG(!config_.publish_snapshots ||
                   config_.snapshot_interval_epochs >= 1,
               "snapshot interval must be >= 1 epoch");
  if (config_.publish_snapshots && config_.snapshot_deltas) {
    NC_CHECK_MSG(config_.snapshot_base_interval >= 1,
                 "snapshot base interval must be >= 1 publish");
    publisher_.enable_deltas(config_.snapshot_base_interval, shards);
    // The diff reference starts all-default; the first publish's companion
    // delta therefore carries every node once, and churn-proportional
    // records from there on.
    last_published_.assign(static_cast<std::size_t>(num_nodes),
                           est::SnapshotNode{});
  }
}

void ShardedEngine::init_shards(int shards, int num_nodes) {
  NC_CHECK_MSG(config_.rebalance_interval_epochs >= 0,
               "rebalance interval must be >= 0 epochs");
  NC_CHECK_MSG(config_.rebalance_max_moves >= 0,
               "rebalance move budget must be >= 0");
  // At one shard every plan is empty by construction; keep the whole
  // machinery off so shards=1 stays the reference semantics bit-for-bit.
  rebalancing_ = config_.rebalance_interval_epochs > 0 && shards > 1;
  ownership_ = OwnershipMap(num_nodes, shards);
  if (rebalancing_) {
    node_weight_.assign(static_cast<std::size_t>(num_nodes), 0);
    pinned_.assign(static_cast<std::size_t>(num_nodes), 0);
    // Drift-tracked nodes are pinned: their tick series lives in the
    // tracked subset of one shard's collector, which never migrates.
    for (NodeId id : config_.tracked_nodes) {
      NC_CHECK_MSG(id >= 0 && id < num_nodes, "tracked node out of range");
      pinned_[static_cast<std::size_t>(id)] = 1;
    }
    migrations_ = MigrationChannel<NodeMigration>(shards);
  }

  shards_.resize(static_cast<std::size_t>(shards));
  for (NodeId id = 0; id < num_nodes; ++id)
    shards_[static_cast<std::size_t>(shard_of(id))].owned.push_back(id);

  for (auto& shard : shards_) {
    shard.ownership = ownership_;
    // Directed-link state indexed (src - first_owned, dst), lazily
    // stream-seeded on first touch. Online mode only — replay traffic
    // carries its RTTs in the trace, so replay shards own no link state at
    // all. Static partition: rows cover the shard's contiguous node block.
    // Dynamic ownership breaks the contiguous-block invariant, so the
    // stores span the FULL id space (row == node id; first_owned == 0) and
    // a migration is a row hand-off between stores; forced paged/sparse so
    // each shard pays for the rows it actually owns, not n^2.
    if (rebalancing_) {
      shard.first_owned = 0;
      if (mode_ == Mode::kOnline)
        shard.links = ShardLinkStore<DirLink>(
            static_cast<std::size_t>(num_nodes),
            static_cast<std::size_t>(num_nodes), 0,
            config_.link_sparse_slot_limit);
    } else if (!shard.owned.empty()) {
      shard.first_owned = shard.owned.front();
      if (mode_ == Mode::kOnline)
        shard.links = ShardLinkStore<DirLink>(
            shard.owned.size(), static_cast<std::size_t>(num_nodes),
            config_.link_eager_slot_limit, config_.link_sparse_slot_limit);
    }

    std::vector<NodeId> tracked;
    for (NodeId id : config_.tracked_nodes) {
      NC_CHECK_MSG(id >= 0 && id < num_nodes, "tracked node out of range");
      if (shard_of(id) == static_cast<int>(&shard - shards_.data()))
        tracked.push_back(id);
    }
    shard.collector = std::make_unique<MetricsCollector>(
        make_shard_metrics_config(config_, num_nodes, std::move(tracked)));
    // The shard's estimation backend instance, covering exactly its owned
    // node block (full-height under rebalancing, same as the link store —
    // forced paged so the owner-partitioned matrix rows cost what they
    // hold, and a row hand-off lands in untouched pages).
    if (rebalancing_) {
      est::EstimatorSpec espec = config_.estimator;
      espec.idms_eager_slot_limit = 0;
      shard.estimator = est::make_estimator(espec, num_nodes, 0, num_nodes);
    } else {
      shard.estimator = est::make_estimator(
          config_.estimator, num_nodes, shard.first_owned,
          static_cast<int>(shard.owned.size()));
    }
    // Staggered first pings for the shard's nodes, one phase draw per node
    // from its own stream (online mode; replay has no timers).
    if (mode_ == Mode::kOnline) {
      for (NodeId id : shard.owned)
        shard.queue.push(make_event(
            timer_rngs_[static_cast<std::size_t>(id)].uniform(0.0, config_.ping_interval_s),
            ShardEventKind::kPingTimer, id));
    }
    // Drift-tracking ticks at exact multiples of the interval, plus the
    // final duration_s sample recorded after the last epoch.
    if (!shard.collector->config().tracked_nodes.empty()) {
      for (double t = config_.track_interval_s; t < config_.duration_s;
           t += config_.track_interval_s)
        shard.queue.push(make_event(t, ShardEventKind::kTrack));
    }
  }
}

int ShardedEngine::shard_of(NodeId id) const noexcept {
  // The ownership table seeds to the block partition shard_of_node computes
  // (contiguous id ranges; shared with lat::partition_trace, which splits
  // replay traces by that same static function). Without rebalancing the
  // two never differ; with it, this is the CURRENT owner — re-synced from
  // shard 0 once the workers join, so post-run routing (estimate_rtt) hits
  // the shard that actually holds the node's estimator state.
  return ownership_.owner(id);
}

void ShardedEngine::advance_node_dyn(NodeId id, double t) {
  NodeDyn& s = node_dyn_[static_cast<std::size_t>(id)];
  if (!s.initialized) {
    s.initialized = true;
    s.rng = Rng::derived(config_.seed, rngstream::kNode,
                         static_cast<std::uint64_t>(id));
    s.dyn.init(s.rng, t, link_config_, availability_);
  }
  s.dyn.advance(s.rng, t, link_config_, availability_);
  bool up = s.dyn.up;
  // Staged-rollout skew: an override AFTER the advance, so the node's RNG
  // stream is untouched and the workload stays placement-independent.
  if (up && id < availability_.staged_down_count &&
      t < availability_.staged_join_s)
    up = false;
  snapshots_[static_cast<std::size_t>(id)] =
      NodeSnapshot{static_cast<std::uint8_t>(up ? 1 : 0), s.dyn.burst_end_t};
}

ShardedEngine::DirLink& ShardedEngine::link_at(Shard& shard, NodeId src,
                                               NodeId dst, double t) {
  DirLink& s = shard.links.at(static_cast<std::size_t>(src - shard.first_owned),
                              static_cast<std::size_t>(dst));
  if (!s.initialized) {
    s.initialized = true;
    s.rng = Rng::derived(config_.seed, rngstream::kDirectedLink,
                         directed_key(src, dst));
    s.dyn.init(s.rng, t, link_config_);
    if (const auto it = route_changes_.find(undirected_key(src, dst));
        it != route_changes_.end()) {
      s.dyn.scheduled = it->second;  // already sorted at construction
      s.dyn.route_changes_frozen = true;  // controlled steps stay clean
    }
  }
  s.dyn.advance(s.rng, t, link_config_);
  return s;
}

void ShardedEngine::deliver_batch(Shard& shard, int shard_idx,
                                  double epoch_start) {
  mailbox_.collect_into(shard_idx, shard.inbox);
  for (const ShardMessage& msg : shard.inbox) {
    if (msg.kind == ShardMsgKind::kDstError) {
      // Commutes with everything in the epoch: only the per-destination
      // order matters, and the canonical batch merge fixed it.
      shard.collector->record_dst_error(msg.t, msg.to, msg.err);
      continue;
    }
    // Processing time is clamped up to this epoch's start so per-entity
    // time never runs backwards; events delivered at the same clamped time
    // are ordered by the queue key's (kind, sender, seq) tiebreaks.
    ShardEvent ev;
    ev.t = std::max(msg.t, epoch_start);
    switch (msg.kind) {
      case ShardMsgKind::kPing: ev.kind = ShardEventKind::kPing; break;
      case ShardMsgKind::kPong: ev.kind = ShardEventKind::kPong; break;
      default: ev.kind = ShardEventKind::kObs; break;
    }
    ev.a = msg.to;
    ev.b = msg.from;
    ev.seq = msg.seq;
    ev.t_orig = msg.t;
    ev.rtt_ms = msg.rtt_ms;
    ev.gossip = msg.gossip;
    ev.gt_rtt_ms = msg.gt_rtt_ms;
    ev.sys_coord = msg.sys_coord;
    ev.app_coord = msg.app_coord;
    ev.coord_err = msg.coord_err;
    shard.staging.push_back(std::move(ev));
  }
  // One bulk hand-off: push_batch sorts the staged events by the canonical
  // processing key and merges them into the calendar in one pass per
  // bucket. Thousands of deliveries share the exact clamped epoch-start
  // time, so per-event insertion would pay a bucket-tail memmove each.
  shard.queue.push_batch(shard.staging);
}

void ShardedEngine::process_epoch(Shard& shard, int shard_idx,
                                  double epoch_end) {
  while (shard.queue.has_event_before(epoch_end)) {
    const ShardEvent ev = shard.queue.pop();
    if (ev.t >= config_.duration_s) continue;  // final partial epoch
    // Track ticks are bookkeeping, not simulation events: every shard that
    // owns a tracked node carries its own copy of the tick series, so
    // counting them would make events_processed() depend on the partition.
    if (ev.kind != ShardEventKind::kTrack) {
      ++shard.events;
      // Rebalance weight: the owner counts every event its node consumes;
      // decision points read the shared counters at barriers only.
      if (rebalancing_) ++node_weight_[static_cast<std::size_t>(ev.a)];
    }
    switch (ev.kind) {
      case ShardEventKind::kTrack:
        for (NodeId id : shard.collector->config().tracked_nodes)
          shard.collector->track_coordinate(ev.t, id,
                                            client(id).system_coordinate());
        break;
      case ShardEventKind::kPingTimer:
        on_ping_timer(shard, ev.t, ev.a);
        break;
      case ShardEventKind::kPing:
        on_delivered_ping(shard, ev.t, ev);
        break;
      case ShardEventKind::kPong:
        on_delivered_pong(shard, ev.t, ev);
        break;
      case ShardEventKind::kObs:
        on_delivered_obs(shard, ev);
        break;
    }
  }
  // Replay: reading shards double as readers (shard 0 alone for a single
  // source; every shard over its own slice when partitioned). Reading one
  // epoch window AHEAD of the one just processed means a record reaches its
  // observed node's shard in the epoch that contains the record's own
  // timestamp (so the state stamp happens at exact record time, unclamped).
  if (mode_ == Mode::kReplay &&
      static_cast<std::size_t>(shard_idx) < readers_.size() &&
      readers_[static_cast<std::size_t>(shard_idx)].source != nullptr)
    read_trace_until(shard_idx, epoch_end + config_.ping_interval_s);
  // All of this epoch's emissions are in; sort the kPong/kObs runs (the
  // kinds whose timestamps are not monotone in emission order) so every
  // outbox is canonically ordered before the receivers merge at the barrier.
  mailbox_.seal_outboxes(shard_idx);
}

void ShardedEngine::on_ping_timer(Shard& shard, double t, NodeId node) {
  // Re-arm first so churned/idle nodes keep their cadence.
  const double jitter = timer_rngs_[static_cast<std::size_t>(node)].uniform(
      -config_.ping_jitter_s, config_.ping_jitter_s);
  shard.queue.push(make_event(t + std::max(0.1, config_.ping_interval_s + jitter),
                              ShardEventKind::kPingTimer, node));

  if (!snapshots_[static_cast<std::size_t>(node)].up) return;

  auto& nbrs = neighbors_[static_cast<std::size_t>(node)];
  const auto target = nbrs.next_round_robin();
  if (!target.has_value()) return;

  ++shard.pings_sent;
  if (!snapshots_[static_cast<std::size_t>(*target)].up) {
    ++shard.pings_lost;  // target down: the ping times out
    return;
  }

  DirLink& link = link_at(shard, node, *target, t);
  if (link.rng.bernoulli(link_config_.loss_prob)) {
    ++shard.pings_lost;
    return;
  }

  // Same observation model as LatencyNetwork::sample_rtt (shared pipeline),
  // on the directed link's own stream; overload windows come from the epoch
  // snapshots.
  const bool overload =
      t < snapshots_[static_cast<std::size_t>(node)].burst_end_t ||
      t < snapshots_[static_cast<std::size_t>(*target)].burst_end_t;
  const double base = topology_.base_rtt_ms(node, *target) * link.dyn.route_factor;
  const double rtt = lat::sample_noisy_rtt(link.rng, base, overload,
                                           t < link.dyn.burst_end_t, link_config_);

  ShardMessage msg;
  msg.kind = ShardMsgKind::kPing;
  msg.t = t;
  msg.from = node;
  msg.to = *target;
  msg.seq = msg_seq_[static_cast<std::size_t>(node)]++;
  msg.rtt_ms = static_cast<float>(rtt);
  if (config_.collect_oracle) msg.gt_rtt_ms = base;
  // The ping gossips one of the sender's neighbors (never the target
  // itself) and introduces the sender.
  if (const auto g = nbrs.random_neighbor(); g.has_value() && *g != *target)
    msg.gossip = *g;
  // Route with the shard's OWN ownership view: at a rebalance epoch it was
  // advanced to the post-barrier owners before any send, which is exactly
  // who collects this outbox at the next hand-off.
  mailbox_.send(shard_idx_of(shard), shard.ownership.owner(*target),
                std::move(msg));
}

void ShardedEngine::on_delivered_ping(Shard& shard, double t_proc,
                                      const ShardEvent& ev) {
  const NodeId receiver = ev.a;   // the pinged node
  const NodeId pinger = ev.b;
  auto& nbrs = neighbors_[static_cast<std::size_t>(receiver)];
  nbrs.add(pinger);
  if (ev.gossip != kInvalidNode && ev.gossip != receiver) nbrs.add(ev.gossip);

  NCClient& cl = *clients_[static_cast<std::size_t>(receiver)];
  ShardMessage pong;
  pong.kind = ShardMsgKind::kPong;
  pong.t = ev.t_orig + static_cast<double>(ev.rtt_ms) / 1000.0;
  pong.from = receiver;
  pong.to = pinger;
  pong.seq = msg_seq_[static_cast<std::size_t>(receiver)]++;
  pong.rtt_ms = ev.rtt_ms;
  pong.gt_rtt_ms = ev.gt_rtt_ms;
  if (const auto g = nbrs.random_neighbor(); g.has_value() && *g != pinger)
    pong.gossip = *g;
  // The remote's state as of reply time; the observer applies it on arrival.
  pong.sys_coord = cl.system_coordinate();
  pong.app_coord = cl.application_coordinate();
  pong.coord_err = cl.error_estimate();
  mailbox_.send(shard_idx_of(shard), shard.ownership.owner(pinger),
                std::move(pong));
  (void)t_proc;
}

void ShardedEngine::on_delivered_obs(Shard& shard, const ShardEvent& ev) {
  // A trace record reached the OBSERVED node's owner: answer it exactly like
  // a ping, stamping the node's current state into a pong at the record's
  // own timestamp. The recorded source node observes it one hand-off later.
  const NodeId observed = ev.a;
  const NodeId observer = ev.b;
  NCClient& cl = *clients_[static_cast<std::size_t>(observed)];
  ShardMessage pong;
  pong.kind = ShardMsgKind::kPong;
  pong.t = ev.t_orig;
  pong.from = observed;
  pong.to = observer;
  pong.seq = msg_seq_[static_cast<std::size_t>(observed)]++;
  pong.rtt_ms = ev.rtt_ms;
  pong.gt_rtt_ms = ev.gt_rtt_ms;
  pong.sys_coord = cl.system_coordinate();
  pong.app_coord = cl.application_coordinate();
  pong.coord_err = cl.error_estimate();
  mailbox_.send(shard_idx_of(shard), shard.ownership.owner(observer),
                std::move(pong));
}

void ShardedEngine::on_delivered_pong(Shard& shard, double t_proc,
                                      const ShardEvent& ev) {
  const NodeId observer = ev.a;
  const NodeId remote = ev.b;
  if (ev.gossip != kInvalidNode && ev.gossip != observer)
    neighbors_[static_cast<std::size_t>(observer)].add(ev.gossip);

  NCClient& cl = *clients_[static_cast<std::size_t>(observer)];
  const ObservationOutcome outcome =
      cl.observe(remote, ev.sys_coord, ev.coord_err,
                 static_cast<double>(ev.rtt_ms), t_proc);

  // Feed the active estimation backend, then score ITS answer for the pair:
  // the accuracy metrics measure whatever backend the run selected. For the
  // coordinate backend the estimate right after the feed is exactly
  // src_app.distance_to(dst_app), which keeps the refactored engine
  // bit-identical to the pre-seam metrics.
  est::LatencyObservation obs;
  obs.src = observer;
  obs.dst = remote;
  obs.t_s = t_proc;
  obs.raw_rtt_ms = static_cast<double>(ev.rtt_ms);
  obs.src_app = cl.application_coordinate();
  obs.dst_app = ev.app_coord;
  shard.estimator->on_observation(obs);
  const std::optional<double> predicted =
      shard.estimator->estimate_rtt(observer, remote, t_proc);
  NC_ASSERT(predicted.has_value());  // the pair was observed this instant

  std::optional<double> truth;
  // Replay oracle values exist only when the caller supplied the generating
  // network; online runs compute them at ping time.
  if (config_.collect_oracle && (mode_ == Mode::kOnline || oracle_ != nullptr))
    truth = ev.gt_rtt_ms;

  const double err = shard.collector->on_observation(
      t_proc, observer, remote, static_cast<double>(ev.rtt_ms), *predicted,
      outcome, truth);

  // Route the destination-keyed error record to the destination's owner so
  // its streaming median sees one canonical input order.
  if (t_proc >= config_.measure_start_s && t_proc < config_.duration_s) {
    ShardMessage rec;
    rec.kind = ShardMsgKind::kDstError;
    rec.t = t_proc;
    rec.from = observer;
    rec.to = remote;
    rec.seq = msg_seq_[static_cast<std::size_t>(observer)]++;
    rec.err = err;
    mailbox_.send(shard_idx_of(shard), shard.ownership.owner(remote),
                  std::move(rec));
  }
}

void ShardedEngine::read_trace_until(int shard_idx, double t_limit) {
  ReaderState& reader = readers_[static_cast<std::size_t>(shard_idx)];
  if (reader.done) return;
  for (;;) {
    if (!reader.pending.has_value()) {
      reader.pending = reader.source->next();
      if (!reader.pending.has_value()) {
        reader.done = true;
        return;
      }
    }
    const lat::TraceRecord& rec = *reader.pending;
    if (rec.t_s >= config_.duration_s) {
      // Records arrive in non-decreasing time order: nothing after this one
      // can be in range either (same early-out the serial driver had).
      reader.done = true;
      reader.pending.reset();
      return;
    }
    if (rec.t_s >= t_limit) return;  // next epoch's window; keep it pending
    NC_CHECK_MSG(rec.src >= 0 && rec.src < num_nodes(), "bad src id");
    NC_CHECK_MSG(rec.dst >= 0 && rec.dst < num_nodes(), "bad dst id");
    NC_CHECK_MSG(rec.src != rec.dst, "self-observation in trace");
    NC_CHECK_MSG(rec.rtt_ms > 0.0f, "non-positive rtt in trace");
    // A partitioned slice must hold exactly the reading shard's records; a
    // mis-split file would scramble the canonical merge order silently.
    // Deliberately the STATIC partition (the one lat::partition_trace split
    // by): readers stay bound to their original slice even after the record's
    // dst migrated — only the kObs routing below follows the dynamic owner.
    NC_CHECK_MSG(!partitioned_ ||
                     shard_of_node(rec.dst, num_nodes(),
                                   static_cast<int>(shards_.size())) ==
                         shard_idx,
                 "partitioned trace slice holds a foreign record");

    ShardMessage msg;
    msg.kind = ShardMsgKind::kObs;
    msg.t = rec.t_s;
    msg.from = rec.src;  // the observer
    msg.to = rec.dst;    // the observed node: first stop of the record
    msg.seq = reader.seq++;
    msg.rtt_ms = rec.rtt_ms;
    if (oracle_ != nullptr && config_.collect_oracle)
      msg.gt_rtt_ms = oracle_->ground_truth_rtt(rec.src, rec.dst, rec.t_s);
    mailbox_.send(shard_idx,
                  shards_[static_cast<std::size_t>(shard_idx)].ownership.owner(
                      rec.dst),
                  std::move(msg));
    reader.pending.reset();
  }
}

void ShardedEngine::write_snapshot_slice(int shard_idx, const Shard& shard) {
  // Owned slots only: slices (and dirty lanes) are disjoint across shards,
  // so concurrent stamping needs no synchronization beyond the epoch
  // barriers that order it against the publish. Replay mode has no
  // availability process — every node is up by definition of the trace.
  // Published error/confidence describe the published (application)
  // coordinate — NCClient::app_error(), frozen at the coordinate's last
  // update — NOT the live Vivaldi estimate, which moves every observation
  // and would make every slot dirty every epoch.
  est::EpochSnapshot* snap = snap_staging_;
  std::vector<est::SnapshotDeltaEntry>* lane =
      config_.snapshot_deltas ? &publisher_.lane(shard_idx) : nullptr;
  for (NodeId id : shard.owned) {
    const auto i = static_cast<std::size_t>(id);
    const NCClient& cl = *clients_[i];
    est::SnapshotNode cur;
    cur.app = cl.application_coordinate();
    cur.error = cl.app_error();
    cur.confidence = cl.app_confidence();
    cur.up = mode_ == Mode::kOnline ? snapshots_[i].up : std::uint8_t{1};
    if (snap != nullptr) snap->nodes[i] = cur;
    if (lane != nullptr) {
      // Append only slots whose published record actually changes, and fold
      // the change into the mirror so the next stamp diffs against what this
      // publish ships. Migration-safe: the mirror slot moves with ownership,
      // and the barriers order the old owner's last stamp before the new
      // owner's first.
      est::SnapshotNode& prev = last_published_[i];
      if (!(prev == cur)) {
        lane->push_back({static_cast<std::uint32_t>(id), cur});
        prev = cur;
      }
    }
  }
}

void ShardedEngine::run() {
  NC_CHECK_MSG(mode_ == Mode::kOnline,
               "run() without a trace is online mode only");
  run_epochs();
}

void ShardedEngine::run(lat::TraceSource& source, lat::LatencyNetwork* oracle) {
  NC_CHECK_MSG(mode_ == Mode::kReplay, "run(trace) is replay mode only");
  NC_CHECK_MSG(source.num_nodes() <= num_nodes(),
               "trace has more nodes than driver");
  readers_.resize(shards_.size());
  readers_[0] = ReaderState{&source, std::nullopt, 0, false};
  oracle_ = oracle;
  // Prime the pipeline: epoch 0's records must already sit in the mailbox
  // when the first delivery phase collects it (each reader stays one window
  // ahead from here on). Runs before any worker launches, so sending and
  // sealing from the main thread is safe.
  read_trace_until(0, config_.ping_interval_s);
  mailbox_.seal_outboxes(0);
  run_epochs();
  readers_.clear();
}

void ShardedEngine::run_partitioned(
    const std::vector<lat::TraceSource*>& sources) {
  NC_CHECK_MSG(mode_ == Mode::kReplay,
               "run_partitioned(traces) is replay mode only");
  NC_CHECK_MSG(sources.size() == shards_.size(),
               "need exactly one trace slice per shard");
  partitioned_ = true;
  readers_.resize(shards_.size());
  for (std::size_t s = 0; s < sources.size(); ++s) {
    NC_CHECK_MSG(sources[s] != nullptr, "null trace slice");
    NC_CHECK_MSG(sources[s]->num_nodes() <= num_nodes(),
                 "trace has more nodes than driver");
    readers_[s] = ReaderState{sources[s], std::nullopt, 0, false};
  }
  // Prime every reader's first window (main thread; workers not launched).
  for (std::size_t s = 0; s < readers_.size(); ++s) {
    read_trace_until(static_cast<int>(s), config_.ping_interval_s);
    mailbox_.seal_outboxes(static_cast<int>(s));
  }
  run_epochs();
  readers_.clear();
}

void ShardedEngine::run_epochs() {
  NC_CHECK_MSG(!ran_, "run() called twice");
  ran_ = true;

  const double interval = config_.ping_interval_s;
  const auto epochs = static_cast<std::int64_t>(
      std::max(1.0, std::ceil(config_.duration_s / interval)));
  const auto W = static_cast<int>(shards_.size());

  std::barrier<> sync(static_cast<std::ptrdiff_t>(W));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(W));

  const auto work = [&](int s) noexcept {
    Shard& shard = shards_[static_cast<std::size_t>(s)];
    try {
      for (std::int64_t k = 0; k < epochs; ++k) {
        const double epoch_start = static_cast<double>(k) * interval;
        // Rebalance decisions happen at interval multiples, never at k == 0
        // (no weights yet) and never at the last epoch (the hand-off needs
        // one more epoch to land).
        const bool decide =
            rebalancing_ && k > 0 && k + 1 < epochs &&
            k % config_.rebalance_interval_epochs == 0;
        const double seg_delivery = thread_cpu_seconds();
        // Snapshot hand-off, shard 0, before the delivery barrier: ship
        // what every shard stamped during the PREVIOUS processing phase —
        // the staged full buffer and/or the dirty lanes; the content is the
        // boundary-k state, t = epoch_start — then arm the next publish
        // (acquiring a full staging buffer only when the publisher's next
        // publish ships a base; on delta epochs the lanes alone carry it).
        // Safe without extra locks — the previous epoch's stamp writes
        // happened before its second barrier, and peers only read the
        // pending flag after this epoch's first one.
        if (config_.publish_snapshots && s == 0) {
          if (snap_publish_pending_) {
            publisher_.publish(epoch_start);
            snap_staging_ = nullptr;
            snap_publish_pending_ = false;
          }
          if (k % config_.snapshot_interval_epochs == 0) {
            snap_publish_pending_ = true;
            if (publisher_.next_is_base())
              snap_staging_ = &publisher_.staging(num_nodes());
          }
        }
        // Dynamic ownership, top of the epoch: land the previous barrier's
        // migrations FIRST (owned lists + packed state), so this epoch's
        // node dynamics, deliveries and dst-error records already see the
        // new owner; then, on a decision epoch, advance the routing view so
        // every send below targets the post-barrier owners.
        if (rebalancing_) {
          apply_migrations(shard, s);
          if (decide) decide_rebalance(shard);
        }
        // Delivery phase: own node dynamics + own inbox only.
        if (mode_ == Mode::kOnline)
          for (NodeId id : shard.owned) advance_node_dyn(id, epoch_start);
        deliver_batch(shard, s, epoch_start);
        shard.busy_s += thread_cpu_seconds() - seg_delivery;
        sync.arrive_and_wait();
        const double seg_processing = thread_cpu_seconds();
        // The decision just consumed the weights (pre-barrier, identically
        // on every shard); start the next accumulation window at zero.
        if (decide)
          for (NodeId id : shard.owned)
            node_weight_[static_cast<std::size_t>(id)] = 0;
        // Processing phase: own entities; cross-shard state only via the
        // read-only snapshots and the outboxes.
        process_epoch(shard, s, static_cast<double>(k + 1) * interval);
        if (snap_publish_pending_) write_snapshot_slice(s, shard);
        // Departing nodes leave AFTER their last owned epoch is fully
        // processed and stamped; the receiver installs them right after the
        // barrier below.
        if (decide) pack_departures(shard, s);
        shard.busy_s += thread_cpu_seconds() - seg_processing;
        sync.arrive_and_wait();
      }
      // Destination error records emitted in the final epoch still count:
      // one last drain, applying only metric records (any in-flight
      // pings/pongs are past end-of-run, like the retired serial engines').
      mailbox_.collect_into(s, shard.inbox);
      for (const ShardMessage& msg : shard.inbox) {
        if (msg.kind == ShardMsgKind::kDstError)
          shard.collector->record_dst_error(msg.t, msg.to, msg.err);
      }
      // Close out the run: a final drift sample at duration_s, then flush
      // the collector's in-flight node-seconds.
      for (NodeId id : shard.collector->config().tracked_nodes)
        shard.collector->track_coordinate(config_.duration_s, id,
                                          client(id).system_coordinate());
      // Attach the shard backend's end-of-run introspection counters so the
      // collector merge rolls them into whole-run totals.
      shard.collector->set_estimator_stats(shard.estimator->stats());
      shard.collector->finalize();
    } catch (...) {
      errors[static_cast<std::size_t>(s)] = std::current_exception();
      sync.arrive_and_drop();  // release peers for all remaining phases
    }
  };

  if (W == 1) {
    work(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(W));
    for (int s = 0; s < W; ++s) threads.emplace_back(work, s);
    for (std::thread& t : threads) t.join();
  }
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);

  // Adopt the final ownership view (all per-shard copies are identical) so
  // shard_of() / estimate_rtt() route to whoever holds each node's state
  // now, and surface the per-shard utilization basis.
  ownership_ = shards_[0].ownership;
  busy_s_.clear();
  for (const Shard& shard : shards_) busy_s_.push_back(shard.busy_s);

  // Always close the run with an end-of-run snapshot (workers are joined,
  // so the main thread stamps every slice itself): readers that outlive the
  // run — examples querying a finished engine, load generators draining
  // their last requests — see the final coordinates whatever the mid-run
  // publication cadence was.
  if (config_.publish_snapshots) {
    if (config_.snapshot_deltas && snap_publish_pending_) {
      // The last processing phase stamped dirty lanes (and folded them into
      // the mirror) for a publish that never ran; ship it first so the delta
      // chain stays gapless for incremental readers, then force the closing
      // publish to carry a full base.
      publisher_.publish(config_.duration_s);
      snap_staging_ = nullptr;
      snap_publish_pending_ = false;
    }
    publisher_.force_base_next();
    snap_staging_ = &publisher_.staging(num_nodes());
    for (std::size_t s = 0; s < shards_.size(); ++s)
      write_snapshot_slice(static_cast<int>(s), shards_[s]);
    publisher_.publish(config_.duration_s);
    snap_staging_ = nullptr;
    snap_publish_pending_ = false;
  }

  // Merge shard collectors in shard order; fixed-point sums make the merged
  // totals independent of this order anyway.
  for (std::size_t s = 1; s < shards_.size(); ++s)
    shards_[0].collector->merge(*shards_[s].collector);
  for (const Shard& shard : shards_) {
    pings_sent_ += shard.pings_sent;
    pings_lost_ += shard.pings_lost;
    events_ += shard.events;
  }
}

void ShardedEngine::decide_rebalance(Shard& shard) {
  // Identical inputs on every shard: the shared weight counters (last
  // written before the previous barrier) and this shard's ownership copy
  // (kept in lock-step by construction) — so W redundant evaluations of the
  // pure plan function replace any cross-shard agreement protocol.
  shard.pending_plan = plan_rebalance(shard.ownership, node_weight_, pinned_,
                                      config_.rebalance_max_moves);
  shard.ownership.apply(shard.pending_plan);
  if (shard_idx_of(shard) == 0)
    migrated_ += static_cast<std::uint64_t>(shard.pending_plan.size());
}

void ShardedEngine::pack_departures(Shard& shard, int shard_idx) {
  for (const RebalanceMove& m : shard.pending_plan) {
    if (m.from != shard_idx) continue;
    NodeMigration mig;
    mig.node = m.node;
    // Only initialized slots travel: an untouched (src, dst) link re-seeds
    // identically from its derived stream wherever it is first touched.
    if (mode_ == Mode::kOnline)
      shard.links.extract_row(
          static_cast<std::size_t>(m.node - shard.first_owned), mig.links,
          [](const DirLink& l) { return l.initialized; });
    mig.estimator = shard.estimator->extract_node_state(m.node);
    mig.metrics = shard.collector->extract_node_state(m.node);
    shard.queue.extract_node_events(m.node, mig.pending);
    migrations_.outbox(shard_idx, m.to).push_back(std::move(mig));
  }
}

void ShardedEngine::apply_migrations(Shard& shard, int shard_idx) {
  if (shard.pending_plan.empty()) return;
  // Owned lists move to the post-barrier partition, kept sorted so epoch
  // iteration order (node dynamics, weight resets, snapshot slices) stays
  // id-ascending like the static block partition's.
  for (const RebalanceMove& m : shard.pending_plan) {
    if (m.from == shard_idx) {
      const auto it =
          std::lower_bound(shard.owned.begin(), shard.owned.end(), m.node);
      NC_ASSERT(it != shard.owned.end() && *it == m.node);
      shard.owned.erase(it);
    } else if (m.to == shard_idx) {
      shard.owned.insert(
          std::lower_bound(shard.owned.begin(), shard.owned.end(), m.node),
          m.node);
    }
  }
  shard.pending_plan.clear();

  migrations_.collect_into(shard_idx, shard.arrivals);
  // Canonical install order whatever the sender layout was.
  std::sort(shard.arrivals.begin(), shard.arrivals.end(),
            [](const NodeMigration& a, const NodeMigration& b) {
              return a.node < b.node;
            });
  std::uint64_t staged_bytes = 0;
  for (NodeMigration& mig : shard.arrivals) {
    staged_bytes += mig.payload_bytes();
    if (mode_ == Mode::kOnline)
      shard.links.install_row(
          static_cast<std::size_t>(mig.node - shard.first_owned), mig.links);
    shard.estimator->install_node_state(mig.node, mig.estimator);
    shard.collector->install_node_state(mig.node, std::move(mig.metrics));
    // The node's not-yet-processed events join this epoch's staging buffer;
    // deliver_batch's push_batch sorts the union into the canonical
    // processing order.
    shard.staging.insert(shard.staging.end(), mig.pending.begin(),
                         mig.pending.end());
  }
  shard.rebalance_recv_hwm = std::max(shard.rebalance_recv_hwm, staged_bytes);
  shard.arrivals.clear();
}

std::optional<double> ShardedEngine::estimate_rtt(NodeId a, NodeId b,
                                                  double now_s) {
  NC_CHECK_MSG(a >= 0 && a < num_nodes() && b >= 0 && b < num_nodes(),
               "estimate_rtt endpoint out of range");
  return shards_[static_cast<std::size_t>(shard_of(a))].estimator->estimate_rtt(
      a, b, now_s);
}

est::EstimatorStats ShardedEngine::estimator_stats() const {
  est::EstimatorStats total;
  for (const Shard& shard : shards_) total.add(shard.estimator->stats());
  return total;
}

MemoryBudget ShardedEngine::memory_budget() const {
  MemoryBudget b;
  for (const auto& cl : clients_) b.client_bytes += cl->memory_bytes();
  for (const Shard& shard : shards_) {
    b.link_bytes += shard.links.memory_bytes();
    b.estimator_bytes += shard.estimator->stats().memory_bytes;
  }
  b.mailbox_bytes = mailbox_.memory_bytes();
  for (const NeighborSet& ns : neighbors_)  // empty in replay mode
    b.neighbor_bytes += ns.memory_bytes();
  // Both 0 with publication off; the delta side is 0 in full-publication
  // mode. The last-published mirror is base-side state: O(n) full records,
  // whichever mode.
  b.snapshot_base_bytes =
      publisher_.base_memory_bytes() +
      last_published_.capacity() * sizeof(est::SnapshotNode);
  b.snapshot_delta_bytes = publisher_.delta_memory_bytes();
  // Dynamic-ownership overhead: the routing tables (engine + per-shard
  // copies), the weight/pin counters, and the high-water mark of migration
  // payloads staged across one barrier.
  b.rebalance_bytes = ownership_.memory_bytes();
  for (const Shard& shard : shards_)
    b.rebalance_bytes +=
        shard.ownership.memory_bytes() + shard.rebalance_recv_hwm;
  b.rebalance_bytes += node_weight_.capacity() * sizeof(std::uint32_t) +
                       pinned_.capacity() * sizeof(std::uint8_t);
  return b;
}

MetricsCollector& ShardedEngine::metrics() noexcept {
  return *shards_[0].collector;
}

const MetricsCollector& ShardedEngine::metrics() const noexcept {
  return *shards_[0].collector;
}

}  // namespace nc::sim

// Deterministic discrete-event queue.
//
// A min-heap ordered by (time, insertion sequence): events at equal times
// fire in insertion order, which keeps simulations bit-reproducible across
// runs and platforms. Payloads are plain structs (no std::function) so a
// multi-million-event run does not allocate per event.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "common/check.hpp"

namespace nc::sim {

template <typename Payload>
class EventQueue {
 public:
  struct Event {
    double t;
    std::uint64_t seq;
    Payload payload;
  };

  void schedule(double t, Payload payload) {
    NC_CHECK_MSG(t >= now_, "cannot schedule in the past");
    heap_.push(Event{t, next_seq_++, std::move(payload)});
  }

  /// Pops the earliest event and advances the simulated clock to it.
  [[nodiscard]] std::optional<Event> pop() {
    if (heap_.empty()) return std::nullopt;
    Event e = heap_.top();
    heap_.pop();
    NC_ASSERT(e.t >= now_);
    now_ = e.t;
    return e;
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  /// Time of the last popped event (0 before any pop).
  [[nodiscard]] double now() const noexcept { return now_; }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  double now_ = 0.0;
};

}  // namespace nc::sim

// Deterministic discrete-event queue.
//
// Events are ordered by (time, insertion sequence): events at equal times
// fire in insertion order, which keeps simulations bit-reproducible across
// runs and platforms. Payloads are plain structs (no std::function) so a
// multi-million-event run does not allocate per event. Storage is a bucketed
// calendar queue (calendar_queue.hpp): periodic timer traffic makes insert
// and pop O(1) amortized with no per-event heap sift, and the (t, seq) key
// is a total order, so the pop sequence is bit-identical to the binary heap
// this replaced.
//
// Library component: the retired serial OnlineSimulator was its last engine
// user (the sharded kernel keys its per-shard queues by the richer
// (t, kind, a, b, seq) order in shard_mailbox.hpp). It stays as the
// general-purpose deterministic queue for examples and micro-kernels, with
// its ordering contract pinned by event_queue_test.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>

#include "common/check.hpp"
#include "sim/calendar_queue.hpp"

namespace nc::sim {

template <typename Payload>
class EventQueue {
 public:
  struct Event {
    double t;
    std::uint64_t seq;
    Payload payload;
  };

  void schedule(double t, Payload payload) {
    NC_CHECK_MSG(t >= now_, "cannot schedule in the past");
    calendar_.push(Event{t, next_seq_++, std::move(payload)});
  }

  /// Pops the earliest event and advances the simulated clock to it.
  [[nodiscard]] std::optional<Event> pop() {
    if (calendar_.empty()) return std::nullopt;
    Event e = calendar_.pop();
    NC_ASSERT(e.t >= now_);
    now_ = e.t;
    return e;
  }

  [[nodiscard]] bool empty() const noexcept { return calendar_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return calendar_.size(); }
  /// Time of the last popped event (0 before any pop).
  [[nodiscard]] double now() const noexcept { return now_; }

 private:
  struct Ops {
    [[nodiscard]] static double time(const Event& e) noexcept { return e.t; }
    [[nodiscard]] static bool less(const Event& a, const Event& b) noexcept {
      if (a.t != b.t) return a.t < b.t;
      return a.seq < b.seq;
    }
  };

  CalendarQueue<Event, Ops> calendar_;
  std::uint64_t next_seq_ = 0;
  double now_ = 0.0;
};

}  // namespace nc::sim

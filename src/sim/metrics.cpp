#include "sim/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "stats/percentile.hpp"

namespace nc::sim {

MetricsCollector::MetricsCollector(const MetricsConfig& config) : config_(config) {
  NC_CHECK_MSG(config.num_nodes >= 2, "need at least two nodes");
  NC_CHECK_MSG(config.duration_s > 0.0, "duration must be positive");
  NC_CHECK_MSG(config.measure_start_s >= 0.0 &&
                   config.measure_start_s < config.duration_s,
               "bad measurement window");
  NC_CHECK_MSG(eval_window_seconds() >= 1,
               "measurement window must span at least one full second "
               "(per-second stability metrics cover [ceil(measure_start_s), "
               "ceil(duration_s)))");
  const auto n = static_cast<std::size_t>(config.num_nodes);
  node_errors_.resize(n);
  node_current_second_.resize(n);
  node_second_movements_.resize(n);
  node_last_update_sec_.assign(n, -1);
  dst_median_.assign(n, stats::P2Quantile(0.5));
  dst_count_.assign(n, 0);
  if (config.collect_oracle) {
    node_oracle_median_.assign(n, stats::P2Quantile(0.5));
    node_oracle_count_.assign(n, 0);
  }
  const auto total_secs = static_cast<std::size_t>(std::ceil(config.duration_s)) + 1;
  app_move_per_sec_.assign(total_secs, 0);
  sys_move_per_sec_.assign(total_secs, 0);
  updating_nodes_per_sec_.assign(eval_window_seconds(), 0);
  if (config.collect_timeseries) {
    ts_errors_.emplace(config.timeseries_bucket_s);
  }
  drift_.resize(n);
  drift_tracked_.assign(n, 0);
  for (NodeId id : config.tracked_nodes) {
    NC_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < n,
                 "tracked node out of range");
    drift_tracked_[static_cast<std::size_t>(id)] = 1;
  }
}

std::size_t MetricsCollector::second_index(double t) const noexcept {
  const auto idx = static_cast<std::size_t>(std::max(0.0, std::floor(t)));
  return std::min(idx, app_move_per_sec_.size() - 1);
}

std::size_t MetricsCollector::eval_start_sec() const noexcept {
  return static_cast<std::size_t>(std::ceil(config_.measure_start_s));
}

std::size_t MetricsCollector::eval_end_sec() const noexcept {
  return std::min(app_move_per_sec_.size(),
                  static_cast<std::size_t>(std::ceil(config_.duration_s)));
}

std::size_t MetricsCollector::eval_window_seconds() const noexcept {
  const std::size_t start = eval_start_sec();
  const std::size_t end =
      static_cast<std::size_t>(std::ceil(config_.duration_s));
  return end > start ? end - start : 0;
}

double MetricsCollector::on_observation(double t, NodeId src, NodeId dst,
                                        double raw_rtt_ms,
                                        double predicted_rtt_ms,
                                        const ObservationOutcome& outcome,
                                        std::optional<double> oracle_rtt_ms) {
  NC_CHECK_MSG(raw_rtt_ms > 0.0, "raw rtt must be positive");
  ++observations_;
  const auto s = static_cast<std::size_t>(src);
  const auto d = static_cast<std::size_t>(dst);
  NC_CHECK_MSG(d < dst_median_.size(), "dst out of range");
  const bool eval = in_eval_window(t);

  // Application-level relative error for this observation.
  const double predicted = predicted_rtt_ms;
  const double err = std::fabs(predicted - raw_rtt_ms) / raw_rtt_ms;
  if (eval) {
    node_errors_[s].push_back(err);
    if (config_.inline_dst_errors) {
      dst_median_[d].add(err);
      ++dst_count_[d];
    }
  }
  if (ts_errors_) ts_errors_->add(t, err);

  if (config_.collect_oracle && oracle_rtt_ms.has_value() && eval) {
    const double oerr = std::fabs(predicted - *oracle_rtt_ms) / *oracle_rtt_ms;
    node_oracle_median_[s].add(oerr);
    ++node_oracle_count_[s];
  }

  // Movement accounting (whole run, per second, fixed-point).
  const std::size_t sec = second_index(t);
  app_move_per_sec_[sec] += to_ticks(outcome.app_displacement_ms);
  sys_move_per_sec_[sec] += to_ticks(outcome.system_displacement_ms);

  // Per-second stability metrics cover only full eval seconds: a fractional
  // measure_start_s must not leak the partial warm-up second into them.
  if (eval && sec >= eval_start_sec()) {
    // Per-node movement per second: flush when the node's second rolls over.
    NodeSecond& cur = node_current_second_[s];
    const auto this_sec = static_cast<std::int64_t>(sec);
    if (cur.second != this_sec) {
      if (cur.second >= 0) flush_node_second(s, cur.movement);
      cur.second = this_sec;
      cur.movement = 0.0;
    }
    cur.movement += outcome.app_displacement_ms;

    if (outcome.app_updated) {
      ++app_updates_;
      if (node_last_update_sec_[s] != this_sec) {
        node_last_update_sec_[s] = this_sec;
        const std::size_t rel = sec - eval_start_sec();
        if (rel < updating_nodes_per_sec_.size()) ++updating_nodes_per_sec_[rel];
      }
    }
  }
  return err;
}

void MetricsCollector::record_dst_error(double t, NodeId dst, double err) {
  NC_CHECK_MSG(!config_.inline_dst_errors,
               "record_dst_error requires inline_dst_errors=false");
  if (!in_eval_window(t)) return;
  const auto d = static_cast<std::size_t>(dst);
  NC_CHECK_MSG(d < dst_median_.size(), "dst out of range");
  dst_median_[d].add(err);
  ++dst_count_[d];
}

void MetricsCollector::flush_node_second(std::size_t node, double movement) {
  std::vector<double>& secs = node_second_movements_[node];
  // Capacity hint at first flush: a node contributes at most one entry per
  // eval-window second. Bounding the hint keeps the up-front commitment
  // modest for very long runs (doubling takes over beyond it).
  if (secs.capacity() == 0)
    secs.reserve(std::min<std::size_t>(eval_window_seconds(), 4096));
  secs.push_back(movement);
}

void MetricsCollector::finalize() {
  for (std::size_t s = 0; s < node_current_second_.size(); ++s) {
    NodeSecond& cur = node_current_second_[s];
    if (cur.second >= 0) {
      flush_node_second(s, cur.movement);
      cur.second = -1;
      cur.movement = 0.0;
    }
  }
}

MetricsNodeState MetricsCollector::extract_node_state(NodeId node) {
  const auto i = static_cast<std::size_t>(node);
  NC_CHECK_MSG(node >= 0 && i < node_errors_.size(), "node out of range");
  NC_CHECK_MSG(!drift_tracked_[i],
               "tracked nodes are pinned and must not migrate");

  MetricsNodeState state;
  state.errors = std::move(node_errors_[i]);
  node_errors_[i].clear();
  state.second_movements = std::move(node_second_movements_[i]);
  node_second_movements_[i].clear();
  state.current_second = node_current_second_[i].second;
  state.current_movement = node_current_second_[i].movement;
  node_current_second_[i] = NodeSecond{};
  state.last_update_sec = node_last_update_sec_[i];
  node_last_update_sec_[i] = -1;
  state.dst_median = dst_median_[i];
  state.dst_count = dst_count_[i];
  dst_median_[i] = stats::P2Quantile(0.5);
  dst_count_[i] = 0;
  if (config_.collect_oracle) {
    state.oracle_median = node_oracle_median_[i];
    state.oracle_count = node_oracle_count_[i];
    node_oracle_median_[i] = stats::P2Quantile(0.5);
    node_oracle_count_[i] = 0;
  }
  return state;
}

void MetricsCollector::install_node_state(NodeId node, MetricsNodeState state) {
  const auto i = static_cast<std::size_t>(node);
  NC_CHECK_MSG(node >= 0 && i < node_errors_.size(), "node out of range");
  NC_CHECK_MSG(node_errors_[i].empty() && node_second_movements_[i].empty() &&
                   node_current_second_[i].second < 0 && dst_count_[i] == 0 &&
                   node_last_update_sec_[i] < 0,
               "installing migrated node state over existing data");
  node_errors_[i] = std::move(state.errors);
  node_second_movements_[i] = std::move(state.second_movements);
  node_current_second_[i] =
      NodeSecond{state.current_second, state.current_movement};
  node_last_update_sec_[i] = state.last_update_sec;
  dst_median_[i] = state.dst_median;
  dst_count_[i] = state.dst_count;
  if (config_.collect_oracle) {
    node_oracle_median_[i] = state.oracle_median;
    node_oracle_count_[i] = state.oracle_count;
  }
}

void MetricsCollector::merge(MetricsCollector& other) {
  const MetricsConfig& oc = other.config_;
  NC_CHECK_MSG(config_.num_nodes == oc.num_nodes &&
                   config_.duration_s == oc.duration_s &&
                   config_.measure_start_s == oc.measure_start_s &&
                   config_.collect_timeseries == oc.collect_timeseries &&
                   config_.timeseries_bucket_s == oc.timeseries_bucket_s &&
                   config_.collect_oracle == oc.collect_oracle &&
                   config_.min_node_samples == oc.min_node_samples &&
                   config_.inline_dst_errors == oc.inline_dst_errors,
               "cannot merge collectors with different configurations");
  finalize();
  other.finalize();

  const std::size_t n = node_errors_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!other.node_errors_[i].empty()) {
      NC_CHECK_MSG(node_errors_[i].empty(), "node error data on both sides");
      node_errors_[i] = std::move(other.node_errors_[i]);
    }
    if (!other.node_second_movements_[i].empty()) {
      NC_CHECK_MSG(node_second_movements_[i].empty(),
                   "node movement data on both sides");
      node_second_movements_[i] = std::move(other.node_second_movements_[i]);
    }
    if (other.dst_count_[i] > 0) {
      NC_CHECK_MSG(dst_count_[i] == 0, "dst error data on both sides");
      dst_median_[i] = other.dst_median_[i];
      dst_count_[i] = other.dst_count_[i];
    }
    if (config_.collect_oracle && other.node_oracle_count_[i] > 0) {
      NC_CHECK_MSG(node_oracle_count_[i] == 0, "oracle data on both sides");
      node_oracle_median_[i] = other.node_oracle_median_[i];
      node_oracle_count_[i] = other.node_oracle_count_[i];
    }
    node_last_update_sec_[i] =
        std::max(node_last_update_sec_[i], other.node_last_update_sec_[i]);
  }

  for (std::size_t sec = 0; sec < app_move_per_sec_.size(); ++sec) {
    app_move_per_sec_[sec] += other.app_move_per_sec_[sec];
    sys_move_per_sec_[sec] += other.sys_move_per_sec_[sec];
  }
  for (std::size_t sec = 0; sec < updating_nodes_per_sec_.size(); ++sec)
    updating_nodes_per_sec_[sec] += other.updating_nodes_per_sec_[sec];

  if (ts_errors_) ts_errors_->merge(*other.ts_errors_);

  for (std::size_t i = 0; i < drift_.size(); ++i) {
    if (!other.drift_tracked_[i]) continue;
    if (!other.drift_[i].empty()) {
      NC_CHECK_MSG(drift_[i].empty(), "drift data on both sides");
      drift_[i] = std::move(other.drift_[i]);
    }
    if (!drift_tracked_[i]) {
      drift_tracked_[i] = 1;
      config_.tracked_nodes.push_back(static_cast<NodeId>(i));
    }
  }

  observations_ += other.observations_;
  app_updates_ += other.app_updates_;
  estimator_stats_.add(other.estimator_stats_);
}

void MetricsCollector::track_coordinate(double t, NodeId node, const Coordinate& coord) {
  const auto i = static_cast<std::size_t>(node);
  NC_CHECK_MSG(node >= 0 && i < drift_.size(), "tracked node out of range");
  drift_tracked_[i] = 1;
  drift_[i].push_back(DriftPoint{t, coord.position()});
}

stats::Ecdf MetricsCollector::per_node_median_error() const {
  stats::Ecdf out;
  for (const auto& errs : node_errors_) {
    if (static_cast<int>(errs.size()) >= config_.min_node_samples)
      out.add(stats::percentile(errs, 50.0));
  }
  return out;
}

stats::Ecdf MetricsCollector::per_node_p95_error() const {
  stats::Ecdf out;
  for (const auto& errs : node_errors_) {
    if (static_cast<int>(errs.size()) >= config_.min_node_samples)
      out.add(stats::percentile(errs, 95.0));
  }
  return out;
}

double MetricsCollector::median_relative_error() const {
  const stats::Ecdf cdf = per_node_median_error();
  NC_CHECK_MSG(!cdf.empty(), "no nodes with enough samples");
  return cdf.median();
}

stats::Ecdf MetricsCollector::per_dst_median_error() const {
  stats::Ecdf out;
  for (std::size_t d = 0; d < dst_median_.size(); ++d) {
    if (static_cast<int>(dst_count_[d]) >= config_.min_node_samples)
      out.add(dst_median_[d].value());
  }
  return out;
}

double MetricsCollector::median_error_to(NodeId dst) const {
  const auto d = static_cast<std::size_t>(dst);
  NC_CHECK_MSG(d < dst_median_.size(), "dst out of range");
  NC_CHECK_MSG(static_cast<int>(dst_count_[d]) >= config_.min_node_samples,
               "too few samples aimed at dst");
  return dst_median_[d].value();
}

std::uint64_t MetricsCollector::dst_observation_count(NodeId dst) const {
  const auto d = static_cast<std::size_t>(dst);
  NC_CHECK_MSG(d < dst_count_.size(), "dst out of range");
  return dst_count_[d];
}

stats::Ecdf MetricsCollector::oracle_per_node_median_error() const {
  NC_CHECK_MSG(config_.collect_oracle, "oracle metrics not enabled");
  stats::Ecdf out;
  for (std::size_t n = 0; n < node_oracle_median_.size(); ++n) {
    if (static_cast<int>(node_oracle_count_[n]) >= config_.min_node_samples)
      out.add(node_oracle_median_[n].value());
  }
  return out;
}

double MetricsCollector::oracle_median_error_of(NodeId node) const {
  NC_CHECK_MSG(config_.collect_oracle, "oracle metrics not enabled");
  const auto n = static_cast<std::size_t>(node);
  NC_CHECK_MSG(n < node_oracle_median_.size(), "node out of range");
  NC_CHECK_MSG(static_cast<int>(node_oracle_count_[n]) >= config_.min_node_samples,
               "too few oracle samples for node");
  return node_oracle_median_[n].value();
}

stats::Ecdf MetricsCollector::instability() const {
  stats::Ecdf out;
  // Full eval seconds only: the same ceil(measure_start_s) boundary that
  // gates the per-node movement accounting, so a fractional warm-up second
  // never contributes eval movement.
  for (std::size_t sec = eval_start_sec(); sec < eval_end_sec(); ++sec)
    out.add(from_ticks(app_move_per_sec_[sec]));
  return out;
}

stats::Ecdf MetricsCollector::system_instability() const {
  stats::Ecdf out;
  for (std::size_t sec = eval_start_sec(); sec < eval_end_sec(); ++sec)
    out.add(from_ticks(sys_move_per_sec_[sec]));
  return out;
}

double MetricsCollector::median_instability_ms_per_s() const {
  const stats::Ecdf cdf = instability();
  NC_CHECK_MSG(!cdf.empty(), "empty instability window");
  return cdf.median();
}

double MetricsCollector::mean_instability_ms_per_s() const {
  const std::size_t start = eval_start_sec();
  const std::size_t end = eval_end_sec();
  NC_CHECK_MSG(end > start, "empty instability window");
  std::int64_t total = 0;
  for (std::size_t sec = start; sec < end; ++sec) total += app_move_per_sec_[sec];
  return from_ticks(total) / static_cast<double>(end - start);
}

stats::Ecdf MetricsCollector::per_node_p95_movement() const {
  stats::Ecdf out;
  const double window = static_cast<double>(eval_window_seconds());
  for (std::size_t n = 0; n < node_second_movements_.size(); ++n) {
    std::vector<double> secs = node_second_movements_[n];
    if (secs.empty()) continue;
    // Seconds without any observation contributed no movement: pad zeros so
    // percentiles are over the full window.
    const auto missing = static_cast<std::size_t>(
        std::max(0.0, window - static_cast<double>(secs.size())));
    secs.insert(secs.end(), missing, 0.0);
    out.add(stats::percentile(std::move(secs), 95.0));
  }
  return out;
}

double MetricsCollector::mean_pct_nodes_updating_per_s() const {
  if (updating_nodes_per_sec_.empty()) return 0.0;
  double sum = 0.0;
  for (std::uint32_t c : updating_nodes_per_sec_) sum += c;
  return 100.0 * sum /
         (static_cast<double>(updating_nodes_per_sec_.size()) *
          static_cast<double>(config_.num_nodes));
}

std::vector<stats::SeriesPoint> MetricsCollector::error_timeseries_median() const {
  NC_CHECK_MSG(ts_errors_.has_value(), "time series not enabled");
  return ts_errors_->medians();
}

std::vector<stats::SeriesPoint> MetricsCollector::error_timeseries_p95() const {
  NC_CHECK_MSG(ts_errors_.has_value(), "time series not enabled");
  return ts_errors_->quantiles(0.95);
}

std::vector<stats::SeriesPoint> MetricsCollector::instability_timeseries() const {
  stats::BucketedSum buckets(config_.timeseries_bucket_s);
  for (std::size_t sec = 0; sec < app_move_per_sec_.size(); ++sec) {
    if (static_cast<double>(sec) >= config_.duration_s) break;
    buckets.add(static_cast<double>(sec), from_ticks(app_move_per_sec_[sec]));
  }
  return buckets.means();  // mean ms/s within each bucket
}

const std::vector<DriftPoint>& MetricsCollector::drift(NodeId node) const {
  const auto i = static_cast<std::size_t>(node);
  NC_CHECK_MSG(node >= 0 && i < drift_.size() && drift_tracked_[i],
               "node was not tracked");
  return drift_[i];
}

}  // namespace nc::sim

#include "sim/replay.hpp"

#include "common/check.hpp"

namespace nc::sim {

namespace {

MetricsConfig make_metrics_config(const ReplayConfig& config, int num_nodes) {
  MetricsConfig m;
  m.num_nodes = num_nodes;
  m.duration_s = config.duration_s;
  m.measure_start_s = config.measure_start_s;
  m.collect_timeseries = config.collect_timeseries;
  m.timeseries_bucket_s = config.timeseries_bucket_s;
  m.collect_oracle = config.collect_oracle;
  m.tracked_nodes = config.tracked_nodes;
  return m;
}

}  // namespace

ReplayDriver::ReplayDriver(const ReplayConfig& config, int num_nodes)
    : config_(config), metrics_(make_metrics_config(config, num_nodes)) {
  NC_CHECK_MSG(config.tracked_nodes.empty() || config.track_interval_s > 0.0,
               "tracking requires a positive track interval");
  clients_.reserve(static_cast<std::size_t>(num_nodes));
  for (NodeId id = 0; id < num_nodes; ++id)
    clients_.push_back(std::make_unique<NCClient>(id, config.client));
  next_track_t_ = config.track_interval_s;
}

void ReplayDriver::run(lat::TraceSource& source, lat::LatencyNetwork* oracle) {
  NC_CHECK_MSG(source.num_nodes() <= num_nodes(), "trace has more nodes than driver");
  while (auto rec = source.next()) {
    if (rec->t_s >= config_.duration_s) break;
    NC_CHECK_MSG(rec->src >= 0 && rec->src < num_nodes(), "bad src id");
    NC_CHECK_MSG(rec->dst >= 0 && rec->dst < num_nodes(), "bad dst id");
    NC_CHECK_MSG(rec->rtt_ms > 0.0f, "non-positive rtt in trace");

    NCClient& src = *clients_[static_cast<std::size_t>(rec->src)];
    NCClient& dst = *clients_[static_cast<std::size_t>(rec->dst)];

    // The protocol exchanges the remote node's *system* coordinate and error
    // estimate; application coordinates are what the app consumes locally.
    const ObservationOutcome outcome =
        src.observe(rec->dst, dst.system_coordinate(), dst.error_estimate(),
                    static_cast<double>(rec->rtt_ms), rec->t_s);

    std::optional<double> truth;
    if (oracle != nullptr && metrics_.config().collect_oracle)
      truth = oracle->ground_truth_rtt(rec->src, rec->dst, rec->t_s);

    metrics_.on_observation(rec->t_s, rec->src, rec->dst,
                            static_cast<double>(rec->rtt_ms),
                            src.application_coordinate(),
                            dst.application_coordinate(), outcome, truth);

    while (!metrics_.config().tracked_nodes.empty() && rec->t_s >= next_track_t_) {
      for (NodeId id : metrics_.config().tracked_nodes)
        metrics_.track_coordinate(next_track_t_, id,
                                  client(id).system_coordinate());
      next_track_t_ += config_.track_interval_s;
    }
  }
  for (NodeId id : metrics_.config().tracked_nodes)
    metrics_.track_coordinate(config_.duration_s, id, client(id).system_coordinate());
  metrics_.finalize();
}

}  // namespace nc::sim

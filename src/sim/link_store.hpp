// ShardLinkStore: a shard's directed-link state, dense or sparse by size.
//
// A shard indexes per-link stochastic state by (src - first_owned, dst) —
// a rows x cols logical matrix of rows = owned nodes, cols = n. The dense
// form (flat array, lazily paged past the eager limit — PagedStore) is
// unbeatable at bench-tier sizes, but page granularity defeats it at
// large n: one src row of 100k slots spans ~12 pages of 8192 slots, and a
// node's ~512 neighbor targets land on nearly all of them, so a 100k-node
// online run would materialize close to the full O(n^2/W) array anyway
// (~hundreds of GB). Above `sparse_slot_limit` logical slots the store
// therefore switches to a per-row CompactSlotIndex (dst -> slab slot) over
// one shared slab, making memory O(links actually touched) with a
// two-cache-probe lookup.
//
// Both layouts hand out value-initialized state on first touch, so the
// modes are observationally identical — tests/sim/link_store_test.cpp pins
// slot-level equivalence and the engine bit-identity suite runs a forced-
// sparse engine against the dense one.
//
// Not thread-safe; every store is owned by exactly one shard. References
// returned by at() in sparse mode are invalidated by the next first-touch
// insertion (the slab is a vector) — use within one event, like any
// container reference.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/compact_index.hpp"
#include "common/paged_store.hpp"

namespace nc {

/// Dense (paged) up to 64M logical slots per shard: the 4k bench tier
/// (16.8M directed slots at W=1) keeps its flat array, n >= 10k at W=1
/// goes sparse. 64M slots of DirLink-sized state is the break-even point
/// where per-row index overhead beats page-granularity amplification.
inline constexpr std::size_t kShardLinkDefaultSparseSlotLimit =
    std::size_t{64} << 20;

template <typename T>
class ShardLinkStore {
 public:
  ShardLinkStore() = default;

  ShardLinkStore(std::size_t rows, std::size_t cols,
                 std::size_t eager_slot_limit = kPagedStoreDefaultEagerSlotLimit,
                 std::size_t sparse_slot_limit = kShardLinkDefaultSparseSlotLimit)
      : rows_(rows),
        cols_(cols),
        sparse_(rows * cols > sparse_slot_limit) {
    NC_CHECK_MSG(cols_ <= std::numeric_limits<std::uint32_t>::max(),
                 "column space exceeds the compact-index key width");
    if (sparse_) {
      row_index_.resize(rows_);
    } else {
      dense_ = PagedStore<T>(rows_ * cols_, eager_slot_limit);
    }
  }

  /// The state at (row, col), created value-initialized on first touch.
  [[nodiscard]] T& at(std::size_t row, std::size_t col) {
    NC_ASSERT(row < rows_ && col < cols_);
    if (!sparse_) return dense_.at(row * cols_ + col);
    CompactSlotIndex& index = row_index_[row];
    if (const auto slot = index.find(static_cast<std::uint32_t>(col));
        slot.has_value())
      return slab_[*slot];
    if (!free_slots_.empty()) {
      // Reuse a slot released by extract_row — migration churn must not
      // leak slab capacity.
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      index.insert(static_cast<std::uint32_t>(col), slot);
      slab_[slot] = T();
      return slab_[slot];
    }
    NC_CHECK_MSG(slab_.size() < std::numeric_limits<std::uint32_t>::max(),
                 "shard link slab exceeds the compact-index value width");
    index.insert(static_cast<std::uint32_t>(col),
                 static_cast<std::uint32_t>(slab_.size()));
    slab_.emplace_back();
    return slab_.back();
  }

  /// Moves every live slot of `row` out (appended to `out` as (col, state),
  /// sorted by col — the canonical order; physical slab/hash layout never
  /// leaks) and resets the row to untouched. `live(state)` filters which
  /// slots are worth carrying (e.g. initialized links); dead slots are
  /// released either way. Used by ownership migration to pack a node's
  /// outgoing-link state.
  template <typename Live>
  void extract_row(std::size_t row, std::vector<std::pair<std::uint32_t, T>>& out,
                   Live&& live) {
    NC_ASSERT(row < rows_);
    const std::size_t start = out.size();
    if (!sparse_) {
      for (std::size_t col = 0; col < cols_; ++col) {
        T* slot = dense_.try_at(row * cols_ + col);
        if (slot == nullptr) continue;
        if (live(*slot))
          out.emplace_back(static_cast<std::uint32_t>(col), std::move(*slot));
        *slot = T();
      }
    } else {
      CompactSlotIndex& index = row_index_[row];
      index.for_each([&](std::uint32_t col, std::uint32_t slot) {
        if (live(slab_[slot]))
          out.emplace_back(col, std::move(slab_[slot]));
        slab_[slot] = T();
        free_slots_.push_back(slot);
      });
      index.clear();
    }
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(start), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  /// Installs a packed row from extract_row into (an untouched) `row`.
  void install_row(std::size_t row,
                   const std::vector<std::pair<std::uint32_t, T>>& cells) {
    for (const auto& [col, state] : cells) at(row, col) = state;
  }

  /// Read-only probe: the slot's address, or nullptr when never touched in
  /// sparse mode / page never materialized in dense mode.
  [[nodiscard]] const T* try_at(std::size_t row, std::size_t col) const noexcept {
    NC_ASSERT(row < rows_ && col < cols_);
    if (!sparse_) return dense_.try_at(row * cols_ + col);
    const auto slot = row_index_[row].find(static_cast<std::uint32_t>(col));
    return slot.has_value() ? &slab_[*slot] : nullptr;
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool sparse() const noexcept { return sparse_; }
  /// Links materialized so far (sparse mode; dense mode has no per-slot
  /// touch record, so this reports 0 there).
  [[nodiscard]] std::size_t touched() const noexcept { return slab_.size(); }

  /// Heap bytes held right now: the dense store's accounting in dense mode;
  /// slab + all per-row index tables in sparse mode.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    if (!sparse_) return dense_.memory_bytes();
    std::size_t bytes = slab_.capacity() * sizeof(T) +
                        free_slots_.capacity() * sizeof(std::uint32_t) +
                        row_index_.capacity() * sizeof(CompactSlotIndex);
    for (const CompactSlotIndex& index : row_index_) bytes += index.memory_bytes();
    return bytes;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  bool sparse_ = false;
  PagedStore<T> dense_;
  std::vector<CompactSlotIndex> row_index_;
  std::vector<T> slab_;
  /// Slab slots released by extract_row, reused before the slab grows.
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace nc

// Epoch-boundary message exchange for the sharded online simulator.
//
// Shards interact only through messages handed over at epoch boundaries.
// During an epoch each shard appends to one outbox per destination shard;
// at the next boundary the RECEIVING shard drains its column into one batch
// ordered by a canonical key that is intrinsic to the message — (time, kind,
// sender, receiver, per-sender sequence number) — so the delivery order
// every entity observes is a pure function of the traffic, never of the
// shard count or thread timing. That canonical order is the heart of the
// engine's determinism argument (see DESIGN.md "Event core").
//
// The batch is built by a k-way MERGE, not a sort: each outbox cell keeps
// one run per message kind, and two of the three kinds (kPing, kDstError)
// are emitted in canonical order by construction — their timestamp is the
// sender's processing time, which the sender's event queue already hands
// out in canonical order. Only kPong runs carry a stochastic timestamp
// (ping send time + sampled RTT), so only those small per-cell runs are
// sorted, by the SENDER, when it seals its outboxes at the end of its
// processing phase. The merge writes into a per-receiver buffer that is
// reused across epochs, so a steady-state epoch allocates nothing.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "core/coordinate.hpp"
#include "core/node_id.hpp"
#include "sim/calendar_queue.hpp"

namespace nc::sim {

enum class ShardMsgKind : std::uint8_t {
  kPing = 0,     // ping i -> j: membership introduction + gossip + echo data
  kPong = 1,     // reply j -> i: remote coordinate state as of reply time
  kDstError = 2,  // metrics routing: observation error keyed by destination
  kObs = 3        // replay: trace record routed to the OBSERVED node's owner,
                  // which answers with a kPong stamping its current state
};

struct ShardMessage {
  ShardMsgKind kind = ShardMsgKind::kPing;
  double t = 0.0;  // event time: ping send / pong arrival / observation time
  NodeId from = kInvalidNode;  // sending entity
  NodeId to = kInvalidNode;    // entity owned by the receiving shard
  std::uint64_t seq = 0;       // per-sender-node message counter (tiebreak)

  float rtt_ms = 0.0f;           // kPing: sampled RTT; kPong: echoed
  NodeId gossip = kInvalidNode;  // one advertised neighbor address
  double gt_rtt_ms = 0.0;        // quiescent ground truth at ping time (oracle)
  double err = 0.0;              // kDstError: app-level relative error
  Coordinate sys_coord;          // kPong: remote system coordinate
  Coordinate app_coord;          // kPong: remote application coordinate
  double coord_err = 0.0;        // kPong: remote error estimate
};

/// Canonical message order. Every field compared is decided by the sending
/// entity alone, so any shard layout orders a delivery batch identically.
/// The key is total on distinct messages: a sender's (from, seq) pair never
/// repeats.
[[nodiscard]] inline bool shard_msg_less(const ShardMessage& a,
                                         const ShardMessage& b) noexcept {
  if (a.t != b.t) return a.t < b.t;
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.from != b.from) return a.from < b.from;
  if (a.to != b.to) return a.to < b.to;
  return a.seq < b.seq;
}

/// The W x W grid of outboxes. Cell (sender, receiver) is written only by
/// `sender` during processing phases and drained only by `receiver` during
/// delivery phases; the two phases are separated by a barrier, so no cell is
/// ever touched from two threads concurrently.
class EpochMailbox {
 public:
  static constexpr int kKinds = 4;

  /// One per-kind run per cell. kPing/kDstError runs are canonically sorted
  /// by construction (asserted on append); kPong and kObs runs become sorted
  /// when the sender seals its outboxes (pong arrival times are stochastic;
  /// the trace reader emits kObs in trace order, whose equal-time records
  /// need not follow the canonical (from, to) tiebreak).
  struct Cell {
    std::vector<ShardMessage> runs[kKinds];
  };

  /// `per_cell_hint` presizes every run for the expected per-epoch traffic
  /// (roughly: nodes-per-shard ping once per epoch, spread over W receiving
  /// shards), so steady-state sends never reallocate.
  explicit EpochMailbox(int shards, std::size_t per_cell_hint = 0)
      : shards_(shards) {
    NC_CHECK_MSG(shards >= 1, "need at least one shard");
    const auto w = static_cast<std::size_t>(shards);
    cells_.resize(w * w);
    if (per_cell_hint > 0) {
      for (Cell& cell : cells_)
        for (auto& run : cell.runs) run.reserve(per_cell_hint);
    }
    merge_runs_.resize(w);
    for (auto& runs : merge_runs_) runs.reserve(w * kKinds);
  }

  /// Appends one message to the (sender, receiver) outbox. Called only by
  /// `sender`'s thread during its processing phase.
  void send(int sender, int receiver, ShardMessage msg) {
    auto& run = cell_at(sender, receiver).runs[static_cast<int>(msg.kind)];
    // Processing-time-stamped kinds must arrive presorted — that is the
    // invariant that lets collect_into merge instead of sort.
    NC_ASSERT(msg.kind == ShardMsgKind::kPong || msg.kind == ShardMsgKind::kObs ||
              run.empty() || shard_msg_less(run.back(), msg));
    run.push_back(std::move(msg));
  }

  /// Sorts `sender`'s kPong and kObs runs (the two kinds whose emission
  /// order is not the canonical order — see Cell). Called by the sender at
  /// the end of each processing phase, so every run is canonically ordered
  /// before any receiver merges it.
  void seal_outboxes(int sender) {
    for (int r = 0; r < shards_; ++r) {
      for (const ShardMsgKind kind : {ShardMsgKind::kPong, ShardMsgKind::kObs}) {
        auto& run = cell_at(sender, r).runs[static_cast<int>(kind)];
        std::sort(run.begin(), run.end(), &shard_msg_less);
      }
    }
  }

  /// Merges every sealed run destined to `receiver` into `out` (cleared
  /// first) in canonical order, and resets the runs. `out` and the per-
  /// receiver cursor scratch are reused across epochs: once warm, no
  /// allocation. Equivalent to the gather-then-sort this replaced because
  /// the canonical key is total and every run is sorted.
  void collect_into(int receiver, std::vector<ShardMessage>& out) {
    auto& runs = merge_runs_[static_cast<std::size_t>(receiver)];
    runs.clear();
    std::size_t total = 0;
    for (int s = 0; s < shards_; ++s) {
      for (auto& run : cell_at(s, receiver).runs) {
        if (run.empty()) continue;
        NC_ASSERT(std::is_sorted(run.begin(), run.end(), &shard_msg_less));
        runs.push_back(Run{run.data(), run.data() + run.size()});
        total += run.size();
      }
    }
    out.clear();
    out.reserve(total);

    // Min-heap of run cursors keyed by head message: O(log 3W) per message.
    const auto run_after = [](const Run& a, const Run& b) noexcept {
      return shard_msg_less(*b.next, *a.next);
    };
    std::make_heap(runs.begin(), runs.end(), run_after);
    while (!runs.empty()) {
      std::pop_heap(runs.begin(), runs.end(), run_after);
      Run& top = runs.back();
      out.push_back(std::move(*top.next));
      ++top.next;
      if (top.next == top.end) {
        runs.pop_back();
      } else {
        std::push_heap(runs.begin(), runs.end(), run_after);
      }
    }

    for (int s = 0; s < shards_; ++s)
      for (auto& run : cell_at(s, receiver).runs) run.clear();
  }

  /// Outbox introspection (tests assert capacity reuse across epochs).
  [[nodiscard]] const Cell& cell(int sender, int receiver) const {
    return cells_[static_cast<std::size_t>(sender) *
                      static_cast<std::size_t>(shards_) +
                  static_cast<std::size_t>(receiver)];
  }

  [[nodiscard]] int shards() const noexcept { return shards_; }

  /// Heap bytes held by the outbox grid and merge scratch (capacity, not
  /// size: steady-state runs keep their high-water capacity by design).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    std::size_t bytes = cells_.capacity() * sizeof(Cell);
    for (const Cell& cell : cells_)
      for (const auto& run : cell.runs)
        bytes += run.capacity() * sizeof(ShardMessage);
    bytes += merge_runs_.capacity() * sizeof(std::vector<Run>);
    for (const auto& runs : merge_runs_) bytes += runs.capacity() * sizeof(Run);
    return bytes;
  }

 private:
  struct Run {
    ShardMessage* next;
    ShardMessage* end;
  };

  [[nodiscard]] Cell& cell_at(int sender, int receiver) {
    return cells_[static_cast<std::size_t>(sender) *
                      static_cast<std::size_t>(shards_) +
                  static_cast<std::size_t>(receiver)];
  }

  int shards_;
  std::vector<Cell> cells_;
  /// Merge cursors, one scratch per receiver (touched only by the receiving
  /// shard's thread during delivery phases).
  std::vector<std::vector<Run>> merge_runs_;
};

/// A W x W grid of typed hand-off cells for bulk state transfer at epoch
/// barriers — the migration counterpart of EpochMailbox. Cell (sender,
/// receiver) is written only by `sender` during its processing phase and
/// drained only by `receiver` during its next delivery phase; the phases are
/// barrier-separated, so no cell is ever touched from two threads at once.
/// Unlike EpochMailbox there is no canonical merge here: payloads are whole
/// per-node state bundles, and the RECEIVER canonicalizes (sorts by node id)
/// what it drains before applying.
template <typename T>
class MigrationChannel {
 public:
  explicit MigrationChannel(int shards = 1) : shards_(shards) {
    NC_CHECK_MSG(shards >= 1, "need at least one shard");
    cells_.resize(static_cast<std::size_t>(shards) *
                  static_cast<std::size_t>(shards));
  }

  /// The (sender, receiver) cell; the sender appends packed payloads here.
  [[nodiscard]] std::vector<T>& outbox(int sender, int receiver) {
    return cells_[static_cast<std::size_t>(sender) *
                      static_cast<std::size_t>(shards_) +
                  static_cast<std::size_t>(receiver)];
  }

  /// Moves everything destined to `receiver` into `out` (cleared first),
  /// sender order; cells keep their capacity for the next barrier.
  void collect_into(int receiver, std::vector<T>& out) {
    out.clear();
    for (int s = 0; s < shards_; ++s) {
      std::vector<T>& cell = outbox(s, receiver);
      for (T& item : cell) out.push_back(std::move(item));
      cell.clear();
    }
  }

  [[nodiscard]] int shards() const noexcept { return shards_; }

 private:
  int shards_;
  std::vector<std::vector<T>> cells_;
};

/// One shard's event loop entries: local ping timers, delivered messages and
/// drift-tracking ticks, ordered by the canonical key (processing time,
/// kind, owner, sender, sequence). Delivered messages keep their original
/// event time in `t_orig`; the processing time is clamped up to the epoch
/// that delivers them so per-entity time never runs backwards.
enum class ShardEventKind : std::uint8_t {
  kTrack = 0,      // record tracked nodes' coordinates (exact multiples of
                   // the track interval, before same-time observations)
  kPingTimer = 1,  // local: node samples its next round-robin neighbor
  kPing = 2,       // delivered: answer a ping (membership, gossip, pong)
  kPong = 3,       // delivered: observe the remote's echoed state
  kObs = 4         // delivered (replay): stamp this node's current state
                   // into a pong answering a trace record
};

struct ShardEvent {
  double t = 0.0;  // processing time (canonical queue key)
  ShardEventKind kind = ShardEventKind::kPingTimer;
  NodeId a = kInvalidNode;  // owning node (timer owner / message receiver)
  NodeId b = kInvalidNode;  // message sender
  std::uint64_t seq = 0;

  double t_orig = 0.0;  // message event time before clamping
  float rtt_ms = 0.0f;
  NodeId gossip = kInvalidNode;
  double gt_rtt_ms = 0.0;
  Coordinate sys_coord;
  Coordinate app_coord;
  double coord_err = 0.0;
};

/// The per-shard event queue: a calendar queue over the same canonical key
/// the old binary heap used, so the pop order (and with it every metric) is
/// unchanged. Epoch-clamped deliveries all land on one day bucket already in
/// canonical order, so the common insert is a single back-compare append.
class ShardEventQueue {
 public:
  void push(ShardEvent ev) { calendar_.push(std::move(ev)); }

  /// Bulk insert of one epoch's delivered events: sorts `batch` by the
  /// canonical key (clamping to the epoch start permutes delivery order, so
  /// the merge order does not survive translation into processing keys) and
  /// merges it into the calendar bucket by bucket — one linear pass instead
  /// of one sorted insertion per event. `batch` is caller-owned scratch,
  /// reused across epochs; its contents are consumed.
  void push_batch(std::vector<ShardEvent>& batch) {
    std::sort(batch.begin(), batch.end(), &Ops::less);
    calendar_.push_sorted_run(batch.begin(), batch.end());
    batch.clear();
  }

  [[nodiscard]] bool has_event_before(double t_end) {
    const ShardEvent* head = calendar_.peek();
    return head != nullptr && head->t < t_end;
  }

  [[nodiscard]] ShardEvent pop() { return calendar_.pop(); }

  /// Removes every pending event owned by `node` (ev.a == node) and appends
  /// them to `out` in canonical Ops::less order — the packing step of
  /// ownership migration. The new owner replays them through push_batch, so
  /// they land in its calendar exactly as if delivered there originally.
  void extract_node_events(NodeId node, std::vector<ShardEvent>& out) {
    const std::size_t start = out.size();
    calendar_.extract_if([node](const ShardEvent& ev) { return ev.a == node; },
                         out);
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(start), out.end(),
              &Ops::less);
  }

  [[nodiscard]] bool empty() const noexcept { return calendar_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return calendar_.size(); }

 private:
  struct Ops {
    [[nodiscard]] static double time(const ShardEvent& e) noexcept { return e.t; }
    [[nodiscard]] static bool less(const ShardEvent& x,
                                   const ShardEvent& y) noexcept {
      if (x.t != y.t) return x.t < y.t;
      if (x.kind != y.kind) return x.kind < y.kind;
      if (x.a != y.a) return x.a < y.a;
      if (x.b != y.b) return x.b < y.b;
      return x.seq < y.seq;
    }
  };

  CalendarQueue<ShardEvent, Ops> calendar_;
};

}  // namespace nc::sim

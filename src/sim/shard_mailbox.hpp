// Epoch-boundary message exchange for the sharded online simulator.
//
// Shards interact only through messages handed over at epoch boundaries.
// During an epoch each shard appends to one outbox per destination shard
// (no other thread touches that cell); at the next boundary the RECEIVING
// shard drains its column and sorts the batch by a canonical key that is
// intrinsic to the message — (time, kind, sender, receiver, per-sender
// sequence number) — so the delivery order every entity observes is a pure
// function of the traffic, never of the shard count or thread timing. That
// canonical order is the heart of the engine's determinism argument (see
// DESIGN.md "Epoch-sharded online simulation").
#pragma once

#include <algorithm>
#include <cstdint>
#include <queue>
#include <vector>

#include "common/check.hpp"
#include "core/coordinate.hpp"
#include "core/node_id.hpp"

namespace nc::sim {

enum class ShardMsgKind : std::uint8_t {
  kPing = 0,     // ping i -> j: membership introduction + gossip + echo data
  kPong = 1,     // reply j -> i: remote coordinate state as of reply time
  kDstError = 2  // metrics routing: observation error keyed by destination
};

struct ShardMessage {
  ShardMsgKind kind = ShardMsgKind::kPing;
  double t = 0.0;  // event time: ping send / pong arrival / observation time
  NodeId from = kInvalidNode;  // sending entity
  NodeId to = kInvalidNode;    // entity owned by the receiving shard
  std::uint64_t seq = 0;       // per-sender-node message counter (tiebreak)

  float rtt_ms = 0.0f;           // kPing: sampled RTT; kPong: echoed
  NodeId gossip = kInvalidNode;  // one advertised neighbor address
  double gt_rtt_ms = 0.0;        // quiescent ground truth at ping time (oracle)
  double err = 0.0;              // kDstError: app-level relative error
  Coordinate sys_coord;          // kPong: remote system coordinate
  Coordinate app_coord;          // kPong: remote application coordinate
  double coord_err = 0.0;        // kPong: remote error estimate
};

/// Canonical message order. Every field compared is decided by the sending
/// entity alone, so any shard layout sorts a delivery batch identically.
[[nodiscard]] inline bool shard_msg_less(const ShardMessage& a,
                                         const ShardMessage& b) noexcept {
  if (a.t != b.t) return a.t < b.t;
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.from != b.from) return a.from < b.from;
  if (a.to != b.to) return a.to < b.to;
  return a.seq < b.seq;
}

/// The W x W grid of outboxes. Cell (sender, receiver) is written only by
/// `sender` during processing phases and drained only by `receiver` during
/// delivery phases; the two phases are separated by a barrier, so no cell is
/// ever touched from two threads concurrently.
class EpochMailbox {
 public:
  explicit EpochMailbox(int shards) : shards_(shards) {
    NC_CHECK_MSG(shards >= 1, "need at least one shard");
    cells_.resize(static_cast<std::size_t>(shards) * static_cast<std::size_t>(shards));
  }

  [[nodiscard]] std::vector<ShardMessage>& outbox(int sender, int receiver) {
    return cells_[static_cast<std::size_t>(sender) * static_cast<std::size_t>(shards_) +
                  static_cast<std::size_t>(receiver)];
  }

  /// Moves every message destined to `receiver` into one canonically sorted
  /// batch. Sender order feeding the sort is irrelevant — the comparator is
  /// total on distinct messages.
  [[nodiscard]] std::vector<ShardMessage> collect(int receiver) {
    std::vector<ShardMessage> batch;
    for (int s = 0; s < shards_; ++s) {
      auto& cell = outbox(s, receiver);
      batch.insert(batch.end(), std::make_move_iterator(cell.begin()),
                   std::make_move_iterator(cell.end()));
      cell.clear();
    }
    std::sort(batch.begin(), batch.end(),
              [](const ShardMessage& a, const ShardMessage& b) {
                return shard_msg_less(a, b);
              });
    return batch;
  }

 private:
  int shards_;
  std::vector<std::vector<ShardMessage>> cells_;
};

/// One shard's event loop entries: local ping timers, delivered messages and
/// drift-tracking ticks, ordered by the canonical key (processing time,
/// kind, owner, sender, sequence). Delivered messages keep their original
/// event time in `t_orig`; the processing time is clamped up to the epoch
/// that delivers them so per-entity time never runs backwards.
enum class ShardEventKind : std::uint8_t {
  kTrack = 0,      // record tracked nodes' coordinates (exact multiples of
                   // the track interval, before same-time observations)
  kPingTimer = 1,  // local: node samples its next round-robin neighbor
  kPing = 2,       // delivered: answer a ping (membership, gossip, pong)
  kPong = 3        // delivered: observe the remote's echoed state
};

struct ShardEvent {
  double t = 0.0;  // processing time (canonical heap key)
  ShardEventKind kind = ShardEventKind::kPingTimer;
  NodeId a = kInvalidNode;  // owning node (timer owner / message receiver)
  NodeId b = kInvalidNode;  // message sender
  std::uint64_t seq = 0;

  double t_orig = 0.0;  // message event time before clamping
  float rtt_ms = 0.0f;
  NodeId gossip = kInvalidNode;
  double gt_rtt_ms = 0.0;
  Coordinate sys_coord;
  Coordinate app_coord;
  double coord_err = 0.0;
};

class ShardEventQueue {
 public:
  void push(ShardEvent ev) { heap_.push(std::move(ev)); }

  [[nodiscard]] bool has_event_before(double t_end) const {
    return !heap_.empty() && heap_.top().t < t_end;
  }

  [[nodiscard]] ShardEvent pop() {
    ShardEvent ev = heap_.top();
    heap_.pop();
    return ev;
  }

 private:
  struct Later {
    bool operator()(const ShardEvent& x, const ShardEvent& y) const noexcept {
      if (x.t != y.t) return x.t > y.t;
      if (x.kind != y.kind) return x.kind > y.kind;
      if (x.a != y.a) return x.a > y.a;
      if (x.b != y.b) return x.b > y.b;
      return x.seq > y.seq;
    }
  };
  std::priority_queue<ShardEvent, std::vector<ShardEvent>, Later> heap_;
};

}  // namespace nc::sim

// A controlled route-change step in the sharded engine's vocabulary
// (mirrors eval's RouteChangeEvent; the sim layer cannot depend on eval).
// Lives in its own header so eval/scenario.hpp can name it without pulling
// the whole sharded-simulator header stack into every bench translation
// unit. Applied to both directions of the link and freezes its random
// route changes, like LatencyNetwork's scheduled steps.
#pragma once

#include "core/node_id.hpp"

namespace nc::sim {

struct ShardedRouteChange {
  NodeId i = kInvalidNode;
  NodeId j = kInvalidNode;
  double factor = 1.0;
  double at_t = 0.0;
};

}  // namespace nc::sim

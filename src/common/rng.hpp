// Deterministic, portable random number generation.
//
// The standard <random> distributions are implementation-defined, which would
// make traces differ across standard libraries. Experiments must be exactly
// reproducible from a seed, so we ship our own xoshiro256++ engine plus the
// handful of distributions the latency models need (uniform, normal,
// lognormal, exponential, Pareto). Sub-streams are derived with SplitMix64
// hashing so that e.g. every link of a topology gets an independent,
// stable stream regardless of the order links are first touched.
#pragma once

#include <cstdint>

#include "common/vec.hpp"

namespace nc {

/// SplitMix64 step; also used as a 64-bit hash/mixer for seed derivation.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines two 64-bit values into a well-mixed 64-bit hash.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a,
                                                   std::uint64_t b) noexcept {
  return splitmix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// Registry of stream-domain tags for Rng::derived(seed, domain, key).
///
/// Every independently-evolving entity in a simulation (a link, a node's
/// availability process, a node's ping timer, ...) owns a stream derived
/// from (master seed, domain tag, entity key). Collecting the tags in one
/// place guarantees two different subsystems never collide on the same
/// derivation and — because streams depend only on (seed, domain, key),
/// never on global draw order — lets a sharded simulator evolve entities on
/// different threads with bit-identical results. Tags are the ASCII names
/// they spell; existing values must never change (they define the
/// reproducible trace a seed maps to).
namespace rngstream {
inline constexpr std::uint64_t kLink = 0x6c696e6bULL;          // "link"
inline constexpr std::uint64_t kNode = 0x6e6f6465ULL;          // "node"
inline constexpr std::uint64_t kTopology = 0x746f706fULL;      // "topo"
inline constexpr std::uint64_t kOnline = 0x6f6e6c696eULL;      // "onlin"
inline constexpr std::uint64_t kNeighbor = 0x6e65696768626f72ULL;  // "neighbor"
inline constexpr std::uint64_t kPingTimer = 0x74696d6572ULL;   // "timer"
inline constexpr std::uint64_t kBootstrap = 0x626f6f74ULL;     // "boot"
inline constexpr std::uint64_t kDirectedLink = 0x646c696e6bULL;  // "dlink"
}  // namespace rngstream

/// xoshiro256++ pseudo-random engine with distribution helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t x = seed;
    for (auto& s : s_) {
      x = splitmix64(x);
      s = x;
    }
    has_cached_normal_ = false;
  }

  /// An independent generator derived from this seed and a stream id.
  /// Deterministic: the same (seed, stream) always yields the same stream.
  [[nodiscard]] static Rng derived(std::uint64_t seed, std::uint64_t stream) noexcept {
    return Rng(hash_combine(seed, stream));
  }
  [[nodiscard]] static Rng derived(std::uint64_t seed, std::uint64_t a,
                                   std::uint64_t b) noexcept {
    return Rng(hash_combine(hash_combine(seed, a), b));
  }

  /// Raw 64 uniformly random bits.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n); n must be positive.
  std::uint64_t uniform_int(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection method: unbiased.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box-Muller (portable, unlike std::normal_distribution).
  double normal() noexcept;
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Lognormal with the given log-space parameters.
  double lognormal(double mu, double sigma) noexcept;

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// Pareto (type I) with scale xm > 0 and shape alpha > 0.
  /// Heavy-tailed: infinite variance for alpha <= 2; used to model latency spikes.
  double pareto(double xm, double alpha) noexcept;

  /// Uniformly random direction on the unit sphere of dimension `dim`.
  [[nodiscard]] Vec unit_vector(int dim) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace nc

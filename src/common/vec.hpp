// Small fixed-capacity Euclidean vector used for network coordinates.
//
// Coordinates are low-dimensional (the paper uses 3-D; Vivaldi deployments
// use 2-5 dimensions), so Vec stores its components inline in a fixed
// std::array with a runtime dimension. This keeps coordinate math
// allocation-free on the simulator hot path.
#pragma once

#include <array>
#include <cmath>
#include <initializer_list>
#include <iosfwd>

#include "common/check.hpp"

namespace nc {

/// Maximum supported coordinate dimension (inline storage bound).
inline constexpr int kMaxDim = 8;

/// A dense Euclidean vector of runtime dimension `dim() <= kMaxDim`.
///
/// Value type: cheap to copy (Core Guidelines F.16), all operations are
/// noexcept apart from dimension checks. Mixed-dimension arithmetic is a
/// caller bug and trips NC_CHECK.
class Vec {
 public:
  /// Zero-dimensional vector; useful only as a placeholder before assignment.
  constexpr Vec() noexcept : dim_(0), v_{} {}

  /// Zero vector of dimension `dim`.
  explicit Vec(int dim) : dim_(dim), v_{} {
    NC_CHECK_MSG(dim >= 0 && dim <= kMaxDim, "vector dimension out of range");
  }

  /// Vector with explicit components, e.g. Vec{1.0, 2.0, 3.0}.
  Vec(std::initializer_list<double> xs) : dim_(static_cast<int>(xs.size())), v_{} {
    NC_CHECK_MSG(dim_ <= kMaxDim, "too many components");
    int i = 0;
    for (double x : xs) v_[static_cast<std::size_t>(i++)] = x;
  }

  [[nodiscard]] static Vec zero(int dim) { return Vec(dim); }

  [[nodiscard]] constexpr int dim() const noexcept { return dim_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return dim_ == 0; }

  [[nodiscard]] double operator[](int i) const noexcept {
    NC_ASSERT(i >= 0 && i < dim_);
    return v_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] double& operator[](int i) noexcept {
    NC_ASSERT(i >= 0 && i < dim_);
    return v_[static_cast<std::size_t>(i)];
  }

  Vec& operator+=(const Vec& o) {
    check_same_dim(o);
    for (int i = 0; i < dim_; ++i) v_[static_cast<std::size_t>(i)] += o[i];
    return *this;
  }
  Vec& operator-=(const Vec& o) {
    check_same_dim(o);
    for (int i = 0; i < dim_; ++i) v_[static_cast<std::size_t>(i)] -= o[i];
    return *this;
  }
  Vec& operator*=(double s) noexcept {
    for (int i = 0; i < dim_; ++i) v_[static_cast<std::size_t>(i)] *= s;
    return *this;
  }
  Vec& operator/=(double s) {
    NC_CHECK_MSG(s != 0.0, "division by zero");
    return *this *= (1.0 / s);
  }

  [[nodiscard]] friend Vec operator+(Vec a, const Vec& b) { return a += b; }
  [[nodiscard]] friend Vec operator-(Vec a, const Vec& b) { return a -= b; }
  [[nodiscard]] friend Vec operator*(Vec a, double s) noexcept { return a *= s; }
  [[nodiscard]] friend Vec operator*(double s, Vec a) noexcept { return a *= s; }
  [[nodiscard]] friend Vec operator/(Vec a, double s) { return a /= s; }
  [[nodiscard]] friend Vec operator-(Vec a) noexcept { return a *= -1.0; }

  [[nodiscard]] friend bool operator==(const Vec& a, const Vec& b) noexcept {
    if (a.dim_ != b.dim_) return false;
    for (int i = 0; i < a.dim_; ++i)
      if (a[i] != b[i]) return false;
    return true;
  }

  [[nodiscard]] double dot(const Vec& o) const {
    check_same_dim(o);
    double s = 0.0;
    for (int i = 0; i < dim_; ++i) s += (*this)[i] * o[i];
    return s;
  }

  [[nodiscard]] double norm_squared() const noexcept {
    double s = 0.0;
    for (int i = 0; i < dim_; ++i) s += (*this)[i] * (*this)[i];
    return s;
  }

  [[nodiscard]] double norm() const noexcept { return std::sqrt(norm_squared()); }

  /// Euclidean distance to `o`.
  [[nodiscard]] double distance_to(const Vec& o) const {
    check_same_dim(o);
    double s = 0.0;
    for (int i = 0; i < dim_; ++i) {
      const double d = (*this)[i] - o[i];
      s += d * d;
    }
    return std::sqrt(s);
  }

  /// Unit vector in this direction; the zero vector maps to itself so that
  /// callers can treat "no preferred direction" explicitly.
  [[nodiscard]] Vec unit() const noexcept {
    const double n = norm();
    if (n == 0.0) return *this;
    Vec u = *this;
    u *= 1.0 / n;
    return u;
  }

  [[nodiscard]] bool all_finite() const noexcept {
    for (int i = 0; i < dim_; ++i)
      if (!std::isfinite((*this)[i])) return false;
    return true;
  }

 private:
  void check_same_dim(const Vec& o) const {
    NC_CHECK_MSG(dim_ == o.dim_, "dimension mismatch");
  }

  int dim_;
  std::array<double, kMaxDim> v_;
};

std::ostream& operator<<(std::ostream& os, const Vec& v);

}  // namespace nc

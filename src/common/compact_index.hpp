// Compact open-addressed u32 -> u32 slot index.
//
// The dense remote-id -> slot arrays that replaced hash maps on the hot
// paths (PR 4/5) grow to the LARGEST key ever seen: NCClient's slot_of_
// settled at ~n entries per client, so aggregate index memory across n
// clients was O(n^2) even though live link state is bounded by
// max_tracked_links. CompactSlotIndex is the large-n replacement: memory is
// O(live entries), not O(key space), while a lookup stays a couple of cache
// probes on a flat array.
//
// Layout: one flat power-of-two array of (key, value) pairs packed into a
// u64 each, linear probing from a multiplicative hash of the key. Deletion
// is backward-shift (Knuth 6.4 algorithm R): the probe chain after the hole
// is compacted in place, so the table carries no tombstones and churn-heavy
// workloads (eviction unhooking one entry per new contact, forever) never
// degrade probe lengths. Growth doubles the array when occupancy crosses
// 7/10 — bounded callers (NCClient with max_tracked_links = k) therefore
// top out at the first power of two past 10k/7, i.e. O(k) bytes.
//
// Determinism: the table is a pure map — iteration order is never exposed,
// so physical layout can never leak into simulation results.
//
// Not thread-safe; every index is owned by one client or one shard,
// matching the engines' owner-only-writes discipline.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/check.hpp"

namespace nc {

class CompactSlotIndex {
 public:
  CompactSlotIndex() = default;

  /// Current value for `key`, if present.
  [[nodiscard]] std::optional<std::uint32_t> find(std::uint32_t key) const noexcept {
    if (size_ == 0) return std::nullopt;
    const std::size_t mask = entries_.size() - 1;
    for (std::size_t i = bucket_of(key, mask);; i = (i + 1) & mask) {
      const std::uint64_t e = entries_[i];
      if (e == kEmpty) return std::nullopt;
      if (key_of(e) == key) return value_of(e);
    }
  }

  /// Inserts `key -> value`, or overwrites the value of an existing key.
  void insert(std::uint32_t key, std::uint32_t value) {
    NC_ASSERT(key != kEmptyKey);
    if ((size_ + 1) * 10 > entries_.size() * 7) grow();
    const std::size_t mask = entries_.size() - 1;
    for (std::size_t i = bucket_of(key, mask);; i = (i + 1) & mask) {
      const std::uint64_t e = entries_[i];
      if (e == kEmpty) {
        entries_[i] = pack(key, value);
        ++size_;
        return;
      }
      if (key_of(e) == key) {
        entries_[i] = pack(key, value);
        return;
      }
    }
  }

  /// Removes `key`; returns whether it was present. Backward-shift keeps the
  /// probe chains tombstone-free, so erase-heavy churn never slows lookups.
  bool erase(std::uint32_t key) noexcept {
    if (size_ == 0) return false;
    const std::size_t mask = entries_.size() - 1;
    std::size_t i = bucket_of(key, mask);
    for (;; i = (i + 1) & mask) {
      const std::uint64_t e = entries_[i];
      if (e == kEmpty) return false;
      if (key_of(e) == key) break;
    }
    // Compact the chain after the hole: an entry moves into the hole iff its
    // home bucket lies at or before the hole along the probe path.
    std::size_t hole = i;
    for (std::size_t j = (hole + 1) & mask;; j = (j + 1) & mask) {
      const std::uint64_t e = entries_[j];
      if (e == kEmpty) break;
      const std::size_t home = bucket_of(key_of(e), mask);
      if (((j - home) & mask) >= ((j - hole) & mask)) {
        entries_[hole] = e;
        hole = j;
      }
    }
    entries_[hole] = kEmpty;
    --size_;
    return true;
  }

  /// Visits every live (key, value) pair in PHYSICAL table order — which is
  /// hash-layout order, never meaningful. Callers that feed simulation state
  /// must canonicalize (sort) what they collect, preserving the class
  /// contract that layout can never leak into results.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const std::uint64_t e : entries_) {
      if (e == kEmpty) continue;
      fn(key_of(e), value_of(e));
    }
  }

  /// Drops every entry, keeping the bucket array for reuse.
  void clear() noexcept {
    std::fill(entries_.begin(), entries_.end(), kEmpty);
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Physical buckets (power of two; 0 until the first insert).
  [[nodiscard]] std::size_t capacity() const noexcept { return entries_.size(); }

  /// Heap bytes held by the bucket array.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return entries_.capacity() * sizeof(std::uint64_t);
  }

 private:
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};
  /// The all-ones key is reserved as the empty marker's key half; node ids
  /// and dense indices never reach it.
  static constexpr std::uint32_t kEmptyKey = ~std::uint32_t{0};
  static constexpr std::size_t kInitialBuckets = 16;

  [[nodiscard]] static std::uint64_t pack(std::uint32_t key,
                                          std::uint32_t value) noexcept {
    return (static_cast<std::uint64_t>(key) << 32) | value;
  }
  [[nodiscard]] static std::uint32_t key_of(std::uint64_t e) noexcept {
    return static_cast<std::uint32_t>(e >> 32);
  }
  [[nodiscard]] static std::uint32_t value_of(std::uint64_t e) noexcept {
    return static_cast<std::uint32_t>(e);
  }
  /// Fibonacci-multiplicative hash: spreads the dense sequential ids every
  /// driver uses across the table without clustering.
  [[nodiscard]] static std::size_t bucket_of(std::uint32_t key,
                                             std::size_t mask) noexcept {
    return static_cast<std::size_t>(key * std::uint32_t{0x9E3779B9}) & mask;
  }

  void grow() {
    const std::size_t new_cap =
        entries_.empty() ? kInitialBuckets : entries_.size() * 2;
    std::vector<std::uint64_t> old = std::move(entries_);
    entries_.assign(new_cap, kEmpty);
    const std::size_t mask = new_cap - 1;
    for (const std::uint64_t e : old) {
      if (e == kEmpty) continue;
      for (std::size_t i = bucket_of(key_of(e), mask);; i = (i + 1) & mask) {
        if (entries_[i] == kEmpty) {
          entries_[i] = e;
          break;
        }
      }
    }
  }

  std::vector<std::uint64_t> entries_;
  std::size_t size_ = 0;
};

}  // namespace nc

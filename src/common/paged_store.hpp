// Lazily-paged dense storage for O(n^2) link-state arrays.
//
// The simulators index per-link stochastic state by dense arithmetic
// (triangular index for LatencyNetwork's undirected links,
// (src - first_owned) * n + dst for a shard's directed links). Dense arrays
// killed the hash maps on the per-event hot path, but they are eager O(n^2)
// allocations: ~1 GB at n = 4k and ~6 GB at 10k for the serial network,
// O(n^2/W) per shard in the sharded engine. Large deployments touch only a
// sparse subset of that index space — a node's NeighborSet caps its contact
// set at `neighbor_capacity` (default 512), and a bounded-duration replay
// reaches at most duration/interval round-robin partners per node — so most
// slots are never written.
//
// PagedStore keeps the exact index API (`at(i)` returns the same logical
// slot in either mode) and picks a layout by size:
//
//  * eager  — one flat vector, zero indirection: slot counts at or below
//    `eager_slot_limit` (the bench tier; the hot path is a single index);
//  * paged  — fixed-size blocks of kPageSlots slots allocated on first
//    touch, so a 10k-node run costs memory proportional to the links it
//    actually samples, not to n^2.
//
// Slots are value-initialized in both modes (a fresh page reads exactly like
// a fresh vector element), so the two modes are observationally identical —
// tests/common/paged_store_test.cpp pins the equivalence, and the engines'
// bit-identity suites run both modes against each other.
//
// Not thread-safe; every store is owned by exactly one shard or one serial
// network, matching the engines' owner-only-writes discipline.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/check.hpp"

namespace nc {

/// Eager up to 32M slots: the 4k-node bench tier (8.4M undirected links,
/// 16.8M directed slots per shard at W=1) keeps its flat arrays.
inline constexpr std::size_t kPagedStoreDefaultEagerSlotLimit =
    std::size_t{32} << 20;

template <typename T>
class PagedStore {
 public:
  /// 8192 slots per page: ~0.8 MB of LinkState per page — small enough that
  /// sparse touch patterns stay sparse, large enough that the page table is
  /// tiny (a 10k-node shard array needs ~12k page pointers).
  static constexpr std::size_t kPageSlots = std::size_t{1} << 13;
  static constexpr std::size_t kDefaultEagerSlotLimit =
      kPagedStoreDefaultEagerSlotLimit;

  explicit PagedStore(std::size_t slots = 0,
                      std::size_t eager_slot_limit = kDefaultEagerSlotLimit)
      : slots_(slots), paged_(slots > eager_slot_limit) {
    if (paged_) {
      pages_.resize((slots + kPageSlots - 1) / kPageSlots);
    } else {
      eager_.resize(slots);
    }
  }

  /// The logical slot `i`; allocates its page on first touch in paged mode.
  [[nodiscard]] T& at(std::size_t i) {
    NC_ASSERT(i < slots_);
    if (!paged_) return eager_[i];
    auto& page = pages_[i / kPageSlots];
    if (!page) page = std::make_unique<T[]>(kPageSlots);  // value-initialized
    return page[i % kPageSlots];
  }

  /// Read-only probe: the slot's address, or nullptr when its page was never
  /// touched. Lets query paths observe "value-initialized" without forcing
  /// page allocation for slots that were never written.
  [[nodiscard]] const T* try_at(std::size_t i) const noexcept {
    NC_ASSERT(i < slots_);
    if (!paged_) return &eager_[i];
    const auto& page = pages_[i / kPageSlots];
    if (!page) return nullptr;
    return &page[i % kPageSlots];
  }

  /// Mutable probe with the same never-allocates contract: lets bulk editors
  /// (e.g. migration packing resetting a row) touch only slots whose pages
  /// already exist.
  [[nodiscard]] T* try_at(std::size_t i) noexcept {
    return const_cast<T*>(static_cast<const PagedStore*>(this)->try_at(i));
  }

  [[nodiscard]] std::size_t size() const noexcept { return slots_; }
  [[nodiscard]] bool paged() const noexcept { return paged_; }

  /// Heap bytes held right now: the flat vector in eager mode, the page
  /// table plus materialized pages in paged mode.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    std::size_t bytes = eager_.capacity() * sizeof(T) +
                        pages_.capacity() * sizeof(std::unique_ptr<T[]>);
    if (paged_) bytes += allocated_pages() * kPageSlots * sizeof(T);
    return bytes;
  }

  /// Pages actually materialized (paged mode; eager mode reports 0 or 1
  /// whole-range "page" for introspection symmetry).
  [[nodiscard]] std::size_t allocated_pages() const noexcept {
    if (!paged_) return eager_.empty() ? 0 : 1;
    std::size_t n = 0;
    for (const auto& p : pages_)
      if (p) ++n;
    return n;
  }

  /// Total pages the index space spans (paged mode).
  [[nodiscard]] std::size_t page_count() const noexcept {
    return paged_ ? pages_.size() : allocated_pages();
  }

 private:
  std::size_t slots_;
  bool paged_;
  std::vector<T> eager_;
  std::vector<std::unique_ptr<T[]>> pages_;
};

}  // namespace nc

#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace nc {

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller on (0,1] uniforms so log() never sees zero.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(mu + sigma * normal());
}

double Rng::exponential(double rate) noexcept {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::pareto(double xm, double alpha) noexcept {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

Vec Rng::unit_vector(int dim) noexcept {
  // Normalized vector of i.i.d. normals is uniform on the sphere.
  Vec v(dim);
  double n2 = 0.0;
  do {
    for (int i = 0; i < dim; ++i) v[i] = normal();
    n2 = v.norm_squared();
  } while (n2 == 0.0);
  v *= 1.0 / std::sqrt(n2);
  return v;
}

}  // namespace nc

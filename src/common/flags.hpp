// Minimal command-line flag parsing for benches and examples.
//
// Supports --name=value, --name value, and bare boolean switches (--full).
// Unrecognized positional arguments are an error: bench binaries take flags
// only, so typos fail loudly instead of silently running the default workload.
// Binaries that declare their flag vocabulary up front should use
// parse_or_exit(), which turns bad positional arguments and unknown --flags
// into a usage message on stderr plus exit(2) instead of an uncaught throw.
// Value TYPE errors (--nodes=abc) surface later, at the get_int/get_double
// call, and still throw nc::CheckError.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nc {

class Flags {
 public:
  /// Parses argv; throws nc::CheckError on malformed input.
  Flags(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& default_value) const;
  [[nodiscard]] double get_double(const std::string& name, double default_value) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t default_value) const;
  /// A bare --flag or --flag=true/1 is true; --flag=false/0 is false.
  [[nodiscard]] bool get_bool(const std::string& name, bool default_value) const;

  /// Comma-separated list of doubles, e.g. --thresholds=1,2,4,8.
  [[nodiscard]] std::vector<double> get_double_list(
      const std::string& name, const std::vector<double>& default_value) const;

  /// Name of the program (argv[0]).
  [[nodiscard]] const std::string& program() const { return program_; }

  /// Parsed flag names not present in `allowed`, in sorted order.
  [[nodiscard]] std::vector<std::string> unknown_flags(
      const std::vector<std::string>& allowed) const;

  /// Throws nc::CheckError naming every parsed flag not in `allowed`.
  void check_known(const std::vector<std::string>& allowed) const;

  /// One-line usage message listing the allowed flags.
  [[nodiscard]] static std::string usage(const std::string& program,
                                         const std::vector<std::string>& allowed);

  /// Parses argv and validates every flag against `allowed`. On malformed
  /// input (e.g. a bare positional argument) or an unknown flag, prints the
  /// error plus a usage message to stderr and exits with status 2.
  [[nodiscard]] static Flags parse_or_exit(int argc, const char* const* argv,
                                           const std::vector<std::string>& allowed);

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
};

}  // namespace nc

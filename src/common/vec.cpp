#include "common/vec.hpp"

#include <ostream>

namespace nc {

std::ostream& operator<<(std::ostream& os, const Vec& v) {
  os << '(';
  for (int i = 0; i < v.dim(); ++i) {
    if (i > 0) os << ", ";
    os << v[i];
  }
  return os << ')';
}

}  // namespace nc

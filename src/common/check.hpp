// Lightweight runtime checks.
//
// NC_CHECK is always on and throws; use it to validate API preconditions
// whose violation indicates a caller bug (Core Guidelines I.6).
// NC_ASSERT compiles away in release builds; use it for internal invariants
// on hot paths.
#pragma once

#include <cassert>
#include <sstream>
#include <stdexcept>
#include <string>

namespace nc {

/// Thrown when an NC_CHECK precondition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "NC_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace nc

#define NC_CHECK(expr)                                                \
  do {                                                                \
    if (!(expr)) ::nc::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define NC_CHECK_MSG(expr, msg)                                       \
  do {                                                                \
    if (!(expr))                                                      \
      ::nc::detail::check_failed(#expr, __FILE__, __LINE__, (msg));   \
  } while (0)

#define NC_ASSERT(expr) assert(expr)
